package exp

import (
	"strings"
	"testing"
	"time"

	"tempo/internal/cluster"
	"tempo/internal/workload"
)

func TestExpertConfigsValid(t *testing.T) {
	abc := ExpertABCConfig(ABCCapacity)
	if err := abc.Validate(); err != nil {
		t.Fatal(err)
	}
	two := ExpertTwoTenantConfig(EC2Capacity)
	if err := two.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReconstructTrace(t *testing.T) {
	tr, err := workload.Generate(TwoTenantProfiles(1), workload.GenerateOptions{Horizon: time.Hour, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s, err := cluster.Run(tr, ExpertTwoTenantConfig(80), cluster.Options{Horizon: 2 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	rec := ReconstructTrace(s, "harvest")
	if err := rec.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(rec.Jobs) == 0 {
		t.Fatal("reconstructed trace empty")
	}
	completed := 0
	for i := range s.Jobs {
		if s.Jobs[i].Completed {
			completed++
		}
	}
	if len(rec.Jobs) > completed {
		t.Fatalf("reconstructed %d jobs from %d completed", len(rec.Jobs), completed)
	}
	// A deterministically re-run reconstruction should preserve total work
	// for fully-completed jobs.
	for i := range rec.Jobs {
		if rec.Jobs[i].TaskCount() == 0 {
			t.Fatal("job with no tasks")
		}
	}
}

func TestTableHelperAlignment(t *testing.T) {
	out := table([]string{"a", "long-header"}, [][]string{{"xxxx", "y"}})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("table lines = %d", len(lines))
	}
	if len(lines[0]) != len(lines[1]) {
		t.Fatalf("separator misaligned:\n%s", out)
	}
}

func TestTable1Shape(t *testing.T) {
	res, err := Table1(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("tenants = %d, want 6", len(res.Rows))
	}
	byName := map[string]Table1Row{}
	for _, r := range res.Rows {
		byName[r.Tenant] = r
	}
	// Table 1 shapes: MV has the longest reduces; APP the smallest jobs;
	// STR is map-only; deadlines exactly for APP/MV/ETL.
	if byName["MV"].MeanReduceSec <= byName["APP"].MeanReduceSec {
		t.Errorf("MV reduce duration %v should exceed APP %v", byName["MV"].MeanReduceSec, byName["APP"].MeanReduceSec)
	}
	if byName["APP"].MeanMaps >= byName["MV"].MeanMaps {
		t.Errorf("APP jobs should be smaller than MV jobs")
	}
	if byName["STR"].MeanReduces != 0 {
		t.Errorf("STR should be map-only, got %v reduces", byName["STR"].MeanReduces)
	}
	for name, want := range map[string]bool{"BI": false, "DEV": false, "APP": true, "STR": false, "MV": true, "ETL": true} {
		if byName[name].Deadlines != want {
			t.Errorf("%s deadlines = %v, want %v", name, byName[name].Deadlines, want)
		}
	}
	if !strings.Contains(res.Render(), "ETL") {
		t.Fatal("render missing tenants")
	}
}

func TestTable2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	res, err := Table2(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("tenants = %d, want 6", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.RAE <= 0 || row.RAE > 0.8 {
			t.Errorf("%s RAE = %v outside plausible (0, 0.8]", row.Tenant, row.RAE)
		}
		if row.RSE <= 0 || row.RSE > 1.0 {
			t.Errorf("%s RSE = %v outside plausible (0, 1]", row.Tenant, row.RSE)
		}
	}
	// The paper's predictor did 150k tasks/sec; ours must be at least in
	// that league. Race-detector instrumentation slows the simulator ~2x,
	// so the floor only applies to uninstrumented builds.
	if !raceEnabled && res.TasksPerSec < 100000 {
		t.Errorf("prediction throughput %v tasks/sec, want >= 100k", res.TasksPerSec)
	}
	if !strings.Contains(res.Render(), "RAE") {
		t.Fatal("render broken")
	}
}

func TestFigure1Shape(t *testing.T) {
	res, err := Figure1()
	if err != nil {
		t.Fatal(err)
	}
	if res.PreemptedTasks != 5 {
		t.Fatalf("preempted = %d, want 5", res.PreemptedTasks)
	}
	if res.EffectiveUtilization >= res.RawUtilization {
		t.Fatal("effective utilization should be below raw")
	}
	if res.WastedContainerTime <= 0 {
		t.Fatal("no wasted time recorded")
	}
	if res.EffectiveUtilization < 0.3 {
		t.Fatalf("effective utilization %v implausibly low", res.EffectiveUtilization)
	}
	if !strings.Contains(res.Render(), "effective") {
		t.Fatal("render broken")
	}
}

func TestFigure2Shape(t *testing.T) {
	res, err := Figure2(3)
	if err != nil {
		t.Fatal(err)
	}
	if res.CappedWhileIdleFrac <= 0.02 {
		t.Fatalf("capped-while-idle fraction %v; anti-correlated tenants under static limits should show clear waste", res.CappedWhileIdleFrac)
	}
	if len(res.UsageA) == 0 || len(res.UsageB) == 0 {
		t.Fatal("usage series empty")
	}
	_ = res.Render()
}

func TestFigure5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	res, err := Figure5(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tenants) != 6 {
		t.Fatalf("tenants = %v", res.Tenants)
	}
	// MV jobs are long; APP jobs are quick.
	if res.ResponseSec["MV"][1] <= res.ResponseSec["APP"][1] {
		t.Errorf("MV median response %v should exceed APP %v", res.ResponseSec["MV"][1], res.ResponseSec["APP"][1])
	}
	// STR has no reduces.
	if res.Reduces["STR"][2] != 0 {
		t.Errorf("STR reduces = %v, want 0", res.Reduces["STR"])
	}
	_ = res.Render()
}

func TestFigure7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	res, err := Figure7(5)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: reduce preemptions greatly exceed map preemptions, and come
	// mostly from the best-effort tenant.
	if res.OverallReduceFrac <= res.OverallMapFrac {
		t.Errorf("reduce preemption fraction %v should exceed map %v", res.OverallReduceFrac, res.OverallMapFrac)
	}
	if res.OverallReduceFrac <= 0 {
		t.Fatal("no reduce preemptions at all")
	}
	if res.BestEffortReduceShare < 0.5 {
		t.Errorf("best-effort share of reduce preemptions %v, want >= 0.5", res.BestEffortReduceShare)
	}
	_ = res.Render()
}

func TestFigure8Shape(t *testing.T) {
	res, err := Figure8(6)
	if err != nil {
		t.Fatal(err)
	}
	// Best-effort reduces are the longest tasks (the preemption victims).
	if res.ReduceBestEffort[2] <= res.ReduceDeadline[2] {
		t.Errorf("best-effort reduce p90 %v should exceed deadline-driven %v", res.ReduceBestEffort[2], res.ReduceDeadline[2])
	}
	if res.ReduceBestEffort[1] <= res.MapBestEffort[1] {
		t.Errorf("reduces should run longer than maps")
	}
	_ = res.Render()
}

func TestFigure10Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	res, err := Figure10(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.WeekBestEffort) == 0 || len(res.TwoHourBestEffort) == 0 {
		t.Fatal("series empty")
	}
	// Paper: best-effort latency varies dramatically; deadline-driven is
	// comparatively stable/periodic.
	if res.WeekBestEffortSpread <= res.WeekDeadlineSpread {
		t.Errorf("best-effort spread %.1f should exceed deadline spread %.1f",
			res.WeekBestEffortSpread, res.WeekDeadlineSpread)
	}
	_ = res.Render()
}

func TestProxyCounterexample(t *testing.T) {
	res := ProxyCounterexample()
	if res.WeightedSumFeasible {
		t.Fatal("weighted sum should pick the infeasible point")
	}
	if !res.PALDFeasible {
		t.Fatal("PALD ordering should pick the feasible point")
	}
	if res.PALDPick[0] != 5 || res.PALDPick[1] != 5 {
		t.Fatalf("PALD picked %v, want (5,5)", res.PALDPick)
	}
	_ = res.Render()
}

func TestGradientAblationShape(t *testing.T) {
	res, err := GradientAblation(8)
	if err != nil {
		t.Fatal(err)
	}
	if res.LoessCosine < 0.7 {
		t.Fatalf("LOESS cosine %v, want >= 0.7", res.LoessCosine)
	}
	_ = res.Render()
}

package service

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// stubAPIClient builds an apiClient with a recorded sleep so tests
// assert the backoff schedule without waiting it out.
func stubAPIClient(opts DriveOptions) (*apiClient, *[]time.Duration) {
	opts, _ = opts.withDefaults()
	cl := newAPIClient(opts)
	slept := &[]time.Duration{}
	cl.sleep = func(d time.Duration) { *slept = append(*slept, d) }
	return cl, slept
}

// TestAPIClientRetriesRetryableRefusals: a 503 with a retryable envelope
// code is retried (honoring Retry-After as a backoff floor) and the
// eventual success is returned; the retry counter records the shed.
func TestAPIClientRetriesRetryableRefusals(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "2")
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"error":"queue full","code":"overloaded"}`)) //nolint:errcheck
			return
		}
		w.Write([]byte(`{"ok":true}`)) //nolint:errcheck
	}))
	defer srv.Close()

	cl, slept := stubAPIClient(DriveOptions{Retries: 3, RetrySeed: 5})
	var out struct {
		OK bool `json:"ok"`
	}
	if err := cl.call(http.MethodPost, srv.URL, nil, &out); err != nil {
		t.Fatalf("call after one retryable 503: %v", err)
	}
	if !out.OK {
		t.Fatal("success response not decoded")
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("server saw %d calls, want 2", got)
	}
	if got := cl.retried.Load(); got != 1 {
		t.Fatalf("retried counter = %d, want 1", got)
	}
	if len(*slept) != 1 || (*slept)[0] < 2*time.Second {
		t.Fatalf("backoff %v did not honor the Retry-After: 2 floor", *slept)
	}
}

// TestAPIClientDoesNotRetryNonRetryable: 4xx envelopes and 503s without
// a retryable code fail immediately — blind replay of a request that may
// have executed is forbidden.
func TestAPIClientDoesNotRetryNonRetryable(t *testing.T) {
	cases := []struct {
		name   string
		status int
		body   string
	}{
		{"bad request", http.StatusBadRequest, `{"error":"nope","code":"bad_request"}`},
		{"503 without envelope", http.StatusServiceUnavailable, `gateway fell over`},
		{"503 non-retryable code", http.StatusServiceUnavailable, `{"error":"x","code":"internal"}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var calls atomic.Int64
			srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				calls.Add(1)
				w.WriteHeader(tc.status)
				w.Write([]byte(tc.body)) //nolint:errcheck
			}))
			defer srv.Close()
			cl, slept := stubAPIClient(DriveOptions{Retries: 5, RetrySeed: 5})
			if err := cl.call(http.MethodGet, srv.URL, nil, nil); err == nil {
				t.Fatal("non-retryable refusal returned nil error")
			}
			if got := calls.Load(); got != 1 {
				t.Fatalf("server saw %d calls, want 1 (no retries)", got)
			}
			if len(*slept) != 0 {
				t.Fatalf("client slept %v before a non-retryable failure", *slept)
			}
		})
	}
}

// TestAPIClientTransportErrorsNotRetried: a connection failure is
// returned immediately — the request may have reached the server, so
// replaying it is not the client's call to make.
func TestAPIClientTransportErrorsNotRetried(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	srv.Close() // nothing listens anymore
	cl, slept := stubAPIClient(DriveOptions{Retries: 5, RetrySeed: 5})
	err := cl.call(http.MethodPost, srv.URL, []byte(`{}`), nil)
	if err == nil {
		t.Fatal("call against a dead listener returned nil")
	}
	if len(*slept) != 0 {
		t.Fatalf("client backed off %v on a transport error", *slept)
	}
}

// TestBackoffDeterministicJitter: the jitter stream is a pure function
// of (seed, draw index) — same seed, same schedule; the wait stays
// inside [base/2·2^k, base·2^k] capped at max and never below a
// Retry-After floor.
func TestBackoffDeterministicJitter(t *testing.T) {
	schedule := func(seed int64) []time.Duration {
		cl, _ := stubAPIClient(DriveOptions{
			Retries: 4, RetryBase: 20 * time.Millisecond, RetryMax: 500 * time.Millisecond, RetrySeed: seed,
		})
		var ds []time.Duration
		for k := 0; k < 6; k++ {
			ds = append(ds, cl.backoff(k, 0))
		}
		return ds
	}
	a, b := schedule(11), schedule(11)
	for k := range a {
		if a[k] != b[k] {
			t.Fatalf("same seed diverged at draw %d: %v vs %v", k, a[k], b[k])
		}
		cap := 20 * time.Millisecond << uint(k)
		if cap > 500*time.Millisecond {
			cap = 500 * time.Millisecond
		}
		if a[k] < cap/2 || a[k] > cap {
			t.Fatalf("draw %d = %v outside jitter band [%v, %v]", k, a[k], cap/2, cap)
		}
	}
	c := schedule(12)
	same := true
	for k := range a {
		if a[k] != c[k] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds drew an identical backoff schedule")
	}

	cl, _ := stubAPIClient(DriveOptions{Retries: 1, RetryBase: 10 * time.Millisecond, RetrySeed: 1})
	if d := cl.backoff(0, 3*time.Second); d < 3*time.Second {
		t.Fatalf("backoff %v below the 3s Retry-After floor", d)
	}
}

// TestRetryableCodeTable pins which envelope codes promise
// shed-before-execution.
func TestRetryableCodeTable(t *testing.T) {
	for _, code := range []string{CodeOverloaded, CodeDegraded, CodeUnavailable, CodeStreamLimit} {
		if !retryableCode(code) {
			t.Errorf("retryableCode(%q) = false, want true", code)
		}
	}
	for _, code := range []string{CodeBadRequest, CodeNotFound, CodeInternal, CodeInterrupted, "", "gibberish"} {
		if retryableCode(code) {
			t.Errorf("retryableCode(%q) = true, want false", code)
		}
	}
}

package whatif

import (
	"errors"
	"testing"
	"time"

	"tempo/internal/cluster"
	"tempo/internal/qs"
	"tempo/internal/workload"
)

func TestSensitivityMeanAndSpread(t *testing.T) {
	m, err := FromProfiles(testTemplates(),
		[]workload.TenantProfile{workload.BestEffort("A", 1)},
		time.Hour, 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := cluster.Config{TotalContainers: 20, Tenants: map[string]cluster.TenantConfig{"A": {Weight: 1}}}
	mean, stddev, err := m.Sensitivity(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(mean) != 2 || len(stddev) != 2 {
		t.Fatalf("lengths = %d, %d", len(mean), len(stddev))
	}
	if mean[0] <= 0 {
		t.Fatalf("mean AJR = %v", mean[0])
	}
	// Different workload draws must produce visible spread.
	if stddev[0] <= 0 {
		t.Fatalf("AJR stddev = %v; distinct draws should differ", stddev[0])
	}
	if _, _, err := m.Sensitivity(cfg, 1); err == nil {
		t.Fatal("n=1 accepted")
	}
}

func TestSensitivityZeroSpreadOnFixedTrace(t *testing.T) {
	m, err := FromTrace(testTemplates(), testTrace(t))
	if err != nil {
		t.Fatal(err)
	}
	cfg := cluster.Config{TotalContainers: 20, Tenants: map[string]cluster.TenantConfig{"A": {Weight: 1}}}
	_, stddev, err := m.Sensitivity(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range stddev {
		if s > 1e-9 {
			t.Fatalf("objective %d spread %v on a fixed trace", i, s)
		}
	}
}

func TestCustomPredictorPluggable(t *testing.T) {
	calls := 0
	fake := func(trace *workload.Trace, cfg cluster.Config, horizon time.Duration) (*cluster.Schedule, error) {
		calls++
		// An "external simulator" that claims every job completes at
		// submit + 42s.
		s := &cluster.Schedule{Capacity: cfg.TotalContainers, Horizon: time.Hour}
		for i := range trace.Jobs {
			j := &trace.Jobs[i]
			s.Jobs = append(s.Jobs, cluster.JobRecord{
				ID: j.ID, Tenant: j.Tenant,
				Submit: j.Submit, Finish: j.Submit + 42*time.Second, Completed: true,
			})
		}
		return s, nil
	}
	m, err := FromTrace([]qs.Template{{Queue: "A", Metric: qs.AvgResponseTime}}, testTrace(t))
	if err != nil {
		t.Fatal(err)
	}
	m.Predict = fake
	v, err := m.Evaluate(cluster.Config{TotalContainers: 5})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("predictor called %d times", calls)
	}
	if v[0] != 42 {
		t.Fatalf("AJR through custom predictor = %v, want 42", v[0])
	}
	// Errors from the adapter propagate.
	boom := errors.New("sim down")
	m.Predict = func(*workload.Trace, cluster.Config, time.Duration) (*cluster.Schedule, error) {
		return nil, boom
	}
	if _, err := m.Evaluate(cluster.Config{TotalContainers: 5}); !errors.Is(err, boom) {
		t.Fatalf("adapter error lost: %v", err)
	}
	if _, _, err := m.Sensitivity(cluster.Config{TotalContainers: 5}, 2); !errors.Is(err, boom) {
		t.Fatalf("adapter error lost in sensitivity: %v", err)
	}
}

func TestGrowScalesJobSizes(t *testing.T) {
	p := workload.TenantProfile{
		Name:        "T",
		JobsPerHour: 30,
		NumMaps:     workload.Constant(10),
		NumReduces:  workload.Constant(4),
		MapSeconds:  workload.Constant(30),
	}
	p.ReduceSeconds = workload.Constant(60)
	grown := p.Grow(1.3)
	if got := grown.NumMaps.Mean(); got != 13 {
		t.Fatalf("grown maps mean = %v, want 13", got)
	}
	// Reduce counts grow with sqrt(factor).
	want := 4 * 1.1401
	if got := grown.NumReduces.Mean(); got < want-0.01 || got > want+0.01 {
		t.Fatalf("grown reduces mean = %v, want ≈ %v", got, want)
	}
	// Durations untouched.
	if grown.MapSeconds.Mean() != 30 {
		t.Fatal("durations should not scale")
	}
	// Non-positive factor is identity.
	if p.Grow(0).NumMaps.Mean() != 10 {
		t.Fatal("factor 0 not defaulted")
	}
	// Grown profiles still generate valid traces with more tasks.
	base, err := workload.Generate([]workload.TenantProfile{p}, workload.GenerateOptions{Horizon: 4 * time.Hour, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	big, err := workload.Generate([]workload.TenantProfile{grown}, workload.GenerateOptions{Horizon: 4 * time.Hour, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if big.TaskCount() <= base.TaskCount() {
		t.Fatalf("grown trace tasks %d <= base %d", big.TaskCount(), base.TaskCount())
	}
}

// TestGrowthWhatIf ties it together: predicted response times under 30%
// data growth must be no better than under the current workload.
func TestGrowthWhatIf(t *testing.T) {
	p := workload.BestEffort("A", 2)
	templates := []qs.Template{{Queue: "A", Metric: qs.AvgResponseTime}}
	cfg := cluster.Config{TotalContainers: 20, Tenants: map[string]cluster.TenantConfig{"A": {Weight: 1}}}
	now, err := FromProfiles(templates, []workload.TenantProfile{p}, time.Hour, 5)
	if err != nil {
		t.Fatal(err)
	}
	grown, err := FromProfiles(templates, []workload.TenantProfile{p.Grow(1.3)}, time.Hour, 5)
	if err != nil {
		t.Fatal(err)
	}
	vNow, err := now.Evaluate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	vGrown, err := grown.Evaluate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if vGrown[0] < vNow[0] {
		t.Fatalf("30%% growth improved AJR: %v -> %v", vNow[0], vGrown[0])
	}
}

package ordercontract_test

import (
	"testing"

	"tempo/internal/analysis"
	"tempo/internal/analysis/analysistest"
	"tempo/internal/analysis/ordercontract"
)

func TestOrderContract(t *testing.T) {
	suite := []*analysis.Analyzer{ordercontract.Analyzer}
	diags := analysistest.Run(t, "testdata", suite, "order")
	if len(diags) == 0 {
		t.Fatalf("fixture produced no diagnostics; the positive cases are not being checked")
	}
}

// Package lp implements a small, dependency-free two-phase primal simplex
// solver for dense linear programs in the form
//
//	maximize   cᵀx
//	subject to a_i·x {<=,==,>=} b_i   for each constraint i
//	           x >= 0
//
// It exists to solve PALD's max-min weight program (Tempo §6.3.1):
//
//	maximize z  subject to  J_v Jᵀ c >= z·1,  c >= 0,  z <= ε
//
// which after the substitution z = ε − u (u ≥ 0) fits the form above. The
// LPs involved have one row and one column per SLO, so a dense tableau with
// Bland's anti-cycling rule is plenty.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Sense is the direction of a linear constraint.
type Sense int

// Constraint senses.
const (
	LE Sense = iota // a·x <= b
	EQ              // a·x == b
	GE              // a·x >= b
)

func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case EQ:
		return "=="
	case GE:
		return ">="
	}
	return fmt.Sprintf("Sense(%d)", int(s))
}

// Constraint is a single row a·x (sense) b.
type Constraint struct {
	A     []float64
	Sense Sense
	B     float64
}

// Problem is a linear program over nonnegative variables.
type Problem struct {
	// Objective holds the coefficients of the maximization objective.
	Objective []float64
	// Constraints are the rows of the program.
	Constraints []Constraint
}

// Status reports the outcome of Solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Solution is the result of solving a Problem.
type Solution struct {
	Status Status
	// X is the optimal assignment (valid only when Status == Optimal).
	X []float64
	// Value is the objective value at X.
	Value float64
}

// ErrBadProblem reports a structurally invalid program.
var ErrBadProblem = errors.New("lp: malformed problem")

const eps = 1e-9

// Solve runs two-phase primal simplex on p.
func Solve(p Problem) (Solution, error) {
	n := len(p.Objective)
	if n == 0 {
		return Solution{}, fmt.Errorf("%w: empty objective", ErrBadProblem)
	}
	for i, c := range p.Constraints {
		if len(c.A) != n {
			return Solution{}, fmt.Errorf("%w: constraint %d has %d coefficients, want %d",
				ErrBadProblem, i, len(c.A), n)
		}
	}
	t := newTableau(p)
	if t.needsPhase1 {
		status := t.phase1()
		if status != Optimal {
			return Solution{Status: Infeasible}, nil
		}
	}
	status := t.phase2()
	if status == Unbounded {
		return Solution{Status: Unbounded}, nil
	}
	x := t.extract()
	var val float64
	for j, c := range p.Objective {
		val += c * x[j]
	}
	return Solution{Status: Optimal, X: x, Value: val}, nil
}

// tableau is a dense simplex tableau. Columns are laid out as
// [structural | slack/surplus | artificial | rhs].
type tableau struct {
	rows        [][]float64 // constraint rows, last entry is rhs
	basis       []int       // basic variable of each row
	n           int         // structural variables
	slack       int         // slack/surplus variables
	art         int         // artificial variables
	obj         []float64   // phase-2 objective over structural vars
	needsPhase1 bool
}

func newTableau(p Problem) *tableau {
	n := len(p.Objective)
	m := len(p.Constraints)
	slack := 0
	art := 0
	for _, c := range p.Constraints {
		switch c.Sense {
		case LE, GE:
			slack++
		}
		// Artificial variables are needed for ==, for >= (after surplus),
		// and for <= rows with negative rhs (which flip to >=-like rows).
	}
	// Conservatively allocate one artificial per row; unused ones are
	// simply never made basic.
	art = m
	width := n + slack + art + 1
	t := &tableau{
		rows:  make([][]float64, m),
		basis: make([]int, m),
		n:     n,
		slack: slack,
		art:   art,
		obj:   append([]float64(nil), p.Objective...),
	}
	si := 0
	for i, c := range p.Constraints {
		row := make([]float64, width)
		copy(row, c.A)
		rhs := c.B
		sense := c.Sense
		// Normalize to nonnegative rhs.
		if rhs < 0 {
			for j := 0; j < n; j++ {
				row[j] = -row[j]
			}
			rhs = -rhs
			switch sense {
			case LE:
				sense = GE
			case GE:
				sense = LE
			}
		}
		switch sense {
		case LE:
			row[n+si] = 1
			t.basis[i] = n + si
			si++
		case GE:
			row[n+si] = -1
			si++
			row[n+slack+i] = 1
			t.basis[i] = n + slack + i
			t.needsPhase1 = true
		case EQ:
			row[n+slack+i] = 1
			t.basis[i] = n + slack + i
			t.needsPhase1 = true
		}
		row[width-1] = rhs
		t.rows[i] = row
	}
	return t
}

func (t *tableau) width() int { return t.n + t.slack + t.art + 1 }

// phase1 minimizes the sum of artificial variables; Optimal means a basic
// feasible solution with zero artificials was found.
func (t *tableau) phase1() Status {
	width := t.width()
	// Phase-1 objective: minimize sum of artificials == maximize -sum.
	cost := make([]float64, width-1)
	for j := t.n + t.slack; j < width-1; j++ {
		cost[j] = -1
	}
	status := t.iterate(cost)
	if status != Optimal {
		return Infeasible
	}
	// Feasible iff every artificial is zero.
	for i, b := range t.basis {
		if b >= t.n+t.slack && t.rows[i][width-1] > eps {
			return Infeasible
		}
	}
	// Drive any degenerate artificial out of the basis if possible so
	// phase 2 never pivots on artificial columns.
	for i, b := range t.basis {
		if b < t.n+t.slack {
			continue
		}
		for j := 0; j < t.n+t.slack; j++ {
			if math.Abs(t.rows[i][j]) > eps {
				t.pivot(i, j)
				break
			}
		}
	}
	return Optimal
}

func (t *tableau) phase2() Status {
	width := t.width()
	cost := make([]float64, width-1)
	copy(cost, t.obj)
	// Artificial columns are forbidden in phase 2.
	for j := t.n + t.slack; j < width-1; j++ {
		cost[j] = math.Inf(-1)
	}
	return t.iterate(cost)
}

// iterate runs primal simplex with the given maximization costs using
// Bland's rule (smallest eligible index) to guarantee termination.
func (t *tableau) iterate(cost []float64) Status {
	width := t.width()
	maxIter := 200 * (width + len(t.rows) + 1)
	for iter := 0; iter < maxIter; iter++ {
		// Reduced costs: r_j = c_j − c_Bᵀ B⁻¹ A_j. The tableau is kept in
		// canonical form, so compute r_j directly from basis costs.
		enter := -1
		for j := 0; j < width-1; j++ {
			if math.IsInf(cost[j], -1) {
				continue
			}
			rj := cost[j]
			for i, b := range t.basis {
				cb := basisCost(cost, b)
				if cb != 0 {
					rj -= cb * t.rows[i][j]
				}
			}
			if rj > eps {
				enter = j
				break // Bland: first eligible column
			}
		}
		if enter == -1 {
			return Optimal
		}
		// Ratio test.
		leave := -1
		best := math.Inf(1)
		for i := range t.rows {
			a := t.rows[i][enter]
			if a > eps {
				ratio := t.rows[i][width-1] / a
				if ratio < best-eps || (math.Abs(ratio-best) <= eps && (leave == -1 || t.basis[i] < t.basis[leave])) {
					best = ratio
					leave = i
				}
			}
		}
		if leave == -1 {
			return Unbounded
		}
		t.pivot(leave, enter)
	}
	return Unbounded // did not converge; treat as failure
}

func basisCost(cost []float64, b int) float64 {
	c := cost[b]
	if math.IsInf(c, -1) {
		// Artificial still in basis at zero level; its cost contribution
		// is irrelevant because its row rhs is zero after phase 1.
		return 0
	}
	return c
}

func (t *tableau) pivot(row, col int) {
	width := t.width()
	p := t.rows[row][col]
	inv := 1 / p
	for j := 0; j < width; j++ {
		t.rows[row][j] *= inv
	}
	for i := range t.rows {
		if i == row {
			continue
		}
		f := t.rows[i][col]
		if f == 0 {
			continue
		}
		for j := 0; j < width; j++ {
			t.rows[i][j] -= f * t.rows[row][j]
		}
	}
	t.basis[row] = col
}

func (t *tableau) extract() []float64 {
	width := t.width()
	x := make([]float64, t.n)
	for i, b := range t.basis {
		if b < t.n {
			x[b] = t.rows[i][width-1]
		}
	}
	return x
}

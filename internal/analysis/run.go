package analysis

import (
	"fmt"
	"sort"

	"tempo/internal/analysis/load"
)

// Options configure a Run.
type Options struct {
	// ReportUnusedIgnores adds a "tempolint" diagnostic for every ignore
	// comment that suppressed nothing. Only meaningful when the full
	// analyzer suite runs (a subset run would see other analyzers'
	// ignores as unused).
	ReportUnusedIgnores bool
}

// Run loads each package path and applies every analyzer, returning all
// diagnostics (suppressed ones included, marked) sorted by position.
func Run(l *load.Loader, paths []string, analyzers []*Analyzer, opts Options) ([]Diagnostic, error) {
	var all []Diagnostic
	for _, path := range paths {
		pkg, err := l.LoadPackage(path)
		if err != nil {
			return nil, err
		}
		diags, err := runPackage(l, pkg, analyzers, opts)
		if err != nil {
			return nil, err
		}
		all = append(all, diags...)
	}
	all = dedup(all)
	sort.SliceStable(all, func(i, j int) bool {
		a, b := all[i].Pos, all[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return all[i].Analyzer < all[j].Analyzer
	})
	return all, nil
}

// dedup drops exact repeats (same position, analyzer, and message) —
// nested constructs can legitimately trip the same rule twice.
func dedup(diags []Diagnostic) []Diagnostic {
	type key struct {
		file          string
		line, col     int
		analyzer, msg string
	}
	seen := map[key]bool{}
	out := diags[:0]
	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message}
		if !seen[k] {
			seen[k] = true
			out = append(out, d)
		}
	}
	return out
}

func runPackage(l *load.Loader, pkg *load.Package, analyzers []*Analyzer, opts Options) ([]Diagnostic, error) {
	var diags []Diagnostic
	var ignores []*Ignore
	for i, az := range analyzers {
		pass := &Pass{
			Analyzer:  az,
			Fset:      l.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			diags:     &diags,
		}
		if i == 0 {
			// Ignores (and malformed-ignore diagnostics) are
			// per-package, not per-analyzer; collect them once.
			ignores = collectIgnores(pass)
		}
		if err := az.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", az.Name, pkg.Path, err)
		}
	}
	suppress(diags, ignores)
	if opts.ReportUnusedIgnores {
		for _, ig := range ignores {
			if !ig.used {
				diags = append(diags, Diagnostic{
					Pos:      ig.Pos,
					Analyzer: "tempolint",
					Message:  fmt.Sprintf("unused tempolint:ignore for %q: nothing is reported here; delete the comment", ig.Analyzer),
				})
			}
		}
	}
	return diags, nil
}

package workload

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// bimodalTenant builds a trace whose "mixed" tenant has clearly separated
// small and huge jobs, plus an untouched "other" tenant.
func bimodalTenant(t *testing.T) *Trace {
	t.Helper()
	var jobs []JobSpec
	for i := 0; i < 20; i++ {
		jobs = append(jobs, NewMapReduceJob(
			jobID("small", i), "mixed", time.Duration(i)*time.Minute,
			[]time.Duration{10 * time.Second, 10 * time.Second}, nil))
	}
	for i := 0; i < 10; i++ {
		big := make([]time.Duration, 50)
		for j := range big {
			big[j] = 5 * time.Minute
		}
		jobs = append(jobs, NewMapReduceJob(
			jobID("big", i), "mixed", time.Duration(i)*7*time.Minute, big,
			[]time.Duration{20 * time.Minute}))
	}
	jobs = append(jobs, NewMapReduceJob("other-1", "other", 0, []time.Duration{time.Minute}, nil))
	tr := &Trace{Name: "bimodal", Horizon: 3 * time.Hour, Jobs: jobs}
	tr.Sort()
	return tr
}

func jobID(prefix string, i int) string {
	return prefix + "-" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
}

func TestDecomposeSeparatesSizeClasses(t *testing.T) {
	tr := bimodalTenant(t)
	out, dec, err := Decompose(tr, "mixed", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.SubTenants) != 2 {
		t.Fatalf("sub-tenants = %v", dec.SubTenants)
	}
	small := out.ByTenant(SubTenantName("mixed", 0))
	big := out.ByTenant(SubTenantName("mixed", 1))
	if len(small) != 20 || len(big) != 10 {
		t.Fatalf("split = %d small / %d big, want 20/10", len(small), len(big))
	}
	for _, j := range small {
		if j.TotalWork() > time.Minute {
			t.Fatalf("small class contains big job %s (%v)", j.ID, j.TotalWork())
		}
	}
	// Other tenants untouched; job count preserved.
	if len(out.ByTenant("other")) != 1 {
		t.Fatal("other tenant disturbed")
	}
	if len(out.Jobs) != len(tr.Jobs) {
		t.Fatalf("job count changed: %d -> %d", len(tr.Jobs), len(out.Jobs))
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	// Centers sorted ascending.
	if dec.Centers[0] >= dec.Centers[1] {
		t.Fatalf("centers not ordered: %v", dec.Centers)
	}
}

func TestDecomposeValidation(t *testing.T) {
	tr := bimodalTenant(t)
	if _, _, err := Decompose(tr, "mixed", 1); err == nil {
		t.Fatal("k=1 accepted")
	}
	if _, _, err := Decompose(tr, "other", 2); err == nil {
		t.Fatal("too few jobs accepted")
	}
	if _, _, err := Decompose(tr, "missing", 2); err == nil {
		t.Fatal("unknown tenant accepted")
	}
}

func TestRecompose(t *testing.T) {
	if got := Recompose(SubTenantName("DEV", 3)); got != "DEV" {
		t.Fatalf("Recompose = %q", got)
	}
	if got := Recompose("plain"); got != "plain" {
		t.Fatalf("Recompose passthrough = %q", got)
	}
}

func TestDecomposeProfiles(t *testing.T) {
	tr := bimodalTenant(t)
	out, dec, err := Decompose(tr, "mixed", 2)
	if err != nil {
		t.Fatal(err)
	}
	profiles, err := DecomposeProfiles(out, dec)
	if err != nil {
		t.Fatal(err)
	}
	if len(profiles) != 2 {
		t.Fatalf("profiles = %d", len(profiles))
	}
	// The big class's mean map work must dominate the small class's.
	if profiles[1].MapSeconds.Mean() <= profiles[0].MapSeconds.Mean() {
		t.Fatalf("profile size ordering wrong: %v vs %v",
			profiles[0].MapSeconds.Mean(), profiles[1].MapSeconds.Mean())
	}
	// Profiles must generate valid traces.
	g, err := Generate(profiles, GenerateOptions{Horizon: time.Hour, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestKMeans1DKnownClusters(t *testing.T) {
	points := []float64{1, 1.1, 0.9, 10, 10.2, 9.8}
	centers, assign := kmeans1D(points, 2)
	if centers[0] >= centers[1] {
		t.Fatalf("centers unsorted: %v", centers)
	}
	for i, p := range points {
		want := 0
		if p > 5 {
			want = 1
		}
		if assign[i] != want {
			t.Fatalf("point %v assigned to %d", p, assign[i])
		}
	}
}

// Property: k-means assignment is consistent — every point is assigned to
// its nearest center.
func TestPropertyKMeansNearestCenter(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(40)
		k := 2 + rng.Intn(3)
		points := make([]float64, n)
		for i := range points {
			points[i] = rng.NormFloat64() * 5
		}
		centers, assign := kmeans1D(points, k)
		for i, p := range points {
			d := abs64(p - centers[assign[i]])
			for _, c := range centers {
				if abs64(p-c) < d-1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func abs64(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Property: decomposition preserves every job exactly once with only the
// tenant renamed.
func TestPropertyDecomposePreservesJobs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var jobs []JobSpec
		n := 6 + rng.Intn(30)
		for i := 0; i < n; i++ {
			dur := time.Duration(1+rng.Intn(600)) * time.Second
			jobs = append(jobs, NewMapReduceJob(jobID("j", i), "T",
				time.Duration(rng.Intn(3600))*time.Second,
				[]time.Duration{dur, dur}, nil))
		}
		tr := &Trace{Name: "p", Horizon: 2 * time.Hour, Jobs: jobs}
		tr.Sort()
		out, dec, err := Decompose(tr, "T", 2)
		if err != nil {
			return false
		}
		if len(out.Jobs) != len(tr.Jobs) {
			return false
		}
		seen := map[string]bool{}
		for i := range out.Jobs {
			j := &out.Jobs[i]
			if seen[j.ID] {
				return false
			}
			seen[j.ID] = true
			if Recompose(j.Tenant) != "T" {
				return false
			}
			if idx, ok := dec.Assignment[j.ID]; !ok || j.Tenant != dec.SubTenants[idx] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestWaitTimes(t *testing.T) {
	submit := map[string]time.Duration{"a": 0, "b": 10, "c": 20}
	starts := map[string]time.Duration{"a": 5, "b": 10, "d": 99}
	waits := WaitTimes(submit, starts)
	if len(waits) != 2 || waits[0] != 0 || waits[1] != 5 {
		t.Fatalf("waits = %v", waits)
	}
}

// Package b has no tempolint:deterministic directive and is not one of
// the module's deterministic packages: the same constructs package a is
// flagged for must pass untouched here.
package b

import "time"

func wallClockOK() time.Time {
	return time.Now()
}

func appendFromMapOK(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

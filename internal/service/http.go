package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"mime"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"tempo"
	"tempo/internal/scenario"
)

// Handler returns the service's HTTP/JSON API, version 1:
//
//	POST   /v1/clusters                     create a cluster from a scenario spec
//	GET    /v1/clusters                     list resident cluster ids
//	GET    /v1/clusters/{id}                cluster status
//	DELETE /v1/clusters/{id}                drop a cluster
//	POST   /v1/clusters/{id}/tick           run one control-loop tick (serialized per cluster)
//	GET    /v1/clusters/{id}/qs             windowed QS query (?from=30m&to=1h30m)
//	POST   /v1/clusters/{id}/query          one-shot ad-hoc query (body = plan JSON)
//	GET    /v1/clusters/{id}/query/stream   standing query subscription (SSE, ?plan=<json>)
//	POST   /v1/clusters/{id}/whatif         score candidate RM configurations
//	GET    /v1/clusters/{id}/report         canonical scenario report (bit-reproducible)
//	GET    /v1/healthz                      liveness (200 while the process can serve at all)
//	GET    /v1/readyz                       readiness (503 during startup recovery and Close drain)
//	GET    /v1/metrics                      JSON counters (ticks, queries, per-shard latency quantiles)
//
// The pre-versioning unprefixed paths keep working as deprecated aliases
// for one release (responses carry a Deprecation header); the query
// endpoints are /v1-only. All bodies are JSON — POSTs with a body must
// say so in Content-Type or get a 415. Errors are a uniform envelope
// {"error": "...", "code": "..."} with conventional status codes (400
// malformed input, 404 unknown cluster, 409 conflicts, 415 wrong media
// type, 429 subscription limit, 503 shutting down); code is a stable
// machine-readable discriminator, error the human-readable detail.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	// route registers a handler under /v1 and its deprecated unversioned
	// alias. New endpoints register with v1Only instead of growing the
	// legacy surface.
	route := func(method, path string, h http.HandlerFunc) {
		mux.HandleFunc(method+" /v1"+path, h)
		mux.HandleFunc(method+" "+path, func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Deprecation", "version=\"v1\"")
			h(w, r)
		})
	}
	v1Only := func(method, path string, h http.HandlerFunc) {
		mux.HandleFunc(method+" /v1"+path, h)
	}
	route("POST", "/clusters", s.handleCreate)
	route("GET", "/clusters", s.handleList)
	route("GET", "/clusters/{id}", s.handleStatus)
	route("DELETE", "/clusters/{id}", s.handleDelete)
	route("POST", "/clusters/{id}/tick", s.handleTick)
	route("GET", "/clusters/{id}/qs", s.handleQS)
	route("POST", "/clusters/{id}/whatif", s.handleWhatIf)
	route("GET", "/clusters/{id}/report", s.handleReport)
	route("GET", "/healthz", s.handleHealthz)
	route("GET", "/metrics", s.handleMetrics)
	v1Only("GET", "/readyz", s.handleReadyz)
	v1Only("POST", "/clusters/{id}/query", s.handleQuery)
	v1Only("GET", "/clusters/{id}/query/stream", s.handleQueryStream)
	if s.cfg.Chaos != nil {
		return s.chaosHandler(mux)
	}
	return mux
}

// chaosHandler sheds a seeded fraction of API requests with a 503
// before they reach any handler — the injected equivalent of an
// overloaded front end. Health, readiness, and metrics probes are
// exempt so orchestration keeps an honest view. A shed request never
// executes, so every endpoint stays retry-safe under injection by
// construction.
func (s *Service) chaosHandler(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/v1/healthz", "/healthz", "/v1/readyz", "/v1/metrics", "/metrics":
		default:
			if s.cfg.Chaos.ShedRequest() {
				s.shedRequests.add(1)
				writeError(w, http.StatusServiceUnavailable, CodeUnavailable,
					errors.New("chaos: injected handler error"))
				return
			}
		}
		next.ServeHTTP(w, r)
	})
}

// Gate is a startup readiness gate for daemons whose recovery takes
// real time: start the listener on the Gate immediately, then Set the
// real handler once service.New finishes WAL recovery. Before Set, the
// gate answers liveness 200 ("starting"), readiness 503 ("recovering"),
// and everything else 503 unavailable — so orchestration sees the
// process alive but not ready for the whole recovery window.
type Gate struct {
	h atomic.Pointer[http.Handler]
}

// NewGate returns a gate with no handler installed.
func NewGate() *Gate { return &Gate{} }

// Set installs the real handler; every subsequent request flows through
// it. Call once, when the service is ready.
func (g *Gate) Set(h http.Handler) { g.h.Store(&h) }

func (g *Gate) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if hp := g.h.Load(); hp != nil {
		(*hp).ServeHTTP(w, r)
		return
	}
	switch r.URL.Path {
	case "/v1/healthz", "/healthz":
		writeJSON(w, http.StatusOK, map[string]any{"status": "starting"})
	case "/v1/readyz":
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, CodeUnavailable,
			errors.New("recovering: startup WAL recovery in progress"))
	default:
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, CodeUnavailable,
			errors.New("starting up"))
	}
}

// Error-envelope codes: the stable machine-readable half of every error
// response. Clients branch on these, never on the message text.
const (
	CodeBadRequest       = "bad_request"
	CodeInvalidPlan      = "invalid_plan"
	CodeNotFound         = "not_found"
	CodeExists           = "exists"
	CodeConflict         = "conflict"
	CodeUnavailable      = "unavailable"
	CodeUnsupportedMedia = "unsupported_media_type"
	CodeStreamLimit      = "subscription_limit"
	CodeInternal         = "internal"
	// CodeOverloaded marks a request shed at admission (queue full past
	// the deadline); CodeDegraded a write refused because the cluster's
	// durable store is failing. Both guarantee no state changed, so both
	// are safe to retry after the Retry-After hint.
	CodeOverloaded = "overloaded"
	CodeDegraded   = "degraded"
	// CodeInterrupted marks a request cut off by shutdown AFTER it was
	// admitted: the job may or may not have executed, so unlike
	// "unavailable" (refused before execution) it is NOT safe to retry
	// automatically — a replayed tick could double-apply.
	CodeInterrupted = "interrupted"
)

// ErrorEnvelope is the uniform JSON error body.
type ErrorEnvelope struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // the connection is gone; nothing to do
}

// writeError emits the uniform error envelope.
func writeError(w http.ResponseWriter, status int, code string, err error) {
	writeJSON(w, status, ErrorEnvelope{Error: err.Error(), Code: code})
}

// errStatus maps service errors to (HTTP status, envelope code).
func errStatus(err error) (int, string) {
	switch {
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound, CodeNotFound
	case errors.Is(err, ErrExists):
		return http.StatusConflict, CodeExists
	case errors.Is(err, tempo.ErrSessionDone):
		return http.StatusConflict, CodeConflict
	case errors.Is(err, ErrOverloaded):
		return http.StatusServiceUnavailable, CodeOverloaded
	case errors.Is(err, ErrDegraded):
		return http.StatusServiceUnavailable, CodeDegraded
	case errors.Is(err, ErrInterrupted):
		return http.StatusServiceUnavailable, CodeInterrupted
	case errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable, CodeUnavailable
	default:
		return http.StatusBadRequest, CodeBadRequest
	}
}

// writeServiceError maps and emits a service-layer error.
func writeServiceError(w http.ResponseWriter, err error) {
	status, code := errStatus(err)
	writeError(w, status, code, err)
}

// requireJSON enforces Content-Type on requests carrying a body; it
// answers 415 and returns false on violation. Bodyless POSTs (tick) pass.
func requireJSON(w http.ResponseWriter, r *http.Request) bool {
	if r.ContentLength == 0 {
		return true
	}
	ct := r.Header.Get("Content-Type")
	mt, _, err := mime.ParseMediaType(ct)
	if err != nil || mt != "application/json" {
		writeError(w, http.StatusUnsupportedMediaType, CodeUnsupportedMedia,
			fmt.Errorf("request body must be application/json, got %q", ct))
		return false
	}
	return true
}

// CreateRequest is the POST /v1/clusters body: a scenario spec plus an
// optional id (empty id defaults to the spec's name).
type CreateRequest struct {
	ID   string          `json:"id,omitempty"`
	Spec json.RawMessage `json:"spec"`
}

// CreateResponse echoes the registration.
type CreateResponse struct {
	ID         string `json:"id"`
	Shard      int    `json:"shard"`
	Tenants    int    `json:"tenants"`
	Iterations int    `json:"iterations"`
}

func (s *Service) handleCreate(w http.ResponseWriter, r *http.Request) {
	if !requireJSON(w, r) {
		return
	}
	var req CreateRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, err)
		return
	}
	if len(req.Spec) == 0 {
		writeError(w, http.StatusBadRequest, CodeBadRequest, errors.New("missing scenario spec"))
		return
	}
	spec, err := scenario.Load(bytes.NewReader(req.Spec))
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, err)
		return
	}
	c, err := s.Create(req.ID, spec)
	if err != nil {
		writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, CreateResponse{
		ID:         c.ID,
		Shard:      c.Shard,
		Tenants:    len(spec.TenantNames()),
		Iterations: spec.Iterations,
	})
}

func (s *Service) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"clusters": s.List()})
}

// StatusResponse is one cluster's GET /v1/clusters/{id} view.
type StatusResponse struct {
	ID         string `json:"id"`
	Shard      int    `json:"shard"`
	Ticks      int    `json:"ticks"`
	Iterations int    `json:"iterations"`
	Done       bool   `json:"done"`
}

func (s *Service) handleStatus(w http.ResponseWriter, r *http.Request) {
	c, err := s.Get(r.PathValue("id"))
	if err != nil {
		writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, StatusResponse{
		ID:         c.ID,
		Shard:      c.Shard,
		Ticks:      c.Session().Ticks(),
		Iterations: c.Session().Spec().Iterations,
		Done:       c.Session().Done(),
	})
}

func (s *Service) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.Delete(r.Context(), id); err != nil {
		// The shard pin is a pure function of the id, so a shed delete gets
		// the same honest p99-derived Retry-After hint as a shed tick.
		s.writeRetryableError(w, s.shardFor(id), err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// writeRetryableError maps and emits a write-path error, attaching a
// Retry-After hint to the retryable 503s (shed, degraded, draining) so
// backoff clients don't have to guess. shard, when >= 0, selects whose
// p99-derived hint to use for overload; other causes hint 1s.
func (s *Service) writeRetryableError(w http.ResponseWriter, shard int, err error) {
	switch {
	case errors.Is(err, ErrOverloaded):
		secs := 1
		if shard >= 0 {
			secs = s.shards[shard].retryAfterSeconds()
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	case errors.Is(err, ErrDegraded), errors.Is(err, ErrClosed):
		w.Header().Set("Retry-After", "1")
	}
	writeServiceError(w, err)
}

// TickResponse is one completed control interval.
type TickResponse struct {
	Iteration int       `json:"iteration"`
	Observed  []float64 `json:"observed"`
	Switched  bool      `json:"switched"`
	Reverted  bool      `json:"reverted"`
	Done      bool      `json:"done"`
}

func (s *Service) handleTick(w http.ResponseWriter, r *http.Request) {
	c, err := s.Get(r.PathValue("id"))
	if err != nil {
		writeServiceError(w, err)
		return
	}
	it, done, err := s.Tick(r.Context(), c)
	if err != nil {
		s.writeRetryableError(w, c.Shard, err)
		return
	}
	writeJSON(w, http.StatusOK, TickResponse{
		Iteration: it.Index,
		Observed:  it.Observed,
		Switched:  it.Switched,
		Reverted:  it.Reverted,
		Done:      done,
	})
}

// QSWindow is the wire form of one interval's windowed QS slice.
type QSWindow struct {
	Iteration int       `json:"iteration"`
	From      string    `json:"from"`
	To        string    `json:"to"`
	Values    []float64 `json:"values"`
}

// QSResponse answers GET /v1/clusters/{id}/qs.
type QSResponse struct {
	Objectives []string   `json:"objectives"`
	Windows    []QSWindow `json:"windows"`
}

func (s *Service) handleQS(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	from, err := parseWindowBound(r.URL.Query().Get("from"))
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("malformed from: %w", err))
		return
	}
	to, err := parseWindowBound(r.URL.Query().Get("to"))
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("malformed to: %w", err))
		return
	}
	c, err := s.Get(id)
	if err != nil {
		writeServiceError(w, err)
		return
	}
	windows, err := s.QS(c, from, to)
	if err != nil {
		writeServiceError(w, err)
		return
	}
	resp := QSResponse{Objectives: c.Session().Objectives(), Windows: []QSWindow{}}
	for _, win := range windows {
		resp.Windows = append(resp.Windows, QSWindow{
			Iteration: win.Iteration,
			From:      win.From.String(),
			To:        win.To.String(),
			Values:    win.Values,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// parseWindowBound parses a qs window bound: empty means 0 (from) /
// everything-so-far (to); otherwise a Go duration string like "90m".
func parseWindowBound(s string) (time.Duration, error) {
	if s == "" {
		return 0, nil
	}
	return time.ParseDuration(s)
}

// handleQuery answers POST /v1/clusters/{id}/query: the body is the plan
// itself (see internal/query for the grammar), the response the one-shot
// result over every interval observed so far.
func (s *Service) handleQuery(w http.ResponseWriter, r *http.Request) {
	if !requireJSON(w, r) {
		return
	}
	c, err := s.Get(r.PathValue("id"))
	if err != nil {
		writeServiceError(w, err)
		return
	}
	plan, err := tempo.ParseQueryPlan(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidPlan, err)
		return
	}
	res, err := s.Query(c, plan)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidPlan, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// WhatIfRequest is the POST /v1/clusters/{id}/whatif body: candidate
// tenant configurations to score against the observed workload.
type WhatIfRequest struct {
	Capacity   int                                    `json:"capacity,omitempty"`
	Candidates []map[string]scenario.TenantConfigSpec `json:"candidates"`
}

// WhatIfResponse carries one QS vector per candidate.
type WhatIfResponse struct {
	Objectives []string    `json:"objectives"`
	Results    [][]float64 `json:"results"`
}

func (s *Service) handleWhatIf(w http.ResponseWriter, r *http.Request) {
	if !requireJSON(w, r) {
		return
	}
	id := r.PathValue("id")
	var req WhatIfRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, err)
		return
	}
	c, err := s.Get(id)
	if err != nil {
		writeServiceError(w, err)
		return
	}
	if len(req.Candidates) == 0 {
		writeError(w, http.StatusBadRequest, CodeBadRequest, errors.New("no candidate configurations"))
		return
	}
	spec := c.Session().Spec()
	capacity := req.Capacity
	if capacity == 0 {
		capacity = spec.Capacity
	}
	names := spec.TenantNames()
	cfgs := make([]tempo.ClusterConfig, 0, len(req.Candidates))
	for i, cand := range req.Candidates {
		init := scenario.InitialSpec{Tenants: cand}
		cfg, err := init.Config(capacity, names)
		if err != nil {
			writeError(w, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("candidate %d: %w", i, err))
			return
		}
		cfgs = append(cfgs, cfg)
	}
	rows, err := s.WhatIf(c, cfgs)
	if err != nil {
		writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, WhatIfResponse{Objectives: c.Session().Objectives(), Results: rows})
}

func (s *Service) handleReport(w http.ResponseWriter, r *http.Request) {
	c, err := s.Get(r.PathValue("id"))
	if err != nil {
		writeServiceError(w, err)
		return
	}
	b, err := c.Session().Report().MarshalCanonical()
	if err != nil {
		writeError(w, http.StatusInternalServerError, CodeInternal, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(b) //nolint:errcheck // the connection is gone; nothing to do
}

// handleHealthz is liveness only: it answers 200 for as long as the
// process can serve at all, including the Close drain window. Routing
// decisions belong to readyz.
func (s *Service) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	clusters := len(s.clusters)
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"clusters":       clusters,
		"shards":         len(s.shards),
		"uptime_seconds": time.Since(s.start).Seconds(),
	})
}

// handleReadyz is the routing signal: 200 while the service is
// admitting work, 503 once Close begins draining (and, behind a Gate,
// during startup WAL recovery). Liveness stays green either way.
func (s *Service) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if !s.Ready() {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, CodeUnavailable,
			errors.New("draining: shutting down"))
		return
	}
	s.mu.RLock()
	clusters := len(s.clusters)
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, map[string]any{"ready": true, "clusters": clusters})
}

func (s *Service) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Metrics())
}

// decodeBody parses a JSON request body, rejecting unknown fields and
// trailing garbage so client typos fail loudly.
func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("decoding request body: %w", err)
	}
	if dec.More() {
		return errors.New("trailing data after request body")
	}
	return nil
}

// Package allocdiscipline guards the allocation budget of functions
// annotated "//tempo:hot" — the what-if inner loop paths whose
// allocs/op floor BENCH_5.json records and cmd/benchdiff gates. The
// benchmark gate catches a regression after the fact and only on the
// benched path; this analyzer points at the line that caused it.
//
// Inside a hot function (closures included) it reports:
//
//   - pop-front reslicing (s = s[1:]): each pop keeps the backing array
//     live and grows it on the next append; use a head index over a
//     reusable buffer (see the scheduler's pending-task deque);
//   - fmt.Sprintf / Sprint / Sprintln / Errorf / Appendf: formatting
//     allocates; hot paths preformat or use strconv into a scratch
//     buffer;
//   - closures passed to (*sim.Engine).At: each schedules a fresh
//     heap-allocated func value per event; use AtArg with a shared
//     handler and an argument;
//   - boxing: passing a non-pointer-shaped value (int, struct, string,
//     slice, ...) where an interface is expected heap-allocates the
//     box. Pointers, maps, channels, and funcs fit the interface word
//     directly; pass those, or keep the value out of interfaces.
package allocdiscipline

import (
	"go/ast"
	"go/token"
	"go/types"

	"tempo/internal/analysis"
)

// Analyzer is the allocdiscipline analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "allocdiscipline",
	Doc:  "flag allocation churn (pop-front reslice, fmt, closure events, boxing) in //tempo:hot functions",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !analysis.FuncIsHot(fd) {
				continue
			}
			checkHot(pass, fd)
		}
	}
	return nil
}

func checkHot(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			checkPopFront(pass, n)
		case *ast.CallExpr:
			if checkFmt(pass, n) {
				// Don't also flag the fmt call's arguments as boxing;
				// one diagnostic per sin.
				return true
			}
			checkAtClosure(pass, n)
			checkBoxing(pass, info, n)
		}
		return true
	})
}

// checkPopFront flags s = s[i:] (i != 0): the idiomatic queue pop that
// leaks the consumed prefix and forces append to reallocate.
func checkPopFront(pass *analysis.Pass, as *ast.AssignStmt) {
	if as.Tok != token.ASSIGN || len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		sl, ok := ast.Unparen(as.Rhs[i]).(*ast.SliceExpr)
		if !ok || sl.Low == nil || sl.High != nil || sl.Slice3 {
			continue
		}
		lobj := analysis.ObjectOf(pass.TypesInfo, lhs)
		robj := analysis.ObjectOf(pass.TypesInfo, sl.X)
		if lobj == nil || lobj != robj {
			continue
		}
		if lit, ok := ast.Unparen(sl.Low).(*ast.BasicLit); ok && lit.Value == "0" {
			continue
		}
		pass.Reportf(as.Pos(), "pop-front reslice %q = %q[...:] in hot path: the consumed prefix stays live and append reallocates; use a head index into a reusable buffer", lobj.Name(), lobj.Name())
	}
}

func checkFmt(pass *analysis.Pass, call *ast.CallExpr) bool {
	f := analysis.CalleeFunc(pass.TypesInfo, call)
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != "fmt" {
		return false
	}
	switch f.Name() {
	case "Sprintf", "Sprint", "Sprintln", "Errorf", "Appendf", "Append", "Appendln":
		pass.Reportf(call.Pos(), "fmt.%s in hot path: formatting allocates its result and boxes every operand; preformat outside the loop or use strconv into a scratch buffer", f.Name())
		return true
	}
	return false
}

func checkAtClosure(pass *analysis.Pass, call *ast.CallExpr) {
	if _, ok := analysis.IsMethodCall(pass.TypesInfo, call, "Engine", "At"); !ok {
		return
	}
	for _, arg := range call.Args {
		if _, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
			pass.Reportf(call.Pos(), "closure passed to Engine.At in hot path: every event heap-allocates a func value; bind a shared handler once and schedule with AtArg")
			return
		}
	}
}

// checkBoxing flags arguments whose static type is value-shaped (not
// pointer, interface, map, chan, func, or slice) passed where the
// callee expects an interface: the conversion heap-allocates.
func checkBoxing(pass *analysis.Pass, info *types.Info, call *ast.CallExpr) {
	tv, ok := info.Types[call.Fun]
	if !ok || tv.IsType() {
		// Conversions are not calls; T(x) boxing is covered by the
		// interface-parameter rule at the converted value's use site.
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at := info.Types[arg].Type
		if at == nil || types.IsInterface(at) || at == types.Typ[types.UntypedNil] {
			continue
		}
		if isPointerShaped(at) {
			continue
		}
		pass.Reportf(arg.Pos(), "value of type %s boxed into %s in hot path: the conversion heap-allocates; pass a pointer or keep the value out of interfaces", at.String(), pt.String())
	}
}

// isPointerShaped reports whether converting a value of type t to an
// interface stores the value directly in the interface word instead of
// heap-allocating a box: true only for pointer, map, channel, func, and
// unsafe.Pointer types. Strings and slices are multi-word headers and
// do allocate.
func isPointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

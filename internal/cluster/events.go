package cluster

import (
	"encoding/binary"
	"hash/fnv"
	"slices"
	"time"

	"tempo/internal/workload"
)

// This file defines the canonical event-stream view of a Schedule. The
// record view (Schedule.Jobs / Schedule.Tasks) and the event view carry the
// same information; the event view is the substrate of the incremental QS
// path (internal/qs.Accumulator), which consumes the stream once instead of
// re-scanning all records per metric. The stream is a pure function of the
// schedule: same records, same bytes of events, in the same order.

// EventKind classifies one schedule event.
type EventKind uint8

// The event kinds, in their canonical same-instant order. Ties in Time are
// broken by causality: a job submits before its tasks start, and a task
// ends before its job finishes. Task intervals are half-open [Start, End),
// so with starts ordered before ends at the same instant the running
// allocation count (sum of Delta) never goes negative, even for
// zero-length attempts.
const (
	// EventJobSubmit marks a job entering the system; it carries the job's
	// deadline (zero means none).
	EventJobSubmit EventKind = iota
	// EventTaskStart marks a container being occupied by a task attempt
	// (allocation Delta +1).
	EventTaskStart
	// EventTaskEnd marks the attempt releasing its container (allocation
	// Delta -1); it carries the attempt's outcome.
	EventTaskEnd
	// EventJobFinish marks the job's terminal record: completion, kill, or
	// horizon truncation.
	EventJobFinish
)

func (k EventKind) String() string {
	switch k {
	case EventJobSubmit:
		return "job-submit"
	case EventTaskStart:
		return "task-start"
	case EventTaskEnd:
		return "task-end"
	case EventJobFinish:
		return "job-finish"
	}
	return "unknown"
}

// Event is one element of a schedule's canonical event stream. Together the
// four kinds carry every field of the record view, so the stream can be
// replayed into an identical Schedule (see ReplaySchedule).
type Event struct {
	// Time is the virtual time of the event.
	Time time.Duration
	// Kind selects which of the remaining fields are meaningful.
	Kind EventKind
	// Seq is the index of the underlying record: into Schedule.Jobs for job
	// events, into Schedule.Tasks for task events. Together with Kind it
	// makes every event unique, which is what makes the stream's order
	// total.
	Seq int
	// Tenant and JobID identify the owner on every kind.
	Tenant string
	JobID  string
	// Delta is the container-allocation change: +1 on EventTaskStart, -1 on
	// EventTaskEnd, 0 on job events. Deltas over any completed stream sum
	// to zero.
	Delta int
	// Deadline is meaningful on EventJobSubmit (zero means none).
	Deadline time.Duration
	// Completed and Killed are meaningful on EventJobFinish.
	Completed bool
	Killed    bool
	// TaskKind and Attempt are meaningful on task events.
	TaskKind workload.TaskKind
	Attempt  int
	// Outcome is meaningful on EventTaskEnd.
	Outcome TaskOutcome
}

// EventLess is the canonical strict ordering of the stream: by Time, then
// by Kind (submit < task-start < task-end < job-finish), then by Seq. It is
// a total order because (Kind, Seq) is unique per event.
func EventLess(a, b *Event) bool {
	if a.Time != b.Time {
		return a.Time < b.Time
	}
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	return a.Seq < b.Seq
}

// Events returns the schedule as its canonical ordered event stream: one
// EventJobSubmit/EventJobFinish pair per job record and one
// EventTaskStart/EventTaskEnd pair per task attempt, sorted by EventLess.
// Every job record emits a finish event even when the job did not complete
// (the record's Finish then marks the kill or horizon-truncation time), so
// the stream always carries the full record view.
//
// The stream is assembled as a four-way merge of per-kind cursors over
// index-sorted record views rather than one big sort: each Event (a large,
// pointer-carrying struct) is written exactly once, and the index sorts
// are nearly no-ops on emulator output, whose Jobs and Tasks already come
// in submit and start order.
func (s *Schedule) Events() []Event {
	nj, nt := len(s.Jobs), len(s.Tasks)
	submitIdx := sortedIndex(nj, func(i, j int32) bool {
		a, b := s.Jobs[i].Submit, s.Jobs[j].Submit
		return a < b || (a == b && i < j)
	})
	finishIdx := sortedIndex(nj, func(i, j int32) bool {
		a, b := s.Jobs[i].Finish, s.Jobs[j].Finish
		return a < b || (a == b && i < j)
	})
	startIdx := sortedIndex(nt, func(i, j int32) bool {
		a, b := s.Tasks[i].Start, s.Tasks[j].Start
		return a < b || (a == b && i < j)
	})
	endIdx := sortedIndex(nt, func(i, j int32) bool {
		a, b := s.Tasks[i].End, s.Tasks[j].End
		return a < b || (a == b && i < j)
	})

	events := make([]Event, 0, 2*nj+2*nt)
	var js, jf, ts, te int
	for len(events) < cap(events) {
		bestKind := EventKind(255)
		var bestTime time.Duration
		var bestSeq int32
		consider := func(kind EventKind, at time.Duration, seq int32) {
			if bestKind == 255 || at < bestTime || (at == bestTime && kind < bestKind) {
				bestKind, bestTime, bestSeq = kind, at, seq
			}
		}
		if js < nj {
			i := submitIdx[js]
			consider(EventJobSubmit, s.Jobs[i].Submit, i)
		}
		if ts < nt {
			i := startIdx[ts]
			consider(EventTaskStart, s.Tasks[i].Start, i)
		}
		if te < nt {
			i := endIdx[te]
			consider(EventTaskEnd, s.Tasks[i].End, i)
		}
		if jf < nj {
			i := finishIdx[jf]
			consider(EventJobFinish, s.Jobs[i].Finish, i)
		}
		switch bestKind {
		case EventJobSubmit:
			j := &s.Jobs[bestSeq]
			events = append(events, Event{
				Time: j.Submit, Kind: EventJobSubmit, Seq: int(bestSeq),
				Tenant: j.Tenant, JobID: j.ID, Deadline: j.Deadline,
			})
			js++
		case EventTaskStart:
			t := &s.Tasks[bestSeq]
			events = append(events, Event{
				Time: t.Start, Kind: EventTaskStart, Seq: int(bestSeq),
				Tenant: t.Tenant, JobID: t.JobID, Delta: +1,
				TaskKind: t.Kind, Attempt: t.Attempt,
			})
			ts++
		case EventTaskEnd:
			t := &s.Tasks[bestSeq]
			events = append(events, Event{
				Time: t.End, Kind: EventTaskEnd, Seq: int(bestSeq),
				Tenant: t.Tenant, JobID: t.JobID, Delta: -1,
				TaskKind: t.Kind, Attempt: t.Attempt, Outcome: t.Outcome,
			})
			te++
		case EventJobFinish:
			j := &s.Jobs[bestSeq]
			events = append(events, Event{
				Time: j.Finish, Kind: EventJobFinish, Seq: int(bestSeq),
				Tenant: j.Tenant, JobID: j.ID, Completed: j.Completed, Killed: j.Killed,
			})
			jf++
		}
	}
	return events
}

// sortedIndex returns [0, n) sorted by the comparator. Ties never occur:
// every less function falls back to index order.
func sortedIndex(n int, less func(i, j int32) bool) []int32 {
	idx := make([]int32, n)
	for i := range idx {
		idx[i] = int32(i)
	}
	slices.SortFunc(idx, func(a, b int32) int {
		if less(a, b) {
			return -1
		}
		return 1
	})
	return idx
}

// ReplaySchedule reconstructs a Schedule from its event stream. Capacity
// and Horizon are not part of the stream and are supplied by the caller.
// For a stream produced by Events, the result is deeply equal to the
// original schedule.
func ReplaySchedule(capacity int, horizon time.Duration, events []Event) *Schedule {
	s := &Schedule{Capacity: capacity, Horizon: horizon}
	maxJob, maxTask := -1, -1
	for i := range events {
		switch events[i].Kind {
		case EventJobSubmit, EventJobFinish:
			if events[i].Seq > maxJob {
				maxJob = events[i].Seq
			}
		case EventTaskStart, EventTaskEnd:
			if events[i].Seq > maxTask {
				maxTask = events[i].Seq
			}
		}
	}
	if maxJob >= 0 {
		s.Jobs = make([]JobRecord, maxJob+1)
	}
	if maxTask >= 0 {
		s.Tasks = make([]TaskRecord, maxTask+1)
	}
	for i := range events {
		ev := &events[i]
		switch ev.Kind {
		case EventJobSubmit:
			j := &s.Jobs[ev.Seq]
			j.ID, j.Tenant = ev.JobID, ev.Tenant
			j.Submit, j.Deadline = ev.Time, ev.Deadline
		case EventJobFinish:
			j := &s.Jobs[ev.Seq]
			j.ID, j.Tenant = ev.JobID, ev.Tenant
			j.Finish, j.Completed, j.Killed = ev.Time, ev.Completed, ev.Killed
		case EventTaskStart:
			t := &s.Tasks[ev.Seq]
			t.JobID, t.Tenant = ev.JobID, ev.Tenant
			t.Kind, t.Attempt, t.Start = ev.TaskKind, ev.Attempt, ev.Time
		case EventTaskEnd:
			t := &s.Tasks[ev.Seq]
			t.JobID, t.Tenant = ev.JobID, ev.Tenant
			t.Kind, t.Attempt = ev.TaskKind, ev.Attempt
			t.End, t.Outcome = ev.Time, ev.Outcome
		}
	}
	return s
}

// Fingerprint returns a 64-bit FNV-1a digest of the schedule's full record
// view (capacity, horizon, every job and task field). Schedules with equal
// fingerprints are almost certainly identical; callers that must be exact
// (the what-if evaluation cache) verify with Equal before trusting a match.
func (s *Schedule) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	u := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	str := func(v string) {
		u(uint64(len(v)))
		h.Write([]byte(v))
	}
	b := func(v bool) {
		if v {
			u(1)
		} else {
			u(0)
		}
	}
	u(uint64(s.Capacity))
	u(uint64(s.Horizon))
	u(uint64(len(s.Jobs)))
	for i := range s.Jobs {
		j := &s.Jobs[i]
		str(j.ID)
		str(j.Tenant)
		u(uint64(j.Submit))
		u(uint64(j.Finish))
		u(uint64(j.Deadline))
		b(j.Completed)
		b(j.Killed)
	}
	u(uint64(len(s.Tasks)))
	for i := range s.Tasks {
		t := &s.Tasks[i]
		str(t.JobID)
		str(t.Tenant)
		u(uint64(t.Kind))
		u(uint64(t.Attempt))
		u(uint64(t.Start))
		u(uint64(t.End))
		u(uint64(t.Outcome))
	}
	return h.Sum64()
}

// Equal reports whether two schedules have identical record views. It is
// the exact check behind Fingerprint matches.
func (s *Schedule) Equal(o *Schedule) bool {
	if s == nil || o == nil {
		return s == o
	}
	if s.Capacity != o.Capacity || s.Horizon != o.Horizon ||
		len(s.Jobs) != len(o.Jobs) || len(s.Tasks) != len(o.Tasks) {
		return false
	}
	for i := range s.Jobs {
		if s.Jobs[i] != o.Jobs[i] {
			return false
		}
	}
	for i := range s.Tasks {
		if s.Tasks[i] != o.Tasks[i] {
			return false
		}
	}
	return true
}

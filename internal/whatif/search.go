package whatif

import (
	"fmt"
	"sync"
	"time"

	"tempo/internal/cluster"
	"tempo/internal/qs"
	"tempo/internal/workload"
)

// Cross-tick candidate search: EvaluateSearch is EvaluateBatch plus
// memory. The controller's decision loop scores near-identical candidate
// sets tick after tick — the incumbent is always re-scored, proposals
// cluster around it, and in both generator modes the sample traces are
// identical across ticks (replay shares one trace pointer; the profile
// generator redraws bit-identical traces from the same per-sample seed).
// EvaluateBatch deliberately forgets all of that between calls; the
// search state here retains it, in two exact-verified tiers per sample:
//
//   - a config tier keyed by configuration fingerprint (verified with
//     cluster.Config.Equal): the built-in predictor is a pure function of
//     (trace, configuration, horizon), so an identical configuration
//     scored against an identical trace reuses the whole QS vector with
//     no simulation at all — this is what makes warm-starting the
//     incumbent free;
//   - a schedule tier keyed by schedule fingerprint (verified with
//     cluster.Schedule.Equal), the cross-tick extension of the per-batch
//     evalCache: distinct configurations that predict identical schedules
//     share the QS derivation, now across ticks too.
//
// Both tiers reuse values only after an exact equality check, so reuse is
// bit-identical to recomputation and cannot perturb determinism — the
// same argument the per-batch evalCache already makes, extended in time.
// Stale state is impossible by construction: every call re-reconciles
// each sample's trace identity (pointer fast path, content comparison
// otherwise) and drops that sample's entries when the trace changed, and
// an epoch guard drops everything when the model's shape (template count,
// horizon, sample count) changes.
//
// EvaluateSearch optionally prunes candidates through qs.BoundSet lower
// bounds before simulating them — see the method comment for the
// contract the caller's keep callback must honor to stay ranking-safe.

// maxSearchConfigPerSample caps the config tier. 64 covers many ticks of
// candidate churn around the incumbent; the tier is FIFO, so a
// wandering optimizer evicts its oldest points first.
const maxSearchConfigPerSample = 64

// pairCache is what evalSample needs from a cache: the per-batch
// evalCache and the cross-tick searchState both implement it.
type pairCache interface {
	lookup(sample int, sched *cluster.Schedule, fp uint64) []float64
	store(sample int, sched *cluster.Schedule, fp uint64, vals []float64) bool
}

// cfgCacheEntry is one config-tier record: the exact configuration (a
// clone, so later caller mutations cannot corrupt the key) and its
// per-sample QS vector.
type cfgCacheEntry struct {
	fp   uint64
	cfg  cluster.Config
	vals []float64
}

// searchSample is one sample's slice of the search state.
type searchSample struct {
	trace  *workload.Trace
	bounds *qs.BoundSet
	sched  []evalCacheEntry
	cfgs   []cfgCacheEntry
}

// searchState is the cross-tick memory behind EvaluateSearch. The mutex
// guards slice headers only; entries are immutable once appended, and
// eviction advances the slice base instead of shifting elements in
// place, so a reader's unlocked snapshot is never written through.
type searchState struct {
	mu        sync.Mutex
	templates int
	horizon   time.Duration
	nsamples  int
	samples   []searchSample
}

// reconcile aligns the state with this call's model shape and sample
// traces, invalidating exactly what changed: everything on a shape
// (epoch) change, one sample's entries when that sample's trace content
// changed. Trace identity is the pointer when generators hand back the
// same trace (replay mode) and a content comparison otherwise (profile
// mode redraws an equal trace each call; a regenerated different trace
// fails the comparison and drops the sample's entries).
func (st *searchState) reconcile(templates int, horizon time.Duration, traces []*workload.Trace) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.templates != templates || st.horizon != horizon || st.nsamples != len(traces) {
		st.templates, st.horizon, st.nsamples = templates, horizon, len(traces)
		st.samples = make([]searchSample, len(traces))
	}
	for s, tr := range traces {
		cur := &st.samples[s]
		if cur.trace == tr {
			continue
		}
		if cur.trace != nil && cur.trace.Equal(tr) {
			cur.trace = tr
			continue
		}
		*cur = searchSample{trace: tr}
	}
}

// lookup is the schedule tier's read side (pairCache). Same unlocked
// exact-comparison idiom as evalCache.lookup: the mutex covers only the
// slice snapshot.
func (st *searchState) lookup(sample int, sched *cluster.Schedule, fp uint64) []float64 {
	st.mu.Lock()
	entries := st.samples[sample].sched
	st.mu.Unlock()
	for _, e := range entries {
		if e.fp == fp && e.sched.Equal(sched) {
			return e.vals
		}
	}
	return nil
}

// store is the schedule tier's write side (pairCache). Unlike the
// per-batch cache it never refuses: at capacity the oldest entry is
// evicted by advancing the slice base (append-only from any concurrent
// reader's perspective), so the pin protocol stays "stored means
// detached".
func (st *searchState) store(sample int, sched *cluster.Schedule, fp uint64, vals []float64) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	sm := &st.samples[sample]
	if len(sm.sched) >= maxCacheEntriesPerSample {
		sm.sched = sm.sched[1:]
	}
	sm.sched = append(sm.sched, evalCacheEntry{fp: fp, sched: sched, vals: vals})
	return true
}

// lookupConfig returns the cached per-sample QS vector for an exactly
// equal configuration, or nil. Called serially by EvaluateSearch, never
// from workers.
func (st *searchState) lookupConfig(sample int, fp uint64, cfg *cluster.Config) []float64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, e := range st.samples[sample].cfgs {
		if e.fp == fp && e.cfg.Equal(*cfg) {
			return e.vals
		}
	}
	return nil
}

// storeConfig records a freshly scored (configuration, sample) vector,
// evicting FIFO at capacity.
func (st *searchState) storeConfig(sample int, fp uint64, cfg cluster.Config, vals []float64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	sm := &st.samples[sample]
	if len(sm.cfgs) >= maxSearchConfigPerSample {
		sm.cfgs = sm.cfgs[1:]
	}
	sm.cfgs = append(sm.cfgs, cfgCacheEntry{fp: fp, cfg: cfg.Clone(), vals: vals})
}

// boundsFor lazily builds the sample's qs.BoundSet; nil when the horizon
// is unbounded (bounds need a finite prediction window).
func (st *searchState) boundsFor(sample int, templates []qs.Template, horizon time.Duration) *qs.BoundSet {
	st.mu.Lock()
	defer st.mu.Unlock()
	sm := &st.samples[sample]
	if sm.bounds == nil {
		sm.bounds = qs.NewBoundSet(templates, sm.trace, horizon)
	}
	return sm.bounds
}

// EvaluateSearch scores candidate configurations like EvaluateBatch —
// row i of preds is cfgs[i] averaged over the model's samples, and every
// returned prediction is bit-identical to what EvaluateBatch would
// produce — but with cross-tick reuse and optional bound-based pruning.
// cfgs[0] must be the incumbent (the currently applied configuration);
// it is always fully resolved first and its averaged prediction becomes
// the pruning baseline.
//
// keep, when non-nil, is consulted for each candidate i >= 1 before any
// simulation work, with a coordinatewise lower bound on cfgs[i]'s
// averaged QS vector (optimistic: no schedule under cfgs[i] can score
// below it) and cfgs[0]'s actual averaged prediction. Returning false
// prunes the candidate: preds[i] stays nil and the candidate is never
// simulated. Callers guarantee ranking safety — keep must return true
// for any candidate whose bound leaves it any chance of being selected.
// Both vectors are only valid during the call. Bounds require the
// built-in predictor and a finite horizon; otherwise keep is never
// invoked and no candidate is pruned.
//
// fresh[i] counts the samples whose predictor actually ran for cfgs[i];
// reused[i] counts config-tier hits (no simulation at all). A warm-
// started candidate has fresh[i] == 0 with a non-nil preds[i].
//
// The model's search state is only touched by this method. Calls on the
// same Model must not be concurrent (the control loop serializes
// decisions); EvaluateBatch remains stateless and safe alongside.
func (m *Model) EvaluateSearch(cfgs []cluster.Config, keep func(i int, lower, base []float64) bool) (preds [][]float64, fresh, reused []int, err error) {
	preds = make([][]float64, len(cfgs))
	fresh = make([]int, len(cfgs))
	reused = make([]int, len(cfgs))
	if len(cfgs) == 0 {
		return preds, fresh, reused, nil
	}
	samples := m.Samples
	if samples < 1 {
		samples = 1
	}
	traces, err := m.genSamples(samples, workersFor(m.Parallelism, samples))
	if err != nil {
		if len(cfgs) > 1 {
			return nil, nil, nil, fmt.Errorf("whatif: config 0: %w", err)
		}
		return nil, nil, nil, fmt.Errorf("whatif: %w", err)
	}
	if m.search == nil {
		m.search = newSearchState()
	}
	st := m.search
	st.reconcile(len(m.Templates), m.Horizon, traces)

	// The config tier (and the bounds that lean on predictor purity) only
	// apply to the built-in predictor; a custom Predict is an opaque
	// function we must call per (config, sample) pair. The schedule tier
	// stays on either way: equal schedules have equal QS vectors no matter
	// who predicted them.
	cacheable := m.Predict == nil
	fps := make([]uint64, len(cfgs))
	if cacheable {
		for i := range cfgs {
			fps[i] = cfgs[i].Fingerprint()
		}
	}

	vals := make([][]float64, len(cfgs)*samples)

	// resolve fully scores the given candidates: config-tier lookups
	// first (serial, so fresh/reused counts are deterministic), then one
	// fan-out over the missing (config, sample) pairs, then config-tier
	// stores in deterministic pair order.
	resolve := func(cands []int) error {
		var pending []int
		for _, c := range cands {
			for s := 0; s < samples; s++ {
				idx := c*samples + s
				if cacheable {
					if v := st.lookupConfig(s, fps[c], &cfgs[c]); v != nil {
						vals[idx] = v
						reused[c]++
						continue
					}
				}
				pending = append(pending, idx)
			}
		}
		if err := m.runSearchPairs(traces, cfgs, samples, pending, vals); err != nil {
			return err
		}
		for _, idx := range pending {
			fresh[idx/samples]++
			if cacheable {
				st.storeConfig(idx%samples, fps[idx/samples], cfgs[idx/samples], vals[idx])
			}
		}
		return nil
	}

	if err := resolve([]int{0}); err != nil {
		return nil, nil, nil, err
	}
	preds[0] = averageSamples(vals, 0, samples, len(m.Templates))

	pruned := make([]bool, len(cfgs))
	if keep != nil && cacheable && m.Horizon > 0 {
		for i := 1; i < len(cfgs); i++ {
			// Average the per-sample lower bounds with the same summation
			// order predictions use: float addition and division by a
			// positive count are monotone, so the averaged bound stays a
			// coordinatewise lower bound on the averaged prediction.
			lower := make([]float64, len(m.Templates))
			for s := 0; s < samples; s++ {
				lb := st.boundsFor(s, m.Templates, m.Horizon).Lower(&cfgs[i])
				for k := range lower {
					lower[k] += lb[k]
				}
			}
			for k := range lower {
				lower[k] /= float64(samples)
			}
			pruned[i] = !keep(i, lower, preds[0])
		}
	}

	var survivors []int
	for i := 1; i < len(cfgs); i++ {
		if !pruned[i] {
			survivors = append(survivors, i)
		}
	}
	if err := resolve(survivors); err != nil {
		return nil, nil, nil, err
	}
	for _, i := range survivors {
		preds[i] = averageSamples(vals, i, samples, len(m.Templates))
	}
	return preds, fresh, reused, nil
}

func newSearchState() *searchState { return &searchState{} }

// runSearchPairs fans the pending flat (config*samples + sample) indexes
// out over the worker pool, writing each pair's QS vector into vals.
// Error aggregation matches evalPairs: every pair runs even if one
// fails, and the winning error is the lowest pending position's, so the
// result is independent of worker timing.
func (m *Model) runSearchPairs(traces []*workload.Trace, cfgs []cluster.Config, samples int, pending []int, vals [][]float64) error {
	if len(pending) == 0 {
		return nil
	}
	predict := m.Predict
	if predict == nil {
		predict = DefaultPredictor
	}
	st := m.search
	errs := make([]error, len(pending))
	pooled := m.Predict == nil
	workers := m.Parallelism
	if workers > len(pending) {
		workers = len(pending)
	}
	if workers <= 1 {
		var sc *Scratch
		if pooled {
			sc = scratchPool.Get().(*Scratch)
		}
		for pi, idx := range pending {
			vals[idx], errs[pi] = m.evalSample(predict, st, sc, traces[idx%samples], cfgs[idx/samples], idx%samples)
			if errs[pi] != nil {
				break
			}
		}
		if pooled {
			scratchPool.Put(sc)
		}
	} else {
		runIndexedScratch(workers, len(pending), pooled, func(pi int, sc *Scratch) {
			idx := pending[pi]
			vals[idx], errs[pi] = m.evalSample(predict, st, sc, traces[idx%samples], cfgs[idx/samples], idx%samples)
		})
	}
	for pi, err := range errs {
		if err != nil {
			if len(cfgs) > 1 {
				return fmt.Errorf("whatif: config %d: %w", pending[pi]/samples, err)
			}
			return fmt.Errorf("whatif: %w", err)
		}
	}
	return nil
}

// averageSamples reduces config c's per-sample rows exactly like
// EvaluateBatch does — same summation order, so a config resolved
// through EvaluateSearch averages to the identical bits.
func averageSamples(vals [][]float64, c, samples, k int) []float64 {
	acc := make([]float64, k)
	for s := 0; s < samples; s++ {
		v := vals[c*samples+s]
		for i := range acc {
			acc[i] += v[i]
		}
	}
	for i := range acc {
		acc[i] /= float64(samples)
	}
	return acc
}

// Package benchrec collects headline benchmark metrics and persists them
// as the repo's BENCH_<pr>.json perf baselines. Benchmarks (both the
// in-package tempo harness and external-package service benchmarks, which
// share one test binary) call Record; the harness TestMain calls Write
// when TEMPO_BENCH_OUT names a file. cmd/benchdiff compares a freshly
// generated file against the committed baseline — the CI perf-regression
// gate.
package benchrec

import (
	"encoding/json"
	"os"
	"runtime"
	"sort"
	"sync"
)

// Entry is one benchmark's recorded metrics.
type Entry struct {
	Name    string             `json:"name"`
	Metrics map[string]float64 `json:"metrics"`
}

// Doc is the on-disk shape of a BENCH_<pr>.json file.
type Doc struct {
	Go         string  `json:"go"`
	Benchmarks []Entry `json:"benchmarks"`
}

var state struct {
	mu      sync.Mutex
	entries map[string]map[string]float64
}

// Record stores one benchmark's headline metrics, replacing any earlier
// record under the same name.
func Record(name string, metrics map[string]float64) {
	state.mu.Lock()
	defer state.mu.Unlock()
	if state.entries == nil {
		state.entries = map[string]map[string]float64{}
	}
	state.entries[name] = metrics
}

// Write renders everything recorded so far as stable-ordered JSON at
// path. Writing nothing (no records) is a no-op so plain test runs never
// touch the baseline.
func Write(path string) error {
	state.mu.Lock()
	defer state.mu.Unlock()
	if len(state.entries) == 0 {
		return nil
	}
	doc := Doc{Go: runtime.Version()}
	names := make([]string, 0, len(state.entries))
	for name := range state.entries {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		doc.Benchmarks = append(doc.Benchmarks, Entry{Name: name, Metrics: state.entries[name]})
	}
	b, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// Load parses a BENCH_<pr>.json file.
func Load(path string) (*Doc, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc Doc
	if err := json.Unmarshal(b, &doc); err != nil {
		return nil, err
	}
	return &doc, nil
}

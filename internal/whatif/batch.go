package whatif

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"tempo/internal/cluster"
	"tempo/internal/qs"
)

// DefaultParallelism returns the worker count that saturates the host: one
// per available CPU. It is the single source of the "0 means all CPUs"
// policy the command-line flags and the root package share.
func DefaultParallelism() int { return runtime.GOMAXPROCS(0) }

// EvaluateBatch predicts the QS vector for every configuration, each
// averaged over the model's sample count. The (configuration, sample)
// pairs are independent, so with Parallelism > 1 they are fanned out over
// a worker pool; the reduction runs in sample order afterwards, so the
// returned vectors are bit-identical to sequential evaluation. Row i of
// the result corresponds to cfgs[i].
//
// This is the Optimizer's hot path: one control-loop iteration scores the
// current configuration plus every PALD candidate in a single batch.
func (m *Model) EvaluateBatch(cfgs []cluster.Config) ([][]float64, error) {
	out := make([][]float64, len(cfgs))
	if len(cfgs) == 0 {
		return out, nil
	}
	samples := m.Samples
	if samples < 1 {
		samples = 1
	}
	vecs, err := m.evalPairs(cfgs, samples)
	if err != nil {
		return nil, err
	}
	for c := range cfgs {
		acc := make([]float64, len(m.Templates))
		for s := 0; s < samples; s++ {
			v := vecs[c*samples+s]
			for i := range acc {
				acc[i] += v[i]
			}
		}
		for i := range acc {
			acc[i] /= float64(samples)
		}
		out[c] = acc
	}
	return out, nil
}

// evalPairs scores every (configuration, sample) pair and returns the QS
// vectors indexed by cfg*samples + sample. Errors are aggregated
// deterministically: the pair with the lowest flat index wins, which is
// exactly the error sequential evaluation would have returned first.
func (m *Model) evalPairs(cfgs []cluster.Config, samples int) ([][]float64, error) {
	predict := m.Predict
	if predict == nil {
		predict = DefaultPredictor
	}
	total := len(cfgs) * samples
	vecs := make([][]float64, total)
	errs := make([]error, total)
	workers := m.Parallelism
	if workers > total {
		workers = total
	}
	if workers <= 1 {
		for idx := 0; idx < total; idx++ {
			vecs[idx], errs[idx] = m.evalSample(predict, cfgs[idx/samples], idx%samples)
			if errs[idx] != nil {
				break
			}
		}
	} else {
		// Work-stealing over a shared atomic counter: pairs vary wildly in
		// cost (candidate configurations change queueing behaviour), so
		// static striping would leave workers idle. Every pair runs even if
		// one fails — that keeps the winning error independent of goroutine
		// timing, and failures are cheap (config validation rejects them
		// before any simulation work).
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					idx := int(next.Add(1)) - 1
					if idx >= total {
						return
					}
					vecs[idx], errs[idx] = m.evalSample(predict, cfgs[idx/samples], idx%samples)
				}
			}()
		}
		wg.Wait()
	}
	for idx, err := range errs {
		if err != nil {
			if len(cfgs) > 1 {
				return nil, fmt.Errorf("whatif: config %d: %w", idx/samples, err)
			}
			return nil, fmt.Errorf("whatif: %w", err)
		}
	}
	return vecs, nil
}

// evalSample scores cfg on one workload sample.
func (m *Model) evalSample(predict Predictor, cfg cluster.Config, sample int) ([]float64, error) {
	trace, err := m.Gen(sample)
	if err != nil {
		return nil, fmt.Errorf("generating sample %d: %w", sample, err)
	}
	if trace == nil {
		return nil, fmt.Errorf("generating sample %d: generator returned a nil trace", sample)
	}
	sched, err := predict(trace, cfg, m.Horizon)
	if err != nil {
		return nil, fmt.Errorf("predicting sample %d: %w", sample, err)
	}
	if sched == nil {
		return nil, fmt.Errorf("predicting sample %d: predictor returned a nil schedule", sample)
	}
	return qs.EvalAll(m.Templates, sched, 0, sched.Horizon+time.Nanosecond), nil
}

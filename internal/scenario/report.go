package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Report is the canonical output of a scenario run. Its serialization is
// stable — fixed field order, no maps, deterministic float formatting — so
// committed golden reports diff cleanly and any behavioural drift in the
// scheduler, the workload generator, or the control loop shows up as a
// golden-file mismatch.
type Report struct {
	Scenario          string  `json:"scenario"`
	Seed              int64   `json:"seed"`
	Capacity          int     `json:"capacity"`
	IntervalMinutes   float64 `json:"interval_minutes"`
	Replay            bool    `json:"replay"`
	ControllerEnabled bool    `json:"controller_enabled"`
	// Objectives names the QS vector's components, in order.
	Objectives []string          `json:"objectives"`
	Iterations []IterationReport `json:"iterations"`
	Summary    Summary           `json:"summary"`
}

// IterationReport captures one control interval.
type IterationReport struct {
	Index int `json:"index"`
	// Capacity is the effective cluster size the interval ran with (differs
	// from the spec capacity after a mid-run capacity change).
	Capacity int `json:"capacity"`
	// Observed is the QS vector measured on the interval's task schedule.
	Observed []float64 `json:"observed"`
	// Switched and Reverted report the control loop's actions (always false
	// with the controller disabled).
	Switched bool `json:"switched"`
	Reverted bool `json:"reverted"`
	// Job counts over the interval's schedule.
	SubmittedJobs int `json:"submitted_jobs"`
	CompletedJobs int `json:"completed_jobs"`
	KilledJobs    int `json:"killed_jobs"`
	// DeadlineJobs counts submitted jobs carrying deadlines; Misses counts
	// those that completed after their deadline (zero slack).
	DeadlineJobs   int `json:"deadline_jobs"`
	DeadlineMisses int `json:"deadline_misses"`
	// Preemptions counts attempts the RM killed to feed starved tenants.
	Preemptions int `json:"preemptions"`
	// Useful/Wasted split the interval's container time: finished attempts
	// versus preempted/failed/killed ones (Figure 1's lost region).
	UsefulContainerSeconds float64 `json:"useful_container_seconds"`
	WastedContainerSeconds float64 `json:"wasted_container_seconds"`
}

// Summary aggregates the run.
type Summary struct {
	Switches           int `json:"switches"`
	Reverts            int `json:"reverts"`
	TotalPreemptions   int `json:"total_preemptions"`
	TotalCompletedJobs int `json:"total_completed_jobs"`
	// FirstObserved is iteration 0's QS vector; LastQuarterMean averages
	// the final quarter of iterations per objective.
	FirstObserved   []float64 `json:"first_observed"`
	LastQuarterMean []float64 `json:"last_quarter_mean"`
	// Improvement is the relative change from FirstObserved to
	// LastQuarterMean per objective (positive = QS reduced = SLO improved).
	Improvement []float64 `json:"improvement"`
	// FinalConfig is the RM configuration the loop converged to, sorted by
	// tenant name.
	FinalConfig []TenantConfigReport `json:"final_config"`
}

// TenantConfigReport is one tenant's final RM parameters.
type TenantConfigReport struct {
	Tenant                 string  `json:"tenant"`
	Weight                 float64 `json:"weight"`
	MinShare               int     `json:"min_share"`
	MaxShare               int     `json:"max_share"`
	SharePreemptSeconds    float64 `json:"share_preempt_seconds"`
	MinSharePreemptSeconds float64 `json:"min_share_preempt_seconds"`
}

// MarshalCanonical renders the report in its stable on-disk form: indented
// JSON with a trailing newline. Two runs of the same spec produce identical
// bytes regardless of what-if parallelism.
func (r *Report) MarshalCanonical() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return nil, fmt.Errorf("scenario: encoding report: %w", err)
	}
	return buf.Bytes(), nil
}

// WriteJSON writes the canonical form to w.
func (r *Report) WriteJSON(w io.Writer) error {
	b, err := r.MarshalCanonical()
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// SaveFile writes the canonical form to path.
func (r *Report) SaveFile(path string) error {
	b, err := r.MarshalCanonical()
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// ReadReport parses a report from r.
func ReadReport(rd io.Reader) (*Report, error) {
	var rep Report
	if err := json.NewDecoder(rd).Decode(&rep); err != nil {
		return nil, fmt.Errorf("scenario: decoding report: %w", err)
	}
	return &rep, nil
}

//go:build race

package exp

// raceEnabled reports whether the race detector instruments this test
// binary; performance floors are waived when it does.
const raceEnabled = true

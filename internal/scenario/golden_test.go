package scenario_test

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tempo/internal/scenario"
)

// update rewrites the golden reports instead of comparing against them:
//
//	go test ./internal/scenario -run TestGoldenScenarios -update
//
// Inspect the diff before committing: every changed line is a behavioural
// change in the scheduler, the workload generator, or the control loop.
var update = flag.Bool("update", false, "rewrite golden scenario reports")

// specPaths returns every committed scenario spec.
func specPaths(t *testing.T) []string {
	t.Helper()
	all, err := filepath.Glob(filepath.Join("testdata", "scenarios", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	var specs []string
	for _, p := range all {
		if !strings.HasSuffix(p, ".golden.json") {
			specs = append(specs, p)
		}
	}
	if len(specs) < 10 {
		t.Fatalf("found %d scenario specs, want >= 10 — the regression matrix must not shrink", len(specs))
	}
	return specs
}

func goldenPath(specPath string) string {
	return strings.TrimSuffix(specPath, ".json") + ".golden.json"
}

// TestGoldenScenarios runs every committed scenario and compares its
// canonical report byte-for-byte against the committed golden file.
func TestGoldenScenarios(t *testing.T) {
	for _, path := range specPaths(t) {
		path := path
		name := strings.TrimSuffix(filepath.Base(path), ".json")
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			spec, err := scenario.LoadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if spec.Name != name {
				t.Fatalf("spec name %q does not match file name %q", spec.Name, name)
			}
			rep, err := scenario.Run(spec, scenario.Options{Parallelism: 2})
			if err != nil {
				t.Fatal(err)
			}
			got, err := rep.MarshalCanonical()
			if err != nil {
				t.Fatal(err)
			}
			golden := goldenPath(path)
			if *update {
				if err := os.WriteFile(golden, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden report (generate with `go test ./internal/scenario -run TestGoldenScenarios -update`): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("report drifted from %s:\n%s\nIf the change is intended, regenerate with -update and commit the diff.",
					golden, firstDiff(got, want))
			}
		})
	}
}

// firstDiff renders the first differing line for a readable failure.
func firstDiff(got, want []byte) string {
	g := strings.Split(string(got), "\n")
	w := strings.Split(string(want), "\n")
	for i := 0; i < len(g) && i < len(w); i++ {
		if g[i] != w[i] {
			return fmt.Sprintf("line %d:\n  got:  %s\n  want: %s", i+1, g[i], w[i])
		}
	}
	return fmt.Sprintf("lengths differ: got %d lines, want %d lines", len(g), len(w))
}

// TestRunBitReproducibleAcrossParallelism asserts the acceptance criterion:
// the report bytes are identical for any what-if parallelism setting,
// including fully sequential evaluation. The stress tier runs here too —
// at 100 tenants the controller's candidate batches genuinely fan out, so
// this is where a parallelism-dependent reduction would surface.
func TestRunBitReproducibleAcrossParallelism(t *testing.T) {
	for _, name := range []string{"steady-two-tenant", "capacity-loss", "diurnal-drift", "stress-100", "stress-1000"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			path := filepath.Join("testdata", "scenarios", name+".json")
			var baseline []byte
			for _, par := range []int{1, 3, 8} {
				spec, err := scenario.LoadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				rep, err := scenario.Run(spec, scenario.Options{Parallelism: par})
				if err != nil {
					t.Fatal(err)
				}
				b, err := rep.MarshalCanonical()
				if err != nil {
					t.Fatal(err)
				}
				if baseline == nil {
					baseline = b
				} else if !bytes.Equal(baseline, b) {
					t.Fatalf("parallelism %d produced different report bytes:\n%s", par, firstDiff(b, baseline))
				}
			}
		})
	}
}

// TestGoldenFilesHaveSpecs catches orphaned goldens whose spec was renamed
// or deleted.
func TestGoldenFilesHaveSpecs(t *testing.T) {
	goldens, err := filepath.Glob(filepath.Join("testdata", "scenarios", "*.golden.json"))
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range goldens {
		spec := strings.TrimSuffix(g, ".golden.json") + ".json"
		if _, err := os.Stat(spec); err != nil {
			t.Errorf("golden %s has no matching spec %s", g, spec)
		}
	}
}

package core

import (
	"errors"
	"testing"
	"time"

	"tempo/internal/cluster"
	"tempo/internal/pald"
	"tempo/internal/qs"
	"tempo/internal/whatif"
	"tempo/internal/workload"
)

// twoTenantSetup builds the canonical §8.2.1 scenario: a deadline-driven
// tenant and a best-effort tenant on an overcommitted cluster, starting
// from a deliberately skewed "expert" configuration.
func twoTenantSetup(t *testing.T, seed int64) (Config, cluster.Config) {
	t.Helper()
	profiles := []workload.TenantProfile{
		workload.DeadlineDriven("prod", 1.2),
		workload.BestEffort("adhoc", 1.2),
	}
	capacity := 40
	space := cluster.DefaultSpace(capacity, []string{"prod", "adhoc"})
	templates := []qs.Template{
		qs.Template{Queue: "prod", Metric: qs.DeadlineViolations, Slack: 0.25}.WithTarget(0.05),
		{Queue: "adhoc", Metric: qs.AvgResponseTime},
	}
	model, err := whatif.FromProfiles(templates, profiles, time.Hour, seed+500)
	if err != nil {
		t.Fatal(err)
	}
	env := &EmulatedCluster{Profiles: profiles, Noise: cluster.DefaultNoise(seed), Seed: seed}
	cfg := Config{
		Space:       space,
		Templates:   templates,
		Model:       model,
		Environment: env,
		Interval:    time.Hour,
		Candidates:  4,
		PALD:        pald.Options{Seed: seed, MaxStep: 0.2},
	}
	// A skewed expert config: best-effort tenant starved, huge preemption
	// exposure for prod.
	initial := cluster.Config{TotalContainers: capacity, Tenants: map[string]cluster.TenantConfig{
		"prod":  {Weight: 4, MinShare: 20, MaxShare: 40, MinSharePreemptTimeout: 20 * time.Second, SharePreemptTimeout: time.Minute},
		"adhoc": {Weight: 0.5, MaxShare: 10},
	}}
	return cfg, initial
}

func TestNewControllerValidation(t *testing.T) {
	cfg, initial := twoTenantSetup(t, 1)
	if _, err := NewController(cfg, initial); err != nil {
		t.Fatal(err)
	}
	bad := cfg
	bad.Space = nil
	if _, err := NewController(bad, initial); err == nil {
		t.Fatal("nil space accepted")
	}
	bad = cfg
	bad.Templates = nil
	if _, err := NewController(bad, initial); err == nil {
		t.Fatal("no templates accepted")
	}
	bad = cfg
	bad.Model = nil
	if _, err := NewController(bad, initial); err == nil {
		t.Fatal("nil model accepted")
	}
	bad = cfg
	bad.Environment = nil
	if _, err := NewController(bad, initial); err == nil {
		t.Fatal("nil environment accepted")
	}
	if _, err := NewController(cfg, cluster.Config{}); err == nil {
		t.Fatal("invalid initial config accepted")
	}
}

func TestControllerDefaults(t *testing.T) {
	cfg, initial := twoTenantSetup(t, 2)
	cfg.Interval = 0
	cfg.Candidates = 0
	c, err := NewController(cfg, initial)
	if err != nil {
		t.Fatal(err)
	}
	if c.cfg.Interval != 30*time.Minute || c.cfg.Candidates != 5 {
		t.Fatalf("defaults not applied: %v, %v", c.cfg.Interval, c.cfg.Candidates)
	}
}

func TestStepRecordsIteration(t *testing.T) {
	cfg, initial := twoTenantSetup(t, 3)
	c, err := NewController(cfg, initial)
	if err != nil {
		t.Fatal(err)
	}
	it, err := c.Step()
	if err != nil {
		t.Fatal(err)
	}
	if it.Index != 0 {
		t.Fatalf("index = %d", it.Index)
	}
	if len(it.Observed) != 2 {
		t.Fatalf("observed = %v", it.Observed)
	}
	if len(c.History()) != 1 {
		t.Fatal("history not recorded")
	}
}

func TestTargetsRatchetForBestEffort(t *testing.T) {
	cfg, initial := twoTenantSetup(t, 4)
	c, err := NewController(cfg, initial)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Step(); err != nil {
		t.Fatal(err)
	}
	targets := c.Targets()
	if !targets[0].Constrained || targets[0].R != 0.05 {
		t.Fatalf("fixed target lost: %+v", targets[0])
	}
	if !targets[1].Constrained {
		t.Fatal("best-effort target not ratcheted")
	}
	first := targets[1].R
	for i := 0; i < 3; i++ {
		if _, err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Targets()[1].R; got > first+1e-9 {
		t.Fatalf("ratchet went backwards: %v -> %v", first, got)
	}
}

// TestControlLoopImprovesBestEffortLatency is the headline end-to-end
// check: starting from a skewed expert configuration, a handful of
// iterations must reduce the best-effort tenant's average response time
// without breaking the deadline SLO — the shape of Figure 6.
func TestControlLoopImprovesBestEffortLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end control loop is slow")
	}
	cfg, initial := twoTenantSetup(t, 5)
	c, err := NewController(cfg, initial)
	if err != nil {
		t.Fatal(err)
	}
	history, err := c.Run(12)
	if err != nil {
		t.Fatal(err)
	}
	imp := Improvement(history, 1)
	if imp < 0.1 {
		t.Fatalf("best-effort AJR improvement = %.1f%%, want >= 10%%", imp*100)
	}
	// Deadline violations in the final quarter must stay near the target.
	tail := history[9:]
	var dl float64
	for _, it := range tail {
		dl += it.Observed[0]
	}
	dl /= float64(len(tail))
	if dl > 0.30 {
		t.Fatalf("final deadline violations = %.2f, want bounded", dl)
	}
}

func TestRevertGuardRollsBack(t *testing.T) {
	cfg, initial := twoTenantSetup(t, 6)
	c, err := NewController(cfg, initial)
	if err != nil {
		t.Fatal(err)
	}
	// Force a previous observation that is strictly better than anything
	// achievable, so the guard must fire on the next step.
	c.hasPrev = true
	c.prevObserved = []float64{-1, -1}
	c.prevConfig = initial.Clone()
	it, err := c.Step()
	if err != nil {
		t.Fatal(err)
	}
	if !it.Reverted {
		t.Fatal("guard did not revert")
	}
}

func TestRevertOffNeverReverts(t *testing.T) {
	cfg, initial := twoTenantSetup(t, 7)
	cfg.Revert = RevertOff
	c, err := NewController(cfg, initial)
	if err != nil {
		t.Fatal(err)
	}
	c.hasPrev = true
	c.prevObserved = []float64{-1, -1}
	c.prevConfig = initial.Clone()
	it, err := c.Step()
	if err != nil {
		t.Fatal(err)
	}
	if it.Reverted {
		t.Fatal("RevertOff still reverted")
	}
}

func TestRevertOnNonDominancePolicy(t *testing.T) {
	cfg, initial := twoTenantSetup(t, 8)
	cfg.Revert = RevertOnNonDominance
	c, err := NewController(cfg, initial)
	if err != nil {
		t.Fatal(err)
	}
	c.hasPrev = true
	c.prevObserved = []float64{1e9, 1e9} // everything dominates this
	c.prevConfig = initial.Clone()
	it, err := c.Step()
	if err != nil {
		t.Fatal(err)
	}
	if it.Reverted {
		t.Fatal("dominating observation should not revert")
	}
}

func TestEnvironmentErrorPropagates(t *testing.T) {
	cfg, initial := twoTenantSetup(t, 9)
	boom := errors.New("boom")
	cfg.Environment = envFunc(func(cluster.Config, time.Duration, int) (*cluster.Schedule, error) {
		return nil, boom
	})
	c, err := NewController(cfg, initial)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Step(); !errors.Is(err, boom) {
		t.Fatalf("error not propagated: %v", err)
	}
}

type envFunc func(cluster.Config, time.Duration, int) (*cluster.Schedule, error)

func (f envFunc) Observe(cfg cluster.Config, interval time.Duration, iter int) (*cluster.Schedule, error) {
	return f(cfg, interval, iter)
}

func TestTraceEnvironmentWindows(t *testing.T) {
	tr, err := workload.Generate([]workload.TenantProfile{workload.BestEffort("A", 2)},
		workload.GenerateOptions{Horizon: 3 * time.Hour, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	env := &TraceEnvironment{Trace: tr}
	cfg := cluster.Config{TotalContainers: 20, Tenants: map[string]cluster.TenantConfig{"A": {Weight: 1}}}
	s0, err := env.Observe(cfg, time.Hour, 0)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := env.Observe(cfg, time.Hour, 1)
	if err != nil {
		t.Fatal(err)
	}
	want0 := len(tr.Window(0, time.Hour).Jobs)
	want1 := len(tr.Window(time.Hour, 2*time.Hour).Jobs)
	if len(s0.Jobs) != want0 || len(s1.Jobs) != want1 {
		t.Fatalf("window job counts %d/%d, want %d/%d", len(s0.Jobs), len(s1.Jobs), want0, want1)
	}
}

func TestEmulatedClusterDifferentIterationsDiffer(t *testing.T) {
	env := &EmulatedCluster{
		Profiles: []workload.TenantProfile{workload.BestEffort("A", 2)},
		Seed:     11,
	}
	cfg := cluster.Config{TotalContainers: 20, Tenants: map[string]cluster.TenantConfig{"A": {Weight: 1}}}
	s0, err := env.Observe(cfg, time.Hour, 0)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := env.Observe(cfg, time.Hour, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(s0.Jobs) == len(s1.Jobs) && len(s0.Tasks) == len(s1.Tasks) {
		same := true
		for i := range s0.Jobs {
			if s0.Jobs[i].Submit != s1.Jobs[i].Submit {
				same = false
				break
			}
		}
		if same {
			t.Fatal("iterations produced identical workloads")
		}
	}
}

func TestImprovementHelper(t *testing.T) {
	if Improvement(nil, 0) != 0 {
		t.Fatal("empty history")
	}
	hist := []Iteration{
		{Observed: []float64{100}},
		{Observed: []float64{80}},
		{Observed: []float64{60}},
		{Observed: []float64{50}},
	}
	if got := Improvement(hist, 0); got != 0.5 {
		t.Fatalf("Improvement = %v, want 0.5", got)
	}
	zero := []Iteration{{Observed: []float64{0}}, {Observed: []float64{1}}}
	if Improvement(zero, 0) != 0 {
		t.Fatal("zero baseline should return 0")
	}
}

func TestRandomSearchStrategyWorksInLoop(t *testing.T) {
	cfg, initial := twoTenantSetup(t, 12)
	rs, err := pald.NewRandomSearch(cfg.Space.Dim(), 0.2, 12)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Strategy = rs
	c, err := NewController(cfg, initial)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(2); err != nil {
		t.Fatal(err)
	}
	if len(c.History()) != 2 {
		t.Fatal("history incomplete")
	}
}

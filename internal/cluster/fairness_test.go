package cluster

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"tempo/internal/workload"
)

// saturating returns a trace in which every listed tenant has far more
// work than the cluster can serve in the measurement window.
func saturating(tenants []string, taskDur time.Duration, tasksPerJob int) *workload.Trace {
	var jobs []workload.JobSpec
	for ti, tenant := range tenants {
		durs := make([]time.Duration, tasksPerJob)
		for i := range durs {
			durs[i] = taskDur
		}
		jobs = append(jobs, workload.NewMapReduceJob("sat-"+tenant+"-"+string(rune('a'+ti)), tenant, 0, durs, nil))
	}
	tr := &workload.Trace{Name: "saturating", Horizon: 100 * time.Hour, Jobs: jobs}
	tr.Sort()
	return tr
}

// TestLongRunAllocationMatchesWeights: with saturating demand and no
// limits, the time-integrated allocation ratio converges to the weight
// ratio — the defining property of weighted fair sharing.
func TestLongRunAllocationMatchesWeights(t *testing.T) {
	tr := saturating([]string{"A", "B"}, 30*time.Second, 4000)
	cfg := cfg2(12, TenantConfig{Weight: 1}, TenantConfig{Weight: 3})
	s, err := Run(tr, cfg, Options{Horizon: 2 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	secs := func(tenant string) float64 {
		var total time.Duration
		for _, task := range s.TasksByTenant(tenant) {
			total += task.Duration()
		}
		return total.Seconds()
	}
	ratio := secs("B") / secs("A")
	if math.Abs(ratio-3) > 0.25 {
		t.Fatalf("long-run allocation ratio = %.2f, want ≈ 3", ratio)
	}
}

// TestOvercommittedMinSharesScaleDown: when Σ min shares exceed capacity,
// no tenant starves completely and capacity is never exceeded.
func TestOvercommittedMinSharesScaleDown(t *testing.T) {
	tr := saturating([]string{"A", "B", "C"}, 20*time.Second, 500)
	cfg := Config{TotalContainers: 10, Tenants: map[string]TenantConfig{
		"A": {Weight: 1, MinShare: 8, MinSharePreemptTimeout: 30 * time.Second},
		"B": {Weight: 1, MinShare: 8, MinSharePreemptTimeout: 30 * time.Second},
		"C": {Weight: 1, MinShare: 8, MinSharePreemptTimeout: 30 * time.Second},
	}}
	s, err := Run(tr, cfg, Options{Horizon: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	assertCapacityRespected(t, s)
	for _, tenant := range []string{"A", "B", "C"} {
		if len(s.TasksByTenant(tenant)) == 0 {
			t.Fatalf("tenant %s fully starved under overcommitted mins", tenant)
		}
	}
}

// TestMultiStageDAGRespectsAllDependencies verifies diamond-DAG stage
// ordering end to end on the scheduler (not just CriticalPath).
func TestMultiStageDAGRespectsAllDependencies(t *testing.T) {
	sec := func(d int) []workload.TaskSpec {
		return []workload.TaskSpec{{Kind: workload.Map, Duration: time.Duration(d) * time.Second}}
	}
	j := workload.JobSpec{
		ID: "diamond", Tenant: "A",
		Stages: []workload.StageSpec{
			{Tasks: sec(10)},                        // 0
			{DependsOn: []int{0}, Tasks: sec(5)},    // 1
			{DependsOn: []int{0}, Tasks: sec(20)},   // 2
			{DependsOn: []int{1, 2}, Tasks: sec(3)}, // 3
		},
	}
	tr := mkTrace(j)
	s, err := Predict(tr, Config{TotalContainers: 8, Tenants: map[string]TenantConfig{"A": {Weight: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	starts := map[int]time.Duration{}
	ends := map[int]time.Duration{}
	for i, task := range s.Tasks {
		_ = i
		// Map records to stages by duration (each stage has a distinct one).
		var stage int
		switch task.Duration() {
		case 10 * time.Second:
			stage = 0
		case 5 * time.Second:
			stage = 1
		case 20 * time.Second:
			stage = 2
		case 3 * time.Second:
			stage = 3
		}
		starts[stage] = task.Start
		ends[stage] = task.End
	}
	if starts[1] < ends[0] || starts[2] < ends[0] {
		t.Fatal("stages 1/2 started before stage 0 finished")
	}
	if starts[3] < ends[1] || starts[3] < ends[2] {
		t.Fatal("stage 3 started before both parents finished")
	}
	if got := findJob(t, s, "diamond").Finish; got != 33*time.Second {
		t.Fatalf("diamond finish = %v, want 33s", got)
	}
}

// TestMinShareAboveCapacityClamps: a min share larger than the cluster is
// effectively the whole cluster; the scheduler must not wedge.
func TestMinShareAboveCapacityClamps(t *testing.T) {
	a := job("a", "A", 0, 8, 10*time.Second)
	cfg := Config{TotalContainers: 4, Tenants: map[string]TenantConfig{
		"A": {Weight: 1, MinShare: 100},
	}}
	s, err := Predict(mkTrace(a), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !findJob(t, s, "a").Completed {
		t.Fatal("job did not complete")
	}
}

// Property: preemption never pushes a victim below its own instantaneous
// fair share by more than one container, and the starved tenant's
// allocation never exceeds its target as a result of the kills.
func TestPropertyPreemptionBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		capacity := 4 + rng.Intn(8)
		dur := time.Duration(10+rng.Intn(100)) * time.Minute
		a := job("a", "A", 0, capacity*2, dur)
		b := job("b", "B", time.Duration(1+rng.Intn(30))*time.Second, 1+rng.Intn(capacity), time.Minute)
		cfg := cfg2(capacity,
			TenantConfig{Weight: 1},
			TenantConfig{Weight: 1, MinShare: 1 + rng.Intn(capacity/2+1), MinSharePreemptTimeout: time.Duration(5+rng.Intn(60)) * time.Second})
		s, err := Predict(mkTrace(a, b), cfg)
		if err != nil {
			return false
		}
		// Global invariants suffice here: capacity respected and both
		// jobs eventually done.
		for _, p := range s.UsageTimeline("") {
			if p.Count > capacity || p.Count < 0 {
				return false
			}
		}
		for _, j := range s.Jobs {
			if !j.Completed {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: with noise disabled, Run and Predict agree exactly.
func TestPropertyPredictEqualsNoiselessRun(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr, cfg := randomScenario(rng)
		a, err := Predict(tr, cfg)
		if err != nil {
			return false
		}
		b, err := Run(tr, cfg, Options{})
		if err != nil {
			return false
		}
		if len(a.Tasks) != len(b.Tasks) {
			return false
		}
		for i := range a.Tasks {
			if a.Tasks[i] != b.Tasks[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: lowering a tenant's max share can never speed up that tenant's
// last completion (monotonicity of limits).
func TestPropertyMaxShareMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		capacity := 4 + rng.Intn(6)
		nTasks := 5 + rng.Intn(20)
		dur := time.Duration(5+rng.Intn(120)) * time.Second
		a := job("a", "A", 0, nTasks, dur)
		run := func(maxShare int) time.Duration {
			cfg := Config{TotalContainers: capacity, Tenants: map[string]TenantConfig{
				"A": {Weight: 1, MaxShare: maxShare},
			}}
			s, err := Predict(mkTrace(a), cfg)
			if err != nil {
				return -1
			}
			return s.Jobs[0].Finish
		}
		lo := 1 + rng.Intn(capacity)
		hi := lo + rng.Intn(capacity-lo+1)
		fLo, fHi := run(lo), run(hi)
		if fLo < 0 || fHi < 0 {
			return false
		}
		return fHi <= fLo
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestPreemptionTimeoutZeroNeverPreempts double-checks both levels.
func TestPreemptionTimeoutZeroNeverPreempts(t *testing.T) {
	a := job("a", "A", 0, 8, time.Hour)
	b := job("b", "B", time.Second, 8, time.Minute)
	cfg := cfg2(8,
		TenantConfig{Weight: 1},
		TenantConfig{Weight: 5, MinShare: 4}) // no timeouts set
	s, err := Predict(mkTrace(a, b), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.PreemptionCount("", nil); got != 0 {
		t.Fatalf("preemptions = %d with zero timeouts", got)
	}
}

// Package analysis is tempolint's analyzer framework: a deliberately
// small, dependency-free re-statement of the golang.org/x/tools
// go/analysis contract (Analyzer, Pass, Diagnostic) plus the repo's
// suppression convention. The four analyzers under this directory
// encode invariants the test suite otherwise only checks at runtime —
// golden-report determinism, pooled-arena ownership, hot-path
// allocation discipline, and the canonical event-stream order — so a
// violation is caught when the code is linted, not after a golden has
// already diverged.
//
// Suppression convention: a finding is silenced by a comment
//
//	//tempolint:ignore <analyzer> <reason>
//
// placed on the flagged line or on the line directly above it. The
// reason is mandatory; an ignore without one, or one that silences
// nothing, is itself reported. Nightly CI runs with suppressions
// disabled so the ignored sites stay visible.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// tempolint:ignore comments.
	Name string
	// Doc is a one-paragraph description of the invariant.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// A Pass is one (analyzer, package) unit of work.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
	// Suppressed records that a tempolint:ignore matched; Reason is the
	// ignore comment's justification.
	Suppressed bool
	Reason     string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// --- shared type/AST helpers used by the analyzers ---

// NamedTypeName returns the object name of t after stripping pointers
// and aliases ("Schedule" for *cluster.Schedule), or "".
func NamedTypeName(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	if a, ok := t.(*types.Alias); ok {
		return a.Obj().Name()
	}
	return ""
}

// CalleeFunc resolves a call expression to the *types.Func it invokes
// (method or package-level function), or nil for builtins, conversions,
// and calls of function-typed values.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil
		}
		// Package-qualified call: pkg.F.
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// IsMethodCall reports whether call invokes a method with the given
// name on a receiver whose (pointer-stripped) named type is recvType;
// empty recvType matches any receiver. It returns the receiver
// expression when it matches.
func IsMethodCall(info *types.Info, call *ast.CallExpr, recvType, name string) (recv ast.Expr, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel || sel.Sel.Name != name {
		return nil, false
	}
	s, isMethod := info.Selections[sel]
	if !isMethod || s.Kind() != types.MethodVal {
		return nil, false
	}
	if recvType != "" && NamedTypeName(s.Recv()) != recvType {
		return nil, false
	}
	return sel.X, true
}

// IsBuiltinAppend reports whether call invokes the predeclared append
// (not a user function shadowing the name).
func IsBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// ObjectOf returns the object an identifier expression denotes, looking
// through parentheses, or nil when the expression is not a plain
// identifier.
func ObjectOf(info *types.Info, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// UsesObject reports whether node mentions obj anywhere beneath it.
func UsesObject(info *types.Info, node ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// FileHasDirective reports whether the file carries a
// "//tempolint:<name>" comment (anywhere; by convention it sits above
// the package clause).
func FileHasDirective(f *ast.File, name string) bool {
	want := "//tempolint:" + name
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(c.Text)
			if text == want || strings.HasPrefix(text, want+" ") {
				return true
			}
		}
	}
	return false
}

// FuncIsHot reports whether the function declaration is annotated with
// a "//tempo:hot" directive in (or directly above) its doc comment.
func FuncIsHot(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(strings.TrimSpace(c.Text), "//tempo:hot") {
			return true
		}
	}
	return false
}

// FileFor returns the *ast.File of the pass containing pos.
func (p *Pass) FileFor(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

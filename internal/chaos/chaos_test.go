package chaos_test

import (
	"strings"
	"testing"
	"time"

	"tempo/internal/chaos"
)

// drainDecisions pulls a fixed decision schedule out of an injector:
// n tick decisions for each named cluster plus n handler and fsync
// draws, interleaved the same way every call.
func drainDecisions(t *testing.T, in *chaos.Injector, clusters []string, n int) []string {
	t.Helper()
	var out []string
	for i := 0; i < n; i++ {
		for _, c := range clusters {
			delay, tear, at := in.TickFaults(c)
			out = append(out, c, delay.String(), boolStr(tear), time.Duration(at).String())
		}
		out = append(out, boolStr(in.ShedRequest()), in.FsyncStall().String())
	}
	return out
}

func boolStr(b bool) string {
	if b {
		return "t"
	}
	return "f"
}

func TestDeterministicDecisions(t *testing.T) {
	spec := chaos.Spec{
		TickLatency: 0.3, TickLatencyMs: 5,
		WALFault:     0.25,
		HandlerError: 0.2,
		FsyncStall:   0.2, FsyncStallMs: 3,
	}
	clusters := []string{"c-a", "c-b", "c-c"}
	mk := func(seed int64) []string {
		in, err := chaos.New(seed, spec)
		if err != nil {
			t.Fatal(err)
		}
		return drainDecisions(t, in, clusters, 64)
	}
	a, b := mk(7), mk(7)
	if strings.Join(a, "|") != strings.Join(b, "|") {
		t.Fatalf("same seed produced different decision streams")
	}
	if strings.Join(a, "|") == strings.Join(mk(8), "|") {
		t.Fatalf("different seeds produced identical decision streams")
	}
	// Counts are part of the deterministic surface too.
	inA, _ := chaos.New(7, spec)
	inB, _ := chaos.New(7, spec)
	drainDecisions(t, inA, clusters, 64)
	drainDecisions(t, inB, clusters, 64)
	if inA.Counts() != inB.Counts() {
		t.Fatalf("same seed, different counts: %+v vs %+v", inA.Counts(), inB.Counts())
	}
	c := inA.Counts()
	if c.TickDelays == 0 || c.WALFaults == 0 || c.HandlerSheds == 0 || c.FsyncStalls == 0 {
		t.Fatalf("expected every class to fire at these probabilities, got %+v", c)
	}
}

func TestClusterStreamsIndependent(t *testing.T) {
	// One cluster's decision sequence must not depend on what other
	// clusters did in between — that's what makes shard interleaving
	// irrelevant.
	spec := chaos.Spec{TickLatency: 0.5, TickLatencyMs: 1, WALFault: 0.5}
	seq := func(noise bool) []string {
		in, err := chaos.New(3, spec)
		if err != nil {
			t.Fatal(err)
		}
		var out []string
		for i := 0; i < 32; i++ {
			if noise {
				in.TickFaults("other")
				in.ShedRequest()
			}
			d, tear, at := in.TickFaults("target")
			out = append(out, d.String(), boolStr(tear), time.Duration(at).String())
		}
		return out
	}
	if strings.Join(seq(false), "|") != strings.Join(seq(true), "|") {
		t.Fatalf("interleaved traffic on other clusters perturbed the target's fault schedule")
	}
}

func TestProbabilityEdges(t *testing.T) {
	never, err := chaos.New(1, chaos.Spec{})
	if err != nil {
		t.Fatal(err)
	}
	always, err := chaos.New(1, chaos.Spec{
		TickLatency: 1, TickLatencyMs: 1,
		WALFault:     1,
		HandlerError: 1,
		FsyncStall:   1, FsyncStallMs: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if d, tear, _ := never.TickFaults("c"); d != 0 || tear {
			t.Fatalf("zero spec injected a fault")
		}
		if never.ShedRequest() || never.FsyncStall() != 0 {
			t.Fatalf("zero spec injected a fault")
		}
		if d, tear, at := always.TickFaults("c"); d == 0 || !tear || at < 0 || at >= 12 {
			t.Fatalf("p=1 spec missed a fault (delay=%v tear=%v at=%d)", d, tear, at)
		}
		if !always.ShedRequest() || always.FsyncStall() == 0 {
			t.Fatalf("p=1 spec missed a fault")
		}
	}
	// A nil injector is inert — callers don't need to guard.
	var nilInj *chaos.Injector
	if d, tear, _ := nilInj.TickFaults("c"); d != 0 || tear || nilInj.ShedRequest() || nilInj.FsyncStall() != 0 {
		t.Fatalf("nil injector injected a fault")
	}
}

func TestParseSpec(t *testing.T) {
	s, err := chaos.ParseSpec(strings.NewReader(`{"tick_latency": 0.5, "wal_fault": 0.1}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.TickLatency != 0.5 || s.WALFault != 0.1 {
		t.Fatalf("parsed spec %+v", s)
	}
	if s.TickLatencyMs == 0 {
		t.Fatalf("enabled tick latency did not default its magnitude")
	}
	if _, err := chaos.ParseSpec(strings.NewReader(`{"tick_latncy": 0.5}`)); err == nil {
		t.Fatalf("unknown field accepted")
	}
	if _, err := chaos.ParseSpec(strings.NewReader(`{"wal_fault": 1.5}`)); err == nil {
		t.Fatalf("out-of-range probability accepted")
	}
	if _, err := chaos.New(1, chaos.Spec{FsyncStallMs: -1}); err == nil {
		t.Fatalf("negative magnitude accepted")
	}
	if err := chaos.Default().Validate(); err != nil {
		t.Fatalf("default spec invalid: %v", err)
	}
}

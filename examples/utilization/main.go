// Utilization reproduces the §8.2.2 story: badly tuned preemption timeouts
// kill long reduce tasks, wasting work (Figure 1's region I) and dragging
// effective utilization down. Tempo adds map/reduce utilization SLOs and
// self-tunes the preemption settings.
//
//	go run ./examples/utilization
package main

import (
	"fmt"
	"log"
	"time"

	"tempo"
)

const (
	capacity = 48
	interval = time.Hour
)

func main() {
	// The preemption-victim mix: a deadline tenant with aggressive
	// preemption rights and a best-effort tenant running long reduces.
	deadline := tempo.DeadlineDriven("deadline", 1.8)
	bestEffort := tempo.BestEffort("besteffort", 1.8)
	trace, err := tempo.Generate([]tempo.TenantProfile{deadline, bestEffort},
		tempo.GenerateOptions{Horizon: interval, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}

	expert := tempo.ClusterConfig{
		TotalContainers: capacity,
		Tenants: map[string]tempo.TenantConfig{
			"deadline": {
				Weight: 3, MinShare: capacity / 2,
				MinSharePreemptTimeout: 15 * time.Second, // hair-trigger preemption
				SharePreemptTimeout:    45 * time.Second,
			},
			"besteffort": {Weight: 1},
		},
	}

	// Measure the expert configuration's waste.
	before, err := tempo.Run(trace, expert, tempo.RunOptions{Horizon: 2 * interval})
	if err != nil {
		log.Fatal(err)
	}
	reportWaste("expert config", before)

	// SLOs: keep deadlines, keep effective utilization of both container
	// kinds at least at the expert level, minimize best-effort latency.
	mapKind, redKind := tempo.Map, tempo.Reduce
	end := before.Horizon + time.Nanosecond
	utilMap := tempo.Template{Metric: tempo.Utilization, TaskKind: &mapKind, EffectiveOnly: true}
	utilRed := tempo.Template{Metric: tempo.Utilization, TaskKind: &redKind, EffectiveOnly: true}
	templates := []tempo.Template{
		tempo.Template{Queue: "deadline", Metric: tempo.DeadlineViolations, Slack: 0.25}.WithTarget(0.05),
		{Queue: "besteffort", Metric: tempo.AvgResponseTime},
		utilMap.WithTarget(tempo.Evaluate([]tempo.Template{utilMap}, before, 0, end)[0]),
		utilRed.WithTarget(tempo.Evaluate([]tempo.Template{utilRed}, before, 0, end)[0]),
	}

	model, err := tempo.NewWhatIfFromTrace(templates, trace)
	if err != nil {
		log.Fatal(err)
	}
	model.Horizon = 2 * interval
	model.Parallelism = tempo.DefaultParallelism()
	ctl, err := tempo.NewController(tempo.ControllerConfig{
		Space:       tempo.DefaultSpace(capacity, []string{"deadline", "besteffort"}),
		Templates:   templates,
		Model:       model,
		Environment: &tempo.ReplayEnvironment{Trace: trace, Noise: tempo.DefaultNoise(6)},
		Interval:    2 * interval,
		Candidates:  5,
	}, expert)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := ctl.Run(10); err != nil {
		log.Fatal(err)
	}

	// Replay the same workload under the tuned configuration.
	after, err := tempo.Run(trace, ctl.Current(), tempo.RunOptions{Horizon: 2 * interval})
	if err != nil {
		log.Fatal(err)
	}
	reportWaste("tempo-tuned config", after)

	tuned := ctl.Current()
	fmt.Println("\ntuned preemption timeouts:")
	for _, name := range []string{"deadline", "besteffort"} {
		tc := tuned.Tenant(name)
		fmt.Printf("  %-12s minSharePreempt=%-8s sharePreempt=%s\n",
			name, tc.MinSharePreemptTimeout.Round(time.Second), tc.SharePreemptTimeout.Round(time.Second))
	}
}

func reportWaste(label string, s *tempo.Schedule) {
	useful, wasted := s.ContainerSeconds()
	total := useful + wasted
	eff := 0.0
	if total > 0 {
		eff = float64(useful) / float64(total)
	}
	fmt.Printf("%-20s preempted attempts=%-4d wasted=%-14s effective work fraction=%.3f\n",
		label, s.PreemptionCount("", nil), wasted.Round(time.Second), eff)
}

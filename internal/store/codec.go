//tempolint:deterministic

package store

import (
	"encoding/binary"
	"fmt"
	"time"

	"tempo/internal/cluster"
	"tempo/internal/workload"
)

// Tick-record codec. One WAL record carries one committed tick: the tick
// index, the observed schedule's capacity and horizon, and its canonical
// event stream (cluster.Schedule.Events). The encoding is a pure function
// of the schedule — same observation, same bytes — and DecodeTick +
// cluster.ReplaySchedule invert it exactly, which is what makes a
// recovered trajectory byte-identical to the live one.
//
// The layout is uvarint-packed, with Delta omitted (it is a function of
// the event kind) and per-kind fields only where meaningful:
//
//	record  := tick capacity horizon nEvents event*
//	event   := time kind seq tenant jobID kindFields
//	string  := len bytes
//
// All integers are uvarints; kind and the task/outcome enums are single
// bytes (their value ranges are frozen by the event contract).

// EncodeTick appends the record for (tick, sched) to dst and returns the
// extended slice.
func EncodeTick(dst []byte, tick int, sched *cluster.Schedule) []byte {
	dst = binary.AppendUvarint(dst, uint64(tick))
	dst = binary.AppendUvarint(dst, uint64(sched.Capacity))
	dst = binary.AppendUvarint(dst, uint64(sched.Horizon))
	events := sched.Events()
	dst = binary.AppendUvarint(dst, uint64(len(events)))
	for i := range events {
		ev := &events[i]
		dst = binary.AppendUvarint(dst, uint64(ev.Time))
		dst = append(dst, byte(ev.Kind))
		dst = binary.AppendUvarint(dst, uint64(ev.Seq))
		dst = appendString(dst, ev.Tenant)
		dst = appendString(dst, ev.JobID)
		switch ev.Kind {
		case cluster.EventJobSubmit:
			dst = binary.AppendUvarint(dst, uint64(ev.Deadline))
		case cluster.EventTaskStart:
			dst = append(dst, byte(ev.TaskKind))
			dst = binary.AppendUvarint(dst, uint64(ev.Attempt))
		case cluster.EventTaskEnd:
			dst = append(dst, byte(ev.TaskKind))
			dst = binary.AppendUvarint(dst, uint64(ev.Attempt))
			dst = append(dst, byte(ev.Outcome))
		case cluster.EventJobFinish:
			var flags byte
			if ev.Completed {
				flags |= 1
			}
			if ev.Killed {
				flags |= 2
			}
			dst = append(dst, flags)
		}
	}
	return dst
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// DecodeTick inverts EncodeTick, rebuilding the schedule via
// cluster.ReplaySchedule.
func DecodeTick(payload []byte) (tick int, sched *cluster.Schedule, err error) {
	d := decoder{buf: payload}
	tick = int(d.uvarint())
	capacity := int(d.uvarint())
	horizon := time.Duration(d.uvarint())
	n := d.uvarint()
	if d.err == nil && n > uint64(len(payload)) {
		// Each event costs at least one byte, so a count beyond the payload
		// length is corruption; fail before allocating for it.
		d.err = fmt.Errorf("store: event count %d exceeds payload size %d", n, len(payload))
	}
	evs := make([]cluster.Event, 0, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		ev := cluster.Event{
			Time: time.Duration(d.uvarint()),
			Kind: cluster.EventKind(d.byte()),
		}
		ev.Seq = int(d.uvarint())
		ev.Tenant = d.string()
		ev.JobID = d.string()
		switch ev.Kind {
		case cluster.EventJobSubmit:
			ev.Deadline = time.Duration(d.uvarint())
		case cluster.EventTaskStart:
			ev.TaskKind = workload.TaskKind(d.byte())
			ev.Attempt = int(d.uvarint())
			ev.Delta = +1
		case cluster.EventTaskEnd:
			ev.TaskKind = workload.TaskKind(d.byte())
			ev.Attempt = int(d.uvarint())
			ev.Outcome = cluster.TaskOutcome(d.byte())
			ev.Delta = -1
		case cluster.EventJobFinish:
			flags := d.byte()
			ev.Completed = flags&1 != 0
			ev.Killed = flags&2 != 0
		default:
			if d.err == nil {
				d.err = fmt.Errorf("store: unknown event kind %d", ev.Kind)
			}
		}
		evs = append(evs, ev)
	}
	if d.err != nil {
		return 0, nil, d.err
	}
	if len(d.buf) != 0 {
		return 0, nil, fmt.Errorf("store: %d trailing bytes after tick record", len(d.buf))
	}
	return tick, cluster.ReplaySchedule(capacity, horizon, evs), nil
}

// decoder is a cursor over a record payload; the first malformed read
// latches err and every later read returns zero.
type decoder struct {
	buf []byte
	err error
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.err = fmt.Errorf("store: truncated uvarint in tick record")
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *decoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if len(d.buf) == 0 {
		d.err = fmt.Errorf("store: truncated byte in tick record")
		return 0
	}
	b := d.buf[0]
	d.buf = d.buf[1:]
	return b
}

func (d *decoder) string() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.buf)) {
		d.err = fmt.Errorf("store: truncated string in tick record")
		return ""
	}
	s := string(d.buf[:n])
	d.buf = d.buf[n:]
	return s
}

// Command simulate runs the Schedule Predictor (or a noisy cluster
// emulation) over a JSON trace and reports the schedule summary plus QS
// metrics per tenant.
//
// Usage:
//
//	simulate -trace trace.json -capacity 80 [-config rm.json] [-noise] [-seed 7]
//
// When -config is omitted, every tenant runs with equal weight and no
// limits. The RM configuration file is the JSON form of the library's
// ClusterConfig:
//
//	{
//	  "total_containers": 80,
//	  "tenants": {
//	    "ETL": {"weight": 3, "min_share": 12, "max_share": 0,
//	            "share_preempt_timeout": 240000000000,
//	            "min_share_preempt_timeout": 45000000000}
//	  }
//	}
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"tempo/internal/cluster"
	"tempo/internal/qs"
	"tempo/internal/workload"
)

func main() {
	var (
		tracePath = flag.String("trace", "", "input trace JSON (required)")
		cfgPath   = flag.String("config", "", "RM configuration JSON (optional)")
		capacity  = flag.Int("capacity", 80, "cluster capacity when -config is omitted")
		noise     = flag.Bool("noise", false, "emulate a noisy production run instead of predicting")
		seed      = flag.Int64("seed", 1, "noise seed")
		hours     = flag.Float64("horizon-hours", 0, "cap the run at this many hours (0 = run to completion)")
		outTasks  = flag.String("out-tasks", "", "write the task schedule as CSV to this file")
		outJobs   = flag.String("out-jobs", "", "write job outcomes as CSV to this file")
	)
	flag.Parse()
	if err := run(*tracePath, *cfgPath, *capacity, *noise, *seed, *hours, *outTasks, *outJobs); err != nil {
		fmt.Fprintln(os.Stderr, "simulate:", err)
		os.Exit(1)
	}
}

func run(tracePath, cfgPath string, capacity int, noise bool, seed int64, hours float64, outTasks, outJobs string) error {
	if tracePath == "" {
		return fmt.Errorf("-trace is required")
	}
	trace, err := workload.LoadFile(tracePath)
	if err != nil {
		return err
	}
	cfg := cluster.Config{TotalContainers: capacity, Tenants: map[string]cluster.TenantConfig{}}
	if cfgPath != "" {
		raw, err := os.ReadFile(cfgPath)
		if err != nil {
			return err
		}
		if err := json.Unmarshal(raw, &cfg); err != nil {
			return fmt.Errorf("parsing %s: %w", cfgPath, err)
		}
	}
	opts := cluster.Options{Horizon: time.Duration(hours * float64(time.Hour))}
	if noise {
		opts.Noise = cluster.DefaultNoise(seed)
	}
	start := time.Now()
	sched, err := cluster.Run(trace, cfg, opts)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	fmt.Println(sched)
	if secs := elapsed.Seconds(); secs > 0 {
		fmt.Printf("simulated %d tasks in %s (%.0f tasks/sec)\n",
			len(sched.Tasks), elapsed.Round(time.Millisecond), float64(len(sched.Tasks))/secs)
	}
	end := sched.Horizon + time.Nanosecond
	fmt.Printf("\n%-12s %8s %10s %10s %8s %9s\n", "tenant", "jobs", "AJR(s)", "DLviol", "util", "preempted")
	for _, tenant := range sched.Tenants() {
		ajr := qs.Template{Queue: tenant, Metric: qs.AvgResponseTime}.Eval(sched, 0, end)
		dl := qs.Template{Queue: tenant, Metric: qs.DeadlineViolations, Slack: 0.25}.Eval(sched, 0, end)
		util := -qs.Template{Queue: tenant, Metric: qs.Utilization}.Eval(sched, 0, end)
		jobs := len(sched.JobsByTenant(tenant))
		fmt.Printf("%-12s %8d %10.1f %10.3f %8.3f %9d\n",
			tenant, jobs, ajr, dl, util, sched.PreemptionCount(tenant, nil))
	}
	if outTasks != "" {
		if err := writeCSV(outTasks, sched.WriteTasksCSV); err != nil {
			return err
		}
	}
	if outJobs != "" {
		if err := writeCSV(outJobs, sched.WriteJobsCSV); err != nil {
			return err
		}
	}
	return nil
}

func writeCSV(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

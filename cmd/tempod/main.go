// Command tempod is Tempo's serving daemon: a sharded control plane that
// hosts many independent tenant clusters — each a full control loop
// (workload, schedule stream, incremental QS accumulators, What-if Model)
// — behind an HTTP/JSON API.
//
// Usage:
//
//	tempod -addr :8080 -shards 4 -workers 2
//	tempod -addr :8080 -data /var/lib/tempod   # durable control plane
//
// Create a cluster from a scenario spec, then drive it:
//
//	curl -X POST localhost:8080/v1/clusters -H 'Content-Type: application/json' \
//	     -d '{"id":"c1","spec":'"$(cat spec.json)"'}'
//	curl -X POST localhost:8080/v1/clusters/c1/tick
//	curl 'localhost:8080/v1/clusters/c1/qs?from=0s&to=30m'
//	curl -X POST localhost:8080/v1/clusters/c1/query -H 'Content-Type: application/json' \
//	     -d '{"version":1,"source":"jobs","ops":[{"op":"group_by","by":["tenant"]},{"op":"aggregate","aggs":[{"fn":"count"}]}]}'
//	curl -N 'localhost:8080/v1/clusters/c1/query/stream?plan=%7B%22version%22%3A1%2C%22source%22%3A%22events%22%7D'
//	curl -X POST localhost:8080/v1/clusters/c1/whatif -H 'Content-Type: application/json' \
//	     -d '{"candidates":[{"deadline":{"weight":3}}]}'
//	curl localhost:8080/v1/clusters/c1/report
//	curl localhost:8080/v1/metrics
//
// Pre-versioning unprefixed paths still answer as deprecated aliases.
//
// Clusters are pinned to shards by id hash; each shard's fixed worker
// pool drives control-loop ticks, so tick concurrency is bounded by
// shards × workers no matter how many clusters are resident. Ticks on one
// cluster are serialized; reports remain bit-identical to sequential
// scenario runs (cmd/loadgen asserts this under concurrent traffic).
//
// With -data set, every committed tick is logged to a per-cluster
// schedule-event WAL and the control loop is snapshotted periodically; a
// crashed or killed tempod recovers every cluster on restart to a
// trajectory byte-identical to an uninterrupted run (see README,
// "Durability").
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tempo/internal/chaos"
	"tempo/internal/service"
	"tempo/internal/store"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		shards   = flag.Int("shards", 4, "cluster shards")
		workers  = flag.Int("workers", 2, "tick workers per shard")
		queue    = flag.Int("queue", 64, "pending-tick queue depth per shard")
		par      = flag.Int("parallelism", 1, "per-cluster what-if worker pool (results identical for any value)")
		pprofSrv = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060); empty disables")

		maxStreams = flag.Int("max-streams", 64, "concurrent standing query subscriptions (SSE) across all clusters")
		heartbeat  = flag.Duration("stream-heartbeat", 15*time.Second, "idle keep-alive interval on query streams")

		dataDir    = flag.String("data", "", "data directory for durable cluster state (snapshot + WAL); empty disables durability")
		fsyncEvery = flag.Duration("fsync-interval", 50*time.Millisecond, "WAL group-commit window (with -data); 0 fsyncs every append")
		fsyncBytes = flag.Int("fsync-bytes", 1<<20, "WAL dirty-byte threshold forcing an fsync (with -data)")
		snapEvery  = flag.Int("snapshot-every", 8, "control-loop snapshot period in ticks (with -data)")
		drain      = flag.Duration("drain-timeout", 5*time.Second, "shutdown deadline for draining queued and in-flight ticks")

		reqTimeout = flag.Duration("request-timeout", 60*time.Second, "per-request read/write deadline on the API listener")
		admTimeout = flag.Duration("admission-timeout", time.Second, "max wait for a shard queue slot before a tick is shed with 503 overloaded")

		chaosSeed = flag.Int64("chaos-seed", 0, "seed for deterministic fault injection; 0 disables chaos unless -chaos-spec is set")
		chaosSpec = flag.String("chaos-spec", "", "JSON fault-schedule spec file for chaos injection (implies chaos on, even with seed 0)")
	)
	flag.Parse()
	err := run(runConfig{
		addr: *addr, shards: *shards, workers: *workers, queue: *queue,
		parallelism: *par, pprofAddr: *pprofSrv,
		maxStreams: *maxStreams, streamHeartbeat: *heartbeat,
		dataDir: *dataDir, fsyncInterval: *fsyncEvery, fsyncBytes: *fsyncBytes,
		snapshotEvery: *snapEvery, drainTimeout: *drain,
		requestTimeout: *reqTimeout, admissionTimeout: *admTimeout,
		chaosSeed: *chaosSeed, chaosSpecPath: *chaosSpec,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "tempod:", err)
		os.Exit(1)
	}
}

type runConfig struct {
	addr            string
	shards, workers int
	queue           int
	parallelism     int
	pprofAddr       string
	maxStreams      int
	streamHeartbeat time.Duration

	dataDir       string
	fsyncInterval time.Duration
	fsyncBytes    int
	snapshotEvery int
	drainTimeout  time.Duration

	requestTimeout   time.Duration
	admissionTimeout time.Duration
	chaosSeed        int64
	chaosSpecPath    string
}

func run(cfg runConfig) error {
	var inj *chaos.Injector
	if cfg.chaosSeed != 0 || cfg.chaosSpecPath != "" {
		spec := chaos.Default()
		if cfg.chaosSpecPath != "" {
			var err error
			spec, err = chaos.LoadSpecFile(cfg.chaosSpecPath)
			if err != nil {
				return err
			}
		}
		var err error
		inj, err = chaos.New(cfg.chaosSeed, spec)
		if err != nil {
			return err
		}
		fmt.Printf("tempod: CHAOS ENABLED (seed %d) — injecting deterministic faults\n", inj.Seed())
	}

	// The API listener opens BEFORE recovery so liveness probes get answers
	// during a long WAL replay; the gate serves "starting" until the real
	// handler is installed, and /v1/readyz stays 503 for that window.
	gate := service.NewGate()
	srv := &http.Server{
		Addr:              cfg.addr,
		Handler:           gate,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       cfg.requestTimeout,
		WriteTimeout:      cfg.requestTimeout,
		IdleTimeout:       2 * time.Minute,
	}
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	var st *store.Store
	if cfg.dataDir != "" {
		st, err = store.Open(cfg.dataDir, store.Options{
			SyncInterval: cfg.fsyncInterval,
			SyncBytes:    cfg.fsyncBytes,
			Stall: func() {
				if d := inj.FsyncStall(); d > 0 {
					time.Sleep(d)
				}
			},
		})
		if err != nil {
			srv.Close()
			return err
		}
	}
	svc, err := service.New(service.Config{
		Shards:           cfg.shards,
		WorkersPerShard:  cfg.workers,
		QueueDepth:       cfg.queue,
		Parallelism:      cfg.parallelism,
		MaxStreams:       cfg.maxStreams,
		StreamHeartbeat:  cfg.streamHeartbeat,
		Store:            st,
		SnapshotEvery:    cfg.snapshotEvery,
		DrainTimeout:     cfg.drainTimeout,
		AdmissionTimeout: cfg.admissionTimeout,
		Chaos:            inj,
	})
	if err != nil {
		srv.Close()
		if st != nil {
			st.Close()
		}
		return err
	}
	gate.Set(svc.Handler())
	// Deferred last: runs after the API and pprof listeners are down, so
	// no new ticks can arrive while it drains the shard queues (bounded by
	// -drain-timeout) and flushes + closes the store.
	defer svc.Close()
	if st != nil {
		fmt.Printf("tempod: durable state in %s (%d clusters recovered)\n", cfg.dataDir, len(svc.List()))
	}

	var pprofServer *http.Server
	if cfg.pprofAddr != "" {
		// Profiling stays off the service listener (and off by default):
		// tempod's API may face untrusted clients, while /debug/pprof is an
		// operator tool. Perf work measures here instead of guessing —
		//   go tool pprof http://<pprof-addr>/debug/pprof/profile
		//   go tool pprof http://<pprof-addr>/debug/pprof/heap
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		// Long trace/profile downloads need a generous write window; the
		// header/read limits still shut out idle or slow-loris peers.
		pprofServer = &http.Server{
			Addr:              cfg.pprofAddr,
			Handler:           mux,
			ReadHeaderTimeout: 5 * time.Second,
			ReadTimeout:       time.Minute,
			WriteTimeout:      10 * time.Minute,
			IdleTimeout:       2 * time.Minute,
		}
		go func() {
			if err := pprofServer.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "tempod: pprof listener:", err)
			}
		}()
		fmt.Printf("tempod: pprof on %s\n", cfg.pprofAddr)
	}

	fmt.Printf("tempod: serving on %s (%d shards x %d workers)\n", cfg.addr, cfg.shards, cfg.workers)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		if pprofServer != nil {
			pprofServer.Close()
		}
		return err
	case sig := <-sigc:
		// Shutdown order: stop the API listener (no new requests), close
		// the pprof listener, then the deferred svc.Close drains the shard
		// queues and flushes durable state.
		fmt.Printf("tempod: %v, draining\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return err
		}
		if pprofServer != nil {
			if err := pprofServer.Close(); err != nil {
				return err
			}
		}
		return nil
	}
}

// Package ignored demonstrates an accepted suppression: the violation
// is real, the ignore names the analyzer and carries a reason, so no
// diagnostic survives.
//
//tempolint:deterministic
package ignored

import "time"

func stamp() time.Time {
	//tempolint:ignore determinism wall-clock feeds operator logging only, never simulation state
	return time.Now()
}

package tempo

import (
	"testing"
	"time"
)

// TestPublicAPIEndToEnd exercises the facade exactly as the README's
// quickstart does: declare SLOs, build a space and what-if model, run the
// control loop, verify improvement plumbing works.
func TestPublicAPIEndToEnd(t *testing.T) {
	profiles := []TenantProfile{
		func() TenantProfile {
			p := CompanyABC(0.5)[5] // ETL (deadline-driven)
			return p
		}(),
		CompanyABC(0.5)[0], // BI (best-effort)
	}
	trace, err := Generate(profiles, GenerateOptions{Horizon: 30 * time.Minute, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	templates := []Template{
		Template{Queue: "ETL", Metric: DeadlineViolations, Slack: 0.25}.WithTarget(0.05),
		{Queue: "BI", Metric: AvgResponseTime},
	}
	model, err := NewWhatIfFromTrace(templates, trace)
	if err != nil {
		t.Fatal(err)
	}
	model.Horizon = 30 * time.Minute
	initial := ClusterConfig{
		TotalContainers: 30,
		Tenants: map[string]TenantConfig{
			"ETL": {Weight: 3, MinShare: 10, MinSharePreemptTimeout: time.Minute},
			"BI":  {Weight: 1, MaxShare: 8},
		},
	}
	ctl, err := NewController(ControllerConfig{
		Space:     DefaultSpace(30, []string{"ETL", "BI"}),
		Templates: templates,
		Model:     model,
		Environment: &ReplayEnvironment{
			Trace: trace,
			Noise: DefaultNoise(2),
		},
		Interval:   30 * time.Minute,
		Candidates: 3,
	}, initial)
	if err != nil {
		t.Fatal(err)
	}
	history, err := ctl.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(history) != 3 {
		t.Fatalf("history = %d", len(history))
	}
	for _, it := range history {
		if len(it.Observed) != 2 {
			t.Fatalf("observed = %v", it.Observed)
		}
	}
	cfg := ctl.Current()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPublicSimulationHelpers(t *testing.T) {
	trace, err := Generate(CompanyABC(0.3), GenerateOptions{Horizon: time.Hour, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	cfg := ClusterConfig{TotalContainers: 40, Tenants: map[string]TenantConfig{}}
	sched, err := Predict(trace, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(sched.Jobs) != len(trace.Jobs) {
		t.Fatalf("jobs %d vs %d", len(sched.Jobs), len(trace.Jobs))
	}
	noisy, err := Run(trace, cfg, RunOptions{Noise: DefaultNoise(4), Horizon: 2 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	templates := []Template{{Queue: "BI", Metric: AvgResponseTime}}
	v := Evaluate(templates, noisy, 0, noisy.Horizon)
	if len(v) != 1 {
		t.Fatalf("QS vector = %v", v)
	}
}

// TestDecomposedControlLoop ties the §10 extension to the control loop:
// decompose a mixed tenant, split its RM entry, attach per-class SLOs, and
// run the controller over the decomposed space.
func TestDecomposedControlLoop(t *testing.T) {
	mixed := TenantProfile{
		Name:        "analytics",
		JobsPerHour: 60,
		NumMaps: Mixture{
			Weights:    []float64{0.8, 0.2},
			Components: []Dist{Constant(2), Constant(60)},
		},
		MapSeconds: Mixture{
			Weights:    []float64{0.8, 0.2},
			Components: []Dist{Constant(10), Constant(120)},
		},
	}
	trace, err := Generate([]TenantProfile{mixed}, GenerateOptions{Horizon: time.Hour, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	decomposed, dec, err := DecomposeTenant(trace, "analytics", 2)
	if err != nil {
		t.Fatal(err)
	}
	base := ClusterConfig{TotalContainers: 24, Tenants: map[string]TenantConfig{"analytics": {Weight: 1}}}
	split := base.WithSubTenants("analytics", dec.SubTenants)
	templates := []Template{
		{Queue: dec.SubTenants[0], Metric: AvgResponseTime}, // small class
		{Queue: dec.SubTenants[1], Metric: AvgResponseTime}, // large class
	}
	model, err := NewWhatIfFromTrace(templates, decomposed)
	if err != nil {
		t.Fatal(err)
	}
	model.Horizon = time.Hour
	ctl, err := NewController(ControllerConfig{
		Space:       DefaultSpace(24, dec.SubTenants),
		Templates:   templates,
		Model:       model,
		Environment: &ReplayEnvironment{Trace: decomposed, Noise: DefaultNoise(4)},
		Interval:    time.Hour,
		Candidates:  3,
	}, split)
	if err != nil {
		t.Fatal(err)
	}
	history, err := ctl.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range history {
		if len(it.Observed) != 2 {
			t.Fatalf("observed = %v", it.Observed)
		}
		if it.Observed[0] <= 0 || it.Observed[1] <= 0 {
			t.Fatalf("sub-queue SLOs not measured: %v", it.Observed)
		}
	}
	final := ctl.Current()
	if err := final.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, ok := final.Tenants[dec.SubTenants[0]]; !ok {
		t.Fatal("sub-tenant lost from tuned configuration")
	}
}

func TestPublicConstantsWired(t *testing.T) {
	if Map == Reduce {
		t.Fatal("task kinds collide")
	}
	kinds := []MetricKind{AvgResponseTime, DeadlineViolations, Utilization, Throughput, Fairness}
	for _, k := range kinds {
		if !k.Valid() {
			t.Fatalf("metric %q invalid", k)
		}
	}
	if RevertOnWorse == RevertOff || RevertOnNonDominance == RevertOnWorse {
		t.Fatal("revert policies collide")
	}
}

package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestMain lets the test binary double as the benchdiff binary: when
// BENCHDIFF_RUN_MAIN is set, it runs main() with the process arguments
// instead of the test suite.
func TestMain(m *testing.M) {
	if os.Getenv("BENCHDIFF_RUN_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func runCLI(t *testing.T, args ...string) (stdout, stderr string, exitCode int) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "BENCHDIFF_RUN_MAIN=1")
	var out, errBuf bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errBuf
	err := cmd.Run()
	if err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return out.String(), errBuf.String(), ee.ExitCode()
		}
		t.Fatalf("running CLI: %v", err)
	}
	return out.String(), errBuf.String(), 0
}

func writeDoc(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const baseDoc = `{
  "go": "go1.23.0",
  "benchmarks": [
    {"name": "QSIncremental", "metrics": {"speedup": 8.0, "oracle_ns": 1000000, "jobs": 500}},
    {"name": "ServiceThroughput/clusters=100", "metrics": {"ticks_per_sec": 3000, "ticks": 300, "verified": 100}}
  ]
}`

func TestCleanPass(t *testing.T) {
	// Within band: speedup -10%, oracle_ns +30% (time tolerance 50%),
	// deterministic counts unchanged.
	fresh := `{
  "go": "go1.23.0",
  "benchmarks": [
    {"name": "QSIncremental", "metrics": {"speedup": 7.2, "oracle_ns": 1300000, "jobs": 500}},
    {"name": "ServiceThroughput/clusters=100", "metrics": {"ticks_per_sec": 2800, "ticks": 300, "verified": 100}}
  ]
}`
	stdout, stderr, code := runCLI(t,
		"-baseline", writeDoc(t, "base.json", baseDoc),
		"-fresh", writeDoc(t, "fresh.json", fresh))
	if code != 0 {
		t.Fatalf("exit %d, want 0\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "no regressions beyond tolerance") {
		t.Fatalf("missing clean verdict:\n%s", stdout)
	}
}

func TestRatioRegressionFails(t *testing.T) {
	// speedup 8.0 -> 5.0 is a 37.5% regression, beyond the 25% band.
	fresh := strings.Replace(baseDoc, `"speedup": 8.0`, `"speedup": 5.0`, 1)
	stdout, _, code := runCLI(t,
		"-baseline", writeDoc(t, "base.json", baseDoc),
		"-fresh", writeDoc(t, "fresh.json", fresh))
	if code != 1 {
		t.Fatalf("exit %d, want 1\n%s", code, stdout)
	}
	if !strings.Contains(stdout, "QSIncremental/speedup") || !strings.Contains(stdout, "FAIL") {
		t.Fatalf("regression not reported:\n%s", stdout)
	}
}

func TestDeterministicDriftFails(t *testing.T) {
	// A changed job count is behavioural drift even though it is tiny.
	fresh := strings.Replace(baseDoc, `"jobs": 500`, `"jobs": 501`, 1)
	stdout, _, code := runCLI(t,
		"-baseline", writeDoc(t, "base.json", baseDoc),
		"-fresh", writeDoc(t, "fresh.json", fresh))
	if code != 1 {
		t.Fatalf("exit %d, want 1\n%s", code, stdout)
	}
	if !strings.Contains(stdout, "deterministic count drifted") {
		t.Fatalf("count drift not reported:\n%s", stdout)
	}
}

func TestAllocRegressionGating(t *testing.T) {
	base := `{"go": "go1.23.0", "benchmarks": [
    {"name": "WhatIfBatch", "metrics": {"allocs_per_op": 1000, "bytes_per_op": 500000}},
    {"name": "ServiceThroughput/clusters=1000", "metrics": {"allocs_per_op": 600}}
  ]}`
	// WhatIfBatch allocs +50% is beyond the 25% alloc band and must fail;
	// ServiceThroughput allocs +40% is whole-process noise gated at the
	// 50% wall-clock band and must pass.
	fresh := `{"go": "go1.23.0", "benchmarks": [
    {"name": "WhatIfBatch", "metrics": {"allocs_per_op": 1500, "bytes_per_op": 500000}},
    {"name": "ServiceThroughput/clusters=1000", "metrics": {"allocs_per_op": 840}}
  ]}`
	stdout, _, code := runCLI(t,
		"-baseline", writeDoc(t, "base.json", base),
		"-fresh", writeDoc(t, "fresh.json", fresh))
	if code != 1 {
		t.Fatalf("exit %d, want 1\n%s", code, stdout)
	}
	if !strings.Contains(stdout, "WhatIfBatch/allocs_per_op") || !strings.Contains(stdout, "1 regression(s)") {
		t.Fatalf("alloc regression not gated as expected:\n%s", stdout)
	}
	// Widening -alloc-tolerance clears the deterministic-path failure too.
	stdout, _, code = runCLI(t,
		"-baseline", writeDoc(t, "base2.json", base),
		"-fresh", writeDoc(t, "fresh2.json", fresh),
		"-alloc-tolerance", "0.6")
	if code != 0 {
		t.Fatalf("exit %d with widened tolerance, want 0\n%s", code, stdout)
	}
}

func TestMissingBenchmarkFails(t *testing.T) {
	fresh := `{"go": "go1.23.0", "benchmarks": [
    {"name": "QSIncremental", "metrics": {"speedup": 8.0, "oracle_ns": 1000000, "jobs": 500}}
  ]}`
	stdout, _, code := runCLI(t,
		"-baseline", writeDoc(t, "base.json", baseDoc),
		"-fresh", writeDoc(t, "fresh.json", fresh))
	if code != 1 {
		t.Fatalf("exit %d, want 1\n%s", code, stdout)
	}
	if !strings.Contains(stdout, "benchmark missing from fresh run") {
		t.Fatalf("missing benchmark not reported:\n%s", stdout)
	}
}

func TestUsageErrors(t *testing.T) {
	_, stderr, code := runCLI(t)
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(stderr, "required") {
		t.Fatalf("missing usage message: %s", stderr)
	}
	_, stderr, code = runCLI(t, "-baseline", "/does/not/exist.json", "-fresh", "/does/not/exist.json")
	if code != 2 {
		t.Fatalf("exit %d, want 2 (stderr: %s)", code, stderr)
	}
}

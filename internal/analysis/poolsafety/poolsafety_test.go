package poolsafety_test

import (
	"testing"

	"tempo/internal/analysis"
	"tempo/internal/analysis/analysistest"
	"tempo/internal/analysis/poolsafety"
)

func TestPoolSafety(t *testing.T) {
	suite := []*analysis.Analyzer{poolsafety.Analyzer}
	diags := analysistest.Run(t, "testdata", suite, "pool")
	if len(diags) == 0 {
		t.Fatalf("fixture produced no diagnostics; the positive cases are not being checked")
	}
}

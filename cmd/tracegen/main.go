// Command tracegen synthesizes workload traces from the built-in
// statistical tenant profiles and writes them as JSON, ready for
// cmd/simulate, cmd/tempoctl, or the library's trace APIs.
//
// Usage:
//
//	tracegen -mix abc -hours 24 -scale 0.5 -seed 1 -out trace.json
//
// Mixes: abc (the six Company ABC tenants of Table 1), two-tenant (the
// deadline + best-effort pair of §8.2), ec2 (Facebook + Cloudera mixes of
// the EC2 experiments), fb (Facebook-like single tenant), cloudera
// (Cloudera-like single tenant).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"tempo/internal/exp"
	"tempo/internal/workload"
)

func main() {
	var (
		mix   = flag.String("mix", "abc", "workload mix: abc, two-tenant, ec2, fb, cloudera")
		hours = flag.Float64("hours", 24, "trace horizon in hours")
		scale = flag.Float64("scale", 1.0, "arrival-rate scale factor")
		seed  = flag.Int64("seed", 1, "random seed")
		out   = flag.String("out", "", "output file (default stdout)")
	)
	flag.Parse()
	if err := run(*mix, *hours, *scale, *seed, *out); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(mix string, hours, scale float64, seed int64, out string) error {
	var profiles []workload.TenantProfile
	switch mix {
	case "abc":
		profiles = workload.CompanyABC(scale)
	case "two-tenant":
		profiles = exp.TwoTenantProfiles(scale)
	case "ec2":
		profiles = exp.EC2TwoTenantProfiles(scale)
	case "fb":
		profiles = []workload.TenantProfile{workload.Facebook("fb", scale)}
	case "cloudera":
		profiles = []workload.TenantProfile{workload.Cloudera("cloudera", scale)}
	default:
		return fmt.Errorf("unknown mix %q", mix)
	}
	trace, err := workload.Generate(profiles, workload.GenerateOptions{
		Horizon: time.Duration(hours * float64(time.Hour)),
		Seed:    seed,
		Name:    mix,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "generated %d jobs / %d tasks across %d tenants\n",
		len(trace.Jobs), trace.TaskCount(), len(trace.Tenants()))
	if out == "" {
		return trace.WriteJSON(os.Stdout)
	}
	return trace.SaveFile(out)
}

package main

import (
	"bytes"
	"os"
	"os/exec"
	"strings"
	"testing"
)

// TestMain lets the test binary double as the tempoctl binary: when
// TEMPOCTL_RUN_MAIN is set, it runs main() with the process arguments
// instead of the test suite.
func TestMain(m *testing.M) {
	if os.Getenv("TEMPOCTL_RUN_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func runCLI(t *testing.T, args ...string) (stdout, stderr string, exitCode int) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "TEMPOCTL_RUN_MAIN=1")
	var out, errBuf bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errBuf
	err := cmd.Run()
	if err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return out.String(), errBuf.String(), ee.ExitCode()
		}
		t.Fatalf("running CLI: %v", err)
	}
	return out.String(), errBuf.String(), 0
}

// TestHappyPath runs a tiny but real control loop end to end and checks the
// trajectory table and final configuration render.
func TestHappyPath(t *testing.T) {
	stdout, stderr, code := runCLI(t,
		"-mix", "ec2", "-capacity", "16", "-scale", "0.8",
		"-iterations", "2", "-interval", "10m", "-seed", "5", "-parallelism", "2")
	if code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, stderr)
	}
	for _, want := range []string{
		"tempoctl: ec2 mix, 16 containers, 2 iterations",
		"iter", "DL viol", "AJR (s)",
		"best-effort AJR improvement",
		"final RM configuration:",
		"deadline", "besteffort", "weight=",
	} {
		if !strings.Contains(stdout, want) {
			t.Errorf("stdout missing %q:\n%s", want, stdout)
		}
	}
	// Both loop iterations must have printed a row.
	for _, iter := range []string{"\n    0  ", "\n    1  "} {
		if !strings.Contains(stdout, iter) {
			t.Errorf("stdout missing iteration row %q:\n%s", iter, stdout)
		}
	}
}

func TestUnknownMixFails(t *testing.T) {
	_, stderr, code := runCLI(t, "-mix", "nope", "-iterations", "1")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	if !strings.Contains(stderr, `unknown mix "nope"`) {
		t.Fatalf("stderr %q does not name the unknown mix", stderr)
	}
}

func TestUnknownStrategyFails(t *testing.T) {
	_, stderr, code := runCLI(t, "-strategy", "alchemy", "-iterations", "1")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	if !strings.Contains(stderr, `unknown strategy "alchemy"`) {
		t.Fatalf("stderr %q does not name the unknown strategy", stderr)
	}
}

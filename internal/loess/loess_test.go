package loess

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"tempo/internal/linalg"
)

func linearSamples(rng *rand.Rand, n, dim int, a float64, g linalg.Vector, noise float64) []Sample {
	samples := make([]Sample, n)
	for i := range samples {
		x := linalg.NewVector(dim)
		for j := range x {
			x[j] = rng.Float64()
		}
		y := a + g.Dot(x) + noise*rng.NormFloat64()
		samples[i] = Sample{X: x, Y: y}
	}
	return samples
}

func TestRecoversLinearFunctionExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := linalg.Vector{2, -3, 0.5}
	samples := linearSamples(rng, 50, 3, 1.5, g, 0)
	x0 := linalg.Vector{0.5, 0.5, 0.5}
	fit, err := Estimate(samples, x0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantVal := 1.5 + g.Dot(x0)
	if math.Abs(fit.Value-wantVal) > 1e-6 {
		t.Errorf("Value = %v, want %v", fit.Value, wantVal)
	}
	if !fit.Gradient.Equal(g, 1e-6) {
		t.Errorf("Gradient = %v, want %v", fit.Gradient, g)
	}
}

func TestGradientUnderNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := linalg.Vector{4, -2}
	samples := linearSamples(rng, 400, 2, 0, g, 0.05)
	x0 := linalg.Vector{0.5, 0.5}
	grad, err := Gradient(samples, x0, Options{Span: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !grad.Equal(g, 0.2) {
		t.Fatalf("noisy gradient = %v, want ≈ %v", grad, g)
	}
}

func TestLocalityOnPiecewiseFunction(t *testing.T) {
	// f(x) = x for x < 0.5, f(x) = 10 - 17x for x >= 0.5 (slope changes).
	// A small span queried deep inside the right piece should see slope -17.
	var samples []Sample
	for i := 0; i < 200; i++ {
		x := float64(i) / 199
		y := x
		if x >= 0.5 {
			y = 10 - 17*x
		}
		samples = append(samples, Sample{X: linalg.Vector{x}, Y: y})
	}
	fit, err := Estimate(samples, linalg.Vector{0.9}, Options{Span: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Gradient[0]+17) > 0.5 {
		t.Fatalf("local slope = %v, want ≈ -17", fit.Gradient[0])
	}
}

func TestQuadraticGradientAtCenter(t *testing.T) {
	// f(x) = (x-0.3)², gradient at 0.7 is 2·0.4 = 0.8. A local linear fit
	// with a modest span should approximate it.
	var samples []Sample
	for i := 0; i < 300; i++ {
		x := float64(i) / 299
		samples = append(samples, Sample{X: linalg.Vector{x}, Y: (x - 0.3) * (x - 0.3)})
	}
	fit, err := Estimate(samples, linalg.Vector{0.7}, Options{Span: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Gradient[0]-0.8) > 0.1 {
		t.Fatalf("gradient = %v, want ≈ 0.8", fit.Gradient[0])
	}
}

func TestTooFewSamples(t *testing.T) {
	samples := []Sample{{X: linalg.Vector{0, 0}, Y: 1}}
	if _, err := Estimate(samples, linalg.Vector{0, 0}, Options{}); err == nil {
		t.Fatal("expected ErrTooFewSamples")
	}
}

func TestDimensionMismatch(t *testing.T) {
	samples := []Sample{
		{X: linalg.Vector{0}, Y: 1},
		{X: linalg.Vector{1}, Y: 2},
		{X: linalg.Vector{2}, Y: 3},
	}
	if _, err := Estimate(samples, linalg.Vector{0, 0}, Options{}); err == nil {
		t.Fatal("expected dimension mismatch error")
	}
}

func TestEmptyQueryPoint(t *testing.T) {
	if _, err := Estimate(nil, linalg.Vector{}, Options{}); err == nil {
		t.Fatal("expected error for empty query")
	}
}

func TestCoincidentSamplesFallBack(t *testing.T) {
	// Several samples exactly at x0 plus a few informative ones.
	samples := []Sample{
		{X: linalg.Vector{0.5}, Y: 1},
		{X: linalg.Vector{0.5}, Y: 1},
		{X: linalg.Vector{0.0}, Y: 0},
		{X: linalg.Vector{1.0}, Y: 2},
	}
	fit, err := Estimate(samples, linalg.Vector{0.5}, Options{Span: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Gradient[0]-2) > 0.3 {
		t.Fatalf("gradient = %v, want ≈ 2", fit.Gradient[0])
	}
}

func TestDefaultsApplied(t *testing.T) {
	o := Options{Span: -1, Ridge: -1}.withDefaults()
	if o.Span != 0.75 || o.Ridge != 1e-8 {
		t.Fatalf("defaults = %+v", o)
	}
	o2 := Options{Span: 2}.withDefaults()
	if o2.Span != 0.75 {
		t.Fatalf("span > 1 not clamped: %v", o2.Span)
	}
}

func TestTricubeShape(t *testing.T) {
	if tricube(0, 1) != 1 {
		t.Fatal("tricube(0) != 1")
	}
	if w := tricube(1, 1); w != 1e-6 {
		t.Fatalf("tricube at boundary = %v, want floor 1e-6", w)
	}
	if tricube(0.2, 1) <= tricube(0.8, 1) {
		t.Fatal("tricube not decreasing")
	}
	if tricube(5, 0) != 1 {
		t.Fatal("zero bandwidth should degrade to uniform weight")
	}
}

// Property: for noiseless affine data, LOESS recovers the exact gradient
// regardless of sampling and query location.
func TestPropertyExactOnAffine(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dim := 1 + rng.Intn(4)
		g := linalg.NewVector(dim)
		for i := range g {
			g[i] = rng.NormFloat64() * 3
		}
		a := rng.NormFloat64()
		samples := linearSamples(rng, 10*(dim+1), dim, a, g, 0)
		x0 := linalg.NewVector(dim)
		for i := range x0 {
			x0[i] = rng.Float64()
		}
		fit, err := Estimate(samples, x0, Options{Span: 0.9})
		if err != nil {
			return false
		}
		return fit.Gradient.Equal(g, 1e-5) && math.Abs(fit.Value-(a+g.Dot(x0))) < 1e-5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: the fitted value is within the sample value range for
// interpolating queries on monotone 1-D data (no wild extrapolation inside
// the hull).
func TestPropertyValueWithinRangeMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var samples []Sample
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := 0; i < 40; i++ {
			x := float64(i) / 39
			y := 3*x + rng.Float64()*0.01
			samples = append(samples, Sample{X: linalg.Vector{x}, Y: y})
			lo = math.Min(lo, y)
			hi = math.Max(hi, y)
		}
		q := rng.Float64()
		fit, err := Estimate(samples, linalg.Vector{q}, Options{Span: 0.5})
		if err != nil {
			return false
		}
		return fit.Value >= lo-0.2 && fit.Value <= hi+0.2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEstimate(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := linalg.Vector{1, 2, 3, 4, 5}
	samples := linearSamples(rng, 200, 5, 0, g, 0.01)
	x0 := linalg.Vector{0.5, 0.5, 0.5, 0.5, 0.5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Estimate(samples, x0, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

package scenario

import (
	"strings"
	"testing"
	"time"

	"tempo/internal/qs"
)

func validSpec() *Spec {
	target := 0.0
	return &Spec{
		Name:            "unit",
		Seed:            1,
		Capacity:        16,
		IntervalMinutes: 15,
		Iterations:      2,
		Replay:          true,
		Tenants: []TenantSpec{
			{Name: "deadline", Profile: "cloudera", Scale: 0.8,
				Deadline: &DeadlineSpec{FactorLo: 1.2, FactorHi: 2, Parallelism: 8}},
			{Name: "besteffort", Profile: "facebook", Scale: 0.8},
		},
		SLOs: []SLOSpec{
			{Queue: "deadline", Metric: "deadline_violations", Slack: 0.25, Target: &target},
			{Queue: "besteffort", Metric: "avg_response_time"},
		},
		Initial:    InitialSpec{Preset: "expert-two-tenant"},
		Controller: ControllerSpec{Candidates: 3},
	}
}

func TestValidateRejectsBrokenSpecs(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Spec)
		want   string
	}{
		{"empty name", func(s *Spec) { s.Name = "" }, "empty name"},
		{"zero capacity", func(s *Spec) { s.Capacity = 0 }, "capacity"},
		{"zero interval", func(s *Spec) { s.IntervalMinutes = 0 }, "interval"},
		{"zero iterations", func(s *Spec) { s.Iterations = 0 }, "iterations"},
		{"no tenants", func(s *Spec) { s.Tenants = nil }, "no tenants"},
		{"duplicate tenant", func(s *Spec) { s.Tenants[1].Name = "deadline" }, "duplicate"},
		{"unknown profile", func(s *Spec) { s.Tenants[0].Profile = "nope" }, "unknown tenant profile"},
		{"no SLOs", func(s *Spec) { s.SLOs = nil }, "no SLOs"},
		{"SLO unknown tenant", func(s *Spec) { s.SLOs[0].Queue = "ghost" }, "unknown tenant"},
		{"bad metric", func(s *Spec) { s.SLOs[0].Metric = "latency" }, "unknown metric"},
		{"bad task kind", func(s *Spec) { s.SLOs[0].TaskKind = "shuffle" }, "task kind"},
		{"bad preset", func(s *Spec) { s.Initial.Preset = "wat" }, "preset"},
		{"initial unknown tenant", func(s *Spec) {
			s.Initial.Tenants = map[string]TenantConfigSpec{"ghost": {Weight: 1}}
		}, "unknown tenant"},
		{"depart before arrive", func(s *Spec) {
			s.Tenants[0].ArriveAfterHours = 3
			s.Tenants[0].DepartAfterHours = 2
		}, "departs"},
		{"capacity change out of range", func(s *Spec) {
			s.CapacityChanges = []CapacityChange{{AtIteration: 5, Capacity: 8}}
		}, "outside"},
		{"capacity changes unsorted", func(s *Spec) {
			s.CapacityChanges = []CapacityChange{{AtIteration: 1, Capacity: 8}, {AtIteration: 1, Capacity: 9}}
		}, "ascending"},
		{"bad revert", func(s *Spec) { s.Controller.Revert = "maybe" }, "revert"},
		{"replay with tenant churn", func(s *Spec) {
			s.Tenants[1].ArriveAfterHours = 1
		}, "windowed mode"},
		{"replay with flash crowd", func(s *Spec) {
			s.Tenants[1].Arrival = []ArrivalSpec{{Kind: "flash-crowd", AtHours: 0.1, DurationHours: 0.1, Multiplier: 2}}
		}, "windowed mode"},
		{"burst missing boost", func(s *Spec) {
			s.Tenants[1].Arrival = []ArrivalSpec{{Kind: "burst", PeriodMinutes: 60, WidthMinutes: 10}}
		}, "boost"},
		{"flash crowd missing multiplier", func(s *Spec) {
			s.Replay = false
			s.Tenants[1].Arrival = []ArrivalSpec{{Kind: "flash-crowd", AtHours: 1, DurationHours: 2}}
		}, "multiplier"},
		{"diurnal out of range", func(s *Spec) {
			s.Tenants[1].Arrival = []ArrivalSpec{{Kind: "diurnal", Night: 1.5}}
		}, "diurnal"},
		{"preset tenants mismatch", func(s *Spec) {
			s.Tenants[0].Name = "etl"
			s.SLOs[0].Queue = "etl"
		}, "unknown tenant"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := validSpec()
			tc.mutate(s)
			err := s.Validate()
			if err == nil {
				t.Fatal("Validate accepted a broken spec")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestLoadRejectsUnknownFields(t *testing.T) {
	_, err := Load(strings.NewReader(`{"name":"x","sedd":1}`))
	if err == nil || !strings.Contains(err.Error(), "sedd") {
		t.Fatalf("Load did not reject unknown field: %v", err)
	}
}

func TestLifecycleWindow(t *testing.T) {
	m := lifecycleWindow(2*time.Hour, 5*time.Hour)
	cases := []struct {
		at   time.Duration
		want float64
	}{
		{0, 0}, {2*time.Hour - 1, 0}, {2 * time.Hour, 1},
		{4 * time.Hour, 1}, {5 * time.Hour, 0}, {9 * time.Hour, 0},
	}
	for _, c := range cases {
		if got := m(c.at); got != c.want {
			t.Errorf("window(%v) = %v, want %v", c.at, got, c.want)
		}
	}
	never := lifecycleWindow(time.Hour, 0)
	if never(100*time.Hour) != 1 {
		t.Error("depart 0 should mean the tenant never leaves")
	}
}

func TestCapacityAtStepFunction(t *testing.T) {
	e := &runEnv{changes: []CapacityChange{{AtIteration: 2, Capacity: 20}, {AtIteration: 5, Capacity: 30}}}
	want := []int{0, 0, 20, 20, 20, 30, 30}
	for i, w := range want {
		if got := e.capacityAt(i); got != w {
			t.Errorf("capacityAt(%d) = %d, want %d", i, got, w)
		}
	}
}

func TestArrivalModulators(t *testing.T) {
	burst := ArrivalSpec{Kind: "burst", PeriodMinutes: 60, WidthMinutes: 10, Floor: 0.5, Boost: 3}
	m, err := burst.modulator()
	if err != nil {
		t.Fatal(err)
	}
	if got := m(5 * time.Minute); got != 3 {
		t.Errorf("in-burst rate %v, want 3", got)
	}
	if got := m(30 * time.Minute); got != 0.5 {
		t.Errorf("off-burst rate %v, want 0.5", got)
	}
	flash := ArrivalSpec{Kind: "flash-crowd", AtHours: 1, DurationHours: 2, Multiplier: 4}
	m, err = flash.modulator()
	if err != nil {
		t.Fatal(err)
	}
	if got := m(90 * time.Minute); got != 4 {
		t.Errorf("in-flash rate %v, want 4", got)
	}
	if got := m(4 * time.Hour); got != 1 {
		t.Errorf("post-flash rate %v, want 1", got)
	}
	if _, err := (&ArrivalSpec{Kind: "tsunami"}).modulator(); err == nil {
		t.Error("unknown arrival kind accepted")
	}
}

func TestSLOTemplateConversion(t *testing.T) {
	target := 0.1
	s := SLOSpec{Queue: "q", Metric: "deadline_violations", Slack: 0.25, Target: &target, Priority: 2}
	tpl, err := s.Template()
	if err != nil {
		t.Fatal(err)
	}
	if tpl.Metric != qs.DeadlineViolations || !tpl.HasTarget || tpl.Target != 0.1 || tpl.Priority != 2 {
		t.Fatalf("template = %+v", tpl)
	}
	util := SLOSpec{Metric: "utilization", TaskKind: "reduce", EffectiveOnly: true}
	tpl, err = util.Template()
	if err != nil {
		t.Fatal(err)
	}
	if tpl.TaskKind == nil || tpl.TaskKind.String() != "reduce" || !tpl.EffectiveOnly {
		t.Fatalf("util template = %+v", tpl)
	}
}

func TestInitialConfigPresetsAndOverrides(t *testing.T) {
	in := InitialSpec{
		Preset:  "expert-two-tenant",
		Tenants: map[string]TenantConfigSpec{"besteffort": {Weight: 2, MaxShare: 9}},
	}
	cfg, err := in.Config(20, []string{"besteffort", "deadline"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Tenant("besteffort").Weight != 2 || cfg.Tenant("besteffort").MaxShare != 9 {
		t.Fatalf("override not applied: %+v", cfg.Tenant("besteffort"))
	}
	if cfg.Tenant("deadline").MinShare != 5 {
		t.Fatalf("preset not applied: %+v", cfg.Tenant("deadline"))
	}
	equal, err := (&InitialSpec{}).Config(10, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if equal.Tenant("a").Weight != 1 || equal.Tenant("b").Weight != 1 {
		t.Fatalf("default config not equal-weight: %+v", equal.Tenants)
	}
}

// TestControllerOffRunsStatic asserts a disabled controller neither
// switches nor reverts and observes every iteration under the initial
// configuration.
func TestControllerOffRunsStatic(t *testing.T) {
	spec := validSpec()
	spec.Controller.Disabled = true
	rep, err := Run(spec, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ControllerEnabled {
		t.Fatal("report claims controller enabled")
	}
	if rep.Summary.Switches != 0 || rep.Summary.Reverts != 0 {
		t.Fatalf("static run switched/reverted: %+v", rep.Summary)
	}
	if len(rep.Iterations) != spec.Iterations {
		t.Fatalf("iterations = %d, want %d", len(rep.Iterations), spec.Iterations)
	}
	if len(rep.Summary.FinalConfig) != 2 {
		t.Fatalf("final config entries = %d", len(rep.Summary.FinalConfig))
	}
}

// TestCapacityChangeShowsInReport asserts the mid-run capacity override
// reaches the emulated cluster and the report.
func TestCapacityChangeShowsInReport(t *testing.T) {
	spec := validSpec()
	spec.Controller.Disabled = true
	spec.Iterations = 3
	spec.CapacityChanges = []CapacityChange{{AtIteration: 1, Capacity: 8}}
	rep, err := Run(spec, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{16, 8, 8}
	for i, it := range rep.Iterations {
		if it.Capacity != want[i] {
			t.Errorf("iteration %d capacity = %d, want %d", i, it.Capacity, want[i])
		}
	}
}

// TestReplayAndWindowedShareSpecSurface asserts both protocols build and
// produce the declared number of objectives.
func TestReplayAndWindowedShareSpecSurface(t *testing.T) {
	for _, replay := range []bool{true, false} {
		spec := validSpec()
		spec.Replay = replay
		rep, err := Run(spec, Options{Parallelism: 2})
		if err != nil {
			t.Fatalf("replay=%v: %v", replay, err)
		}
		if len(rep.Objectives) != 2 {
			t.Fatalf("objectives = %v", rep.Objectives)
		}
		for _, it := range rep.Iterations {
			if len(it.Observed) != 2 {
				t.Fatalf("observed vector %v", it.Observed)
			}
		}
	}
}

// TestTenantLifecycleAffectsTrace asserts arrive/depart windows actually
// silence the tenant in the generated workload.
func TestTenantLifecycleAffectsTrace(t *testing.T) {
	spec := validSpec()
	spec.Replay = false
	spec.Iterations = 4
	spec.IntervalMinutes = 60
	spec.Tenants[1].ArriveAfterHours = 2
	rt, err := Build(spec, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range rt.Trace.ByTenant("besteffort") {
		if j.Submit < 2*time.Hour {
			t.Fatalf("job %s submitted at %v before the tenant arrived", j.ID, j.Submit)
		}
	}
	if len(rt.Trace.ByTenant("besteffort")) == 0 {
		t.Fatal("arriving tenant never submitted")
	}
}

package core

import (
	"reflect"
	"testing"

	"tempo/internal/cluster"
	"tempo/internal/whatif"
)

// TestControllerParallelMatchesSequential is the controller-level
// determinism check: a loop whose What-if Model scores candidates on 8
// workers must walk exactly the same trajectory — same observations, same
// predictions, same switch/revert decisions, same final configuration — as
// a fully sequential loop.
func TestControllerParallelMatchesSequential(t *testing.T) {
	run := func(parallelism int) ([]Iteration, cluster.Config) {
		cfg, initial := twoTenantSetup(t, 21)
		cfg.Model.(*whatif.Model).Parallelism = parallelism
		c, err := NewController(cfg, initial)
		if err != nil {
			t.Fatal(err)
		}
		history, err := c.Run(3)
		if err != nil {
			t.Fatal(err)
		}
		return history, c.Current()
	}
	seqHist, seqCfg := run(1)
	parHist, parCfg := run(8)
	if !reflect.DeepEqual(seqHist, parHist) {
		t.Fatalf("histories diverge:\nsequential: %+v\nparallel:   %+v", seqHist, parHist)
	}
	if !reflect.DeepEqual(seqCfg, parCfg) {
		t.Fatalf("final configs diverge:\nsequential: %+v\nparallel:   %+v", seqCfg, parCfg)
	}
	// The loop must actually have done something for this to be meaningful.
	switched := false
	for _, it := range seqHist {
		switched = switched || it.Switched
	}
	if !switched {
		t.Log("no iteration switched configurations; determinism check is vacuous for this seed")
	}
}

// countingModel implements only the minimal Model interface — no
// EvaluateBatch — standing in for user-supplied what-if implementations.
type countingModel struct {
	inner *whatif.Model
	calls int
}

func (m *countingModel) Evaluate(cfg cluster.Config) ([]float64, error) {
	m.calls++
	return m.inner.Evaluate(cfg)
}

// TestSequentialAdapterForCustomModel checks that a custom Model without
// batch support still drives the loop: the controller falls back to one
// Evaluate call per configuration (base + candidates) and produces the
// same decisions as the batch path over the same model.
func TestSequentialAdapterForCustomModel(t *testing.T) {
	cfg, initial := twoTenantSetup(t, 22)
	inner := cfg.Model.(*whatif.Model)
	wrapped := &countingModel{inner: inner}
	cfg.Model = wrapped
	c, err := NewController(cfg, initial)
	if err != nil {
		t.Fatal(err)
	}
	it, err := c.Step()
	if err != nil {
		t.Fatal(err)
	}
	if want := cfg.Candidates + 1; wrapped.calls != want {
		t.Fatalf("adapter made %d Evaluate calls, want %d", wrapped.calls, want)
	}

	// Same seed, batch-capable model: identical first iteration.
	cfg2, initial2 := twoTenantSetup(t, 22)
	c2, err := NewController(cfg2, initial2)
	if err != nil {
		t.Fatal(err)
	}
	it2, err := c2.Step()
	if err != nil {
		t.Fatal(err)
	}
	// Search stats describe the scoring mechanism (sequential adapter vs
	// incremental search), so they legitimately differ; the decision and
	// everything derived from it must not.
	it.Search, it2.Search = nil, nil
	if !reflect.DeepEqual(it, it2) {
		t.Fatalf("adapter iteration %+v != batch iteration %+v", it, it2)
	}
}

package analysis_test

import (
	"strings"
	"testing"

	"tempo/internal/analysis"
	"tempo/internal/analysis/determinism"
	"tempo/internal/analysis/load"
)

// TestIgnoreHygiene drives the full ignore lifecycle over the hygiene
// fixture: malformed ignores and unused ignores are reported as
// "tempolint" diagnostics, a matching ignore suppresses its finding and
// records the reason, and an unsuppressed finding stays live.
func TestIgnoreHygiene(t *testing.T) {
	l := load.NewFixture([]string{"testdata/src"})
	suite := []*analysis.Analyzer{determinism.Analyzer}
	diags, err := analysis.Run(l, []string{"hygiene"}, suite, analysis.Options{ReportUnusedIgnores: true})
	if err != nil {
		t.Fatalf("loading hygiene fixture: %v", err)
	}

	var malformed, unused, suppressed, live int
	for _, d := range diags {
		switch {
		case d.Analyzer == "tempolint" && strings.Contains(d.Message, "malformed"):
			malformed++
		case d.Analyzer == "tempolint" && strings.Contains(d.Message, "unused"):
			unused++
			if !strings.Contains(d.Message, `"determinism"`) {
				t.Errorf("unused-ignore diagnostic does not name the analyzer: %s", d)
			}
		case d.Suppressed:
			suppressed++
			if d.Reason != "fixture: wall clock wanted here" {
				t.Errorf("suppressed diagnostic carries wrong reason %q", d.Reason)
			}
		default:
			live++
			if !strings.Contains(d.Message, "time.Now") {
				t.Errorf("unexpected live diagnostic: %s", d)
			}
		}
	}
	if malformed != 2 {
		t.Errorf("malformed-ignore diagnostics = %d, want 2 (no-analyzer and no-reason forms)", malformed)
	}
	if unused != 1 {
		t.Errorf("unused-ignore diagnostics = %d, want 1", unused)
	}
	if suppressed != 1 {
		t.Errorf("suppressed diagnostics = %d, want 1", suppressed)
	}
	if live != 1 {
		t.Errorf("live diagnostics = %d, want 1 (the unsuppressed time.Now)", live)
	}
}

// TestIgnoreHygieneWithoutUnusedReporting checks that subset runs,
// which set ReportUnusedIgnores=false, do not flag other analyzers'
// ignores as unused — only malformed ones are still reported.
func TestIgnoreHygieneWithoutUnusedReporting(t *testing.T) {
	l := load.NewFixture([]string{"testdata/src"})
	suite := []*analysis.Analyzer{determinism.Analyzer}
	diags, err := analysis.Run(l, []string{"hygiene"}, suite, analysis.Options{})
	if err != nil {
		t.Fatalf("loading hygiene fixture: %v", err)
	}
	for _, d := range diags {
		if d.Analyzer == "tempolint" && strings.Contains(d.Message, "unused") {
			t.Errorf("unused-ignore reported despite ReportUnusedIgnores=false: %s", d)
		}
	}
}

package qs

import (
	"sort"
	"time"

	"tempo/internal/cluster"
	"tempo/internal/workload"
)

// Candidate-pruning bounds for the controller's what-if search. A
// BoundSet, precomputed once per sample trace, answers "how good could
// template i's QS value possibly be under configuration x?" without
// simulating: a coordinatewise lower bound on the QS vector of ANY
// schedule the predictor can produce for that trace under x. Since QS is
// minimized, the lower bound is the optimistic side — if even the bound's
// max-regret cannot beat the incumbent's actual max-regret, no simulation
// of x can either, and the candidate is safe to prune.
//
// Soundness rests on two scheduler invariants:
//
//   - a tenant never runs more than effMax = min(MaxShare or capacity,
//     capacity) containers at any instant (the hard placement cap in
//     scheduler.go), so its allocation integral over any window of length
//     L is at most effMax·L;
//   - every task of a job completed within [0, H] runs inside [0, H], so
//     the total work of the tenant's completed jobs is at most effMax·H
//     (capacity·H cluster-wide).
//
// Per metric, over the control loop's evaluation window [0, H+1ns):
//
//   - AvgResponseTime, DeadlineViolations, Fairness are nonnegative by
//     definition → lower bound 0;
//   - Utilization is −priority·usedFraction with usedFraction ≤ min(1,
//     effMax/capacity) per-tenant (≤ 1 cluster-wide) → lower bound
//     −priority·min(1, effMax/capacity);
//   - Throughput is −priority·|completed jobs|. A job submitted at S
//     needs at least max(CriticalPath, TotalWork/effMax) to finish, so it
//     is completable only if that earliest finish is ≤ H; among
//     completable jobs, total work ≤ effMax·H bounds how many can all
//     finish, maximized by taking jobs in ascending-work order → lower
//     bound −priority·(that count).
//
// Every bound is monotone under the downstream transforms (sample
// averaging, positive normalization scales, MaxRegret), which is what
// makes pruning on the bound provably ranking-safe — see
// core.Controller.Step.

// boundJob is the precomputed per-job view a throughput bound scans.
type boundJob struct {
	tenant   string
	submit   time.Duration
	critical time.Duration
	work     time.Duration
}

// BoundSet holds the trace-dependent precomputation behind Lower. It is
// built once per sample trace and reused across candidate configurations
// and ticks; only Lower depends on the configuration.
type BoundSet struct {
	templates []Template
	horizon   time.Duration
	// jobs maps each throughput template's queue ("" = cluster-wide) to
	// that queue's jobs sorted by ascending total work.
	jobs map[string][]boundJob
}

// NewBoundSet precomputes per-job statistics for the throughput bounds.
// horizon is the prediction window the control loop evaluates over
// ([0, horizon+1ns)); a non-positive horizon yields no bound set.
func NewBoundSet(templates []Template, trace *workload.Trace, horizon time.Duration) *BoundSet {
	if horizon <= 0 || trace == nil {
		return nil
	}
	bs := &BoundSet{
		templates: append([]Template(nil), templates...),
		horizon:   horizon,
		jobs:      make(map[string][]boundJob),
	}
	for _, t := range templates {
		if t.Metric != Throughput {
			continue
		}
		if _, ok := bs.jobs[t.Queue]; ok {
			continue
		}
		var js []boundJob
		for i := range trace.Jobs {
			j := &trace.Jobs[i]
			if t.Queue != "" && j.Tenant != t.Queue {
				continue
			}
			js = append(js, boundJob{
				tenant:   j.Tenant,
				submit:   j.Submit,
				critical: j.CriticalPath(),
				work:     j.TotalWork(),
			})
		}
		sort.SliceStable(js, func(a, b int) bool { return js[a].work < js[b].work })
		bs.jobs[t.Queue] = js
	}
	return bs
}

// effMax mirrors the scheduler's per-tenant container ceiling: MaxShare
// clamped to capacity, with 0 (and any non-positive value) meaning
// unlimited.
func effMax(cfg *cluster.Config, tenant string) int {
	capacity := cfg.TotalContainers
	m := cfg.Tenant(tenant).MaxShare
	if m <= 0 || m > capacity {
		return capacity
	}
	return m
}

// Lower returns the per-template lower bounds on the QS vector of any
// schedule producible for this bound set's trace under cfg. The result is
// freshly allocated.
func (b *BoundSet) Lower(cfg *cluster.Config) []float64 {
	out := make([]float64, len(b.templates))
	capacity := cfg.TotalContainers
	if capacity <= 0 {
		return out
	}
	for i, t := range b.templates {
		priority := t.Priority
		if priority == 0 {
			priority = 1
		}
		switch t.Metric {
		case Utilization:
			frac := 1.0
			if t.Queue != "" {
				if f := float64(effMax(cfg, t.Queue)) / float64(capacity); f < frac {
					frac = f
				}
			}
			out[i] = -priority * frac
		case Throughput:
			out[i] = -priority * float64(b.maxCompletable(cfg, t.Queue))
		default:
			// AvgResponseTime, DeadlineViolations, Fairness: ≥ 0.
			out[i] = 0
		}
	}
	return out
}

// maxCompletable upper-bounds how many of the queue's jobs can complete
// within [0, horizon] under cfg: each counted job must individually be
// finishable by the horizon, and the counted set's total work must fit in
// the queue's work budget (effMax·horizon per-tenant, capacity·horizon
// cluster-wide). Scanning the ascending-work order makes the greedy
// prefix the maximum.
func (b *BoundSet) maxCompletable(cfg *cluster.Config, queue string) int {
	js := b.jobs[queue]
	budget := time.Duration(cfg.TotalContainers) * b.horizon
	var queueMax int
	if queue != "" {
		queueMax = effMax(cfg, queue)
		budget = time.Duration(queueMax) * b.horizon
	}
	count := 0
	var used time.Duration
	for _, j := range js {
		m := queueMax
		if queue == "" {
			m = effMax(cfg, j.tenant)
		}
		earliest := j.critical
		if perWork := j.work / time.Duration(m); perWork > earliest {
			earliest = perWork
		}
		if j.submit+earliest > b.horizon {
			continue // cannot finish by the horizon under any schedule
		}
		if used+j.work > budget {
			break // ascending work: no later job fits either
		}
		used += j.work
		count++
	}
	return count
}

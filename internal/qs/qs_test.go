package qs

import (
	"math"
	"testing"
	"time"

	"tempo/internal/cluster"
	"tempo/internal/workload"
)

// fixedSchedule builds a hand-crafted schedule for exact metric checks.
func fixedSchedule() *cluster.Schedule {
	sec := func(n int) time.Duration { return time.Duration(n) * time.Second }
	return &cluster.Schedule{
		Capacity: 10,
		Horizon:  sec(100),
		Jobs: []cluster.JobRecord{
			{ID: "a1", Tenant: "A", Submit: sec(0), Finish: sec(10), Completed: true},
			{ID: "a2", Tenant: "A", Submit: sec(10), Finish: sec(40), Completed: true},
			{ID: "a3", Tenant: "A", Submit: sec(90), Finish: sec(150), Completed: true}, // finishes outside [0,100)
			{ID: "b1", Tenant: "B", Submit: sec(0), Finish: sec(50), Deadline: sec(30), Completed: true},
			{ID: "b2", Tenant: "B", Submit: sec(0), Finish: sec(20), Deadline: sec(30), Completed: true},
			{ID: "b3", Tenant: "B", Submit: sec(5), Finish: sec(60), Completed: false}, // incomplete
		},
		Tasks: []cluster.TaskRecord{
			{JobID: "a1", Tenant: "A", Kind: workload.Map, Start: sec(0), End: sec(10), Outcome: cluster.TaskFinished},
			{JobID: "a2", Tenant: "A", Kind: workload.Reduce, Start: sec(10), End: sec(40), Outcome: cluster.TaskFinished},
			{JobID: "b1", Tenant: "B", Kind: workload.Map, Start: sec(0), End: sec(50), Outcome: cluster.TaskFinished},
			{JobID: "b1", Tenant: "B", Kind: workload.Map, Start: sec(0), End: sec(20), Outcome: cluster.TaskPreempted},
		},
	}
}

func TestAvgResponseTime(t *testing.T) {
	s := fixedSchedule()
	tpl := Template{Queue: "A", Metric: AvgResponseTime}
	// Jobs a1 (10s) and a2 (30s) are in-window; a3 finishes outside.
	got := tpl.Eval(s, 0, 100*time.Second)
	if math.Abs(got-20) > 1e-9 {
		t.Fatalf("AJR = %v, want 20", got)
	}
}

func TestAvgResponseTimeEmptySet(t *testing.T) {
	s := fixedSchedule()
	tpl := Template{Queue: "nobody", Metric: AvgResponseTime}
	if got := tpl.Eval(s, 0, 100*time.Second); got != 0 {
		t.Fatalf("empty AJR = %v, want 0", got)
	}
}

func TestDeadlineViolations(t *testing.T) {
	s := fixedSchedule()
	// b1: finish 50 > deadline 30 (+slack 0) → violated.
	// b2: finish 20 <= 30 → ok. b3 incomplete → excluded.
	tpl := Template{Queue: "B", Metric: DeadlineViolations}
	if got := tpl.Eval(s, 0, 100*time.Second); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("DL = %v, want 0.5", got)
	}
}

func TestDeadlineSlackForgives(t *testing.T) {
	s := fixedSchedule()
	// b1 duration 50s; slack 0.5 → limit 30 + 25 = 55 >= 50 → forgiven.
	tpl := Template{Queue: "B", Metric: DeadlineViolations, Slack: 0.5}
	if got := tpl.Eval(s, 0, 100*time.Second); got != 0 {
		t.Fatalf("DL with slack = %v, want 0", got)
	}
}

func TestDeadlineNoDeadlineJobs(t *testing.T) {
	s := fixedSchedule()
	tpl := Template{Queue: "A", Metric: DeadlineViolations}
	if got := tpl.Eval(s, 0, 100*time.Second); got != 0 {
		t.Fatalf("DL without deadlines = %v, want 0", got)
	}
}

func TestUtilization(t *testing.T) {
	s := fixedSchedule()
	// A used 10 + 30 = 40 container-seconds of 10×100 → 0.04 → QS −0.04.
	tpl := Template{Queue: "A", Metric: Utilization}
	if got := tpl.Eval(s, 0, 100*time.Second); math.Abs(got+0.04) > 1e-9 {
		t.Fatalf("UTIL = %v, want -0.04", got)
	}
}

func TestUtilizationEffectiveOnly(t *testing.T) {
	s := fixedSchedule()
	// B: finished 50s + preempted 20s = 70 cs raw; effective = 50 cs.
	raw := Template{Queue: "B", Metric: Utilization}
	eff := Template{Queue: "B", Metric: Utilization, EffectiveOnly: true}
	if got := raw.Eval(s, 0, 100*time.Second); math.Abs(got+0.07) > 1e-9 {
		t.Fatalf("raw UTIL = %v, want -0.07", got)
	}
	if got := eff.Eval(s, 0, 100*time.Second); math.Abs(got+0.05) > 1e-9 {
		t.Fatalf("effective UTIL = %v, want -0.05", got)
	}
}

func TestUtilizationByKind(t *testing.T) {
	s := fixedSchedule()
	k := workload.Reduce
	tpl := Template{Queue: "A", Metric: Utilization, TaskKind: &k}
	// Only a2's reduce: 30 cs / 1000 → -0.03.
	if got := tpl.Eval(s, 0, 100*time.Second); math.Abs(got+0.03) > 1e-9 {
		t.Fatalf("UTIL_RED = %v, want -0.03", got)
	}
}

func TestUtilizationClipsToWindow(t *testing.T) {
	s := fixedSchedule()
	tpl := Template{Queue: "A", Metric: Utilization}
	// Window [0,20): a1 contributes 10, a2 contributes 10 → 20/(10·20) = 0.1.
	if got := tpl.Eval(s, 0, 20*time.Second); math.Abs(got+0.1) > 1e-9 {
		t.Fatalf("clipped UTIL = %v, want -0.1", got)
	}
}

func TestThroughput(t *testing.T) {
	s := fixedSchedule()
	tpl := Template{Queue: "B", Metric: Throughput}
	if got := tpl.Eval(s, 0, 100*time.Second); got != -2 {
		t.Fatalf("THR = %v, want -2", got)
	}
}

func TestFairness(t *testing.T) {
	s := fixedSchedule()
	// Total usage = 40 + 70 = 110 cs; A's share = 40/110.
	tpl := Template{Queue: "A", Metric: Fairness, DesiredShare: 0.5}
	want := math.Abs(0.5 - 40.0/110.0)
	if got := tpl.Eval(s, 0, 100*time.Second); math.Abs(got-want) > 1e-9 {
		t.Fatalf("FAIR = %v, want %v", got, want)
	}
}

func TestFairnessNoUsage(t *testing.T) {
	s := &cluster.Schedule{Capacity: 10}
	tpl := Template{Queue: "A", Metric: Fairness, DesiredShare: 0.5}
	if got := tpl.Eval(s, 0, time.Minute); got != 0 {
		t.Fatalf("FAIR on empty = %v", got)
	}
}

func TestPriorityMultiplies(t *testing.T) {
	s := fixedSchedule()
	base := Template{Queue: "A", Metric: AvgResponseTime}
	weighted := Template{Queue: "A", Metric: AvgResponseTime, Priority: 3}
	b := base.Eval(s, 0, 100*time.Second)
	w := weighted.Eval(s, 0, 100*time.Second)
	if math.Abs(w-3*b) > 1e-9 {
		t.Fatalf("priority: %v vs 3×%v", w, b)
	}
}

func TestEvalAllOrder(t *testing.T) {
	s := fixedSchedule()
	tpls := []Template{
		{Queue: "A", Metric: AvgResponseTime},
		{Queue: "B", Metric: DeadlineViolations},
	}
	v := EvalAll(tpls, s, 0, 100*time.Second)
	if len(v) != 2 || math.Abs(v[0]-20) > 1e-9 || math.Abs(v[1]-0.5) > 1e-9 {
		t.Fatalf("EvalAll = %v", v)
	}
}

func TestTemplateValidate(t *testing.T) {
	good := Template{Queue: "A", Metric: AvgResponseTime}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Template{
		{Metric: AvgResponseTime},
		{Queue: "A", Metric: "nope"},
		{Queue: "A", Metric: DeadlineViolations, Slack: -1},
		{Queue: "A", Metric: AvgResponseTime, Priority: -2},
		{Queue: "A", Metric: Fairness, DesiredShare: 1.5},
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestTemplateName(t *testing.T) {
	k := workload.Reduce
	tpl := Template{Queue: "B", Metric: Utilization, TaskKind: &k}
	if got := tpl.Name(); got != "B/utilization_reduce" {
		t.Fatalf("Name = %q", got)
	}
}

func TestWithTarget(t *testing.T) {
	tpl := Template{Queue: "A", Metric: AvgResponseTime}.WithTarget(120)
	if !tpl.HasTarget || tpl.Target != 120 {
		t.Fatalf("WithTarget = %+v", tpl)
	}
}

func TestUnknownMetricEvalNaN(t *testing.T) {
	tpl := Template{Queue: "A", Metric: "bogus"}
	if got := tpl.Eval(fixedSchedule(), 0, time.Minute); !math.IsNaN(got) {
		t.Fatalf("bogus metric = %v, want NaN", got)
	}
}

func TestDominates(t *testing.T) {
	cases := []struct {
		a, b []float64
		want bool
	}{
		{[]float64{1, 2}, []float64{2, 2}, true},
		{[]float64{1, 2}, []float64{1, 2}, false}, // equal: not strict
		{[]float64{1, 3}, []float64{2, 2}, false}, // trade-off
		{[]float64{2, 2}, []float64{1, 2}, false},
		{[]float64{1}, []float64{1, 2}, false}, // length mismatch
	}
	for i, c := range cases {
		if got := Dominates(c.a, c.b); got != c.want {
			t.Errorf("case %d: Dominates(%v, %v) = %v", i, c.a, c.b, got)
		}
	}
}

func TestMaxRegret(t *testing.T) {
	tpls := []Template{
		Template{Queue: "A", Metric: AvgResponseTime}.WithTarget(10),
		Template{Queue: "B", Metric: DeadlineViolations}.WithTarget(0.05),
		{Queue: "C", Metric: Throughput}, // no target
	}
	vals := []float64{15, 0.02, -3}
	if got := MaxRegret(tpls, vals); math.Abs(got-5) > 1e-9 {
		t.Fatalf("MaxRegret = %v, want 5", got)
	}
	if got := MaxRegret(tpls, []float64{5, 0.01, -9}); got != 0 {
		t.Fatalf("satisfied MaxRegret = %v, want 0", got)
	}
}

// Integration: QS metrics on a real simulated schedule behave sensibly —
// more capacity can only improve response time.
func TestIntegrationMoreCapacityLowersAJR(t *testing.T) {
	tr, err := workload.Generate(
		[]workload.TenantProfile{workload.BestEffort("A", 2)},
		workload.GenerateOptions{Horizon: 2 * time.Hour, Seed: 4},
	)
	if err != nil {
		t.Fatal(err)
	}
	eval := func(capacity int) float64 {
		s, err := cluster.Predict(tr, cluster.Config{
			TotalContainers: capacity,
			Tenants:         map[string]cluster.TenantConfig{"A": {Weight: 1}},
		})
		if err != nil {
			t.Fatal(err)
		}
		tpl := Template{Queue: "A", Metric: AvgResponseTime}
		return tpl.Eval(s, 0, s.Horizon+time.Hour)
	}
	small, big := eval(10), eval(80)
	if big >= small {
		t.Fatalf("AJR with 80 containers (%v) should beat 10 containers (%v)", big, small)
	}
}

package whatif

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"tempo/internal/cluster"
	"tempo/internal/qs"
)

// DefaultParallelism returns the worker count that saturates the host: one
// per available CPU. It is the single source of the "0 means all CPUs"
// policy the command-line flags and the root package share.
func DefaultParallelism() int { return runtime.GOMAXPROCS(0) }

// EvaluateBatch predicts the QS vector for every configuration, each
// averaged over the model's sample count. The (configuration, sample)
// pairs are independent, so with Parallelism > 1 they are fanned out over
// a worker pool; the reduction runs in sample order afterwards, so the
// returned vectors are bit-identical to sequential evaluation. Row i of
// the result corresponds to cfgs[i].
//
// This is the Optimizer's hot path: one control-loop iteration scores the
// current configuration plus every PALD candidate in a single batch.
func (m *Model) EvaluateBatch(cfgs []cluster.Config) ([][]float64, error) {
	out := make([][]float64, len(cfgs))
	if len(cfgs) == 0 {
		return out, nil
	}
	samples := m.Samples
	if samples < 1 {
		samples = 1
	}
	vecs, err := m.evalPairs(cfgs, samples)
	if err != nil {
		return nil, err
	}
	for c := range cfgs {
		acc := make([]float64, len(m.Templates))
		for s := 0; s < samples; s++ {
			v := vecs[c*samples+s]
			for i := range acc {
				acc[i] += v[i]
			}
		}
		for i := range acc {
			acc[i] /= float64(samples)
		}
		out[c] = acc
	}
	return out, nil
}

// evalCache shares QS vectors across the candidates of one batch. Small
// configuration deltas frequently leave the predicted schedule unchanged
// (a weight tweak beyond the contention point, a max-share above demand),
// in which case re-deriving the QS vector from an identical event stream
// is pure waste. Entries are keyed by (sample, schedule fingerprint) and
// verified with an exact record comparison before reuse, so a fingerprint
// collision can never corrupt a result; and since verified-equal schedules
// yield bit-identical QS vectors, reuse cannot perturb determinism no
// matter which worker populated the entry first.
type evalCache struct {
	mu      sync.Mutex
	entries map[int][]evalCacheEntry
}

// maxCacheEntriesPerSample bounds retained schedules: each entry pins a
// full predicted schedule (jobs + tasks) for the batch's lifetime, and a
// batch whose candidates all predict distinct schedules gains nothing
// from caching them. PALD batches score a handful of candidates, so the
// bound is never hit in the control loop; it only caps memory for huge
// hand-built batches.
const maxCacheEntriesPerSample = 32

type evalCacheEntry struct {
	fp    uint64
	sched *cluster.Schedule
	vals  []float64
}

func newEvalCache() *evalCache {
	return &evalCache{entries: map[int][]evalCacheEntry{}}
}

// lookup returns a previously computed QS vector for an identical
// (sample, schedule) pair, or nil. The O(records) exact comparison runs
// outside the lock — entries are append-only and immutable once stored,
// so only the slice snapshot needs the mutex, and workers comparing large
// schedules do not serialize each other.
func (c *evalCache) lookup(sample int, sched *cluster.Schedule, fp uint64) []float64 {
	c.mu.Lock()
	candidates := c.entries[sample]
	c.mu.Unlock()
	for _, e := range candidates {
		if e.fp == fp && e.sched.Equal(sched) {
			return e.vals
		}
	}
	return nil
}

func (c *evalCache) store(sample int, sched *cluster.Schedule, fp uint64, vals []float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.entries[sample]) >= maxCacheEntriesPerSample {
		return
	}
	c.entries[sample] = append(c.entries[sample], evalCacheEntry{fp: fp, sched: sched, vals: vals})
}

// evalPairs scores every (configuration, sample) pair and returns the QS
// vectors indexed by cfg*samples + sample. Errors are aggregated
// deterministically: the pair with the lowest flat index wins, which is
// exactly the error sequential evaluation would have returned first.
func (m *Model) evalPairs(cfgs []cluster.Config, samples int) ([][]float64, error) {
	predict := m.Predict
	if predict == nil {
		predict = DefaultPredictor
	}
	total := len(cfgs) * samples
	vecs := make([][]float64, total)
	errs := make([]error, total)
	cache := newEvalCache()
	workers := m.Parallelism
	if workers > total {
		workers = total
	}
	if workers <= 1 {
		for idx := 0; idx < total; idx++ {
			vecs[idx], errs[idx] = m.evalSample(predict, cache, cfgs[idx/samples], idx%samples)
			if errs[idx] != nil {
				break
			}
		}
	} else {
		// Work-stealing over a shared atomic counter: pairs vary wildly in
		// cost (candidate configurations change queueing behaviour), so
		// static striping would leave workers idle. Every pair runs even if
		// one fails — that keeps the winning error independent of goroutine
		// timing, and failures are cheap (config validation rejects them
		// before any simulation work).
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					idx := int(next.Add(1)) - 1
					if idx >= total {
						return
					}
					vecs[idx], errs[idx] = m.evalSample(predict, cache, cfgs[idx/samples], idx%samples)
				}
			}()
		}
		wg.Wait()
	}
	for idx, err := range errs {
		if err != nil {
			if len(cfgs) > 1 {
				return nil, fmt.Errorf("whatif: config %d: %w", idx/samples, err)
			}
			return nil, fmt.Errorf("whatif: %w", err)
		}
	}
	return vecs, nil
}

// evalSample scores cfg on one workload sample: it predicts the task
// schedule, then derives the full QS vector incrementally — the schedule's
// event stream is built once and shared by every template
// (qs.EvalStream), instead of one record scan per template. Candidates
// whose predicted schedule is identical to one already scored for the
// same sample reuse its vector through the batch's evalCache.
func (m *Model) evalSample(predict Predictor, cache *evalCache, cfg cluster.Config, sample int) ([]float64, error) {
	trace, err := m.Gen(sample)
	if err != nil {
		return nil, fmt.Errorf("generating sample %d: %w", sample, err)
	}
	if trace == nil {
		return nil, fmt.Errorf("generating sample %d: generator returned a nil trace", sample)
	}
	sched, err := predict(trace, cfg, m.Horizon)
	if err != nil {
		return nil, fmt.Errorf("predicting sample %d: %w", sample, err)
	}
	if sched == nil {
		return nil, fmt.Errorf("predicting sample %d: predictor returned a nil schedule", sample)
	}
	fp := sched.Fingerprint()
	if vals := cache.lookup(sample, sched, fp); vals != nil {
		return vals, nil
	}
	vals := qs.EvalStream(m.Templates, sched, 0, sched.Horizon+time.Nanosecond)
	cache.store(sample, sched, fp, vals)
	return vals, nil
}

package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Modulator scales a tenant's base arrival rate as a function of trace
// time, modelling the diurnal and weekly patterns Concern D describes
// (e.g. ETL input shrinking on weekends).
type Modulator func(t time.Duration) float64

// Flat is the identity modulator.
func Flat(time.Duration) float64 { return 1 }

// DiurnalWeekly returns a modulator with a smooth day/night cycle and a
// weekend dip. night and weekend are multipliers in [0, 1]; 1 disables the
// respective effect. The trace is assumed to start at Monday 00:00.
func DiurnalWeekly(night, weekend float64) Modulator {
	return func(t time.Duration) float64 {
		hours := t.Hours()
		dayFrac := math.Mod(hours, 24) / 24
		// Peak mid-day, trough at midnight.
		diurnal := night + (1-night)*(0.5-0.5*math.Cos(2*math.Pi*dayFrac))
		day := int(hours/24) % 7
		w := 1.0
		if day >= 5 { // Saturday, Sunday
			w = weekend
		}
		return diurnal * w
	}
}

// Periodic returns a modulator that fires bursts of the given width every
// period, modelling periodic-but-bursty tenants like ETL (Table 1). The
// rate is boost inside the burst window and floor outside.
func Periodic(period, width time.Duration, floor, boost float64) Modulator {
	return func(t time.Duration) float64 {
		if period <= 0 {
			return 1
		}
		phase := t % period
		if phase < width {
			return boost
		}
		return floor
	}
}

// TenantProfile is the statistical model of one tenant's workload: a
// (possibly modulated) Poisson job-arrival process with per-job size and
// duration distributions. It is the "statistical model of the workload"
// input of Tempo's Workload Generator (§7.1).
type TenantProfile struct {
	// Name is the tenant (queue) name.
	Name string
	// JobsPerHour is the base Poisson arrival rate.
	JobsPerHour float64
	// Rate modulates JobsPerHour over trace time; nil means constant.
	Rate Modulator
	// NumMaps and NumReduces draw per-job task counts; samples are rounded
	// and clamped to >= 0 (NumMaps to >= 1). Nil NumReduces means map-only.
	NumMaps    Dist
	NumReduces Dist
	// MapSeconds and ReduceSeconds draw per-task durations in seconds.
	MapSeconds    Dist
	ReduceSeconds Dist
	// DeadlineFactor, when non-nil, attaches deadlines: a job submitted at
	// s with ideal duration d (critical path at DeadlineParallelism-way
	// parallelism) gets deadline s + factor·d.
	DeadlineFactor Dist
	// DeadlineParallelism is the container count assumed when estimating
	// the ideal duration for deadline placement; defaults to 10.
	DeadlineParallelism int
}

func (p *TenantProfile) validate() error {
	if p.Name == "" {
		return fmt.Errorf("workload: profile with empty name")
	}
	if p.JobsPerHour <= 0 {
		return fmt.Errorf("workload: profile %s has non-positive rate", p.Name)
	}
	if p.NumMaps == nil || p.MapSeconds == nil {
		return fmt.Errorf("workload: profile %s missing map distributions", p.Name)
	}
	if p.NumReduces != nil && p.ReduceSeconds == nil {
		return fmt.Errorf("workload: profile %s has reduces but no reduce durations", p.Name)
	}
	return nil
}

// idealDuration estimates how long a job would take with p-way parallelism
// per stage: used only for deadline placement.
func idealDuration(job *JobSpec, parallelism int) time.Duration {
	if parallelism < 1 {
		parallelism = 1
	}
	var total time.Duration
	for _, s := range job.Stages {
		var work, maxTask time.Duration
		for _, t := range s.Tasks {
			work += t.Duration
			if t.Duration > maxTask {
				maxTask = t.Duration
			}
		}
		waves := work / time.Duration(parallelism)
		if waves < maxTask {
			waves = maxTask
		}
		total += waves
	}
	return total
}

// GenerateOptions configure trace synthesis.
type GenerateOptions struct {
	// Horizon is the trace length; required.
	Horizon time.Duration
	// Seed drives all randomness; the same (profiles, options) pair always
	// yields the same trace.
	Seed int64
	// Name labels the trace.
	Name string
}

// Generate synthesizes a trace from tenant profiles. Arrivals follow a
// time-modulated Poisson process realized by thinning; task durations and
// job sizes are drawn from the per-profile distributions.
func Generate(profiles []TenantProfile, opts GenerateOptions) (*Trace, error) {
	if opts.Horizon <= 0 {
		return nil, fmt.Errorf("workload: non-positive horizon %v", opts.Horizon)
	}
	trace := &Trace{Name: opts.Name, Horizon: opts.Horizon}
	for pi := range profiles {
		p := &profiles[pi]
		if err := p.validate(); err != nil {
			return nil, err
		}
		// Independent stream per tenant so adding a tenant does not change
		// the others' draws.
		rng := rand.New(rand.NewSource(opts.Seed ^ int64(hashString(p.Name))))
		mod := p.Rate
		if mod == nil {
			mod = Flat
		}
		// Thinning needs an upper bound on the modulated rate; probe the
		// modulator coarsely and add headroom.
		maxMod := 1.0
		step := opts.Horizon / 200
		if step <= 0 {
			step = opts.Horizon
		}
		for t := time.Duration(0); t <= opts.Horizon; t += step {
			if m := mod(t); m > maxMod {
				maxMod = m
			}
		}
		maxRate := p.JobsPerHour * maxMod // jobs per hour
		seq := 0
		for t := time.Duration(0); ; {
			// Exponential inter-arrival at the envelope rate.
			gap := time.Duration(rng.ExpFloat64() / maxRate * float64(time.Hour))
			if gap <= 0 {
				gap = time.Nanosecond
			}
			t += gap
			if t >= opts.Horizon {
				break
			}
			if rng.Float64() > mod(t)*p.JobsPerHour/maxRate {
				continue // thinned out
			}
			job := p.sampleJob(rng, t, seq)
			seq++
			trace.Jobs = append(trace.Jobs, job)
		}
	}
	trace.Sort()
	return trace, nil
}

func (p *TenantProfile) sampleJob(rng *rand.Rand, submit time.Duration, seq int) JobSpec {
	nMaps := clampInt(p.NumMaps.Sample(rng), 1, 1<<20)
	mapDur := make([]time.Duration, nMaps)
	for i := range mapDur {
		mapDur[i] = secondsToDuration(p.MapSeconds.Sample(rng))
	}
	var redDur []time.Duration
	if p.NumReduces != nil {
		nRed := clampInt(p.NumReduces.Sample(rng), 0, 1<<20)
		redDur = make([]time.Duration, nRed)
		for i := range redDur {
			redDur[i] = secondsToDuration(p.ReduceSeconds.Sample(rng))
		}
	}
	job := NewMapReduceJob(fmt.Sprintf("%s-%06d", p.Name, seq), p.Name, submit, mapDur, redDur)
	if p.DeadlineFactor != nil {
		par := p.DeadlineParallelism
		if par == 0 {
			par = 10
		}
		factor := p.DeadlineFactor.Sample(rng)
		if factor < 1 {
			factor = 1
		}
		ideal := idealDuration(&job, par)
		job.Deadline = submit + time.Duration(float64(ideal)*factor)
	}
	return job
}

func clampInt(v float64, lo, hi int) int {
	n := int(math.Round(v))
	if n < lo {
		return lo
	}
	if n > hi {
		return hi
	}
	return n
}

func secondsToDuration(s float64) time.Duration {
	if s < 0.001 {
		s = 0.001
	}
	return time.Duration(s * float64(time.Second))
}

// Grow returns a copy of the profile with the workload's data size scaled
// by the given factor — §7.1's "synthetic workloads with extended
// characteristics such as a growth in data size by 30%" (factor 1.3).
// Data growth in MapReduce-style systems shows up as more input splits,
// so the map count scales with the factor while per-task durations stay
// put; reduce counts scale with the square root (partition counts grow
// sublinearly in practice).
func (p TenantProfile) Grow(factor float64) TenantProfile {
	if factor <= 0 {
		factor = 1
	}
	out := p
	out.NumMaps = Scaled{D: p.NumMaps, Factor: factor}
	if p.NumReduces != nil {
		out.NumReduces = Scaled{D: p.NumReduces, Factor: math.Sqrt(factor)}
	}
	return out
}

// Scaled multiplies another distribution's samples by a constant factor.
type Scaled struct {
	D      Dist
	Factor float64
}

// Sample implements Dist.
func (s Scaled) Sample(rng *rand.Rand) float64 { return s.Factor * s.D.Sample(rng) }

// Mean implements Dist.
func (s Scaled) Mean() float64 { return s.Factor * s.D.Mean() }

// hashString is FNV-1a, inlined to keep the package dependency-light and
// the seeds stable across Go releases.
func hashString(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

package exp

import (
	"time"

	"tempo/internal/scenario"
)

// This file re-expresses the end-to-end experiment setups (§8.2) as
// declarative scenario specs. The control-loop experiments (Figure 6, the
// strategy and guard ablations) build their controllers through
// scenario.Build rather than bespoke wiring; the specs double as the seed
// content of the scenario regression suite.

// TwoTenantSpec is the §8.2.1 convergence scenario: a Cloudera-like
// deadline tenant with a hard QS_DL constraint plus a Facebook-like
// best-effort tenant whose QS_AJR the loop ratchets, replaying one fixed
// workload trace each control interval with fresh noise, starting from the
// skewed expert configuration.
func TwoTenantSpec(seed int64, slack float64, interval time.Duration, iterations int) *scenario.Spec {
	target := 0.0
	return &scenario.Spec{
		Name:            "two-tenant-replay",
		Description:     "§8.2.1 convergence: deadline SLO constrained, best-effort AJR ratcheted, fixed trace replayed with fresh noise",
		Seed:            seed,
		Capacity:        loopCapacity,
		IntervalMinutes: interval.Minutes(),
		Iterations:      iterations,
		Replay:          true,
		Noise:           &scenario.NoiseSpec{},
		Tenants: []scenario.TenantSpec{
			{
				Name:     "deadline",
				Profile:  "cloudera",
				Scale:    loopScale,
				Deadline: &scenario.DeadlineSpec{FactorLo: 1.1, FactorHi: 1.8, Parallelism: 16},
			},
			{Name: "besteffort", Profile: "facebook", Scale: loopScale},
		},
		SLOs: []scenario.SLOSpec{
			{Queue: "deadline", Metric: "deadline_violations", Slack: slack, Target: &target},
			{Queue: "besteffort", Metric: "avg_response_time"},
		},
		Initial:    scenario.InitialSpec{Preset: "expert-two-tenant"},
		Controller: scenario.ControllerSpec{Candidates: 5, MaxStep: 0.2},
	}
}

// Package hygiene exercises the ignore-comment lifecycle itself:
// malformed ignores, unused ignores, and a correctly used one. It is
// checked programmatically by ignore_test.go rather than with // want
// comments, because the diagnostics under test attach to the ignore
// comments themselves.
//
//tempolint:deterministic
package hygiene

import "time"

//tempolint:ignore
func malformedNoAnalyzer() {}

//tempolint:ignore determinism
func malformedNoReason() {}

//tempolint:ignore determinism nothing on the next line ever trips this
func unusedIgnore() {}

func usedIgnore() time.Time {
	//tempolint:ignore determinism fixture: wall clock wanted here
	return time.Now()
}

func unsuppressed() time.Time {
	return time.Now()
}

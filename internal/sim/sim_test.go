package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestEngineZeroValueUsable(t *testing.T) {
	var e Engine
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
	if e.Step() {
		t.Fatal("Step() on empty engine returned true")
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	var e Engine
	var got []time.Duration
	times := []time.Duration{5, 1, 3, 2, 4}
	for _, d := range times {
		d := d
		e.At(d, 0, func(now time.Duration) { got = append(got, now) })
	}
	e.Run()
	want := []time.Duration{1, 2, 3, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d fired at %v, want %v", i, got[i], want[i])
		}
	}
}

func TestPriorityBreaksTies(t *testing.T) {
	var e Engine
	var order []int
	e.At(10, 2, func(time.Duration) { order = append(order, 2) })
	e.At(10, 0, func(time.Duration) { order = append(order, 0) })
	e.At(10, 1, func(time.Duration) { order = append(order, 1) })
	e.Run()
	for i, v := range order {
		if i != v {
			t.Fatalf("order = %v, want [0 1 2]", order)
		}
	}
}

func TestSequenceBreaksEqualPriorityTies(t *testing.T) {
	var e Engine
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(7, 0, func(time.Duration) { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if i != v {
			t.Fatalf("insertion order not preserved: %v", order)
		}
	}
}

func TestCancelSkipsEvent(t *testing.T) {
	var e Engine
	fired := false
	ev := e.At(1, 0, func(time.Duration) { fired = true })
	ev.Cancel()
	if !ev.Canceled() {
		t.Fatal("Canceled() = false after Cancel")
	}
	e.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
	if e.Fired() != 0 {
		t.Fatalf("Fired() = %d, want 0", e.Fired())
	}
}

func TestSchedulingInPastClampsToNow(t *testing.T) {
	var e Engine
	var at time.Duration = -1
	e.At(10, 0, func(now time.Duration) {
		e.At(3, 0, func(inner time.Duration) { at = inner })
	})
	e.Run()
	if at != 10 {
		t.Fatalf("past event fired at %v, want clamped to 10", at)
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	var e Engine
	var at time.Duration
	e.At(4, 0, func(now time.Duration) {
		e.After(6, 0, func(inner time.Duration) { at = inner })
	})
	e.Run()
	if at != 10 {
		t.Fatalf("After fired at %v, want 10", at)
	}
}

func TestRunUntilStopsAtHorizon(t *testing.T) {
	var e Engine
	var fired []time.Duration
	for _, d := range []time.Duration{1, 5, 9, 11, 20} {
		e.At(d, 0, func(now time.Duration) { fired = append(fired, now) })
	}
	e.RunUntil(10)
	if len(fired) != 3 {
		t.Fatalf("fired %d events before horizon, want 3 (%v)", len(fired), fired)
	}
	if e.Now() != 10 {
		t.Fatalf("Now() = %v, want 10", e.Now())
	}
	if e.Len() != 2 {
		t.Fatalf("Len() = %d pending, want 2", e.Len())
	}
	e.RunUntil(25)
	if len(fired) != 5 {
		t.Fatalf("fired %d events total, want 5", len(fired))
	}
}

func TestRunUntilAdvancesClockWithEmptyQueue(t *testing.T) {
	var e Engine
	e.RunUntil(42)
	if e.Now() != 42 {
		t.Fatalf("Now() = %v, want 42", e.Now())
	}
}

func TestEventsScheduledDuringRunFire(t *testing.T) {
	var e Engine
	count := 0
	var chain func(now time.Duration)
	chain = func(now time.Duration) {
		count++
		if count < 100 {
			e.After(1, 0, chain)
		}
	}
	e.At(0, 0, chain)
	e.Run()
	if count != 100 {
		t.Fatalf("chain fired %d times, want 100", count)
	}
	if e.Now() != 99 {
		t.Fatalf("Now() = %v, want 99", e.Now())
	}
}

func TestFiredCounts(t *testing.T) {
	var e Engine
	for i := 0; i < 5; i++ {
		e.At(time.Duration(i), 0, func(time.Duration) {})
	}
	e.Run()
	if e.Fired() != 5 {
		t.Fatalf("Fired() = %d, want 5", e.Fired())
	}
}

// Property: events always fire in nondecreasing (Time, Priority) order no
// matter the insertion order.
func TestPropertyFireOrderSorted(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var e Engine
		type key struct {
			t time.Duration
			p int
		}
		var fired []key
		count := int(n%64) + 1
		for i := 0; i < count; i++ {
			tm := time.Duration(rng.Intn(50))
			pr := rng.Intn(5)
			e.At(tm, pr, func(now time.Duration) {
				fired = append(fired, key{tm, pr})
			})
		}
		e.Run()
		if len(fired) != count {
			return false
		}
		return sort.SliceIsSorted(fired, func(i, j int) bool {
			if fired[i].t != fired[j].t {
				return fired[i].t < fired[j].t
			}
			return fired[i].p < fired[j].p
		})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: canceling a random subset fires exactly the complement.
func TestPropertyCancelComplement(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var e Engine
		count := int(n%32) + 1
		events := make([]*Event, count)
		firedCount := 0
		for i := 0; i < count; i++ {
			events[i] = e.At(time.Duration(rng.Intn(20)), 0, func(time.Duration) { firedCount++ })
		}
		canceled := 0
		for _, ev := range events {
			if rng.Intn(2) == 0 {
				ev.Cancel()
				canceled++
			}
		}
		e.Run()
		return firedCount == count-canceled
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRescheduleMovesEvent(t *testing.T) {
	var e Engine
	var at time.Duration = -1
	ev := e.At(5, 0, func(now time.Duration) { at = now })
	if !e.Reschedule(ev, 12) {
		t.Fatal("Reschedule on pending event returned false")
	}
	e.Run()
	if at != 12 {
		t.Fatalf("rescheduled event fired at %v, want 12", at)
	}
}

func TestRescheduleRevivesCanceledEvent(t *testing.T) {
	var e Engine
	fired := 0
	ev := e.At(5, 0, func(time.Duration) { fired++ })
	ev.Cancel()
	if !e.Reschedule(ev, 7) {
		t.Fatal("Reschedule on canceled-but-unpopped event returned false")
	}
	if ev.Canceled() {
		t.Fatal("Reschedule did not clear the canceled mark")
	}
	e.Run()
	if fired != 1 {
		t.Fatalf("revived event fired %d times, want 1", fired)
	}
}

func TestRescheduleRejectsFiredEvent(t *testing.T) {
	var e Engine
	ev := e.At(1, 0, func(time.Duration) {})
	e.Run()
	if e.Reschedule(ev, 5) {
		t.Fatal("Reschedule on already-fired event returned true")
	}
	if e.Len() != 0 {
		t.Fatalf("Len() = %d after rejected reschedule, want 0", e.Len())
	}
}

func TestRescheduleRejectsPoppedCanceledEvent(t *testing.T) {
	var e Engine
	ev := e.At(1, 0, func(time.Duration) {})
	ev.Cancel()
	e.At(2, 0, func(time.Duration) {})
	e.Run() // pops and discards the canceled event
	if e.Reschedule(ev, 5) {
		t.Fatal("Reschedule on discarded event returned true")
	}
}

func TestRescheduleClampsToNow(t *testing.T) {
	var e Engine
	var at time.Duration = -1
	var ev *Event
	ev = e.At(20, 0, func(now time.Duration) { at = now })
	e.At(10, 0, func(now time.Duration) {
		e.Reschedule(ev, 3) // in the past: clamps to now
	})
	e.Run()
	if at != 10 {
		t.Fatalf("past-rescheduled event fired at %v, want clamped to 10", at)
	}
}

// Reschedule assigns a fresh sequence number, so a rescheduled event
// tie-breaks exactly like Cancel followed by a new At would: later than
// everything scheduled before the reschedule, earlier than everything after.
func TestRescheduleTieBreaksLikeFreshEvent(t *testing.T) {
	var e Engine
	var order []string
	evA := e.At(1, 0, func(time.Duration) { order = append(order, "a") })
	e.At(10, 0, func(time.Duration) { order = append(order, "b") })
	e.Reschedule(evA, 10)
	e.At(10, 0, func(time.Duration) { order = append(order, "c") })
	e.Run()
	want := []string{"b", "a", "c"}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// Property: a random mix of cancels and reschedules fires each live event
// exactly once, at its final time.
func TestPropertyRescheduleFiresOnceAtFinalTime(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var e Engine
		count := int(n%24) + 1
		fired := make([]int, count)
		finalAt := make([]time.Duration, count)
		firedAt := make([]time.Duration, count)
		events := make([]*Event, count)
		for i := 0; i < count; i++ {
			i := i
			finalAt[i] = time.Duration(rng.Intn(30))
			events[i] = e.At(finalAt[i], 0, func(now time.Duration) {
				fired[i]++
				firedAt[i] = now
			})
		}
		live := make([]bool, count)
		for i := range live {
			live[i] = true
		}
		for op := 0; op < count*2; op++ {
			i := rng.Intn(count)
			switch rng.Intn(3) {
			case 0:
				events[i].Cancel()
				live[i] = false
			case 1:
				to := time.Duration(rng.Intn(30))
				if e.Reschedule(events[i], to) {
					finalAt[i] = to
					live[i] = true
				}
			}
		}
		e.Run()
		for i := range fired {
			if !live[i] && fired[i] != 0 {
				return false
			}
			if live[i] && (fired[i] != 1 || firedAt[i] != finalAt[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEngineScheduleAndRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var e Engine
		for j := 0; j < 1000; j++ {
			e.At(time.Duration(j%97), j%3, func(time.Duration) {})
		}
		e.Run()
	}
}

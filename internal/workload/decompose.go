package workload

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// This file implements the third future-work direction of §10: supporting
// tenants whose workloads mix several statistical characteristics. The
// paper's suggested approach — "decompose the workloads and then distribute
// the workloads to separate tenants" — is realized by clustering a tenant's
// jobs by size and rewriting the trace so each cluster becomes its own
// sub-queue. Tempo can then attach distinct SLOs and RM parameters to each
// sub-queue (the hierarchical-tenant workaround the paper mentions for
// fine-grained SLOs).

// Decomposition describes how one tenant's jobs were split.
type Decomposition struct {
	// Tenant is the original queue name.
	Tenant string
	// SubTenants are the new queue names, ordered by increasing job size.
	SubTenants []string
	// Boundaries are the log10(total work seconds) cluster centers.
	Centers []float64
	// Assignment maps job ID to sub-tenant index.
	Assignment map[string]int
}

// SubTenantName returns the canonical name of the i-th sub-queue of a
// tenant (e.g. "DEV/size0").
func SubTenantName(tenant string, i int) string {
	return fmt.Sprintf("%s/size%d", tenant, i)
}

// Decompose clusters the tenant's jobs into k size classes (1-D k-means on
// log total work, deterministic quantile initialization) and returns a new
// trace in which each class is submitted to its own sub-queue, together
// with the decomposition metadata. Other tenants pass through unchanged.
func Decompose(trace *Trace, tenant string, k int) (*Trace, *Decomposition, error) {
	if k < 2 {
		return nil, nil, fmt.Errorf("workload: decompose needs k >= 2, got %d", k)
	}
	jobs := trace.ByTenant(tenant)
	if len(jobs) < k {
		return nil, nil, fmt.Errorf("workload: tenant %q has %d jobs, need at least k=%d", tenant, len(jobs), k)
	}
	sizes := make([]float64, len(jobs))
	for i := range jobs {
		w := jobs[i].TotalWork().Seconds()
		if w < 1e-3 {
			w = 1e-3
		}
		sizes[i] = math.Log10(w)
	}
	centers, assign := kmeans1D(sizes, k)

	dec := &Decomposition{
		Tenant:     tenant,
		Centers:    centers,
		Assignment: make(map[string]int, len(jobs)),
	}
	for i := 0; i < k; i++ {
		dec.SubTenants = append(dec.SubTenants, SubTenantName(tenant, i))
	}
	for i := range jobs {
		dec.Assignment[jobs[i].ID] = assign[i]
	}

	out := &Trace{Name: trace.Name + "+decomposed", Horizon: trace.Horizon}
	out.Jobs = make([]JobSpec, len(trace.Jobs))
	for i := range trace.Jobs {
		j := trace.Jobs[i]
		if j.Tenant == tenant {
			j.Tenant = dec.SubTenants[dec.Assignment[j.ID]]
		}
		out.Jobs[i] = j
	}
	out.Sort()
	return out, dec, nil
}

// Recompose maps a sub-queue schedule quantity back to original tenants:
// given a tenant name possibly produced by SubTenantName, it returns the
// original tenant. Names without the separator pass through.
func Recompose(name string) string {
	for i := 0; i < len(name); i++ {
		if name[i] == '/' {
			return name[:i]
		}
	}
	return name
}

// kmeans1D is deterministic Lloyd's algorithm in one dimension with
// quantile-initialized centers. It returns the sorted centers and each
// point's cluster index.
func kmeans1D(points []float64, k int) ([]float64, []int) {
	sorted := append([]float64(nil), points...)
	sort.Float64s(sorted)
	lo, hi := sorted[0], sorted[len(sorted)-1]
	centers := make([]float64, k)
	for i := 0; i < k; i++ {
		// Evenly spread initial centers over the value range; quantile
		// initialization can collapse several centers onto one value when
		// a cluster holds most of the mass.
		centers[i] = lo + (float64(i)+0.5)/float64(k)*(hi-lo)
	}
	assign := make([]int, len(points))
	for iter := 0; iter < 100; iter++ {
		changed := iter == 0 // the all-zero initial assignment is not a fixpoint
		for i, p := range points {
			best, bestD := assign[i], math.Abs(p-centers[assign[i]])
			for c, center := range centers {
				if d := math.Abs(p - center); d < bestD-1e-12 {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		sums := make([]float64, k)
		counts := make([]int, k)
		for i, p := range points {
			sums[assign[i]] += p
			counts[assign[i]]++
		}
		for c := 0; c < k; c++ {
			if counts[c] > 0 {
				centers[c] = sums[c] / float64(counts[c])
			}
		}
		if !changed {
			break
		}
	}
	// Relabel clusters so indices increase with center value.
	order := make([]int, k)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return centers[order[a]] < centers[order[b]] })
	rank := make([]int, k)
	for newIdx, old := range order {
		rank[old] = newIdx
	}
	outCenters := make([]float64, k)
	for old, r := range rank {
		outCenters[r] = centers[old]
	}
	for i := range assign {
		assign[i] = rank[assign[i]]
	}
	return outCenters, assign
}

// DecomposeProfiles derives one statistical profile per sub-queue from a
// decomposed trace, ready for the What-if Model. The horizon is taken from
// the trace.
func DecomposeProfiles(decomposed *Trace, dec *Decomposition) ([]TenantProfile, error) {
	var out []TenantProfile
	for _, sub := range dec.SubTenants {
		if len(decomposed.ByTenant(sub)) == 0 {
			continue // a size class may be empty after re-windowing
		}
		p, err := Fit(decomposed, sub)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("workload: decomposition of %q produced no populated sub-queues", dec.Tenant)
	}
	return out, nil
}

// WaitTimes returns per-job queueing delays (first task start − submit) of
// a tenant, a helper shared by the characterization figures and the
// decomposition diagnostics.
func WaitTimes(jobSubmit map[string]time.Duration, firstStart map[string]time.Duration) []time.Duration {
	var out []time.Duration
	for id, s := range jobSubmit {
		if st, ok := firstStart[id]; ok && st >= s {
			out = append(out, st-s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

module tempo

go 1.22

package pald

import (
	"fmt"
	"math/rand"
)

// Durable optimizer state. The serving layer snapshots hosted clusters so
// a crashed tempod recovers them byte-identically (internal/store); that
// bar requires the optimizer's whole trajectory-relevant state to round-
// trip exactly: the retained sample cloud AND the position of the
// exploration RNG. math/rand sources cannot be serialized, but they can be
// counted: every consumer entry point (Int63, Uint64) advances the
// underlying generator by exactly one step, so "seed + number of draws"
// identifies the RNG state, and Restore re-derives it by burning the same
// number of draws on a fresh source with the same seed.

// countingSource wraps the optimizer's seeded source and counts state
// advances. Both Source interfaces are forwarded one-to-one, so the value
// stream is bit-identical to the unwrapped source and the count is exactly
// the number of generator steps taken.
type countingSource struct {
	src   rand.Source
	src64 rand.Source64
	draws uint64
}

// newCountingSource wraps rand.NewSource(seed). The returned source also
// implements rand.Source64 (as rand.NewSource's does), so rand.Rand uses
// the fast Uint64 path exactly as before wrapping.
func newCountingSource(seed int64) *countingSource {
	src := rand.NewSource(seed)
	src64, ok := src.(rand.Source64)
	if !ok {
		// math/rand's NewSource has returned a Source64 since Go 1.8 and the
		// package is frozen; this is unreachable on any supported toolchain.
		panic("pald: rand.NewSource source does not implement Source64")
	}
	return &countingSource{src: src, src64: src64}
}

func (c *countingSource) Int63() int64 {
	c.draws++
	return c.src.Int63()
}

func (c *countingSource) Uint64() uint64 {
	c.draws++
	return c.src64.Uint64()
}

func (c *countingSource) Seed(seed int64) {
	c.src.Seed(seed)
	c.draws = 0
}

// State is the serializable snapshot of an Optimizer: the retained sample
// history plus the exploration RNG position. Together with the
// construction parameters (dimension, targets, Options — all derivable
// from the scenario spec) it reproduces the optimizer exactly: a restored
// optimizer emits the same proposal sequence as the original would have.
type State struct {
	// Draws is how many steps the exploration RNG has advanced since it
	// was seeded.
	Draws uint64 `json:"draws"`
	// Xs and Fs are the retained (configuration, QS vector) observations,
	// oldest first.
	Xs [][]float64 `json:"xs"`
	Fs [][]float64 `json:"fs"`
}

// State captures the optimizer's durable state. The result shares no
// memory with the optimizer.
func (p *Optimizer) State() *State {
	st := &State{
		Draws: p.counter.draws,
		Xs:    make([][]float64, len(p.xs)),
		Fs:    make([][]float64, len(p.fs)),
	}
	for i := range p.xs {
		st.Xs[i] = append([]float64(nil), p.xs[i]...)
	}
	for i := range p.fs {
		st.Fs[i] = append([]float64(nil), p.fs[i]...)
	}
	return st
}

// Restore rewinds the optimizer to a captured state: the sample history is
// replaced and the exploration RNG is re-derived from the configured seed
// by replaying the recorded number of draws. The optimizer must have been
// constructed with the same dimension, objective count, and Options (in
// particular the same Seed) as the one that produced the state.
func (p *Optimizer) Restore(st *State) error {
	if st == nil {
		return fmt.Errorf("pald: nil state")
	}
	if len(st.Xs) != len(st.Fs) {
		return fmt.Errorf("pald: state has %d configurations but %d QS vectors", len(st.Xs), len(st.Fs))
	}
	for i := range st.Xs {
		if len(st.Xs[i]) != p.dim {
			return fmt.Errorf("pald: state observation %d has dim %d, optimizer has %d", i, len(st.Xs[i]), p.dim)
		}
		if len(st.Fs[i]) != len(p.targets) {
			return fmt.Errorf("pald: state QS vector %d has %d objectives, optimizer has %d", i, len(st.Fs[i]), len(p.targets))
		}
	}
	counter := newCountingSource(p.opts.Seed)
	for i := uint64(0); i < st.Draws; i++ {
		// Every entry point advances the source exactly once, so burning
		// with Int63 restores the state no matter which mix of calls
		// produced the count.
		counter.Int63()
	}
	p.counter = counter
	p.rng = rand.New(counter)
	p.xs = p.xs[:0]
	p.fs = p.fs[:0]
	for i := range st.Xs {
		p.xs = append(p.xs, append([]float64(nil), st.Xs[i]...))
		p.fs = append(p.fs, append([]float64(nil), st.Fs[i]...))
	}
	return nil
}

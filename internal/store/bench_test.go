package store

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"tempo/internal/benchrec"
	"tempo/internal/cluster"
	"tempo/internal/scenario"
)

// TestMain persists the durability benchmarks' headline metrics when
// TEMPO_BENCH_OUT names a file — the BENCH_7.json record CI regenerates
// and gates with cmd/benchdiff (see EXPERIMENTS.md, "Reading
// BENCH_7.json").
func TestMain(m *testing.M) {
	code := m.Run()
	if path := os.Getenv("TEMPO_BENCH_OUT"); path != "" && code == 0 {
		if err := benchrec.Write(path); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", path, err)
			code = 1
		}
	}
	os.Exit(code)
}

// benchFixture is the shared benchmark substrate: the store-small run's
// observed schedules and their encoded tick payloads.
type benchFixture struct {
	spec      *scenario.Spec
	schedules []*cluster.Schedule
	payloads  [][]byte
	err       error
}

var benchOnce struct {
	sync.Once
	f benchFixture
}

func benchSchedules(b *testing.B) *benchFixture {
	b.Helper()
	benchOnce.Do(func() {
		f := &benchOnce.f
		spec, err := scenario.Load(strings.NewReader(storeSpecJSON))
		if err != nil {
			f.err = err
			return
		}
		f.spec = spec
		rt, err := scenario.Build(spec, scenario.Options{Parallelism: 1})
		if err != nil {
			f.err = err
			return
		}
		for i := 0; i < spec.Iterations; i++ {
			if _, err := rt.Step(); err != nil {
				f.err = err
				return
			}
			sched := rt.ObservedSchedule(i)
			f.schedules = append(f.schedules, sched)
			f.payloads = append(f.payloads, EncodeTick(nil, i, sched))
		}
	})
	if benchOnce.f.err != nil {
		b.Fatal(benchOnce.f.err)
	}
	return &benchOnce.f
}

// BenchmarkWALAppend measures group-committed append throughput: one
// committed tick's schedule encoded and framed per op, fsync batched at
// the default byte threshold.
func BenchmarkWALAppend(b *testing.B) {
	f := benchSchedules(b)
	path := filepath.Join(b.TempDir(), "wal.log")
	w, _, err := OpenWAL(path, WALOptions{SyncBytes: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	var enc []byte
	var bytesAppended int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tick := i % len(f.schedules)
		enc = EncodeTick(enc[:0], tick, f.schedules[tick])
		// The WAL itself does not care about tick ordering; ClusterStore
		// enforces that above it. Appending a cycle keeps the file growing
		// with realistic record sizes.
		if err := w.Append(enc); err != nil {
			b.Fatal(err)
		}
		bytesAppended += int64(len(enc)) + walHeaderSize
	}
	b.StopTimer()
	nsPerOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	mbPerSec := 0.0
	if b.Elapsed() > 0 {
		mbPerSec = float64(bytesAppended) / b.Elapsed().Seconds() / (1 << 20)
	}
	b.ReportMetric(mbPerSec, "MB/s")
	// bytes_per_tick is computed over one full cycle of the fixture's
	// schedules, not over b.N, so it is a deterministic property of the
	// codec + seeded run (benchdiff gates it exactly): codec drift shows
	// up as a byte-count change, whatever b.N the run used.
	var cycleBytes int64
	for _, p := range f.payloads {
		cycleBytes += int64(len(p)) + walHeaderSize
	}
	benchrec.Record("WALAppend", map[string]float64{
		"append_ns":      nsPerOp,
		"mb_per_sec":     mbPerSec,
		"bytes_per_tick": float64(cycleBytes) / float64(len(f.payloads)),
	})
}

// BenchmarkColdRecovery measures the full crash-recovery path: open the
// data directory, scan + decode the WAL, load the snapshot, and resume
// the runtime to the recovered tick — what tempod pays per cluster at
// startup.
func BenchmarkColdRecovery(b *testing.B) {
	f := benchSchedules(b)
	dir := b.TempDir()
	{
		s, err := Open(dir, Options{})
		if err != nil {
			b.Fatal(err)
		}
		cs, err := s.Create("bench", f.spec)
		if err != nil {
			b.Fatal(err)
		}
		rt, err := scenario.Build(f.spec, scenario.Options{Parallelism: 1})
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < f.spec.Iterations; i++ {
			if i == f.spec.Iterations/2 {
				snap, err := rt.Snapshot()
				if err != nil {
					b.Fatal(err)
				}
				if err := cs.WriteSnapshot(snap); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := rt.Step(); err != nil {
				b.Fatal(err)
			}
			if err := cs.AppendTick(i, rt.ObservedSchedule(i)); err != nil {
				b.Fatal(err)
			}
		}
		if err := s.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := Open(dir, Options{})
		if err != nil {
			b.Fatal(err)
		}
		cs, err := s.Get("bench")
		if err != nil {
			b.Fatal(err)
		}
		schedules, err := cs.Schedules()
		if err != nil {
			b.Fatal(err)
		}
		snap, err := cs.LoadSnapshot()
		if err != nil {
			b.Fatal(err)
		}
		rt, err := scenario.Resume(cs.Spec(), scenario.Options{Parallelism: 1}, snap, schedules)
		if err != nil {
			b.Fatal(err)
		}
		if rt.StepsDone() != f.spec.Iterations {
			b.Fatalf("recovered to tick %d", rt.StepsDone())
		}
		s.Close()
	}
	b.StopTimer()
	benchrec.Record("ColdRecovery", map[string]float64{
		"recovery_ns": float64(b.Elapsed().Nanoseconds()) / float64(b.N),
		// "ticks" is an exact metric for benchdiff: the recovered tick
		// count is a deterministic output of the seeded fixture run.
		"ticks": float64(f.spec.Iterations),
	})
}

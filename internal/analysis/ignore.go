package analysis

import (
	"go/token"
	"strings"
)

// An Ignore is one parsed "//tempolint:ignore <analyzer> <reason>"
// comment.
type Ignore struct {
	Pos      token.Position
	Analyzer string
	Reason   string
	// used is set when the ignore suppressed at least one diagnostic.
	used bool
}

const ignorePrefix = "//tempolint:ignore"

// collectIgnores scans a pass's files for ignore comments. Malformed
// ignores (no analyzer, or no reason) are reported as diagnostics of
// the pseudo-analyzer "tempolint" so they cannot silently rot.
func collectIgnores(p *Pass) []*Ignore {
	var out []*Ignore
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, ignorePrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, ignorePrefix))
				name, reason, _ := strings.Cut(rest, " ")
				reason = strings.TrimSpace(reason)
				pos := p.Fset.Position(c.Pos())
				if name == "" || reason == "" {
					*p.diags = append(*p.diags, Diagnostic{
						Pos:      pos,
						Analyzer: "tempolint",
						Message:  "malformed tempolint:ignore: want \"//tempolint:ignore <analyzer> <reason>\"",
					})
					continue
				}
				out = append(out, &Ignore{Pos: pos, Analyzer: name, Reason: reason})
			}
		}
	}
	return out
}

// suppress marks diagnostics matched by an ignore: same file, same
// analyzer, and the ignore sits on the flagged line or the line
// directly above it.
func suppress(diags []Diagnostic, ignores []*Ignore) {
	for i := range diags {
		d := &diags[i]
		if d.Analyzer == "tempolint" {
			continue
		}
		for _, ig := range ignores {
			if ig.Analyzer != d.Analyzer || ig.Pos.Filename != d.Pos.Filename {
				continue
			}
			if ig.Pos.Line == d.Pos.Line || ig.Pos.Line == d.Pos.Line-1 {
				d.Suppressed = true
				d.Reason = ig.Reason
				ig.used = true
				break
			}
		}
	}
}

package allocdiscipline_test

import (
	"testing"

	"tempo/internal/analysis"
	"tempo/internal/analysis/allocdiscipline"
	"tempo/internal/analysis/analysistest"
)

func TestAllocDiscipline(t *testing.T) {
	suite := []*analysis.Analyzer{allocdiscipline.Analyzer}
	diags := analysistest.Run(t, "testdata", suite, "hot")
	if len(diags) == 0 {
		t.Fatalf("fixture produced no diagnostics; the positive cases are not being checked")
	}
}

package exp

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"tempo/internal/cluster"
	"tempo/internal/metrics"
	"tempo/internal/workload"
)

// Table1Row characterizes one tenant's generated workload, matching the
// qualitative Table 1 of the paper with measured quantities.
type Table1Row struct {
	Tenant         string
	Characteristic string
	Jobs           int
	MeanMaps       float64
	MeanReduces    float64
	MeanMapSec     float64
	MeanReduceSec  float64
	Deadlines      bool
}

// Table1Result is the tenant-characteristics table.
type Table1Result struct {
	Horizon time.Duration
	Rows    []Table1Row
}

// Table1 generates the Company ABC mix and summarizes each tenant, the
// measured counterpart of the paper's Table 1.
func Table1(seed int64) (*Table1Result, error) {
	horizon := 24 * time.Hour
	tr, err := ABCTrace(horizon, seed)
	if err != nil {
		return nil, err
	}
	char := map[string]string{
		"BI":  "I/O-intensive SQL queries",
		"DEV": "Mixture of different types of jobs",
		"APP": "Small, lightweight jobs",
		"STR": "Hadoop streaming jobs (map-only)",
		"MV":  "Long-running, CPU-intensive",
		"ETL": "I/O-intensive, periodic but bursty",
	}
	res := &Table1Result{Horizon: horizon}
	for _, tenant := range tr.Tenants() {
		jobs := tr.ByTenant(tenant)
		var maps, reds, mapSec, redSec float64
		deadlines := false
		for i := range jobs {
			for _, st := range jobs[i].Stages {
				for _, task := range st.Tasks {
					if task.Kind == workload.Map {
						maps++
						mapSec += task.Duration.Seconds()
					} else {
						reds++
						redSec += task.Duration.Seconds()
					}
				}
			}
			if jobs[i].Deadline > 0 {
				deadlines = true
			}
		}
		row := Table1Row{
			Tenant:         tenant,
			Characteristic: char[tenant],
			Jobs:           len(jobs),
			Deadlines:      deadlines,
		}
		if n := float64(len(jobs)); n > 0 {
			row.MeanMaps = maps / n
			row.MeanReduces = reds / n
		}
		if maps > 0 {
			row.MeanMapSec = mapSec / maps
		}
		if reds > 0 {
			row.MeanReduceSec = redSec / reds
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render prints the table.
func (r *Table1Result) Render() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Tenant,
			row.Characteristic,
			fmt.Sprintf("%d", row.Jobs),
			fmt.Sprintf("%.1f", row.MeanMaps),
			fmt.Sprintf("%.1f", row.MeanReduces),
			fmt.Sprintf("%.0fs", row.MeanMapSec),
			fmt.Sprintf("%.0fs", row.MeanReduceSec),
			fmt.Sprintf("%v", row.Deadlines),
		})
	}
	return "Table 1: tenant characteristics (generated, " + r.Horizon.String() + ")\n" +
		table([]string{"tenant", "characteristic", "jobs", "maps/job", "reds/job", "map dur", "red dur", "deadlines"}, rows)
}

// Table2Row is one tenant's schedule-prediction error.
type Table2Row struct {
	Tenant string
	RAE    float64
	RSE    float64
	Jobs   int
}

// Table2Result is the prediction-error experiment (§8.1).
type Table2Result struct {
	Rows          []Table2Row
	TotalTasks    int
	PredictSecs   float64
	TasksPerSec   float64
	WorstTenant   string
	WorstRAE      float64
	PreemptedJobs int
}

// Table2 validates the Schedule Predictor against a noisy emulation of the
// production cluster, reproducing the two error sources of §8.1: (1) the
// cluster itself is noisy — failures, user kills, duration jitter,
// preemptions — and (2) the job traces feeding the predictor are
// inaccurate, because task durations are estimated from history rather
// than known ("for killed and failed tasks, the task start time and finish
// time are not recorded accurately"). The experiment replays the Company
// ABC mix under the expert RM configuration with the full noise model as
// ground truth, predicts the schedule from a duration-perturbed copy of
// the trace, and reports per-tenant RAE/RSE of predicted job finish times.
func Table2(seed int64) (*Table2Result, error) {
	horizon := 48 * time.Hour
	tr, err := ABCTrace(horizon, seed)
	if err != nil {
		return nil, err
	}
	cfg := ExpertABCConfig(ABCCapacity)
	observed, err := cluster.Run(tr, cfg, cluster.Options{
		Noise: &cluster.NoiseModel{
			DurationSigma: 0.15,
			FailureProb:   0.02,
			JobKillProb:   0.01,
			Seed:          seed + 1,
		},
		Horizon: horizon + 12*time.Hour,
	})
	if err != nil {
		return nil, err
	}
	// The predictor's input: the same jobs with durations as a DBA's
	// history-based estimates would have them — each task's duration
	// perturbed by a mean-preserving lognormal estimation error.
	estimated := perturbDurations(tr, 0.08, seed+2)
	start := time.Now()
	predicted, err := cluster.Predict(estimated, cfg)
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start).Seconds()

	// Compare per-job completion times (finish − submit). Comparing raw
	// absolute finish timestamps would make the denominator the spread of
	// submission times across the whole 48-hour trace and trivialize the
	// metric; the spread of completion durations is the meaningful
	// yardstick for "how well did we predict when this job finishes".
	predFinish := make(map[string]time.Duration, len(predicted.Jobs))
	for i := range predicted.Jobs {
		j := &predicted.Jobs[i]
		if j.Completed {
			predFinish[j.ID] = j.Finish - j.Submit
		}
	}
	perTenantPred := map[string][]float64{}
	perTenantObs := map[string][]float64{}
	for i := range observed.Jobs {
		j := &observed.Jobs[i]
		if !j.Completed {
			continue
		}
		p, ok := predFinish[j.ID]
		if !ok {
			continue
		}
		perTenantPred[j.Tenant] = append(perTenantPred[j.Tenant], p.Seconds())
		perTenantObs[j.Tenant] = append(perTenantObs[j.Tenant], (j.Finish - j.Submit).Seconds())
	}
	res := &Table2Result{
		TotalTasks:  tr.TaskCount(),
		PredictSecs: elapsed,
	}
	if elapsed > 0 {
		res.TasksPerSec = float64(tr.TaskCount()) / elapsed
	}
	for _, tenant := range sortedKeys(perTenantObs) {
		rae, err := metrics.RAE(perTenantPred[tenant], perTenantObs[tenant])
		if err != nil {
			return nil, err
		}
		rse, err := metrics.RSE(perTenantPred[tenant], perTenantObs[tenant])
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Table2Row{
			Tenant: tenant, RAE: rae, RSE: rse, Jobs: len(perTenantObs[tenant]),
		})
		if rae > res.WorstRAE {
			res.WorstRAE, res.WorstTenant = rae, tenant
		}
	}
	res.PreemptedJobs = observed.PreemptionCount("", nil)
	return res, nil
}

// perturbDurations returns a copy of the trace with every task duration
// multiplied by a mean-preserving lognormal factor exp(σZ − σ²/2) —
// modelling history-based duration estimates.
func perturbDurations(tr *workload.Trace, sigma float64, seed int64) *workload.Trace {
	rng := rand.New(rand.NewSource(seed))
	out := &workload.Trace{Name: tr.Name + "-estimated", Horizon: tr.Horizon}
	out.Jobs = make([]workload.JobSpec, len(tr.Jobs))
	for i := range tr.Jobs {
		j := tr.Jobs[i]
		stages := make([]workload.StageSpec, len(j.Stages))
		for si, st := range j.Stages {
			tasks := make([]workload.TaskSpec, len(st.Tasks))
			for ti, task := range st.Tasks {
				f := math.Exp(sigma*rng.NormFloat64() - sigma*sigma/2)
				d := time.Duration(float64(task.Duration) * f)
				if d < time.Millisecond {
					d = time.Millisecond
				}
				tasks[ti] = workload.TaskSpec{Kind: task.Kind, Duration: d}
			}
			stages[si] = workload.StageSpec{DependsOn: st.DependsOn, Tasks: tasks}
		}
		j.Stages = stages
		out.Jobs[i] = j
	}
	return out
}

// Render prints the table.
func (r *Table2Result) Render() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Tenant,
			fmt.Sprintf("%.4f", row.RAE),
			fmt.Sprintf("%.4f", row.RSE),
			fmt.Sprintf("%d", row.Jobs),
		})
	}
	head := fmt.Sprintf("Table 2: job finish time estimation errors (%d tasks, %.0f tasks/sec predicted)\n",
		r.TotalTasks, r.TasksPerSec)
	return head + table([]string{"tenant", "RAE", "RSE", "jobs"}, rows)
}

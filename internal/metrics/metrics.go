// Package metrics provides the statistical machinery of the evaluation:
// the relative absolute/squared prediction errors of §8.1, empirical CDFs
// for the workload characterization figures, and moving averages for the
// "instant job response time" series of Figure 10.
package metrics

import (
	"errors"
	"math"
	"sort"
	"time"
)

// ErrMismatch is returned when paired series have different lengths.
var ErrMismatch = errors.New("metrics: series length mismatch")

// RAE computes the relative absolute error between predictions p and
// observations l (§8.1):
//
//	RAE = Σ|p_j − l_j| / Σ|l_j − mean(l)|
func RAE(pred, obs []float64) (float64, error) {
	if len(pred) != len(obs) {
		return 0, ErrMismatch
	}
	if len(obs) == 0 {
		return 0, errors.New("metrics: empty series")
	}
	mean := Mean(obs)
	var num, den float64
	for i := range pred {
		num += math.Abs(pred[i] - obs[i])
		den += math.Abs(obs[i] - mean)
	}
	if den == 0 {
		if num == 0 {
			return 0, nil
		}
		return math.Inf(1), nil
	}
	return num / den, nil
}

// RSE computes the relative squared error between predictions and
// observations (§8.1):
//
//	RSE = sqrt( Σ(p_j − l_j)² / Σ(l_j − mean(l))² )
func RSE(pred, obs []float64) (float64, error) {
	if len(pred) != len(obs) {
		return 0, ErrMismatch
	}
	if len(obs) == 0 {
		return 0, errors.New("metrics: empty series")
	}
	mean := Mean(obs)
	var num, den float64
	for i := range pred {
		num += (pred[i] - obs[i]) * (pred[i] - obs[i])
		den += (obs[i] - mean) * (obs[i] - mean)
	}
	if den == 0 {
		if num == 0 {
			return 0, nil
		}
		return math.Inf(1), nil
	}
	return math.Sqrt(num / den), nil
}

// Mean returns the arithmetic mean, 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Stddev returns the population standard deviation.
func Stddev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		s += (x - m) * (x - m)
	}
	return math.Sqrt(s / float64(len(xs)))
}

// CDF is an empirical cumulative distribution function.
type CDF struct {
	sorted []float64
}

// NewCDF builds a CDF from samples (which it copies and sorts).
func NewCDF(samples []float64) *CDF {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// Len returns the number of samples.
func (c *CDF) Len() int { return len(c.sorted) }

// At returns P(X <= x).
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	idx := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(idx) / float64(len(c.sorted))
}

// Quantile returns the q-th quantile, q in [0, 1].
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	idx := q * float64(len(c.sorted)-1)
	lo := int(math.Floor(idx))
	hi := int(math.Ceil(idx))
	if lo == hi {
		return c.sorted[lo]
	}
	frac := idx - float64(lo)
	return c.sorted[lo]*(1-frac) + c.sorted[hi]*frac
}

// Points returns n evenly spaced (value, probability) pairs suitable for
// plotting the CDF, as in Figures 5 and 8.
func (c *CDF) Points(n int) []Point {
	if n < 2 || len(c.sorted) == 0 {
		return nil
	}
	out := make([]Point, n)
	for i := 0; i < n; i++ {
		q := float64(i) / float64(n-1)
		out[i] = Point{X: c.Quantile(q), Y: q}
	}
	return out
}

// Point is an (x, y) pair of a plotted series.
type Point struct {
	X, Y float64
}

// TimePoint is a time-stamped sample of a time series.
type TimePoint struct {
	At    time.Duration
	Value float64
}

// MovingAverage computes the trailing-window moving average of a
// time-stamped series — the "instant job response time ... computed using
// the moving average of a 30-min window" of Figure 10. Input must be
// sorted by time; output has one point per input point.
func MovingAverage(series []TimePoint, window time.Duration) []TimePoint {
	if window <= 0 {
		return append([]TimePoint(nil), series...)
	}
	out := make([]TimePoint, len(series))
	var sum float64
	start := 0
	for i, p := range series {
		sum += p.Value
		for series[start].At < p.At-window {
			sum -= series[start].Value
			start++
		}
		out[i] = TimePoint{At: p.At, Value: sum / float64(i-start+1)}
	}
	return out
}

// Downsample reduces a series to at most n points by averaging buckets of
// equal time width; used to render long timelines compactly.
func Downsample(series []TimePoint, n int) []TimePoint {
	if n <= 0 || len(series) <= n {
		return append([]TimePoint(nil), series...)
	}
	lo := series[0].At
	hi := series[len(series)-1].At
	span := hi - lo
	if span <= 0 {
		return []TimePoint{series[0]}
	}
	bucketW := span / time.Duration(n)
	if bucketW <= 0 {
		bucketW = 1
	}
	var out []TimePoint
	i := 0
	for b := 0; b < n && i < len(series); b++ {
		end := lo + time.Duration(b+1)*bucketW
		var sum float64
		var cnt int
		var last time.Duration
		for i < len(series) && (series[i].At < end || b == n-1) {
			sum += series[i].Value
			last = series[i].At
			cnt++
			i++
		}
		if cnt > 0 {
			out = append(out, TimePoint{At: last, Value: sum / float64(cnt)})
		}
	}
	return out
}

// Histogram counts samples into equal-width bins over [lo, hi].
type Histogram struct {
	Lo, Hi float64
	Counts []int
	Total  int
}

// NewHistogram builds a histogram with the given bin count.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins < 1 {
		bins = 1
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records one sample; out-of-range samples clamp to the edge bins.
func (h *Histogram) Add(x float64) {
	n := len(h.Counts)
	var idx int
	if h.Hi > h.Lo {
		idx = int(float64(n) * (x - h.Lo) / (h.Hi - h.Lo))
	}
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	h.Counts[idx]++
	h.Total++
}

// Fraction returns the share of samples in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.Total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.Total)
}

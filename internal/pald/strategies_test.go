package pald

import (
	"errors"
	"math"
	"testing"

	"tempo/internal/linalg"
)

func TestWeightedSumIgnoresConstraints(t *testing.T) {
	ws, err := NewWeightedSum(2, 2, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ws.Name() != "weighted-sum" {
		t.Fatal("name")
	}
	x := linalg.Vector{0.5, 0.5}
	// Feed strongly "violating" values; the baseline must still behave
	// like plain descent (no panic, proposals in bounds).
	for i := 0; i < 10; i++ {
		if err := ws.Observe(x, []float64{100, 100}); err != nil {
			t.Fatal(err)
		}
	}
	cands, err := ws.Propose(x, []float64{100, 100}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 3 {
		t.Fatalf("candidates = %d", len(cands))
	}
	for _, c := range cands {
		for _, v := range c {
			if v < 0 || v > 1 {
				t.Fatalf("candidate out of cube: %v", c)
			}
		}
	}
}

func TestRandomSearchProperties(t *testing.T) {
	rs, err := NewRandomSearch(3, 0.1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Name() != "random-search" {
		t.Fatal("name")
	}
	if err := rs.Observe(linalg.Vector{1, 2, 3}, []float64{1}); err != nil {
		t.Fatal("Observe should be a no-op")
	}
	x := linalg.Vector{0.5, 0.5, 0.5}
	cands, err := rs.Propose(x, nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 8 {
		t.Fatalf("candidates = %d", len(cands))
	}
	for _, c := range cands {
		if d := c.Dist(x); d > 0.1+1e-9 {
			t.Fatalf("candidate outside trust region: %v", d)
		}
	}
	if _, err := rs.Propose(linalg.Vector{0.5}, nil, 1); err == nil {
		t.Fatal("dim mismatch accepted")
	}
	if _, err := NewRandomSearch(0, 0.1, 1); err == nil {
		t.Fatal("zero dim accepted")
	}
	// maxStep <= 0 defaults.
	rs2, err := NewRandomSearch(2, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rs2.maxStep != 0.15 {
		t.Fatalf("default maxStep = %v", rs2.maxStep)
	}
}

func TestFiniteDifferenceExactOnQuadratic(t *testing.T) {
	anchor := linalg.Vector{0.3, 0.7}
	eval := func(x linalg.Vector) ([]float64, error) {
		d := x.Sub(anchor)
		return []float64{d.Dot(d)}, nil
	}
	fd, err := NewFiniteDifference(2, 0.01, eval)
	if err != nil {
		t.Fatal(err)
	}
	x := linalg.Vector{0.5, 0.5}
	jac, err := fd.Jacobian(x, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := x.Sub(anchor).Scale(2)
	if !jac.Row(0).Equal(want, 1e-6) {
		t.Fatalf("FD gradient = %v, want %v", jac.Row(0), want)
	}
}

func TestFiniteDifferenceValidation(t *testing.T) {
	if _, err := NewFiniteDifference(0, 0.01, func(linalg.Vector) ([]float64, error) { return nil, nil }); err == nil {
		t.Fatal("zero dim accepted")
	}
	if _, err := NewFiniteDifference(2, 0.01, nil); err == nil {
		t.Fatal("nil evaluator accepted")
	}
	fd, err := NewFiniteDifference(1, 0, func(linalg.Vector) ([]float64, error) { return []float64{0}, nil })
	if err != nil {
		t.Fatal(err)
	}
	if fd.h != 0.02 {
		t.Fatalf("default h = %v", fd.h)
	}
	boom := errors.New("boom")
	fd2, _ := NewFiniteDifference(1, 0.01, func(linalg.Vector) ([]float64, error) { return nil, boom })
	if _, err := fd2.Jacobian(linalg.Vector{0.5}, 1); !errors.Is(err, boom) {
		t.Fatalf("error not propagated: %v", err)
	}
}

func TestFiniteDifferenceClampsAtCubeEdge(t *testing.T) {
	// At x = 0 the lower probe clamps to 0; the forward span still gives a
	// finite-difference estimate.
	eval := func(x linalg.Vector) ([]float64, error) {
		return []float64{3 * x[0]}, nil
	}
	fd, _ := NewFiniteDifference(1, 0.05, eval)
	jac, err := fd.Jacobian(linalg.Vector{0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(jac.At(0, 0)-3) > 1e-9 {
		t.Fatalf("edge gradient = %v, want 3", jac.At(0, 0))
	}
}

func TestLoessJacobianValidation(t *testing.T) {
	if _, err := LoessJacobian(nil, nil, linalg.Vector{0}, 0.5); err == nil {
		t.Fatal("empty samples accepted")
	}
	xs := []linalg.Vector{{0}, {1}}
	fs := [][]float64{{1}}
	if _, err := LoessJacobian(xs, fs, linalg.Vector{0}, 0.5); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
}

func TestLoessJacobianMultiObjective(t *testing.T) {
	// f1 = 2x+y, f2 = -x+3y sampled on a grid.
	var xs []linalg.Vector
	var fs [][]float64
	for i := 0; i <= 4; i++ {
		for j := 0; j <= 4; j++ {
			x := linalg.Vector{float64(i) / 4, float64(j) / 4}
			xs = append(xs, x)
			fs = append(fs, []float64{2*x[0] + x[1], -x[0] + 3*x[1]})
		}
	}
	jac, err := LoessJacobian(xs, fs, linalg.Vector{0.5, 0.5}, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if !jac.Row(0).Equal(linalg.Vector{2, 1}, 1e-6) {
		t.Fatalf("∇f1 = %v", jac.Row(0))
	}
	if !jac.Row(1).Equal(linalg.Vector{-1, 3}, 1e-6) {
		t.Fatalf("∇f2 = %v", jac.Row(1))
	}
}

func TestSolveCFallsBackToUniform(t *testing.T) {
	opt, err := New(2, []Target{{R: 0, Constrained: true}, {}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Zero Gram matrix → LP degenerate → uniform weights.
	gram := linalg.NewMatrix(2, 2)
	c := opt.solveC(gram, []int{0})
	if math.Abs(c[0]-0.5) > 1e-9 || math.Abs(c[1]-0.5) > 1e-9 {
		t.Fatalf("fallback c = %v, want uniform", c)
	}
	// No violations → uniform.
	c2 := opt.solveC(gram, nil)
	if c2[0] != 0.5 {
		t.Fatalf("no-violation c = %v", c2)
	}
}

func TestSolveCFavorsWorstViolated(t *testing.T) {
	opt, err := New(2, []Target{{R: 0, Constrained: true}, {R: 0, Constrained: true}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Objective 0's gradient is tiny, objective 1's is huge; the max-min
	// LP must give objective 0 a much larger weight so its alignment
	// keeps up.
	gram := linalg.FromRows([][]float64{
		{0.01, 0},
		{0, 100},
	})
	c := opt.solveC(gram, []int{0, 1})
	if c[0] <= c[1] {
		t.Fatalf("c = %v; weak objective should get the larger weight", c)
	}
	if math.Abs(c.Norm()-1) > 1e-9 {
		t.Fatalf("c not normalized: %v", c.Norm())
	}
}

func TestChooseRhoConflictingGradients(t *testing.T) {
	// Violated objective 0 conflicts with objective 1 (negative cross
	// term); ρ* must keep objective 0's alignment as high as possible.
	gram := linalg.FromRows([][]float64{
		{1, -0.8},
		{-0.8, 1},
	})
	c := linalg.Vector{0.7, 0.3}
	rho := chooseRho(gram, c, []int{0})
	if rho >= 1 {
		t.Fatalf("rho = %v", rho)
	}
	// Alignment under chosen rho must beat the rho=0 alignment.
	align := func(r float64) float64 {
		// objective 0: c0(1-r)G00 + c1 G01 (objective 1 not violated).
		return c[0]*(1-r)*gram.At(0, 0) + c[1]*gram.At(0, 1)
	}
	if align(rho) < align(0)-1e-12 {
		t.Fatalf("chosen rho %v has worse alignment than 0", rho)
	}
}

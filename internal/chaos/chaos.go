// Package chaos is tempod's deterministic fault-schedule subsystem: a
// seeded injector that decides, reproducibly, which ticks run slow,
// which WAL appends tear mid-write, which API requests are shed at the
// door, and which fsyncs stall — the fault classes a production control
// plane must shrug off (overload, dying disks, flaky peers).
//
// Determinism is the whole point. Every decision is a pure function of
// (seed, fault class, subject, per-subject sequence number): the k-th
// tick executed on cluster "c7" faults — or doesn't — identically on
// every run with the same seed, regardless of shard interleaving,
// worker count, or wall-clock. Per-cluster decisions ride on per-cluster
// sequence counters, which are themselves deterministic because the
// service serializes each cluster's ticks; global decisions (request
// shedding) ride on a global counter and are reproducible in aggregate
// rate, not per-request identity. Chaos sweeps lean on this: a failure
// found at seed S replays at seed S.
//
// The injector is wired in three places: service.Config.Chaos (tick
// latency, WAL faults, request shedding), store.Options.Stall (fsync
// stalls), and the tempod -chaos-seed / -chaos-spec flags.
//
//tempolint:deterministic
package chaos

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// Spec is the fault schedule's shape: per-class probabilities (all in
// [0, 1]) and magnitudes. The zero Spec injects nothing.
type Spec struct {
	// TickLatency is the probability a tick execution sleeps
	// TickLatencyMs before running — injected slowness that fills shard
	// queues and forces the admission path to shed.
	TickLatency   float64 `json:"tick_latency,omitempty"`
	TickLatencyMs int     `json:"tick_latency_ms,omitempty"`
	// WALFault is the probability a tick's WAL append is torn mid-write
	// (store.FaultPoint): the tick fails durably and the cluster enters
	// degraded mode until the recovery probe re-arms it.
	WALFault float64 `json:"wal_fault,omitempty"`
	// HandlerError is the probability an API request is shed at the door
	// with a 503 {error, code} envelope before any handler runs —
	// injected front-end overload, exercising client retry paths.
	HandlerError float64 `json:"handler_error,omitempty"`
	// FsyncStall is the probability a WAL fsync sleeps FsyncStallMs
	// first — the intermittently glacial disk.
	FsyncStall   float64 `json:"fsync_stall,omitempty"`
	FsyncStallMs int     `json:"fsync_stall_ms,omitempty"`
}

// Default returns a mild all-classes schedule: enough fault pressure to
// exercise every recovery path without drowning the workload.
func Default() Spec {
	return Spec{
		TickLatency: 0.05, TickLatencyMs: 20,
		WALFault:     0.02,
		HandlerError: 0.05,
		FsyncStall:   0.02, FsyncStallMs: 10,
	}
}

// Validate rejects out-of-range probabilities and negative magnitudes.
func (s Spec) Validate() error {
	probs := map[string]float64{
		"tick_latency":  s.TickLatency,
		"wal_fault":     s.WALFault,
		"handler_error": s.HandlerError,
		"fsync_stall":   s.FsyncStall,
	}
	for _, name := range []string{"tick_latency", "wal_fault", "handler_error", "fsync_stall"} {
		if p := probs[name]; p < 0 || p > 1 {
			return fmt.Errorf("chaos: %s probability %g outside [0, 1]", name, p)
		}
	}
	if s.TickLatencyMs < 0 {
		return fmt.Errorf("chaos: tick_latency_ms %d is negative", s.TickLatencyMs)
	}
	if s.FsyncStallMs < 0 {
		return fmt.Errorf("chaos: fsync_stall_ms %d is negative", s.FsyncStallMs)
	}
	return nil
}

// withDefaults fills magnitude defaults for enabled classes.
func (s Spec) withDefaults() Spec {
	if s.TickLatency > 0 && s.TickLatencyMs == 0 {
		s.TickLatencyMs = 20
	}
	if s.FsyncStall > 0 && s.FsyncStallMs == 0 {
		s.FsyncStallMs = 10
	}
	return s
}

// ParseSpec decodes a fault schedule from JSON, rejecting unknown fields
// so a typoed class name fails loudly instead of silently injecting
// nothing.
func ParseSpec(r io.Reader) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("chaos: decoding spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s.withDefaults(), nil
}

// LoadSpecFile reads a fault schedule from a JSON file.
func LoadSpecFile(path string) (Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return Spec{}, err
	}
	defer f.Close()
	return ParseSpec(f)
}

// Counts totals the faults actually injected, per class.
type Counts struct {
	TickDelays   int64 `json:"tick_delays"`
	WALFaults    int64 `json:"wal_faults"`
	HandlerSheds int64 `json:"handler_sheds"`
	FsyncStalls  int64 `json:"fsync_stalls"`
}

// Decision streams: each fault class draws from its own keyed stream so
// enabling one class never perturbs another's schedule.
const (
	streamTickLatency uint64 = 1 + iota
	streamWALFault
	streamWALOffset
	streamHandler
	streamFsync
)

// Injector makes the fault decisions for one seeded run. Safe for
// concurrent use; the zero-probability classes cost one atomic-free
// check each.
type Injector struct {
	seed uint64
	spec Spec

	mu sync.Mutex
	// per-cluster decision sequence numbers: one consumed per tick
	// execution (latency + WAL fault share the sequence, drawing from
	// separate streams). Deterministic because the service serializes
	// each cluster's ticks.
	clusterSeq map[string]uint64
	// global sequences for per-request and per-fsync decisions.
	handlerSeq uint64
	fsyncSeq   uint64
	counts     Counts
}

// New builds an injector for the validated spec. Seed 0 is as good as
// any other — determinism, not entropy, is the contract.
func New(seed int64, spec Spec) (*Injector, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &Injector{
		seed:       uint64(seed),
		spec:       spec.withDefaults(),
		clusterSeq: map[string]uint64{},
	}, nil
}

// Seed returns the seed the injector was built with (for logging a
// failing schedule so it can be replayed).
func (in *Injector) Seed() int64 { return int64(in.seed) }

// Spec returns the fault schedule in force.
func (in *Injector) Spec() Spec { return in.spec }

// Counts snapshots how many faults each class has injected so far.
func (in *Injector) Counts() Counts {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.counts
}

// mix is the splitmix64 finalizer: a cheap, well-distributed 64-bit
// mixer, the standard trick for turning structured keys into uniform
// decision bits.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// roll returns a uniform float64 in [0, 1) keyed by (seed, stream,
// subject, seq) — the pure function every decision reduces to.
func (in *Injector) roll(stream uint64, subject string, seq uint64) float64 {
	h := mix(in.seed ^ stream)
	for i := 0; i < len(subject); i++ {
		h = mix(h ^ uint64(subject[i]))
	}
	h = mix(h ^ seq)
	return float64(h>>11) / float64(1<<53)
}

// TickFaults decides the faults for one tick execution on the cluster:
// an injected pre-tick delay (0 = none) and whether the tick's WAL
// append is torn (tearAt = bytes of the record that land before the
// tear). One call consumes one per-cluster sequence number, so a tick
// re-executed after degraded-mode recovery draws a fresh decision and
// the cluster can always make progress.
func (in *Injector) TickFaults(cluster string) (delay time.Duration, tearWAL bool, tearAt int64) {
	if in == nil || (in.spec.TickLatency <= 0 && in.spec.WALFault <= 0) {
		return 0, false, 0
	}
	in.mu.Lock()
	seq := in.clusterSeq[cluster]
	in.clusterSeq[cluster] = seq + 1
	if in.spec.TickLatency > 0 && in.roll(streamTickLatency, cluster, seq) < in.spec.TickLatency {
		in.counts.TickDelays++
		delay = time.Duration(in.spec.TickLatencyMs) * time.Millisecond
	}
	if in.spec.WALFault > 0 && in.roll(streamWALFault, cluster, seq) < in.spec.WALFault {
		in.counts.WALFaults++
		tearWAL = true
		// Tear within the first bytes of the record so the fault lands in
		// the frame header or early payload — the torn shapes WAL recovery
		// must truncate away.
		tearAt = int64(in.roll(streamWALOffset, cluster, seq) * 12)
	}
	in.mu.Unlock()
	return delay, tearWAL, tearAt
}

// ShedRequest decides whether to refuse the next API request at the
// door. Global sequence: reproducible in aggregate rate.
func (in *Injector) ShedRequest() bool {
	if in == nil || in.spec.HandlerError <= 0 {
		return false
	}
	in.mu.Lock()
	seq := in.handlerSeq
	in.handlerSeq++
	hit := in.roll(streamHandler, "", seq) < in.spec.HandlerError
	if hit {
		in.counts.HandlerSheds++
	}
	in.mu.Unlock()
	return hit
}

// FsyncStall returns how long the next WAL fsync should stall (0 =
// none). Wire it as store.Options.Stall.
func (in *Injector) FsyncStall() time.Duration {
	if in == nil || in.spec.FsyncStall <= 0 {
		return 0
	}
	in.mu.Lock()
	seq := in.fsyncSeq
	in.fsyncSeq++
	hit := in.roll(streamFsync, "", seq) < in.spec.FsyncStall
	if hit {
		in.counts.FsyncStalls++
	}
	in.mu.Unlock()
	if !hit {
		return 0
	}
	return time.Duration(in.spec.FsyncStallMs) * time.Millisecond
}

package whatif

import (
	"sync"
	"testing"
	"time"

	"tempo/internal/cluster"
	"tempo/internal/qs"
	"tempo/internal/workload"
)

// TestScratchPoolConcurrentBatches hammers the shared Scratch pool: 32
// goroutines run EvaluateBatch concurrently (each batch itself fanning out
// over 2 workers), all drawing simulation arenas and QS scratch from the
// one package-level pool, and every result must be bit-identical to the
// sequential evaluation. Run under -race in CI: it is the test that a
// recycled arena is never shared by two live evaluations.
func TestScratchPoolConcurrentBatches(t *testing.T) {
	profiles := []workload.TenantProfile{
		workload.DeadlineDriven("etl", 0.4),
		workload.BestEffort("adhoc", 0.4),
	}
	templates := []qs.Template{
		{Queue: "etl", Metric: qs.DeadlineViolations, Slack: 0.25},
		{Queue: "adhoc", Metric: qs.AvgResponseTime},
		{Metric: qs.Utilization},
	}
	m, err := FromProfiles(templates, profiles, 45*time.Minute, 11)
	if err != nil {
		t.Fatal(err)
	}
	m.Samples = 2
	base := cluster.Config{
		TotalContainers: 16,
		Tenants: map[string]cluster.TenantConfig{
			"etl":   {Weight: 2, MinShare: 4, SharePreemptTimeout: 5 * time.Minute},
			"adhoc": {Weight: 1},
		},
	}
	cfgs := []cluster.Config{base}
	for w := 2; w <= 8; w *= 2 {
		c := base.Clone()
		tc := c.Tenants["etl"]
		tc.Weight = float64(w)
		c.Tenants["etl"] = tc
		cfgs = append(cfgs, c)
	}
	m.Parallelism = 1
	want, err := m.EvaluateBatch(cfgs)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 32
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			defer wg.Done()
			mm := *m // models share Gen/Templates; Parallelism is private per goroutine
			mm.Parallelism = 2
			for iter := 0; iter < 3; iter++ {
				got, err := mm.EvaluateBatch(cfgs)
				if err != nil {
					errc <- err
					return
				}
				for c := range want {
					for k := range want[c] {
						if got[c][k] != want[c][k] {
							t.Errorf("concurrent batch row %d objective %d: %v != %v", c, k, got[c][k], want[c][k])
							return
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

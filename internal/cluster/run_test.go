package cluster

import (
	"testing"
	"time"

	"tempo/internal/workload"
)

func runTestTrace(t *testing.T, seed int64, horizon time.Duration) *workload.Trace {
	t.Helper()
	tr, err := workload.Generate(
		[]workload.TenantProfile{
			workload.DeadlineDriven("etl", 0.5),
			workload.BestEffort("adhoc", 0.5),
		},
		workload.GenerateOptions{Horizon: horizon, Seed: seed},
	)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestSimReuseDeterministic locks the arena contract: a Sim dirtied by
// arbitrary other runs must reproduce a fresh simulator's schedule
// bit-for-bit, for both the deterministic predictor and the noisy
// emulation. This is the property that makes pooling invisible to every
// downstream consumer (what-if scoring, goldens, loadgen verification).
func TestSimReuseDeterministic(t *testing.T) {
	traceA := runTestTrace(t, 7, 2*time.Hour)
	traceB := runTestTrace(t, 8, time.Hour)
	cfg := Config{
		TotalContainers: 20,
		Tenants: map[string]TenantConfig{
			"etl":   {Weight: 2, MinShare: 5, SharePreemptTimeout: 5 * time.Minute},
			"adhoc": {Weight: 1},
		},
	}
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"predictor", Options{Horizon: time.Hour}},
		{"noisy", Options{Horizon: time.Hour, Noise: DefaultNoise(3)}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			want, err := NewSim().RunInto(traceA, cfg, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			// want borrows its Sim's arena; that Sim runs nothing else, so
			// it stays valid for the comparisons below.
			sm := NewSim()
			if _, err := sm.RunInto(traceB, cfg, Options{}); err != nil {
				t.Fatal(err) // dirty the arena with a different shape
			}
			for i := 0; i < 3; i++ {
				got, err := sm.RunInto(traceA, cfg, tc.opts)
				if err != nil {
					t.Fatal(err)
				}
				if !got.Equal(want) {
					t.Fatalf("rerun %d on a dirty arena diverged: %v vs %v", i, got, want)
				}
			}
		})
	}
}

// TestSimDetach locks Detach's ownership transfer: a detached schedule
// must survive later runs on the same arena unchanged, while an
// undetached one is recycled (its backing is reused).
func TestSimDetach(t *testing.T) {
	trace := runTestTrace(t, 9, time.Hour)
	cfg := Config{TotalContainers: 10, Tenants: map[string]TenantConfig{"etl": {Weight: 1}, "adhoc": {Weight: 1}}}
	sm := NewSim()
	first, err := sm.RunInto(trace, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sm.Detach()
	snapshot := &Schedule{
		Capacity: first.Capacity,
		Horizon:  first.Horizon,
		Tasks:    append([]TaskRecord(nil), first.Tasks...),
		Jobs:     append([]JobRecord(nil), first.Jobs...),
	}
	other := runTestTrace(t, 10, 30*time.Minute)
	if _, err := sm.RunInto(other, cfg, Options{}); err != nil {
		t.Fatal(err)
	}
	if !first.Equal(snapshot) {
		t.Fatal("detached schedule was mutated by a later run on the same arena")
	}
}

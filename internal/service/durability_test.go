package service_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"tempo"
	"tempo/internal/scenario"
	"tempo/internal/service"
	"tempo/internal/store"
)

func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestServiceDurableRecovery is the service-level half of the crash
// recovery acceptance: tick a durable cluster partway, close the
// service, restart it on the same data directory, and require the
// recovered cluster to finish with a report byte-identical to an
// uninterrupted sequential run.
func TestServiceDurableRecovery(t *testing.T) {
	spec := smallSpec(t, 6)
	ref, err := scenario.Run(spec, scenario.Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	svc, err := service.New(service.Config{Store: openStore(t, dir), SnapshotEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	c, err := svc.Create("c1", spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, _, err := svc.Tick(context.Background(), c); err != nil {
			t.Fatal(err)
		}
	}
	svc.Close() // drains and flushes + closes the store

	svc2, err := service.New(service.Config{Store: openStore(t, dir)})
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	c2, err := svc2.Get("c1")
	if err != nil {
		t.Fatal(err)
	}
	if got := c2.Session().Ticks(); got != 4 {
		t.Fatalf("recovered cluster at tick %d, want 4", got)
	}
	for !c2.Session().Done() {
		if _, _, err := svc2.Tick(context.Background(), c2); err != nil {
			t.Fatal(err)
		}
	}
	got, err := c2.Session().Report().MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("recovered cluster's report differs from uninterrupted sequential run")
	}
}

// TestServiceDurableDelete removes on-disk state: after a delete, a
// restart does not resurrect the cluster, and the id is free for reuse.
func TestServiceDurableDelete(t *testing.T) {
	spec := smallSpec(t, 3)
	dir := t.TempDir()
	svc, err := service.New(service.Config{Store: openStore(t, dir)})
	if err != nil {
		t.Fatal(err)
	}
	c, err := svc.Create("gone", spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := svc.Tick(context.Background(), c); err != nil {
		t.Fatal(err)
	}
	if err := svc.Delete(context.Background(), "gone"); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Create("gone", spec); err != nil {
		t.Fatalf("recreate after delete: %v", err)
	}
	svc.Close()

	svc2, err := service.New(service.Config{Store: openStore(t, dir)})
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	c2, err := svc2.Get("gone")
	if err != nil {
		t.Fatal(err)
	}
	if got := c2.Session().Ticks(); got != 0 {
		t.Fatalf("recreated cluster recovered %d ticks from the deleted incarnation", got)
	}
}

// TestTickDeleteRace hammers Tick and Delete concurrently on one durable
// cluster id — the regression test for deletion racing the tick+append
// commit (run under -race). Every error must be one of the sanctioned
// outcomes; the WAL of a deleted cluster must be gone.
func TestTickDeleteRace(t *testing.T) {
	spec := smallSpec(t, 0)
	spec.Iterations = 50
	dir := t.TempDir()
	svc, err := service.New(service.Config{Store: openStore(t, dir), SnapshotEvery: 3, Shards: 2, WorkersPerShard: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	const rounds = 8
	for round := 0; round < rounds; round++ {
		id := fmt.Sprintf("contended-%d", round)
		c, err := svc.Create(id, spec)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		fail := make(chan error, 16)
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					_, _, err := svc.Tick(context.Background(), c)
					if err == nil {
						continue
					}
					if errors.Is(err, service.ErrNotFound) || errors.Is(err, service.ErrClosed) ||
						errors.Is(err, tempo.ErrSessionDone) {
						return
					}
					fail <- fmt.Errorf("tick: %w", err)
					return
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			time.Sleep(time.Duration(round) * time.Millisecond)
			if err := svc.Delete(context.Background(), id); err != nil && !errors.Is(err, service.ErrNotFound) {
				fail <- fmt.Errorf("delete: %w", err)
			}
		}()
		wg.Wait()
		close(fail)
		for err := range fail {
			t.Fatal(err)
		}
		if _, err := svc.Get(id); !errors.Is(err, service.ErrNotFound) {
			t.Fatalf("round %d: cluster survived delete: %v", round, err)
		}
	}
}

// TestQSWindowValidation is the API-level table test for windowed QS
// bounds: negative or reversed windows are 400s whose message names the
// half-open [from, to) convention; valid and open-ended windows succeed.
func TestQSWindowValidation(t *testing.T) {
	_, ts := newTestServer(t, service.Config{})
	spec := smallSpec(t, 2)
	createCluster(t, ts.URL, "c1", spec)
	if code, body := do(t, "POST", ts.URL+"/clusters/c1/tick", ""); code != http.StatusOK {
		t.Fatalf("tick: %d: %s", code, body)
	}

	cases := []struct {
		name     string
		query    string
		want     int
		contains string
	}{
		{"negative from", "?from=-5m", http.StatusBadRequest, "[from, to)"},
		{"negative to", "?to=-5m", http.StatusBadRequest, "[from, to)"},
		{"reversed", "?from=1h&to=30m", http.StatusBadRequest, "[from, to)"},
		{"malformed from", "?from=sideways", http.StatusBadRequest, "malformed from"},
		{"malformed to", "?to=0x12", http.StatusBadRequest, "malformed to"},
		{"open ended", "", http.StatusOK, ""},
		{"explicit window", "?from=0s&to=5m", http.StatusOK, ""},
		{"from beyond horizon", "?from=100h", http.StatusOK, ""},
		{"degenerate empty", "?from=5m&to=5m", http.StatusOK, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, body := do(t, "GET", ts.URL+"/clusters/c1/qs"+tc.query, "")
			if code != tc.want {
				t.Fatalf("GET /qs%s = %d, want %d: %s", tc.query, code, tc.want, body)
			}
			if tc.contains != "" && !strings.Contains(string(body), tc.contains) {
				t.Fatalf("GET /qs%s error %q does not name %q", tc.query, body, tc.contains)
			}
		})
	}
}

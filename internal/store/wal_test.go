package store

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func testPayloads(n int) [][]byte {
	rng := rand.New(rand.NewSource(1))
	out := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		p := make([]byte, 1+rng.Intn(200))
		rng.Read(p)
		out = append(out, p)
	}
	return out
}

func appendAll(t *testing.T, w *WAL, payloads [][]byte) {
	t.Helper()
	for _, p := range payloads {
		if err := w.Append(p); err != nil {
			t.Fatal(err)
		}
	}
}

func TestWALAppendReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	payloads := testPayloads(50)

	w, records, err := OpenWAL(path, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 0 {
		t.Fatalf("fresh wal has %d records", len(records))
	}
	appendAll(t, w, payloads)
	if w.Records() != len(payloads) {
		t.Fatalf("Records() = %d, want %d", w.Records(), len(payloads))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, records, err := OpenWAL(path, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if len(records) != len(payloads) {
		t.Fatalf("reopened %d records, want %d", len(records), len(payloads))
	}
	for i := range payloads {
		if !bytes.Equal(records[i], payloads[i]) {
			t.Fatalf("record %d differs after reopen", i)
		}
	}
}

// TestWALTornTail truncates the log at every byte offset and checks open
// always recovers exactly the records whose frames survived whole, and
// leaves the file cut back to that record boundary.
func TestWALTornTail(t *testing.T) {
	dir := t.TempDir()
	payloads := testPayloads(10)
	path := filepath.Join(dir, "ref.log")
	w, _, err := OpenWAL(path, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, w, payloads)
	w.Close()
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// boundaries[k] is the byte offset after record k-1.
	boundaries := []int{0}
	off := 0
	for _, p := range payloads {
		off += walHeaderSize + len(p)
		boundaries = append(boundaries, off)
	}
	if off != len(full) {
		t.Fatalf("frame math: %d != file size %d", off, len(full))
	}

	for cut := 0; cut <= len(full); cut++ {
		torn := filepath.Join(dir, fmt.Sprintf("torn-%d.log", cut))
		if err := os.WriteFile(torn, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		wantRecords := 0
		for wantRecords < len(payloads) && boundaries[wantRecords+1] <= cut {
			wantRecords++
		}
		w, records, err := OpenWAL(torn, WALOptions{})
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		if len(records) != wantRecords {
			t.Fatalf("cut=%d: recovered %d records, want %d", cut, len(records), wantRecords)
		}
		for i := 0; i < wantRecords; i++ {
			if !bytes.Equal(records[i], payloads[i]) {
				t.Fatalf("cut=%d: record %d corrupted", cut, i)
			}
		}
		w.Close()
		st, err := os.Stat(torn)
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() != int64(boundaries[wantRecords]) {
			t.Fatalf("cut=%d: torn tail not truncated: size %d, want %d", cut, st.Size(), boundaries[wantRecords])
		}
	}
}

// TestWALCorruptMiddle flips a byte inside an early record: the CRC
// rejects it and everything after it is discarded — the durable prefix
// ends at the first bad frame.
func TestWALCorruptMiddle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	payloads := testPayloads(8)
	w, _, err := OpenWAL(path, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, w, payloads)
	w.Close()

	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the payload of record 3.
	off := 0
	for i := 0; i < 3; i++ {
		off += walHeaderSize + len(payloads[i])
	}
	full[off+walHeaderSize] ^= 0xff
	if err := os.WriteFile(path, full, 0o644); err != nil {
		t.Fatal(err)
	}

	w2, records, err := OpenWAL(path, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if len(records) != 3 {
		t.Fatalf("recovered %d records past corruption, want 3", len(records))
	}
}

// TestWALFaultInjection arms crash fault points at randomized byte
// offsets: appends fail at the limit, the WAL latches broken, and reopen
// recovers an intact prefix of what was appended.
func TestWALFaultInjection(t *testing.T) {
	payloads := testPayloads(30)
	total := 0
	for _, p := range payloads {
		total += walHeaderSize + len(p)
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		limit := int64(rng.Intn(total + 1))
		path := filepath.Join(t.TempDir(), "wal.log")
		w, _, err := OpenWAL(path, WALOptions{Fault: &FaultPoint{Limit: limit}})
		if err != nil {
			t.Fatal(err)
		}
		appended := 0
		var failed bool
		for _, p := range payloads {
			err := w.Append(p)
			if err == nil {
				appended++
				continue
			}
			if !errors.Is(err, ErrFaultInjected) {
				t.Fatalf("limit=%d: %v", limit, err)
			}
			failed = true
			break
		}
		if failed {
			if err := w.Append(payloads[0]); !errors.Is(err, ErrWALBroken) {
				t.Fatalf("limit=%d: append after fault: %v", limit, err)
			}
		}
		w.Close()

		w2, records, err := OpenWAL(path, WALOptions{})
		if err != nil {
			t.Fatalf("limit=%d: reopen: %v", limit, err)
		}
		// Every fully appended record survives; the torn one never does.
		if len(records) != appended {
			t.Fatalf("limit=%d: recovered %d records, appended %d", limit, len(records), appended)
		}
		for i := 0; i < len(records); i++ {
			if !bytes.Equal(records[i], payloads[i]) {
				t.Fatalf("limit=%d: record %d corrupted", limit, i)
			}
		}
		w2.Close()
	}
}

// TestWALGroupCommit checks the batching bookkeeping: under a byte
// threshold the dirty counter drains exactly when the threshold trips,
// and Sync drains it on demand.
func TestWALGroupCommit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _, err := OpenWAL(path, WALOptions{SyncBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	small := make([]byte, 100)
	if err := w.Append(small); err != nil {
		t.Fatal(err)
	}
	w.mu.Lock()
	dirty := w.dirty
	w.mu.Unlock()
	if dirty == 0 {
		t.Fatal("small append under the byte threshold was synced eagerly")
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	w.mu.Lock()
	dirty = w.dirty
	w.mu.Unlock()
	if dirty != 0 {
		t.Fatalf("dirty=%d after Sync", dirty)
	}
	// Crossing the threshold syncs.
	big := make([]byte, 2<<20)
	if err := w.Append(big); err != nil {
		t.Fatal(err)
	}
	w.mu.Lock()
	dirty = w.dirty
	w.mu.Unlock()
	if dirty != 0 {
		t.Fatalf("dirty=%d after threshold-crossing append", dirty)
	}
}

package cluster

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"tempo/internal/workload"
)

// randomScenario builds a random small trace and configuration.
func randomScenario(rng *rand.Rand) (*workload.Trace, Config) {
	tenants := []string{"A", "B", "C"}[:1+rng.Intn(3)]
	capacity := 2 + rng.Intn(10)
	cfg := Config{TotalContainers: capacity, Tenants: map[string]TenantConfig{}}
	for _, name := range tenants {
		tc := TenantConfig{Weight: 0.5 + rng.Float64()*3}
		if rng.Intn(2) == 0 {
			tc.MinShare = rng.Intn(capacity/2 + 1)
		}
		if rng.Intn(2) == 0 {
			tc.MaxShare = tc.MinShare + 1 + rng.Intn(capacity)
		}
		if rng.Intn(2) == 0 {
			tc.MinSharePreemptTimeout = time.Duration(1+rng.Intn(60)) * time.Second
		}
		if rng.Intn(2) == 0 {
			tc.SharePreemptTimeout = time.Duration(10+rng.Intn(300)) * time.Second
		}
		cfg.Tenants[name] = tc
	}
	var jobs []workload.JobSpec
	n := 1 + rng.Intn(12)
	for i := 0; i < n; i++ {
		tenant := tenants[rng.Intn(len(tenants))]
		nMaps := 1 + rng.Intn(6)
		nReds := rng.Intn(3)
		mapDur := make([]time.Duration, nMaps)
		for j := range mapDur {
			mapDur[j] = time.Duration(1+rng.Intn(120)) * time.Second
		}
		redDur := make([]time.Duration, nReds)
		for j := range redDur {
			redDur[j] = time.Duration(1+rng.Intn(240)) * time.Second
		}
		jobs = append(jobs, workload.NewMapReduceJob(
			string(rune('a'+i)), tenant,
			time.Duration(rng.Intn(600))*time.Second,
			mapDur, redDur))
	}
	tr := &workload.Trace{Name: "prop", Horizon: time.Hour, Jobs: jobs}
	tr.Sort()
	return tr, cfg
}

// Property: capacity is never exceeded and usage never goes negative, with
// or without preemption and noise.
func TestPropertyCapacityInvariant(t *testing.T) {
	f := func(seed int64, noisy bool) bool {
		rng := rand.New(rand.NewSource(seed))
		tr, cfg := randomScenario(rng)
		opts := Options{}
		if noisy {
			opts.Noise = DefaultNoise(seed)
			opts.Horizon = 2 * time.Hour
		}
		s, err := Run(tr, cfg, opts)
		if err != nil {
			return false
		}
		for _, p := range s.UsageTimeline("") {
			if p.Count > cfg.TotalContainers || p.Count < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: in a deterministic run every job completes, every non-preempted
// attempt lasts exactly its nominal duration, and job finish times are
// consistent (finish >= submit + critical path lower bound is too strong
// under contention, but finish >= submit + max single task duration of some
// stage chain holds; we check finish >= submit).
func TestPropertyDeterministicCompletion(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr, cfg := randomScenario(rng)
		s, err := Predict(tr, cfg)
		if err != nil {
			return false
		}
		if len(s.Jobs) != len(tr.Jobs) {
			return false
		}
		for _, j := range s.Jobs {
			if !j.Completed {
				return false
			}
			if j.Finish < j.Submit {
				return false
			}
		}
		for _, task := range s.Tasks {
			if task.Outcome == TaskFinished && task.End <= task.Start {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: max-share limits are respected at every instant.
func TestPropertyMaxShareInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr, cfg := randomScenario(rng)
		s, err := Predict(tr, cfg)
		if err != nil {
			return false
		}
		for name, tc := range cfg.Tenants {
			if tc.MaxShare <= 0 {
				continue
			}
			for _, p := range s.UsageTimeline(name) {
				if p.Count > tc.MaxShare {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: container-time conservation — the sum of attempt durations
// equals the integral of the usage timeline.
func TestPropertyContainerTimeConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr, cfg := randomScenario(rng)
		s, err := Predict(tr, cfg)
		if err != nil {
			return false
		}
		var attemptSum time.Duration
		for i := range s.Tasks {
			attemptSum += s.Tasks[i].Duration()
		}
		tl := s.UsageTimeline("")
		var integral time.Duration
		for i := 0; i+1 < len(tl); i++ {
			integral += time.Duration(tl[i].Count) * (tl[i+1].Time - tl[i].Time)
		}
		diff := attemptSum - integral
		if diff < 0 {
			diff = -diff
		}
		return diff < time.Millisecond
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: jobs of a lone tenant on an uncontended cluster finish no later
// than submit + total work (one container is always available).
func TestPropertyLoneTenantBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nMaps := 1 + rng.Intn(5)
		dur := time.Duration(1+rng.Intn(60)) * time.Second
		j := workload.NewMapReduceJob("j", "A", 0, make([]time.Duration, nMaps), nil)
		for i := range j.Stages[0].Tasks {
			j.Stages[0].Tasks[i].Duration = dur
		}
		tr := &workload.Trace{Horizon: time.Hour, Jobs: []workload.JobSpec{j}}
		s, err := Predict(tr, Config{TotalContainers: 1 + rng.Intn(8), Tenants: map[string]TenantConfig{"A": {Weight: 1}}})
		if err != nil {
			return false
		}
		return s.Jobs[0].Completed && s.Jobs[0].Finish <= time.Duration(nMaps)*dur
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSchedulePredictor(b *testing.B) {
	tr, err := workload.Generate(workload.CompanyABC(1), workload.GenerateOptions{Horizon: 8 * time.Hour, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	cfg := Config{TotalContainers: 100, Tenants: map[string]TenantConfig{}}
	for _, name := range tr.Tenants() {
		cfg.Tenants[name] = TenantConfig{Weight: 1, MinShare: 5, MinSharePreemptTimeout: time.Minute, SharePreemptTimeout: 5 * time.Minute}
	}
	tasks := tr.TaskCount()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := Predict(tr, cfg)
		if err != nil {
			b.Fatal(err)
		}
		_ = s
	}
	b.ReportMetric(float64(tasks), "tasks/op")
}

// The tick execution path below is part of the deterministic surface:
// a cluster's report bytes must not depend on which worker or shard ran
// its ticks. Wall-clock reads and channel races here are confined to
// operator metrics and shutdown, and each is individually justified.
//
//tempolint:deterministic
package service

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tempo"
)

// counter is a cheap concurrent event counter.
type counter struct{ n atomic.Int64 }

func (c *counter) add(d int64) { c.n.Add(d) }
func (c *counter) get() int64  { return c.n.Load() }

// tickJob is one queued unit of per-cluster work — a control-loop tick
// or (remove set) the cluster's teardown; the worker answers on reply.
// Routing teardown through the same queue gives Delete the same
// worker-pool bounds as ticks and keeps every mutation of one cluster on
// machinery that respects the cluster mutex.
type tickJob struct {
	cluster *Cluster
	remove  bool
	reply   chan tickResult
}

type tickResult struct {
	it  tempo.ScenarioIteration
	err error
}

// shard owns a slice of the cluster population: a bounded tick queue and
// a fixed worker pool draining it. The pool size bounds the shard's tick
// concurrency regardless of resident clusters or in-flight requests.
type shard struct {
	idx  int
	svc  *Service
	jobs chan tickJob
	quit chan struct{}
	wg   sync.WaitGroup

	ticks       counter
	whatifEvals counter
	// scored and pruned aggregate the controller's per-tick search stats
	// (tempo.SearchStats) over every resident cluster: candidates fully
	// scored through the what-if simulator vs. discarded by the QS lower
	// bound before simulation. Their ratio is the live view of how much
	// work the incremental search is saving.
	scored counter
	pruned counter
	// pending counts jobs enqueued but not yet replied to — the signal
	// Close's bounded drain polls for.
	pending counter
	// shed counts admissions refused because the queue stayed full past
	// the deadline — requests turned away with zero state change.
	shed counter
	lat  latencyRing
	// decLat retains recent controller decision latencies (propose →
	// apply, reported by the session per tick) — the search-phase slice of
	// the tick latency lat measures.
	decLat latencyRing
}

func newShard(idx int, svc *Service, cfg Config) *shard {
	sh := &shard{
		idx:  idx,
		svc:  svc,
		jobs: make(chan tickJob, cfg.QueueDepth),
		quit: svc.quit,
	}
	sh.lat.init(cfg.LatencyWindow)
	sh.decLat.init(cfg.LatencyWindow)
	sh.wg.Add(cfg.WorkersPerShard)
	for i := 0; i < cfg.WorkersPerShard; i++ {
		go sh.worker()
	}
	return sh
}

func (sh *shard) wait() { sh.wg.Wait() }

// tick enqueues one tick for the cluster and waits for a worker to run
// it. A full queue applies backpressure bounded by the caller's context
// deadline and the service's AdmissionTimeout; waiting past either sheds
// the request with ErrOverloaded instead of blocking forever. A closed
// service fails the call instead of hanging.
func (sh *shard) tick(ctx context.Context, c *Cluster) (tempo.ScenarioIteration, error) {
	return sh.run(ctx, tickJob{cluster: c, reply: make(chan tickResult, 1)})
}

// remove enqueues the cluster's teardown and waits for it, under the
// same bounded admission as ticks.
func (sh *shard) remove(ctx context.Context, c *Cluster) error {
	_, err := sh.run(ctx, tickJob{cluster: c, remove: true, reply: make(chan tickResult, 1)})
	return err
}

func (sh *shard) run(ctx context.Context, job tickJob) (tempo.ScenarioIteration, error) {
	sh.pending.add(1)
	// Admission: deadline-bounded. A request shed here has touched no
	// state whatsoever, so the 503 it becomes is always safe to retry.
	actx, cancel := context.WithTimeout(ctx, sh.svc.cfg.AdmissionTimeout)
	defer cancel()
	//tempolint:ignore determinism admission races only select which request is shed with zero state change, never tick output
	select {
	case sh.jobs <- job:
	case <-sh.quit:
		sh.pending.add(-1)
		return tempo.ScenarioIteration{}, ErrClosed
	case <-actx.Done():
		sh.pending.add(-1)
		sh.shed.add(1)
		sh.svc.shedRequests.add(1)
		return tempo.ScenarioIteration{}, fmt.Errorf("%w: shard %d queue full past the admission deadline (%v)", ErrOverloaded, sh.idx, actx.Err())
	}
	// Once admitted the job WILL run — abandoning it on a deadline would
	// mean an error response for a tick that still commits, breaking the
	// "error means no state change" retry contract. Only service shutdown
	// cuts the wait, and that cut is ErrInterrupted, not ErrClosed: the
	// job may have executed (or still commit durably) after the wait is
	// severed, so the outcome is unknown and clients must not auto-retry.
	//tempolint:ignore determinism reply-vs-shutdown race only selects ErrInterrupted, never alters tick output
	select {
	case res := <-job.reply:
		return res.it, res.err
	case <-sh.quit:
		return tempo.ScenarioIteration{}, fmt.Errorf("%w: shard %d stopped while the job was queued or running", ErrInterrupted, sh.idx)
	}
}

// retryAfterSeconds estimates when a shed caller should come back: the
// time for the current queue to drain at the shard's p99 tick latency
// across its workers, rounded up to whole seconds and clamped to
// [1, 30] — an honest hint, not a promise.
func (sh *shard) retryAfterSeconds() int {
	_, p99, ok := sh.lat.quantiles()
	if !ok {
		return 1
	}
	est := time.Duration(len(sh.jobs)+1) * p99 / time.Duration(sh.svc.cfg.WorkersPerShard)
	secs := int((est + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	if secs > 30 {
		secs = 30
	}
	return secs
}

func (sh *shard) worker() {
	defer sh.wg.Done()
	for {
		//tempolint:ignore determinism job-vs-quit race only decides when the worker stops; ticks are serialized per cluster
		select {
		case <-sh.quit:
			return
		case job := <-sh.jobs:
			if job.remove {
				job.reply <- tickResult{err: sh.svc.execDelete(job.cluster)}
				sh.pending.add(-1)
				continue
			}
			//tempolint:ignore determinism wall-clock feeds the latency ring metric only, never report bytes
			start := time.Now()
			it, err := sh.svc.execTick(job.cluster)
			if err == nil {
				sh.ticks.add(1)
				sh.lat.record(time.Since(start))
			}
			job.reply <- tickResult{it: it, err: err}
			sh.pending.add(-1)
		}
	}
}

// latencyRing retains the most recent tick latencies for quantile
// estimation. Fixed capacity: a long-running daemon's metrics must not
// grow with tick count, and recent samples are the ones operators care
// about.
type latencyRing struct {
	mu      sync.Mutex
	samples []time.Duration
	next    int
	full    bool
}

func (r *latencyRing) init(window int) {
	r.samples = make([]time.Duration, window)
}

func (r *latencyRing) record(d time.Duration) {
	r.mu.Lock()
	r.samples[r.next] = d
	r.next++
	if r.next == len(r.samples) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
}

// quantiles returns the p50 and p99 of the retained window (nearest-rank
// on the sorted copy), or zeros with ok=false when no tick has completed.
func (r *latencyRing) quantiles() (p50, p99 time.Duration, ok bool) {
	r.mu.Lock()
	n := r.next
	if r.full {
		n = len(r.samples)
	}
	buf := append([]time.Duration(nil), r.samples[:n]...)
	r.mu.Unlock()
	if len(buf) == 0 {
		return 0, 0, false
	}
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	rank := func(q float64) time.Duration {
		i := int(q * float64(len(buf)-1))
		return buf[i]
	}
	return rank(0.50), rank(0.99), true
}

package query

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// FuzzQueryPlan hammers the untrusted-input path: arbitrary bytes must
// either be rejected with a *PlanError-shaped message or produce a plan
// that compiles and evaluates without panicking, within bounds. Plans are
// the one client-authored structure tempod executes, so this is the
// fuzz surface the nightly tier grows.
func FuzzQueryPlan(f *testing.F) {
	seeds := []string{
		`{"version":1,"source":"events"}`,
		`{"version":1,"source":"jobs","from":"10m","to":"2h","ops":[
			{"op":"filter","field":"tenant","eq":"etl"},
			{"op":"map","fields":["tenant","response_seconds"]},
			{"op":"group_by","by":["tenant"]},
			{"op":"window","size":"30m"},
			{"op":"aggregate","aggs":[{"fn":"p99","field":"response_seconds","as":"p99_wait"}]},
			{"op":"limit","n":100}]}`,
		`{"version":1,"source":"events","ops":[
			{"op":"aggregate","slos":[{"queue":"a","metric":"avg_response_time"},
				{"queue":"","metric":"utilization","effective_only":true}]}]}`,
		`{"version":1,"source":"tasks","ops":[
			{"op":"filter","field":"outcome","in":["finished","preempted"]},
			{"op":"group_by","by":["tenant","task_kind"]},
			{"op":"window","size":"tick"},
			{"op":"aggregate","aggs":[{"fn":"sum","field":"duration_seconds"}]}]}`,
		`{"version":1,"source":"events","ops":[{"op":"filter","field":"time","ge":"30m","lt":"90m"},{"op":"limit","n":1}]}`,
		`{"version":2,"source":"events"}`,
		`{"version":1,"source":"events","ops":[{"op":"join"}]}`,
		`not json at all`,
		`{"version":1,"source":"events","ops":[{"op":"window","size":"-5m"}]}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ParsePlan(bytes.NewReader(data))
		if err != nil {
			if !strings.Contains(err.Error(), "query: invalid plan") {
				t.Fatalf("rejection without the plan-error prefix: %v", err)
			}
			return
		}
		r, err := Compile(p, 100*time.Second)
		if err != nil {
			t.Fatalf("validated plan failed to compile: %v", err)
		}
		r.MaxGroups = 100
		s := tickSchedule()
		for i := 0; i < 2; i++ {
			if _, err := r.PushTick(i, s); err != nil {
				// The only admissible runtime failure is the cardinality guard.
				if strings.Contains(err.Error(), "distinct (window, group) cells") {
					return
				}
				t.Fatalf("push failed: %v", err)
			}
		}
		r.Result()
	})
}

// Package pool is the poolsafety fixture: a miniature of the repo's
// arena contract ((*Sim).RunInto borrows, Detach transfers ownership)
// plus sync.Pool Get/Put cycles.
package pool

import "sync"

type Schedule struct{ Tasks []int }

type Sim struct{ buf []int }

func (s *Sim) RunInto(n int) (*Schedule, error) { return &Schedule{Tasks: s.buf[:0]}, nil }

func (s *Sim) Detach() { s.buf = nil }

var simPool = sync.Pool{New: func() any { return new(Sim) }}

func escapeReturn(sm *Sim) *Schedule {
	sched, _ := sm.RunInto(1)
	return sched // want `returning schedule "sched" borrowed from arena "sm" without Detach`
}

func detachedReturnOK(sm *Sim) *Schedule {
	sched, _ := sm.RunInto(1)
	sm.Detach()
	return sched
}

type holder struct{ last *Schedule }

func escapeStore(h *holder, sm *Sim) {
	sched, _ := sm.RunInto(1)
	h.last = sched // want `storing schedule "sched" borrowed from arena "sm" without Detach`
}

func escapeSend(ch chan *Schedule, sm *Sim) {
	sched, _ := sm.RunInto(1)
	ch <- sched // want `sending schedule "sched" borrowed from arena "sm" without Detach`
}

func escapeGlobal(sm *Sim) {
	sched, _ := sm.RunInto(1)
	//tempolint:ignore poolsafety fixture: demonstrates an accepted suppression of a real escape
	lastSchedule = sched
}

var lastSchedule *Schedule

func scoreLocallyOK(sm *Sim) int {
	sched, _ := sm.RunInto(1)
	return len(sched.Tasks)
}

func localRebindOK(sm *Sim) *Schedule {
	sched, _ := sm.RunInto(1)
	_ = sched
	sm.Detach()
	other, _ := sm.RunInto(2)
	sm.Detach()
	return other
}

func useAfterPut() int {
	sm := simPool.Get().(*Sim)
	simPool.Put(sm)
	return len(sm.buf) // want `use of "sm" after it was returned to the pool by Put`
}

func getUsePutOK() int {
	sm := simPool.Get().(*Sim)
	sched, _ := sm.RunInto(1)
	n := len(sched.Tasks)
	sm.Detach()
	simPool.Put(sm)
	return n
}

func deferPutOK() int {
	sm := simPool.Get().(*Sim)
	defer simPool.Put(sm)
	sched, _ := sm.RunInto(1)
	return len(sched.Tasks) + len(sm.buf)
}

func reGetOK() *Sim {
	sm := simPool.Get().(*Sim)
	simPool.Put(sm)
	sm = simPool.Get().(*Sim)
	return sm
}

package cluster

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteTasksCSV streams the task schedule as CSV — the raw material for
// external plotting or for feeding Tempo's trace-harvesting path from a
// file. Columns: job_id, tenant, kind, attempt, start_sec, end_sec,
// outcome.
func (s *Schedule) WriteTasksCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"job_id", "tenant", "kind", "attempt", "start_sec", "end_sec", "outcome"}); err != nil {
		return fmt.Errorf("cluster: writing csv header: %w", err)
	}
	for i := range s.Tasks {
		t := &s.Tasks[i]
		rec := []string{
			t.JobID,
			t.Tenant,
			t.Kind.String(),
			strconv.Itoa(t.Attempt),
			formatSec(t.Start),
			formatSec(t.End),
			t.Outcome.String(),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("cluster: writing csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJobsCSV streams job outcomes as CSV. Columns: job_id, tenant,
// submit_sec, finish_sec, deadline_sec, completed, killed.
func (s *Schedule) WriteJobsCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"job_id", "tenant", "submit_sec", "finish_sec", "deadline_sec", "completed", "killed"}); err != nil {
		return fmt.Errorf("cluster: writing csv header: %w", err)
	}
	for i := range s.Jobs {
		j := &s.Jobs[i]
		rec := []string{
			j.ID,
			j.Tenant,
			formatSec(j.Submit),
			formatSec(j.Finish),
			formatSec(j.Deadline),
			strconv.FormatBool(j.Completed),
			strconv.FormatBool(j.Killed),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("cluster: writing csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

func formatSec(d interface{ Seconds() float64 }) string {
	return strconv.FormatFloat(d.Seconds(), 'f', 3, 64)
}

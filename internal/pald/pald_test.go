package pald

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"tempo/internal/linalg"
)

// quadratic returns a noisy two-objective test problem: f_i = ||x − a_i||².
func quadratic(anchors []linalg.Vector, noise float64, rng *rand.Rand) func(linalg.Vector) []float64 {
	return func(x linalg.Vector) []float64 {
		out := make([]float64, len(anchors))
		for i, a := range anchors {
			d := x.Sub(a)
			out[i] = d.Dot(d)
			if noise > 0 {
				out[i] += noise * rng.NormFloat64()
			}
		}
		return out
	}
}

// drive runs the optimize-observe loop for iters iterations and returns the
// final configuration.
func drive(t *testing.T, opt *Optimizer, eval func(linalg.Vector) []float64, x0 linalg.Vector, iters int) linalg.Vector {
	t.Helper()
	x := x0.Clone()
	f := eval(x)
	if err := opt.Observe(x, f); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < iters; i++ {
		next, err := opt.Step(x, f)
		if err != nil {
			t.Fatal(err)
		}
		x = next
		f = eval(x)
		if err := opt.Observe(x, f); err != nil {
			t.Fatal(err)
		}
	}
	return x
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, []Target{{}}, Options{}); err == nil {
		t.Fatal("zero dim accepted")
	}
	if _, err := New(2, nil, Options{}); err == nil {
		t.Fatal("no objectives accepted")
	}
}

func TestObserveValidation(t *testing.T) {
	opt, err := New(2, []Target{{}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := opt.Observe(linalg.Vector{1}, []float64{1}); err == nil {
		t.Fatal("wrong x dim accepted")
	}
	if err := opt.Observe(linalg.Vector{1, 1}, []float64{1, 2}); err == nil {
		t.Fatal("wrong f length accepted")
	}
	if err := opt.Observe(linalg.Vector{1, 1}, []float64{math.NaN()}); err == nil {
		t.Fatal("NaN accepted")
	}
	if err := opt.Observe(linalg.Vector{0.5, 0.5}, []float64{1}); err != nil {
		t.Fatal(err)
	}
	if opt.SampleCount() != 1 {
		t.Fatal("sample not recorded")
	}
}

func TestHistoryBounded(t *testing.T) {
	opt, err := New(1, []Target{{}}, Options{History: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := opt.Observe(linalg.Vector{float64(i) / 20}, []float64{float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if opt.SampleCount() != 5 {
		t.Fatalf("history = %d, want 5", opt.SampleCount())
	}
}

func TestWarmupExploresWithinTrustRegion(t *testing.T) {
	opt, err := New(4, []Target{{}}, Options{MaxStep: 0.1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	x := linalg.Vector{0.5, 0.5, 0.5, 0.5}
	next, err := opt.Step(x, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if d := next.Dist(x); d > 0.1+1e-9 {
		t.Fatalf("warm-up step distance %v exceeds trust region", d)
	}
}

func TestStepDimValidation(t *testing.T) {
	opt, _ := New(2, []Target{{}}, Options{})
	if _, err := opt.Step(linalg.Vector{1}, []float64{0}); err == nil {
		t.Fatal("wrong dim accepted")
	}
}

func TestConvergesOnSingleObjective(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	anchor := linalg.Vector{0.7, 0.3}
	eval := quadratic([]linalg.Vector{anchor}, 0, rng)
	opt, err := New(2, []Target{{}}, Options{Seed: 2, StepSize: 0.5, MaxStep: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	x := drive(t, opt, eval, linalg.Vector{0.1, 0.9}, 60)
	if d := x.Dist(anchor); d > 0.15 {
		t.Fatalf("final distance to optimum %v, want < 0.15 (x=%v)", d, x)
	}
}

func TestConvergesUnderNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	anchor := linalg.Vector{0.6, 0.6}
	eval := quadratic([]linalg.Vector{anchor}, 0.02, rng)
	opt, err := New(2, []Target{{}}, Options{Seed: 4, StepSize: 0.4, MaxStep: 0.15, Span: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	x := drive(t, opt, eval, linalg.Vector{0.1, 0.1}, 80)
	if d := x.Dist(anchor); d > 0.25 {
		t.Fatalf("noisy convergence distance %v, want < 0.25", d)
	}
}

// TestConvergesToParetoSet: with two conflicting quadratics the Pareto set
// is the segment [a1, a2]; PALD should end close to it.
func TestConvergesToParetoSet(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a1 := linalg.Vector{0.2, 0.5}
	a2 := linalg.Vector{0.8, 0.5}
	eval := quadratic([]linalg.Vector{a1, a2}, 0, rng)
	opt, err := New(2, []Target{{}, {}}, Options{Seed: 6, StepSize: 0.4, MaxStep: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	x := drive(t, opt, eval, linalg.Vector{0.5, 0.05}, 80)
	// Distance to the segment y=0.5, 0.2<=x<=0.8.
	dx := 0.0
	if x[0] < 0.2 {
		dx = 0.2 - x[0]
	} else if x[0] > 0.8 {
		dx = x[0] - 0.8
	}
	dy := math.Abs(x[1] - 0.5)
	if d := math.Hypot(dx, dy); d > 0.15 {
		t.Fatalf("distance to Pareto segment %v, want < 0.15 (x=%v)", d, x)
	}
}

// TestConstraintSatisfaction: constrain f1 <= r and minimize f2; PALD must
// end feasible (or nearly) while improving f2 — max-min over regret.
func TestConstraintSatisfaction(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a1 := linalg.Vector{0.2, 0.5}
	a2 := linalg.Vector{0.9, 0.5}
	eval := quadratic([]linalg.Vector{a1, a2}, 0, rng)
	r1 := 0.09 // ||x−a1||² <= 0.09 ⇔ within 0.3 of a1
	opt, err := New(2, []Target{{R: r1, Constrained: true}, {}}, Options{Seed: 8, StepSize: 0.4, MaxStep: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	x := drive(t, opt, eval, linalg.Vector{0.9, 0.5}, 100)
	f := eval(x)
	if f[0] > r1+0.05 {
		t.Fatalf("constraint violated at convergence: f1 = %v > %v (x=%v)", f[0], r1, x)
	}
	// f2 should be meaningfully better than at a1 (the constraint center):
	// the optimum sits on the constraint boundary toward a2.
	atA1 := a2.Sub(a1).Dot(a2.Sub(a1))
	if f[1] > atA1 {
		t.Fatalf("f2 = %v worse than trivially feasible point %v", f[1], atA1)
	}
}

func TestStationaryPointSmallProbe(t *testing.T) {
	// Single objective already at optimum: steps should stay local.
	rng := rand.New(rand.NewSource(9))
	anchor := linalg.Vector{0.5, 0.5}
	eval := quadratic([]linalg.Vector{anchor}, 0, rng)
	opt, err := New(2, []Target{{}}, Options{Seed: 10, MaxStep: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	x := drive(t, opt, eval, anchor, 30)
	if d := x.Dist(anchor); d > 0.2 {
		t.Fatalf("drifted %v from optimum", d)
	}
}

func TestSetTargets(t *testing.T) {
	opt, _ := New(2, []Target{{}, {}}, Options{})
	if err := opt.SetTargets([]Target{{R: 1, Constrained: true}}); err == nil {
		t.Fatal("wrong target count accepted")
	}
	if err := opt.SetTargets([]Target{{R: 1, Constrained: true}, {}}); err != nil {
		t.Fatal(err)
	}
}

func TestProposeCountAndTrustRegion(t *testing.T) {
	opt, _ := New(3, []Target{{}}, Options{Seed: 11, MaxStep: 0.1})
	x := linalg.Vector{0.5, 0.5, 0.5}
	cands, err := opt.Propose(x, []float64{1}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 5 {
		t.Fatalf("proposals = %d, want 5", len(cands))
	}
	for i, c := range cands {
		if d := c.Dist(x); d > 0.1+1e-9 {
			t.Fatalf("candidate %d at distance %v > trust radius", i, d)
		}
		for _, v := range c {
			if v < 0 || v > 1 {
				t.Fatalf("candidate %d leaves unit cube: %v", i, c)
			}
		}
	}
	if got, _ := opt.Propose(x, []float64{1}, 0); got != nil {
		t.Fatal("n=0 should return nil")
	}
}

// TestTheorem1ProxyMonotonicity is the empirical check of Theorem 1: if a
// dominates b (componentwise <=, somewhere <), then ProxyScore(a) <
// ProxyScore(b) for any positive c and ρ < 1 — so no dominated point can
// minimize the proxy.
func TestTheorem1ProxyMonotonicity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(4)
		a := make([]float64, k)
		b := make([]float64, k)
		targets := make([]Target, k)
		c := make([]float64, k)
		for i := 0; i < k; i++ {
			a[i] = rng.NormFloat64() * 5
			b[i] = a[i] + rng.Float64()*3 // b >= a componentwise
			targets[i] = Target{R: rng.NormFloat64() * 5, Constrained: rng.Intn(2) == 0}
			c[i] = 0.1 + rng.Float64()
		}
		b[rng.Intn(k)] += 0.5 // strict somewhere
		rho := rng.Float64()*1.8 - 0.9
		return ProxyScore(a, targets, c, rho) < ProxyScore(b, targets, c, rho)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestSection63Counterexample reproduces the paper's weighted-sum failure:
// QS vectors (5,5) and (0,7) with r = (6,6). Equal-weight sum prefers
// (0,7), which violates r2; the proxy with ρ > 0 prefers the feasible
// (5,5).
func TestSection63Counterexample(t *testing.T) {
	feasible := []float64{5, 5}
	infeasible := []float64{0, 7}
	targets := []Target{{R: 6, Constrained: true}, {R: 6, Constrained: true}}
	// Weighted sum (ρ = 0, constraints ignored): infeasible point scores
	// lower (wins) — the failure mode the paper calls out.
	if ProxyScore(infeasible, targets, nil, 0) >= ProxyScore(feasible, targets, nil, 0) {
		t.Fatal("setup broken: weighted sum should prefer (0,7)")
	}
	// PALD's full (SP2) ordering keeps the constraints: (5,5) must win.
	if !Better(feasible, infeasible, targets, nil, 0.5) {
		t.Fatal("PALD ordering failed to prefer the feasible (5,5)")
	}
	if Better(infeasible, feasible, targets, nil, 0.5) {
		t.Fatal("PALD ordering is not antisymmetric here")
	}
}

func TestMaxRegretAndBetter(t *testing.T) {
	targets := []Target{{R: 1, Constrained: true}, {}}
	if got := MaxRegret([]float64{3, 100}, targets); got != 2 {
		t.Fatalf("MaxRegret = %v, want 2", got)
	}
	if got := MaxRegret([]float64{0.5, 100}, targets); got != 0 {
		t.Fatalf("satisfied MaxRegret = %v, want 0", got)
	}
	// Equal regret → proxy decides.
	if !Better([]float64{0.5, 1}, []float64{0.5, 2}, targets, nil, 0) {
		t.Fatal("proxy tie-break failed")
	}
}

func TestChooseRhoNoViolations(t *testing.T) {
	g := linalg.FromRows([][]float64{{1, 0}, {0, 1}})
	if got := chooseRho(g, linalg.Vector{0.5, 0.5}, nil); got != 0 {
		t.Fatalf("rho = %v, want 0 without violations", got)
	}
}

func TestChooseRhoAlignedGradients(t *testing.T) {
	// Identical gradients: any rho < 1 keeps alignment positive; the
	// chosen rho must keep the violated objective's alignment >= 0.
	g := linalg.FromRows([][]float64{{1, 1}, {1, 1}})
	c := linalg.Vector{0.5, 0.5}
	rho := chooseRho(g, c, []int{0})
	if rho >= 1 {
		t.Fatalf("rho = %v, want < 1", rho)
	}
	// Alignment of violated objective 0 must be nonnegative.
	a := c[0]*(1-rho)*g.At(0, 0) + c[1]*g.At(0, 1)
	if a < 0 {
		t.Fatalf("alignment %v < 0", a)
	}
}

func TestProxyScoreUnconstrainedIsPlainSum(t *testing.T) {
	f := []float64{2, 3}
	targets := []Target{{}, {}}
	if got := ProxyScore(f, targets, nil, 0.7); math.Abs(got-5) > 1e-12 {
		t.Fatalf("unconstrained proxy = %v, want 5 regardless of rho", got)
	}
}

package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"tempo"
)

// runQuery is the `tempoctl query` subcommand: a client for tempod's
// ad-hoc query API (POST /v1/clusters/{id}/query, and the SSE stream
// variant with -stream).
func runQuery(args []string) error {
	fs := flag.NewFlagSet("tempoctl query", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", "http://localhost:8080", "tempod base URL")
		clusterID = fs.String("cluster", "", "cluster id (required)")
		planArg   = fs.String("plan", "", "query plan: inline JSON, a file path, or - for stdin (required)")
		stream    = fs.Bool("stream", false, "subscribe to the live SSE stream and print per-tick deltas until the session completes")
		asJSON    = fs.Bool("json", false, "print raw JSON (one-shot: the full result; stream: one delta object per line)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *clusterID == "" {
		return errors.New("-cluster is required")
	}
	planText, err := loadPlanText(*planArg)
	if err != nil {
		return err
	}
	// Validate client-side first, so a bad plan fails with the offending
	// operator named instead of a round trip.
	if _, err := tempo.ParseQueryPlan(strings.NewReader(planText)); err != nil {
		return err
	}
	if *stream {
		return streamQuery(os.Stdout, *addr, *clusterID, planText, *asJSON)
	}
	return oneShotQuery(os.Stdout, *addr, *clusterID, planText, *asJSON)
}

// loadPlanText resolves the -plan argument: "-" reads stdin, a leading
// "{" is inline JSON, anything else is a file path.
func loadPlanText(arg string) (string, error) {
	switch {
	case arg == "":
		return "", errors.New("-plan is required")
	case arg == "-":
		b, err := io.ReadAll(os.Stdin)
		if err != nil {
			return "", fmt.Errorf("reading plan from stdin: %w", err)
		}
		return string(b), nil
	case strings.HasPrefix(strings.TrimSpace(arg), "{"):
		return arg, nil
	default:
		b, err := os.ReadFile(arg)
		if err != nil {
			return "", fmt.Errorf("reading plan file: %w", err)
		}
		return string(b), nil
	}
}

// apiError renders a non-2xx tempod response, surfacing the {error, code}
// envelope when present.
func apiError(resp *http.Response) error {
	raw, _ := io.ReadAll(resp.Body)
	return apiErrorRaw(resp.Status, raw)
}

func apiErrorRaw(status string, raw []byte) error {
	var env struct {
		Error string `json:"error"`
		Code  string `json:"code"`
	}
	if err := json.Unmarshal(raw, &env); err == nil && env.Code != "" {
		return fmt.Errorf("%s: %s: %s", status, env.Code, env.Error)
	}
	return fmt.Errorf("%s: %s", status, strings.TrimSpace(string(raw)))
}

// retryableResponse reports whether a response is a shed-before-execution
// refusal (overload, degraded store, drain) worth retrying after its
// Retry-After hint.
func retryableResponse(resp *http.Response, raw []byte) bool {
	if resp.StatusCode != http.StatusServiceUnavailable && resp.StatusCode != http.StatusTooManyRequests {
		return false
	}
	var env struct {
		Code string `json:"code"`
	}
	if json.Unmarshal(raw, &env) != nil {
		return false
	}
	switch env.Code {
	case "overloaded", "degraded", "unavailable", "subscription_limit":
		return true
	}
	return false
}

// retryWait returns the wait before retry attempt k: 250ms·2^k, stretched
// to any integer-seconds Retry-After hint the server sent.
func retryWait(attempt int, resp *http.Response) time.Duration {
	d := 250 * time.Millisecond << uint(attempt)
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
		if ra := time.Duration(secs) * time.Second; ra > d {
			d = ra
		}
	}
	return d
}

// oneShotClient bounds every one-shot API call end to end; streaming uses
// its own transport (a stream legitimately lives for minutes).
var oneShotClient = &http.Client{Timeout: 30 * time.Second}

func oneShotQuery(w io.Writer, addr, id, planText string, asJSON bool) error {
	const attempts = 3
	var raw []byte
	for attempt := 0; ; attempt++ {
		resp, err := oneShotClient.Post(addr+"/v1/clusters/"+id+"/query", "application/json", strings.NewReader(planText))
		if err != nil {
			return err
		}
		raw, err = io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return err
		}
		if resp.StatusCode == http.StatusOK {
			break
		}
		if attempt < attempts-1 && retryableResponse(resp, raw) {
			time.Sleep(retryWait(attempt, resp))
			continue
		}
		return apiErrorRaw(resp.Status, raw)
	}
	if asJSON {
		fmt.Fprintln(w, strings.TrimSpace(string(raw)))
		return nil
	}
	var res tempo.QueryResult
	if err := json.Unmarshal(raw, &res); err != nil {
		return fmt.Errorf("decoding result: %w", err)
	}
	fmt.Fprintf(w, "ticks: %d, rows: %d", res.Ticks, len(res.Rows))
	if res.Truncated {
		fmt.Fprint(w, " (truncated by limit)")
	}
	fmt.Fprintln(w)
	for i := range res.Rows {
		fmt.Fprintln(w, formatRow(&res.Rows[i]))
	}
	return nil
}

func streamQuery(w io.Writer, addr, id, planText string, asJSON bool) error {
	u := addr + "/v1/clusters/" + id + "/query/stream?plan=" + url.QueryEscape(planText)
	// No end-to-end timeout — a standing subscription legitimately lives
	// until the session completes — but the server must start answering
	// promptly, so only the response header is deadlined.
	client := &http.Client{Transport: &http.Transport{ResponseHeaderTimeout: 30 * time.Second}}
	resp, err := client.Get(u)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiError(resp)
	}
	var event, data string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		case line == "" && event != "":
			done, err := printStreamEvent(w, event, data, asJSON)
			if err != nil || done {
				return err
			}
			event, data = "", ""
		}
	}
	return sc.Err()
}

// printStreamEvent renders one SSE event; done reports a terminal event.
func printStreamEvent(w io.Writer, event, data string, asJSON bool) (done bool, err error) {
	switch event {
	case "result":
		if asJSON {
			fmt.Fprintln(w, data)
			return false, nil
		}
		var delta struct {
			Tick int              `json:"tick"`
			Rows []tempo.QueryRow `json:"rows"`
		}
		if err := json.Unmarshal([]byte(data), &delta); err != nil {
			return false, fmt.Errorf("decoding result event: %w", err)
		}
		for i := range delta.Rows {
			fmt.Fprintln(w, formatRow(&delta.Rows[i]))
		}
		return false, nil
	case "done":
		if asJSON {
			fmt.Fprintln(w, data)
		} else {
			fmt.Fprintf(w, "done: %s\n", data)
		}
		return true, nil
	case "error":
		var env struct {
			Error string `json:"error"`
			Code  string `json:"code"`
		}
		if err := json.Unmarshal([]byte(data), &env); err != nil {
			return true, fmt.Errorf("stream error: %s", data)
		}
		return true, fmt.Errorf("stream error: %s: %s", env.Code, env.Error)
	default:
		return false, nil
	}
}

// formatRow renders one result row on one line, map keys sorted so the
// output is deterministic.
func formatRow(r *tempo.QueryRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "tick=%d t=%gs", r.Tick, r.TimeSeconds)
	if r.WindowToSeconds < 0 {
		fmt.Fprintf(&b, " window=[%gs,∞)", r.WindowFromSeconds)
	} else {
		fmt.Fprintf(&b, " window=[%gs,%gs)", r.WindowFromSeconds, r.WindowToSeconds)
	}
	appendSorted := func(label string, m map[string]string) {
		if len(m) == 0 {
			return
		}
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintf(&b, " %s{", label)
		for i, k := range keys {
			if i > 0 {
				b.WriteString(" ")
			}
			fmt.Fprintf(&b, "%s=%s", k, m[k])
		}
		b.WriteString("}")
	}
	appendSorted("group", r.Group)
	appendSorted("strings", r.Strings)
	if len(r.Values) > 0 {
		keys := make([]string, 0, len(r.Values))
		for k := range r.Values {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteString(" values{")
		for i, k := range keys {
			if i > 0 {
				b.WriteString(" ")
			}
			fmt.Fprintf(&b, "%s=%g", k, r.Values[k])
		}
		b.WriteString("}")
	}
	return b.String()
}

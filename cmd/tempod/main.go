// Command tempod is Tempo's serving daemon: a sharded control plane that
// hosts many independent tenant clusters — each a full control loop
// (workload, schedule stream, incremental QS accumulators, What-if Model)
// — behind an HTTP/JSON API.
//
// Usage:
//
//	tempod -addr :8080 -shards 4 -workers 2
//
// Create a cluster from a scenario spec, then drive it:
//
//	curl -X POST localhost:8080/clusters -d '{"id":"c1","spec":'"$(cat spec.json)"'}'
//	curl -X POST localhost:8080/clusters/c1/tick
//	curl 'localhost:8080/clusters/c1/qs?from=0s&to=30m'
//	curl -X POST localhost:8080/clusters/c1/whatif -d '{"candidates":[{"deadline":{"weight":3}}]}'
//	curl localhost:8080/clusters/c1/report
//	curl localhost:8080/metrics
//
// Clusters are pinned to shards by id hash; each shard's fixed worker
// pool drives control-loop ticks, so tick concurrency is bounded by
// shards × workers no matter how many clusters are resident. Ticks on one
// cluster are serialized; reports remain bit-identical to sequential
// scenario runs (cmd/loadgen asserts this under concurrent traffic).
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tempo/internal/service"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		shards   = flag.Int("shards", 4, "cluster shards")
		workers  = flag.Int("workers", 2, "tick workers per shard")
		queue    = flag.Int("queue", 64, "pending-tick queue depth per shard")
		par      = flag.Int("parallelism", 1, "per-cluster what-if worker pool (results identical for any value)")
		pprofSrv = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060); empty disables")
	)
	flag.Parse()
	if err := run(*addr, *shards, *workers, *queue, *par, *pprofSrv); err != nil {
		fmt.Fprintln(os.Stderr, "tempod:", err)
		os.Exit(1)
	}
}

func run(addr string, shards, workers, queue, parallelism int, pprofAddr string) error {
	svc := service.New(service.Config{
		Shards:          shards,
		WorkersPerShard: workers,
		QueueDepth:      queue,
		Parallelism:     parallelism,
	})
	defer svc.Close()

	if pprofAddr != "" {
		// Profiling stays off the service listener (and off by default):
		// tempod's API may face untrusted clients, while /debug/pprof is an
		// operator tool. Perf work measures here instead of guessing —
		//   go tool pprof http://<pprof-addr>/debug/pprof/profile
		//   go tool pprof http://<pprof-addr>/debug/pprof/heap
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			if err := http.ListenAndServe(pprofAddr, mux); err != nil {
				fmt.Fprintln(os.Stderr, "tempod: pprof listener:", err)
			}
		}()
		fmt.Printf("tempod: pprof on %s\n", pprofAddr)
	}

	srv := &http.Server{Addr: addr, Handler: svc.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("tempod: serving on %s (%d shards x %d workers)\n", addr, shards, workers)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		fmt.Printf("tempod: %v, draining\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return err
		}
		return nil
	}
}

package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"tempo"
)

// StreamResult is the data payload of one SSE "result" event: the delta
// rows tick produced under the standing plan. Replaying every event's
// rows last-write-wins keyed by (window, group) reconstructs exactly the
// one-shot POST /v1/clusters/{id}/query result over the same window —
// the two modes share the Runner, so they cannot drift.
type StreamResult struct {
	Tick int              `json:"tick"`
	Rows []tempo.QueryRow `json:"rows"`
}

// StreamDone is the data payload of the terminal "done" event, sent once
// the session has exhausted its iteration budget and every tick has been
// delivered.
type StreamDone struct {
	Ticks int `json:"ticks"`
}

// handleQueryStream answers GET /v1/clusters/{id}/query/stream?plan=<json>:
// a standing query subscription over server-sent events. Each committed
// control interval is pushed through the plan incrementally and the
// changed rows stream out as "result" events; idle periods carry
// ": keepalive" comments every Config.StreamHeartbeat. The stream ends
// with "done" when the session completes, or a terminal "error" event if
// the cluster is deleted mid-stream (code "not_found") or the server
// begins draining (code "unavailable"). Admission is capped at
// Config.MaxStreams live subscriptions (429 subscription_limit beyond
// that).
func (s *Service) handleQueryStream(w http.ResponseWriter, r *http.Request) {
	c, err := s.Get(r.PathValue("id"))
	if err != nil {
		writeServiceError(w, err)
		return
	}
	planText := r.URL.Query().Get("plan")
	if planText == "" {
		writeError(w, http.StatusBadRequest, CodeInvalidPlan, errors.New("missing plan query parameter"))
		return
	}
	plan, err := tempo.ParseQueryPlan(strings.NewReader(planText))
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidPlan, err)
		return
	}
	runner, err := c.Session().NewQueryRunner(plan)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidPlan, err)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, CodeInternal, errors.New("streaming unsupported by connection"))
		return
	}
	if s.streams.n.Add(1) > int64(s.cfg.MaxStreams) {
		s.streams.n.Add(-1)
		writeError(w, http.StatusTooManyRequests, CodeStreamLimit,
			fmt.Errorf("subscription limit reached (%d live streams)", s.cfg.MaxStreams))
		return
	}
	defer s.streams.n.Add(-1)

	// A standing subscription legitimately outlives the http.Server's
	// WriteTimeout (tempod sets one against slow-loris peers); clear the
	// connection's write deadline for this response only. The read
	// deadline must go too: net/http keeps the whole-request ReadTimeout
	// armed during the handler, and when it fires the server's background
	// read fails and cancels r.Context() — silently severing every stream
	// older than the timeout with no terminal event. Writers that don't
	// support deadlines (plain httptest recorders) just keep the default.
	rc := http.NewResponseController(w)
	rc.SetWriteDeadline(time.Time{}) //nolint:errcheck // best-effort; heartbeats cover the rest
	rc.SetReadDeadline(time.Time{})  //nolint:errcheck // best-effort, same as above

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	emit := func(event string, v any) bool {
		b, err := json.Marshal(v)
		if err != nil {
			return false
		}
		_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, b)
		return err == nil
	}

	ctx := r.Context()
	heartbeat := time.NewTicker(s.cfg.StreamHeartbeat)
	defer heartbeat.Stop()
	next := 0 // next tick to push through the runner
	for {
		// Snapshot the notification channel BEFORE reading progress: a tick
		// that commits between the reads closes this exact channel, so the
		// select below wakes immediately instead of missing it.
		ch := c.changed()
		if c.isDeleted() {
			emit("error", ErrorEnvelope{Error: "cluster deleted", Code: CodeNotFound})
			return
		}
		done := c.Session().Done()
		ticks := c.Session().Ticks()
		for next < ticks {
			sched := c.Session().ObservedSchedule(next)
			rows, err := runner.PushTick(next, sched)
			if err != nil {
				emit("error", ErrorEnvelope{Error: err.Error(), Code: CodeBadRequest})
				return
			}
			if len(rows) > 0 {
				if !emit("result", StreamResult{Tick: next, Rows: rows}) {
					return
				}
			}
			next++
		}
		flusher.Flush()
		if done {
			emit("done", StreamDone{Ticks: next})
			flusher.Flush()
			return
		}
		select {
		case <-ctx.Done():
			return
		case <-s.quit:
			// Server drain: tell the subscriber explicitly instead of letting
			// it hang until heartbeat death. "unavailable" is retryable — the
			// client reconnects elsewhere (or later) and replays from its own
			// cursor.
			emit("error", ErrorEnvelope{Error: "server draining", Code: CodeUnavailable})
			flusher.Flush()
			return
		case <-ch:
		case <-heartbeat.C:
			if _, err := fmt.Fprint(w, ": keepalive\n\n"); err != nil {
				return
			}
			flusher.Flush()
		}
	}
}

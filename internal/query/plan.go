// Package query is tempod's ad-hoc metric query layer: a small composable
// operator algebra (filter / map / group_by / window / aggregate / limit)
// over the canonical schedule-event stream (cluster.Schedule.Events), with
// incremental evaluation — a standing query advances O(one tick's events)
// per control interval instead of rescanning history.
//
// Queries arrive as a versioned JSON plan (see Plan), are validated and
// depth/cardinality-bounded up front, and compile to a Runner that is fed
// one observed schedule per completed control interval. The same Runner
// serves both evaluation modes the service exposes: one-shot (push every
// completed tick, read Result) and standing subscriptions (push each tick
// as it commits; PushTick returns exactly the result rows that tick
// changed, which the service streams to clients over SSE). The two modes
// agree by construction: a client that applies a subscription's per-tick
// deltas last-write-wins ends with the one-shot result.
//
// Three relations are derived from the stream: "events" (the raw stream),
// and "jobs" / "tasks" (submit/finish and start/end pairs, assembled by
// the same qs.Accumulator machinery the incremental QS path uses). The
// aggregate operator has two families: generic reductions (count, sum,
// avg, min, max, p50/p90/p95/p99) over any numeric column, and a "slos"
// family that evaluates qs.Template vectors through a per-tick
// accumulator — which is how qs.EvalStream itself is re-expressed as a
// plan, bit-identically to the oracle (TestQueryVsOracleGoldens).
package query

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"time"

	"tempo/internal/qs"
)

// Version is the query API version this package implements. Plans must
// declare it; unknown versions are rejected up front so a future v2 can
// change semantics without silently reinterpreting old plans.
const Version = 1

// Validation bounds. Plans are untrusted input on a serving path, so
// every dimension a client controls is capped before compilation.
const (
	// MaxOps bounds the operator pipeline depth.
	MaxOps = 16
	// MaxAggs bounds the aggregate expressions of one aggregate operator.
	MaxAggs = 32
	// MaxSLOs bounds the qs.Template list of an slos aggregate. Sized to
	// clear the stress-1000 tier's per-tenant SLO sets with headroom.
	MaxSLOs = 8192
	// MaxIn bounds a filter's "in" membership list.
	MaxIn = 64
	// MaxGroupKeys bounds group_by's key columns.
	MaxGroupKeys = 4
	// DefaultMaxGroups bounds the distinct (window, group) cells a runner
	// will materialize before PushTick fails; see Runner.MaxGroups.
	DefaultMaxGroups = 10000
	// MaxLimit bounds limit.n.
	MaxLimit = 1 << 20
)

// Plan is the JSON wire form of one query.
//
// Grammar (version 1):
//
//	{
//	  "version": 1,
//	  "source": "events" | "jobs" | "tasks",
//	  "from": "30m",            // optional session-time window over rows
//	  "to":   "2h",             // optional; absent = unbounded
//	  "ops": [
//	    {"op":"filter", "field":"tenant", "eq":"etl"},
//	    {"op":"filter", "field":"time", "ge":"30m", "lt":"90m"},
//	    {"op":"map", "fields":["tenant","response_seconds"]},
//	    {"op":"group_by", "by":["tenant"]},
//	    {"op":"window", "size":"30m"},      // or "tick"
//	    {"op":"aggregate",
//	     "aggs":[{"fn":"p99","field":"response_seconds","as":"p99_response"}]},
//	    {"op":"limit", "n":100}
//	  ]
//	}
//
// Filter comparator operands are strings; against numeric columns they
// parse as a Go duration ("30m" = 1800 seconds) or a plain number.
// The slos aggregate form replaces "aggs" with "slos", a qs.Template
// list, and evaluates the QS vector per control interval.
type Plan struct {
	Version int      `json:"version"`
	Source  string   `json:"source"`
	From    string   `json:"from,omitempty"`
	To      string   `json:"to,omitempty"`
	Ops     []OpSpec `json:"ops,omitempty"`
}

// OpSpec is one operator of a plan's pipeline, discriminated by Op. Only
// the fields of the selected operator may be set; the validator rejects
// stray ones so typos fail loudly instead of silently changing semantics.
type OpSpec struct {
	Op string `json:"op"`

	// filter
	Field string   `json:"field,omitempty"`
	Eq    *string  `json:"eq,omitempty"`
	In    []string `json:"in,omitempty"`
	Ge    *string  `json:"ge,omitempty"`
	Gt    *string  `json:"gt,omitempty"`
	Le    *string  `json:"le,omitempty"`
	Lt    *string  `json:"lt,omitempty"`

	// map
	Fields []string `json:"fields,omitempty"`

	// group_by
	By []string `json:"by,omitempty"`

	// window
	Size string `json:"size,omitempty"`

	// aggregate
	Aggs []AggSpec     `json:"aggs,omitempty"`
	SLOs []qs.Template `json:"slos,omitempty"`

	// limit
	N int `json:"n,omitempty"`
}

// AggSpec is one generic aggregate expression.
type AggSpec struct {
	// Fn is the reduction: count, sum, avg, min, max, p50, p90, p95, p99.
	Fn string `json:"fn"`
	// Field is the numeric input column; count takes none.
	Field string `json:"field,omitempty"`
	// As names the output column; empty defaults to fn or fn_field.
	As string `json:"as,omitempty"`
}

// PlanError is a validation failure. Op is the index of the offending
// operator (-1 for plan-level problems) and OpName its discriminator, so
// rejection messages always name what was wrong and where.
type PlanError struct {
	Op     int
	OpName string
	Msg    string
}

func (e *PlanError) Error() string {
	if e.Op < 0 {
		return "query: invalid plan: " + e.Msg
	}
	return fmt.Sprintf("query: invalid plan: ops[%d] (%s): %s", e.Op, e.OpName, e.Msg)
}

func planErrf(op int, opName, format string, args ...any) *PlanError {
	return &PlanError{Op: op, OpName: opName, Msg: fmt.Sprintf(format, args...)}
}

// ParsePlan decodes and validates a plan from r. Unknown fields are
// rejected so client typos fail loudly.
func ParsePlan(r io.Reader) (*Plan, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var p Plan
	if err := dec.Decode(&p); err != nil {
		return nil, &PlanError{Op: -1, Msg: "decoding plan: " + err.Error()}
	}
	if dec.More() {
		return nil, &PlanError{Op: -1, Msg: "trailing data after plan"}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// fieldKind classifies a relation column.
type fieldKind uint8

const (
	kindString fieldKind = iota
	kindNumber
	kindTime // the row's session-time anchor; compares like a duration
)

// schema maps column names to kinds and positions. str and num list the
// string and numeric columns in relation order; "time" is implicit.
type schema struct {
	str []string
	num []string
}

func (s *schema) lookup(field string) (fieldKind, int, bool) {
	if field == "time" {
		return kindTime, 0, true
	}
	for i, n := range s.str {
		if n == field {
			return kindString, i, true
		}
	}
	for i, n := range s.num {
		if n == field {
			return kindNumber, i, true
		}
	}
	return 0, 0, false
}

func (s *schema) names() []string {
	out := make([]string, 0, 1+len(s.str)+len(s.num))
	out = append(out, "time")
	out = append(out, s.str...)
	out = append(out, s.num...)
	return out
}

// The source relations and their schemas. Numeric time-like columns are
// seconds; "time" is the row's session-time anchor (event time, job
// submit, task start — offset by tick × interval).
var sourceSchemas = map[string]*schema{
	"events": {
		str: []string{"kind", "tenant", "job", "task_kind", "outcome"},
		num: []string{"delta", "attempt", "deadline_seconds", "completed", "killed"},
	},
	"jobs": {
		str: []string{"tenant"},
		num: []string{"submit_seconds", "finish_seconds", "response_seconds", "deadline_seconds", "completed"},
	},
	"tasks": {
		str: []string{"tenant", "task_kind", "outcome"},
		num: []string{"start_seconds", "end_seconds", "duration_seconds"},
	},
}

// sourceNames lists the valid sources in a fixed order for error text.
var sourceNames = []string{"events", "jobs", "tasks"}

// parseOperand parses one comparator operand against a numeric or time
// column: a Go duration string (seconds) or a plain number.
func parseOperand(s string) (float64, error) {
	if d, err := time.ParseDuration(s); err == nil {
		return d.Seconds(), nil
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("operand %q is neither a duration nor a number", s)
	}
	return f, nil
}

// parseBound parses a plan-level window bound ("" = unset).
func parseBound(s string) (time.Duration, bool, error) {
	if s == "" {
		return 0, false, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, false, err
	}
	return d, true, nil
}

// Validate checks the plan against the version-1 grammar and its bounds.
// It is the complete admission check: a plan that validates compiles.
func (p *Plan) Validate() error {
	if p.Version != Version {
		return &PlanError{Op: -1, Msg: fmt.Sprintf("unsupported version %d (this tempod speaks version %d)", p.Version, Version)}
	}
	sch, ok := sourceSchemas[p.Source]
	if !ok {
		return &PlanError{Op: -1, Msg: fmt.Sprintf("unknown source %q (want one of %v)", p.Source, sourceNames)}
	}
	from, hasFrom, err := parseBound(p.From)
	if err != nil {
		return &PlanError{Op: -1, Msg: "malformed from: " + err.Error()}
	}
	to, hasTo, err := parseBound(p.To)
	if err != nil {
		return &PlanError{Op: -1, Msg: "malformed to: " + err.Error()}
	}
	if (hasFrom && from < 0) || (hasTo && to < 0) {
		return &PlanError{Op: -1, Msg: "window bounds must be non-negative; windows are half-open [from, to)"}
	}
	if hasFrom && hasTo && to < from {
		return &PlanError{Op: -1, Msg: fmt.Sprintf("from must not exceed to; windows are half-open [from, to), got [%v, %v)", from, to)}
	}
	if len(p.Ops) > MaxOps {
		return &PlanError{Op: -1, Msg: fmt.Sprintf("%d operators exceed the depth bound %d", len(p.Ops), MaxOps)}
	}

	cur := sch // schema flowing into the next operator
	var sawGroupBy, sawWindow, sawAggregate, sawLimit bool
	groupKeys := 0
	for i := range p.Ops {
		op := &p.Ops[i]
		if sawLimit {
			return planErrf(i, op.Op, "no operator may follow limit")
		}
		switch op.Op {
		case "filter":
			if sawAggregate {
				return planErrf(i, op.Op, "filter must precede aggregate")
			}
			if err := validateFilter(i, op, cur); err != nil {
				return err
			}
		case "map":
			if sawAggregate || sawGroupBy {
				return planErrf(i, op.Op, "map must precede group_by and aggregate")
			}
			if len(op.Fields) == 0 {
				return planErrf(i, op.Op, "map needs at least one field")
			}
			next := &schema{}
			for _, f := range op.Fields {
				kind, _, ok := cur.lookup(f)
				if !ok {
					return planErrf(i, op.Op, "unknown field %q (have %v)", f, cur.names())
				}
				switch kind {
				case kindString:
					next.str = append(next.str, f)
				case kindNumber:
					next.num = append(next.num, f)
				case kindTime:
					// time is implicit on every row; projecting it is a no-op.
				}
			}
			cur = next
		case "group_by":
			if sawGroupBy {
				return planErrf(i, op.Op, "at most one group_by per plan")
			}
			if sawAggregate {
				return planErrf(i, op.Op, "group_by must precede aggregate")
			}
			if len(op.By) == 0 || len(op.By) > MaxGroupKeys {
				return planErrf(i, op.Op, "group_by takes 1..%d key fields, got %d", MaxGroupKeys, len(op.By))
			}
			for _, f := range op.By {
				kind, _, ok := cur.lookup(f)
				if !ok {
					return planErrf(i, op.Op, "unknown field %q (have %v)", f, cur.names())
				}
				if kind != kindString {
					return planErrf(i, op.Op, "group key %q must be a string column", f)
				}
			}
			sawGroupBy = true
			groupKeys = len(op.By)
		case "window":
			if sawWindow {
				return planErrf(i, op.Op, "at most one window per plan")
			}
			if sawAggregate {
				return planErrf(i, op.Op, "window must precede aggregate")
			}
			if op.Size != "tick" {
				d, err := time.ParseDuration(op.Size)
				if err != nil {
					return planErrf(i, op.Op, "size must be \"tick\" or a positive duration, got %q", op.Size)
				}
				if d <= 0 {
					return planErrf(i, op.Op, "size must be positive, got %v", d)
				}
			}
			sawWindow = true
		case "aggregate":
			if sawAggregate {
				return planErrf(i, op.Op, "at most one aggregate per plan")
			}
			if err := validateAggregate(i, op, cur, p.Source, sawGroupBy, sawWindow, p.Ops); err != nil {
				return err
			}
			sawAggregate = true
		case "limit":
			if op.N < 1 || op.N > MaxLimit {
				return planErrf(i, op.Op, "n must be in [1, %d], got %d", MaxLimit, op.N)
			}
			sawLimit = true
		case "":
			return planErrf(i, "?", "missing op discriminator")
		default:
			return planErrf(i, op.Op, "unknown operator (want filter, map, group_by, window, aggregate, or limit)")
		}
	}
	if sawGroupBy && !sawAggregate {
		return &PlanError{Op: -1, Msg: fmt.Sprintf("group_by over %d keys without an aggregate has no output", groupKeys)}
	}
	return nil
}

// validateFilter checks one filter operator against the flowing schema.
func validateFilter(i int, op *OpSpec, cur *schema) error {
	if op.Field == "" {
		return planErrf(i, op.Op, "filter needs a field")
	}
	kind, _, ok := cur.lookup(op.Field)
	if !ok {
		return planErrf(i, op.Op, "unknown field %q (have %v)", op.Field, cur.names())
	}
	comparators := 0
	if op.Eq != nil {
		comparators++
	}
	if len(op.In) > 0 {
		comparators++
		if len(op.In) > MaxIn {
			return planErrf(i, op.Op, "in list of %d exceeds the bound %d", len(op.In), MaxIn)
		}
		if kind != kindString {
			return planErrf(i, op.Op, "in requires a string column, %q is numeric", op.Field)
		}
	}
	ranged := 0
	for _, c := range []*string{op.Ge, op.Gt, op.Le, op.Lt} {
		if c == nil {
			continue
		}
		ranged++
		if kind == kindString {
			return planErrf(i, op.Op, "range comparators require a numeric column, %q is a string", op.Field)
		}
		if _, err := parseOperand(*c); err != nil {
			return planErrf(i, op.Op, "%s", err.Error())
		}
	}
	if ranged > 0 {
		comparators++
	}
	if comparators == 0 {
		return planErrf(i, op.Op, "filter on %q needs a comparator (eq, in, or ge/gt/le/lt)", op.Field)
	}
	if comparators > 1 {
		return planErrf(i, op.Op, "filter on %q mixes comparator families; use separate filter ops", op.Field)
	}
	if op.Eq != nil && kind != kindString {
		if _, err := parseOperand(*op.Eq); err != nil {
			return planErrf(i, op.Op, "%s", err.Error())
		}
	}
	return nil
}

// aggFns is the generic reduction set. Quantile values are their q.
var aggFns = map[string]float64{
	"count": 0, "sum": 0, "avg": 0, "min": 0, "max": 0,
	"p50": 0.50, "p90": 0.90, "p95": 0.95, "p99": 0.99,
}

func isQuantile(fn string) bool { return len(fn) > 1 && fn[0] == 'p' }

// validateAggregate checks one aggregate operator (generic or slos form).
func validateAggregate(i int, op *OpSpec, cur *schema, source string, grouped, windowed bool, ops []OpSpec) error {
	if len(op.Aggs) > 0 && len(op.SLOs) > 0 {
		return planErrf(i, op.Op, "aggs and slos are mutually exclusive")
	}
	if len(op.Aggs) == 0 && len(op.SLOs) == 0 {
		return planErrf(i, op.Op, "aggregate needs aggs or slos")
	}
	if len(op.SLOs) > 0 {
		if len(op.SLOs) > MaxSLOs {
			return planErrf(i, op.Op, "%d slos exceed the bound %d", len(op.SLOs), MaxSLOs)
		}
		if source != "events" {
			return planErrf(i, op.Op, "slos aggregate requires source \"events\" (the accumulator must observe the full stream), got %q", source)
		}
		if grouped {
			return planErrf(i, op.Op, "slos aggregate does not compose with group_by; each slo already names its queue")
		}
		for j := range ops[:i] {
			if ops[j].Op == "filter" || ops[j].Op == "map" {
				return planErrf(i, op.Op, "slos aggregate does not compose with %s; the accumulator must observe the full stream", ops[j].Op)
			}
		}
		if windowed {
			for j := range ops[:i] {
				if ops[j].Op == "window" && ops[j].Size != "tick" {
					return planErrf(i, op.Op, "slos aggregate windows by control interval; use window size \"tick\"")
				}
			}
		}
		for j, t := range op.SLOs {
			if err := t.Validate(); err != nil {
				return planErrf(i, op.Op, "slos[%d]: %s", j, err.Error())
			}
		}
		return nil
	}
	if len(op.Aggs) > MaxAggs {
		return planErrf(i, op.Op, "%d aggs exceed the bound %d", len(op.Aggs), MaxAggs)
	}
	seen := map[string]bool{}
	for j := range op.Aggs {
		a := &op.Aggs[j]
		if _, ok := aggFns[a.Fn]; !ok {
			return planErrf(i, op.Op, "aggs[%d]: unknown fn %q", j, a.Fn)
		}
		if a.Fn == "count" {
			if a.Field != "" {
				return planErrf(i, op.Op, "aggs[%d]: count takes no field", j)
			}
		} else {
			if a.Field == "" {
				return planErrf(i, op.Op, "aggs[%d]: %s needs a numeric field", j, a.Fn)
			}
			kind, _, ok := cur.lookup(a.Field)
			if !ok {
				return planErrf(i, op.Op, "aggs[%d]: unknown field %q (have %v)", j, a.Field, cur.names())
			}
			if kind == kindString {
				return planErrf(i, op.Op, "aggs[%d]: %s requires a numeric field, %q is a string", j, a.Fn, a.Field)
			}
		}
		name := a.outName()
		if seen[name] {
			return planErrf(i, op.Op, "aggs[%d]: duplicate output column %q (disambiguate with \"as\")", j, name)
		}
		seen[name] = true
	}
	return nil
}

// outName is the aggregate's output column name.
func (a *AggSpec) outName() string {
	if a.As != "" {
		return a.As
	}
	if a.Field == "" {
		return a.Fn
	}
	return a.Fn + "_" + a.Field
}

package tempo_test

import (
	"fmt"
	"time"

	"tempo"
)

// ExamplePredict shows the fast Schedule Predictor on a hand-built trace:
// two tenants share four containers under 2:1 weights.
func ExamplePredict() {
	trace := &tempo.Trace{
		Name:    "demo",
		Horizon: time.Hour,
		Jobs: []tempo.JobSpec{
			tempo.NewMapReduceJob("etl-1", "etl", 0,
				[]time.Duration{60 * time.Second, 60 * time.Second}, // 2 maps
				[]time.Duration{30 * time.Second}),                  // 1 reduce
			tempo.NewMapReduceJob("adhoc-1", "adhoc", 0,
				[]time.Duration{45 * time.Second}, nil),
		},
	}
	trace.Sort()
	cfg := tempo.ClusterConfig{
		TotalContainers: 4,
		Tenants: map[string]tempo.TenantConfig{
			"etl":   {Weight: 2},
			"adhoc": {Weight: 1},
		},
	}
	sched, err := tempo.Predict(trace, cfg)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, j := range sched.Jobs {
		fmt.Printf("%s finished at %s\n", j.ID, j.Finish)
	}
	// Output:
	// adhoc-1 finished at 45s
	// etl-1 finished at 1m30s
}

// ExampleTemplate_Eval evaluates QS metrics over a schedule: the loss
// functions Tempo minimizes.
func ExampleTemplate_Eval() {
	trace := &tempo.Trace{
		Horizon: time.Hour,
		Jobs: []tempo.JobSpec{
			tempo.NewMapReduceJob("j1", "etl", 0, []time.Duration{100 * time.Second}, nil),
			tempo.NewMapReduceJob("j2", "etl", 0, []time.Duration{200 * time.Second}, nil),
		},
	}
	trace.Jobs[0].Deadline = 90 * time.Second  // will be missed (needs 100s)
	trace.Jobs[1].Deadline = 300 * time.Second // comfortably met
	trace.Sort()
	sched, _ := tempo.Predict(trace, tempo.ClusterConfig{TotalContainers: 2})

	ajr := tempo.Template{Queue: "etl", Metric: tempo.AvgResponseTime}
	dl := tempo.Template{Queue: "etl", Metric: tempo.DeadlineViolations}
	forgiving := tempo.Template{Queue: "etl", Metric: tempo.DeadlineViolations, Slack: 0.25}
	end := sched.Horizon + time.Nanosecond
	fmt.Printf("QS_AJR = %.0f seconds\n", ajr.Eval(sched, 0, end))
	fmt.Printf("QS_DL  = %.2f\n", dl.Eval(sched, 0, end))
	fmt.Printf("QS_DL (25%% slack) = %.2f\n", forgiving.Eval(sched, 0, end))
	// Output:
	// QS_AJR = 150 seconds
	// QS_DL  = 0.50
	// QS_DL (25% slack) = 0.00
}

// ExampleGenerate synthesizes a workload from a statistical tenant profile
// — the Workload Generator of Tempo's What-if Model.
func ExampleGenerate() {
	profile := tempo.TenantProfile{
		Name:        "batch",
		JobsPerHour: 10,
		NumMaps:     tempo.Constant(4),
		MapSeconds:  tempo.Constant(30),
	}
	trace, err := tempo.Generate([]tempo.TenantProfile{profile},
		tempo.GenerateOptions{Horizon: 2 * time.Hour, Seed: 7})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("deterministic for a given seed: %d jobs, %d tasks each\n",
		len(trace.Jobs), trace.Jobs[0].TaskCount())
	// Output:
	// deterministic for a given seed: 25 jobs, 4 tasks each
}

// ExampleClusterConfig_WithSubTenants splits one queue into size-class
// sub-queues (the §10 hierarchical-tenant workaround).
func ExampleClusterConfig_WithSubTenants() {
	cfg := tempo.ClusterConfig{
		TotalContainers: 40,
		Tenants: map[string]tempo.TenantConfig{
			"analytics": {Weight: 2, MinShare: 10},
		},
	}
	split := cfg.WithSubTenants("analytics", []string{"analytics/small", "analytics/large"})
	for _, name := range []string{"analytics/small", "analytics/large"} {
		tc := split.Tenants[name]
		fmt.Printf("%s: weight %.1f, min %d\n", name, tc.Weight, tc.MinShare)
	}
	// Output:
	// analytics/small: weight 1.0, min 5
	// analytics/large: weight 1.0, min 5
}

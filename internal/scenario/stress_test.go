package scenario

import (
	"strings"
	"testing"
	"time"
)

// stressBase returns a minimal valid spec with one replicated group.
func stressBase() *Spec {
	return &Spec{
		Name:            "stress-test",
		Seed:            1,
		Capacity:        32,
		IntervalMinutes: 10,
		Iterations:      1,
		Tenants: []TenantSpec{
			{Name: "bulk", Profile: "best-effort", Count: 3, Scale: 0.5},
			{Name: "solo", Profile: "deadline-driven", Scale: 0.5},
		},
		SLOs:       []SLOSpec{{Metric: "utilization"}},
		Controller: ControllerSpec{Disabled: true},
	}
}

// TestExpandedTenants locks the replica naming scheme and the pass-through
// of singleton specs.
func TestExpandedTenants(t *testing.T) {
	spec := stressBase()
	got := spec.ExpandedTenants()
	want := []string{"bulk-000", "bulk-001", "bulk-002", "solo"}
	if len(got) != len(want) {
		t.Fatalf("expanded to %d tenants, want %d", len(got), len(want))
	}
	for i, name := range want {
		if got[i].Name != name {
			t.Errorf("replica %d named %q, want %q", i, got[i].Name, name)
		}
		if got[i].Count != 0 {
			t.Errorf("replica %d kept count %d, want 0", i, got[i].Count)
		}
	}
	names := spec.TenantNames()
	if len(names) != 4 || names[0] != "bulk-000" || names[3] != "solo" {
		t.Fatalf("TenantNames = %v", names)
	}
	if err := spec.Validate(); err != nil {
		t.Fatalf("valid stress spec rejected: %v", err)
	}
}

// TestExpandedTenantsValidation covers the failure modes replication adds:
// replica-name collisions, negative counts, and the replica cap.
func TestExpandedTenantsValidation(t *testing.T) {
	collide := stressBase()
	collide.Tenants = append(collide.Tenants, TenantSpec{Name: "bulk-001", Profile: "best-effort"})
	if err := collide.Validate(); err == nil || !strings.Contains(err.Error(), "duplicate tenant bulk-001") {
		t.Fatalf("replica collision not rejected: %v", err)
	}
	negative := stressBase()
	negative.Tenants[0].Count = -2
	if err := negative.Validate(); err == nil || !strings.Contains(err.Error(), "negative count") {
		t.Fatalf("negative count not rejected: %v", err)
	}
	huge := stressBase()
	huge.Tenants[0].Count = maxTenantCount + 1
	if err := huge.Validate(); err == nil || !strings.Contains(err.Error(), "cap") {
		t.Fatalf("over-cap count not rejected: %v", err)
	}
	// SLOs may target replicas by expanded name.
	slo := stressBase()
	slo.SLOs = append(slo.SLOs, SLOSpec{Queue: "bulk-002", Metric: "avg_response_time"})
	if err := slo.Validate(); err != nil {
		t.Fatalf("SLO on expanded replica rejected: %v", err)
	}
	slo.SLOs = append(slo.SLOs, SLOSpec{Queue: "bulk-003", Metric: "avg_response_time"})
	if err := slo.Validate(); err == nil {
		t.Fatal("SLO on nonexistent replica accepted")
	}
}

// TestStressBuildReplicasDiverge builds a replicated spec and checks the
// replicas draw independent workload streams: same profile, different
// arrivals.
func TestStressBuildReplicasDiverge(t *testing.T) {
	spec := stressBase()
	spec.Tenants[0].Count = 4
	spec.Tenants[0].Scale = 2
	rt, err := Build(spec, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rt.Profiles) != 5 {
		t.Fatalf("built %d profiles, want 5", len(rt.Profiles))
	}
	perTenant := map[string][]time.Duration{}
	for i := range rt.Trace.Jobs {
		j := &rt.Trace.Jobs[i]
		perTenant[j.Tenant] = append(perTenant[j.Tenant], j.Submit)
	}
	submits := map[string]bool{}
	replicas := 0
	for tenant, subs := range perTenant {
		if !strings.HasPrefix(tenant, "bulk-") {
			continue
		}
		replicas++
		key := ""
		for _, s := range subs {
			key += s.String() + ","
		}
		if submits[key] {
			t.Fatalf("two replicas share an identical arrival stream (%s)", tenant)
		}
		submits[key] = true
	}
	if replicas < 2 {
		t.Skipf("only %d replicas submitted jobs in the window; need 2 to compare", replicas)
	}
}

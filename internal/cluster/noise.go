package cluster

import (
	"math"
	"math/rand"
	"time"

	"tempo/internal/workload"
)

// NoiseModel injects the disturbances the paper reports in the production
// environment the prediction experiment (§8.1) was run against: "job and
// task failures, jobs killed by users and DBAs, and node blacklisting and
// restarts". With a NoiseModel the cluster run emulates a real deployment;
// without one it is the deterministic Schedule Predictor. The gap between
// the two is exactly what Table 2 measures.
type NoiseModel struct {
	// DurationSigma is the sigma of a mean-preserving lognormal
	// multiplicative jitter on task durations. It stands in for node
	// heterogeneity, interference, and blacklisting-induced slowdowns.
	DurationSigma float64
	// FailureProb is the per-attempt probability that a task dies partway
	// through and must restart from scratch.
	FailureProb float64
	// JobKillProb is the per-job probability that a user or DBA kills the
	// job before completion.
	JobKillProb float64
	// Seed drives the noise stream; runs are reproducible per seed.
	Seed int64
}

// DefaultNoise resembles the environment described in §8.1: noticeable
// duration variance, a few percent of failing tasks, and occasional user
// kills.
func DefaultNoise(seed int64) *NoiseModel {
	return &NoiseModel{
		DurationSigma: 0.25,
		FailureProb:   0.02,
		JobKillProb:   0.01,
		Seed:          seed,
	}
}

// attemptDuration returns the effective duration of one attempt and
// whether the attempt fails. A failing attempt occupies its container for
// a uniform fraction of its (jittered) duration before dying.
func (n *NoiseModel) attemptDuration(rng *rand.Rand, nominal time.Duration) (time.Duration, bool) {
	d := float64(nominal)
	if n.DurationSigma > 0 {
		// exp(σZ − σ²/2) has mean 1, so prediction stays unbiased.
		d *= math.Exp(n.DurationSigma*rng.NormFloat64() - n.DurationSigma*n.DurationSigma/2)
	}
	fail := n.FailureProb > 0 && rng.Float64() < n.FailureProb
	if fail {
		frac := 0.1 + 0.8*rng.Float64()
		d *= frac
	}
	if d < 1 {
		d = 1
	}
	return time.Duration(d), fail
}

// jobKillTime decides whether (and when) the job gets killed by a user.
func (n *NoiseModel) jobKillTime(rng *rand.Rand, spec *workload.JobSpec, submit time.Duration) (time.Duration, bool) {
	if n.JobKillProb <= 0 || rng.Float64() >= n.JobKillProb {
		return 0, false
	}
	// Users typically kill a job after watching it run for a while:
	// somewhere within a few multiples of its critical path.
	cp := spec.CriticalPath()
	if cp <= 0 {
		cp = time.Minute
	}
	at := submit + time.Duration((0.2+2.3*rng.Float64())*float64(cp))
	return at, true
}

package cluster

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"tempo/internal/workload"
)

// eventsSchedule synthesizes a structurally valid schedule from a seed,
// covering the corners the emulator rarely produces (zero-length attempts,
// incomplete jobs, identical timestamps, every outcome kind).
func eventsSchedule(seed int64, capacity, n int) *Schedule {
	rng := rand.New(rand.NewSource(seed))
	s := &Schedule{Capacity: capacity, Horizon: time.Hour}
	tenants := []string{"a", "b", "c"}
	outcomes := []TaskOutcome{TaskFinished, TaskPreempted, TaskFailed, TaskKilled, TaskTruncated}
	for i := 0; i < n; i++ {
		tenant := tenants[rng.Intn(len(tenants))]
		submit := time.Duration(rng.Int63n(int64(time.Hour)))
		dur := time.Duration(rng.Int63n(int64(20 * time.Minute)))
		job := JobRecord{
			ID:        fmt.Sprintf("%s-%03d", tenant, i),
			Tenant:    tenant,
			Submit:    submit,
			Finish:    submit + dur,
			Completed: rng.Intn(4) > 0,
			Killed:    rng.Intn(10) == 0,
		}
		if rng.Intn(2) == 0 {
			job.Deadline = submit + time.Duration(rng.Int63n(int64(30*time.Minute)))
		}
		s.Jobs = append(s.Jobs, job)
		for k := 0; k < 1+rng.Intn(3); k++ {
			start := submit + time.Duration(rng.Int63n(int64(10*time.Minute)))
			end := start
			if rng.Intn(8) > 0 { // leave some zero-length attempts
				end = start + time.Duration(rng.Int63n(int64(10*time.Minute)))
			}
			s.Tasks = append(s.Tasks, TaskRecord{
				JobID:   job.ID,
				Tenant:  tenant,
				Kind:    workload.TaskKind(rng.Intn(2)),
				Attempt: k + 1,
				Start:   start,
				End:     end,
				Outcome: outcomes[rng.Intn(len(outcomes))],
			})
		}
	}
	return s
}

// checkEventStream asserts the three stream invariants on one schedule:
// the stream is strictly totally ordered under EventLess, allocation
// deltas sum to zero with a never-negative running count (globally and per
// tenant), and replaying the stream reconstructs the schedule exactly.
func checkEventStream(t *testing.T, s *Schedule) {
	t.Helper()
	events := s.Events()
	if want := 2*len(s.Jobs) + 2*len(s.Tasks); len(events) != want {
		t.Fatalf("got %d events, want %d", len(events), want)
	}
	running := 0
	perTenant := map[string]int{}
	for i := range events {
		if i > 0 {
			prev, cur := &events[i-1], &events[i]
			if !EventLess(prev, cur) {
				t.Fatalf("stream not strictly ordered at %d: %+v !< %+v", i, *prev, *cur)
			}
			if EventLess(cur, prev) {
				t.Fatalf("EventLess not antisymmetric at %d", i)
			}
		}
		ev := &events[i]
		switch ev.Kind {
		case EventTaskStart:
			if ev.Delta != +1 {
				t.Fatalf("task-start delta %d", ev.Delta)
			}
		case EventTaskEnd:
			if ev.Delta != -1 {
				t.Fatalf("task-end delta %d", ev.Delta)
			}
		default:
			if ev.Delta != 0 {
				t.Fatalf("%s delta %d", ev.Kind, ev.Delta)
			}
		}
		running += ev.Delta
		perTenant[ev.Tenant] += ev.Delta
		if running < 0 {
			t.Fatalf("running allocation went negative at event %d (%+v)", i, *ev)
		}
		if perTenant[ev.Tenant] < 0 {
			t.Fatalf("tenant %s allocation went negative at event %d", ev.Tenant, i)
		}
	}
	if running != 0 {
		t.Fatalf("allocation deltas sum to %d, want 0", running)
	}
	for tenant, n := range perTenant {
		if n != 0 {
			t.Fatalf("tenant %s deltas sum to %d, want 0", tenant, n)
		}
	}
	got := ReplaySchedule(s.Capacity, s.Horizon, events)
	if !reflect.DeepEqual(got, s) {
		t.Fatalf("replayed schedule differs from original:\n got: %+v\nwant: %+v", got, s)
	}
	if !got.Equal(s) || got.Fingerprint() != s.Fingerprint() {
		t.Fatal("replayed schedule not Equal / fingerprint mismatch")
	}
}

// TestEventsEmulatedSchedule locks the stream invariants on a real emulated
// schedule, where task handoffs at identical instants are common.
func TestEventsEmulatedSchedule(t *testing.T) {
	profiles := []workload.TenantProfile{
		workload.DeadlineDriven("deadline", 1.5),
		workload.BestEffort("besteffort", 1.2),
	}
	trace, err := workload.Generate(profiles, workload.GenerateOptions{Horizon: 2 * time.Hour, Seed: 7, Name: "events"})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{TotalContainers: 24, Tenants: map[string]TenantConfig{
		"deadline":   {Weight: 2, MinShare: 4, SharePreemptTimeout: time.Minute},
		"besteffort": {Weight: 1},
	}}
	sched, err := Run(trace, cfg, Options{Horizon: 2 * time.Hour, Noise: DefaultNoise(3)})
	if err != nil {
		t.Fatal(err)
	}
	if len(sched.Tasks) == 0 {
		t.Fatal("emulated schedule has no tasks")
	}
	checkEventStream(t, sched)
}

// TestEventsEmptySchedule covers the degenerate stream.
func TestEventsEmptySchedule(t *testing.T) {
	s := &Schedule{Capacity: 4, Horizon: time.Minute}
	if got := s.Events(); len(got) != 0 {
		t.Fatalf("empty schedule produced %d events", len(got))
	}
	checkEventStream(t, s)
}

// TestFingerprintSensitivity spot-checks that every record field feeds the
// digest: flipping any one field must change the fingerprint and break
// Equal.
func TestFingerprintSensitivity(t *testing.T) {
	base := eventsSchedule(11, 8, 6)
	fp := base.Fingerprint()
	mutations := []func(*Schedule){
		func(s *Schedule) { s.Capacity++ },
		func(s *Schedule) { s.Horizon += time.Second },
		func(s *Schedule) { s.Jobs[0].Submit += time.Nanosecond },
		func(s *Schedule) { s.Jobs[0].Finish += time.Nanosecond },
		func(s *Schedule) { s.Jobs[0].Deadline += time.Second },
		func(s *Schedule) { s.Jobs[0].Completed = !s.Jobs[0].Completed },
		func(s *Schedule) { s.Jobs[0].Killed = !s.Jobs[0].Killed },
		func(s *Schedule) { s.Jobs[0].Tenant += "x" },
		func(s *Schedule) { s.Tasks[0].Start += time.Nanosecond },
		func(s *Schedule) { s.Tasks[0].End += time.Nanosecond },
		func(s *Schedule) { s.Tasks[0].Outcome = TaskPreempted },
		func(s *Schedule) { s.Tasks[0].Attempt++ },
		func(s *Schedule) { s.Tasks = s.Tasks[:len(s.Tasks)-1] },
	}
	for i, mutate := range mutations {
		m := ReplaySchedule(base.Capacity, base.Horizon, base.Events()) // deep copy
		mutate(m)
		if m.Fingerprint() == fp {
			t.Errorf("mutation %d left fingerprint unchanged", i)
		}
		if m.Equal(base) {
			t.Errorf("mutation %d left Equal true", i)
		}
	}
}

// FuzzScheduleEvents asserts, for arbitrary structurally valid schedules,
// that the event stream is totally ordered, that allocation deltas sum to
// zero (with a never-negative running count), and that replaying the
// stream reconstructs the schedule exactly.
func FuzzScheduleEvents(f *testing.F) {
	f.Add(int64(1), byte(8), byte(12))
	f.Add(int64(42), byte(1), byte(0))
	f.Add(int64(-7), byte(255), byte(40))
	f.Add(int64(977), byte(16), byte(3))
	f.Fuzz(func(t *testing.T, seed int64, capacity, n byte) {
		cap := int(capacity)
		if cap == 0 {
			cap = 1
		}
		checkEventStream(t, eventsSchedule(seed, cap, int(n)))
	})
}

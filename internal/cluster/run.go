package cluster

import (
	"sync"

	"tempo/internal/workload"
)

// Sim is a reusable simulation arena for the cluster emulator / Schedule
// Predictor: one value owns a scheduler whose event queue, per-job stage
// bookkeeping, task and attempt records, tenant state, and Schedule
// backing arrays are all recycled across runs. What-if candidate scoring
// runs thousands of simulations per control interval; recycling turns the
// per-run cost from tens of thousands of heap allocations into near zero.
//
// A Sim is not safe for concurrent use; give each worker its own (or Get
// one from the shared pool via Run). Results are bit-identical to a fresh
// simulator's — every piece of per-run state is reset by RunInto, and the
// scenario golden suite locks this.
type Sim struct {
	s scheduler
}

// NewSim returns an empty simulation arena.
func NewSim() *Sim {
	sm := &Sim{}
	sm.s.bind()
	return sm
}

// RunInto simulates the trace under the RM configuration, reusing the
// arena's storage, and returns the task schedule. The returned schedule
// BORROWS the arena's backing arrays: it is valid until the next RunInto
// on this Sim, which recycles them. Callers that retain the schedule past
// that point must call Detach first (the schedule then owns its arrays
// and the next run allocates fresh ones). It is deterministic: the same
// inputs (including the noise model's seed) always produce the same
// schedule, whatever the arena previously ran.
func (sm *Sim) RunInto(trace *workload.Trace, cfg Config, opts Options) (*Schedule, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := trace.Validate(); err != nil {
		return nil, err
	}
	s := &sm.s
	s.init(trace, cfg, opts)
	sched := s.run()
	// Keep the (possibly grown) record arrays for the next run.
	s.tasksBuf = sched.Tasks
	s.jobsBuf = sched.Jobs
	return sched, nil
}

// Detach releases the last returned schedule from the arena: its record
// arrays will not be recycled, so it stays valid indefinitely. The next
// RunInto allocates fresh backing.
func (sm *Sim) Detach() {
	sm.s.tasksBuf = nil
	sm.s.jobsBuf = nil
}

// simPool recycles simulation arenas across all callers of Run — under
// tempod every shard worker's control-loop ticks and what-if probes draw
// from it, so steady-state serving stops churning the heap. sync.Pool
// drops arenas under memory pressure, bounding retention.
var simPool = sync.Pool{New: func() any { return NewSim() }}

// Run simulates the trace under the RM configuration and returns the task
// schedule. It is deterministic: the same inputs (including the noise
// model's seed) always produce the same schedule.
//
// Run is a thin wrapper over a pooled Sim: the simulation's internal
// bookkeeping is recycled, while the returned schedule is detached (owned
// by the caller, retainable forever). Hot loops that score and discard
// many schedules should hold their own Sim and skip the detach.
func Run(trace *workload.Trace, cfg Config, opts Options) (*Schedule, error) {
	sm := simPool.Get().(*Sim)
	sched, err := sm.RunInto(trace, cfg, opts)
	sm.Detach()
	simPool.Put(sm)
	return sched, err
}

// Predict runs the fast deterministic Schedule Predictor (§7.2): the same
// scheduling code path as Run with noise disabled.
func Predict(trace *workload.Trace, cfg Config) (*Schedule, error) {
	return Run(trace, cfg, Options{})
}

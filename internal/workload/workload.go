// Package workload models the jobs that multi-tenant parallel databases
// run: DAGs of stages of parallel tasks, submitted over time by tenants.
//
// It provides the two workload sources Tempo's What-if Model needs (§7.1):
// replayable traces (possibly captured from a cluster run) and statistical
// generators trained on, or configured like, production workloads — Poisson
// arrivals and lognormal task durations, the shape the paper reports for
// Company ABC and that [40] reports for Taobao's production Hadoop cluster.
package workload

import (
	"fmt"
	"sort"
	"time"
)

// TaskKind distinguishes the two container pools of a MapReduce-style RM.
// Other engines (Spark, SQL) map onto the same two classes: input-parallel
// work and shuffle/aggregation work.
type TaskKind int

// Task kinds.
const (
	Map TaskKind = iota
	Reduce
)

func (k TaskKind) String() string {
	switch k {
	case Map:
		return "map"
	case Reduce:
		return "reduce"
	}
	return fmt.Sprintf("TaskKind(%d)", int(k))
}

// TaskSpec describes a single task: one container for Duration.
type TaskSpec struct {
	Kind     TaskKind      `json:"kind"`
	Duration time.Duration `json:"duration"`
}

// StageSpec is a set of parallel tasks that becomes runnable once all the
// stages it depends on have finished. A classic MapReduce job is two
// stages: maps, then reduces depending on stage 0.
type StageSpec struct {
	DependsOn []int      `json:"depends_on,omitempty"`
	Tasks     []TaskSpec `json:"tasks"`
}

// JobSpec is a job submitted by a tenant at a point in trace time.
type JobSpec struct {
	ID     string        `json:"id"`
	Tenant string        `json:"tenant"`
	Submit time.Duration `json:"submit"`
	// Deadline is the absolute trace time by which the job should finish;
	// zero means the job has no deadline.
	Deadline time.Duration `json:"deadline,omitempty"`
	Stages   []StageSpec   `json:"stages"`
}

// TaskCount returns the total number of tasks in the job.
func (j *JobSpec) TaskCount() int {
	n := 0
	for _, s := range j.Stages {
		n += len(s.Tasks)
	}
	return n
}

// TotalWork returns the sum of all task durations (serial work).
func (j *JobSpec) TotalWork() time.Duration {
	var w time.Duration
	for _, s := range j.Stages {
		for _, t := range s.Tasks {
			w += t.Duration
		}
	}
	return w
}

// CriticalPath returns a lower bound on the job's completion time given
// unlimited containers: the longest dependency chain of per-stage maximum
// task durations.
func (j *JobSpec) CriticalPath() time.Duration {
	memo := make([]time.Duration, len(j.Stages))
	var longest func(i int) time.Duration
	longest = func(i int) time.Duration {
		if memo[i] != 0 {
			return memo[i]
		}
		var dep time.Duration
		for _, d := range j.Stages[i].DependsOn {
			if v := longest(d); v > dep {
				dep = v
			}
		}
		var maxTask time.Duration
		for _, t := range j.Stages[i].Tasks {
			if t.Duration > maxTask {
				maxTask = t.Duration
			}
		}
		memo[i] = dep + maxTask
		return memo[i]
	}
	var cp time.Duration
	for i := range j.Stages {
		if v := longest(i); v > cp {
			cp = v
		}
	}
	return cp
}

// Validate checks the structural invariants of the job: nonempty stages,
// in-range acyclic dependencies, and positive task durations.
func (j *JobSpec) Validate() error {
	if j.ID == "" {
		return fmt.Errorf("workload: job with empty ID")
	}
	if j.Tenant == "" {
		return fmt.Errorf("workload: job %s has empty tenant", j.ID)
	}
	if len(j.Stages) == 0 {
		return fmt.Errorf("workload: job %s has no stages", j.ID)
	}
	for si, s := range j.Stages {
		if len(s.Tasks) == 0 {
			return fmt.Errorf("workload: job %s stage %d has no tasks", j.ID, si)
		}
		for _, d := range s.DependsOn {
			if d < 0 || d >= len(j.Stages) {
				return fmt.Errorf("workload: job %s stage %d depends on out-of-range stage %d", j.ID, si, d)
			}
			if d >= si {
				return fmt.Errorf("workload: job %s stage %d depends on later stage %d (stages must be topologically ordered)", j.ID, si, d)
			}
		}
		for ti, task := range s.Tasks {
			if task.Duration <= 0 {
				return fmt.Errorf("workload: job %s stage %d task %d has non-positive duration", j.ID, si, ti)
			}
		}
	}
	return nil
}

// NewMapReduceJob builds the canonical two-stage job: len(mapDur) map tasks
// followed by len(redDur) reduce tasks. redDur may be empty for map-only
// jobs (e.g. Hadoop streaming).
func NewMapReduceJob(id, tenant string, submit time.Duration, mapDur, redDur []time.Duration) JobSpec {
	mapTasks := make([]TaskSpec, len(mapDur))
	for i, d := range mapDur {
		mapTasks[i] = TaskSpec{Kind: Map, Duration: d}
	}
	job := JobSpec{
		ID:     id,
		Tenant: tenant,
		Submit: submit,
		Stages: []StageSpec{{Tasks: mapTasks}},
	}
	if len(redDur) > 0 {
		redTasks := make([]TaskSpec, len(redDur))
		for i, d := range redDur {
			redTasks[i] = TaskSpec{Kind: Reduce, Duration: d}
		}
		job.Stages = append(job.Stages, StageSpec{DependsOn: []int{0}, Tasks: redTasks})
	}
	return job
}

// Trace is a time-ordered collection of jobs over a horizon.
type Trace struct {
	Name    string        `json:"name"`
	Horizon time.Duration `json:"horizon"`
	Jobs    []JobSpec     `json:"jobs"`
}

// Sort orders jobs by (Submit, ID), the canonical order every consumer
// assumes.
func (t *Trace) Sort() {
	sort.SliceStable(t.Jobs, func(i, j int) bool {
		if t.Jobs[i].Submit != t.Jobs[j].Submit {
			return t.Jobs[i].Submit < t.Jobs[j].Submit
		}
		return t.Jobs[i].ID < t.Jobs[j].ID
	})
}

// Equal reports whether two traces describe identical workloads: same
// name, horizon, and job list in the same order. The cross-tick what-if
// search cache uses it to detect regenerated sample traces.
func (t *Trace) Equal(o *Trace) bool {
	if t == nil || o == nil {
		return t == o
	}
	if t.Name != o.Name || t.Horizon != o.Horizon || len(t.Jobs) != len(o.Jobs) {
		return false
	}
	for i := range t.Jobs {
		if !t.Jobs[i].Equal(&o.Jobs[i]) {
			return false
		}
	}
	return true
}

// Equal reports whether two job specs are identical, including stage
// structure and every task.
func (j *JobSpec) Equal(o *JobSpec) bool {
	if j.ID != o.ID || j.Tenant != o.Tenant || j.Submit != o.Submit ||
		j.Deadline != o.Deadline || len(j.Stages) != len(o.Stages) {
		return false
	}
	for si := range j.Stages {
		a, b := &j.Stages[si], &o.Stages[si]
		if len(a.DependsOn) != len(b.DependsOn) || len(a.Tasks) != len(b.Tasks) {
			return false
		}
		for i := range a.DependsOn {
			if a.DependsOn[i] != b.DependsOn[i] {
				return false
			}
		}
		for i := range a.Tasks {
			if a.Tasks[i] != b.Tasks[i] {
				return false
			}
		}
	}
	return true
}

// Validate checks every job and that submissions fall within the horizon.
func (t *Trace) Validate() error {
	seen := make(map[string]bool, len(t.Jobs))
	for i := range t.Jobs {
		j := &t.Jobs[i]
		if err := j.Validate(); err != nil {
			return err
		}
		if seen[j.ID] {
			return fmt.Errorf("workload: duplicate job ID %s", j.ID)
		}
		seen[j.ID] = true
		if j.Submit < 0 || (t.Horizon > 0 && j.Submit > t.Horizon) {
			return fmt.Errorf("workload: job %s submitted at %v outside horizon %v", j.ID, j.Submit, t.Horizon)
		}
	}
	return nil
}

// TaskCount returns the total number of tasks across all jobs.
func (t *Trace) TaskCount() int {
	n := 0
	for i := range t.Jobs {
		n += t.Jobs[i].TaskCount()
	}
	return n
}

// Tenants returns the sorted set of tenant names appearing in the trace.
func (t *Trace) Tenants() []string {
	set := make(map[string]bool)
	for i := range t.Jobs {
		set[t.Jobs[i].Tenant] = true
	}
	out := make([]string, 0, len(set))
	for name := range set {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ByTenant returns the jobs submitted by the given tenant, in trace order.
func (t *Trace) ByTenant(tenant string) []JobSpec {
	var out []JobSpec
	for i := range t.Jobs {
		if t.Jobs[i].Tenant == tenant {
			out = append(out, t.Jobs[i])
		}
	}
	return out
}

// Window returns the sub-trace of jobs submitted in [from, to). Times in
// the returned trace are rebased so the window starts at zero; deadlines
// are shifted accordingly.
func (t *Trace) Window(from, to time.Duration) *Trace {
	out := &Trace{Name: t.Name, Horizon: to - from}
	for i := range t.Jobs {
		j := t.Jobs[i]
		if j.Submit < from || j.Submit >= to {
			continue
		}
		j.Submit -= from
		if j.Deadline > 0 {
			j.Deadline -= from
		}
		out.Jobs = append(out.Jobs, j)
	}
	return out
}

// Merge combines traces into one, preserving job identity and re-sorting.
// The horizon is the maximum of the inputs'.
func Merge(name string, traces ...*Trace) *Trace {
	out := &Trace{Name: name}
	for _, tr := range traces {
		if tr.Horizon > out.Horizon {
			out.Horizon = tr.Horizon
		}
		out.Jobs = append(out.Jobs, tr.Jobs...)
	}
	out.Sort()
	return out
}

package tempo

// This file is the benchmark harness of deliverable (d): one testing.B
// benchmark per table and figure of the paper's evaluation (§8), plus the
// ablations DESIGN.md calls out. Each benchmark regenerates its
// table/figure via internal/exp, prints the rendered rows once (so
// `go test -bench . -benchmem` output contains every reproduced artifact),
// and reports the experiment's headline quantities as benchmark metrics.
//
// Absolute values come from the emulated substrate; EXPERIMENTS.md records
// the paper-vs-measured comparison for every entry.

import (
	"fmt"
	"math"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"tempo/internal/benchrec"
	"tempo/internal/cluster"
	"tempo/internal/exp"
	"tempo/internal/qs"
	"tempo/internal/scenario"
	"tempo/internal/workload"
)

// TestMain lets the benchmark harness persist a machine-readable record of
// the perf-trajectory benchmarks: when TEMPO_BENCH_OUT names a file, every
// recordBench call made during the run (including the external-package
// service benchmarks, which share this test binary and record through
// internal/benchrec) is written there as JSON — the BENCH_<pr>.json files
// CI regenerates and compares against the committed baseline with
// cmd/benchdiff.
func TestMain(m *testing.M) {
	code := m.Run()
	if path := os.Getenv("TEMPO_BENCH_OUT"); path != "" && code == 0 {
		if err := benchrec.Write(path); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", path, err)
			code = 1
		}
	}
	os.Exit(code)
}

// benchSeed keeps all benchmark experiments reproducible. loopSeed is used
// for the control-loop experiments: it selects a representative contended
// workload draw where the deadline SLO actually binds (seeds are just
// workload draws; uncontended draws leave the optimizer nothing to do).
const (
	benchSeed = 42
	loopSeed  = 9
)

var printOnce sync.Map

// printResult renders an experiment's output exactly once per benchmark.
func printResult(name, rendered string) {
	if _, loaded := printOnce.LoadOrStore(name, true); !loaded {
		fmt.Printf("\n===== %s =====\n%s\n", name, rendered)
	}
}

// BenchmarkTable1TenantMix regenerates Table 1: the six Company ABC tenant
// profiles and their measured workload characteristics.
func BenchmarkTable1TenantMix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.Table1(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		printResult("Table 1", res.Render())
		b.ReportMetric(float64(len(res.Rows)), "tenants")
	}
}

// BenchmarkTable2PredictionError regenerates Table 2: per-tenant RAE/RSE of
// the Schedule Predictor against the noisy production emulation.
func BenchmarkTable2PredictionError(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.Table2(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		printResult("Table 2", res.Render())
		b.ReportMetric(res.WorstRAE, "worst-RAE")
		b.ReportMetric(res.TasksPerSec, "predicted-tasks/sec")
	}
}

// BenchmarkFigure1PreemptionWaste regenerates Figure 1: effective vs raw
// utilization under kill-based preemption.
func BenchmarkFigure1PreemptionWaste(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.Figure1()
		if err != nil {
			b.Fatal(err)
		}
		printResult("Figure 1", res.Render())
		b.ReportMetric(res.EffectiveUtilization, "effective-util")
	}
}

// BenchmarkFigure2LimitUnderuse regenerates Figure 2: anti-correlated
// tenant demand pinned under static resource limits.
func BenchmarkFigure2LimitUnderuse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.Figure2(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		printResult("Figure 2", res.Render())
		b.ReportMetric(res.CappedWhileIdleFrac, "capped-while-idle-frac")
	}
}

// BenchmarkFigure5WorkloadCDFs regenerates Figure 5: per-tenant CDF
// statistics of the Company ABC workload.
func BenchmarkFigure5WorkloadCDFs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.Figure5(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		printResult("Figure 5", res.Render())
		b.ReportMetric(float64(len(res.Tenants)), "tenants")
	}
}

// BenchmarkFigure6ControlLoop regenerates Figure 6: best-effort response
// time and deadline violations per control-loop iteration at 25% and 50%
// slack.
func BenchmarkFigure6ControlLoop(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.Figure6(loopSeed, 20)
		if err != nil {
			b.Fatal(err)
		}
		printResult("Figure 6", res.Render())
		for _, s := range res.Series {
			b.ReportMetric(s.Improvement, fmt.Sprintf("AJR-improvement-slack%.0f", s.Slack*100))
		}
	}
}

// BenchmarkFigure7PreemptionsByDay regenerates Figure 7: map and reduce
// preemption fractions over a week.
func BenchmarkFigure7PreemptionsByDay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.Figure7(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		printResult("Figure 7", res.Render())
		b.ReportMetric(res.OverallMapFrac, "map-preempt-frac")
		b.ReportMetric(res.OverallReduceFrac, "reduce-preempt-frac")
	}
}

// BenchmarkFigure8DurationCDFs regenerates Figure 8: task-duration
// distributions by kind and tenant class.
func BenchmarkFigure8DurationCDFs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.Figure8(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		printResult("Figure 8", res.Render())
		b.ReportMetric(res.ReduceBestEffort[1], "besteffort-reduce-p50-sec")
	}
}

// BenchmarkFigure9UtilizationScenario regenerates Figure 9: the four SLOs
// under the original vs Tempo-optimized configuration.
func BenchmarkFigure9UtilizationScenario(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.Figure9(benchSeed, 15)
		if err != nil {
			b.Fatal(err)
		}
		printResult("Figure 9", res.Render())
		b.ReportMetric(res.Improvements[0], "AJR-improvement")
		b.ReportMetric(res.Improvements[3], "reduce-util-improvement")
	}
}

// BenchmarkFigure10InstantLatency regenerates Figure 10: moving-average
// job response time over a week and over the two-hour EC2 mix.
func BenchmarkFigure10InstantLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.Figure10(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		printResult("Figure 10", res.Render())
		b.ReportMetric(res.WeekBestEffortSpread, "besteffort-p90/p10")
	}
}

// BenchmarkFigure11WindowLength regenerates Figure 11: SLOs under control
// intervals of 15, 30, and 45 minutes.
func BenchmarkFigure11WindowLength(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.Figure11(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		printResult("Figure 11", res.Render())
		for _, row := range res.Rows {
			b.ReportMetric(row.NormalizedAJR, "AJR-"+row.Interval.String())
		}
	}
}

// BenchmarkFigure12Provisioning regenerates Figure 12: SLO estimation
// error when predicting the full-size cluster from traces collected on
// same-, half-, and quarter-size clusters.
func BenchmarkFigure12Provisioning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.Figure12(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		printResult("Figure 12", res.Render())
		for _, row := range res.Rows {
			b.ReportMetric(row.MaxAbsError, fmt.Sprintf("max-err-pct-%.0f%%src", row.SourceFraction*100))
		}
	}
}

// BenchmarkSchedulePredictorThroughput measures the predictor's task
// throughput (§8.1 reports ≈150k tasks/sec on the authors' machine).
func BenchmarkSchedulePredictorThroughput(b *testing.B) {
	trace, err := exp.ABCTrace(24*time.Hour, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	cfg := exp.ExpertABCConfig(exp.ABCCapacity)
	tasks := trace.TaskCount()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.Predict(trace, cfg); err != nil {
			b.Fatal(err)
		}
	}
	elapsed := time.Since(start).Seconds()
	if elapsed > 0 {
		b.ReportMetric(float64(tasks*b.N)/elapsed, "tasks/sec")
	}
}

// BenchmarkProxyVsWeightedSum regenerates the §6.3 counterexample: the
// weighted-sum scalarization violates the SLO constraints that PALD's
// proxy ordering honors.
func BenchmarkProxyVsWeightedSum(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := exp.ProxyCounterexample()
		printResult("Proxy counterexample (§6.3)", res.Render())
		feasible := 0.0
		if res.PALDFeasible {
			feasible = 1
		}
		b.ReportMetric(feasible, "pald-feasible")
	}
}

// BenchmarkPALDVsRandom regenerates the optimizer-strategy ablation: PALD
// vs weighted-sum vs random search under an equal what-if budget.
func BenchmarkPALDVsRandom(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.CompareStrategies(loopSeed, 12)
		if err != nil {
			b.Fatal(err)
		}
		printResult("Ablation: strategies", res.Render())
		for _, row := range res.Rows {
			b.ReportMetric(row.AJRImprovement, row.Strategy+"-AJR-improvement")
		}
	}
}

// BenchmarkTrustRegionAblation regenerates the trust-region / revert-guard
// ablation: regression risk versus convergence speed.
func BenchmarkTrustRegionAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.GuardAblation(loopSeed, 12)
		if err != nil {
			b.Fatal(err)
		}
		printResult("Ablation: trust region & revert guard", res.Render())
		for _, row := range res.Rows {
			b.ReportMetric(row.WorstStepRegression, strings.ReplaceAll(row.Name, " ", "_")+"-worst-regression")
		}
	}
}

// BenchmarkRevertGuardAblation aliases the guard rows of the ablation for
// the per-experiment index in DESIGN.md.
func BenchmarkRevertGuardAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.GuardAblation(loopSeed+1, 10)
		if err != nil {
			b.Fatal(err)
		}
		printResult("Ablation: revert guard (alternate seed)", res.Render())
		b.ReportMetric(float64(res.Rows[0].Reverts), "reverts-guard-on")
		b.ReportMetric(float64(res.Rows[2].Reverts), "reverts-guard-off")
	}
}

// BenchmarkGradientEstimatorAblation regenerates the LOESS vs
// finite-difference gradient ablation.
func BenchmarkGradientEstimatorAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.GradientAblation(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		printResult("Ablation: gradient estimators", res.Render())
		b.ReportMetric(res.LoessCosine, "loess-cosine")
		b.ReportMetric(res.FDCosine, "fd-cosine")
	}
}

// BenchmarkWhatIfBatch measures the what-if candidate-scoring hot path of
// one control-loop iteration — the current configuration plus a PALD-sized
// candidate set scored in one EvaluateBatch — at several worker counts.
// The QS vectors are bit-identical across all of them (asserted here);
// only wall-clock time changes.
func BenchmarkWhatIfBatch(b *testing.B) {
	trace, err := exp.ABCTrace(2*time.Hour, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	templates := []Template{
		Template{Queue: "ETL", Metric: DeadlineViolations, Slack: 0.25}.WithTarget(0.05),
		{Queue: "BI", Metric: AvgResponseTime},
	}
	model, err := NewWhatIfFromTrace(templates, trace)
	if err != nil {
		b.Fatal(err)
	}
	// One base config plus seven candidates: weight/min-share variations of
	// the expert configuration, the shape PALD proposes each iteration.
	base := exp.ExpertABCConfig(exp.ABCCapacity)
	cfgs := []ClusterConfig{base}
	for i := 1; i < 8; i++ {
		cand := base.Clone()
		etl := cand.Tenants["ETL"]
		etl.Weight = 1 + 0.5*float64(i)
		cand.Tenants["ETL"] = etl
		bi := cand.Tenants["BI"]
		bi.MaxShare = 8 + 4*i
		cand.Tenants["BI"] = bi
		cfgs = append(cfgs, cand)
	}
	model.Parallelism = 1
	want, err := model.EvaluateBatch(cfgs)
	if err != nil {
		b.Fatal(err)
	}
	for _, par := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("parallelism=%d", par), func(b *testing.B) {
			model.Parallelism = par
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				got, err := model.EvaluateBatch(cfgs)
				if err != nil {
					b.Fatal(err)
				}
				for c := range want {
					for k := range want[c] {
						if got[c][k] != want[c][k] {
							b.Fatalf("parallelism %d: row %d differs: %v vs %v", par, c, got[c], want[c])
						}
					}
				}
			}
		})
	}

	// Allocation baseline for the batch path (BENCH_5): the pooled default
	// against the same batch scored through fresh, single-use arenas — the
	// cost the pre-pooling code paid per run and a custom Predictor still
	// pays today. Sequential workers so MemStats deltas are attributable.
	model.Parallelism = 1
	allocs, bytes := measureAllocs(3, func() {
		if _, err := model.EvaluateBatch(cfgs); err != nil {
			b.Fatal(err)
		}
	})
	unpooled := *model
	unpooled.Parallelism = 1
	unpooled.Predict = func(trace *workload.Trace, cfg cluster.Config, horizon time.Duration) (*cluster.Schedule, error) {
		sm := cluster.NewSim() // fresh arena per run: nothing is recycled
		sched, err := sm.RunInto(trace, cfg, cluster.Options{Horizon: horizon})
		sm.Detach()
		return sched, err
	}
	allocsUnpooled, bytesUnpooled := measureAllocs(3, func() {
		if _, err := unpooled.EvaluateBatch(cfgs); err != nil {
			b.Fatal(err)
		}
	})
	reduction := allocsUnpooled / math.Max(allocs, 1)
	wallNs := minDuration(3, func() {
		if _, err := model.EvaluateBatch(cfgs); err != nil {
			b.Fatal(err)
		}
	})
	b.ReportMetric(allocs, "pooled-allocs/batch")
	b.ReportMetric(allocsUnpooled, "unpooled-allocs/batch")
	recordBench("WhatIfBatch", map[string]float64{
		"configs":                 float64(len(cfgs)),
		"wall_ns":                 float64(wallNs.Nanoseconds()),
		"allocs_per_op":           allocs,
		"bytes_per_op":            bytes,
		"allocs_per_op_unpooled":  allocsUnpooled,
		"bytes_per_op_unpooled":   bytesUnpooled,
		"alloc_reduction_pooling": reduction,
		"allocs_per_op_pr4":       whatIfBatchAllocsPR4,
		"alloc_reduction_vs_pr4":  whatIfBatchAllocsPR4 / math.Max(allocs, 1),
	})
}

// whatIfBatchAllocsPR4 is this benchmark's allocs/op (go test -benchmem,
// parallelism=1) measured at the PR-4 head (commit 594ea2e) — before the
// arena/pooling work — on the machine that recorded BENCH_5.json. It is a
// fixed historical reference, like the paper's 150k tasks/sec: recording
// it beside the live allocs_per_op keeps the end-to-end reduction visible
// in every future baseline, not just this PR's diff. See EXPERIMENTS.md
// ("Reading BENCH_5.json").
const whatIfBatchAllocsPR4 = 53274.0

// recordBench stores one benchmark's headline metrics for TEMPO_BENCH_OUT.
func recordBench(name string, metrics map[string]float64) {
	benchrec.Record(name, metrics)
}

// stressFixture is the shared large-tenant evaluation workload: the
// committed stress-1000 scenario's tenant mix played for two hours through
// the emulator, scored under a production-shaped SLO set — response time,
// throughput, deadline violations, and a fairness share per tenant, plus
// the cluster-wide SLOs. Per-tenant fairness is the oracle's worst case
// (two full task-schedule scans per template); the incremental path
// answers it from two prefix-integral lookups.
type stressFixture struct {
	sched     *cluster.Schedule
	templates []Template
	err       error
}

var stressOnce struct {
	sync.Once
	f stressFixture
}

func stressEvalFixture() (*cluster.Schedule, []Template, error) {
	stressOnce.Do(func() {
		spec, err := scenario.LoadFile("internal/scenario/testdata/scenarios/stress-1000.json")
		if err != nil {
			stressOnce.f.err = err
			return
		}
		rt, err := scenario.Build(spec, scenario.Options{Parallelism: 1})
		if err != nil {
			stressOnce.f.err = err
			return
		}
		horizon := 2 * time.Hour
		trace, err := workload.Generate(rt.Profiles, workload.GenerateOptions{
			Horizon: horizon,
			Seed:    spec.Seed + 1,
			Name:    "stress-bench",
		})
		if err != nil {
			stressOnce.f.err = err
			return
		}
		sched, err := cluster.Run(trace, rt.Initial, cluster.Options{Horizon: horizon})
		if err != nil {
			stressOnce.f.err = err
			return
		}
		names := spec.TenantNames()
		templates := []Template{
			{Metric: Utilization},
			{Metric: Throughput},
		}
		for _, tenant := range names {
			templates = append(templates,
				Template{Queue: tenant, Metric: AvgResponseTime},
				Template{Queue: tenant, Metric: Throughput},
				Template{Queue: tenant, Metric: DeadlineViolations, Slack: 0.25},
				Template{Queue: tenant, Metric: Fairness, DesiredShare: 1 / float64(len(names))},
			)
		}
		stressOnce.f = stressFixture{sched: sched, templates: templates}
	})
	return stressOnce.f.sched, stressOnce.f.templates, stressOnce.f.err
}

// minDuration returns the fastest of reps timed runs of fn — single-shot
// CI runs (-benchtime=1x) are noisy, and the minimum is the stable
// estimator of a deterministic computation's cost.
func minDuration(reps int, fn func()) time.Duration {
	best := time.Duration(1<<63 - 1)
	for i := 0; i < reps; i++ {
		start := time.Now()
		fn()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best
}

// measureAllocs runs fn reps times and returns the mean heap allocations
// and bytes per run, from runtime.MemStats deltas. Unlike
// testing.AllocsPerRun it also reports bytes and does not pin GOMAXPROCS;
// the evaluated paths are deterministic, so the counts are stable enough
// for a tolerance-gated baseline (cmd/benchdiff).
func measureAllocs(reps int, fn func()) (allocsPerOp, bytesPerOp float64) {
	fn() // warm caches and pools so steady state is what's measured
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < reps; i++ {
		fn()
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(reps),
		float64(after.TotalAlloc-before.TotalAlloc) / float64(reps)
}

// BenchmarkQSIncremental pits the incremental QS path against the
// full-recompute oracle on the stress tier: a 1000-tenant schedule scored
// under ~4000 templates, the shape the paper's handful-of-tenants protocol
// never reaches. It fails outright if the incremental path is not faster —
// the CI regression gate for this PR's tentpole — and records the speedup
// for BENCH_3.json. The two paths' QS vectors must be bit-identical on the
// full window.
func BenchmarkQSIncremental(b *testing.B) {
	sched, templates, err := stressEvalFixture()
	if err != nil {
		b.Fatal(err)
	}
	end := sched.Horizon + time.Nanosecond
	want := qs.EvalAll(templates, sched, 0, end)
	got := qs.EvalStream(templates, sched, 0, end)
	for i := range want {
		if got[i] != want[i] {
			b.Fatalf("objective %d (%s): incremental %v != oracle %v", i, templates[i].Name(), got[i], want[i])
		}
	}
	oracleNs := minDuration(3, func() { qs.EvalAll(templates, sched, 0, end) })
	incrNs := minDuration(3, func() { qs.EvalStream(templates, sched, 0, end) })
	if incrNs >= oracleNs {
		b.Fatalf("incremental evaluation (%v) is not faster than the full-recompute oracle (%v) at %d templates × %d jobs + %d tasks",
			incrNs, oracleNs, len(templates), len(sched.Jobs), len(sched.Tasks))
	}
	speedup := float64(oracleNs) / float64(incrNs)
	allocs, bytes := measureAllocs(3, func() { qs.EvalStream(templates, sched, 0, end) })
	b.ReportMetric(speedup, "speedup")
	b.ReportMetric(float64(oracleNs.Nanoseconds()), "oracle-ns")
	b.ReportMetric(float64(incrNs.Nanoseconds()), "incremental-ns")
	recordBench("QSIncremental", map[string]float64{
		"tenants":        1000,
		"templates":      float64(len(templates)),
		"jobs":           float64(len(sched.Jobs)),
		"tasks":          float64(len(sched.Tasks)),
		"oracle_ns":      float64(oracleNs.Nanoseconds()),
		"incremental_ns": float64(incrNs.Nanoseconds()),
		"speedup":        speedup,
		"allocs_per_op":  allocs,
		"bytes_per_op":   bytes,
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qs.EvalStream(templates, sched, 0, end)
	}
}

// BenchmarkStressScenario runs the committed stress-tier scenarios end to
// end (workload synthesis, emulation, incremental QS, canonical report) —
// the wall-clock envelope of the large-tenant regression fixtures.
func BenchmarkStressScenario(b *testing.B) {
	for _, name := range []string{"stress-100", "stress-1000"} {
		name := name
		b.Run(name, func(b *testing.B) {
			spec, err := scenario.LoadFile("internal/scenario/testdata/scenarios/" + name + ".json")
			if err != nil {
				b.Fatal(err)
			}
			var jobs int
			start := time.Now()
			for i := 0; i < b.N; i++ {
				rep, err := scenario.Run(spec, scenario.Options{Parallelism: DefaultParallelism()})
				if err != nil {
					b.Fatal(err)
				}
				jobs = 0
				for _, it := range rep.Iterations {
					jobs += it.SubmittedJobs
				}
			}
			wallNs := float64(time.Since(start).Nanoseconds()) / float64(b.N)
			b.ReportMetric(float64(jobs), "jobs")
			recordBench("StressScenario/"+name, map[string]float64{
				"iterations": float64(spec.Iterations),
				"jobs":       float64(jobs),
				"wall_ns":    wallNs,
			})
		})
	}
}

// BenchmarkWorkloadGeneration measures the synthetic trace generator.
func BenchmarkWorkloadGeneration(b *testing.B) {
	profiles := workload.CompanyABC(1)
	for i := 0; i < b.N; i++ {
		tr, err := workload.Generate(profiles, workload.GenerateOptions{Horizon: 8 * time.Hour, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(tr.TaskCount()), "tasks")
	}
}

// Incremental QS evaluation over schedule event streams.
//
// The legacy path (Template.Eval / EvalAll) recomputes each metric by
// scanning every job and task record of the schedule, so evaluating k
// templates costs O(k·(jobs+tasks)) — the dominant cost of what-if
// candidate scoring once template counts grow with tenant counts. The
// Accumulator in this file consumes the schedule's canonical event stream
// (cluster.Schedule.Events) exactly once, builds per-metric indexes, and
// then answers Value(From, To) queries for any half-open window:
//
//   - utilization and fairness from prefix integrals of the allocation
//     step function — O(log n) per query, bit-identical to the legacy
//     path for every window (the integral is exact integer arithmetic);
//   - response time, deadline violations, and throughput from a mergesort
//     tree over (submit, finish) pairs — O(log² n) per query, with an
//     O(1) fast path for windows covering the whole schedule (the control
//     loop's only production query shape) that reproduces the legacy
//     float summation order bit-for-bit.
//
// EvalAll remains the reference oracle; TestPropertyIncrementalOracle
// locks the equivalence (exact on full windows, 1e-9 elsewhere).
package qs

import (
	"math"
	"slices"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tempo/internal/cluster"
	"tempo/internal/workload"
)

// Accumulator ingests a schedule's event stream once and answers QS
// queries for a fixed template set over arbitrary [From, To) windows.
// Observe the full stream (in any order — events index their records),
// Seal, then query. Value and Values are safe for concurrent use; Seal is
// idempotent and implied by the first query.
type Accumulator struct {
	templates []Template
	capacity  int

	jobs  []jobState
	tasks []taskState

	sealOnce sync.Once
	sealed   atomic.Bool
	evals    []func(from, to time.Duration) float64

	// Tenant partitions of the record indexes, built once at seal; "" maps
	// to nothing — the full range stands in for the all-tenants filter.
	jobsByTenant  map[string][]int32
	tasksByTenant map[string][]int32
}

// jobState collects one job record from its submit and finish events.
type jobState struct {
	tenant    string
	submit    time.Duration
	finish    time.Duration
	deadline  time.Duration
	completed bool
}

// taskState collects one task attempt from its start and end events.
type taskState struct {
	tenant  string
	kind    workload.TaskKind
	start   time.Duration
	end     time.Duration
	outcome cluster.TaskOutcome
}

// NewAccumulator returns an empty accumulator for the template set.
// capacity is the schedule's container count (cluster.Schedule.Capacity),
// which the utilization metrics normalize by.
func NewAccumulator(templates []Template, capacity int) *Accumulator {
	return &Accumulator{
		templates: append([]Template(nil), templates...),
		capacity:  capacity,
	}
}

// Accumulate builds a sealed accumulator from a schedule's canonical event
// stream — the one-pass replacement for k independent EvalAll scans.
// Going through Events() costs four index sorts and one ~100-byte event
// per record pair over ingesting the record view directly; that is the
// deliberate price of keeping the production path on the same stream an
// online consumer would see (and it is included in the speedups
// BenchmarkQSIncremental records).
func Accumulate(templates []Template, s *cluster.Schedule) *Accumulator {
	a := NewAccumulator(templates, s.Capacity)
	a.jobs = make([]jobState, 0, len(s.Jobs))
	a.tasks = make([]taskState, 0, len(s.Tasks))
	for _, ev := range s.Events() {
		a.Observe(ev)
	}
	a.Seal()
	return a
}

// Scratch is a reusable buffer set for repeated QS evaluation: the
// schedule's event stream and the accumulator's per-record state are
// served from recycled storage instead of fresh allocations per
// evaluation. One Scratch serves one goroutine; the zero value is ready
// to use.
type Scratch struct {
	buf   cluster.EventBuf
	jobs  []jobState
	tasks []taskState
}

// accumulate is Accumulate serving its event stream and record state from
// the scratch. The returned accumulator aliases scratch storage (and the
// caller's template slice), so it is only valid until the scratch's next
// use — evaluate and drop it.
//
//tempo:hot
func (sc *Scratch) accumulate(templates []Template, s *cluster.Schedule) *Accumulator {
	a := &Accumulator{templates: templates, capacity: s.Capacity}
	a.jobs = sc.jobs[:0]
	a.tasks = sc.tasks[:0]
	for _, ev := range s.AppendEvents(&sc.buf) {
		a.Observe(ev)
	}
	// Keep the (possibly grown) state arrays for the next evaluation.
	sc.jobs = a.jobs
	sc.tasks = a.tasks
	a.Seal()
	return a
}

// streamCutover is the template count above which the incremental path
// beats per-template rescans for a one-shot evaluation. Both costs are
// linear in the record count — the oracle pays k scans, the accumulator a
// constant number of indexing passes — so the crossover is a stable
// template-count constant; ~170 measured on a representative emulated
// schedule (see BenchmarkQSIncremental for the far end). Below it the
// oracle's tight record loops win outright.
const streamCutover = 160

// EvalStream evaluates every template over [from, to), picking the
// cheaper evaluation path for the template count: per-template record
// scans for small SLO sets (the paper-scale shape), the one-pass
// event-stream accumulator for large ones (the stress tier, where it is
// asymptotically ahead). The choice is invisible in the results: the two
// paths are bit-identical for windows covering the whole schedule and
// agree within float round-off (≤ 1e-9 relative) everywhere else.
// Callers that query many windows of one schedule should hold an
// Accumulator instead, which amortizes its build across queries.
func EvalStream(templates []Template, s *cluster.Schedule, from, to time.Duration) []float64 {
	if len(templates) < streamCutover {
		return EvalAll(templates, s, from, to)
	}
	return Accumulate(templates, s).Values(from, to)
}

// EvalStreamScratch is EvalStream serving its working storage from the
// scratch — what-if candidate scoring evaluates one schedule per
// (candidate, sample) pair and must not churn the heap doing it. The
// returned vector is freshly allocated (callers retain it); everything
// intermediate is recycled. Results are bit-identical to EvalStream's.
// A nil scratch falls back to EvalStream.
//
//tempo:hot
func EvalStreamScratch(sc *Scratch, templates []Template, s *cluster.Schedule, from, to time.Duration) []float64 {
	if sc == nil {
		return EvalStream(templates, s, from, to)
	}
	if len(templates) < streamCutover {
		// The oracle path's per-template scans are already allocation-free;
		// only the result vector is allocated.
		return EvalAll(templates, s, from, to)
	}
	return sc.accumulate(templates, s).Values(from, to)
}

// Observe feeds one event. All events of the stream must be observed
// before sealing; order does not matter (events carry their record
// index), but Observe must not run concurrently with Seal or the first
// query. Calls after the accumulator is sealed are ignored.
//
//tempo:hot
func (a *Accumulator) Observe(ev cluster.Event) {
	if a.sealed.Load() {
		return
	}
	switch ev.Kind {
	case cluster.EventJobSubmit:
		j := a.job(ev.Seq)
		j.tenant, j.submit, j.deadline = ev.Tenant, ev.Time, ev.Deadline
	case cluster.EventJobFinish:
		j := a.job(ev.Seq)
		j.tenant, j.finish, j.completed = ev.Tenant, ev.Time, ev.Completed
	case cluster.EventTaskStart:
		t := a.task(ev.Seq)
		t.tenant, t.kind, t.start = ev.Tenant, ev.TaskKind, ev.Time
	case cluster.EventTaskEnd:
		t := a.task(ev.Seq)
		t.tenant, t.kind, t.end, t.outcome = ev.Tenant, ev.TaskKind, ev.Time, ev.Outcome
	}
}

func (a *Accumulator) job(seq int) *jobState {
	for len(a.jobs) <= seq {
		a.jobs = append(a.jobs, jobState{})
	}
	return &a.jobs[seq]
}

func (a *Accumulator) task(seq int) *taskState {
	for len(a.tasks) <= seq {
		a.tasks = append(a.tasks, taskState{})
	}
	return &a.tasks[seq]
}

// JobView is one paired job record as the accumulator assembled it from
// the event stream (submit + finish events joined by Seq). It is the
// record-order substrate internal/query's "jobs" relation is built from —
// the same state the QS metrics evaluate, exposed instead of re-derived.
type JobView struct {
	Tenant    string
	Submit    time.Duration
	Finish    time.Duration
	Deadline  time.Duration
	Completed bool
}

// TaskView is one paired task attempt (start + end events joined by Seq).
type TaskView struct {
	Tenant  string
	Kind    workload.TaskKind
	Start   time.Duration
	End     time.Duration
	Outcome cluster.TaskOutcome
}

// EachJob calls f for every observed job record in record order — the
// order every oracle scan and fast-path summation uses. It does not
// require (or trigger) sealing, so stream consumers that only want the
// paired records skip the per-template index build.
func (a *Accumulator) EachJob(f func(JobView)) {
	for i := range a.jobs {
		j := &a.jobs[i]
		f(JobView{Tenant: j.tenant, Submit: j.submit, Finish: j.finish, Deadline: j.deadline, Completed: j.completed})
	}
}

// EachTask calls f for every observed task attempt in record order.
func (a *Accumulator) EachTask(f func(TaskView)) {
	for i := range a.tasks {
		t := &a.tasks[i]
		f(TaskView{Tenant: t.tenant, Kind: t.kind, Start: t.start, End: t.end, Outcome: t.outcome})
	}
}

// Seal freezes the accumulator and builds the per-template indexes.
// Further Observe calls are ignored. Seal is idempotent and safe to call
// concurrently.
func (a *Accumulator) Seal() {
	a.sealOnce.Do(a.seal)
}

// Value returns template i's QS value over [from, to), sealing first if
// necessary.
func (a *Accumulator) Value(i int, from, to time.Duration) float64 {
	a.Seal()
	return a.evals[i](from, to)
}

// Values evaluates every template over the same window, producing the QS
// vector f(x; w) in template order — the incremental counterpart of
// EvalAll.
func (a *Accumulator) Values(from, to time.Duration) []float64 {
	a.Seal()
	out := make([]float64, len(a.evals))
	for i, eval := range a.evals {
		out[i] = eval(from, to)
	}
	return out
}

// jobSetKey identifies a shared job index: the tenant filter plus, for
// deadline metrics, the slack that fixes per-job violation flags.
type jobSetKey struct {
	tenant   string
	deadline bool
	slack    float64
}

// utilKey identifies a shared allocation timeline: tenant filter, task
// kind filter (-1 = all), and the effective-only restriction.
type utilKey struct {
	tenant        string
	kind          int8
	effectiveOnly bool
}

func utilKeyFor(tenant string, kind *workload.TaskKind, effectiveOnly bool) utilKey {
	k := utilKey{tenant: tenant, kind: -1, effectiveOnly: effectiveOnly}
	if kind != nil {
		k.kind = int8(*kind)
	}
	return k
}

// seal builds every template's evaluator, sharing job trees and allocation
// timelines between templates with identical filters. Records are
// partitioned by tenant once, so building the per-tenant indexes of k
// templates costs O(jobs + tasks + k) instead of O(k·(jobs + tasks)) —
// without this, a per-tenant SLO set at 1000 tenants would pay the
// oracle's quadratic scan once more at seal time.
func (a *Accumulator) seal() {
	a.sealed.Store(true)
	a.jobsByTenant = map[string][]int32{}
	for i := range a.jobs {
		t := a.jobs[i].tenant
		a.jobsByTenant[t] = append(a.jobsByTenant[t], int32(i))
	}
	a.tasksByTenant = map[string][]int32{}
	for i := range a.tasks {
		t := a.tasks[i].tenant
		a.tasksByTenant[t] = append(a.tasksByTenant[t], int32(i))
	}
	trees := map[jobSetKey]*jobTree{}
	lines := map[utilKey]*timeline{}
	jobTreeFor := func(key jobSetKey) *jobTree {
		if t, ok := trees[key]; ok {
			return t
		}
		t := a.buildJobTree(key)
		trees[key] = t
		return t
	}
	timelineFor := func(key utilKey) *timeline {
		if l, ok := lines[key]; ok {
			return l
		}
		l := a.buildTimeline(key)
		lines[key] = l
		return l
	}

	a.evals = make([]func(from, to time.Duration) float64, len(a.templates))
	for i, t := range a.templates {
		t := t
		priority := t.Priority
		if priority == 0 {
			priority = 1
		}
		switch t.Metric {
		case AvgResponseTime:
			tree := jobTreeFor(jobSetKey{tenant: t.Queue})
			a.evals[i] = func(from, to time.Duration) float64 {
				cnt, sum := tree.query(from, to)
				if cnt == 0 {
					return 0
				}
				return priority * (sum / float64(cnt))
			}
		case Throughput:
			tree := jobTreeFor(jobSetKey{tenant: t.Queue})
			a.evals[i] = func(from, to time.Duration) float64 {
				cnt, _ := tree.query(from, to)
				return priority * -float64(cnt)
			}
		case DeadlineViolations:
			tree := jobTreeFor(jobSetKey{tenant: t.Queue, deadline: true, slack: t.Slack})
			a.evals[i] = func(from, to time.Duration) float64 {
				cnt, violated := tree.query(from, to)
				if cnt == 0 {
					return 0
				}
				return priority * (violated / float64(cnt))
			}
		case Utilization:
			line := timelineFor(utilKeyFor(t.Queue, t.TaskKind, t.EffectiveOnly))
			capacity := a.capacity
			a.evals[i] = func(from, to time.Duration) float64 {
				return priority * -line.usedFraction(from, to, capacity)
			}
		case Fairness:
			mine := timelineFor(utilKeyFor(t.Queue, nil, false))
			all := timelineFor(utilKeyFor("", nil, false))
			capacity := a.capacity
			share := t.DesiredShare
			a.evals[i] = func(from, to time.Duration) float64 {
				total := all.usedFraction(from, to, capacity)
				if total <= 0 {
					return 0
				}
				m := mine.usedFraction(from, to, capacity)
				return priority * math.Abs(share-m/total)
			}
		default:
			a.evals[i] = func(time.Duration, time.Duration) float64 {
				return priority * math.NaN()
			}
		}
	}
}

// buildJobTree collects the key's job set — the tenant's completed jobs,
// restricted to deadline-carrying ones for deadline keys — in record order
// and indexes it for window queries.
func (a *Accumulator) buildJobTree(key jobSetKey) *jobTree {
	indexes := a.jobIndexes(key.tenant)
	var items []jobItem
	for _, idx := range indexes {
		j := &a.jobs[idx]
		if !j.completed {
			continue
		}
		var payload float64
		if key.deadline {
			if j.deadline <= 0 {
				continue
			}
			// The violation test of the legacy path, verbatim: finishing
			// later than deadline + slack·(response time) violates.
			dur := j.finish - j.submit
			limit := j.deadline + time.Duration(key.slack*float64(dur))
			if j.finish > limit {
				payload = 1
			}
		} else {
			payload = (j.finish - j.submit).Seconds()
		}
		items = append(items, jobItem{submit: j.submit, finish: j.finish, payload: payload})
	}
	return newJobTree(items)
}

// jobIndexes returns the record-order job indexes of one tenant ("" = all
// jobs). Record order matters: the fast-path totals must sum in the order
// the legacy scan does.
func (a *Accumulator) jobIndexes(tenant string) []int32 {
	if tenant != "" {
		return a.jobsByTenant[tenant]
	}
	all := make([]int32, len(a.jobs))
	for i := range all {
		all[i] = int32(i)
	}
	return all
}

// taskIndexes returns the record-order task indexes of one tenant ("" =
// all tasks).
func (a *Accumulator) taskIndexes(tenant string) []int32 {
	if tenant != "" {
		return a.tasksByTenant[tenant]
	}
	all := make([]int32, len(a.tasks))
	for i := range all {
		all[i] = int32(i)
	}
	return all
}

// buildTimeline builds the allocation step function for the key's task
// filter as sorted change points with prefix integrals.
func (a *Accumulator) buildTimeline(key utilKey) *timeline {
	type delta struct {
		at time.Duration
		d  int64
	}
	indexes := a.taskIndexes(key.tenant)
	deltas := make([]delta, 0, 2*len(indexes))
	for _, idx := range indexes {
		t := &a.tasks[idx]
		if key.kind >= 0 && t.kind != workload.TaskKind(key.kind) {
			continue
		}
		if key.effectiveOnly && t.outcome != cluster.TaskFinished {
			continue
		}
		if t.end <= t.start {
			// Zero-width (or malformed) attempts contribute nothing in the
			// legacy path; keep the step function in agreement.
			continue
		}
		deltas = append(deltas, delta{t.start, +1}, delta{t.end, -1})
	}
	slices.SortFunc(deltas, func(a, b delta) int {
		switch {
		case a.at < b.at:
			return -1
		case a.at > b.at:
			return 1
		}
		return 0
	})
	line := &timeline{
		times:  make([]time.Duration, 0, len(deltas)),
		counts: make([]int64, 0, len(deltas)),
		integ:  make([]int64, 0, len(deltas)),
	}
	var count, integ int64
	for i := 0; i < len(deltas); {
		at := deltas[i].at
		if n := len(line.times); n > 0 {
			integ += count * int64(at-line.times[n-1])
		}
		for i < len(deltas) && deltas[i].at == at {
			count += deltas[i].d
			i++
		}
		line.times = append(line.times, at)
		line.counts = append(line.counts, count)
		line.integ = append(line.integ, integ)
	}
	return line
}

// timeline is a container-allocation step function with prefix integrals:
// counts[i] containers are allocated on [times[i], times[i+1]), and
// integ[i] is the exact container·nanosecond integral over
// [times[0], times[i]).
type timeline struct {
	times  []time.Duration
	counts []int64
	integ  []int64
}

// integral returns the exact allocation integral over [times[0], t).
func (l *timeline) integral(t time.Duration) int64 {
	n := len(l.times)
	if n == 0 || t <= l.times[0] {
		return 0
	}
	if t >= l.times[n-1] {
		return l.integ[n-1] // count after the last change point is zero
	}
	// Largest i with times[i] <= t.
	i := sort.Search(n, func(k int) bool { return l.times[k] > t }) - 1
	return l.integ[i] + l.counts[i]*int64(t-l.times[i])
}

// usedFraction mirrors the legacy usedFraction: the fraction of the
// window's total container capacity the filtered tasks occupied. The
// integral is integer arithmetic, so the result is bit-identical to the
// record-scanning path for every window.
func (l *timeline) usedFraction(from, to time.Duration, capacity int) float64 {
	length := to - from
	if length <= 0 || capacity <= 0 {
		return 0
	}
	used := l.integral(to) - l.integral(from)
	return float64(used) / (float64(length) * float64(capacity))
}

// jobItem is one indexed job: its submit and finish times plus the
// metric-specific payload (response seconds, or a 0/1 violation flag).
type jobItem struct {
	submit  time.Duration
	finish  time.Duration
	payload float64
}

// jobTree answers "count and payload-sum of jobs with Submit ∈ [from, to)
// and Finish < to" — the half-open job-set predicate of §5 — in
// O(log² n) via a mergesort tree over finish order, with an O(1) fast
// path for windows containing every job that reproduces the legacy
// summation order exactly. The tree itself is built lazily on the first
// query the fast path cannot serve: production callers only ever ask for
// whole-schedule windows, so they pay O(n) totals and never the O(n log n)
// tree.
type jobTree struct {
	n     int
	items []jobItem // record order, as the legacy path scans

	// Whole-schedule fast path, accumulated in record order so full-window
	// queries are bit-identical to the legacy scan.
	minSubmit time.Duration
	maxSubmit time.Duration
	maxFinish time.Duration
	totalCnt  int
	totalSum  float64

	// Lazily built window index (see build).
	buildOnce sync.Once
	finish    []time.Duration // item finish times, ascending
	// Mergesort tree: node v (1-based heap layout over 2n slots) covers a
	// contiguous finish-order range and stores that range's submits sorted
	// ascending, with aligned payload prefix sums.
	submits [][]time.Duration
	sums    [][]float64
}

// newJobTree indexes items, which must be in schedule record order (the
// order the legacy path scans, preserved for the fast-path totals).
func newJobTree(items []jobItem) *jobTree {
	t := &jobTree{n: len(items), items: items}
	if t.n == 0 {
		return t
	}
	t.minSubmit, t.maxSubmit = items[0].submit, items[0].submit
	t.maxFinish = items[0].finish
	for i := range items {
		it := &items[i]
		if it.submit < t.minSubmit {
			t.minSubmit = it.submit
		}
		if it.submit > t.maxSubmit {
			t.maxSubmit = it.submit
		}
		if it.finish > t.maxFinish {
			t.maxFinish = it.finish
		}
		t.totalCnt++
		t.totalSum += it.payload
	}
	return t
}

// build materializes the mergesort tree. Safe under concurrent queries.
func (t *jobTree) build() {
	sorted := append([]jobItem(nil), t.items...)
	slices.SortStableFunc(sorted, func(a, b jobItem) int {
		switch {
		case a.finish < b.finish:
			return -1
		case a.finish > b.finish:
			return 1
		}
		return 0
	})
	n := t.n
	finish := make([]time.Duration, n)
	for i := range sorted {
		finish[i] = sorted[i].finish
	}
	t.submits = make([][]time.Duration, 2*n)
	t.sums = make([][]float64, 2*n)
	for i := 0; i < n; i++ {
		t.submits[n+i] = []time.Duration{sorted[i].submit}
		t.sums[n+i] = []float64{0, sorted[i].payload}
	}
	for v := n - 1; v >= 1; v-- {
		t.submits[v], t.sums[v] = mergeNode(t.submits[2*v], t.sums[2*v], t.submits[2*v+1], t.sums[2*v+1])
	}
	t.finish = finish
}

// mergeNode merges two sorted child nodes into the parent's sorted submit
// list and payload prefix sums.
func mergeNode(ls []time.Duration, lsum []float64, rs []time.Duration, rsum []float64) ([]time.Duration, []float64) {
	out := make([]time.Duration, 0, len(ls)+len(rs))
	sums := make([]float64, 1, len(ls)+len(rs)+1)
	i, j := 0, 0
	total := 0.0
	for i < len(ls) || j < len(rs) {
		var v time.Duration
		var p float64
		if j >= len(rs) || (i < len(ls) && ls[i] <= rs[j]) {
			v, p = ls[i], lsum[i+1]-lsum[i]
			i++
		} else {
			v, p = rs[j], rsum[j+1]-rsum[j]
			j++
		}
		out = append(out, v)
		total += p
		sums = append(sums, total)
	}
	return out, sums
}

// query returns the count and payload sum of items with Submit ∈ [from,
// to) and Finish < to.
func (t *jobTree) query(from, to time.Duration) (int, float64) {
	if t.n == 0 || to <= from {
		return 0, 0
	}
	if from <= t.minSubmit && to > t.maxFinish && to > t.maxSubmit {
		return t.totalCnt, t.totalSum
	}
	t.buildOnce.Do(t.build)
	// Items with Finish < to form the prefix [0, k) in finish order.
	k := sort.Search(t.n, func(i int) bool { return t.finish[i] >= to })
	if k == 0 {
		return 0, 0
	}
	cnt, sum := 0, 0.0
	// Decompose [0, k) into canonical segment-tree nodes; per node, count
	// submits inside [from, to) via two binary searches on the sorted list.
	for l, r := t.n, t.n+k; l < r; l, r = l/2, r/2 {
		if l&1 == 1 {
			c, s := nodeRange(t.submits[l], t.sums[l], from, to)
			cnt, sum = cnt+c, sum+s
			l++
		}
		if r&1 == 1 {
			r--
			c, s := nodeRange(t.submits[r], t.sums[r], from, to)
			cnt, sum = cnt+c, sum+s
		}
	}
	return cnt, sum
}

// nodeRange counts one node's submits inside [from, to) and sums their
// payloads.
func nodeRange(submits []time.Duration, sums []float64, from, to time.Duration) (int, float64) {
	lo := sort.Search(len(submits), func(i int) bool { return submits[i] >= from })
	hi := sort.Search(len(submits), func(i int) bool { return submits[i] >= to })
	if hi <= lo {
		return 0, 0
	}
	return hi - lo, sums[hi] - sums[lo]
}

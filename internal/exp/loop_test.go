package exp

import (
	"strings"
	"testing"
)

func TestFigure6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow end-to-end loop")
	}
	res, err := Figure6(9, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 2 {
		t.Fatalf("series = %d, want 2 (25%% and 50%% slack)", len(res.Series))
	}
	for _, s := range res.Series {
		if len(s.NormalizedAJR) != 12 {
			t.Fatalf("slack %v: %d points", s.Slack, len(s.NormalizedAJR))
		}
		if s.NormalizedAJR[0] != 1 {
			t.Fatalf("normalization broken: first point %v", s.NormalizedAJR[0])
		}
		// Headline shape: the loop must reduce best-effort response time
		// substantially from the expert configuration.
		if s.Improvement < 0.15 {
			t.Errorf("slack %.0f%%: AJR improvement %.0f%%, want >= 15%%", s.Slack*100, s.Improvement*100)
		}
	}
	if !strings.Contains(res.Render(), "slack") {
		t.Fatal("render broken")
	}
}

func TestFigure9Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow end-to-end loop")
	}
	res, err := Figure9(10, 12)
	if err != nil {
		t.Fatal(err)
	}
	// Paper shape: best-effort AJR improves (22% in the paper), reduce
	// containers stop losing work to preemption (utilization gain), map
	// containers stay at the same level, and preemptions collapse.
	if res.Improvements[0] < 0.10 {
		t.Errorf("AJR improvement %.1f%%, want >= 10%%", res.Improvements[0]*100)
	}
	if res.Improvements[3] < 0.05 {
		t.Errorf("reduce effective-work improvement %.1f%%, want >= 5%%", res.Improvements[3]*100)
	}
	if res.Improvements[2] < -0.10 {
		t.Errorf("map effective-work regressed %.1f%%", res.Improvements[2]*100)
	}
	if res.PreemptionsOptimized*2 > res.PreemptionsOriginal {
		t.Errorf("preemptions not halved: %d -> %d", res.PreemptionsOriginal, res.PreemptionsOptimized)
	}
	_ = res.Render()
}

func TestFigure11Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow end-to-end loop")
	}
	res, err := Figure11(11)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 interval lengths", len(res.Rows))
	}
	improved := false
	for _, row := range res.Rows {
		if row.NormalizedAJR <= 0 {
			t.Errorf("interval %v: AJR %v", row.Interval, row.NormalizedAJR)
		}
		if row.NormalizedAJR < 0.95 {
			improved = true
		}
	}
	if !improved {
		t.Error("no interval length improved best-effort AJR over the untuned baseline")
	}
	_ = res.Render()
}

func TestFigure12Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	res, err := Figure12(12)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 source sizes", len(res.Rows))
	}
	// Shape: same-size traces predict well; quarter-size traces predict
	// worse than same-size ones.
	if res.Rows[0].MaxAbsError > 30 {
		t.Errorf("100%%-source max error %.1f%%, want <= 30%%", res.Rows[0].MaxAbsError)
	}
	if res.Rows[2].MaxAbsError < res.Rows[0].MaxAbsError {
		t.Errorf("25%%-source error %.1f%% should exceed 100%%-source %.1f%%",
			res.Rows[2].MaxAbsError, res.Rows[0].MaxAbsError)
	}
	_ = res.Render()
}

func TestCompareStrategiesShape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow end-to-end loop")
	}
	res, err := CompareStrategies(9, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	byName := map[string]StrategyComparisonRow{}
	for _, r := range res.Rows {
		byName[r.Strategy] = r
	}
	// PALD must improve the best-effort SLO; the exact ordering among
	// baselines varies with seeds, but PALD should not lose to random
	// search on constraint regret by a wide margin.
	if byName["pald"].AJRImprovement < 0.05 {
		t.Errorf("pald AJR improvement %.1f%%, want >= 5%%", byName["pald"].AJRImprovement*100)
	}
	if byName["pald"].MeanMaxRegret > byName["random-search"].MeanMaxRegret*2+0.05 {
		t.Errorf("pald regret %.3f far above random search %.3f",
			byName["pald"].MeanMaxRegret, byName["random-search"].MeanMaxRegret)
	}
	_ = res.Render()
}

func TestGuardAblationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow end-to-end loop")
	}
	res, err := GuardAblation(9, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	_ = res.Render()
}

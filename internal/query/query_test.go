package query

import (
	"fmt"
	"math"
	"strings"
	"testing"
	"time"

	"tempo/internal/cluster"
	"tempo/internal/workload"
)

func sec(n int) time.Duration { return time.Duration(n) * time.Second }

// tickSchedule builds one control interval's emulated schedule in local
// time: two tenants, three jobs, four task attempts.
func tickSchedule() *cluster.Schedule {
	return &cluster.Schedule{
		Capacity: 4,
		Horizon:  sec(100),
		Jobs: []cluster.JobRecord{
			{ID: "a1", Tenant: "A", Submit: sec(0), Finish: sec(10), Completed: true},
			{ID: "a2", Tenant: "A", Submit: sec(5), Finish: sec(40), Deadline: sec(30), Completed: true},
			{ID: "b1", Tenant: "B", Submit: sec(20), Finish: sec(70), Completed: true},
		},
		Tasks: []cluster.TaskRecord{
			{JobID: "a1", Tenant: "A", Kind: workload.Map, Start: sec(0), End: sec(10), Outcome: cluster.TaskFinished},
			{JobID: "a2", Tenant: "A", Kind: workload.Reduce, Start: sec(10), End: sec(40), Outcome: cluster.TaskFinished},
			{JobID: "b1", Tenant: "B", Kind: workload.Map, Start: sec(20), End: sec(50), Outcome: cluster.TaskPreempted},
			{JobID: "b1", Tenant: "B", Kind: workload.Map, Start: sec(50), End: sec(70), Outcome: cluster.TaskFinished},
		},
	}
}

func mustPlan(t *testing.T, js string) *Plan {
	t.Helper()
	p, err := ParsePlan(strings.NewReader(js))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func mustRunner(t *testing.T, js string, interval time.Duration) *Runner {
	t.Helper()
	r, err := Compile(mustPlan(t, js), interval)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

const interval = 100 * time.Second

// TestRawFilterMap exercises the streaming path: tick-local times are
// offset into session time, filters and projections apply, and rows come
// out in canonical event order.
func TestRawFilterMap(t *testing.T) {
	r := mustRunner(t, `{"version":1,"source":"events","ops":[
		{"op":"filter","field":"kind","eq":"job-submit"},
		{"op":"filter","field":"tenant","eq":"A"},
		{"op":"map","fields":["tenant","deadline_seconds"]}]}`, interval)
	s := tickSchedule()
	var all []ResultRow
	for i := 0; i < 2; i++ {
		rows, err := r.PushTick(i, s)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, rows...)
	}
	if len(all) != 4 {
		t.Fatalf("got %d rows, want 4 (2 submits × 2 ticks): %+v", len(all), all)
	}
	// Tick 1's copy of job a2 submits at session time 105s.
	last := all[3]
	if last.Tick != 1 || last.TimeSeconds != 105 {
		t.Fatalf("tick-1 row not offset into session time: %+v", last)
	}
	if last.Strings["tenant"] != "A" || last.Values["deadline_seconds"] != 30 {
		t.Fatalf("projection wrong: %+v", last)
	}
	if _, ok := last.Strings["kind"]; ok {
		t.Fatalf("map failed to drop kind column: %+v", last)
	}
	res := r.Result()
	if res.Ticks != 2 || len(res.Rows) != 4 || res.Truncated {
		t.Fatalf("one-shot result disagrees with stream: %+v", res)
	}
}

// TestGroupByAggregate checks the grouped reductions and their
// deterministic output order.
func TestGroupByAggregate(t *testing.T) {
	r := mustRunner(t, `{"version":1,"source":"jobs","ops":[
		{"op":"group_by","by":["tenant"]},
		{"op":"aggregate","aggs":[
			{"fn":"count"},
			{"fn":"avg","field":"response_seconds"},
			{"fn":"max","field":"response_seconds"},
			{"fn":"p50","field":"response_seconds"}]}]}`, interval)
	if _, err := r.PushTick(0, tickSchedule()); err != nil {
		t.Fatal(err)
	}
	res := r.Result()
	if len(res.Rows) != 2 {
		t.Fatalf("got %d groups, want 2: %+v", len(res.Rows), res.Rows)
	}
	a, b := res.Rows[0], res.Rows[1]
	if a.Group["tenant"] != "A" || b.Group["tenant"] != "B" {
		t.Fatalf("groups not sorted by key: %+v", res.Rows)
	}
	// Tenant A: responses 10s and 35s.
	if a.Values["count"] != 2 || a.Values["avg_response_seconds"] != 22.5 ||
		a.Values["max_response_seconds"] != 35 || a.Values["p50_response_seconds"] != 10 {
		t.Fatalf("tenant A aggregates wrong: %+v", a.Values)
	}
	if b.Values["count"] != 1 || b.Values["avg_response_seconds"] != 50 {
		t.Fatalf("tenant B aggregates wrong: %+v", b.Values)
	}
	if a.WindowToSeconds != -1 {
		t.Fatalf("un-windowed aggregate should span the unbounded window, got %+v", a)
	}
}

// TestWindowTick checks per-tick bucketing: each tick opens fresh cells,
// and the delta returned by PushTick covers exactly that tick's bucket.
func TestWindowTick(t *testing.T) {
	r := mustRunner(t, `{"version":1,"source":"tasks","ops":[
		{"op":"group_by","by":["tenant"]},
		{"op":"window","size":"tick"},
		{"op":"aggregate","aggs":[{"fn":"sum","field":"duration_seconds"}]}]}`, interval)
	s := tickSchedule()
	for i := 0; i < 3; i++ {
		rows, err := r.PushTick(i, s)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 2 {
			t.Fatalf("tick %d delta has %d rows, want 2", i, len(rows))
		}
		for _, rw := range rows {
			if rw.WindowFromSeconds != float64(i)*100 || rw.WindowToSeconds != float64(i+1)*100 {
				t.Fatalf("tick %d bucket wrong: %+v", i, rw)
			}
		}
	}
	res := r.Result()
	if len(res.Rows) != 6 {
		t.Fatalf("got %d cells, want 6 (2 tenants × 3 ticks): %+v", len(res.Rows), res.Rows)
	}
}

// TestWindowDuration checks fixed-duration bucketing within a tick.
func TestWindowDuration(t *testing.T) {
	r := mustRunner(t, `{"version":1,"source":"tasks","ops":[
		{"op":"window","size":"50s"},
		{"op":"aggregate","aggs":[{"fn":"count"}]}]}`, interval)
	if _, err := r.PushTick(0, tickSchedule()); err != nil {
		t.Fatal(err)
	}
	res := r.Result()
	// Task starts at 0, 10, 20 (bucket 0) and 50 (bucket 1).
	if len(res.Rows) != 2 {
		t.Fatalf("got %d buckets, want 2: %+v", len(res.Rows), res.Rows)
	}
	if res.Rows[0].Values["count"] != 3 || res.Rows[1].Values["count"] != 1 {
		t.Fatalf("bucket counts wrong: %+v", res.Rows)
	}
	if res.Rows[1].WindowFromSeconds != 50 || res.Rows[1].WindowToSeconds != 100 {
		t.Fatalf("bucket bounds wrong: %+v", res.Rows[1])
	}
}

// TestPlanWindowClipsTicks checks the plan-level [from, to) window: rows
// outside are dropped, ticks wholly past "to" finish the query.
func TestPlanWindowClipsTicks(t *testing.T) {
	r := mustRunner(t, `{"version":1,"source":"events","from":"105s","to":"150s","ops":[
		{"op":"filter","field":"kind","eq":"job-submit"}]}`, interval)
	s := tickSchedule()
	rows0, err := r.PushTick(0, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows0) != 0 {
		t.Fatalf("tick 0 is wholly before the window, got %d rows", len(rows0))
	}
	rows1, err := r.PushTick(1, s)
	if err != nil {
		t.Fatal(err)
	}
	// Submits at session times 100, 105, 120 → only 105 and 120 are inside.
	if len(rows1) != 2 || rows1[0].TimeSeconds != 105 || rows1[1].TimeSeconds != 120 {
		t.Fatalf("window clipping wrong: %+v", rows1)
	}
	rows2, err := r.PushTick(2, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows2) != 0 {
		t.Fatalf("tick 2 is past the window, got %d rows", len(rows2))
	}
}

// TestLimitRaw checks first-rows-fast truncation: once the cap is hit
// the runner is done and later ticks cost nothing.
func TestLimitRaw(t *testing.T) {
	r := mustRunner(t, `{"version":1,"source":"events","ops":[{"op":"limit","n":3}]}`, interval)
	s := tickSchedule()
	rows, err := r.PushTick(0, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	rows, err = r.PushTick(1, s)
	if err != nil || len(rows) != 0 {
		t.Fatalf("limit-satisfied runner still emitting: %v, %d rows", err, len(rows))
	}
	res := r.Result()
	if len(res.Rows) != 3 || !res.Truncated {
		t.Fatalf("result not truncated at the limit: %+v", res)
	}
}

// TestLimitGroups checks the aggregate-mode reading of limit: a cap on
// first-seen distinct groups, with admitted groups still updating.
func TestLimitGroups(t *testing.T) {
	r := mustRunner(t, `{"version":1,"source":"tasks","ops":[
		{"op":"group_by","by":["tenant"]},
		{"op":"aggregate","aggs":[{"fn":"count"}]},
		{"op":"limit","n":1}]}`, interval)
	for i := 0; i < 2; i++ {
		if _, err := r.PushTick(i, tickSchedule()); err != nil {
			t.Fatal(err)
		}
	}
	res := r.Result()
	if len(res.Rows) != 1 || !res.Truncated {
		t.Fatalf("group cap not applied: %+v", res)
	}
	// Tenant A is first-seen (earliest task start) and keeps accumulating
	// across ticks even though B's rows are being dropped.
	if res.Rows[0].Group["tenant"] != "A" || res.Rows[0].Values["count"] != 4 {
		t.Fatalf("admitted group wrong: %+v", res.Rows[0])
	}
}

// TestMaxGroupsGuard checks the runtime cardinality guard.
func TestMaxGroupsGuard(t *testing.T) {
	r := mustRunner(t, `{"version":1,"source":"events","ops":[
		{"op":"group_by","by":["job"]},
		{"op":"aggregate","aggs":[{"fn":"count"}]}]}`, interval)
	r.MaxGroups = 2
	_, err := r.PushTick(0, tickSchedule())
	if err == nil || !strings.Contains(err.Error(), "exceeds 2 distinct") {
		t.Fatalf("got %v, want group-cap error", err)
	}
}

// TestOutOfOrderTick checks the sequencing contract.
func TestOutOfOrderTick(t *testing.T) {
	r := mustRunner(t, `{"version":1,"source":"events"}`, interval)
	if _, err := r.PushTick(1, tickSchedule()); err == nil {
		t.Fatal("out-of-order tick accepted")
	}
}

// TestDeltasReplayToOneShot is the subscription/one-shot agreement at
// the runner level: applying every PushTick delta last-write-wins, keyed
// by (window, group), reproduces Result exactly. The service-level SSE
// test rides on this same property over HTTP.
func TestDeltasReplayToOneShot(t *testing.T) {
	plans := []string{
		`{"version":1,"source":"jobs","ops":[
			{"op":"group_by","by":["tenant"]},
			{"op":"aggregate","aggs":[{"fn":"count"},{"fn":"p99","field":"response_seconds"}]}]}`,
		`{"version":1,"source":"tasks","ops":[
			{"op":"group_by","by":["tenant","task_kind"]},
			{"op":"window","size":"tick"},
			{"op":"aggregate","aggs":[{"fn":"sum","field":"duration_seconds"}]}]}`,
		`{"version":1,"source":"events","from":"50s","to":"250s","ops":[
			{"op":"filter","field":"kind","eq":"task-end"}]}`,
	}
	for pi, js := range plans {
		stream := mustRunner(t, js, interval)
		oneshot := mustRunner(t, js, interval)
		s := tickSchedule()
		replay := map[string]ResultRow{}
		var order []string
		for i := 0; i < 3; i++ {
			rows, err := stream.PushTick(i, s)
			if err != nil {
				t.Fatal(err)
			}
			for j, rw := range rows {
				key := rowKey(rw, i, j)
				if _, seen := replay[key]; !seen {
					order = append(order, key)
				}
				replay[key] = rw
			}
			if _, err := oneshot.PushTick(i, s); err != nil {
				t.Fatal(err)
			}
		}
		res := oneshot.Result()
		if len(res.Rows) != len(order) {
			t.Fatalf("plan %d: replay has %d rows, one-shot %d", pi, len(order), len(res.Rows))
		}
		// The one-shot result must be exactly the replayed final states
		// (ordering aside); index replay rows by their identity key.
		for _, rw := range res.Rows {
			key := rowIdentity(rw)
			found := false
			for _, k := range order {
				got := replay[k]
				if rowIdentity(got) == key && rowsEqual(got, rw) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("plan %d: one-shot row %+v missing from replayed deltas", pi, rw)
			}
		}
	}
}

// rowKey identifies a delta row for last-write-wins replay: aggregate
// rows by (window, group), raw rows by their emission identity.
func rowKey(rw ResultRow, tick, j int) string {
	if rw.Group != nil {
		return rowIdentity(rw)
	}
	return fmt.Sprintf("raw/%d/%d", tick, j)
}

func rowIdentity(rw ResultRow) string {
	if rw.Group == nil {
		return fmt.Sprintf("raw/%d/%v/%v/%v", rw.Tick, rw.TimeSeconds, rw.Strings, rw.Values)
	}
	keys := make([]string, 0, len(rw.Group))
	for _, k := range groupKeysSorted(rw.Group) {
		keys = append(keys, k+"="+rw.Group[k])
	}
	return fmt.Sprintf("agg/%v/%v/%s", rw.WindowFromSeconds, rw.WindowToSeconds, strings.Join(keys, ","))
}

// groupKeysSorted returns the map's keys in sorted order (tests live in
// the determinism-locked package, so no bare map-range ordering leaks).
func groupKeysSorted(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

func rowsEqual(a, b ResultRow) bool {
	if a.Tick != b.Tick || a.TimeSeconds != b.TimeSeconds ||
		a.WindowFromSeconds != b.WindowFromSeconds || a.WindowToSeconds != b.WindowToSeconds ||
		len(a.Group) != len(b.Group) || len(a.Strings) != len(b.Strings) || len(a.Values) != len(b.Values) {
		return false
	}
	for _, k := range groupKeysSorted(a.Group) {
		if b.Group[k] != a.Group[k] {
			return false
		}
	}
	for _, k := range groupKeysSorted(a.Strings) {
		if b.Strings[k] != a.Strings[k] {
			return false
		}
	}
	for k, v := range a.Values {
		if math.Float64bits(b.Values[k]) != math.Float64bits(v) {
			return false
		}
	}
	return true
}

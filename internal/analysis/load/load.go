// Package load type-checks packages of this module (plus their standard
// library dependencies) using only the standard library toolchain —
// go/build for build-constraint-aware file selection, go/parser, and
// go/types. It exists because the repo takes no module dependencies:
// tempolint cannot import golang.org/x/tools/go/packages, so it carries
// its own loader with the same essential contract (ASTs + full type
// information for target packages, export-level type info for
// dependencies).
//
// Dependencies are type-checked with IgnoreFuncBodies (only their
// exported shape matters), so loading the whole module costs about a
// second. Target packages are parsed with comments and checked with
// bodies, producing the types.Info analyzers consume.
package load

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one fully loaded target package.
type Package struct {
	// Path is the import path ("tempo/internal/qs", or the fixture path
	// under an extra source root).
	Path string
	// Dir is the directory holding the package's files.
	Dir string
	// Files are the parsed non-test Go files, with comments.
	Files []*ast.File
	// Types and Info carry the go/types result for the package.
	Types *types.Package
	Info  *types.Info
}

// Loader resolves, parses, and type-checks packages. It is not safe for
// concurrent use. Results are cached per Loader, so loading many target
// packages shares one pass over the standard library.
type Loader struct {
	Fset *token.FileSet
	// ModRoot/ModPath locate the module ("tempo" at the repo root). They
	// may be empty when loading only fixture packages.
	ModRoot string
	ModPath string
	// SrcDirs are extra source roots searched after GOROOT and the
	// module: an import path p resolves to dir SrcDirs[i]/p. This is the
	// analysistest fixture layout (testdata/src/<path>).
	SrcDirs []string

	ctxt    build.Context
	deps    map[string]*types.Package // bodyless packages, for imports
	loading map[string]bool
}

// New returns a Loader rooted at the module containing dir (found by
// walking up to the nearest go.mod). dir may be empty for the current
// working directory.
func New(dir string) (*Loader, error) {
	if dir == "" {
		wd, err := os.Getwd()
		if err != nil {
			return nil, err
		}
		dir = wd
	}
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	l := NewFixture(nil)
	l.ModRoot = root
	l.ModPath = modPath
	return l, nil
}

// NewFixture returns a Loader with no module, resolving non-stdlib
// imports against the given source roots.
func NewFixture(srcDirs []string) *Loader {
	ctxt := build.Default
	// The repo is pure Go; disabling cgo makes go/build select the
	// portable fallback files in std packages like net, which is the only
	// way to type-check them from source without running the cgo tool.
	ctxt.CgoEnabled = false
	return &Loader{
		Fset:    token.NewFileSet(),
		SrcDirs: srcDirs,
		ctxt:    ctxt,
		deps:    map[string]*types.Package{},
		loading: map[string]bool{},
	}
}

func findModule(dir string) (root, modPath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("load: %s/go.mod has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("load: no go.mod above %s", dir)
		}
		d = parent
	}
}

// dirFor maps an import path to its source directory. GOROOT (including
// the std vendor tree) wins, then the module, then the extra roots.
func (l *Loader) dirFor(path string) (string, bool) {
	goroot := runtime.GOROOT()
	if d := filepath.Join(goroot, "src", "vendor", path); isDir(d) {
		return d, true
	}
	if d := filepath.Join(goroot, "src", path); isDir(d) {
		return d, true
	}
	if l.ModPath != "" {
		if path == l.ModPath {
			return l.ModRoot, true
		}
		if rest, ok := strings.CutPrefix(path, l.ModPath+"/"); ok {
			if d := filepath.Join(l.ModRoot, filepath.FromSlash(rest)); isDir(d) {
				return d, true
			}
		}
	}
	for _, root := range l.SrcDirs {
		if d := filepath.Join(root, filepath.FromSlash(path)); isDir(d) {
			return d, true
		}
	}
	return "", false
}

func isDir(d string) bool {
	fi, err := os.Stat(d)
	return err == nil && fi.IsDir()
}

// Import implements types.Importer over the dependency cache; imported
// packages are checked without function bodies.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := l.deps[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("load: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir, ok := l.dirFor(path)
	if !ok {
		return nil, fmt.Errorf("load: cannot resolve import %q (module has no external dependencies)", path)
	}
	files, err := l.parseDir(path, dir, parser.SkipObjectResolution)
	if err != nil {
		return nil, err
	}
	conf := types.Config{Importer: l, IgnoreFuncBodies: true, FakeImportC: true}
	pkg, err := conf.Check(path, l.Fset, files, nil)
	if err != nil {
		return nil, fmt.Errorf("load: type-checking dependency %s: %w", path, err)
	}
	l.deps[path] = pkg
	return pkg, nil
}

func (l *Loader) parseDir(path, dir string, mode parser.Mode) ([]*ast.File, error) {
	bp, err := l.ctxt.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("load: %s: %w", path, err)
	}
	files := make([]*ast.File, 0, len(bp.GoFiles))
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, mode)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// LoadPackage parses (with comments) and fully type-checks one package
// for analysis. Its dependencies come from the bodyless cache, so two
// target packages that import each other each see a consistent view.
func (l *Loader) LoadPackage(path string) (*Package, error) {
	dir, ok := l.dirFor(path)
	if !ok {
		return nil, fmt.Errorf("load: cannot resolve package %q", path)
	}
	files, err := l.parseDir(path, dir, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		return nil, err
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: l, FakeImportC: true}
	pkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("load: type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Dir: dir, Files: files, Types: pkg, Info: info}, nil
}

// Expand resolves command-line patterns ("./...", "./internal/qs",
// "tempo/internal/...") into the sorted list of buildable package import
// paths. Directories named testdata, or starting with "." or "_", are
// never walked.
func (l *Loader) Expand(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var out []string
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			if err := l.walk(l.ModRoot, l.ModPath, add); err != nil {
				return nil, err
			}
		case strings.HasSuffix(pat, "/..."):
			base := strings.TrimSuffix(pat, "/...")
			dir, imp, err := l.resolvePattern(base)
			if err != nil {
				return nil, err
			}
			if err := l.walk(dir, imp, add); err != nil {
				return nil, err
			}
		default:
			_, imp, err := l.resolvePattern(pat)
			if err != nil {
				return nil, err
			}
			add(imp)
		}
	}
	sort.Strings(out)
	return out, nil
}

// resolvePattern maps one non-wildcard pattern to (dir, importPath).
func (l *Loader) resolvePattern(pat string) (dir, imp string, err error) {
	if strings.HasPrefix(pat, "./") || pat == "." {
		rel := strings.TrimPrefix(pat, "./")
		dir = filepath.Join(l.ModRoot, filepath.FromSlash(rel))
		imp = l.ModPath
		if rel != "" && rel != "." {
			imp = l.ModPath + "/" + rel
		}
		if !isDir(dir) {
			return "", "", fmt.Errorf("load: no such package directory %s", dir)
		}
		return dir, imp, nil
	}
	if d, ok := l.dirFor(pat); ok {
		return d, pat, nil
	}
	return "", "", fmt.Errorf("load: cannot resolve pattern %q", pat)
}

func (l *Loader) walk(root, rootImp string, add func(string)) error {
	return filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if _, err := l.ctxt.ImportDir(p, 0); err != nil {
			// Not a buildable package (for example a directory holding
			// only non-Go files); keep walking below it.
			return nil
		}
		rel, err := filepath.Rel(root, p)
		if err != nil {
			return err
		}
		imp := rootImp
		if rel != "." {
			imp = rootImp + "/" + filepath.ToSlash(rel)
		}
		add(imp)
		return nil
	})
}

// Package tempo is a reproduction of "Tempo: Robust and Self-Tuning
// Resource Management in Multi-tenant Parallel Databases" (Tan & Babu,
// VLDB 2016) as a production-quality Go library.
//
// Tempo sits on top of a multi-tenant Resource Manager (RM) — here, a
// faithful container-based fair scheduler with resource shares, min/max
// limits, and two-level preemption timeouts — and self-tunes the RM's
// per-tenant configuration to satisfy declaratively specified SLOs:
//
//	templates := []tempo.Template{
//	    tempo.Template{Queue: "etl", Metric: tempo.DeadlineViolations, Slack: 0.25}.WithTarget(0.05),
//	    {Queue: "adhoc", Metric: tempo.AvgResponseTime},
//	}
//
// The control loop observes the task schedule every interval, evaluates
// the QS (Quantitative SLO) metrics, estimates QS gradients with LOESS,
// runs the PALD multi-objective optimizer to propose candidate
// configurations inside a trust region, scores them in the What-if Model
// (workload generator + fast schedule predictor), applies the best, and
// reverts on observed regressions.
//
// The subpackages are assembled from these building blocks:
//
//   - cluster simulation and RM semantics: internal/cluster, internal/sim
//   - workload model, traces, statistical generators: internal/workload
//   - QS metrics and templates: internal/qs
//   - What-if Model: internal/whatif
//   - PALD and baselines: internal/pald (with internal/linalg,
//     internal/lp, internal/loess)
//   - the control loop: internal/core
//   - paper experiments: internal/exp
//
// This root package re-exports the user-facing API so applications depend
// on a single import path. See examples/ for runnable programs and
// DESIGN.md / EXPERIMENTS.md for the reproduction methodology.
package tempo

import (
	"time"

	"tempo/internal/cluster"
	"tempo/internal/core"
	"tempo/internal/pald"
	"tempo/internal/qs"
	"tempo/internal/whatif"
	"tempo/internal/workload"
)

// RM configuration (the tunable space of §3.2).
type (
	// TenantConfig is one tenant's RM parameters: share weight, min/max
	// container limits, and the two preemption timeouts.
	TenantConfig = cluster.TenantConfig
	// ClusterConfig is a complete RM configuration for a cluster.
	ClusterConfig = cluster.Config
	// Space is the normalized configuration space the optimizer explores.
	Space = cluster.Space
)

// Workload modelling.
type (
	// Trace is a recorded or synthesized workload.
	Trace = workload.Trace
	// JobSpec is one job: a DAG of stages of parallel tasks.
	JobSpec = workload.JobSpec
	// StageSpec is a set of parallel tasks with stage dependencies.
	StageSpec = workload.StageSpec
	// TaskSpec is a single task.
	TaskSpec = workload.TaskSpec
	// TenantProfile is a statistical workload model for one tenant.
	TenantProfile = workload.TenantProfile
	// GenerateOptions configure synthetic trace generation.
	GenerateOptions = workload.GenerateOptions
	// Dist is a sampling distribution used by profiles.
	Dist = workload.Dist
)

// Task kinds.
const (
	// Map tasks run in map containers.
	Map = workload.Map
	// Reduce tasks run in reduce containers.
	Reduce = workload.Reduce
)

// Schedules (the RM's output, and QS metrics' input).
type (
	// Schedule is a simulated or observed task schedule.
	Schedule = cluster.Schedule
	// TaskRecord is one container occupation (task attempt).
	TaskRecord = cluster.TaskRecord
	// JobRecord is one job's outcome.
	JobRecord = cluster.JobRecord
	// RunOptions configure a cluster run.
	RunOptions = cluster.Options
	// NoiseModel injects production-like disturbances into emulated runs.
	NoiseModel = cluster.NoiseModel
)

// Event streams (the canonical incremental view of a schedule).
type (
	// Event is one element of a schedule's canonical ordered event stream
	// (Schedule.Events): job submit/finish, task start/end, allocation
	// deltas.
	Event = cluster.Event
	// EventKind classifies a schedule event.
	EventKind = cluster.EventKind
)

// The schedule event kinds, in canonical same-instant order.
const (
	// EventJobSubmit marks a job entering the system.
	EventJobSubmit = cluster.EventJobSubmit
	// EventTaskStart marks a container being occupied (+1 allocation).
	EventTaskStart = cluster.EventTaskStart
	// EventTaskEnd marks a container being released (-1 allocation).
	EventTaskEnd = cluster.EventTaskEnd
	// EventJobFinish marks a job's terminal record.
	EventJobFinish = cluster.EventJobFinish
)

// ReplaySchedule reconstructs a Schedule from its event stream.
func ReplaySchedule(capacity int, horizon time.Duration, events []Event) *Schedule {
	return cluster.ReplaySchedule(capacity, horizon, events)
}

// Accumulator answers QS queries over arbitrary [From, To) windows after
// consuming a schedule's event stream exactly once — the incremental
// counterpart of per-template evaluation.
type Accumulator = qs.Accumulator

// NewAccumulator returns an empty accumulator for the template set over a
// cluster of the given container capacity. Feed it Schedule.Events via
// Observe, Seal, then query Value/Values (safe concurrently).
func NewAccumulator(templates []Template, capacity int) *Accumulator {
	return qs.NewAccumulator(templates, capacity)
}

// TaskOutcome classifies how a task attempt ended.
type TaskOutcome = cluster.TaskOutcome

// Task attempt outcomes.
const (
	// TaskFinished means the attempt ran to completion.
	TaskFinished = cluster.TaskFinished
	// TaskPreempted means the RM killed the attempt.
	TaskPreempted = cluster.TaskPreempted
	// TaskFailed means an injected failure ended the attempt.
	TaskFailed = cluster.TaskFailed
	// TaskKilled means the job was killed by a user.
	TaskKilled = cluster.TaskKilled
	// TaskTruncated means the run's horizon ended first.
	TaskTruncated = cluster.TaskTruncated
)

// NewMapReduceJob builds the canonical two-stage map/reduce job spec.
func NewMapReduceJob(id, tenant string, submit time.Duration, mapDur, redDur []time.Duration) JobSpec {
	return workload.NewMapReduceJob(id, tenant, submit, mapDur, redDur)
}

// SLOs.
type (
	// Template declares one SLO (§5.2).
	Template = qs.Template
	// MetricKind names a QS metric definition.
	MetricKind = qs.Kind
)

// The predefined QS metrics of §5.1.
const (
	// AvgResponseTime is QS_AJR.
	AvgResponseTime = qs.AvgResponseTime
	// DeadlineViolations is QS_DL.
	DeadlineViolations = qs.DeadlineViolations
	// Utilization is QS_UTIL.
	Utilization = qs.Utilization
	// Throughput is QS_THR.
	Throughput = qs.Throughput
	// Fairness is QS_FAIR.
	Fairness = qs.Fairness
)

// Optimization.
type (
	// Optimizer is the PALD multi-objective optimizer.
	Optimizer = pald.Optimizer
	// OptimizerOptions tune PALD.
	OptimizerOptions = pald.Options
	// Target is a per-objective constraint bound.
	Target = pald.Target
	// Strategy is the optimizer interface the control loop drives.
	Strategy = pald.Strategy
	// WhatIfModel predicts QS vectors for candidate configurations. Set its
	// Parallelism field (e.g. to DefaultParallelism()) to fan what-if
	// evaluations out over a worker pool; results are bit-identical to
	// sequential evaluation.
	WhatIfModel = whatif.Model
	// Evaluator is the minimal what-if interface a Controller accepts, for
	// plugging in custom models.
	Evaluator = core.Model
	// BatchEvaluator is the batch-aware extension of Evaluator; models that
	// implement it score each iteration's candidate set in one call.
	BatchEvaluator = core.BatchModel
)

// DefaultParallelism returns the what-if worker count that saturates the
// host: one worker per available CPU.
func DefaultParallelism() int { return whatif.DefaultParallelism() }

// The control loop.
type (
	// Controller runs Tempo's control loop.
	Controller = core.Controller
	// ControllerConfig wires a Controller.
	ControllerConfig = core.Config
	// Iteration is one recorded control-loop pass.
	Iteration = core.Iteration
	// Environment abstracts the live cluster under management.
	Environment = core.Environment
	// EmulatedCluster synthesizes a fresh workload per interval.
	EmulatedCluster = core.EmulatedCluster
	// ReplayEnvironment replays one fixed trace per interval.
	ReplayEnvironment = core.ReplayEnvironment
	// TraceEnvironment replays consecutive windows of a long trace.
	TraceEnvironment = core.TraceEnvironment
)

// Revert-guard policies.
const (
	// RevertOnWorse rolls back configurations that regress the QS vector.
	RevertOnWorse = core.RevertOnWorse
	// RevertOnNonDominance is the paper's literal (stricter) rule.
	RevertOnNonDominance = core.RevertOnNonDominance
	// RevertOff disables the guard.
	RevertOff = core.RevertOff
)

// Run simulates a workload trace under an RM configuration, optionally
// with a noise model emulating a production environment.
func Run(trace *Trace, cfg ClusterConfig, opts RunOptions) (*Schedule, error) {
	return cluster.Run(trace, cfg, opts)
}

// Predict runs the fast deterministic Schedule Predictor (§7.2).
func Predict(trace *Trace, cfg ClusterConfig) (*Schedule, error) {
	return cluster.Predict(trace, cfg)
}

// Generate synthesizes a workload trace from tenant profiles.
func Generate(profiles []TenantProfile, opts GenerateOptions) (*Trace, error) {
	return workload.Generate(profiles, opts)
}

// Evaluate computes the QS vector of a schedule over [from, to) for the
// given SLO templates. It picks the cheaper evaluation path by template
// count: per-template record scans for small SLO sets, or a single pass
// over the schedule's event stream shared by every template — the
// incremental path, asymptotically ahead once templates scale with
// tenants. Results are bit-identical to per-template Template.Eval for
// windows covering the whole schedule and equal within float round-off
// for arbitrary windows.
func Evaluate(templates []Template, s *Schedule, from, to time.Duration) []float64 {
	return qs.EvalStream(templates, s, from, to)
}

// NewController wires a Tempo control loop starting from the given initial
// (expert) RM configuration.
func NewController(cfg ControllerConfig, initial ClusterConfig) (*Controller, error) {
	return core.NewController(cfg, initial)
}

// NewWhatIfFromTrace builds a What-if Model that replays one fixed trace.
func NewWhatIfFromTrace(templates []Template, trace *Trace) (*WhatIfModel, error) {
	return whatif.FromTrace(templates, trace)
}

// NewWhatIfFromProfiles builds a What-if Model that synthesizes fresh
// workloads from statistical tenant profiles. Each sample's seed is derived
// from the base seed with a splitmix64 mix, so distinct base seeds never
// alias the same sample trace.
func NewWhatIfFromProfiles(templates []Template, profiles []TenantProfile, horizon time.Duration, seed int64) (*WhatIfModel, error) {
	return whatif.FromProfiles(templates, profiles, horizon, seed)
}

// DefaultSpace returns a configuration space with sensible bounds for the
// given capacity and tenants.
func DefaultSpace(capacity int, tenants []string) *Space {
	return cluster.DefaultSpace(capacity, tenants)
}

// DefaultNoise returns the production-like noise model of the evaluation.
func DefaultNoise(seed int64) *NoiseModel {
	return cluster.DefaultNoise(seed)
}

// CompanyABC returns the six-tenant production mix of the paper's Table 1.
func CompanyABC(scale float64) []TenantProfile {
	return workload.CompanyABC(scale)
}

// Distribution building blocks for custom tenant profiles.
type (
	// Constant is a degenerate distribution.
	Constant = workload.Constant
	// Uniform is the continuous uniform distribution on [Lo, Hi].
	Uniform = workload.Uniform
	// Exponential has the given mean.
	Exponential = workload.Exponential
	// Lognormal is parameterized by the underlying normal's Mu and Sigma.
	Lognormal = workload.Lognormal
	// Pareto is heavy-tailed with minimum Scale and shape Alpha.
	Pareto = workload.Pareto
	// Mixture draws from weighted components.
	Mixture = workload.Mixture
	// Clamped limits another distribution's samples to [Lo, Hi].
	Clamped = workload.Clamped
	// Empirical samples uniformly from observed values.
	Empirical = workload.Empirical
	// Modulator scales an arrival rate over trace time.
	Modulator = workload.Modulator
)

// LognormalFromMean constructs a Lognormal with the given mean and spread.
func LognormalFromMean(mean, sigma float64) Lognormal {
	return workload.LognormalFromMean(mean, sigma)
}

// DiurnalWeekly returns a day/night + weekend arrival-rate modulator.
func DiurnalWeekly(night, weekend float64) Modulator {
	return workload.DiurnalWeekly(night, weekend)
}

// Periodic returns a bursty periodic arrival-rate modulator.
func Periodic(period, width time.Duration, floor, boost float64) Modulator {
	return workload.Periodic(period, width, floor, boost)
}

// Prebuilt tenant profiles from the paper's evaluation.

// DeadlineDriven returns a deadline-carrying ETL/MV-style tenant profile.
func DeadlineDriven(name string, scale float64) TenantProfile {
	return workload.DeadlineDriven(name, scale)
}

// BestEffort returns a best-effort tenant with long reduce tasks.
func BestEffort(name string, scale float64) TenantProfile {
	return workload.BestEffort(name, scale)
}

// Facebook returns a SWIM-style Facebook-like tenant profile.
func Facebook(name string, scale float64) TenantProfile {
	return workload.Facebook(name, scale)
}

// Cloudera returns a SWIM-style Cloudera-customer-like tenant profile.
func Cloudera(name string, scale float64) TenantProfile {
	return workload.Cloudera(name, scale)
}

// FitProfile estimates a statistical tenant profile from a recorded trace
// (§7.1's "statistical model trained from historical traces").
func FitProfile(trace *Trace, tenant string) (TenantProfile, error) {
	return workload.Fit(trace, tenant)
}

// FitAllProfiles fits a profile for every tenant in the trace.
func FitAllProfiles(trace *Trace) ([]TenantProfile, error) {
	return workload.FitAll(trace)
}

// Decomposition describes how DecomposeTenant split one tenant's jobs into
// size-class sub-queues (§10's approach to tenants with mixed statistical
// characteristics).
type Decomposition = workload.Decomposition

// DecomposeTenant clusters a tenant's jobs into k size classes and rewrites
// the trace so each class submits to its own sub-queue, enabling
// fine-grained SLOs per class.
func DecomposeTenant(trace *Trace, tenant string, k int) (*Trace, *Decomposition, error) {
	return workload.Decompose(trace, tenant, k)
}

// RecomposeTenant maps a sub-queue name back to the original tenant.
func RecomposeTenant(name string) string {
	return workload.Recompose(name)
}

// Predictor is the pluggable schedule-prediction hook of the What-if Model
// (§7.2): adapters for external RM simulators implement this signature.
type Predictor = whatif.Predictor

// Scaled multiplies another distribution's samples by a constant — the
// building block behind TenantProfile.Grow.
type Scaled = workload.Scaled

// Package determinism flags constructs that make output depend on Go
// runtime scheduling or map-iteration order inside the packages whose
// byte-identical output the golden suite locks.
//
// Scope: the deterministic packages (internal/cluster, sim, qs,
// scenario, whatif, workload) plus any file carrying a
// "//tempolint:deterministic" directive (how tick-path files of
// internal/service opt in without dragging the HTTP layer along).
//
// Within scope it reports:
//
//   - range over a map whose body is order-sensitive: appends to an
//     outer slice (unless that slice is sorted after the loop),
//     accumulates floats (float addition is not associative), sends on
//     a channel, writes formatted output, schedules simulator events,
//     or exits the loop early (break/return selects a map-order-
//     dependent element);
//   - time.Now — deterministic code runs on virtual time;
//   - the global math/rand source (rand.Intn, rand.Float64, ...) —
//     all randomness must flow from an explicitly seeded *rand.Rand;
//   - select with two or more communication cases: when several are
//     ready the runtime picks uniformly at random.
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"tempo/internal/analysis"
)

// Analyzer is the determinism analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc:  "flag map-order, wall-clock, global-rand, and select nondeterminism in deterministic packages",
	Run:  run,
}

// DeterministicPkgs are the module packages whose whole output is
// golden-locked. Matched against the package import path.
// internal/store is in scope because recovery correctness hangs on its
// bytes: the WAL codec must invert exactly and snapshots must replay to
// the same trajectory, so map-order or wall-clock leaks there corrupt
// recovered runs just as surely as in the simulator. (Group-commit
// pacing is wall-clock by design and carries an ignore.)
// internal/core joined the scope with the incremental candidate search:
// the controller now owns pruning decisions and decision-latency
// accounting, and its only sanctioned clock is the injected Config.Now —
// a literal time.Now there would silently desync replayed trajectories.
// internal/query joined with the ad-hoc query layer: its contract is
// that streamed deltas replay to the one-shot result bit for bit, which
// a bare map iteration over group cells would break per run.
var DeterministicPkgs = []string{
	"tempo/internal/cluster",
	"tempo/internal/core",
	"tempo/internal/sim",
	"tempo/internal/qs",
	"tempo/internal/query",
	"tempo/internal/scenario",
	"tempo/internal/whatif",
	"tempo/internal/workload",
	"tempo/internal/store",
}

func inScopePkg(path string) bool {
	for _, p := range DeterministicPkgs {
		if path == p {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	pkgScoped := inScopePkg(pass.Pkg.Path())
	for _, f := range pass.Files {
		if !pkgScoped && !analysis.FileHasDirective(f, "deterministic") {
			continue
		}
		checkFile(pass, f)
	}
	return nil
}

func checkFile(pass *analysis.Pass, f *ast.File) {
	// Collect enclosing-function bodies so the map-range check can look
	// for a sort after the loop.
	var funcStack []ast.Node
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				funcStack = append(funcStack, n)
				ast.Inspect(n.Body, visit)
				funcStack = funcStack[:len(funcStack)-1]
			}
			return false
		case *ast.FuncLit:
			funcStack = append(funcStack, n)
			ast.Inspect(n.Body, visit)
			funcStack = funcStack[:len(funcStack)-1]
			return false
		case *ast.RangeStmt:
			if isMapRange(pass, n) {
				var encl ast.Node
				if len(funcStack) > 0 {
					encl = funcStack[len(funcStack)-1]
				}
				checkMapRange(pass, n, encl)
			}
		case *ast.CallExpr:
			checkCall(pass, n)
		case *ast.SelectStmt:
			checkSelect(pass, n)
		}
		return true
	}
	ast.Inspect(f, visit)
}

func isMapRange(pass *analysis.Pass, r *ast.RangeStmt) bool {
	tv, ok := pass.TypesInfo.Types[r.X]
	if !ok {
		return false
	}
	t := tv.Type
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	_, isMap := t.Underlying().(*types.Map)
	return isMap
}

// checkMapRange reports order-sensitive operations in a map-range body.
// inLoop/inFunc track nesting so a break belonging to an inner loop, or
// a return belonging to an inner closure, is not blamed on the range.
func checkMapRange(pass *analysis.Pass, r *ast.RangeStmt, encl ast.Node) {
	info := pass.TypesInfo
	var walk func(n ast.Node, inLoop, inFunc bool)
	walkAll := func(n ast.Node, inLoop, inFunc bool) {
		ast.Inspect(n, func(c ast.Node) bool {
			if c == nil || c == n {
				return true
			}
			walk(c, inLoop, inFunc)
			return false
		})
	}
	walk = func(n ast.Node, inLoop, inFunc bool) {
		switch n := n.(type) {
		case *ast.CallExpr:
			if analysis.IsBuiltinAppend(info, n) {
				// append to an outer slice: iteration order becomes
				// element order — unless the result is sorted after the
				// loop (the collect-then-sort idiom).
				sorted := false
				if len(n.Args) > 0 {
					if obj := analysis.ObjectOf(info, n.Args[0]); obj != nil && sortedAfter(pass, encl, r, obj) {
						sorted = true
					}
				}
				if !sorted {
					pass.Reportf(n.Pos(), "append inside range over map: element order follows map iteration order; collect keys and sort, or sort the result after the loop")
				}
			} else if f := analysis.CalleeFunc(info, n); f != nil {
				name := f.Name()
				if name == "At" || name == "AtArg" {
					pass.Reportf(n.Pos(), "scheduling simulator events inside range over map: event insertion order follows map iteration order")
				}
				if isOutputCall(f) {
					pass.Reportf(n.Pos(), "writing output inside range over map: output order follows map iteration order")
				}
			}
			walkAll(n, inLoop, inFunc)
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "channel send inside range over map: message order follows map iteration order")
			walkAll(n, inLoop, inFunc)
		case *ast.AssignStmt:
			if op := n.Tok; op == token.ADD_ASSIGN || op == token.SUB_ASSIGN || op == token.MUL_ASSIGN || op == token.QUO_ASSIGN {
				for _, lhs := range n.Lhs {
					if isFloat(info, lhs) && declaredOutside(info, lhs, r) {
						pass.Reportf(n.Pos(), "floating-point accumulation inside range over map: float addition is not associative, so the sum depends on map iteration order; accumulate over sorted keys")
					}
				}
			}
			walkAll(n, inLoop, inFunc)
		case *ast.BranchStmt:
			if n.Tok == token.BREAK && n.Label == nil && !inLoop {
				pass.Reportf(n.Pos(), "break inside range over map selects a map-order-dependent element; iterate sorted keys or restructure as a lookup")
			}
		case *ast.ReturnStmt:
			if !inFunc {
				pass.Reportf(n.Pos(), "return inside range over map selects a map-order-dependent element (first match wins); iterate sorted keys")
			}
			walkAll(n, inLoop, inFunc)
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			// break now binds to this statement, not the map range.
			walkAll(n, true, inFunc)
		case *ast.FuncLit:
			// The closure body still runs (or captures state) in
			// iteration order, so its operations are checked, but its
			// returns and breaks are local to it.
			walkAll(n, true, true)
		default:
			walkAll(n, inLoop, inFunc)
		}
	}
	walkAll(r.Body, false, false)
}

// sortedAfter reports whether obj (a slice being appended to inside the
// loop) is passed to a sort call after the range statement within the
// enclosing function.
func sortedAfter(pass *analysis.Pass, encl ast.Node, r *ast.RangeStmt, obj types.Object) bool {
	if encl == nil {
		return false
	}
	found := false
	ast.Inspect(encl, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < r.End() {
			return true
		}
		f := analysis.CalleeFunc(pass.TypesInfo, call)
		if f == nil || f.Pkg() == nil {
			return true
		}
		pkg := f.Pkg().Path()
		if (pkg == "sort" || pkg == "slices") && strings.HasPrefix(f.Name(), "Sort") ||
			pkg == "sort" && (f.Name() == "Slice" || f.Name() == "SliceStable" || f.Name() == "Strings" || f.Name() == "Ints" || f.Name() == "Float64s") {
			for _, arg := range call.Args {
				if analysis.UsesObject(pass.TypesInfo, arg, obj) {
					found = true
					break
				}
			}
		}
		return !found
	})
	return found
}

func isOutputCall(f *types.Func) bool {
	if f.Pkg() != nil && f.Pkg().Path() == "fmt" && strings.HasPrefix(f.Name(), "Fprint") {
		return true
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	switch f.Name() {
	case "WriteString", "WriteByte", "WriteRune", "Write":
		return true
	}
	return false
}

func isFloat(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func declaredOutside(info *types.Info, e ast.Expr, r *ast.RangeStmt) bool {
	obj := analysis.ObjectOf(info, e)
	if obj == nil {
		// Field or index expression: the storage outlives the loop.
		return true
	}
	return obj.Pos() < r.Pos() || obj.Pos() > r.End()
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	f := analysis.CalleeFunc(pass.TypesInfo, call)
	if f == nil || f.Pkg() == nil {
		return
	}
	pkg := f.Pkg().Path()
	sig, _ := f.Type().(*types.Signature)
	isPkgFunc := sig != nil && sig.Recv() == nil
	switch {
	case pkg == "time" && f.Name() == "Now" && isPkgFunc:
		pass.Reportf(call.Pos(), "time.Now in deterministic code: simulation runs on virtual time; thread the engine clock instead")
	case (pkg == "math/rand" || pkg == "math/rand/v2") && isPkgFunc && f.Name() != "New" && f.Name() != "NewSource" && f.Name() != "NewPCG" && f.Name() != "NewChaCha8":
		pass.Reportf(call.Pos(), "global math/rand source in deterministic code: draw from an explicitly seeded *rand.Rand so runs replay")
	}
}

func checkSelect(pass *analysis.Pass, sel *ast.SelectStmt) {
	comms := 0
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
			comms++
		}
	}
	if comms >= 2 {
		pass.Reportf(sel.Pos(), "select with %d communication cases in deterministic code: when several are ready the winner is chosen at random; give the cases a deterministic priority order", comms)
	}
}

package cluster

import (
	"testing"
	"time"

	"tempo/internal/workload"
)

func TestWithSubTenantsSplitsEvenly(t *testing.T) {
	cfg := Config{TotalContainers: 40, Tenants: map[string]TenantConfig{
		"DEV":   {Weight: 3, MinShare: 10, MaxShare: 30, SharePreemptTimeout: time.Minute, MinSharePreemptTimeout: 30 * time.Second},
		"other": {Weight: 1},
	}}
	out := cfg.WithSubTenants("DEV", []string{"DEV/size0", "DEV/size1"})
	if _, ok := out.Tenants["DEV"]; ok {
		t.Fatal("parent tenant still present")
	}
	a := out.Tenants["DEV/size0"]
	b := out.Tenants["DEV/size1"]
	if a.Weight != 1.5 || b.Weight != 1.5 {
		t.Fatalf("weights = %v, %v", a.Weight, b.Weight)
	}
	if a.MinShare+b.MinShare != 10 {
		t.Fatalf("min shares %d + %d != 10", a.MinShare, b.MinShare)
	}
	if a.MaxShare != 15 || b.MaxShare != 15 {
		t.Fatalf("max shares = %d, %d", a.MaxShare, b.MaxShare)
	}
	if a.SharePreemptTimeout != time.Minute || a.MinSharePreemptTimeout != 30*time.Second {
		t.Fatal("preemption timeouts not inherited")
	}
	if out.Tenants["other"].Weight != 1 {
		t.Fatal("unrelated tenant disturbed")
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	// Original untouched.
	if cfg.Tenants["DEV"].Weight != 3 {
		t.Fatal("original mutated")
	}
}

func TestWithSubTenantsRemainderAndFloors(t *testing.T) {
	cfg := Config{TotalContainers: 40, Tenants: map[string]TenantConfig{
		"T": {Weight: 1, MinShare: 7, MaxShare: 2},
	}}
	out := cfg.WithSubTenants("T", []string{"a", "b", "c"})
	total := 0
	for _, sub := range []string{"a", "b", "c"} {
		tc := out.Tenants[sub]
		total += tc.MinShare
		if tc.MaxShare < 1 {
			t.Fatalf("max share floored below 1: %d", tc.MaxShare)
		}
		if tc.MinShare > tc.MaxShare {
			t.Fatalf("min %d > max %d", tc.MinShare, tc.MaxShare)
		}
	}
	// MaxShare 2 / 3 floors to 1 each, so min shares are clamped to max.
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	if out.WithSubTenants("a", nil).Tenants["a"].Weight == 0 {
		t.Fatal("empty subs should be a no-op clone")
	}
}

func TestWithSubTenantsUnknownParentUsesDefault(t *testing.T) {
	cfg := Config{TotalContainers: 10, Tenants: map[string]TenantConfig{}}
	out := cfg.WithSubTenants("ghost", []string{"g1", "g2"})
	if out.Tenants["g1"].Weight != 0.5 {
		t.Fatalf("default split weight = %v", out.Tenants["g1"].Weight)
	}
}

// Integration: a decomposed trace scheduled under a split configuration
// behaves (capacity invariants hold, jobs complete) and the small size
// class is no longer stuck behind the big one.
func TestDecomposedTraceSchedules(t *testing.T) {
	var jobs []workload.JobSpec
	// A burst of big jobs then small jobs, all on one queue.
	for i := 0; i < 4; i++ {
		big := make([]time.Duration, 20)
		for j := range big {
			big[j] = 10 * time.Minute
		}
		jobs = append(jobs, workload.NewMapReduceJob("big-"+string(rune('a'+i)), "mixed", 0, big, nil))
	}
	for i := 0; i < 10; i++ {
		jobs = append(jobs, workload.NewMapReduceJob("small-"+string(rune('a'+i)), "mixed",
			time.Duration(i)*time.Second, []time.Duration{5 * time.Second}, nil))
	}
	tr := &workload.Trace{Name: "mix", Horizon: time.Hour, Jobs: jobs}
	tr.Sort()

	// Monolithic queue: smalls queue behind the bigs (FIFO per tenant).
	mono := Config{TotalContainers: 10, Tenants: map[string]TenantConfig{"mixed": {Weight: 1}}}
	sMono, err := Predict(tr, mono)
	if err != nil {
		t.Fatal(err)
	}

	decomposed, dec, err := workload.Decompose(tr, "mixed", 2)
	if err != nil {
		t.Fatal(err)
	}
	split := mono.WithSubTenants("mixed", dec.SubTenants)
	sSplit, err := Predict(decomposed, split)
	if err != nil {
		t.Fatal(err)
	}

	meanSmall := func(s *Schedule) time.Duration {
		var sum time.Duration
		n := 0
		for _, j := range s.Jobs {
			if len(j.ID) >= 5 && j.ID[:5] == "small" && j.Completed {
				sum += j.Finish - j.Submit
				n++
			}
		}
		if n == 0 {
			t.Fatal("no small jobs completed")
		}
		return sum / time.Duration(n)
	}
	if got, was := meanSmall(sSplit), meanSmall(sMono); got >= was {
		t.Fatalf("decomposition did not help small jobs: %v vs %v", got, was)
	}
	for _, p := range sSplit.UsageTimeline("") {
		if p.Count > split.TotalContainers {
			t.Fatal("capacity exceeded under split config")
		}
	}
}

// Provisioning reproduces §8.2.4: use Tempo's What-if Model to answer
// "how small a cluster can run this workload without breaking the SLOs?" —
// the resource-provisioning / cost-cutting application.
//
//	go run ./examples/provisioning
package main

import (
	"fmt"
	"log"
	"time"

	"tempo"
)

func main() {
	// The workload whose home we are sizing.
	profiles := []tempo.TenantProfile{
		tempo.DeadlineDriven("prod", 2),
		tempo.BestEffort("adhoc", 2),
	}
	horizon := 4 * time.Hour
	trace, err := tempo.Generate(profiles, tempo.GenerateOptions{Horizon: horizon, Seed: 21})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %d jobs / %d tasks over %s\n\n", len(trace.Jobs), trace.TaskCount(), horizon)

	// SLO targets the business cares about.
	const (
		deadlineMissBudget = 0.05   // <= 5% of prod jobs may miss deadlines
		adhocLatencyBudget = 3600.0 // adhoc jobs should average under an hour
	)
	templates := []tempo.Template{
		{Queue: "prod", Metric: tempo.DeadlineViolations, Slack: 0.25},
		{Queue: "adhoc", Metric: tempo.AvgResponseTime},
	}

	fmt.Printf("%10s  %14s  %16s  %s\n", "containers", "prod DL-miss", "adhoc AJR (s)", "verdict")
	smallest := -1
	for _, capacity := range []int{160, 120, 96, 80, 64, 48, 32, 24} {
		cfg := tempo.ClusterConfig{
			TotalContainers: capacity,
			Tenants: map[string]tempo.TenantConfig{
				"prod":  {Weight: 2, MinShare: capacity / 4, MinSharePreemptTimeout: time.Minute},
				"adhoc": {Weight: 1},
			},
		}
		// One fast schedule prediction per candidate size — the same
		// what-if machinery the control loop uses.
		sched, err := tempo.Predict(trace, cfg)
		if err != nil {
			log.Fatal(err)
		}
		v := tempo.Evaluate(templates, sched, 0, sched.Horizon+time.Nanosecond)
		ok := v[0] <= deadlineMissBudget && v[1] <= adhocLatencyBudget
		verdict := "meets SLOs"
		if !ok {
			verdict = "VIOLATES SLOs"
		} else if smallest < 0 || capacity < smallest {
			smallest = capacity
		}
		fmt.Printf("%10d  %14.3f  %16.1f  %s\n", capacity, v[0], v[1], verdict)
	}
	if smallest > 0 {
		fmt.Printf("\nsmallest SLO-compliant cluster: %d containers\n", smallest)
	} else {
		fmt.Println("\nno tested size meets the SLOs; provision more than the largest tested")
	}

	// Cross-size estimation (Figure 12's caveat): profiles fitted from a
	// trace observed on a small cluster predict a larger one with error
	// that grows as the source shrinks.
	fmt.Println("\ncross-size estimation check (predict 160 containers from fitted profiles):")
	truthSched, err := tempo.Predict(trace, sizedConfig(160))
	if err != nil {
		log.Fatal(err)
	}
	truth := tempo.Evaluate(templates, truthSched, 0, truthSched.Horizon+time.Nanosecond)
	for _, srcCap := range []int{160, 80, 40} {
		srcSched, err := tempo.Run(trace, sizedConfig(srcCap), tempo.RunOptions{Noise: tempo.DefaultNoise(33), Horizon: horizon})
		if err != nil {
			log.Fatal(err)
		}
		// Harvest completed jobs into a trace, re-fit, re-generate.
		harvest := harvestTrace(srcSched)
		fitted, err := tempo.FitAllProfiles(harvest)
		if err != nil {
			log.Fatal(err)
		}
		model, err := tempo.NewWhatIfFromProfiles(templates, fitted, horizon, 44)
		if err != nil {
			log.Fatal(err)
		}
		model.Parallelism = tempo.DefaultParallelism()
		est, err := model.Evaluate(sizedConfig(160))
		if err != nil {
			log.Fatal(err)
		}
		errPct := 0.0
		if truth[1] != 0 {
			errPct = (est[1] - truth[1]) / truth[1] * 100
		}
		fmt.Printf("  source %3d containers -> adhoc AJR estimate %7.1fs (truth %.1fs, error %+.1f%%)\n",
			srcCap, est[1], truth[1], errPct)
	}
}

func sizedConfig(capacity int) tempo.ClusterConfig {
	return tempo.ClusterConfig{
		TotalContainers: capacity,
		Tenants: map[string]tempo.TenantConfig{
			"prod":  {Weight: 2, MinShare: capacity / 4, MinSharePreemptTimeout: time.Minute},
			"adhoc": {Weight: 1},
		},
	}
}

// harvestTrace rebuilds job specs from an observed schedule's completed
// jobs, the way a deployment would mine the RM's job-history logs.
func harvestTrace(s *tempo.Schedule) *tempo.Trace {
	byJob := map[string][2][]time.Duration{}
	for _, t := range s.Tasks {
		if t.Outcome != tempo.TaskFinished {
			continue
		}
		pair := byJob[t.JobID]
		if t.Kind == tempo.Map {
			pair[0] = append(pair[0], t.End-t.Start)
		} else {
			pair[1] = append(pair[1], t.End-t.Start)
		}
		byJob[t.JobID] = pair
	}
	tr := &tempo.Trace{Name: "harvest", Horizon: s.Horizon}
	for _, j := range s.Jobs {
		if !j.Completed {
			continue
		}
		pair, ok := byJob[j.ID]
		if !ok || len(pair[0]) == 0 {
			continue
		}
		spec := tempo.NewMapReduceJob(j.ID, j.Tenant, j.Submit, pair[0], pair[1])
		spec.Deadline = j.Deadline
		tr.Jobs = append(tr.Jobs, spec)
	}
	tr.Sort()
	return tr
}

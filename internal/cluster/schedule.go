package cluster

import (
	"sort"
	"time"

	"tempo/internal/workload"
)

// TaskOutcome classifies how a task attempt ended.
type TaskOutcome int

// Task attempt outcomes.
const (
	// TaskFinished means the attempt ran to completion.
	TaskFinished TaskOutcome = iota
	// TaskPreempted means the RM killed the attempt to free containers for
	// a starved tenant; its work is lost.
	TaskPreempted
	// TaskFailed means the attempt died of an injected failure (noisy
	// emulation only); its work is lost.
	TaskFailed
	// TaskKilled means the attempt was terminated because its job was
	// killed by a user or DBA (noisy emulation only).
	TaskKilled
	// TaskTruncated means the run's horizon ended while the attempt was
	// still executing.
	TaskTruncated
)

func (o TaskOutcome) String() string {
	switch o {
	case TaskFinished:
		return "finished"
	case TaskPreempted:
		return "preempted"
	case TaskFailed:
		return "failed"
	case TaskKilled:
		return "killed"
	case TaskTruncated:
		return "truncated"
	}
	return "unknown"
}

// TaskRecord is one container occupation: a single attempt of a task. A
// task preempted twice and then finishing contributes three records. This
// is exactly the "task schedule" the paper defines QS metrics over: start
// time, end time, and resources (one container) per task run on behalf of
// a tenant.
type TaskRecord struct {
	JobID   string
	Tenant  string
	Kind    workload.TaskKind
	Attempt int
	Start   time.Duration
	End     time.Duration
	Outcome TaskOutcome
}

// Duration returns the container time the attempt consumed.
func (t *TaskRecord) Duration() time.Duration { return t.End - t.Start }

// JobRecord summarizes one job's fate.
type JobRecord struct {
	ID     string
	Tenant string
	Submit time.Duration
	// Finish is when the job's last stage completed (or when it was killed
	// or the horizon ended). Meaningful with Completed.
	Finish time.Duration
	// Deadline copies the job's deadline from the trace; zero means none.
	Deadline time.Duration
	// Completed is true iff every task of every stage finished.
	Completed bool
	// Killed is true iff the job was killed by the injected user/DBA kill
	// process.
	Killed bool
}

// ResponseTime returns Finish − Submit for completed jobs and 0 otherwise.
func (j *JobRecord) ResponseTime() time.Duration {
	if !j.Completed {
		return 0
	}
	return j.Finish - j.Submit
}

// Schedule is the full output of a cluster run: the task schedule plus job
// outcomes. All QS metrics are functions of this value.
type Schedule struct {
	// Capacity is the container count of the cluster that produced this
	// schedule.
	Capacity int
	// Horizon is the virtual time when the run ended.
	Horizon time.Duration
	// Tasks holds every attempt, in start order.
	Tasks []TaskRecord
	// Jobs holds one record per submitted job, in submit order.
	Jobs []JobRecord
}

// JobsByTenant returns the job records of one tenant, in submit order.
func (s *Schedule) JobsByTenant(tenant string) []JobRecord {
	var out []JobRecord
	for i := range s.Jobs {
		if s.Jobs[i].Tenant == tenant {
			out = append(out, s.Jobs[i])
		}
	}
	return out
}

// TasksByTenant returns the task records of one tenant, in start order.
func (s *Schedule) TasksByTenant(tenant string) []TaskRecord {
	var out []TaskRecord
	for i := range s.Tasks {
		if s.Tasks[i].Tenant == tenant {
			out = append(out, s.Tasks[i])
		}
	}
	return out
}

// Tenants returns the sorted tenant names present in the schedule.
func (s *Schedule) Tenants() []string {
	set := map[string]bool{}
	for i := range s.Jobs {
		set[s.Jobs[i].Tenant] = true
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// PreemptionCount returns the number of preempted attempts, optionally
// filtered by tenant ("" = all) and kind (nil = all).
func (s *Schedule) PreemptionCount(tenant string, kind *workload.TaskKind) int {
	n := 0
	for i := range s.Tasks {
		t := &s.Tasks[i]
		if t.Outcome != TaskPreempted {
			continue
		}
		if tenant != "" && t.Tenant != tenant {
			continue
		}
		if kind != nil && t.Kind != *kind {
			continue
		}
		n++
	}
	return n
}

// ContainerSeconds returns total container time consumed, split into useful
// (finished attempts) and wasted (preempted/failed/killed attempts) work.
// This is the quantity behind Figure 1's "effective utilization".
func (s *Schedule) ContainerSeconds() (useful, wasted time.Duration) {
	for i := range s.Tasks {
		t := &s.Tasks[i]
		switch t.Outcome {
		case TaskFinished:
			useful += t.Duration()
		case TaskPreempted, TaskFailed, TaskKilled:
			wasted += t.Duration()
		case TaskTruncated:
			// Neither useful nor wasted: the run simply ended.
		}
	}
	return useful, wasted
}

// UsagePoint is one step of a tenant's container-allocation step function.
type UsagePoint struct {
	Time  time.Duration
	Count int
}

// UsageTimeline returns the step function of containers allocated to the
// given tenant ("" = whole cluster) over time, as change points. The
// returned series starts at the first allocation and is strictly
// time-increasing.
func (s *Schedule) UsageTimeline(tenant string) []UsagePoint {
	type delta struct {
		at time.Duration
		d  int
	}
	var deltas []delta
	for i := range s.Tasks {
		t := &s.Tasks[i]
		if tenant != "" && t.Tenant != tenant {
			continue
		}
		deltas = append(deltas, delta{t.Start, +1}, delta{t.End, -1})
	}
	sort.Slice(deltas, func(i, j int) bool { return deltas[i].at < deltas[j].at })
	var out []UsagePoint
	cur := 0
	for i := 0; i < len(deltas); {
		at := deltas[i].at
		for i < len(deltas) && deltas[i].at == at {
			cur += deltas[i].d
			i++
		}
		if len(out) > 0 && out[len(out)-1].Time == at {
			out[len(out)-1].Count = cur
		} else {
			out = append(out, UsagePoint{Time: at, Count: cur})
		}
	}
	return out
}

// Window returns the sub-schedule of jobs submitted AND completed within
// [from, to), together with the task attempts of those jobs — the job set
// Ji over which the paper defines QS metrics for an interval L. Times are
// not rebased.
func (s *Schedule) Window(from, to time.Duration) *Schedule {
	keep := map[string]bool{}
	out := &Schedule{Capacity: s.Capacity, Horizon: to}
	for i := range s.Jobs {
		j := s.Jobs[i]
		if j.Submit >= from && j.Submit < to && j.Completed && j.Finish < to {
			keep[j.ID] = true
			out.Jobs = append(out.Jobs, j)
		}
	}
	for i := range s.Tasks {
		if keep[s.Tasks[i].JobID] {
			out.Tasks = append(out.Tasks, s.Tasks[i])
		}
	}
	return out
}

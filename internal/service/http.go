package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"tempo"
	"tempo/internal/scenario"
)

// Handler returns the service's HTTP/JSON API:
//
//	POST   /clusters              create a cluster from a scenario spec
//	GET    /clusters              list resident cluster ids
//	GET    /clusters/{id}         cluster status
//	DELETE /clusters/{id}         drop a cluster
//	POST   /clusters/{id}/tick    run one control-loop tick (serialized per cluster)
//	GET    /clusters/{id}/qs      windowed QS query (?from=30m&to=1h30m)
//	POST   /clusters/{id}/whatif  score candidate RM configurations
//	GET    /clusters/{id}/report  canonical scenario report (bit-reproducible)
//	GET    /healthz               liveness
//	GET    /metrics               JSON counters (ticks, what-if evals, per-shard latency quantiles)
//
// All bodies are JSON; errors are {"error": "..."} with conventional
// status codes (400 malformed input, 404 unknown cluster, 409 conflicts,
// 503 shutting down).
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /clusters", s.handleCreate)
	mux.HandleFunc("GET /clusters", s.handleList)
	mux.HandleFunc("GET /clusters/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /clusters/{id}", s.handleDelete)
	mux.HandleFunc("POST /clusters/{id}/tick", s.handleTick)
	mux.HandleFunc("GET /clusters/{id}/qs", s.handleQS)
	mux.HandleFunc("POST /clusters/{id}/whatif", s.handleWhatIf)
	mux.HandleFunc("GET /clusters/{id}/report", s.handleReport)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // the connection is gone; nothing to do
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// errStatus maps service errors to HTTP status codes.
func errStatus(err error) int {
	switch {
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, ErrExists):
		return http.StatusConflict
	case errors.Is(err, tempo.ErrSessionDone):
		return http.StatusConflict
	case errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

// CreateRequest is the POST /clusters body: a scenario spec plus an
// optional id (empty id defaults to the spec's name).
type CreateRequest struct {
	ID   string          `json:"id,omitempty"`
	Spec json.RawMessage `json:"spec"`
}

// CreateResponse echoes the registration.
type CreateResponse struct {
	ID         string `json:"id"`
	Shard      int    `json:"shard"`
	Tenants    int    `json:"tenants"`
	Iterations int    `json:"iterations"`
}

func (s *Service) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req CreateRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Spec) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("missing scenario spec"))
		return
	}
	spec, err := scenario.Load(bytes.NewReader(req.Spec))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	c, err := s.Create(req.ID, spec)
	if err != nil {
		writeError(w, errStatus(err), err)
		return
	}
	writeJSON(w, http.StatusCreated, CreateResponse{
		ID:         c.ID,
		Shard:      c.Shard,
		Tenants:    len(spec.TenantNames()),
		Iterations: spec.Iterations,
	})
}

func (s *Service) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"clusters": s.List()})
}

// StatusResponse is one cluster's GET /clusters/{id} view.
type StatusResponse struct {
	ID         string `json:"id"`
	Shard      int    `json:"shard"`
	Ticks      int    `json:"ticks"`
	Iterations int    `json:"iterations"`
	Done       bool   `json:"done"`
}

func (s *Service) handleStatus(w http.ResponseWriter, r *http.Request) {
	c, err := s.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, errStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, StatusResponse{
		ID:         c.ID,
		Shard:      c.Shard,
		Ticks:      c.Session.Ticks(),
		Iterations: c.Session.Spec().Iterations,
		Done:       c.Session.Done(),
	})
}

func (s *Service) handleDelete(w http.ResponseWriter, r *http.Request) {
	if err := s.Delete(r.PathValue("id")); err != nil {
		writeError(w, errStatus(err), err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// TickResponse is one completed control interval.
type TickResponse struct {
	Iteration int       `json:"iteration"`
	Observed  []float64 `json:"observed"`
	Switched  bool      `json:"switched"`
	Reverted  bool      `json:"reverted"`
	Done      bool      `json:"done"`
}

func (s *Service) handleTick(w http.ResponseWriter, r *http.Request) {
	c, err := s.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, errStatus(err), err)
		return
	}
	it, done, err := s.Tick(c)
	if err != nil {
		writeError(w, errStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, TickResponse{
		Iteration: it.Index,
		Observed:  it.Observed,
		Switched:  it.Switched,
		Reverted:  it.Reverted,
		Done:      done,
	})
}

// QSWindow is the wire form of one interval's windowed QS slice.
type QSWindow struct {
	Iteration int       `json:"iteration"`
	From      string    `json:"from"`
	To        string    `json:"to"`
	Values    []float64 `json:"values"`
}

// QSResponse answers GET /clusters/{id}/qs.
type QSResponse struct {
	Objectives []string   `json:"objectives"`
	Windows    []QSWindow `json:"windows"`
}

func (s *Service) handleQS(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	from, err := parseWindowBound(r.URL.Query().Get("from"))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("malformed from: %w", err))
		return
	}
	to, err := parseWindowBound(r.URL.Query().Get("to"))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("malformed to: %w", err))
		return
	}
	c, err := s.Get(id)
	if err != nil {
		writeError(w, errStatus(err), err)
		return
	}
	windows, err := s.QS(c, from, to)
	if err != nil {
		writeError(w, errStatus(err), err)
		return
	}
	resp := QSResponse{Objectives: c.Session.Objectives(), Windows: []QSWindow{}}
	for _, win := range windows {
		resp.Windows = append(resp.Windows, QSWindow{
			Iteration: win.Iteration,
			From:      win.From.String(),
			To:        win.To.String(),
			Values:    win.Values,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// parseWindowBound parses a qs window bound: empty means 0 (from) /
// everything-so-far (to); otherwise a Go duration string like "90m".
func parseWindowBound(s string) (time.Duration, error) {
	if s == "" {
		return 0, nil
	}
	return time.ParseDuration(s)
}

// WhatIfRequest scores candidate RM configurations. Each candidate maps
// tenant name -> parameters (the scenario spec's initial-config format);
// tenants left out keep weight 1 with no limits. Capacity 0 means the
// scenario's capacity.
type WhatIfRequest struct {
	Capacity   int                                    `json:"capacity,omitempty"`
	Candidates []map[string]scenario.TenantConfigSpec `json:"candidates"`
}

// WhatIfResponse carries one predicted QS vector per candidate, in order.
type WhatIfResponse struct {
	Objectives []string    `json:"objectives"`
	Results    [][]float64 `json:"results"`
}

func (s *Service) handleWhatIf(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var req WhatIfRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	c, err := s.Get(id)
	if err != nil {
		writeError(w, errStatus(err), err)
		return
	}
	if len(req.Candidates) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("no candidate configurations"))
		return
	}
	spec := c.Session.Spec()
	capacity := req.Capacity
	if capacity == 0 {
		capacity = spec.Capacity
	}
	names := spec.TenantNames()
	cfgs := make([]tempo.ClusterConfig, 0, len(req.Candidates))
	for i, cand := range req.Candidates {
		init := scenario.InitialSpec{Tenants: cand}
		cfg, err := init.Config(capacity, names)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("candidate %d: %w", i, err))
			return
		}
		cfgs = append(cfgs, cfg)
	}
	rows, err := s.WhatIf(c, cfgs)
	if err != nil {
		writeError(w, errStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, WhatIfResponse{Objectives: c.Session.Objectives(), Results: rows})
}

func (s *Service) handleReport(w http.ResponseWriter, r *http.Request) {
	c, err := s.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, errStatus(err), err)
		return
	}
	b, err := c.Session.Report().MarshalCanonical()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(b) //nolint:errcheck // the connection is gone; nothing to do
}

func (s *Service) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	clusters := len(s.clusters)
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"clusters":       clusters,
		"shards":         len(s.shards),
		"uptime_seconds": time.Since(s.start).Seconds(),
	})
}

func (s *Service) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Metrics())
}

// decodeBody parses a JSON request body, rejecting unknown fields and
// trailing garbage so client typos fail loudly.
func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("decoding request body: %w", err)
	}
	if dec.More() {
		return errors.New("trailing data after request body")
	}
	return nil
}

package main

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"tempo/internal/scenario"
	"tempo/internal/service"
	"tempo/internal/store"
)

// Process-kill crash recovery. The test re-executes its own binary as a
// "child tempod" (TestMain intercepts the TEMPOD_CRASH_CHILD environment
// variable before any test runs): the child hosts one durable cluster and
// ticks it slowly; the parent waits for the WAL to start growing, sleeps
// a randomized interval, and SIGKILLs the child mid-run — the real thing,
// not an injected error. Recovery on the survived directory must finish
// with a report byte-identical to an uninterrupted sequential run.
//
// The in-process complement (randomized torn-write offsets via fault
// points) lives in internal/store; this test is the end-to-end kill -9
// acceptance check from the issue.

func TestMain(m *testing.M) {
	if os.Getenv("TEMPOD_CRASH_CHILD") == "1" {
		if err := crashChild(); err != nil {
			fmt.Fprintln(os.Stderr, "crash child:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// crashChildSpec returns the scenario both processes agree on.
func crashChildSpec(iterations int) (*scenario.Spec, error) {
	spec, err := service.SmallSpec()
	if err != nil {
		return nil, err
	}
	spec.Iterations = iterations
	return spec, nil
}

// crashChild is the killed process: create a durable cluster, tick it
// with a small pause between ticks (so the parent's SIGKILL lands
// mid-run), then idle until killed.
func crashChild() error {
	dir := os.Getenv("TEMPOD_CRASH_DATA")
	iters, err := strconv.Atoi(os.Getenv("TEMPOD_CRASH_ITERS"))
	if err != nil {
		return err
	}
	spec, err := crashChildSpec(iters)
	if err != nil {
		return err
	}
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		return err
	}
	svc, err := service.New(service.Config{Store: st, SnapshotEvery: 2})
	if err != nil {
		return err
	}
	c, err := svc.Create("c", spec)
	if err != nil {
		return err
	}
	for !c.Session().Done() {
		if _, _, err := svc.Tick(context.Background(), c); err != nil {
			return err
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Ticks exhausted before the kill arrived; stay alive as its target.
	select {}
}

func TestKillDashNineRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills child processes")
	}
	const iterations = 10
	spec, err := crashChildSpec(iterations)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := scenario.Run(spec, scenario.Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	trials := 3
	for trial := 0; trial < trials; trial++ {
		delay := time.Duration(rng.Intn(40)) * time.Millisecond
		t.Run(fmt.Sprintf("trial-%d", trial), func(t *testing.T) {
			dir := t.TempDir()
			child := exec.Command(os.Args[0], "-test.run=^$")
			child.Env = append(os.Environ(),
				"TEMPOD_CRASH_CHILD=1",
				"TEMPOD_CRASH_DATA="+dir,
				"TEMPOD_CRASH_ITERS="+strconv.Itoa(iterations),
			)
			var childErr bytes.Buffer
			child.Stderr = &childErr
			if err := child.Start(); err != nil {
				t.Fatal(err)
			}
			defer child.Process.Kill() //nolint:errcheck // double-kill is fine

			// Wait for the first committed tick to reach the WAL, then let
			// the child run a randomized little longer.
			walPath := filepath.Join(dir, "clusters", "c", "wal.log")
			deadline := time.Now().Add(30 * time.Second)
			for {
				if st, err := os.Stat(walPath); err == nil && st.Size() > 0 {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("WAL never appeared; child stderr:\n%s", childErr.String())
				}
				time.Sleep(2 * time.Millisecond)
			}
			time.Sleep(delay)
			if err := child.Process.Kill(); err != nil {
				t.Fatal(err)
			}
			child.Wait() //nolint:errcheck // killed: exit status is expected noise

			// Recover and finish the run in-process.
			st, err := store.Open(dir, store.Options{})
			if err != nil {
				t.Fatal(err)
			}
			svc, err := service.New(service.Config{Store: st, SnapshotEvery: 2})
			if err != nil {
				t.Fatal(err)
			}
			defer svc.Close()
			c, err := svc.Get("c")
			if err != nil {
				t.Fatal(err)
			}
			recoveredAt := c.Session().Ticks()
			for !c.Session().Done() {
				if _, _, err := svc.Tick(context.Background(), c); err != nil {
					t.Fatal(err)
				}
			}
			got, err := c.Session().Report().MarshalCanonical()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("delay=%v recovered-at=%d: report differs from uninterrupted run", delay, recoveredAt)
			}
			t.Logf("killed after %v beyond first commit; recovered at tick %d/%d, report byte-identical", delay, recoveredAt, iterations)
		})
	}
}

package query

import (
	"fmt"
	"strings"
	"testing"
)

// TestPlanValidation tables the validator's rejections. Every rejection
// of an operator-level problem must name the offending operator as
// "ops[i] (op)" — that is the contract the service's error envelope
// surfaces to clients.
func TestPlanValidation(t *testing.T) {
	cases := []struct {
		name string
		json string
		want string // substring of the error; "" = plan must validate
	}{
		{"minimal raw", `{"version":1,"source":"events"}`, ""},
		{"full pipeline", `{"version":1,"source":"jobs","from":"10m","to":"2h","ops":[
			{"op":"filter","field":"tenant","eq":"etl"},
			{"op":"map","fields":["tenant","response_seconds"]},
			{"op":"group_by","by":["tenant"]},
			{"op":"window","size":"30m"},
			{"op":"aggregate","aggs":[{"fn":"p99","field":"response_seconds"}]},
			{"op":"limit","n":10}]}`, ""},
		{"slos plan", `{"version":1,"source":"events","ops":[
			{"op":"aggregate","slos":[{"queue":"a","metric":"avg_response_time"}]}]}`, ""},
		{"filter in list", `{"version":1,"source":"tasks","ops":[
			{"op":"filter","field":"outcome","in":["finished","preempted"]}]}`, ""},
		{"filter time range", `{"version":1,"source":"events","ops":[
			{"op":"filter","field":"time","ge":"30m","lt":"1h30m"}]}`, ""},

		{"wrong version", `{"version":2,"source":"events"}`, "unsupported version 2"},
		{"missing version", `{"source":"events"}`, "unsupported version 0"},
		{"unknown source", `{"version":1,"source":"foo"}`, `unknown source "foo"`},
		{"malformed from", `{"version":1,"source":"events","from":"yesterday"}`, "malformed from"},
		{"negative from", `{"version":1,"source":"events","from":"-5m"}`, "non-negative"},
		{"reversed window", `{"version":1,"source":"events","from":"2h","to":"1h"}`, "from must not exceed to"},
		{"unknown json field", `{"version":1,"source":"events","frob":3}`, "unknown field"},
		{"trailing data", `{"version":1,"source":"events"} {}`, "trailing data"},

		{"unknown op", `{"version":1,"source":"events","ops":[{"op":"join"}]}`, "ops[0] (join): unknown operator"},
		{"missing op", `{"version":1,"source":"events","ops":[{"field":"tenant"}]}`, "ops[0] (?): missing op"},

		{"filter without field", `{"version":1,"source":"events","ops":[{"op":"filter","eq":"x"}]}`,
			"ops[0] (filter): filter needs a field"},
		{"filter unknown field", `{"version":1,"source":"events","ops":[{"op":"filter","field":"nope","eq":"x"}]}`,
			`ops[0] (filter): unknown field "nope"`},
		{"filter without comparator", `{"version":1,"source":"events","ops":[{"op":"filter","field":"tenant"}]}`,
			"ops[0] (filter): filter on \"tenant\" needs a comparator"},
		{"filter mixed comparators", `{"version":1,"source":"events","ops":[{"op":"filter","field":"delta","eq":"1","ge":"0"}]}`,
			"ops[0] (filter): filter on \"delta\" mixes comparator families"},
		{"filter range on string", `{"version":1,"source":"events","ops":[{"op":"filter","field":"tenant","ge":"a"}]}`,
			"ops[0] (filter): range comparators require a numeric column"},
		{"filter in on number", `{"version":1,"source":"events","ops":[{"op":"filter","field":"delta","in":["1"]}]}`,
			"ops[0] (filter): in requires a string column"},
		{"filter bad operand", `{"version":1,"source":"events","ops":[{"op":"filter","field":"delta","ge":"soon"}]}`,
			`operand "soon" is neither a duration nor a number`},

		{"map empty", `{"version":1,"source":"events","ops":[{"op":"map","fields":[]}]}`,
			"ops[0] (map): map needs at least one field"},
		{"map unknown field", `{"version":1,"source":"jobs","ops":[{"op":"map","fields":["delta"]}]}`,
			`ops[0] (map): unknown field "delta"`},
		{"map drops field for later filter", `{"version":1,"source":"events","ops":[
			{"op":"map","fields":["tenant"]},{"op":"filter","field":"delta","ge":"0"}]}`,
			`ops[1] (filter): unknown field "delta"`},

		{"group_by empty", `{"version":1,"source":"events","ops":[{"op":"group_by","by":[]}]}`,
			"ops[0] (group_by): group_by takes 1..4 key fields, got 0"},
		{"group_by too many", `{"version":1,"source":"events","ops":[
			{"op":"group_by","by":["tenant","kind","job","task_kind","outcome"]}]}`,
			"ops[0] (group_by): group_by takes 1..4 key fields, got 5"},
		{"group_by numeric key", `{"version":1,"source":"events","ops":[{"op":"group_by","by":["delta"]}]}`,
			`ops[0] (group_by): group key "delta" must be a string column`},
		{"group_by twice", `{"version":1,"source":"events","ops":[
			{"op":"group_by","by":["tenant"]},{"op":"group_by","by":["kind"]}]}`,
			"ops[1] (group_by): at most one group_by per plan"},
		{"group_by without aggregate", `{"version":1,"source":"events","ops":[{"op":"group_by","by":["tenant"]}]}`,
			"group_by over 1 keys without an aggregate"},
		{"map after group_by", `{"version":1,"source":"events","ops":[
			{"op":"group_by","by":["tenant"]},{"op":"map","fields":["tenant"]},
			{"op":"aggregate","aggs":[{"fn":"count"}]}]}`,
			"ops[1] (map): map must precede group_by and aggregate"},

		{"window twice", `{"version":1,"source":"events","ops":[
			{"op":"window","size":"tick"},{"op":"window","size":"1h"}]}`,
			"ops[1] (window): at most one window per plan"},
		{"window bad size", `{"version":1,"source":"events","ops":[{"op":"window","size":"hourly"}]}`,
			`ops[0] (window): size must be "tick" or a positive duration`},
		{"window zero size", `{"version":1,"source":"events","ops":[{"op":"window","size":"0s"}]}`,
			"ops[0] (window): size must be positive"},

		{"aggregate empty", `{"version":1,"source":"events","ops":[{"op":"aggregate"}]}`,
			"ops[0] (aggregate): aggregate needs aggs or slos"},
		{"aggregate both families", `{"version":1,"source":"events","ops":[
			{"op":"aggregate","aggs":[{"fn":"count"}],"slos":[{"queue":"a","metric":"throughput"}]}]}`,
			"ops[0] (aggregate): aggs and slos are mutually exclusive"},
		{"aggregate twice", `{"version":1,"source":"events","ops":[
			{"op":"aggregate","aggs":[{"fn":"count"}]},{"op":"aggregate","aggs":[{"fn":"count"}]}]}`,
			"ops[1] (aggregate): at most one aggregate per plan"},
		{"aggregate unknown fn", `{"version":1,"source":"events","ops":[
			{"op":"aggregate","aggs":[{"fn":"median","field":"delta"}]}]}`,
			`ops[0] (aggregate): aggs[0]: unknown fn "median"`},
		{"count with field", `{"version":1,"source":"events","ops":[
			{"op":"aggregate","aggs":[{"fn":"count","field":"delta"}]}]}`,
			"ops[0] (aggregate): aggs[0]: count takes no field"},
		{"sum without field", `{"version":1,"source":"events","ops":[
			{"op":"aggregate","aggs":[{"fn":"sum"}]}]}`,
			"ops[0] (aggregate): aggs[0]: sum needs a numeric field"},
		{"sum on string field", `{"version":1,"source":"events","ops":[
			{"op":"aggregate","aggs":[{"fn":"sum","field":"tenant"}]}]}`,
			"ops[0] (aggregate): aggs[0]: sum requires a numeric field"},
		{"duplicate output column", `{"version":1,"source":"events","ops":[
			{"op":"aggregate","aggs":[{"fn":"sum","field":"delta"},{"fn":"sum","field":"delta"}]}]}`,
			`ops[0] (aggregate): aggs[1]: duplicate output column "sum_delta"`},
		{"filter after aggregate", `{"version":1,"source":"events","ops":[
			{"op":"aggregate","aggs":[{"fn":"count"}]},{"op":"filter","field":"tenant","eq":"a"}]}`,
			"ops[1] (filter): filter must precede aggregate"},

		{"slos wrong source", `{"version":1,"source":"jobs","ops":[
			{"op":"aggregate","slos":[{"queue":"a","metric":"throughput"}]}]}`,
			`ops[0] (aggregate): slos aggregate requires source "events"`},
		{"slos with filter", `{"version":1,"source":"events","ops":[
			{"op":"filter","field":"tenant","eq":"a"},
			{"op":"aggregate","slos":[{"queue":"a","metric":"throughput"}]}]}`,
			"ops[1] (aggregate): slos aggregate does not compose with filter"},
		{"slos with group_by", `{"version":1,"source":"events","ops":[
			{"op":"group_by","by":["tenant"]},
			{"op":"aggregate","slos":[{"queue":"a","metric":"throughput"}]}]}`,
			"ops[1] (aggregate): slos aggregate does not compose with group_by"},
		{"slos with duration window", `{"version":1,"source":"events","ops":[
			{"op":"window","size":"30m"},
			{"op":"aggregate","slos":[{"queue":"a","metric":"throughput"}]}]}`,
			`ops[1] (aggregate): slos aggregate windows by control interval`},
		{"slos invalid template", `{"version":1,"source":"events","ops":[
			{"op":"aggregate","slos":[{"queue":"","metric":"avg_response_time"}]}]}`,
			"ops[0] (aggregate): slos[0]:"},

		{"limit zero", `{"version":1,"source":"events","ops":[{"op":"limit","n":0}]}`,
			"ops[0] (limit): n must be in [1,"},
		{"op after limit", `{"version":1,"source":"events","ops":[
			{"op":"limit","n":5},{"op":"filter","field":"tenant","eq":"a"}]}`,
			"ops[1] (filter): no operator may follow limit"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParsePlan(strings.NewReader(tc.json))
			if tc.want == "" {
				if err != nil {
					t.Fatalf("plan rejected: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("plan accepted, want error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

// TestPlanDepthBound locks the operator-count cap.
func TestPlanDepthBound(t *testing.T) {
	p := &Plan{Version: 1, Source: "events"}
	eq := "a"
	for i := 0; i <= MaxOps; i++ {
		p.Ops = append(p.Ops, OpSpec{Op: "filter", Field: "tenant", Eq: &eq})
	}
	err := p.Validate()
	if err == nil || !strings.Contains(err.Error(), "depth bound") {
		t.Fatalf("got %v, want depth-bound rejection", err)
	}
}

// TestPlanCardinalityBounds locks the list-size caps.
func TestPlanCardinalityBounds(t *testing.T) {
	in := make([]string, MaxIn+1)
	p := &Plan{Version: 1, Source: "events", Ops: []OpSpec{{Op: "filter", Field: "tenant", In: in}}}
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "exceeds the bound") {
		t.Fatalf("in-list bound not enforced: %v", err)
	}

	aggs := make([]AggSpec, MaxAggs+1)
	for i := range aggs {
		aggs[i] = AggSpec{Fn: "count", As: fmt.Sprintf("c%d", i)}
	}
	p = &Plan{Version: 1, Source: "events", Ops: []OpSpec{{Op: "aggregate", Aggs: aggs}}}
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "exceed the bound") {
		t.Fatalf("aggs bound not enforced: %v", err)
	}
}

package whatif

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"tempo/internal/cluster"
	"tempo/internal/workload"
)

func batchConfigs(capacity int) []cluster.Config {
	var cfgs []cluster.Config
	for _, w := range []float64{0.5, 1, 2, 4} {
		cfgs = append(cfgs, cluster.Config{
			TotalContainers: capacity,
			Tenants:         map[string]cluster.TenantConfig{"A": {Weight: w}},
		})
	}
	return cfgs
}

// TestEvaluateBatchBitIdenticalAcrossParallelism is the tentpole guarantee:
// the same candidate set scored at Parallelism 1 and 8 yields bit-identical
// QS vectors, which also match per-config Evaluate calls.
func TestEvaluateBatchBitIdenticalAcrossParallelism(t *testing.T) {
	m, err := FromProfiles(testTemplates(),
		[]workload.TenantProfile{workload.BestEffort("A", 1)},
		time.Hour, 42)
	if err != nil {
		t.Fatal(err)
	}
	m.Samples = 3
	cfgs := batchConfigs(20)

	m.Parallelism = 1
	seq, err := m.EvaluateBatch(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	m.Parallelism = 8
	par, err := m.EvaluateBatch(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(cfgs) || len(par) != len(cfgs) {
		t.Fatalf("row counts %d/%d, want %d", len(seq), len(par), len(cfgs))
	}
	for c := range cfgs {
		for i := range seq[c] {
			if seq[c][i] != par[c][i] {
				t.Fatalf("config %d objective %d: sequential %v != parallel %v", c, i, seq[c][i], par[c][i])
			}
		}
	}
	// Row i must equal a standalone Evaluate of cfgs[i].
	for c, cfg := range cfgs {
		one, err := m.Evaluate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := range one {
			if one[i] != seq[c][i] {
				t.Fatalf("config %d: Evaluate %v != batch row %v", c, one, seq[c])
			}
		}
	}
}

func TestEvaluateParallelSamplesMatchSequential(t *testing.T) {
	m, err := FromProfiles(testTemplates(),
		[]workload.TenantProfile{workload.BestEffort("A", 1)},
		time.Hour, 7)
	if err != nil {
		t.Fatal(err)
	}
	m.Samples = 6
	cfg := cluster.Config{TotalContainers: 20, Tenants: map[string]cluster.TenantConfig{"A": {Weight: 1}}}
	m.Parallelism = 1
	seq, err := m.Evaluate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.Parallelism = 8
	par, err := m.Evaluate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("objective %d: %v != %v", i, seq[i], par[i])
		}
	}
}

func TestSensitivityParallelMatchesSequential(t *testing.T) {
	m, err := FromProfiles(testTemplates(),
		[]workload.TenantProfile{workload.BestEffort("A", 1)},
		time.Hour, 11)
	if err != nil {
		t.Fatal(err)
	}
	cfg := cluster.Config{TotalContainers: 20, Tenants: map[string]cluster.TenantConfig{"A": {Weight: 1}}}
	m.Parallelism = 1
	mean1, sd1, err := m.Sensitivity(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	m.Parallelism = 8
	mean8, sd8, err := m.Sensitivity(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range mean1 {
		if mean1[i] != mean8[i] || sd1[i] != sd8[i] {
			t.Fatalf("objective %d: (%v,%v) != (%v,%v)", i, mean1[i], sd1[i], mean8[i], sd8[i])
		}
	}
}

func TestEvaluateBatchEmpty(t *testing.T) {
	m, err := FromTrace(testTemplates(), testTrace(t))
	if err != nil {
		t.Fatal(err)
	}
	rows, err := m.EvaluateBatch(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Fatalf("rows = %v", rows)
	}
}

// TestEvaluateBatchDeterministicError pins the error-aggregation contract:
// whichever worker hits an error first, the reported failure is always the
// lowest (config, sample) pair — the one sequential evaluation would see.
func TestEvaluateBatchDeterministicError(t *testing.T) {
	boom := errors.New("boom")
	m, err := New(testTemplates(), func(sample int) (*workload.Trace, error) {
		if sample >= 1 {
			return nil, fmt.Errorf("sample %d: %w", sample, boom)
		}
		tr, err := workload.Generate(
			[]workload.TenantProfile{workload.BestEffort("A", 1)},
			workload.GenerateOptions{Horizon: 30 * time.Minute, Seed: 1})
		return tr, err
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Samples = 4
	cfgs := batchConfigs(20)
	m.Parallelism = 1
	_, errSeq := m.EvaluateBatch(cfgs)
	var errPar error
	for trial := 0; trial < 10; trial++ {
		m.Parallelism = 8
		_, errPar = m.EvaluateBatch(cfgs)
		if errSeq == nil || errPar == nil {
			t.Fatalf("expected errors, got %v / %v", errSeq, errPar)
		}
		if errSeq.Error() != errPar.Error() {
			t.Fatalf("nondeterministic error: %q vs %q", errSeq, errPar)
		}
	}
	if !errors.Is(errPar, boom) {
		t.Fatalf("cause lost: %v", errPar)
	}
}

// TestNilScheduleGuard covers a Predict hook that returns (nil, nil): the
// model must fail with a descriptive error instead of panicking in EvalAll.
func TestNilScheduleGuard(t *testing.T) {
	m, err := FromTrace(testTemplates(), testTrace(t))
	if err != nil {
		t.Fatal(err)
	}
	m.Predict = func(*workload.Trace, cluster.Config, time.Duration) (*cluster.Schedule, error) {
		return nil, nil
	}
	cfg := cluster.Config{TotalContainers: 20, Tenants: map[string]cluster.TenantConfig{"A": {Weight: 1}}}
	for _, par := range []int{1, 8} {
		m.Parallelism = par
		if _, err := m.Evaluate(cfg); err == nil {
			t.Fatalf("parallelism %d: nil schedule accepted", par)
		} else if want := "nil schedule"; !contains(err.Error(), want) {
			t.Fatalf("parallelism %d: error %q does not mention %q", par, err, want)
		}
	}
}

// TestNilTraceGuard covers a Generator that returns (nil, nil).
func TestNilTraceGuard(t *testing.T) {
	m, err := New(testTemplates(), func(int) (*workload.Trace, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	cfg := cluster.Config{TotalContainers: 20, Tenants: map[string]cluster.TenantConfig{"A": {Weight: 1}}}
	if _, err := m.Evaluate(cfg); err == nil {
		t.Fatal("nil trace accepted")
	} else if want := "nil trace"; !contains(err.Error(), want) {
		t.Fatalf("error %q does not mention %q", err, want)
	}
}

// TestMixSeedNoAliasing locks in the FromProfiles seed fix: under the old
// linear stride (base + sample*7919), base 7919 at sample 0 aliased base 0
// at sample 1. The mixed seeds must be pairwise distinct over a dense grid
// of bases and samples.
func TestMixSeedNoAliasing(t *testing.T) {
	if mixSeed(0, 1) == mixSeed(7919, 0) {
		t.Fatal("stride aliasing survived the seed mix")
	}
	seen := make(map[int64][2]int64)
	for base := int64(-50); base < 50; base++ {
		for sample := 0; sample < 100; sample++ {
			s := mixSeed(base, sample)
			if prev, ok := seen[s]; ok {
				t.Fatalf("seed collision: (base %d, sample %d) and (base %d, sample %d)",
					base, sample, prev[0], prev[1])
			}
			seen[s] = [2]int64{base, int64(sample)}
		}
	}
}

// TestFromProfilesSamplesDistinct checks end to end that consecutive
// samples of one model draw different workloads.
func TestFromProfilesSamplesDistinct(t *testing.T) {
	m, err := FromProfiles(testTemplates(),
		[]workload.TenantProfile{workload.BestEffort("A", 1)},
		time.Hour, 0)
	if err != nil {
		t.Fatal(err)
	}
	t0, err := m.Gen(0)
	if err != nil {
		t.Fatal(err)
	}
	t1, err := m.Gen(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(t0.Jobs) == len(t1.Jobs) {
		same := true
		for i := range t0.Jobs {
			if t0.Jobs[i].Submit != t1.Jobs[i].Submit {
				same = false
				break
			}
		}
		if same {
			t.Fatal("samples 0 and 1 drew identical workloads")
		}
	}
}

func contains(s, sub string) bool { return strings.Contains(s, sub) }

// BenchmarkEvaluateBatch measures candidate scoring at several worker
// counts; the repository-level BenchmarkWhatIfBatch exercises the same path
// through the public API on the paper's workload.
func BenchmarkEvaluateBatch(b *testing.B) {
	tr, err := workload.Generate(
		[]workload.TenantProfile{workload.BestEffort("A", 2), workload.DeadlineDriven("B", 2)},
		workload.GenerateOptions{Horizon: 2 * time.Hour, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	m, err := FromTrace(testTemplates(), tr)
	if err != nil {
		b.Fatal(err)
	}
	var cfgs []cluster.Config
	for _, w := range []float64{0.25, 0.5, 1, 2, 4, 8, 16, 32} {
		cfgs = append(cfgs, cluster.Config{
			TotalContainers: 30,
			Tenants: map[string]cluster.TenantConfig{
				"A": {Weight: w}, "B": {Weight: 1},
			},
		})
	}
	for _, par := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("parallelism=%d", par), func(b *testing.B) {
			m.Parallelism = par
			for i := 0; i < b.N; i++ {
				if _, err := m.EvaluateBatch(cfgs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

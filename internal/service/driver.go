package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tempo/internal/scenario"
)

// This file is the load-driving side of the control plane: a client that
// spins up N clusters over the HTTP API and drives concurrent
// tick/qs/what-if traffic against them, then (optionally) proves that
// sharded, interleaved execution changed nothing — every cluster's report
// must be byte-identical to the same scenario run sequentially in
// process. cmd/loadgen wraps it behind flags; the service-throughput
// benchmark drives it directly.

// DriveOptions configure one load-generation run.
type DriveOptions struct {
	// Clusters is how many clusters to create and drive; 0 means 100.
	Clusters int
	// Workers is the client-side concurrency; 0 means 32. Every worker
	// interleaves ticks across all clusters, so all Clusters clusters are
	// in flight concurrently regardless of the worker count.
	Workers int
	// BaseSpec is the scenario every cluster derives from; nil means
	// SmallSpec. Cluster i runs the base spec with Name "<name>-<i>" and
	// Seed base+i·SeedStride, so clusters share the scenario shape but not
	// their random streams.
	BaseSpec *scenario.Spec
	// SeedStride spaces the per-cluster seeds; 0 means 1.
	SeedStride int64
	// TickRate caps the aggregate tick request rate per second; 0 means
	// unthrottled.
	TickRate float64
	// QSEvery issues a windowed QS query after every k-th tick round per
	// cluster; 0 disables the probes.
	QSEvery int
	// QueryEvery issues an ad-hoc query-plan request (per-tenant job count
	// over the jobs relation) after every k-th tick round per cluster; 0
	// disables the probes.
	QueryEvery int
	// WhatIfEvery issues a two-candidate what-if scoring request after
	// every k-th tick round per cluster; 0 disables the probes.
	WhatIfEvery int
	// Verify re-runs every cluster's scenario sequentially in process and
	// compares the canonical report bytes against the service's.
	Verify bool
	// RequestTimeout bounds every HTTP request end to end; 0 means 30s.
	RequestTimeout time.Duration
	// Retries is how many times a refused request is retried after
	// backoff; 0 disables retries. Only refusals that prove the request
	// never executed are retried — 503/429 responses carrying a
	// retryable envelope code (overloaded, degraded, unavailable,
	// subscription_limit). Transport errors and "interrupted" 503s (cut
	// off by shutdown after admission) are NOT retried: the request may
	// have reached the server and executed, and blindly replaying a tick
	// could double-apply it.
	Retries int
	// RetryBase and RetryMax bound the capped exponential backoff:
	// attempt k waits jitter(RetryBase·2^k) capped at RetryMax, then
	// stretched to any Retry-After hint the server sent. Defaults 25ms
	// and 2s.
	RetryBase time.Duration
	RetryMax  time.Duration
	// RetrySeed seeds the deterministic backoff jitter, so a replayed
	// run waits the same schedule.
	RetrySeed int64
}

func (o DriveOptions) withDefaults() (DriveOptions, error) {
	if o.Clusters <= 0 {
		o.Clusters = 100
	}
	if o.Workers <= 0 {
		o.Workers = 32
	}
	if o.BaseSpec == nil {
		spec, err := SmallSpec()
		if err != nil {
			return o, err
		}
		o.BaseSpec = spec
	}
	if o.SeedStride == 0 {
		o.SeedStride = 1
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 30 * time.Second
	}
	if o.RetryBase <= 0 {
		o.RetryBase = 25 * time.Millisecond
	}
	if o.RetryMax <= 0 {
		o.RetryMax = 2 * time.Second
	}
	return o, nil
}

// DriveReport summarizes a load-generation run.
type DriveReport struct {
	Clusters     int     `json:"clusters"`
	Iterations   int     `json:"iterations"`
	Ticks        int     `json:"ticks"`
	QSQueries    int     `json:"qs_queries"`
	QueryCalls   int     `json:"query_calls"`
	WhatIfCalls  int     `json:"whatif_calls"`
	WallSeconds  float64 `json:"wall_seconds"`
	TicksPerSec  float64 `json:"ticks_per_sec"`
	ClustersDone float64 `json:"clusters_per_sec"`
	// Verified counts clusters whose service-side report matched the
	// sequential run byte for byte; Mismatched lists the ones that did not
	// (always empty on success — any entry fails the run).
	Verified   int      `json:"verified"`
	Mismatched []string `json:"mismatched,omitempty"`
	// Retries counts requests that were refused with a retryable 503/429
	// and re-sent — the drive's view of how much shedding it absorbed.
	Retries int64 `json:"retries"`
}

// Drive runs one load-generation pass against a control plane at baseURL.
// It creates the clusters, drives every one of them through its full
// iteration budget with ticks interleaved across clusters (plus optional
// QS and what-if probe traffic), and — with Verify set — asserts each
// cluster's report is byte-identical to the same spec run sequentially.
func Drive(baseURL string, opts DriveOptions) (*DriveReport, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	base, err := json.Marshal(opts.BaseSpec)
	if err != nil {
		return nil, fmt.Errorf("driver: marshaling base spec: %w", err)
	}
	specs := make([]*scenario.Spec, opts.Clusters)
	ids := make([]string, opts.Clusters)
	for i := range specs {
		spec, err := deriveSpec(base, opts.BaseSpec.Name, i, opts.SeedStride)
		if err != nil {
			return nil, err
		}
		specs[i] = spec
		ids[i] = spec.Name
	}

	client := newAPIClient(opts)
	rep := &DriveReport{Clusters: opts.Clusters, Iterations: opts.BaseSpec.Iterations}
	start := time.Now()

	// Phase 1: create all clusters, so the whole population is resident
	// before the first tick.
	if err := eachIndex(opts.Workers, opts.Clusters, func(i int) error {
		body, err := json.Marshal(CreateRequest{ID: ids[i], Spec: mustMarshal(specs[i])})
		if err != nil {
			return err
		}
		var resp CreateResponse
		return client.call(http.MethodPost, baseURL+"/v1/clusters", body, &resp)
	}); err != nil {
		return nil, fmt.Errorf("driver: creating clusters: %w", err)
	}

	// Phase 2: drive ticks round-robin across the population. Work item t
	// ticks cluster t mod N, so every cluster's control loops advance
	// interleaved — the many-tenant serving shape, not N sequential runs.
	var ticks, qsQueries, queryCalls, whatifCalls atomic.Int64
	throttle := newThrottle(opts.TickRate)
	defer throttle.stop()
	total := opts.Clusters * opts.BaseSpec.Iterations
	if err := eachIndex(opts.Workers, total, func(t int) error {
		i := t % opts.Clusters
		round := t / opts.Clusters
		throttle.wait()
		var tick TickResponse
		if err := client.call(http.MethodPost, baseURL+"/v1/clusters/"+ids[i]+"/tick", nil, &tick); err != nil {
			return fmt.Errorf("tick %d of %s: %w", round, ids[i], err)
		}
		ticks.Add(1)
		if opts.QSEvery > 0 && round%opts.QSEvery == 0 {
			var qs QSResponse
			if err := client.call(http.MethodGet, baseURL+"/v1/clusters/"+ids[i]+"/qs", nil, &qs); err != nil {
				return fmt.Errorf("qs probe of %s: %w", ids[i], err)
			}
			qsQueries.Add(1)
		}
		if opts.QueryEvery > 0 && round%opts.QueryEvery == 0 {
			if err := queryProbe(client, baseURL, ids[i]); err != nil {
				return fmt.Errorf("query probe of %s: %w", ids[i], err)
			}
			queryCalls.Add(1)
		}
		if opts.WhatIfEvery > 0 && round%opts.WhatIfEvery == 0 {
			if err := whatIfProbe(client, baseURL, ids[i], specs[i]); err != nil {
				return fmt.Errorf("what-if probe of %s: %w", ids[i], err)
			}
			whatifCalls.Add(1)
		}
		return nil
	}); err != nil {
		return nil, fmt.Errorf("driver: driving ticks: %w", err)
	}
	rep.Ticks = int(ticks.Load())
	rep.QSQueries = int(qsQueries.Load())
	rep.QueryCalls = int(queryCalls.Load())
	rep.WhatIfCalls = int(whatifCalls.Load())
	rep.WallSeconds = time.Since(start).Seconds()
	if rep.WallSeconds > 0 {
		rep.TicksPerSec = float64(rep.Ticks) / rep.WallSeconds
		rep.ClustersDone = float64(rep.Clusters) / rep.WallSeconds
	}

	// Phase 3: fetch reports; with Verify, re-run each scenario
	// sequentially and compare bytes.
	var mu sync.Mutex
	if err := eachIndex(opts.Workers, opts.Clusters, func(i int) error {
		got, err := client.fetchRaw(baseURL + "/v1/clusters/" + ids[i] + "/report")
		if err != nil {
			return err
		}
		if !opts.Verify {
			return nil
		}
		seqRep, err := scenario.Run(specs[i], scenario.Options{Parallelism: 1})
		if err != nil {
			return fmt.Errorf("sequential run of %s: %w", ids[i], err)
		}
		want, err := seqRep.MarshalCanonical()
		if err != nil {
			return err
		}
		mu.Lock()
		defer mu.Unlock()
		if bytes.Equal(got, want) {
			rep.Verified++
		} else {
			rep.Mismatched = append(rep.Mismatched, ids[i])
		}
		return nil
	}); err != nil {
		return nil, fmt.Errorf("driver: verifying reports: %w", err)
	}
	rep.Retries = client.retried.Load()
	if len(rep.Mismatched) > 0 {
		return rep, fmt.Errorf("driver: %d/%d cluster reports differ from their sequential runs (first: %s) — sharded execution broke determinism",
			len(rep.Mismatched), rep.Clusters, rep.Mismatched[0])
	}
	return rep, nil
}

// deriveSpec clones the marshaled base spec and gives clone i its own
// name and seed.
func deriveSpec(base []byte, baseName string, i int, stride int64) (*scenario.Spec, error) {
	spec, err := scenario.Load(bytes.NewReader(base))
	if err != nil {
		return nil, fmt.Errorf("driver: re-parsing base spec: %w", err)
	}
	spec.Name = fmt.Sprintf("%s-%04d", baseName, i)
	spec.Seed += int64(i) * stride
	return spec, nil
}

// whatIfProbe scores two perturbed candidates: the equal-weight default
// and one skewed toward the first tenant — a cheap, always-valid probe
// shape for any scenario.
func whatIfProbe(client *apiClient, baseURL, id string, spec *scenario.Spec) error {
	names := spec.TenantNames()
	skew := map[string]scenario.TenantConfigSpec{names[0]: {Weight: 4}}
	body, err := json.Marshal(WhatIfRequest{
		Candidates: []map[string]scenario.TenantConfigSpec{{}, skew},
	})
	if err != nil {
		return err
	}
	var resp WhatIfResponse
	return client.call(http.MethodPost, baseURL+"/v1/clusters/"+id+"/whatif", body, &resp)
}

// queryProbeJSON is the ad-hoc plan the driver's query probes POST: a
// per-tenant job count — valid against any scenario, cheap to evaluate,
// and exercising the group-by/aggregate path end to end.
const queryProbeJSON = `{
  "version": 1,
  "source": "jobs",
  "ops": [
    {"op": "group_by", "by": ["tenant"]},
    {"op": "aggregate", "aggs": [{"fn": "count", "as": "jobs"}]}
  ]
}`

// queryProbe issues one ad-hoc query-plan request against cluster id.
func queryProbe(client *apiClient, baseURL, id string) error {
	var out struct {
		Ticks int               `json:"ticks"`
		Rows  []json.RawMessage `json:"rows"`
	}
	return client.call(http.MethodPost, baseURL+"/v1/clusters/"+id+"/query", []byte(queryProbeJSON), &out)
}

// eachIndex runs fn(0..n-1) across workers goroutines, stopping at the
// first error.
func eachIndex(workers, n int, fn func(i int) error) error {
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	var stop atomic.Bool
	var mu sync.Mutex
	var firstErr error
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || stop.Load() {
					return
				}
				if err := fn(i); err != nil {
					stop.Store(true)
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// throttle is a token bucket pacing tick requests at rate per second.
type throttle struct {
	tokens chan struct{}
	done   chan struct{}
}

func newThrottle(rate float64) *throttle {
	t := &throttle{done: make(chan struct{})}
	if rate <= 0 {
		return t
	}
	t.tokens = make(chan struct{}, 1)
	interval := time.Duration(float64(time.Second) / rate)
	go func() {
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-t.done:
				return
			case <-tick.C:
				select {
				case t.tokens <- struct{}{}:
				default:
				}
			}
		}
	}()
	return t
}

func (t *throttle) wait() {
	if t.tokens != nil {
		<-t.tokens
	}
}

func (t *throttle) stop() { close(t.done) }

// apiClient wraps http.Client with the driver's resilience policy: an
// end-to-end request timeout, plus capped exponential backoff with
// deterministic jitter for refusals the server guarantees never executed
// (503/429 carrying a retryable envelope code). The jitter stream is a
// pure function of (seed, draw index), so a replayed run waits the same
// schedule — load generation stays reproducible under injected faults.
type apiClient struct {
	c         *http.Client
	retries   int
	base, max time.Duration
	seed      uint64
	draws     atomic.Uint64
	retried   atomic.Int64
	sleep     func(time.Duration) // swapped out by tests to record waits
}

func newAPIClient(opts DriveOptions) *apiClient {
	return &apiClient{
		c:       &http.Client{Timeout: opts.RequestTimeout},
		retries: opts.Retries,
		base:    opts.RetryBase,
		max:     opts.RetryMax,
		seed:    uint64(opts.RetrySeed),
		sleep:   time.Sleep,
	}
}

// retryableCode reports whether an envelope code promises the request was
// refused before execution, so replaying it is safe. "unavailable"
// qualifies: the server uses it only for refusals at the door (closed
// service, startup gate, chaos shed). Shutdown that severs an ALREADY
// admitted job — which may still commit — is the distinct "interrupted"
// code, deliberately absent here: replaying it could double-apply a tick.
func retryableCode(code string) bool {
	switch code {
	case CodeOverloaded, CodeDegraded, CodeUnavailable, CodeStreamLimit:
		return true
	}
	return false
}

// backoff returns the wait before retry attempt k (0-based): base·2^k
// capped at max, scaled by a jittered factor in [0.5, 1.0) drawn from the
// deterministic stream, then stretched to honor any Retry-After hint.
func (cl *apiClient) backoff(attempt int, retryAfter time.Duration) time.Duration {
	d := cl.base << uint(attempt)
	if d > cl.max || d <= 0 { // <= 0: shift overflow
		d = cl.max
	}
	// splitmix64 finalizer over (seed ^ draw index): uniform, seeded, and
	// independent of goroutine interleaving order only in aggregate — each
	// draw is deterministic, the assignment of draws to requests is not,
	// which is fine: the multiset of waits is reproducible.
	x := cl.seed ^ (cl.draws.Add(1) * 0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	frac := float64(x>>11) / float64(1<<53) // [0, 1)
	d = time.Duration(float64(d) * (0.5 + 0.5*frac))
	if retryAfter > d {
		d = retryAfter
	}
	return d
}

// call issues one JSON request and decodes the response into out,
// retrying refused-before-execution responses per the client's policy.
// Transport errors are never retried: the request may have reached the
// server and executed, and blindly replaying a tick could double-apply
// it.
func (cl *apiClient) call(method, url string, body []byte, out any) error {
	for attempt := 0; ; attempt++ {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequest(method, url, rd)
		if err != nil {
			return err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := cl.c.Do(req)
		if err != nil {
			return err
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return err
		}
		if resp.StatusCode/100 == 2 {
			if out != nil {
				if err := json.Unmarshal(raw, out); err != nil {
					return fmt.Errorf("%s %s: decoding response: %w", method, url, err)
				}
			}
			return nil
		}
		if attempt < cl.retries && retryableStatus(resp.StatusCode) {
			var env ErrorEnvelope
			if json.Unmarshal(raw, &env) == nil && retryableCode(env.Code) {
				cl.retried.Add(1)
				cl.sleep(cl.backoff(attempt, retryAfterHint(resp)))
				continue
			}
		}
		return fmt.Errorf("%s %s: %s", method, url, envelopeError(resp.Status, raw))
	}
}

// retryableStatus limits retries to the two refusal statuses the service
// uses for shed-before-execution responses.
func retryableStatus(status int) bool {
	return status == http.StatusServiceUnavailable || status == http.StatusTooManyRequests
}

// retryAfterHint parses an integer-seconds Retry-After header; 0 if
// absent or malformed.
func retryAfterHint(resp *http.Response) time.Duration {
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// envelopeError renders a non-2xx response for humans: the service's
// {error, code} envelope becomes "<status>: <code>: <error>" so the
// machine-readable code is in the message, not buried in raw JSON; bodies
// that are not the envelope (proxies, panics) fall back to the raw text.
func envelopeError(status string, raw []byte) string {
	var env ErrorEnvelope
	if err := json.Unmarshal(raw, &env); err == nil && env.Code != "" {
		return fmt.Sprintf("%s: %s: %s", status, env.Code, env.Error)
	}
	return fmt.Sprintf("%s: %s", status, strings.TrimSpace(string(raw)))
}

// fetchRaw GETs a URL and returns the raw response bytes, under the same
// retry policy as call.
func (cl *apiClient) fetchRaw(url string) ([]byte, error) {
	for attempt := 0; ; attempt++ {
		resp, err := cl.c.Get(url)
		if err != nil {
			return nil, err
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		if resp.StatusCode/100 == 2 {
			return raw, nil
		}
		if attempt < cl.retries && retryableStatus(resp.StatusCode) {
			var env ErrorEnvelope
			if json.Unmarshal(raw, &env) == nil && retryableCode(env.Code) {
				cl.retried.Add(1)
				cl.sleep(cl.backoff(attempt, retryAfterHint(resp)))
				continue
			}
		}
		return nil, fmt.Errorf("GET %s: %s", url, envelopeError(resp.Status, raw))
	}
}

func mustMarshal(spec *scenario.Spec) json.RawMessage {
	b, err := json.Marshal(spec)
	if err != nil {
		// A spec that round-tripped through scenario.Load cannot fail to
		// marshal; this is unreachable.
		panic(err)
	}
	return b
}

// smallSpecJSON is the builtin load-generation preset: a two-tenant
// replay scenario with the controller on, sized so one cluster's full run
// is a few milliseconds — throughput measurements then exercise the
// service machinery, not one giant emulation.
const smallSpecJSON = `{
  "name": "loadgen-small",
  "description": "Builtin loadgen preset: two-tenant replay scenario, controller on, three 5-minute intervals.",
  "seed": 4242,
  "capacity": 8,
  "interval_minutes": 5,
  "iterations": 3,
  "replay": true,
  "tenants": [
    {"name": "deadline", "profile": "deadline-driven", "scale": 0.4,
     "deadline": {"factor_lo": 1.2, "factor_hi": 1.8}},
    {"name": "besteffort", "profile": "best-effort", "scale": 0.4}
  ],
  "slos": [
    {"queue": "deadline", "metric": "deadline_violations", "slack": 0.25, "target": 0},
    {"queue": "besteffort", "metric": "avg_response_time"}
  ],
  "initial": {},
  "controller": {"candidates": 3, "max_step": 0.2}
}`

// SmallSpec returns the builtin load-generation preset scenario.
func SmallSpec() (*scenario.Spec, error) {
	return scenario.Load(strings.NewReader(smallSpecJSON))
}

// Decomposition demonstrates the paper's §10 extension: a tenant whose
// workload mixes very different job classes (ad-hoc small queries and huge
// periodic batch jobs on the same queue) gets decomposed into size-class
// sub-queues, so Tempo can attach fine-grained SLOs and the RM stops
// making small jobs wait behind monsters.
//
//	go run ./examples/decomposition
package main

import (
	"fmt"
	"log"
	"time"

	"tempo"
)

const capacity = 32

func main() {
	// One queue carrying two very different populations.
	mixed := tempo.TenantProfile{
		Name:        "analytics",
		JobsPerHour: 130,
		NumMaps: tempo.Mixture{
			Weights: []float64{0.8, 0.2},
			Components: []tempo.Dist{
				tempo.Clamped{D: tempo.LognormalFromMean(3, 0.5), Lo: 1, Hi: 8},     // small ad-hoc
				tempo.Clamped{D: tempo.LognormalFromMean(80, 0.6), Lo: 40, Hi: 300}, // big batch
			},
		},
		MapSeconds: tempo.Mixture{
			Weights: []float64{0.8, 0.2},
			Components: []tempo.Dist{
				tempo.Clamped{D: tempo.LognormalFromMean(15, 0.5), Lo: 2, Hi: 60},
				tempo.Clamped{D: tempo.LognormalFromMean(120, 0.5), Lo: 60, Hi: 600},
			},
		},
	}
	trace, err := tempo.Generate([]tempo.TenantProfile{mixed},
		tempo.GenerateOptions{Horizon: 2 * time.Hour, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mixed queue: %d jobs / %d tasks\n", len(trace.Jobs), trace.TaskCount())

	cfg := tempo.ClusterConfig{
		TotalContainers: capacity,
		Tenants:         map[string]tempo.TenantConfig{"analytics": {Weight: 1}},
	}

	// Baseline: one FIFO-within-tenant queue.
	before, err := tempo.Predict(trace, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Decompose into two size classes and split the queue's RM entry.
	decomposed, dec, err := tempo.DecomposeTenant(trace, "analytics", 2)
	if err != nil {
		log.Fatal(err)
	}
	split := cfg.WithSubTenants("analytics", dec.SubTenants)
	// Give the small class a latency-protecting floor.
	small := split.Tenants[dec.SubTenants[0]]
	small.MinShare = capacity / 4
	small.MinSharePreemptTimeout = 30 * time.Second
	split.Tenants[dec.SubTenants[0]] = small

	after, err := tempo.Predict(decomposed, split)
	if err != nil {
		log.Fatal(err)
	}

	smallIDs := map[string]bool{}
	for id, class := range dec.Assignment {
		if class == 0 {
			smallIDs[id] = true
		}
	}
	report := func(label string, s *tempo.Schedule) {
		var smallSum, bigSum time.Duration
		var smallN, bigN int
		for _, j := range s.Jobs {
			if !j.Completed {
				continue
			}
			if smallIDs[j.ID] {
				smallSum += j.Finish - j.Submit
				smallN++
			} else {
				bigSum += j.Finish - j.Submit
				bigN++
			}
		}
		fmt.Printf("%-22s small-class AJR %8s (%d jobs)   big-class AJR %8s (%d jobs)\n",
			label,
			(smallSum / time.Duration(max(smallN, 1))).Round(time.Second), smallN,
			(bigSum / time.Duration(max(bigN, 1))).Round(time.Second), bigN)
	}
	fmt.Printf("\nsize classes: %v (log10-work centers %.2f / %.2f)\n\n",
		dec.SubTenants, dec.Centers[0], dec.Centers[1])
	report("single queue:", before)
	report("decomposed queues:", after)
	fmt.Println("\nwith its own sub-queue (and a small min-share floor), the small class")
	fmt.Println("no longer waits behind the batch monsters — §10's fine-grained SLOs.")
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

package whatif

import (
	"testing"
	"time"

	"tempo/internal/cluster"
	"tempo/internal/qs"
	"tempo/internal/workload"
)

func cacheSchedule(submit time.Duration) *cluster.Schedule {
	return &cluster.Schedule{
		Capacity: 4,
		Horizon:  time.Hour,
		Jobs: []cluster.JobRecord{
			{ID: "j", Tenant: "a", Submit: submit, Finish: submit + time.Minute, Completed: true},
		},
		Tasks: []cluster.TaskRecord{
			{JobID: "j", Tenant: "a", Start: submit, End: submit + time.Minute, Outcome: cluster.TaskFinished},
		},
	}
}

// TestEvalCacheReuseAndCollisionSafety pins the sharing semantics: a
// schedule with identical records hits the cache, a different schedule
// presented with a colliding fingerprint is rejected by the exact record
// comparison, and samples never share entries.
func TestEvalCacheReuseAndCollisionSafety(t *testing.T) {
	c := newEvalCache()
	s1 := cacheSchedule(time.Second)
	fp := s1.Fingerprint()
	vals := []float64{1, 2}
	c.store(0, s1, fp, vals)

	same := cacheSchedule(time.Second)
	if got := c.lookup(0, same, same.Fingerprint()); got == nil || &got[0] != &vals[0] {
		t.Fatal("identical schedule did not reuse the cached vector")
	}
	// A forged fingerprint collision must be caught by the exact compare.
	different := cacheSchedule(2 * time.Second)
	if got := c.lookup(0, different, fp); got != nil {
		t.Fatal("colliding fingerprint with different records reused a vector")
	}
	// Entries are per sample: the same schedule under another sample index
	// must not match (its workload draw differs).
	if got := c.lookup(1, same, fp); got != nil {
		t.Fatal("cache leaked a vector across sample indexes")
	}
}

// TestEvaluateBatchSharesIdenticalCandidates runs a batch where several
// candidates provably produce the same predicted schedule (the predictor
// ignores config differences beyond the contention point) and asserts the
// rows are identical to each other and to the oracle value.
func TestEvaluateBatchSharesIdenticalCandidates(t *testing.T) {
	profiles := []workload.TenantProfile{workload.BestEffort("a", 1)}
	trace, err := workload.Generate(profiles, workload.GenerateOptions{Horizon: time.Hour, Seed: 5, Name: "cache"})
	if err != nil {
		t.Fatal(err)
	}
	templates := []qs.Template{
		{Queue: "a", Metric: qs.AvgResponseTime},
		{Metric: qs.Utilization},
	}
	model, err := FromTrace(templates, trace)
	if err != nil {
		t.Fatal(err)
	}
	model.Horizon = time.Hour
	model.Parallelism = 4
	base := cluster.Config{TotalContainers: 32, Tenants: map[string]cluster.TenantConfig{"a": {Weight: 1}}}
	// With a single tenant, weight changes cannot alter the schedule: every
	// candidate predicts identical records and the batch shares one QS
	// evaluation.
	cfgs := []cluster.Config{base}
	for _, w := range []float64{2, 3, 5} {
		c := base.Clone()
		tc := c.Tenants["a"]
		tc.Weight = w
		c.Tenants["a"] = tc
		cfgs = append(cfgs, c)
	}
	rows, err := model.EvaluateBatch(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := cluster.Run(trace, base, cluster.Options{Horizon: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	want := qs.EvalAll(templates, sched, 0, sched.Horizon+time.Nanosecond)
	for r := range rows {
		for i := range want {
			if rows[r][i] != want[i] {
				t.Fatalf("row %d objective %d: got %v, want oracle %v", r, i, rows[r][i], want[i])
			}
		}
	}
}

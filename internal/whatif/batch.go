package whatif

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"tempo/internal/cluster"
	"tempo/internal/qs"
	"tempo/internal/workload"
)

// DefaultParallelism returns the worker count that saturates the host: one
// per available CPU. It is the single source of the "0 means all CPUs"
// policy the command-line flags and the root package share.
func DefaultParallelism() int { return runtime.GOMAXPROCS(0) }

// EvaluateBatch predicts the QS vector for every configuration, each
// averaged over the model's sample count. The (configuration, sample)
// pairs are independent, so with Parallelism > 1 they are fanned out over
// a worker pool; the reduction runs in sample order afterwards, so the
// returned vectors are bit-identical to sequential evaluation. Row i of
// the result corresponds to cfgs[i].
//
// This is the Optimizer's hot path: one control-loop iteration scores the
// current configuration plus every PALD candidate in a single batch.
func (m *Model) EvaluateBatch(cfgs []cluster.Config) ([][]float64, error) {
	out := make([][]float64, len(cfgs))
	if len(cfgs) == 0 {
		return out, nil
	}
	samples := m.Samples
	if samples < 1 {
		samples = 1
	}
	vecs, err := m.evalPairs(cfgs, samples)
	if err != nil {
		return nil, err
	}
	for c := range cfgs {
		acc := make([]float64, len(m.Templates))
		for s := 0; s < samples; s++ {
			v := vecs[c*samples+s]
			for i := range acc {
				acc[i] += v[i]
			}
		}
		for i := range acc {
			acc[i] /= float64(samples)
		}
		out[c] = acc
	}
	return out, nil
}

// evalCache shares QS vectors across the candidates of one batch. Small
// configuration deltas frequently leave the predicted schedule unchanged
// (a weight tweak beyond the contention point, a max-share above demand),
// in which case re-deriving the QS vector from an identical event stream
// is pure waste. Entries are keyed by (sample, schedule fingerprint) and
// verified with an exact record comparison before reuse, so a fingerprint
// collision can never corrupt a result; and since verified-equal schedules
// yield bit-identical QS vectors, reuse cannot perturb determinism no
// matter which worker populated the entry first.
type evalCache struct {
	mu      sync.Mutex
	entries map[int][]evalCacheEntry
}

// maxCacheEntriesPerSample bounds retained schedules: each entry pins a
// full predicted schedule (jobs + tasks) for the batch's lifetime, and a
// batch whose candidates all predict distinct schedules gains nothing
// from caching them. PALD batches score a handful of candidates, so the
// bound is never hit in the control loop; it only caps memory for huge
// hand-built batches.
const maxCacheEntriesPerSample = 32

type evalCacheEntry struct {
	fp    uint64
	sched *cluster.Schedule
	vals  []float64
}

func newEvalCache() *evalCache {
	return &evalCache{entries: map[int][]evalCacheEntry{}}
}

// lookup returns a previously computed QS vector for an identical
// (sample, schedule) pair, or nil. The O(records) exact comparison runs
// outside the lock — entries are append-only and immutable once stored,
// so only the slice snapshot needs the mutex, and workers comparing large
// schedules do not serialize each other.
func (c *evalCache) lookup(sample int, sched *cluster.Schedule, fp uint64) []float64 {
	c.mu.Lock()
	candidates := c.entries[sample]
	c.mu.Unlock()
	for _, e := range candidates {
		if e.fp == fp && e.sched.Equal(sched) {
			return e.vals
		}
	}
	return nil
}

// store retains the (schedule, vector) pair for the batch's lifetime and
// reports whether it did; a false return means the schedule is not pinned
// and its storage may be recycled.
func (c *evalCache) store(sample int, sched *cluster.Schedule, fp uint64, vals []float64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.entries[sample]) >= maxCacheEntriesPerSample {
		return false
	}
	c.entries[sample] = append(c.entries[sample], evalCacheEntry{fp: fp, sched: sched, vals: vals})
	return true
}

// Scratch is one worker's reusable evaluation state: a simulation arena
// for the built-in Schedule Predictor and a QS scratch for deriving the
// vector. Workers draw one from scratchPool per batch, so steady-state
// candidate scoring performs near-zero heap allocation; sync.Pool returns
// arenas under memory pressure, bounding retention.
type Scratch struct {
	sim *cluster.Sim
	qs  qs.Scratch
}

var scratchPool = sync.Pool{New: func() any { return &Scratch{sim: cluster.NewSim()} }}

// evalPairs scores every (configuration, sample) pair and returns the QS
// vectors indexed by cfg*samples + sample. Errors are aggregated
// deterministically, in two tiers: generation errors first (lowest sample
// wins, attributed to config 0), then prediction errors (the pair with the
// lowest flat index wins). Both tiers are independent of worker timing.
//
// The S sample traces are generated exactly once, up front, and shared
// (read-only) by all C candidates. Every candidate scores the same sample
// trace by construction, so regenerating it per (cfg, sample) pair — C×S
// generations instead of S — was pure waste; in windowed mode each
// generation is a full synthetic workload draw.
//
//tempo:hot
func (m *Model) evalPairs(cfgs []cluster.Config, samples int) ([][]float64, error) {
	predict := m.Predict
	if predict == nil {
		predict = DefaultPredictor
	}
	traces, err := m.genSamples(samples, workersFor(m.Parallelism, samples))
	if err != nil {
		// A generation failure hits every candidate at that sample, so the
		// winning (lowest-sample) error is deterministically attributed to
		// config 0 and reported before any prediction error.
		if len(cfgs) > 1 {
			//tempolint:ignore allocdiscipline cold error exit, runs at most once per batch
			return nil, fmt.Errorf("whatif: config 0: %w", err)
		}
		//tempolint:ignore allocdiscipline cold error exit, runs at most once per batch
		return nil, fmt.Errorf("whatif: %w", err)
	}
	total := len(cfgs) * samples
	vecs := make([][]float64, total)
	errs := make([]error, total)
	cache := newEvalCache()
	workers := m.Parallelism
	if workers > total {
		workers = total
	}
	// Workers with a nil custom predictor run the built-in predictor
	// through a per-worker Scratch: the simulation arena and QS buffers are
	// recycled across that worker's pairs and returned to the shared pool
	// afterwards. Custom predictors manage their own storage.
	pooled := m.Predict == nil
	if workers <= 1 {
		var sc *Scratch
		if pooled {
			sc = scratchPool.Get().(*Scratch)
		}
		for idx := 0; idx < total; idx++ {
			vecs[idx], errs[idx] = m.evalSample(predict, cache, sc, traces[idx%samples], cfgs[idx/samples], idx%samples)
			if errs[idx] != nil {
				break
			}
		}
		if pooled {
			scratchPool.Put(sc)
		}
	} else {
		// Every pair runs even if one fails — that keeps the winning error
		// independent of goroutine timing, and failures are cheap (config
		// validation rejects them before any simulation work).
		runIndexedScratch(workers, total, pooled, func(idx int, sc *Scratch) {
			vecs[idx], errs[idx] = m.evalSample(predict, cache, sc, traces[idx%samples], cfgs[idx/samples], idx%samples)
		})
	}
	for idx, err := range errs {
		if err != nil {
			if len(cfgs) > 1 {
				//tempolint:ignore allocdiscipline cold error exit, runs at most once per batch
				return nil, fmt.Errorf("whatif: config %d: %w", idx/samples, err)
			}
			//tempolint:ignore allocdiscipline cold error exit, runs at most once per batch
			return nil, fmt.Errorf("whatif: %w", err)
		}
	}
	return vecs, nil
}

// workersFor clamps the model's parallelism to the item count; values
// below 2 mean "run on the calling goroutine".
func workersFor(parallelism, items int) int {
	if parallelism > items {
		return items
	}
	return parallelism
}

// runIndexed fans fn(0..n-1) out over a worker pool, work-stealing from a
// shared atomic counter: items vary wildly in cost (candidate
// configurations change queueing behaviour; workload draws vary in size),
// so static striping would leave workers idle. Callers record results and
// errors by index, which keeps their aggregation order deterministic.
func runIndexed(workers, n int, fn func(i int)) {
	runIndexedScratch(workers, n, false, func(i int, _ *Scratch) { fn(i) })
}

// runIndexedScratch is runIndexed with an optional per-worker Scratch:
// each worker draws one from the shared pool for its whole lifetime and
// returns it when the fan-out drains, so scratch state is reused across
// all of a worker's items without cross-worker sharing.
func runIndexedScratch(workers, n int, pooled bool, fn func(i int, sc *Scratch)) {
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			var sc *Scratch
			if pooled {
				sc = scratchPool.Get().(*Scratch)
				defer scratchPool.Put(sc)
			}
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i, sc)
			}
		}()
	}
	wg.Wait()
}

// genSamples draws the batch's sample traces, one per sample index. The
// traces are shared read-only by every candidate and retained together for
// the batch's lifetime — fine for the control loop's small sample counts;
// a Sensitivity sweep over S draws holds S traces at once. Samples are
// independent, so with workers > 1 they are drawn concurrently; storage is
// by index and the winning error is the lowest sample's, so the result is
// identical to sequential generation.
func (m *Model) genSamples(samples, workers int) ([]*workload.Trace, error) {
	traces := make([]*workload.Trace, samples)
	errs := make([]error, samples)
	genOne := func(s int) {
		trace, err := m.Gen(s)
		switch {
		case err != nil:
			errs[s] = fmt.Errorf("generating sample %d: %w", s, err)
		case trace == nil:
			errs[s] = fmt.Errorf("generating sample %d: generator returned a nil trace", s)
		default:
			traces[s] = trace
		}
	}
	if workers <= 1 {
		for s := 0; s < samples; s++ {
			genOne(s)
			if errs[s] != nil {
				return nil, errs[s]
			}
		}
		return traces, nil
	}
	runIndexed(workers, samples, genOne)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return traces, nil
}

// evalSample scores cfg on one workload sample: it predicts the task
// schedule, then derives the full QS vector incrementally — the schedule's
// event stream is built once and shared by every template
// (qs.EvalStream), instead of one record scan per template. Candidates
// whose predicted schedule is identical to one already scored for the
// same sample reuse its vector through the cache — the per-batch
// evalCache from EvaluateBatch, or the cross-tick searchState from
// EvaluateSearch.
//
// With a non-nil scratch (built-in predictor only) the prediction runs in
// the scratch's simulation arena and the QS derivation reuses its
// buffers: the predicted schedule borrows arena storage and is recycled
// by the worker's next pair, unless the cache pins it — then it is
// detached and owns its records for the batch's lifetime.
//
//tempo:hot
func (m *Model) evalSample(predict Predictor, cache pairCache, sc *Scratch, trace *workload.Trace, cfg cluster.Config, sample int) ([]float64, error) {
	var sched *cluster.Schedule
	var err error
	if sc != nil {
		sched, err = sc.sim.RunInto(trace, cfg, cluster.Options{Horizon: m.Horizon})
	} else {
		sched, err = predict(trace, cfg, m.Horizon)
	}
	if err != nil {
		//tempolint:ignore allocdiscipline cold error exit, never on the scored pair path
		return nil, fmt.Errorf("predicting sample %d: %w", sample, err)
	}
	if sched == nil {
		//tempolint:ignore allocdiscipline cold error exit, never on the scored pair path
		return nil, fmt.Errorf("predicting sample %d: predictor returned a nil schedule", sample)
	}
	fp := sched.Fingerprint()
	if vals := cache.lookup(sample, sched, fp); vals != nil {
		return vals, nil
	}
	var vals []float64
	if sc != nil {
		vals = qs.EvalStreamScratch(&sc.qs, m.Templates, sched, 0, sched.Horizon+time.Nanosecond)
	} else {
		vals = qs.EvalStream(m.Templates, sched, 0, sched.Horizon+time.Nanosecond)
	}
	if cache.store(sample, sched, fp, vals) && sc != nil {
		sc.sim.Detach()
	}
	return vals, nil
}

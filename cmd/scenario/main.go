// Command scenario runs declarative multi-tenant stress scenarios over the
// cluster emulator and prints (or writes) their canonical reports.
//
// Usage:
//
//	scenario -spec internal/scenario/testdata/scenarios/flash-crowd.json
//	scenario -spec spec.json -report out.json     # write the canonical report
//	scenario -dir internal/scenario/testdata/scenarios   # run a whole matrix
//	scenario -spec spec.json -parallelism 8       # what-if workers (output identical)
//
// A scenario spec composes tenants (statistical profile presets), arrival
// processes (steady, diurnal, burst, flash crowd, tenant arrival and
// departure), SLO templates, mid-run capacity changes, and a controller
// on/off toggle; see internal/scenario and the README for the format. Runs
// are deterministic: the same spec always produces byte-identical reports,
// which is what the golden-file regression suite in internal/scenario
// locks down.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"tempo/internal/scenario"
	"tempo/internal/whatif"
)

func main() {
	var (
		specPath   = flag.String("spec", "", "scenario spec JSON to run")
		dir        = flag.String("dir", "", "run every *.json spec in this directory (golden files are skipped)")
		reportPath = flag.String("report", "", "write the canonical report JSON here (single -spec only)")
		par        = flag.Int("parallelism", 0, "what-if worker count (0 = one per CPU); reports are identical for any value")
		quiet      = flag.Bool("quiet", false, "suppress the per-iteration table")
	)
	flag.Parse()
	if (*specPath == "") == (*dir == "") {
		fmt.Fprintln(os.Stderr, "scenario: exactly one of -spec or -dir is required")
		os.Exit(2)
	}
	if *reportPath != "" && *dir != "" {
		fmt.Fprintln(os.Stderr, "scenario: -report requires -spec")
		os.Exit(2)
	}
	if *par <= 0 {
		*par = whatif.DefaultParallelism()
	}
	paths := []string{*specPath}
	if *dir != "" {
		all, err := filepath.Glob(filepath.Join(*dir, "*.json"))
		if err != nil {
			fatal(err)
		}
		paths = paths[:0]
		for _, p := range all {
			if !strings.HasSuffix(p, ".golden.json") {
				paths = append(paths, p)
			}
		}
		sort.Strings(paths)
		if len(paths) == 0 {
			fatal(fmt.Errorf("no scenario specs in %s", *dir))
		}
	}
	for _, p := range paths {
		if err := runOne(p, *par, *reportPath, *quiet); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "scenario:", err)
	os.Exit(1)
}

func runOne(path string, parallelism int, reportPath string, quiet bool) error {
	spec, err := scenario.LoadFile(path)
	if err != nil {
		return err
	}
	start := time.Now()
	rep, err := scenario.Run(spec, scenario.Options{Parallelism: parallelism})
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	controller := "controller on"
	if !rep.ControllerEnabled {
		controller = "controller off"
	}
	fmt.Printf("%s: %d tenants, %d containers, %d x %gmin intervals, %s (%s wall)\n",
		rep.Scenario, len(spec.TenantNames()), rep.Capacity, len(rep.Iterations), rep.IntervalMinutes,
		controller, elapsed.Round(time.Millisecond))
	if !quiet {
		fmt.Printf("%5s  %4s  %8s  %8s  %9s", "iter", "cap", "switched", "reverted", "preempted")
		for _, o := range rep.Objectives {
			fmt.Printf("  %*s", max(10, len(o)), o)
		}
		fmt.Println()
		for _, it := range rep.Iterations {
			fmt.Printf("%5d  %4d  %8v  %8v  %9d", it.Index, it.Capacity, it.Switched, it.Reverted, it.Preemptions)
			for i, o := range rep.Objectives {
				fmt.Printf("  %*.4f", max(10, len(o)), it.Observed[i])
			}
			fmt.Println()
		}
	}
	fmt.Printf("summary: %d switches, %d reverts, %d preemptions, %d jobs completed\n",
		rep.Summary.Switches, rep.Summary.Reverts, rep.Summary.TotalPreemptions, rep.Summary.TotalCompletedJobs)
	for i, o := range rep.Objectives {
		fmt.Printf("  %-32s %12.4f -> %12.4f  (%+.1f%%)\n",
			o, rep.Summary.FirstObserved[i], rep.Summary.LastQuarterMean[i], rep.Summary.Improvement[i]*100)
	}
	if reportPath != "" {
		if err := rep.SaveFile(reportPath); err != nil {
			return err
		}
		fmt.Printf("report written to %s\n", reportPath)
	}
	fmt.Println()
	return nil
}

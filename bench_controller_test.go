package tempo

// BenchmarkControllerDecision measures the PR-8 tentpole: the
// controller's incremental candidate search (cross-tick warm-starting +
// QS-bound pruning) against exhaustive scoring, at the stress tier and
// on a contended pruning fixture. It fails outright — the CI regression
// gate — if the incremental search stops saving at least 30% of the
// fully scored candidates per steady-state decision, if pruning stops
// firing on the contended fixture, or if either mechanism perturbs the
// decision trajectory. Headline quantities are recorded for
// BENCH_8.json (cmd/benchdiff gates them against the committed
// baseline).

import (
	"math"
	"reflect"
	"testing"
	"time"

	"tempo/internal/cluster"
	"tempo/internal/core"
	"tempo/internal/linalg"
	"tempo/internal/pald"
	"tempo/internal/scenario"
	"tempo/internal/whatif"
	"tempo/internal/workload"
)

// decisionTicks is how many control intervals the stress-tier comparison
// drives. Tick 0 is the cold tick (nothing cached yet); the reduction
// gate is computed over the steady-state ticks after it.
const decisionTicks = 3

// batchOnlyWhatIf hides EvaluateSearch so the controller's SearchModel
// assertion fails and scoring falls back to the exhaustive batch path.
type batchOnlyWhatIf struct{ m *whatif.Model }

func (b *batchOnlyWhatIf) Evaluate(cfg cluster.Config) ([]float64, error) { return b.m.Evaluate(cfg) }
func (b *batchOnlyWhatIf) EvaluateBatch(cfgs []cluster.Config) ([][]float64, error) {
	return b.m.EvaluateBatch(cfgs)
}

// stressController builds a controller over the committed stress-1000
// tenant mix (1000 tenants, capacity 400) with a prune-eligible
// RandomSearch strategy and two candidates per tick — the stress-scale
// shape of the incremental-search win.
func stressController(b *testing.B, exhaustive bool) *core.Controller {
	b.Helper()
	spec, err := scenario.LoadFile("internal/scenario/testdata/scenarios/stress-1000.json")
	if err != nil {
		b.Fatal(err)
	}
	spec.Iterations = decisionTicks // extend the trace to cover every benched tick
	rt, err := scenario.Build(spec, scenario.Options{Parallelism: 1})
	if err != nil {
		b.Fatal(err)
	}
	model, err := rt.NewWhatIfModel(1)
	if err != nil {
		b.Fatal(err)
	}
	var coreModel core.Model = model
	if exhaustive {
		coreModel = &batchOnlyWhatIf{m: model}
	}
	space := cluster.DefaultSpace(spec.Capacity, spec.TenantNames())
	rs, err := pald.NewRandomSearch(space.Dim(), 0.2, spec.Seed+7)
	if err != nil {
		b.Fatal(err)
	}
	ctl, err := core.NewController(core.Config{
		Space:       space,
		Templates:   rt.Templates,
		Model:       coreModel,
		Environment: &core.TraceEnvironment{Trace: rt.Trace, Seed: spec.Seed},
		Interval:    rt.Interval,
		Candidates:  2,
		Strategy:    rs,
		Now:         time.Now,
	}, rt.Initial)
	if err != nil {
		b.Fatal(err)
	}
	return ctl
}

// floodedController builds the contended pruning fixture: a tiny cluster
// flooded with identical jobs under a constrained throughput SLO, and a
// strategy proposing the most starved corner of the configuration space
// — candidates whose QS lower bound proves them hopeless before any
// simulation.
func floodedController(b *testing.B, exhaustive bool) *core.Controller {
	b.Helper()
	const capacity = 8
	interval := 30 * time.Minute
	trace := &workload.Trace{Name: "flood", Horizon: interval}
	for i := 0; i < 40; i++ {
		id := "flood-" + string(rune('a'+i/26)) + string(rune('a'+i%26))
		trace.Jobs = append(trace.Jobs, workload.NewMapReduceJob(id, "batch", 0,
			[]time.Duration{5 * time.Minute, 5 * time.Minute, 5 * time.Minute, 5 * time.Minute}, nil))
	}
	if err := trace.Validate(); err != nil {
		b.Fatal(err)
	}
	templates := []Template{
		Template{Queue: "batch", Metric: Throughput}.WithTarget(-8),
	}
	model, err := whatif.FromTrace(templates, trace)
	if err != nil {
		b.Fatal(err)
	}
	model.Horizon = interval
	var coreModel core.Model = model
	if exhaustive {
		coreModel = &batchOnlyWhatIf{m: model}
	}
	space := cluster.DefaultSpace(capacity, []string{"batch"})
	ctl, err := core.NewController(core.Config{
		Space:       space,
		Templates:   templates,
		Model:       coreModel,
		Environment: &core.ReplayEnvironment{Trace: trace},
		Interval:    interval,
		Candidates:  3,
		Strategy:    &cornerProposer{dim: space.Dim()},
		Now:         time.Now,
	}, cluster.Config{TotalContainers: capacity, Tenants: map[string]cluster.TenantConfig{
		"batch": {Weight: 1},
	}})
	if err != nil {
		b.Fatal(err)
	}
	return ctl
}

// cornerProposer proposes the origin of the normalized cube (decoding to
// a one-container MaxShare cap). It deliberately does not implement
// pald.PredictionObserver, which licenses the controller to prune it.
type cornerProposer struct{ dim int }

func (s *cornerProposer) Name() string                           { return "corner" }
func (s *cornerProposer) Observe(linalg.Vector, []float64) error { return nil }
func (s *cornerProposer) Propose(_ linalg.Vector, _ []float64, n int) ([]linalg.Vector, error) {
	out := make([]linalg.Vector, n)
	for i := range out {
		out[i] = linalg.NewVector(s.dim)
	}
	return out, nil
}

// driveDecisions steps the controller n ticks and returns the stripped
// trajectory plus aggregated search stats over ticks [from, n).
func driveDecisions(b *testing.B, c *core.Controller, n, from int) ([]core.Iteration, core.SearchStats) {
	b.Helper()
	hist, err := c.Run(n)
	if err != nil {
		b.Fatal(err)
	}
	var agg core.SearchStats
	for i := from; i < n; i++ {
		st := c.Search(i)
		if st == nil {
			b.Fatalf("tick %d has no search stats", i)
		}
		agg.Candidates += st.Candidates
		agg.FullyScored += st.FullyScored
		agg.WarmStarted += st.WarmStarted
		agg.Pruned += st.Pruned
		agg.SimsRun += st.SimsRun
		agg.SimsReused += st.SimsReused
		if agg.DecisionNanos == 0 || st.DecisionNanos < agg.DecisionNanos {
			agg.DecisionNanos = st.DecisionNanos // min: stable estimator
		}
	}
	for i := range hist {
		hist[i].Search = nil
	}
	return hist, agg
}

func BenchmarkControllerDecision(b *testing.B) {
	// Stress tier: warm-starting must cut fully scored candidates per
	// steady-state decision by >= 30% without changing any decision.
	exHist, exStats := driveDecisions(b, stressController(b, true), decisionTicks, 1)
	incHist, incStats := driveDecisions(b, stressController(b, false), decisionTicks, 1)
	if !reflect.DeepEqual(exHist, incHist) {
		b.Fatalf("incremental search changed the stress trajectory:\nexhaustive:  %+v\nincremental: %+v", exHist, incHist)
	}
	reduction := 1 - float64(incStats.FullyScored)/math.Max(float64(exStats.FullyScored), 1)
	if reduction < 0.30 {
		b.Fatalf("incremental search scored %d candidates vs %d exhaustive (reduction %.3f < 0.30)",
			incStats.FullyScored, exStats.FullyScored, reduction)
	}

	// Contended fixture: the QS lower bound must prune the hopeless
	// candidates outright, again without perturbing the trajectory.
	floodEx, floodExStats := driveDecisions(b, floodedController(b, true), decisionTicks, 0)
	floodInc, floodIncStats := driveDecisions(b, floodedController(b, false), decisionTicks, 0)
	if !reflect.DeepEqual(floodEx, floodInc) {
		b.Fatalf("pruning changed the flooded trajectory:\nexhaustive: %+v\npruned:     %+v", floodEx, floodInc)
	}
	if floodExStats.Pruned != 0 || floodIncStats.Pruned == 0 {
		b.Fatalf("pruning counters wrong: exhaustive %d, incremental %d", floodExStats.Pruned, floodIncStats.Pruned)
	}

	b.ReportMetric(reduction, "scored-reduction")
	b.ReportMetric(float64(incStats.DecisionNanos), "decision-ns")
	recordBench("ControllerDecision", map[string]float64{
		"tenants":                 1000,
		"iterations":              decisionTicks,
		"candidates":              float64(incStats.Candidates),
		"fully_scored":            float64(incStats.FullyScored),
		"fully_scored_exhaustive": float64(exStats.FullyScored),
		"warm_started":            float64(incStats.WarmStarted),
		"sims_run":                float64(incStats.SimsRun),
		"sims_reused":             float64(incStats.SimsReused),
		"scored_reduction":        reduction,
		"pruned_flood":            float64(floodIncStats.Pruned),
		"decision_ns":             float64(incStats.DecisionNanos),
		"decision_exhaustive_ns":  float64(exStats.DecisionNanos),
	})

	// The benched op: one steady-state decision (observe → propose →
	// warm-started incremental scoring → select) at stress-1000 scale.
	ctl := stressController(b, false)
	if _, err := ctl.Step(); err != nil { // cold tick outside the timer
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ctl.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

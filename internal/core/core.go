// Package core implements Tempo's control loop (§4, Figure 3): the glue
// that observes the task schedule of the live (here: emulated) cluster,
// evaluates QS metrics for the registered SLO templates, asks the Optimizer
// (PALD) for candidate RM configurations within a bounded distance of the
// current one, scores the candidates in the What-if Model, applies the
// best, and reverts when the next observation shows a regression.
package core

import (
	"errors"
	"fmt"
	"math"
	"time"

	"tempo/internal/cluster"
	"tempo/internal/linalg"
	"tempo/internal/pald"
	"tempo/internal/qs"
	"tempo/internal/workload"
)

// Model is the what-if interface the control loop drives: predict the QS
// vector a candidate RM configuration would attain. *whatif.Model is the
// canonical implementation.
type Model interface {
	Evaluate(cfg cluster.Config) ([]float64, error)
}

// BatchModel is implemented by models that can score many candidate
// configurations in one call — *whatif.Model fans the batch out over a
// worker pool. The controller routes all candidate scoring through it when
// available; plain Model implementations fall back to sequential calls.
type BatchModel interface {
	Model
	EvaluateBatch(cfgs []cluster.Config) ([][]float64, error)
}

// SearchModel is implemented by models that support the controller's
// incremental decision search: cross-tick reuse of candidate scores plus
// optional bound-based pruning through the keep callback, with fresh[i] /
// reused[i] reporting how much simulation work candidate i actually cost.
// *whatif.Model implements it; the controller routes candidate scoring
// through it when available and falls back to BatchModel/Model otherwise.
// The contract mirrors whatif.(*Model).EvaluateSearch: cfgs[0] is the
// incumbent, preds[i] == nil marks a pruned candidate, and every non-nil
// prediction is bit-identical to an exhaustive EvaluateBatch row.
type SearchModel interface {
	Model
	EvaluateSearch(cfgs []cluster.Config, keep func(i int, lower, base []float64) bool) (preds [][]float64, fresh, reused []int, err error)
}

// scoreBatch scores every configuration through the model, using the batch
// API when the model supports it and a sequential adapter otherwise. Row i
// corresponds to cfgs[i] in both paths.
func scoreBatch(m Model, cfgs []cluster.Config) ([][]float64, error) {
	if bm, ok := m.(BatchModel); ok {
		return bm.EvaluateBatch(cfgs)
	}
	out := make([][]float64, len(cfgs))
	for i := range cfgs {
		v, err := m.Evaluate(cfgs[i])
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// Environment is the live system under management: given an RM
// configuration, run one control interval and return the observed task
// schedule. Production deployments would adapt a real RM here; the
// reproduction uses the noisy cluster emulator.
type Environment interface {
	Observe(cfg cluster.Config, interval time.Duration, iteration int) (*cluster.Schedule, error)
}

// EmulatedCluster is the Environment used throughout the evaluation: every
// control interval it synthesizes a fresh workload draw from the tenant
// profiles and replays it on the noisy cluster emulator.
type EmulatedCluster struct {
	// Profiles describe the tenants' workloads.
	Profiles []workload.TenantProfile
	// Noise configures the emulation disturbances; nil means deterministic
	// (useful in tests).
	Noise *cluster.NoiseModel
	// Seed bases the per-iteration workload and noise seeds.
	Seed int64
}

// Observe implements Environment.
func (e *EmulatedCluster) Observe(cfg cluster.Config, interval time.Duration, iteration int) (*cluster.Schedule, error) {
	trace, err := workload.Generate(e.Profiles, workload.GenerateOptions{
		Horizon: interval,
		Seed:    e.Seed + int64(iteration)*104729,
		Name:    fmt.Sprintf("iter-%d", iteration),
	})
	if err != nil {
		return nil, err
	}
	opts := cluster.Options{Horizon: interval}
	if e.Noise != nil {
		n := *e.Noise
		n.Seed = e.Noise.Seed + int64(iteration)*7907
		opts.Noise = &n
	}
	return cluster.Run(trace, cfg, opts)
}

// TraceEnvironment replays consecutive windows of one long recorded trace —
// the setup of the adaptivity experiment (§8.2.3), where each iteration
// sees the workload distribution drift.
type TraceEnvironment struct {
	// Trace is the full recorded workload.
	Trace *workload.Trace
	// Noise configures emulation disturbances (may be nil).
	Noise *cluster.NoiseModel
	// Seed bases per-iteration noise seeds.
	Seed int64
}

// Observe implements Environment.
func (e *TraceEnvironment) Observe(cfg cluster.Config, interval time.Duration, iteration int) (*cluster.Schedule, error) {
	from := time.Duration(iteration) * interval
	win := e.Trace.Window(from, from+interval)
	opts := cluster.Options{Horizon: interval}
	if e.Noise != nil {
		n := *e.Noise
		n.Seed = e.Noise.Seed + int64(iteration)*6151
		opts.Noise = &n
	}
	return cluster.Run(win, cfg, opts)
}

// ReplayEnvironment replays the same recorded trace every control interval
// with fresh noise — the protocol of the §8.2.1/§8.2.2 experiments, where
// one production workload is replayed (via SWIM) under each candidate RM
// configuration. Because the workload is held fixed, QS changes across
// iterations are attributable to configuration changes plus noise.
type ReplayEnvironment struct {
	// Trace is the workload replayed each interval.
	Trace *workload.Trace
	// Noise configures emulation disturbances (may be nil).
	Noise *cluster.NoiseModel
	// Seed bases per-iteration noise seeds.
	Seed int64
}

// Observe implements Environment.
func (e *ReplayEnvironment) Observe(cfg cluster.Config, interval time.Duration, iteration int) (*cluster.Schedule, error) {
	opts := cluster.Options{Horizon: interval}
	if e.Noise != nil {
		n := *e.Noise
		n.Seed = e.Noise.Seed + e.Seed + int64(iteration)*3571
		opts.Noise = &n
	}
	return cluster.Run(e.Trace, cfg, opts)
}

// RevertPolicy selects the regression guard behaviour.
type RevertPolicy int

// Revert policies.
const (
	// RevertOnWorse (default) reverts when the newly observed QS vector is
	// worse than the previous one under PALD's feasibility-first ordering.
	// The paper's literal rule — revert unless the new vector Pareto-
	// dominates the old — reverts almost every step under measurement
	// noise (strict domination in k dimensions is rare); ordering-based
	// comparison keeps the guard's intent, protection against
	// regressions, without freezing the loop.
	RevertOnWorse RevertPolicy = iota
	// RevertOnNonDominance is the paper's literal rule, kept for the
	// revert-guard ablation.
	RevertOnNonDominance
	// RevertOff disables the guard.
	RevertOff
)

// Config configures a Controller.
type Config struct {
	// Space is the normalized RM configuration space.
	Space *cluster.Space
	// Templates are the registered SLOs; their order fixes the QS vector.
	Templates []qs.Template
	// Model predicts QS vectors for candidate configurations, typically a
	// *whatif.Model. Implementations that also satisfy BatchModel score the
	// per-iteration candidate set in one (possibly parallel) batch call.
	Model Model
	// Strategy proposes candidates; nil builds a default PALD optimizer.
	Strategy pald.Strategy
	// Environment is the system under management.
	Environment Environment
	// Interval is the control window L (default 30 min).
	Interval time.Duration
	// Candidates per loop iteration (default 5, as in §8.2).
	Candidates int
	// Revert selects the regression-guard policy.
	Revert RevertPolicy
	// RankRho is the ρ used when ranking what-if candidates with the proxy
	// score (default 0.5).
	RankRho float64
	// PALD tunes the default optimizer when Strategy is nil.
	PALD pald.Options
	// Now supplies wall-clock timestamps for decision-latency accounting
	// (SearchStats.DecisionNanos). nil leaves latencies at zero:
	// deterministic contexts (the scenario golden suite) omit it, the
	// serving layer injects time.Now. Latencies never feed back into the
	// decision, so the injection cannot perturb trajectories.
	Now func() time.Time
}

// SearchStats instruments one iteration's candidate search: how many
// candidates the strategy proposed (plus the incumbent), how many were
// fully scored through the predictor, how many were warm-started entirely
// from the cross-tick cache, how many the QS bounds pruned before any
// simulation, and the per-sample simulation counts behind those. The
// serving layer aggregates these into the scored/pruned-candidates
// counters and the decision-latency quantiles on /metrics.
type SearchStats struct {
	// Candidates is the size of the scored set: the incumbent plus every
	// proposal.
	Candidates int `json:"candidates"`
	// FullyScored counts candidates that ran the predictor on at least one
	// sample this iteration.
	FullyScored int `json:"fully_scored"`
	// WarmStarted counts candidates resolved entirely from the cross-tick
	// cache — scored, but with zero simulations.
	WarmStarted int `json:"warm_started"`
	// Pruned counts candidates the QS lower bounds eliminated before any
	// simulation.
	Pruned int `json:"pruned"`
	// SimsRun and SimsReused count (candidate, sample) predictor runs and
	// cache hits across the whole decision.
	SimsRun    int `json:"sims_run"`
	SimsReused int `json:"sims_reused"`
	// DecisionNanos is the wall-clock propose→score→select span, when the
	// controller has a clock (Config.Now); zero otherwise.
	DecisionNanos int64 `json:"decision_ns"`
}

// clone returns a copy, nil-safe.
func (s *SearchStats) clone() *SearchStats {
	if s == nil {
		return nil
	}
	cp := *s
	return &cp
}

// Iteration records one pass of the control loop for reporting.
type Iteration struct {
	// Index is the iteration number, starting at 0 (the initial expert
	// configuration).
	Index int
	// Config is the configuration the interval ran under.
	Config cluster.Config
	// Observed is the QS vector measured on the interval's task schedule.
	Observed []float64
	// Predicted is the what-if QS vector of the configuration chosen for
	// the next interval (nil when the loop kept the current one).
	Predicted []float64
	// Reverted reports whether the guard rolled back this iteration.
	Reverted bool
	// Switched reports whether a new configuration was adopted.
	Switched bool
	// Search instruments the iteration's candidate search. It is
	// diagnostic only — scenario reports exclude it, so goldens are
	// unaffected.
	Search *SearchStats `json:"search,omitempty"`
}

// Controller drives the Tempo control loop.
type Controller struct {
	cfg      Config
	strategy pald.Strategy

	current  cluster.Config
	currentX linalg.Vector

	prevConfig   cluster.Config
	prevObserved []float64
	hasPrev      bool

	targets []pald.Target
	// scales hold one normalization constant per objective, frozen at the
	// first observation. QS metrics have wildly different units (seconds
	// for QS_AJR, fractions for QS_DL/QS_UTIL); every comparison and every
	// sample fed to the optimizer is divided by these so no objective can
	// silently dominate the others. This realizes the paper's note that
	// the c vector is "normalized using any desirable metrics".
	scales  []float64
	history []Iteration
}

// NewController validates wiring and positions the loop at the initial
// (expert) configuration.
func NewController(cfg Config, initial cluster.Config) (*Controller, error) {
	if cfg.Space == nil {
		return nil, errors.New("core: nil configuration space")
	}
	if len(cfg.Templates) == 0 {
		return nil, errors.New("core: no SLO templates")
	}
	if cfg.Model == nil {
		return nil, errors.New("core: nil what-if model")
	}
	if cfg.Environment == nil {
		return nil, errors.New("core: nil environment")
	}
	if err := initial.Validate(); err != nil {
		return nil, err
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 30 * time.Minute
	}
	if cfg.Candidates <= 0 {
		cfg.Candidates = 5
	}
	if cfg.RankRho == 0 {
		cfg.RankRho = 0.5
	}
	strategy := cfg.Strategy
	if strategy == nil {
		targets := make([]pald.Target, len(cfg.Templates))
		opt, err := pald.New(cfg.Space.Dim(), targets, cfg.PALD)
		if err != nil {
			return nil, err
		}
		strategy = opt
	}
	c := &Controller{
		cfg:      cfg,
		strategy: strategy,
		current:  initial.Clone(),
		targets:  make([]pald.Target, len(cfg.Templates)),
	}
	c.currentX = cfg.Space.Encode(c.current)
	for i, t := range cfg.Templates {
		if t.HasTarget {
			c.targets[i] = pald.Target{R: t.Target, Constrained: true}
		}
	}
	return c, nil
}

// Current returns the configuration the next interval will run under.
func (c *Controller) Current() cluster.Config { return c.current.Clone() }

// Targets returns the live constraint set (fixed template targets plus
// ratcheted best-effort bounds).
func (c *Controller) Targets() []pald.Target {
	return append([]pald.Target(nil), c.targets...)
}

// History returns all recorded iterations.
func (c *Controller) History() []Iteration {
	return append([]Iteration(nil), c.history...)
}

// Step runs one control-loop iteration: observe → guard → ratchet targets
// → propose → what-if → apply.
func (c *Controller) Step() (Iteration, error) {
	iterIdx := len(c.history)
	sched, err := c.cfg.Environment.Observe(c.current, c.cfg.Interval, iterIdx)
	if err != nil {
		return Iteration{}, fmt.Errorf("core: observing interval %d: %w", iterIdx, err)
	}
	observed := qs.EvalStream(c.cfg.Templates, sched, 0, sched.Horizon+time.Nanosecond)
	it := Iteration{Index: iterIdx, Config: c.current.Clone(), Observed: observed}
	if c.scales == nil {
		c.scales = make([]float64, len(observed))
		for i, v := range observed {
			s := math.Abs(v)
			if c.cfg.Templates[i].HasTarget {
				s = math.Max(s, math.Abs(c.cfg.Templates[i].Target))
			}
			if s < 1e-9 {
				s = 1
			}
			c.scales[i] = s
		}
	}

	// Revert guard (§4): compare against the previous interval's
	// observation and roll back on regression.
	if c.hasPrev && c.shouldRevert(observed) {
		c.current = c.prevConfig.Clone()
		c.currentX = c.cfg.Space.Encode(c.current)
		it.Reverted = true
	}

	// Ratchet best-effort targets: the paper uses the QS value attained at
	// the current configuration as r_i for the next iteration (§6.1).
	for i, t := range c.cfg.Templates {
		if t.HasTarget {
			continue
		}
		if !c.targets[i].Constrained || observed[i] < c.targets[i].R {
			c.targets[i] = pald.Target{R: observed[i], Constrained: true}
		}
	}
	normTargets := c.normalizedTargets()
	if opt, ok := c.strategy.(*pald.Optimizer); ok {
		if err := opt.SetTargets(normTargets); err != nil {
			return Iteration{}, err
		}
	}
	if err := c.strategy.Observe(c.currentX, c.normalize(observed)); err != nil {
		return Iteration{}, err
	}

	// Propose candidates, then score the current configuration and every
	// candidate in one what-if batch: the evaluations are independent, so a
	// batch-aware model fans them out across its worker pool.
	var searchStart time.Time
	if c.cfg.Now != nil {
		searchStart = c.cfg.Now()
	}
	cands, err := c.strategy.Propose(c.currentX, c.normalize(observed), c.cfg.Candidates)
	if err != nil {
		return Iteration{}, fmt.Errorf("core: proposing candidates: %w", err)
	}
	configs := make([]cluster.Config, 0, len(cands)+1)
	configs = append(configs, c.current)
	for _, x := range cands {
		configs = append(configs, c.cfg.Space.Decode(x))
	}
	feedback, _ := c.strategy.(pald.PredictionObserver)
	preds, stats, err := c.scoreCandidates(configs, normTargets, feedback != nil)
	if err != nil {
		return Iteration{}, fmt.Errorf("core: what-if scoring: %w", err)
	}
	basePred := preds[0]
	bestX := c.currentX
	bestPred := basePred
	switched := false
	for i, x := range cands {
		pred := preds[i+1]
		if pred == nil {
			// Pruned: its QS lower bound already proved it cannot replace
			// the running best (see the keep callback in scoreCandidates).
			continue
		}
		// Feed predicted samples back to the strategy too: cheap gradient
		// information, exactly what Steps (5)-(7) of Figure 3 circulate.
		// Strategies implementing PredictionObserver receive it through the
		// dedicated path; for the rest the historical Observe call is kept
		// (a no-op for the model-free baselines).
		if feedback != nil {
			err = feedback.ObservePrediction(x, c.normalize(pred))
		} else {
			err = c.strategy.Observe(x, c.normalize(pred))
		}
		if err != nil {
			return Iteration{}, err
		}
		if pald.Better(c.normalize(pred), c.normalize(bestPred), normTargets, nil, c.cfg.RankRho) {
			bestX, bestPred, switched = x, pred, true
		}
	}
	if c.cfg.Now != nil {
		stats.DecisionNanos = c.cfg.Now().Sub(searchStart).Nanoseconds()
	}
	it.Search = stats
	if switched {
		c.prevConfig = it.Config.Clone()
		c.current = c.cfg.Space.Decode(bestX)
		c.currentX = bestX.Clone()
		it.Predicted = bestPred
		it.Switched = true
	} else {
		c.prevConfig = c.current.Clone()
	}
	c.prevObserved = observed
	c.hasPrev = true
	c.history = append(c.history, it)
	return it, nil
}

// scoreCandidates resolves the QS prediction for every configuration
// (configs[0] is the incumbent), routing through the model's incremental
// search when it offers one and the plain batch path otherwise, and
// returns per-iteration search statistics alongside.
//
// Pruning is enabled only when the strategy consumes no prediction
// feedback (does not implement pald.PredictionObserver): for such
// strategies a skipped candidate can influence the trajectory only by
// winning the selection scan, so proving it cannot win proves the
// decision identical to exhaustive scoring. The keep callback implements
// that proof arithmetic over normalized vectors:
//
//   - the model guarantees lower is a coordinatewise lower bound on the
//     candidate's averaged prediction, and normalize (division by
//     positive per-objective scales) plus pald.MaxRegret (coordinatewise
//     nondecreasing) preserve that ordering, so the candidate's true
//     normalized max-regret is at least MaxRegret(normalize(lower));
//   - the selection scan starts from the incumbent's regret and each
//     pald.Better replacement can raise the running best's regret by at
//     most the 1e-12 comparison tolerance, at most len(configs)-1 times,
//     so the running best's regret never exceeds the incumbent's by more
//     than (len(configs)-1)·1e-12;
//   - a candidate is pruned only when its bound exceeds the incumbent's
//     regret by more than (len(configs)+1)·1e-12, which keeps it more
//     than 1e-12 above the running best at every point of the scan —
//     pald.Better then takes its strict regret branch and returns false,
//     so the pruned candidate could never have replaced the best.
//
// Every golden therefore stays byte-identical: pruning removes only
// candidates that provably lose, and surviving predictions are
// bit-identical to exhaustive scoring (exact-verified cache reuse).
func (c *Controller) scoreCandidates(configs []cluster.Config, normTargets []pald.Target, feedback bool) ([][]float64, *SearchStats, error) {
	stats := &SearchStats{Candidates: len(configs)}
	sm, ok := c.cfg.Model.(SearchModel)
	if !ok {
		preds, err := scoreBatch(c.cfg.Model, configs)
		if err != nil {
			return nil, nil, err
		}
		// Per-sample simulation counts are not observable through the
		// plain batch path; only the candidate-level tally is meaningful.
		stats.FullyScored = len(configs)
		return preds, stats, nil
	}
	var keep func(i int, lower, base []float64) bool
	if !feedback {
		slack := float64(len(configs)+1) * 1e-12
		keep = func(_ int, lower, base []float64) bool {
			bound := pald.MaxRegret(c.normalize(lower), normTargets)
			incumbent := pald.MaxRegret(c.normalize(base), normTargets)
			return bound <= incumbent+slack
		}
	}
	preds, fresh, reused, err := sm.EvaluateSearch(configs, keep)
	if err != nil {
		return nil, nil, err
	}
	for i := range configs {
		switch {
		case preds[i] == nil:
			stats.Pruned++
		case fresh[i] > 0:
			stats.FullyScored++
		default:
			stats.WarmStarted++
		}
		stats.SimsRun += fresh[i]
		stats.SimsReused += reused[i]
	}
	return preds, stats, nil
}

// Search returns iteration i's search statistics, or nil when the index
// is out of range. The returned struct is shared with the history;
// callers treat it as read-only.
func (c *Controller) Search(i int) *SearchStats {
	if i < 0 || i >= len(c.history) {
		return nil
	}
	return c.history[i].Search
}

// shouldRevert applies the configured guard policy.
func (c *Controller) shouldRevert(observed []float64) bool {
	switch c.cfg.Revert {
	case RevertOff:
		return false
	case RevertOnNonDominance:
		return !qs.Dominates(observed, c.prevObserved)
	default: // RevertOnWorse
		return pald.Better(c.normalize(c.prevObserved), c.normalize(observed), c.normalizedTargets(), nil, c.cfg.RankRho)
	}
}

// normalize divides a QS vector by the per-objective scales.
func (c *Controller) normalize(v []float64) []float64 {
	if c.scales == nil {
		return v
	}
	out := make([]float64, len(v))
	for i := range v {
		out[i] = v[i] / c.scales[i]
	}
	return out
}

// normalizedTargets returns the live constraint set in normalized units.
func (c *Controller) normalizedTargets() []pald.Target {
	out := make([]pald.Target, len(c.targets))
	for i, t := range c.targets {
		out[i] = t
		if c.scales != nil && t.Constrained {
			out[i].R = t.R / c.scales[i]
		}
	}
	return out
}

// Run executes n iterations and returns the full history.
func (c *Controller) Run(n int) ([]Iteration, error) {
	for i := 0; i < n; i++ {
		if _, err := c.Step(); err != nil {
			return c.History(), err
		}
	}
	return c.History(), nil
}

// Improvement summarizes the loop's effect on one objective: the relative
// change from the first iteration's observation to the mean of the last
// quarter of iterations (positive = QS reduced = SLO improved).
func Improvement(history []Iteration, objective int) float64 {
	if len(history) == 0 {
		return 0
	}
	first := history[0].Observed[objective]
	// Guard before the tail computation: a ~zero first observation makes
	// the relative change undefined no matter what the tail averages to
	// (and for a single-iteration history the tail is just the first
	// observation again), so it short-circuits the whole summary.
	if math.Abs(first) < 1e-12 {
		return 0
	}
	tail := history[(3*len(history))/4:]
	var sum float64
	for _, it := range tail {
		sum += it.Observed[objective]
	}
	last := sum / float64(len(tail))
	return (first - last) / math.Abs(first)
}

package workload

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// WriteJSON serializes the trace to w as indented JSON.
func (t *Trace) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(t); err != nil {
		return fmt.Errorf("workload: encoding trace: %w", err)
	}
	return nil
}

// ReadJSON parses a trace from r and validates it.
func ReadJSON(r io.Reader) (*Trace, error) {
	var t Trace
	dec := json.NewDecoder(r)
	if err := dec.Decode(&t); err != nil {
		return nil, fmt.Errorf("workload: decoding trace: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	t.Sort()
	return &t, nil
}

// SaveFile writes the trace to path, creating or truncating it.
func (t *Trace) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("workload: %w", err)
	}
	defer f.Close()
	if err := t.WriteJSON(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads and validates a trace from path.
func LoadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}
	defer f.Close()
	return ReadJSON(f)
}

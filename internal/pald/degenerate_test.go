package pald

import (
	"math/rand"
	"reflect"
	"testing"

	"tempo/internal/linalg"
)

// scriptedSource yields `zeros` zero draws, then falls through to a
// seeded source. math/rand's ziggurat returns exactly 0.0 from a zero
// draw, so the leading zeros force Propose's degenerate (~zero-norm)
// direction branch — unreachable with realistic seeds.
type scriptedSource struct {
	zeros int
	draws int
	tail  rand.Source
}

func (s *scriptedSource) Int63() int64 {
	s.draws++
	if s.zeros > 0 {
		s.zeros--
		return 0
	}
	return s.tail.Int63()
}

func (s *scriptedSource) Seed(int64) {}

// TestRandomSearchDegenerateDrawCount pins the invariant the PR-8 fix
// restored: a proposal consumes the same number of RNG draws whether or
// not its direction degenerates. On the all-zero path every NormFloat64
// and the Float64 step draw cost exactly one source draw each, so one
// dim-3 proposal must consume exactly 4 — the old code skipped the step
// draw and consumed 3.
func TestRandomSearchDegenerateDrawCount(t *testing.T) {
	const dim = 3
	src := &scriptedSource{zeros: dim + 1}
	rs := &RandomSearch{dim: dim, maxStep: 0.1, rng: rand.New(src)}
	x := linalg.Vector{0.5, 0.5, 0.5}
	cands, err := rs.Propose(x, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cands[0], x) {
		t.Fatalf("degenerate proposal %v, want unchanged %v", cands[0], x)
	}
	if src.draws != dim+1 {
		t.Fatalf("degenerate proposal consumed %d draws, want %d (unconditional step draw)", src.draws, dim+1)
	}
}

// TestRandomSearchResumeAcrossDegenerateProposal is the resume
// regression: a draw-count-based resume reconstructs the strategy and
// advances a fresh source by the fixed per-proposal draw count. If the
// degenerate branch consumed fewer draws (the old bug), the resumed
// stream would desync and every later proposal would diverge.
func TestRandomSearchResumeAcrossDegenerateProposal(t *testing.T) {
	const dim = 3
	x := linalg.Vector{0.5, 0.5, 0.5}

	// Original life: proposal 1 degenerates (all-zero direction), then
	// proposal 2 draws from the realistic tail stream.
	srcA := &scriptedSource{zeros: dim, tail: rand.NewSource(42)}
	a := &RandomSearch{dim: dim, maxStep: 0.1, rng: rand.New(srcA)}
	if _, err := a.Propose(x, nil, 1); err != nil {
		t.Fatal(err)
	}
	want, err := a.Propose(x, nil, 1)
	if err != nil {
		t.Fatal(err)
	}

	// Resume: identical source recipe, advanced by the fixed count a
	// dim-3 proposal consumes on the degenerate path (dim + 1 draws).
	srcB := &scriptedSource{zeros: dim, tail: rand.NewSource(42)}
	for i := 0; i < dim+1; i++ {
		srcB.Int63()
	}
	b := &RandomSearch{dim: dim, maxStep: 0.1, rng: rand.New(srcB)}
	got, err := b.Propose(x, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("resumed proposal %v diverged from original %v", got, want)
	}
}

// TestObserveHistoryCap (PR-8 satellite): the optimizer retains exactly
// the last History observations in order, and once the window is full
// the backing arrays stop growing — a long-lived daemon's optimizer must
// not creep.
func TestObserveHistoryCap(t *testing.T) {
	const hist = 8
	opt, err := New(2, []Target{{}, {}}, Options{History: hist, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	obs := func(i int) (linalg.Vector, []float64) {
		return linalg.Vector{float64(i) / 64, 1 - float64(i)/64}, []float64{float64(i), -float64(i)}
	}
	capAfterFull := -1
	for i := 0; i < 40; i++ {
		x, f := obs(i)
		if err := opt.Observe(x, f); err != nil {
			t.Fatal(err)
		}
		if opt.SampleCount() > hist {
			t.Fatalf("after %d observations history holds %d > cap %d", i+1, opt.SampleCount(), hist)
		}
		if i == hist { // first overflow just compacted
			capAfterFull = cap(opt.xs)
		}
	}
	if got := cap(opt.xs); got != capAfterFull {
		t.Fatalf("backing array grew after the window filled: cap %d -> %d", capAfterFull, got)
	}
	if opt.SampleCount() != hist {
		t.Fatalf("retained %d, want %d", opt.SampleCount(), hist)
	}
	// Exactly the newest hist observations, oldest first — same order
	// LOESS consumed before the cap existed, so fits are bit-identical.
	for j := 0; j < hist; j++ {
		wantX, wantF := obs(40 - hist + j)
		if !reflect.DeepEqual(opt.xs[j], wantX) || !reflect.DeepEqual([]float64(opt.fs[j]), wantF) {
			t.Fatalf("slot %d holds (%v, %v), want (%v, %v)", j, opt.xs[j], opt.fs[j], wantX, wantF)
		}
	}
	// Dropped observations must not linger in the backing array.
	full := opt.xs[:cap(opt.xs)]
	for j := hist; j < len(full); j++ {
		if full[j] != nil {
			t.Fatalf("dropped slot %d still references %v", j, full[j])
		}
	}
}

package qs

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"tempo/internal/cluster"
	"tempo/internal/workload"
)

// randomSchedule builds a synthetic schedule with arbitrary (consistent)
// job and task records.
func randomSchedule(rng *rand.Rand) *cluster.Schedule {
	// Capacity exceeds any possible concurrency of the generated records
	// (≤ 20 jobs × 4 tasks) so utilization fractions stay in [0, 1].
	s := &cluster.Schedule{Capacity: 80 + rng.Intn(20), Horizon: time.Hour}
	tenants := []string{"A", "B", "C"}[:1+rng.Intn(3)]
	n := 1 + rng.Intn(20)
	for i := 0; i < n; i++ {
		tenant := tenants[rng.Intn(len(tenants))]
		submit := time.Duration(rng.Intn(1800)) * time.Second
		dur := time.Duration(1+rng.Intn(1800)) * time.Second
		j := cluster.JobRecord{
			ID:        jobName(i),
			Tenant:    tenant,
			Submit:    submit,
			Finish:    submit + dur,
			Completed: rng.Float64() < 0.8,
		}
		if rng.Intn(2) == 0 {
			j.Deadline = submit + time.Duration(rng.Intn(2000))*time.Second
		}
		s.Jobs = append(s.Jobs, j)
		tasks := 1 + rng.Intn(4)
		for k := 0; k < tasks; k++ {
			start := submit + time.Duration(rng.Intn(60))*time.Second
			end := start + time.Duration(1+rng.Intn(int(dur/time.Second)+1))*time.Second
			outcome := cluster.TaskFinished
			if rng.Intn(5) == 0 {
				outcome = cluster.TaskPreempted
			}
			kind := workload.Map
			if rng.Intn(3) == 0 {
				kind = workload.Reduce
			}
			s.Tasks = append(s.Tasks, cluster.TaskRecord{
				JobID: j.ID, Tenant: tenant, Kind: kind,
				Start: start, End: end, Outcome: outcome,
			})
		}
	}
	return s
}

func jobName(i int) string {
	return "job-" + string(rune('a'+i%26)) + string(rune('0'+i/26))
}

// Property: QS_DL is always a fraction in [0, 1] and QS_AJR is never
// negative.
func TestPropertyMetricRanges(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomSchedule(rng)
		for _, tenant := range append(s.Tenants(), "") {
			if tenant != "" {
				ajr := Template{Queue: tenant, Metric: AvgResponseTime}.Eval(s, 0, 2*time.Hour)
				if ajr < 0 {
					return false
				}
				dl := Template{Queue: tenant, Metric: DeadlineViolations, Slack: rng.Float64()}.Eval(s, 0, 2*time.Hour)
				if dl < 0 || dl > 1 {
					return false
				}
			}
			util := Template{Queue: tenant, Metric: Utilization}.Eval(s, 0, 2*time.Hour)
			if util > 0 || util < -1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: per-tenant utilization sums to cluster-wide utilization.
func TestPropertyUtilizationAdditive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomSchedule(rng)
		var sum float64
		for _, tenant := range s.Tenants() {
			sum += Template{Queue: tenant, Metric: Utilization}.Eval(s, 0, 2*time.Hour)
		}
		all := Template{Metric: Utilization}.Eval(s, 0, 2*time.Hour)
		return math.Abs(sum-all) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: increasing QS_DL slack never increases the violation fraction
// (monotone forgiveness).
func TestPropertySlackMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomSchedule(rng)
		for _, tenant := range s.Tenants() {
			prev := math.Inf(1)
			for _, slack := range []float64{0, 0.25, 0.5, 1, 2} {
				v := Template{Queue: tenant, Metric: DeadlineViolations, Slack: slack}.Eval(s, 0, 2*time.Hour)
				if v > prev+1e-12 {
					return false
				}
				prev = v
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: throughput of disjoint windows sums to throughput of the union
// (for windows that split at a point where no job straddles completion —
// we use half-open windows so this holds unconditionally for QS_THR since
// each job is counted by its submit-and-finish containment).
func TestPropertyThroughputWindowSuperset(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomSchedule(rng)
		for _, tenant := range s.Tenants() {
			whole := -Template{Queue: tenant, Metric: Throughput}.Eval(s, 0, 2*time.Hour)
			half := -Template{Queue: tenant, Metric: Throughput}.Eval(s, 0, time.Hour)
			if half > whole {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: scaling priority scales the QS value linearly.
func TestPropertyPriorityLinear(t *testing.T) {
	f := func(seed int64, pr8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomSchedule(rng)
		priority := 0.5 + float64(pr8%50)/10
		for _, tenant := range s.Tenants() {
			base := Template{Queue: tenant, Metric: AvgResponseTime}.Eval(s, 0, 2*time.Hour)
			scaled := Template{Queue: tenant, Metric: AvgResponseTime, Priority: priority}.Eval(s, 0, 2*time.Hour)
			if math.Abs(scaled-priority*base) > 1e-9*(1+math.Abs(base)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: Dominates is a strict partial order — irreflexive and
// antisymmetric; and MaxRegret is zero exactly when all constrained
// values meet their targets.
func TestPropertyDominanceOrder(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(5)
		mk := func() []float64 {
			v := make([]float64, k)
			for i := range v {
				v[i] = rng.NormFloat64()
			}
			return v
		}
		a, b := mk(), mk()
		if Dominates(a, a) {
			return false
		}
		if Dominates(a, b) && Dominates(b, a) {
			return false
		}
		var tpls []Template
		vals := make([]float64, k)
		allMet := true
		for i := 0; i < k; i++ {
			tpl := Template{Queue: "q", Metric: AvgResponseTime}
			if rng.Intn(2) == 0 {
				tpl = tpl.WithTarget(rng.NormFloat64())
			}
			tpls = append(tpls, tpl)
			vals[i] = rng.NormFloat64()
			if tpl.HasTarget && vals[i] > tpl.Target {
				allMet = false
			}
		}
		regret := MaxRegret(tpls, vals)
		if allMet != (regret == 0) {
			return false
		}
		return regret >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func solveOK(t *testing.T, p Problem) Solution {
	t.Helper()
	sol, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve error: %v", err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	return sol
}

func TestSimpleMaximization(t *testing.T) {
	// max 3x + 2y s.t. x + y <= 4, x + 3y <= 6 → x=4, y=0, value 12.
	sol := solveOK(t, Problem{
		Objective: []float64{3, 2},
		Constraints: []Constraint{
			{A: []float64{1, 1}, Sense: LE, B: 4},
			{A: []float64{1, 3}, Sense: LE, B: 6},
		},
	})
	if math.Abs(sol.Value-12) > 1e-6 {
		t.Fatalf("value = %v, want 12 (x=%v)", sol.Value, sol.X)
	}
}

func TestClassicTwoVariable(t *testing.T) {
	// max 5x + 4y s.t. 6x+4y<=24, x+2y<=6 → x=3, y=1.5, value 21.
	sol := solveOK(t, Problem{
		Objective: []float64{5, 4},
		Constraints: []Constraint{
			{A: []float64{6, 4}, Sense: LE, B: 24},
			{A: []float64{1, 2}, Sense: LE, B: 6},
		},
	})
	if math.Abs(sol.Value-21) > 1e-6 {
		t.Fatalf("value = %v, want 21 (x=%v)", sol.Value, sol.X)
	}
	if math.Abs(sol.X[0]-3) > 1e-6 || math.Abs(sol.X[1]-1.5) > 1e-6 {
		t.Fatalf("x = %v, want [3 1.5]", sol.X)
	}
}

func TestGEConstraintNeedsPhase1(t *testing.T) {
	// min x+y s.t. x+y >= 2 (as max -x-y) → value -2 on the line x+y=2.
	sol := solveOK(t, Problem{
		Objective: []float64{-1, -1},
		Constraints: []Constraint{
			{A: []float64{1, 1}, Sense: GE, B: 2},
		},
	})
	if math.Abs(sol.Value+2) > 1e-6 {
		t.Fatalf("value = %v, want -2", sol.Value)
	}
	if sol.X[0]+sol.X[1] < 2-1e-6 {
		t.Fatalf("constraint violated at %v", sol.X)
	}
}

func TestEqualityConstraint(t *testing.T) {
	// max x s.t. x + y == 3, x <= 2 → x=2, y=1.
	sol := solveOK(t, Problem{
		Objective: []float64{1, 0},
		Constraints: []Constraint{
			{A: []float64{1, 1}, Sense: EQ, B: 3},
			{A: []float64{1, 0}, Sense: LE, B: 2},
		},
	})
	if math.Abs(sol.X[0]-2) > 1e-6 || math.Abs(sol.X[1]-1) > 1e-6 {
		t.Fatalf("x = %v, want [2 1]", sol.X)
	}
}

func TestInfeasible(t *testing.T) {
	sol, err := Solve(Problem{
		Objective: []float64{1},
		Constraints: []Constraint{
			{A: []float64{1}, Sense: LE, B: 1},
			{A: []float64{1}, Sense: GE, B: 2},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestUnbounded(t *testing.T) {
	sol, err := Solve(Problem{
		Objective:   []float64{1},
		Constraints: []Constraint{{A: []float64{-1}, Sense: LE, B: 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
}

func TestNegativeRHSNormalization(t *testing.T) {
	// x <= -1 with x >= 0 is infeasible.
	sol, err := Solve(Problem{
		Objective:   []float64{1},
		Constraints: []Constraint{{A: []float64{1}, Sense: LE, B: -1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
	// -x <= -1 means x >= 1: feasible, and max -x = -1.
	sol2 := solveOK(t, Problem{
		Objective:   []float64{-1},
		Constraints: []Constraint{{A: []float64{-1}, Sense: LE, B: -1}},
	})
	if math.Abs(sol2.Value+1) > 1e-6 {
		t.Fatalf("value = %v, want -1", sol2.Value)
	}
}

func TestMalformedProblem(t *testing.T) {
	if _, err := Solve(Problem{}); err == nil {
		t.Fatal("expected error for empty objective")
	}
	if _, err := Solve(Problem{
		Objective:   []float64{1, 2},
		Constraints: []Constraint{{A: []float64{1}, Sense: LE, B: 1}},
	}); err == nil {
		t.Fatal("expected error for ragged constraint")
	}
}

func TestDegenerateDoesNotCycle(t *testing.T) {
	// A classic degenerate instance (Beale-like); Bland's rule must
	// terminate.
	sol := solveOK(t, Problem{
		Objective: []float64{0.75, -150, 0.02, -6},
		Constraints: []Constraint{
			{A: []float64{0.25, -60, -0.04, 9}, Sense: LE, B: 0},
			{A: []float64{0.5, -90, -0.02, 3}, Sense: LE, B: 0},
			{A: []float64{0, 0, 1, 0}, Sense: LE, B: 1},
		},
	})
	if math.Abs(sol.Value-0.05) > 1e-6 {
		t.Fatalf("value = %v, want 0.05", sol.Value)
	}
}

// TestPALDShapedProgram exercises the exact LP PALD issues: maximize the
// worst-case gradient alignment. Variables are (c_1..c_k, u) with
// z = eps − u.
func TestPALDShapedProgram(t *testing.T) {
	// Gram matrix of two violated objectives with conflicting gradients.
	g := [][]float64{
		{1, -0.5},
		{-0.5, 1},
	}
	const epsConst = 1.0
	k := len(g)
	obj := make([]float64, k+1)
	obj[k] = -1 // maximize z = eps − u  ⇔ minimize u
	var cons []Constraint
	for i := 0; i < k; i++ {
		row := make([]float64, k+1)
		copy(row, g[i])
		row[k] = 1 // G_i·c + u >= eps
		cons = append(cons, Constraint{A: row, Sense: GE, B: epsConst})
	}
	// Normalization cap so c stays bounded: sum c <= 10.
	capRow := make([]float64, k+1)
	for i := 0; i < k; i++ {
		capRow[i] = 1
	}
	cons = append(cons, Constraint{A: capRow, Sense: LE, B: 10})
	sol := solveOK(t, Problem{Objective: obj, Constraints: cons})
	c := sol.X[:k]
	z := epsConst - sol.X[k]
	// z is capped at eps (the paper's z <= ε constraint); it is attainable
	// here with c1 = c2 >= 2, so the optimum hits the cap exactly.
	if math.Abs(z-epsConst) > 1e-6 {
		t.Fatalf("z = %v, want %v", z, epsConst)
	}
	for i := 0; i < k; i++ {
		var gi float64
		for j := 0; j < k; j++ {
			gi += g[i][j] * c[j]
		}
		if gi < z-1e-6 {
			t.Fatalf("alignment constraint %d violated: %v < %v (c=%v)", i, gi, z, c)
		}
	}
}

// Property: on random feasible LE-only programs the solution satisfies all
// constraints and beats (or ties) a random-vertex sample.
func TestPropertyFeasibleAndLocallyBest(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(3)
		m := 1 + rng.Intn(4)
		p := Problem{Objective: make([]float64, n)}
		for j := range p.Objective {
			p.Objective[j] = rng.Float64()
		}
		for i := 0; i < m; i++ {
			a := make([]float64, n)
			for j := range a {
				a[j] = rng.Float64() // nonnegative ⇒ bounded with b >= 0
			}
			a[rng.Intn(n)] += 0.5 // ensure at least one positive coefficient
			p.Constraints = append(p.Constraints, Constraint{A: a, Sense: LE, B: 1 + rng.Float64()})
		}
		sol, err := Solve(p)
		if err != nil || sol.Status != Optimal {
			return false
		}
		// Feasibility.
		for _, c := range p.Constraints {
			var lhs float64
			for j := range c.A {
				lhs += c.A[j] * sol.X[j]
				if sol.X[j] < -1e-9 {
					return false
				}
			}
			if lhs > c.B+1e-6 {
				return false
			}
		}
		// Compare against random feasible points.
		for trial := 0; trial < 50; trial++ {
			x := make([]float64, n)
			for j := range x {
				x[j] = rng.Float64() * 2
			}
			feasible := true
			var val float64
			for _, c := range p.Constraints {
				var lhs float64
				for j := range c.A {
					lhs += c.A[j] * x[j]
				}
				if lhs > c.B {
					feasible = false
					break
				}
			}
			if !feasible {
				continue
			}
			for j := range x {
				val += p.Objective[j] * x[j]
			}
			if val > sol.Value+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSenseAndStatusStrings(t *testing.T) {
	if LE.String() != "<=" || EQ.String() != "==" || GE.String() != ">=" {
		t.Fatal("Sense.String mismatch")
	}
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" || Unbounded.String() != "unbounded" {
		t.Fatal("Status.String mismatch")
	}
	if Sense(9).String() == "" || Status(9).String() == "" {
		t.Fatal("unknown values should still print")
	}
}

func BenchmarkSolveSmall(b *testing.B) {
	p := Problem{
		Objective: []float64{5, 4},
		Constraints: []Constraint{
			{A: []float64{6, 4}, Sense: LE, B: 24},
			{A: []float64{1, 2}, Sense: LE, B: 6},
		},
	}
	for i := 0; i < b.N; i++ {
		if _, err := Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}

package tempo_test

// The resilience benchmark prices the serving layer's overload and fault
// machinery (PR-10): how fast a saturated shard refuses work, how fast a
// degraded cluster keeps serving reads, and what deterministic client
// retries cost when a tenth of all requests are shed at the door. Like
// bench_service_test.go it lives in the external test package (the
// control plane wraps the root Session handle) and records through
// internal/benchrec into the shared TEMPO_BENCH_OUT document.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"tempo/internal/benchrec"
	"tempo/internal/chaos"
	"tempo/internal/scenario"
	"tempo/internal/service"
	"tempo/internal/store"
)

// benchCluster registers spec under id over HTTP and fails on anything
// but 201 — benchmarks drive the same API surface clients use.
func benchCluster(b *testing.B, url, id string, spec *scenario.Spec) {
	b.Helper()
	raw, err := json.Marshal(spec)
	if err != nil {
		b.Fatal(err)
	}
	body, err := json.Marshal(service.CreateRequest{ID: id, Spec: raw})
	if err != nil {
		b.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/clusters", "application/json", bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		raw, _ := io.ReadAll(resp.Body)
		b.Fatalf("creating %s: %s: %s", id, resp.Status, raw)
	}
}

// BenchmarkResilience measures the three resilience paths end to end
// over real HTTP.
//
//   - overload-shed: a one-worker, one-slot service saturated by chaos
//     tick latency must refuse overflow in bounded time — shed_latency_ns
//     is the wall clock from request to 503 {code: overloaded}, and the
//     benchmark fails if a shed ever outlives twice the admission
//     timeout (a shed that queues behind execution is an outage, not
//     load shedding).
//   - degraded-reads: a cluster whose WAL is torn keeps answering QS
//     reads from its last committed state; degraded_reads_per_sec is the
//     read throughput while degraded.
//   - retry-convergence: a full 16-cluster drive with 10% of requests
//     shed at the door by the chaos handler; the driver's deterministic
//     backoff must converge every cluster to a byte-identical report
//     (clusters/verified/ticks are exact — drift means lost or doubled
//     work), with the retry count reported for context.
func BenchmarkResilience(b *testing.B) {
	b.Run("overload-shed", benchOverloadShed)
	b.Run("degraded-reads", benchDegradedReads)
	b.Run("retry-convergence", benchRetryConvergence)
}

func benchOverloadShed(b *testing.B) {
	const admission = 20 * time.Millisecond
	inj, err := chaos.New(1, chaos.Spec{TickLatency: 1.0, TickLatencyMs: 100})
	if err != nil {
		b.Fatal(err)
	}
	svc, err := service.New(service.Config{
		Shards: 1, WorkersPerShard: 1, QueueDepth: 1,
		AdmissionTimeout: admission,
		Chaos:            inj,
	})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	defer func() { ts.Close(); svc.Close() }()

	spec, err := service.SmallSpec()
	if err != nil {
		b.Fatal(err)
	}
	spec.Iterations = 10_000 // never completes within the benchmark
	benchCluster(b, ts.URL, "c1", spec)

	var sheds, ok int
	var shedWait time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Each round offers more concurrent ticks than worker+queue can
		// hold; the overflow must come back 503 overloaded within the
		// admission deadline while the admitted ticks execute.
		const wave = 6
		type outcome struct {
			code int
			wait time.Duration
		}
		results := make(chan outcome, wave)
		for j := 0; j < wave; j++ {
			go func() {
				start := time.Now()
				resp, err := http.Post(ts.URL+"/v1/clusters/c1/tick", "application/json", nil)
				if err != nil {
					results <- outcome{code: -1}
					return
				}
				io.Copy(io.Discard, resp.Body) //nolint:errcheck
				resp.Body.Close()
				results <- outcome{code: resp.StatusCode, wait: time.Since(start)}
			}()
		}
		for j := 0; j < wave; j++ {
			r := <-results
			switch r.code {
			case http.StatusOK:
				ok++
			case http.StatusServiceUnavailable:
				sheds++
				shedWait += r.wait
				// A shed is only load shedding if it is prompt: the
				// refusal must not serialize behind the 100ms executing
				// tick. Generous 10x headroom absorbs HTTP round-trip
				// and scheduler noise on loaded CI runners.
				if r.wait > 10*admission {
					b.Fatalf("shed took %v, admission timeout is %v", r.wait, admission)
				}
			default:
				b.Fatalf("unexpected tick status %d", r.code)
			}
		}
	}
	b.StopTimer()
	if sheds == 0 {
		b.Fatal("saturated service never shed a request")
	}
	if ok == 0 {
		b.Fatal("saturated service never admitted a request")
	}
	shedNs := float64(shedWait.Nanoseconds()) / float64(sheds)
	b.ReportMetric(shedNs, "shed_ns")
	benchrec.Record("Resilience/overload-shed", map[string]float64{
		"shed_latency_ns": shedNs,
		"sheds":           float64(sheds), // info: timing-dependent split
		"admitted":        float64(ok),    // info: timing-dependent split
	})
}

func benchDegradedReads(b *testing.B) {
	st, err := store.Open(b.TempDir(), store.Options{})
	if err != nil {
		b.Fatal(err)
	}
	svc, err := service.New(service.Config{
		Store: st, SnapshotEvery: 2,
		RecoveryProbeInterval: time.Hour, // no background recovery mid-measurement
	})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	defer func() { ts.Close(); svc.Close() }()

	spec, err := service.SmallSpec()
	if err != nil {
		b.Fatal(err)
	}
	benchCluster(b, ts.URL, "c1", spec)
	c, err := svc.Get("c1")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, _, err := svc.Tick(context.Background(), c); err != nil {
			b.Fatal(err)
		}
	}
	// Tear the WAL and trip degraded mode with one refused tick.
	if err := svc.InjectWALFault("c1"); err != nil {
		b.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/clusters/c1/tick", "application/json", nil)
	if err != nil {
		b.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		b.Fatalf("tick on torn WAL = %d, want 503", resp.StatusCode)
	}
	if !c.Degraded() {
		b.Fatal("cluster not degraded after WAL tear")
	}

	const reads = 200
	var total int
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		for j := 0; j < reads; j++ {
			resp, err := http.Get(ts.URL + "/v1/clusters/c1/qs")
			if err != nil {
				b.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("qs read on degraded cluster = %d, want 200", resp.StatusCode)
			}
			total++
		}
	}
	wall := time.Since(start)
	b.StopTimer()
	perSec := float64(total) / wall.Seconds()
	b.ReportMetric(perSec, "reads/sec")
	benchrec.Record("Resilience/degraded-reads", map[string]float64{
		"degraded_reads_per_sec": perSec,
		"degraded_clusters":      1,
	})
}

func benchRetryConvergence(b *testing.B) {
	const clusters = 16
	var last *service.DriveReport
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inj, err := chaos.New(7, chaos.Spec{HandlerError: 0.10})
		if err != nil {
			b.Fatal(err)
		}
		svc, err := service.New(service.Config{Chaos: inj})
		if err != nil {
			b.Fatal(err)
		}
		ts := httptest.NewServer(svc.Handler())
		rep, err := service.Drive(ts.URL, service.DriveOptions{
			Clusters: clusters,
			QSEvery:  2, WhatIfEvery: 3,
			Verify:  true,
			Retries: 8, RetryBase: 2 * time.Millisecond, RetryMax: 50 * time.Millisecond, RetrySeed: 7,
		})
		ts.Close()
		svc.Close()
		if err != nil {
			b.Fatal(err)
		}
		if rep.Verified != clusters {
			b.Fatalf("only %d/%d cluster reports verified under injected sheds", rep.Verified, clusters)
		}
		if rep.Retries == 0 {
			b.Fatal("10%% handler sheds never forced a retry — the fault injector is not wired")
		}
		last = rep
	}
	b.StopTimer()
	b.ReportMetric(float64(last.Retries), "retries")
	b.ReportMetric(last.TicksPerSec, "ticks/sec")
	benchrec.Record("Resilience/retry-convergence", map[string]float64{
		"clusters":      float64(last.Clusters),
		"verified":      float64(last.Verified),
		"ticks":         float64(last.Ticks),
		"retries":       float64(last.Retries), // info: shed decisions are timing-dependent
		"wall_ns":       last.WallSeconds * 1e9,
		"ticks_per_sec": last.TicksPerSec,
	})
}

// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine is the substrate shared by the cluster emulator and the
// schedule predictor (internal/cluster). Following the "time warp" style of
// simulation described in the Tempo paper (§7.2), state is advanced only at
// discrete event instants — task submissions, tentative finishes, and
// possible preemption times — rather than by ticking a wall clock. This is
// what makes schedule prediction fast enough to sit inside an optimizer
// loop.
//
// Events with equal timestamps are delivered in a total order defined by
// (time, priority, sequence number), so a simulation run is exactly
// reproducible given the same inputs.
package sim

import (
	"container/heap"
	"time"

	"tempo/internal/arena"
)

// Event is a unit of work scheduled at a virtual time instant.
type Event struct {
	// Time is the virtual time at which the event fires.
	Time time.Duration
	// Priority breaks ties between events with the same Time. Lower values
	// fire first. Engines use this to impose a deterministic ordering
	// between event kinds (e.g. finishes before submissions at the same
	// instant).
	Priority int
	// Fire is invoked when the event is dispatched. It may schedule
	// further events. Events scheduled with AtArg leave Fire nil and
	// dispatch through fireArg instead.
	Fire func(now time.Duration)

	// fireArg and arg are the allocation-lean dispatch path (AtArg): the
	// handler is shared across events and the per-event state rides in arg,
	// so scheduling an event does not capture a closure.
	fireArg func(now time.Duration, arg any)
	arg     any

	seq      uint64
	index    int
	canceled bool
}

// Cancel marks the event so it will be skipped when reached. Canceling an
// already-fired or already-canceled event is a no-op.
func (e *Event) Cancel() { e.canceled = true }

// Canceled reports whether Cancel has been called on the event.
func (e *Event) Canceled() bool { return e.canceled }

// Engine is a discrete-event simulator. The zero value is ready to use.
type Engine struct {
	queue eventQueue
	now   time.Duration
	seq   uint64
	fired int

	// Event arena: fixed-size blocks recycled by Reset, so a reused engine
	// schedules events without per-event heap allocations. Pointers into
	// blocks stay valid until Reset.
	events arena.Arena[Event]
}

// Reset returns the engine to its zero state — empty queue, time 0,
// sequence 0 — while keeping the queue's backing array and the event arena
// for reuse. Event pointers obtained before the Reset are invalidated:
// the next run's events are served from the same arena blocks. Reset is
// what makes one Engine value reusable across many simulation runs without
// re-allocating its event storage.
func (e *Engine) Reset() {
	for i := range e.queue {
		e.queue[i] = nil
	}
	e.queue = e.queue[:0]
	e.now = 0
	e.seq = 0
	e.fired = 0
	e.events.Reset()
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Fired returns the number of events dispatched so far.
func (e *Engine) Fired() int { return e.fired }

// Len returns the number of pending (possibly canceled) events.
func (e *Engine) Len() int { return len(e.queue) }

// At schedules fn to run at time t with the given tie-break priority and
// returns the scheduled event, which the caller may Cancel. Scheduling in
// the past (t < Now) is clamped to Now: the event fires next.
func (e *Engine) At(t time.Duration, priority int, fn func(now time.Duration)) *Event {
	if t < e.now {
		t = e.now
	}
	ev := e.events.Get()
	ev.Time, ev.Priority, ev.Fire, ev.seq = t, priority, fn, e.seq
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// AtArg schedules fn(t, arg) like At, but through a handler that is shared
// across events: the per-event state travels in arg instead of a captured
// closure, so hot loops that schedule one event per task do not allocate a
// closure per event. A pointer-typed arg also avoids the interface boxing
// allocation.
func (e *Engine) AtArg(t time.Duration, priority int, fn func(now time.Duration, arg any), arg any) *Event {
	if t < e.now {
		t = e.now
	}
	ev := e.events.Get()
	ev.Time, ev.Priority, ev.fireArg, ev.arg, ev.seq = t, priority, fn, arg, e.seq
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d time.Duration, priority int, fn func(now time.Duration)) *Event {
	return e.At(e.now+d, priority, fn)
}

// Reschedule moves a still-pending event to fire at time t (clamped to
// Now, like At) and clears its canceled mark, so a canceled-but-unpopped
// event can be revived in place. The event is assigned a fresh sequence
// number, making the result indistinguishable from Cancel followed by a new
// At — but in O(log n) via heap.Fix and without allocating or leaving a
// dead entry in the queue. It reports whether the event was still pending;
// an event that already fired or was discarded cannot be rescheduled.
func (e *Engine) Reschedule(ev *Event, t time.Duration) bool {
	if ev == nil || ev.index < 0 || ev.index >= len(e.queue) || e.queue[ev.index] != ev {
		return false
	}
	if t < e.now {
		t = e.now
	}
	ev.Time = t
	ev.canceled = false
	ev.seq = e.seq
	e.seq++
	heap.Fix(&e.queue, ev.index)
	return true
}

// Step dispatches the next pending event, skipping canceled ones, and
// reports whether an event was dispatched.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.canceled {
			continue
		}
		e.now = ev.Time
		e.fired++
		if ev.fireArg != nil {
			ev.fireArg(e.now, ev.arg)
		} else {
			ev.Fire(e.now)
		}
		return true
	}
	return false
}

// Run dispatches events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil dispatches events with Time <= horizon. The clock is left at the
// later of its current value and horizon.
func (e *Engine) RunUntil(horizon time.Duration) {
	for len(e.queue) > 0 {
		next := e.peek()
		if next == nil {
			break
		}
		if next.Time > horizon {
			break
		}
		e.Step()
	}
	if e.now < horizon {
		e.now = horizon
	}
}

// peek returns the next non-canceled event without removing it, or nil.
func (e *Engine) peek() *Event {
	for len(e.queue) > 0 {
		ev := e.queue[0]
		if !ev.canceled {
			return ev
		}
		heap.Pop(&e.queue)
	}
	return nil
}

// eventQueue is a min-heap ordered by (Time, Priority, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	a, b := q[i], q[j]
	if a.Time != b.Time {
		return a.Time < b.Time
	}
	if a.Priority != b.Priority {
		return a.Priority < b.Priority
	}
	return a.seq < b.seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1 // no longer in the heap: rejects late Reschedule calls
	*q = old[:n-1]
	return ev
}

package scenario

import (
	"fmt"
	"time"

	"tempo/internal/cluster"
	"tempo/internal/core"
	"tempo/internal/pald"
	"tempo/internal/qs"
	"tempo/internal/whatif"
	"tempo/internal/workload"
)

// Derived-seed offsets. Every random stream in a scenario run is a fixed
// function of Spec.Seed; these offsets match the wiring the §8.2
// experiments used before they were re-expressed as scenarios, so the
// experiment trajectories are bit-identical across the refactor.
const (
	seedTrace        = 977 // workload trace synthesis
	seedReplayNoise  = 13  // emulation noise, replay protocol
	seedWindowNoise  = 11  // emulation noise, windowed protocol
	seedPALD         = 29  // optimizer exploration
	seedWhatIfSample = 101 // per-sample what-if draws, windowed protocol
)

// Options are runtime knobs that do not change a scenario's trajectory.
type Options struct {
	// Parallelism caps the What-if Model's worker pool; 0 means one worker
	// per CPU. Reports are bit-identical for every setting.
	Parallelism int
	// Strategy overrides the optimizer (nil builds the default PALD
	// optimizer). Used by the experiment harness's strategy ablations.
	Strategy pald.Strategy
	// ExtraTemplates are appended to the spec's SLOs — the hook the
	// experiment harness uses to bolt ablation-specific objectives onto a
	// declarative scenario.
	ExtraTemplates []qs.Template
	// Clock supplies wall-clock timestamps for the controller's
	// decision-latency stats (core.SearchStats.DecisionNanos). nil keeps
	// decision latencies at zero; latencies never influence decisions, so
	// reports are bit-identical either way. The serving layer passes
	// time.Now.
	Clock func() time.Time
	// ExhaustiveSearch hides the what-if model's incremental search from
	// the controller, forcing the plain exhaustive batch path — no
	// warm-starting, no pruning. Pruning is provably ranking-safe, so
	// reports are bit-identical with or without it; the parity regression
	// suite runs every committed scenario both ways to keep that proof
	// honest.
	ExhaustiveSearch bool
}

// Runtime is a built scenario, ready to run: the materialized workload,
// templates, environment, and (unless disabled) the controller.
type Runtime struct {
	Spec      *Spec
	Interval  time.Duration
	Templates []qs.Template
	Profiles  []workload.TenantProfile
	// Trace is the generated workload: one control interval in replay mode,
	// the full horizon in windowed mode.
	Trace *workload.Trace
	// Initial is the RM configuration the run starts from.
	Initial cluster.Config
	// Controller is nil when the spec disables the control loop.
	Controller *core.Controller

	env        *runEnv
	iterations []IterationReport
}

// Build materializes a validated spec into a runnable scenario.
func Build(spec *Spec, opts Options) (*Runtime, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	interval := spec.Interval()
	tenants := spec.ExpandedTenants()
	profiles := make([]workload.TenantProfile, 0, len(tenants))
	for i := range tenants {
		p, err := tenants[i].Materialize()
		if err != nil {
			return nil, err
		}
		profiles = append(profiles, p)
	}
	templates := make([]qs.Template, 0, len(spec.SLOs)+len(opts.ExtraTemplates))
	for i := range spec.SLOs {
		t, err := spec.SLOs[i].Template()
		if err != nil {
			return nil, err
		}
		templates = append(templates, t)
	}
	templates = append(templates, opts.ExtraTemplates...)

	horizon := spec.Horizon()
	if spec.Replay {
		horizon = interval
	}
	trace, err := workload.Generate(profiles, workload.GenerateOptions{
		Horizon: horizon,
		Seed:    spec.Seed + seedTrace,
		Name:    spec.Name,
	})
	if err != nil {
		return nil, err
	}
	initial, err := spec.Initial.Config(spec.Capacity, spec.TenantNames())
	if err != nil {
		return nil, err
	}

	var inner core.Environment
	if spec.Replay {
		inner = &core.ReplayEnvironment{
			Trace: trace,
			Noise: spec.noiseModel(spec.Seed + seedReplayNoise),
			Seed:  spec.Seed,
		}
	} else {
		inner = &core.TraceEnvironment{
			Trace: trace,
			Noise: spec.noiseModel(spec.Seed + seedWindowNoise),
			Seed:  spec.Seed,
		}
	}
	env := &runEnv{inner: inner, changes: spec.CapacityChanges}
	rt := &Runtime{
		Spec:      spec,
		Interval:  interval,
		Templates: templates,
		Profiles:  profiles,
		Trace:     trace,
		Initial:   initial,
		env:       env,
	}
	if spec.Controller.Disabled {
		return rt, nil
	}

	model, err := rt.NewWhatIfModel(opts.Parallelism)
	if err != nil {
		return nil, err
	}

	maxStep := spec.Controller.MaxStep
	if maxStep == 0 {
		maxStep = 0.2
	}
	var revert core.RevertPolicy
	switch spec.Controller.Revert {
	case "", "on-worse":
		revert = core.RevertOnWorse
	case "non-dominance":
		revert = core.RevertOnNonDominance
	case "off":
		revert = core.RevertOff
	default:
		return nil, fmt.Errorf("scenario %s: unknown revert policy %q", spec.Name, spec.Controller.Revert)
	}
	var coreModel core.Model = model
	if opts.ExhaustiveSearch {
		coreModel = &exhaustiveModel{m: model}
	}
	ctl, err := core.NewController(core.Config{
		Space:       cluster.DefaultSpace(spec.Capacity, spec.TenantNames()),
		Templates:   templates,
		Model:       coreModel,
		Environment: env,
		Interval:    interval,
		Candidates:  spec.Controller.Candidates,
		Strategy:    opts.Strategy,
		Revert:      revert,
		PALD:        pald.Options{Seed: spec.Seed + seedPALD, MaxStep: maxStep},
		Now:         opts.Clock,
	}, initial)
	if err != nil {
		return nil, err
	}
	rt.Controller = ctl
	return rt, nil
}

// exhaustiveModel exposes only the plain evaluation surface of a
// *whatif.Model, hiding EvaluateSearch so the controller's type assertion
// for core.SearchModel fails and candidate scoring falls back to the
// exhaustive batch path. It exists for Options.ExhaustiveSearch.
type exhaustiveModel struct {
	m *whatif.Model
}

func (e *exhaustiveModel) Evaluate(cfg cluster.Config) ([]float64, error) {
	return e.m.Evaluate(cfg)
}

func (e *exhaustiveModel) EvaluateBatch(cfgs []cluster.Config) ([][]float64, error) {
	return e.m.EvaluateBatch(cfgs)
}

// NewWhatIfModel builds a What-if Model wired exactly the way the
// scenario's controller uses one: replaying the scenario trace in replay
// mode (horizon clipped to the control interval), or synthesizing fresh
// interval-length draws from the tenant profiles in windowed mode, with
// every seed derived from Spec.Seed. parallelism caps the worker pool
// (<= 0 means one worker per CPU); results are bit-identical for every
// setting. Each call returns an independent model, so serving-layer
// what-if probes share nothing with the controller's own scoring.
func (rt *Runtime) NewWhatIfModel(parallelism int) (*whatif.Model, error) {
	spec := rt.Spec
	var model *whatif.Model
	var err error
	if spec.Replay {
		model, err = whatif.FromTrace(rt.Templates, rt.Trace)
		if err != nil {
			return nil, err
		}
		model.Horizon = rt.Interval // match the observation window exactly
	} else {
		model, err = whatif.FromProfiles(rt.Templates, rt.Profiles, rt.Interval, spec.Seed+seedWhatIfSample)
		if err != nil {
			return nil, err
		}
		if spec.Controller.WhatIfSamples > 0 {
			model.Samples = spec.Controller.WhatIfSamples
		}
	}
	if parallelism > 0 {
		model.Parallelism = parallelism
	} else {
		model.Parallelism = whatif.DefaultParallelism()
	}
	return model, nil
}

// noiseModel materializes the noise spec with the given stream seed, or nil
// for a deterministic run.
func (s *Spec) noiseModel(seed int64) *cluster.NoiseModel {
	if s.Noise == nil {
		return nil
	}
	n := cluster.DefaultNoise(seed)
	if s.Noise.DurationSigma != nil {
		n.DurationSigma = *s.Noise.DurationSigma
	}
	if s.Noise.FailureProb != nil {
		n.FailureProb = *s.Noise.FailureProb
	}
	if s.Noise.JobKillProb != nil {
		n.JobKillProb = *s.Noise.JobKillProb
	}
	return n
}

// runEnv wraps the inner environment to apply mid-run capacity changes and
// record every observed schedule for the report.
type runEnv struct {
	inner     core.Environment
	changes   []CapacityChange
	schedules []*cluster.Schedule
	// injected holds pre-recorded observations (WAL-replayed schedules,
	// oldest first) served ahead of the inner environment — the crash-
	// recovery path re-drives the control loop against exactly what it
	// observed before the crash instead of re-simulating it.
	injected []*cluster.Schedule
}

// capacityAt returns the effective cluster capacity at the iteration, or 0
// when no change applies.
func (e *runEnv) capacityAt(iteration int) int {
	capacity := 0
	for _, cc := range e.changes {
		if cc.AtIteration <= iteration {
			capacity = cc.Capacity
		}
	}
	return capacity
}

// Observe implements core.Environment.
func (e *runEnv) Observe(cfg cluster.Config, interval time.Duration, iteration int) (*cluster.Schedule, error) {
	if len(e.injected) > 0 {
		sched := e.injected[0]
		e.injected = e.injected[1:]
		e.schedules = append(e.schedules, sched)
		return sched, nil
	}
	if c := e.capacityAt(iteration); c > 0 && c != cfg.TotalContainers {
		cfg = cfg.Clone()
		cfg.TotalContainers = c
	}
	sched, err := e.inner.Observe(cfg, interval, iteration)
	if err != nil {
		return nil, err
	}
	e.schedules = append(e.schedules, sched)
	return sched, nil
}

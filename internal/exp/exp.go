// Package exp is the experiment harness: one entry point per table and
// figure of the paper's evaluation (§8), shared by the repository-level
// benchmarks (bench_test.go), the cmd/experiments binary, and integration
// tests. Each experiment returns a structured result with a Render method
// that prints the same rows/series the paper reports.
//
// Absolute numbers differ from the paper (the substrate is an emulator, not
// a 700-node production cluster); the experiments are judged on shape: who
// wins, by roughly what factor, and where the orderings fall. EXPERIMENTS.md
// records paper-vs-measured for every entry.
package exp

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"

	"tempo/internal/cluster"
	"tempo/internal/scenario"
	"tempo/internal/workload"
)

// Parallelism is the What-if Model worker count every experiment uses;
// cmd/experiments' -parallelism flag overrides it. QS vectors are
// bit-identical for any setting, so the reproduced tables and figures do
// not depend on it — only wall-clock time does.
var Parallelism = runtime.GOMAXPROCS(0)

// ABCCapacity is the emulated stand-in for Company ABC's production
// cluster in the component-validation experiments.
const ABCCapacity = 80

// EC2Capacity emulates the 20-node EC2 cluster of the end-to-end
// experiments (§8.2): 20 nodes × 8 containers.
const EC2Capacity = 160

// ABCScale tunes the Company ABC arrival rates to the emulated capacity.
const ABCScale = 0.5

// ExpertABCConfig returns the hand-tuned "expert" RM configuration for the
// six ABC tenants — the baseline every end-to-end experiment starts from.
// The configuration itself lives in the scenario layer so declarative
// scenario specs can name it as a preset.
func ExpertABCConfig(capacity int) cluster.Config {
	return scenario.ExpertABCConfig(capacity)
}

// ExpertTwoTenantConfig is the skewed expert baseline of the two-tenant
// end-to-end scenarios (scenario preset "expert-two-tenant").
func ExpertTwoTenantConfig(capacity int) cluster.Config {
	return scenario.ExpertTwoTenantConfig(capacity)
}

// TwoTenantProfiles returns the deadline-driven + best-effort pair used by
// §8.2.1–8.2.3 (scaled from Facebook/Cloudera-like mixes). Deadlines are
// tight — about 30% of deadline jobs miss under the expert configuration,
// echoing the paper's Concern A ("about 30% of high-priority jobs in APP
// miss deadlines").
func TwoTenantProfiles(scale float64) []workload.TenantProfile {
	dd := workload.DeadlineDriven("deadline", scale)
	dd.DeadlineFactor = workload.Uniform{Lo: 1.0, Hi: 1.5}
	dd.DeadlineParallelism = 32
	return []workload.TenantProfile{
		dd,
		workload.BestEffort("besteffort", scale),
	}
}

// EC2TwoTenantProfiles returns the tenant pair of the end-to-end EC2
// experiments (§8.2): the paper scaled and replayed Facebook and Cloudera
// customer traces via SWIM. The Cloudera-like tenant carries deadlines;
// the Facebook-like tenant (a torrent of small jobs with a heavy tail) is
// best-effort. Most jobs complete well within a control interval, so the
// windowed QS metrics are stable.
func EC2TwoTenantProfiles(scale float64) []workload.TenantProfile {
	dd := workload.Cloudera("deadline", scale)
	dd.DeadlineFactor = workload.Uniform{Lo: 1.1, Hi: 1.8}
	dd.DeadlineParallelism = 16
	be := workload.Facebook("besteffort", scale)
	return []workload.TenantProfile{dd, be}
}

// ABCTrace generates the Company ABC mix over the horizon.
func ABCTrace(horizon time.Duration, seed int64) (*workload.Trace, error) {
	return workload.Generate(workload.CompanyABC(ABCScale), workload.GenerateOptions{
		Horizon: horizon,
		Seed:    seed,
		Name:    "company-abc",
	})
}

// ReconstructTrace rebuilds a workload trace from an observed schedule, the
// way a deployment would harvest job history from the RM's logs: completed
// jobs only, with per-task durations taken from the final (successful)
// attempt. Preempted and failed attempts distort nothing here — but jobs
// that never completed are lost, which is one source of the provisioning
// experiment's estimation error.
func ReconstructTrace(s *cluster.Schedule, name string) *workload.Trace {
	type durs struct {
		maps, reds []time.Duration
	}
	byJob := make(map[string]*durs)
	for i := range s.Tasks {
		t := &s.Tasks[i]
		if t.Outcome != cluster.TaskFinished {
			continue
		}
		d, ok := byJob[t.JobID]
		if !ok {
			d = &durs{}
			byJob[t.JobID] = d
		}
		if t.Kind == workload.Map {
			d.maps = append(d.maps, t.Duration())
		} else {
			d.reds = append(d.reds, t.Duration())
		}
	}
	tr := &workload.Trace{Name: name, Horizon: s.Horizon}
	for i := range s.Jobs {
		j := &s.Jobs[i]
		if !j.Completed {
			continue
		}
		d := byJob[j.ID]
		if d == nil || len(d.maps) == 0 {
			continue
		}
		spec := workload.NewMapReduceJob(j.ID, j.Tenant, j.Submit, d.maps, d.reds)
		spec.Deadline = j.Deadline
		tr.Jobs = append(tr.Jobs, spec)
	}
	tr.Sort()
	return tr
}

// table renders an aligned text table.
func table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, cell := range r {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

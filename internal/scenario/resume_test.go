package scenario

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"testing"

	"tempo/internal/cluster"
)

// walRoundTrip simulates recovery of an observed schedule from the
// schedule-event WAL: serialize to the canonical event stream, rebuild
// with ReplaySchedule. Resume must produce byte-identical reports from
// the rebuilt schedules, not just from shared in-memory pointers.
func walRoundTrip(t *testing.T, s *cluster.Schedule) *cluster.Schedule {
	t.Helper()
	if s == nil {
		t.Fatal("nil schedule")
	}
	return cluster.ReplaySchedule(s.Capacity, s.Horizon, s.Events())
}

// snapshotRoundTrip serializes a runtime snapshot through JSON, as the
// real persistence path does.
func snapshotRoundTrip(t *testing.T, rt *Runtime) *Snapshot {
	t.Helper()
	snap, err := rt.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var decoded Snapshot
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	return &decoded
}

// TestResumeByteIdentical is the in-process half of the crash-recovery
// acceptance test: for every (snapshot tick, crash tick) pair, a runtime
// resumed from the snapshot plus the WAL-replayed schedules finishes with
// a report byte-identical to an uninterrupted run's. Covers both a
// controller-driven scenario and an observe-only one.
func TestResumeByteIdentical(t *testing.T) {
	for _, name := range []string{"steady-two-tenant", "abc-mix"} {
		t.Run(name, func(t *testing.T) {
			spec, err := LoadFile(filepath.Join("testdata", "scenarios", name+".json"))
			if err != nil {
				t.Fatal(err)
			}
			opts := Options{Parallelism: 2}
			ref, err := Run(spec, opts)
			if err != nil {
				t.Fatal(err)
			}
			want, err := ref.MarshalCanonical()
			if err != nil {
				t.Fatal(err)
			}

			// crash after m committed ticks, snapshot taken at tick k <= m
			for m := 0; m <= spec.Iterations; m++ {
				for k := 0; k <= m; k++ {
					live, err := Build(spec, opts)
					if err != nil {
						t.Fatal(err)
					}
					var snap *Snapshot
					for i := 0; i < m; i++ {
						if i == k {
							snap = snapshotRoundTrip(t, live)
						}
						if _, err := live.Step(); err != nil {
							t.Fatal(err)
						}
					}
					if k == m {
						snap = snapshotRoundTrip(t, live)
					}
					schedules := make([]*cluster.Schedule, 0, m)
					for i := 0; i < m; i++ {
						schedules = append(schedules, walRoundTrip(t, live.ObservedSchedule(i)))
					}

					resumed, err := Resume(spec, opts, snap, schedules)
					if err != nil {
						t.Fatalf("m=%d k=%d: %v", m, k, err)
					}
					if resumed.StepsDone() != m {
						t.Fatalf("m=%d k=%d: resumed runtime at tick %d", m, k, resumed.StepsDone())
					}
					rep, err := resumed.Run()
					if err != nil {
						t.Fatalf("m=%d k=%d: finishing resumed run: %v", m, k, err)
					}
					got, err := rep.MarshalCanonical()
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(got, want) {
						t.Errorf("m=%d k=%d: resumed report differs from uninterrupted run", m, k)
					}
				}
			}
		})
	}
}

// TestResumeWithoutSnapshot recovers from the WAL alone (the fallback
// when the snapshot is lost or stale): full re-drive with every
// observation injected.
func TestResumeWithoutSnapshot(t *testing.T) {
	spec, err := LoadFile(filepath.Join("testdata", "scenarios", "steady-two-tenant.json"))
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Parallelism: 2}
	live, err := Build(spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := live.Run()
	if err != nil {
		t.Fatal(err)
	}
	wantBytes, err := want.MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	schedules := make([]*cluster.Schedule, 0, spec.Iterations)
	for i := 0; i < spec.Iterations; i++ {
		schedules = append(schedules, walRoundTrip(t, live.ObservedSchedule(i)))
	}
	resumed, err := Resume(spec, opts, nil, schedules)
	if err != nil {
		t.Fatal(err)
	}
	rep := resumed.Report()
	gotBytes, err := rep.MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotBytes, wantBytes) {
		t.Error("snapshot-less recovery diverges from uninterrupted run")
	}
}

// TestResumeValidates rejects inconsistent durable state instead of
// resuming a wrong trajectory.
func TestResumeValidates(t *testing.T) {
	spec, err := LoadFile(filepath.Join("testdata", "scenarios", "steady-two-tenant.json"))
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Parallelism: 1}
	live, err := Build(spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := live.Step(); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := live.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	schedules := make([]*cluster.Schedule, 0, 3)
	for i := 0; i < 3; i++ {
		schedules = append(schedules, live.ObservedSchedule(i))
	}

	// Snapshot ahead of the WAL: the snapshot saw ticks the WAL lost.
	if _, err := Resume(spec, opts, snap, schedules[:2]); err == nil {
		t.Error("snapshot past the recovered schedules accepted")
	}
	// Corrupt cursor.
	bad := *snap
	bad.Cursor = 2
	if _, err := Resume(spec, opts, &bad, schedules); err == nil {
		t.Error("cursor/iterations mismatch accepted")
	}
	// Controller toggle mismatch.
	off := *spec
	off.Controller.Disabled = true
	if _, err := Resume(&off, opts, snap, schedules); err == nil {
		t.Error("controller snapshot accepted by controller-off spec")
	}
	// More schedules than the iteration budget.
	over := make([]*cluster.Schedule, spec.Iterations+1)
	for i := range over {
		over[i] = schedules[0]
	}
	if _, err := Resume(spec, opts, nil, over); err == nil {
		t.Error("schedule overflow accepted")
	}
}

// Package service is tempod's sharded multi-cluster control plane: a
// long-running daemon core that hosts many independent tenant clusters
// (tempo.Session instances — each with its own workload, controller, QS
// accumulators, and What-if Model) concurrently.
//
// Clusters are pinned to shards by an FNV hash of their id. Each shard
// owns a fixed worker pool that drives control-loop ticks: tick requests
// enqueue on the owning shard and a worker executes them, so the tick
// concurrency of the whole process is bounded by shards × workers no
// matter how many clusters are resident or how many requests are in
// flight. Ticks on one cluster serialize (the Session enforces it; the
// shard queue orders it), while ticks on different clusters proceed in
// parallel across workers and shards.
//
// The HTTP/JSON API (see Handler) exposes cluster creation from a
// declarative scenario spec, ticks, windowed QS queries served off the
// incremental accumulators, what-if candidate scoring, canonical reports,
// and liveness/metrics endpoints. Determinism survives the sharding:
// a cluster driven through the service produces a report byte-identical
// to the same spec run sequentially by scenario.Run — cmd/loadgen asserts
// exactly that under concurrent traffic.
//
// Serving is allocation-lean: the control-loop work a shard worker drives
// (schedule prediction, emulation, QS evaluation) runs on pooled scratch
// arenas (cluster.Sim via whatif's per-worker Scratch and cluster.Run's
// shared pool), so per-run simulation state is recycled across the ticks
// of all resident clusters instead of churning the heap — at 1000
// clusters the process would otherwise be GC-bound. The pools are
// process-wide sync.Pools: workers on any shard reuse whatever arena the
// last tick parked, and memory pressure shrinks them automatically.
package service

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tempo"
	"tempo/internal/chaos"
	"tempo/internal/store"
)

// Config sizes the control plane.
type Config struct {
	// Shards is the number of cluster shards; 0 means 4.
	Shards int
	// WorkersPerShard is each shard's tick worker-pool size; 0 means 2.
	WorkersPerShard int
	// QueueDepth is each shard's pending-tick queue capacity; 0 means 64.
	// Enqueues beyond it block the caller (backpressure), they are never
	// dropped.
	QueueDepth int
	// Parallelism caps every hosted cluster's what-if worker pool; 0 means
	// 1. The default is deliberate: the service's parallelism comes from
	// driving many clusters at once, and per-cluster fan-out on top of
	// shard workers would oversubscribe the host. Results are
	// bit-identical for every setting.
	Parallelism int
	// LatencyWindow is how many recent tick latencies each shard retains
	// for the p50/p99 metrics; 0 means 1024.
	LatencyWindow int
	// Store enables durability. When non-nil, New recovers every cluster
	// with on-disk state (snapshot restore + WAL re-drive, byte-identical
	// trajectories), every committed tick appends its observed schedule to
	// the cluster's WAL before the tick is acked, snapshots are written
	// every SnapshotEvery ticks, Delete removes the on-disk state, and
	// Close flushes and closes the store — the service owns it from here.
	Store *store.Store
	// SnapshotEvery is how many committed ticks between control-loop
	// snapshots; 0 means 8. A snapshot bounds recovery's re-drive cost to
	// at most SnapshotEvery ticks. Ignored without Store.
	SnapshotEvery int
	// DrainTimeout bounds how long Close waits for queued and in-flight
	// ticks to finish before cutting the shard workers off; 0 means 5s.
	DrainTimeout time.Duration
	// MaxStreams caps concurrent standing query subscriptions (SSE)
	// across all clusters; 0 means 64. Requests past the cap get 429 with
	// code "subscription_limit" — a stream holds a goroutine and a
	// per-subscription query runner for its whole life, so the cap is the
	// service's live-query memory bound.
	MaxStreams int
	// StreamHeartbeat is the idle keep-alive interval of query streams
	// (an SSE comment, so proxies don't reap quiet connections); 0 means
	// 15s.
	StreamHeartbeat time.Duration
	// AdmissionTimeout bounds how long a tick or delete may wait on a
	// full shard queue before being shed with ErrOverloaded (503
	// "overloaded" over HTTP, with a Retry-After hint derived from the
	// shard's p99 tick latency); 0 means 1s. A caller context with an
	// earlier deadline shortens the wait further. Shed requests touch no
	// state, so retrying them is always safe.
	AdmissionTimeout time.Duration
	// RecoveryProbeInterval is how often the background probe tries to
	// re-arm degraded clusters (reopen the broken WAL, resume the
	// session from the committed prefix); 0 means 2s. Ignored without
	// Store.
	RecoveryProbeInterval time.Duration
	// Chaos, when non-nil, injects the deterministic fault schedule
	// (internal/chaos): pre-tick latency, torn WAL appends, and API
	// requests shed at the door. Wired by tempod's -chaos-seed /
	// -chaos-spec flags and the chaos test harness.
	Chaos *chaos.Injector
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.WorkersPerShard <= 0 {
		c.WorkersPerShard = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Parallelism <= 0 {
		c.Parallelism = 1
	}
	if c.LatencyWindow <= 0 {
		c.LatencyWindow = 1024
	}
	if c.SnapshotEvery <= 0 {
		c.SnapshotEvery = 8
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 5 * time.Second
	}
	if c.MaxStreams <= 0 {
		c.MaxStreams = 64
	}
	if c.StreamHeartbeat <= 0 {
		c.StreamHeartbeat = 15 * time.Second
	}
	if c.AdmissionTimeout <= 0 {
		c.AdmissionTimeout = time.Second
	}
	if c.RecoveryProbeInterval <= 0 {
		c.RecoveryProbeInterval = 2 * time.Second
	}
	return c
}

// ErrClosed is returned for operations refused because the service is
// closed — refusals that happen before any state could change, so a
// client may safely retry against a restarted server.
var ErrClosed = errors.New("service: closed")

// ErrInterrupted is returned when shutdown cuts off a job AFTER it was
// admitted to a shard queue: the job may or may not have executed (an
// admitted tick can still commit durably while the caller's wait is
// severed), so unlike ErrClosed the outcome is unknown and the request
// must NOT be retried automatically — a replay could double-apply it.
var ErrInterrupted = errors.New("service: shut down mid-request; outcome unknown")

// ErrNotFound is returned for operations naming an unknown cluster id.
var ErrNotFound = errors.New("service: unknown cluster")

// ErrExists is returned when creating a cluster under a taken id.
var ErrExists = errors.New("service: cluster id already exists")

// ErrOverloaded is returned when a shard's queue stays full past the
// admission deadline: the request was shed before touching any state,
// so retrying after backoff is always safe.
var ErrOverloaded = errors.New("service: overloaded")

// ErrDegraded is returned for writes to a cluster whose durable store
// is failing. The cluster keeps serving reads from its last committed
// state; the recovery probe re-arms it once the store heals. A degraded
// write never mutates state, so retrying after backoff is safe.
var ErrDegraded = errors.New("service: cluster degraded")

// Service hosts many tenant clusters across a fixed set of shards.
type Service struct {
	cfg    Config
	start  time.Time
	shards []*shard
	quit   chan struct{}

	mu       sync.RWMutex
	clusters map[string]*Cluster
	closed   bool

	// draining latches at the top of Close, before the drain wait: the
	// readiness signal flips false while in-flight work is still
	// finishing, so load balancers stop routing here first.
	draining atomic.Bool
	// probeWG tracks the degraded-cluster recovery probe goroutine.
	probeWG sync.WaitGroup

	qsQueries    counter
	whatifEvals  counter
	queryOneShot counter
	// streams is the live subscription gauge; handleQueryStream increments
	// it under the MaxStreams cap and decrements on disconnect.
	streams counter
	// shedRequests totals requests refused without execution: admission
	// deadline sheds plus chaos-injected handler errors.
	shedRequests counter
	// degradedGauge counts clusters currently in degraded mode.
	degradedGauge counter
}

// Cluster is one hosted tenant cluster: a Session pinned to a shard.
type Cluster struct {
	ID      string
	Shard   int
	Created time.Time

	// session is the cluster's live control loop. It is swapped (never
	// mutated in place) when degraded mode rolls the trajectory back to
	// the committed prefix and when recovery resumes from disk, so every
	// reader goes through the atomic pointer — reads stay lock-free and
	// never queue behind an executing tick.
	session atomic.Pointer[tempo.Session]

	// mu serializes the tick+WAL-append pair against deletion: a worker
	// holds it for the whole commit, so Delete can never tear down the
	// on-disk state (or drop the session) under a tick's feet.
	mu sync.Mutex
	// store is the cluster's durable state; nil when durability is off.
	store *store.ClusterStore
	// deleted latches once the cluster is torn down; ticks queued behind
	// the deletion observe it and fail with ErrNotFound.
	deleted bool
	// degraded latches when a tick fails durably (WAL append or snapshot
	// error): the session is rolled back to the last committed tick,
	// reads keep serving that state, writes fail with ErrDegraded, and
	// the recovery probe clears the flag once the store heals. The flag
	// is atomic so the write fast-path can check it WITHOUT c.mu — a
	// worker holds c.mu for a tick's whole execution, and admission must
	// never wait behind execution. Transitions still happen under c.mu;
	// degradedCause is read only after observing the flag true, when no
	// tick can be executing.
	degraded      atomic.Bool
	degradedCause error
	// tickc is the change-notification channel standing query streams
	// wait on: closed and replaced under mu whenever a tick commits or
	// the cluster is deleted, so every waiter wakes exactly once per
	// change and re-reads the session.
	tickc chan struct{}
}

// Session returns the cluster's live session. Readers see either the
// pre-swap or post-swap session, both internally consistent; state read
// across a swap is simply the state of one committed trajectory.
func (c *Cluster) Session() *tempo.Session { return c.session.Load() }

// changed returns a channel that closes on the cluster's next committed
// tick (or its deletion). Call it before reading Session.Ticks so a
// commit between the read and the wait cannot be missed.
func (c *Cluster) changed() <-chan struct{} {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tickc
}

// isDeleted reports whether the cluster has been torn down.
func (c *Cluster) isDeleted() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.deleted
}

// Degraded reports whether the cluster is in degraded mode (reads only,
// durable store failing). Lock-free: callers on the write fast-path must
// not queue behind an executing tick.
func (c *Cluster) Degraded() bool { return c.degraded.Load() }

// degradedError returns the ErrDegraded-wrapped cause while the cluster
// is degraded, or nil. The flag is checked without c.mu (see the field
// comment); the cause is fetched under c.mu only once the flag was seen
// true, when the cluster executes nothing.
func (c *Cluster) degradedError() error {
	if !c.degraded.Load() {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.degraded.Load() { // re-armed between the check and the lock
		return nil
	}
	return fmt.Errorf("%w: %s: %v", ErrDegraded, c.ID, c.degradedCause)
}

// notifyLocked wakes every changed() waiter. Callers hold c.mu.
func (c *Cluster) notifyLocked() {
	close(c.tickc)
	c.tickc = make(chan struct{})
}

// New starts a control plane with the given sizing (zero fields take
// defaults). With cfg.Store set, every cluster with on-disk state is
// recovered before New returns: snapshot restored, WAL re-driven, and the
// session resumes mid-scenario on a trajectory byte-identical to the
// uninterrupted run. Close it to stop the shard workers.
func New(cfg Config) (*Service, error) {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:      cfg,
		start:    time.Now(),
		quit:     make(chan struct{}),
		clusters: map[string]*Cluster{},
	}
	for i := 0; i < cfg.Shards; i++ {
		s.shards = append(s.shards, newShard(i, s, cfg))
	}
	if cfg.Store != nil {
		for _, id := range cfg.Store.IDs() {
			c, err := s.recoverCluster(id)
			if err != nil {
				return nil, fmt.Errorf("service: recovering cluster %s: %w", id, err)
			}
			s.clusters[id] = c
		}
		s.probeWG.Add(1)
		go s.recoveryProbeLoop()
	}
	return s, nil
}

// recoverCluster rebuilds one cluster from its durable state. A snapshot
// that cannot be applied (stale, reaching past the surviving WAL) falls
// back to a full WAL re-drive; the WAL itself is authoritative.
func (s *Service) recoverCluster(id string) (*Cluster, error) {
	cs, err := s.cfg.Store.Get(id)
	if err != nil {
		return nil, err
	}
	sess, err := s.resumeFromStore(cs)
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		ID:      id,
		Shard:   s.shardFor(id),
		Created: time.Now(),
		store:   cs,
		tickc:   make(chan struct{}),
	}
	c.session.Store(sess)
	return c, nil
}

// resumeFromStore rebuilds a session from a cluster's durable state. A
// snapshot that cannot be applied (stale, reaching past the surviving
// WAL) falls back to a full WAL re-drive; the WAL itself is
// authoritative.
func (s *Service) resumeFromStore(cs *store.ClusterStore) (*tempo.Session, error) {
	schedules, err := cs.Schedules()
	if err != nil {
		return nil, err
	}
	snap, err := cs.LoadSnapshot()
	if err != nil {
		return nil, err
	}
	opts := tempo.ScenarioOptions{Parallelism: s.cfg.Parallelism, Clock: time.Now}
	sess, err := tempo.ResumeSession(cs.Spec(), opts, snap, schedules)
	if err != nil && snap != nil {
		sess, err = tempo.ResumeSession(cs.Spec(), opts, nil, schedules)
	}
	return sess, err
}

// Close stops accepting work, drains queued and in-flight ticks (bounded
// by DrainTimeout), stops the shard workers, and — when durability is on
// — flushes and closes the store. Ticks still queued when the deadline
// cuts off fail with ErrClosed; their clusters recover the lost tail
// deterministically on the next start.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	// Flip readiness before the drain: /v1/readyz answers false for the
	// whole drain window, so routing peels away while in-flight ticks
	// still finish cleanly.
	s.draining.Store(true)
	s.mu.Unlock()
	deadline := time.Now().Add(s.cfg.DrainTimeout)
	for time.Now().Before(deadline) {
		idle := true
		for _, sh := range s.shards {
			if sh.pending.get() != 0 {
				idle = false
				break
			}
		}
		if idle {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(s.quit)
	for _, sh := range s.shards {
		sh.wait()
	}
	s.probeWG.Wait()
	if s.cfg.Store != nil {
		s.cfg.Store.Close()
	}
}

// Ready reports whether the service should receive traffic: true from
// the moment New returns (recovery complete) until Close begins
// draining. Liveness (healthz) stays true throughout — a draining
// process is alive, just not admitting.
func (s *Service) Ready() bool { return !s.draining.Load() }

// shardFor pins a cluster id to a shard: FNV-1a over the id, mod shards.
// The pin is a pure function of the id, so a cluster keeps its shard (and
// its metrics attribution) for its whole life.
func (s *Service) shardFor(id string) int {
	h := fnv.New32a()
	h.Write([]byte(id))
	return int(h.Sum32() % uint32(len(s.shards)))
}

// Create builds a cluster from the scenario spec and registers it under
// id (empty id defaults to the spec name).
func (s *Service) Create(id string, spec *tempo.Scenario) (*Cluster, error) {
	if id == "" {
		id = spec.Name
	}
	// Cheap pre-checks before paying for the session build (workload
	// synthesis, controller wiring): a retrying client hitting ErrExists
	// must not cost a full scenario Build per attempt. The authoritative
	// check is repeated under the write lock below.
	s.mu.RLock()
	_, taken := s.clusters[id]
	closed := s.closed
	s.mu.RUnlock()
	if closed {
		return nil, ErrClosed
	}
	if taken {
		return nil, fmt.Errorf("%w: %s", ErrExists, id)
	}
	sess, err := tempo.NewSession(spec, tempo.ScenarioOptions{Parallelism: s.cfg.Parallelism, Clock: time.Now})
	if err != nil {
		return nil, err
	}
	c := &Cluster{ID: id, Shard: s.shardFor(id), Created: time.Now(), tickc: make(chan struct{})}
	c.session.Store(sess)
	if s.cfg.Store != nil {
		// The store is the arbiter between racing Creates on one id: the
		// loser sees store.ErrExists before touching the registry.
		cs, err := s.cfg.Store.Create(id, spec)
		if errors.Is(err, store.ErrExists) {
			return nil, fmt.Errorf("%w: %s", ErrExists, id)
		}
		if err != nil {
			return nil, err
		}
		c.store = cs
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if _, ok := s.clusters[id]; ok {
		return nil, fmt.Errorf("%w: %s", ErrExists, id)
	}
	s.clusters[id] = c
	return c, nil
}

// Get returns the cluster registered under id.
func (s *Service) Get(id string) (*Cluster, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	c, ok := s.clusters[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return c, nil
}

// Delete tears the cluster down and, with durability on, removes its
// on-disk state. The teardown is routed through the cluster's shard queue
// and serialized against ticks by the cluster mutex, so an in-flight tick
// either commits fully before the teardown or observes the deletion and
// fails with ErrNotFound — it can never append to removed state. Delete
// works on degraded clusters (teardown is how a hopelessly broken store
// is cleared). The context bounds admission only; an admitted teardown
// always completes.
//
// The cluster stays registered until its teardown actually runs: during
// the admission wait reads keep serving, a racing Create(id) sees
// ErrExists instead of silently taking over a still-live id, and a
// teardown shed with ErrOverloaded leaves the cluster exactly as it was.
// Unregistration happens only after execDelete has latched the deletion,
// so a request that resolves the id in that last window is fenced by the
// deleted flag and fails with ErrNotFound.
func (s *Service) Delete(ctx context.Context, id string) error {
	s.mu.RLock()
	closed := s.closed
	c, ok := s.clusters[id]
	s.mu.RUnlock()
	if closed {
		return ErrClosed
	}
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	err := s.shards[c.Shard].remove(ctx, c)
	if err == nil || c.isDeleted() {
		// Torn down (by this call or a racing one that won execDelete):
		// drop the registry entry so the id becomes available again.
		s.mu.Lock()
		if cur, taken := s.clusters[id]; taken && cur == c {
			delete(s.clusters, id)
		}
		s.mu.Unlock()
	}
	return err
}

// execTick runs one committed tick on a shard worker: advance the session
// and, with durability on, log the observed schedule (and a periodic
// snapshot) before acking. The cluster mutex makes the whole commit
// atomic with respect to Delete. A WAL append failure degrades the
// cluster instead of poisoning the shard: the session rolls back to the
// last committed tick, the tick's error reports ErrDegraded (no state
// change — safe to retry after recovery), and reads keep serving.
func (s *Service) execTick(c *Cluster) (tempo.ScenarioIteration, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.deleted {
		return tempo.ScenarioIteration{}, fmt.Errorf("%w: %s", ErrNotFound, c.ID)
	}
	if c.degraded.Load() {
		return tempo.ScenarioIteration{}, fmt.Errorf("%w: %s: %v", ErrDegraded, c.ID, c.degradedCause)
	}
	if delay, tearWAL, tearAt := s.cfg.Chaos.TickFaults(c.ID); delay > 0 || tearWAL {
		if delay > 0 {
			// Injected chaos latency stalls the worker only; tick output is
			// untouched.
			time.Sleep(delay)
		}
		if tearWAL && c.store != nil {
			c.store.InjectFault(c.store.WALSize() + tearAt)
		}
	}
	it, err := c.Session().Tick()
	if err != nil {
		return it, err
	}
	defer c.notifyLocked() // wake query streams once the commit is durable
	if st := c.Session().Search(it.Index); st != nil {
		sh := s.shards[c.Shard]
		sh.scored.add(int64(st.FullyScored))
		sh.pruned.add(int64(st.Pruned))
		if st.DecisionNanos > 0 {
			sh.decLat.record(time.Duration(st.DecisionNanos))
		}
	}
	if c.store != nil {
		if err := c.store.AppendTick(it.Index, c.Session().ObservedSchedule(it.Index)); err != nil {
			// The tick is NOT committed: degrade and roll back, so the error
			// the caller sees is an honest "nothing happened".
			s.degradeLocked(c, fmt.Errorf("logging tick %d: %w", it.Index, err))
			return tempo.ScenarioIteration{}, fmt.Errorf("%w: %s: tick %d not committed: %v", ErrDegraded, c.ID, it.Index, err)
		}
		if (it.Index+1)%s.cfg.SnapshotEvery == 0 {
			snap, serr := c.Session().Snapshot()
			if serr == nil {
				serr = c.store.WriteSnapshot(snap)
			}
			if serr != nil {
				// The WAL append above succeeded, so the tick IS durably
				// committed — only the periodic snapshot (a recovery-cost
				// optimization) failed. Ack the tick; failing it here would
				// break the "error means no state change" retry contract and
				// let a retry double-tick. Degrade so further writes pause
				// until the store heals.
				s.degradeLocked(c, fmt.Errorf("snapshotting after tick %d: %w", it.Index, serr))
			}
		}
	}
	return it, nil
}

// degradeLocked latches the cluster degraded after a durable-write
// failure and rolls its in-memory session back to the last committed
// tick, so reads serve only state the store can reproduce. Determinism
// makes the rollback exact: re-driving the committed schedules lands on
// a byte-identical trajectory, and the uncommitted tick re-runs
// identically after recovery. Callers hold c.mu.
func (s *Service) degradeLocked(c *Cluster, cause error) {
	c.degradedCause = cause
	c.degraded.Store(true)
	s.degradedGauge.add(1)
	committed := c.store.Ticks()
	if c.Session().Ticks() <= committed {
		return
	}
	schedules := make([]*tempo.Schedule, 0, committed)
	for i := 0; i < committed; i++ {
		schedules = append(schedules, c.Session().ObservedSchedule(i))
	}
	opts := tempo.ScenarioOptions{Parallelism: s.cfg.Parallelism, Clock: time.Now}
	if sess, err := tempo.ResumeSession(c.Session().Spec(), opts, nil, schedules); err == nil {
		c.session.Store(sess)
	}
	// On a resume failure keep the old session: it is one uncommitted
	// tick ahead of the store, and recovery re-resumes from disk anyway.
}

// recoveryProbeLoop periodically retries degraded clusters' stores
// until Close. The cadence is RecoveryProbeInterval; each pass is cheap
// when nothing is degraded.
func (s *Service) recoveryProbeLoop() {
	defer s.probeWG.Done()
	t := time.NewTicker(s.cfg.RecoveryProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-s.quit:
			return
		case <-t.C:
			s.ProbeRecovery()
		}
	}
}

// ProbeRecovery attempts to re-arm every degraded cluster right now:
// reopen its WAL from the durable prefix and resume the session from it.
// It returns how many clusters recovered. The background probe calls
// this on its interval; tests and operators can call it directly.
func (s *Service) ProbeRecovery() int {
	s.mu.RLock()
	var degraded []*Cluster
	for _, c := range s.clusters {
		if c.Degraded() {
			degraded = append(degraded, c)
		}
	}
	s.mu.RUnlock()
	n := 0
	for _, c := range degraded {
		if err := s.rearm(c); err == nil {
			n++
		}
	}
	return n
}

// rearm tries to bring one degraded cluster back: reopen the WAL (fresh
// handle on the durable prefix, torn tail truncated, fault cleared) and
// resume a session from the committed state. Failure leaves the cluster
// degraded for the next probe.
func (s *Service) rearm(c *Cluster) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.degraded.Load() || c.deleted {
		return nil
	}
	if err := c.store.Reopen(); err != nil {
		return err
	}
	sess, err := s.resumeFromStore(c.store)
	if err != nil {
		return err
	}
	c.session.Store(sess)
	c.degraded.Store(false)
	c.degradedCause = nil
	s.degradedGauge.add(-1)
	c.notifyLocked() // streams wake and re-read the recovered session
	return nil
}

// InjectWALFault arms a torn-write fault on the cluster's next WAL
// append (see store.ClusterStore.InjectFault): the tick that hits it
// fails durably and the cluster enters degraded mode. The handle chaos
// tests and operators use to rehearse degraded-mode recovery.
func (s *Service) InjectWALFault(id string) error {
	c, err := s.Get(id)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.store == nil {
		return errors.New("service: durability disabled, no WAL to fault")
	}
	c.store.InjectFault(c.store.WALSize())
	return nil
}

// execDelete tears one cluster down on a shard worker.
func (s *Service) execDelete(c *Cluster) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.deleted {
		return fmt.Errorf("%w: %s", ErrNotFound, c.ID)
	}
	c.deleted = true
	if c.degraded.Load() {
		// Teardown is the other exit from degraded mode.
		c.degraded.Store(false)
		s.degradedGauge.add(-1)
	}
	c.notifyLocked() // streams wake, observe deleted, and end
	if c.store != nil {
		return s.cfg.Store.DeleteCluster(c.store)
	}
	return nil
}

// List returns the resident cluster ids, sorted.
func (s *Service) List() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.clusters))
	for id := range s.clusters {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Tick schedules one control-loop tick for the cluster on its shard's
// worker pool and waits for the result. Concurrent Ticks on one cluster
// are serialized; Ticks on different clusters run in parallel up to the
// pool sizes. The context bounds admission only (further capped by
// Config.AdmissionTimeout): a tick shed with ErrOverloaded never ran,
// and an admitted tick always runs to completion. done reports whether
// the cluster's iteration budget is now exhausted — read from the same
// session that ticked, so it cannot race with registry changes.
func (s *Service) Tick(ctx context.Context, c *Cluster) (it tempo.ScenarioIteration, done bool, err error) {
	// Fail degraded writes before queueing: a cluster waiting on store
	// recovery must not occupy shard workers.
	if derr := c.degradedError(); derr != nil {
		return tempo.ScenarioIteration{}, false, derr
	}
	it, err = s.shards[c.Shard].tick(ctx, c)
	if err != nil {
		return tempo.ScenarioIteration{}, false, err
	}
	return it, c.Session().Done(), nil
}

// QS answers a windowed QS query for the cluster (see tempo.Session.QS).
func (s *Service) QS(c *Cluster, from, to time.Duration) ([]tempo.WindowQS, error) {
	windows, err := c.Session().QS(from, to)
	if err != nil {
		return nil, err
	}
	s.qsQueries.add(1)
	return windows, nil
}

// Query runs a one-shot query plan over every interval the cluster has
// observed (see tempo.Session.Query).
func (s *Service) Query(c *Cluster, p *tempo.QueryPlan) (*tempo.QueryResult, error) {
	res, err := c.Session().Query(p)
	if err != nil {
		return nil, err
	}
	s.queryOneShot.add(1)
	return res, nil
}

// WhatIf scores candidate configurations in the cluster's What-if Model.
func (s *Service) WhatIf(c *Cluster, cfgs []tempo.ClusterConfig) ([][]float64, error) {
	rows, err := c.Session().WhatIf(cfgs)
	if err != nil {
		return nil, err
	}
	s.whatifEvals.add(int64(len(cfgs)))
	s.shards[c.Shard].whatifEvals.add(int64(len(cfgs)))
	return rows, nil
}

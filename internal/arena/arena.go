// Package arena provides chunked, reusable allocators for hot simulation
// loops: storage is handed out from fixed-size blocks that are recycled
// wholesale on Reset, so a reused consumer (the discrete-event engine's
// events, the cluster scheduler's per-job/per-task bookkeeping) performs
// zero steady-state heap allocations. Blocks are never resized or moved,
// so pointers into them stay valid until the owner's next Reset.
package arena

// BlockSize is the allocation granularity of both arena kinds: small
// enough that a two-tenant control-interval simulation does not
// over-reserve, large enough that paper-scale traces settle into a
// handful of blocks.
const BlockSize = 256

// Arena hands out pointers to zeroed T values.
type Arena[T any] struct {
	blocks    [][]T
	blockIdx  int
	blockUsed int
}

// Get returns a pointer to a zeroed T, valid until Reset.
func (a *Arena[T]) Get() *T {
	for {
		if a.blockIdx < len(a.blocks) {
			blk := a.blocks[a.blockIdx]
			if a.blockUsed < len(blk) {
				p := &blk[a.blockUsed]
				a.blockUsed++
				var zero T
				*p = zero
				return p
			}
			a.blockIdx++
			a.blockUsed = 0
			continue
		}
		a.blocks = append(a.blocks, make([]T, BlockSize))
	}
}

// Reset recycles every block. Previously handed-out pointers must no
// longer be used.
func (a *Arena[T]) Reset() {
	a.blockIdx = 0
	a.blockUsed = 0
}

// SliceArena hands out zeroed []T chunks of caller-chosen length. Chunks
// are capped at their length (three-index slices), so an append on one
// can never scribble over a neighbour.
type SliceArena[T any] struct {
	blocks    [][]T
	blockIdx  int
	blockUsed int
}

// Take returns a zeroed chunk of length n, valid until Reset.
func (a *SliceArena[T]) Take(n int) []T {
	if n == 0 {
		return nil
	}
	for {
		if a.blockIdx < len(a.blocks) {
			blk := a.blocks[a.blockIdx]
			if a.blockUsed+n <= len(blk) {
				s := blk[a.blockUsed : a.blockUsed+n : a.blockUsed+n]
				a.blockUsed += n
				clear(s)
				return s
			}
			a.blockIdx++
			a.blockUsed = 0
			continue
		}
		size := BlockSize
		if n > size {
			size = n
		}
		a.blocks = append(a.blocks, make([]T, size))
	}
}

// Reset recycles every block. Previously handed-out chunks must no
// longer be used.
func (a *SliceArena[T]) Reset() {
	a.blockIdx = 0
	a.blockUsed = 0
}

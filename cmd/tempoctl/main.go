// Command tempoctl runs Tempo's self-tuning control loop on an emulated
// multi-tenant cluster and reports the per-iteration SLO trajectory —
// the closest thing to "running Tempo" without a live YARN/Mesos cluster.
//
// Usage:
//
//	tempoctl -mix ec2 -capacity 48 -iterations 15 -interval 1h \
//	         -deadline-slack 0.25 -deadline-target 0.05
//
// The loop starts from a deliberately skewed "expert" configuration and
// prints, per iteration, the observed QS metrics, whether a new RM
// configuration was adopted, and whether the revert guard rolled one back.
//
// The query subcommand is a client for a running tempod's ad-hoc query
// API instead:
//
//	tempoctl query -addr http://localhost:8080 -cluster c1 -plan plan.json
//	tempoctl query -cluster c1 -plan '{"version":1,"source":"jobs",...}' -stream
//
// -plan accepts inline JSON, a file path, or "-" for stdin; -stream
// subscribes to the live SSE feed and prints per-tick deltas until the
// session completes.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"tempo/internal/cluster"
	"tempo/internal/core"
	"tempo/internal/exp"
	"tempo/internal/pald"
	"tempo/internal/qs"
	"tempo/internal/whatif"
	"tempo/internal/workload"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "query" {
		if err := runQuery(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "tempoctl: query:", err)
			os.Exit(1)
		}
		return
	}
	var (
		mix         = flag.String("mix", "ec2", "workload mix: ec2 or two-tenant")
		capacity    = flag.Int("capacity", 48, "cluster capacity in containers")
		scale       = flag.Float64("scale", 2.2, "arrival-rate scale")
		iterations  = flag.Int("iterations", 15, "control-loop iterations")
		interval    = flag.Duration("interval", time.Hour, "control interval L")
		slack       = flag.Float64("deadline-slack", 0.25, "QS_DL slack γ")
		dlTarget    = flag.Float64("deadline-target", 0.0, "deadline-violation target r")
		seed        = flag.Int64("seed", 42, "random seed")
		candidates  = flag.Int("candidates", 5, "candidate configurations per loop")
		strategy    = flag.String("strategy", "pald", "optimizer: pald, weighted-sum, random")
		parallelism = flag.Int("parallelism", 0, "what-if worker count (0 = one per CPU)")
	)
	flag.Parse()
	if *parallelism <= 0 {
		*parallelism = whatif.DefaultParallelism()
	}
	if err := run(*mix, *capacity, *scale, *iterations, *interval, *slack, *dlTarget, *seed, *candidates, *strategy, *parallelism); err != nil {
		fmt.Fprintln(os.Stderr, "tempoctl:", err)
		os.Exit(1)
	}
}

func run(mix string, capacity int, scale float64, iterations int, interval time.Duration, slack, dlTarget float64, seed int64, candidates int, strategyName string, parallelism int) error {
	var profiles []workload.TenantProfile
	switch mix {
	case "ec2":
		profiles = exp.EC2TwoTenantProfiles(scale)
	case "two-tenant":
		profiles = exp.TwoTenantProfiles(scale)
	default:
		return fmt.Errorf("unknown mix %q", mix)
	}
	trace, err := workload.Generate(profiles, workload.GenerateOptions{
		Horizon: interval, Seed: seed + 977, Name: "tempoctl",
	})
	if err != nil {
		return err
	}
	templates := []qs.Template{
		qs.Template{Queue: "deadline", Metric: qs.DeadlineViolations, Slack: slack}.WithTarget(dlTarget),
		{Queue: "besteffort", Metric: qs.AvgResponseTime},
	}
	model, err := whatif.FromTrace(templates, trace)
	if err != nil {
		return err
	}
	model.Horizon = interval
	model.Parallelism = parallelism
	var strategy pald.Strategy
	space := cluster.DefaultSpace(capacity, []string{"deadline", "besteffort"})
	switch strategyName {
	case "pald":
		strategy = nil // controller builds the default PALD optimizer
	case "weighted-sum":
		strategy, err = pald.NewWeightedSum(space.Dim(), len(templates), pald.Options{Seed: seed, MaxStep: 0.2})
	case "random":
		strategy, err = pald.NewRandomSearch(space.Dim(), 0.2, seed)
	default:
		return fmt.Errorf("unknown strategy %q", strategyName)
	}
	if err != nil {
		return err
	}
	ctl, err := core.NewController(core.Config{
		Space:       space,
		Templates:   templates,
		Model:       model,
		Environment: &core.ReplayEnvironment{Trace: trace, Noise: cluster.DefaultNoise(seed + 13), Seed: seed},
		Interval:    interval,
		Candidates:  candidates,
		Strategy:    strategy,
		PALD:        pald.Options{Seed: seed + 29, MaxStep: 0.2},
	}, exp.ExpertTwoTenantConfig(capacity))
	if err != nil {
		return err
	}

	fmt.Printf("tempoctl: %s mix, %d containers, %d iterations, interval %s, strategy %s\n",
		mix, capacity, iterations, interval, strategyName)
	fmt.Printf("%5s  %10s  %10s  %8s  %8s\n", "iter", "DL viol", "AJR (s)", "switched", "reverted")
	for i := 0; i < iterations; i++ {
		it, err := ctl.Step()
		if err != nil {
			return err
		}
		fmt.Printf("%5d  %10.3f  %10.1f  %8v  %8v\n",
			it.Index, it.Observed[0], it.Observed[1], it.Switched, it.Reverted)
	}
	history := ctl.History()
	fmt.Printf("\nbest-effort AJR improvement: %.1f%%\n", core.Improvement(history, 1)*100)
	final := ctl.Current()
	fmt.Println("final RM configuration:")
	for _, name := range space.TenantNames {
		tc := final.Tenant(name)
		fmt.Printf("  %-12s weight=%-5.2f min=%-3d max=%-3d sharePreempt=%-8s minPreempt=%s\n",
			name, tc.Weight, tc.MinShare, tc.MaxShare,
			tc.SharePreemptTimeout.Round(time.Second), tc.MinSharePreemptTimeout.Round(time.Second))
	}
	return nil
}

// Package store is tempod's durable control-plane state: one directory
// per hosted cluster holding the scenario spec, a periodic snapshot of
// the control loop (internal/scenario.Snapshot), and an append-only
// schedule-event WAL with one CRC-framed record per committed tick.
//
// Durability is relaxed where determinism makes it free: a crash may lose
// the un-fsynced WAL tail and any snapshot staleness, but never a
// committed trajectory — recovery rebuilds the runtime from the spec,
// restores the newest usable snapshot, re-drives the control loop through
// the surviving WAL records with observations injected, and the
// recovered cluster's report is byte-identical to an uninterrupted run.
// Re-ticking a lost tail is safe for the same reason: every tick is a
// pure function of spec + prior observations.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"time"
)

// WAL framing: each record is a fixed header (payload length, CRC-32C of
// the payload, both little-endian uint32) followed by the payload. On
// open the file is scanned front to back; the first hole — short header,
// short payload, implausible length, CRC mismatch — ends the durable
// prefix and the torn tail beyond it is truncated away. A WAL is never
// compacted: a cluster's iteration budget is finite and the full record
// history is what serves windowed QS queries after recovery.
const (
	walHeaderSize = 8
	// walMaxRecord bounds a single record's payload; a length field above
	// it is treated as corruption, not as a 4 GiB allocation request.
	walMaxRecord = 64 << 20
)

var walCRC = crc32.MakeTable(crc32.Castagnoli)

// ErrFaultInjected marks a write cut short by a FaultPoint — the injected
// equivalent of the machine dying mid-write.
var ErrFaultInjected = errors.New("store: injected crash fault")

// ErrWALBroken is returned by appends after a write error (including an
// injected fault): the file tail is undefined, so the WAL refuses to
// write anything further past it.
var ErrWALBroken = errors.New("store: wal broken by earlier write error")

// FaultPoint injects a crash at a byte offset of the WAL file: the write
// that would carry the file past Limit bytes is truncated there and fails
// with ErrFaultInjected, leaving a torn record exactly like a real crash
// mid-write. Recovery tests sweep Limit over randomized offsets.
type FaultPoint struct {
	// Limit is the total number of bytes allowed to reach the file.
	Limit int64

	written int64
}

// WALOptions tune group commit.
type WALOptions struct {
	// SyncInterval is the group-commit window: an fsync is issued when this
	// much time has passed since the last one (checked at append). Zero
	// with zero SyncBytes means fsync on every append.
	SyncInterval time.Duration
	// SyncBytes forces an fsync once this many bytes are dirty. Zero with
	// zero SyncInterval means fsync on every append.
	SyncBytes int
	// Fault, when non-nil, injects a crash (tests only).
	Fault *FaultPoint
	// Stall, when non-nil, runs before every fsync — the chaos hook for
	// a device that intermittently takes forever to flush. It runs with
	// the WAL lock held, so a stall delays this WAL's appends exactly
	// like a real slow disk would.
	Stall func()
}

// WAL is one cluster's append-only record log. Appends write through to
// the OS immediately (a SIGKILL loses nothing already appended) and
// batch fsyncs per WALOptions (a power failure loses at most the window
// since the last fsync — a tail recovery re-derives).
type WAL struct {
	mu       sync.Mutex
	f        *os.File
	path     string
	opts     WALOptions
	size     int64
	dirty    int64
	lastSync time.Time
	records  int
	broken   bool
	closed   bool
}

// OpenWAL opens (creating if absent) the log at path, scans it, truncates
// any torn tail, and returns the WAL positioned for appends plus every
// intact record payload in append order.
func OpenWAL(path string, opts WALOptions) (*WAL, [][]byte, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	raw, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("store: reading wal %s: %w", path, err)
	}
	records, good := scanRecords(raw)
	if int64(good) != int64(len(raw)) {
		// Torn tail: a crash cut the last write short. Drop it — the ticks
		// it carried re-run deterministically.
		if err := f.Truncate(int64(good)); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("store: truncating torn wal tail %s: %w", path, err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	if _, err := f.Seek(int64(good), io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	w := &WAL{f: f, path: path, opts: opts, size: int64(good), records: len(records)}
	return w, records, nil
}

// scanRecords walks the framed records in raw and returns the intact
// payloads plus the byte length of the durable prefix.
func scanRecords(raw []byte) (records [][]byte, good int) {
	off := 0
	for {
		if len(raw)-off < walHeaderSize {
			return records, off
		}
		n := binary.LittleEndian.Uint32(raw[off:])
		sum := binary.LittleEndian.Uint32(raw[off+4:])
		if n > walMaxRecord || len(raw)-off-walHeaderSize < int(n) {
			return records, off
		}
		payload := raw[off+walHeaderSize : off+walHeaderSize+int(n)]
		if crc32.Checksum(payload, walCRC) != sum {
			return records, off
		}
		records = append(records, append([]byte(nil), payload...))
		off += walHeaderSize + int(n)
	}
}

// Records returns how many intact records the log holds.
func (w *WAL) Records() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.records
}

// Size returns the log's current byte length.
func (w *WAL) Size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size
}

// Append frames payload and writes it through to the OS, fsyncing per the
// group-commit policy. On return the record survives a process kill; it
// survives a machine crash once the batch it rides on is synced.
func (w *WAL) Append(payload []byte) error {
	if len(payload) > walMaxRecord {
		return fmt.Errorf("store: wal record of %d bytes exceeds the %d-byte limit", len(payload), walMaxRecord)
	}
	frame := make([]byte, walHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(frame, uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(payload, walCRC))
	copy(frame[walHeaderSize:], payload)

	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("store: wal %s is closed", w.path)
	}
	if w.broken {
		return ErrWALBroken
	}
	if err := w.write(frame); err != nil {
		w.broken = true
		return err
	}
	w.size += int64(len(frame))
	w.dirty += int64(len(frame))
	w.records++
	return w.maybeSync()
}

// write pushes b to the file, honoring the fault point: a write crossing
// the fault limit lands only its prefix, exactly like a crash mid-write.
func (w *WAL) write(b []byte) error {
	if fp := w.opts.Fault; fp != nil {
		if remain := fp.Limit - fp.written; remain < int64(len(b)) {
			if remain > 0 {
				w.f.Write(b[:remain])
				w.f.Sync()
				fp.written = fp.Limit
			}
			return ErrFaultInjected
		}
		fp.written += int64(len(b))
	}
	_, err := w.f.Write(b)
	return err
}

// maybeSync applies the group-commit policy with w.mu held.
func (w *WAL) maybeSync() error {
	if w.dirty == 0 {
		return nil
	}
	every := w.opts.SyncInterval == 0 && w.opts.SyncBytes == 0
	byBytes := w.opts.SyncBytes > 0 && w.dirty >= int64(w.opts.SyncBytes)
	byTime := w.opts.SyncInterval > 0 && time.Since(w.lastSync) >= w.opts.SyncInterval
	if !every && !byBytes && !byTime {
		return nil
	}
	return w.syncLocked()
}

func (w *WAL) syncLocked() error {
	if w.opts.Stall != nil {
		w.opts.Stall()
	}
	if err := w.f.Sync(); err != nil {
		w.broken = true
		return err
	}
	w.dirty = 0
	//tempolint:ignore determinism group-commit pacing is wall-clock durability policy; WAL bytes are unaffected
	w.lastSync = time.Now()
	return nil
}

// Sync forces the dirty tail to stable storage.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed || w.broken {
		return nil
	}
	if w.dirty == 0 {
		return nil
	}
	return w.syncLocked()
}

// Close flushes and closes the log. Safe to call twice.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	var err error
	if !w.broken && w.dirty > 0 {
		err = w.f.Sync()
	}
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	return err
}

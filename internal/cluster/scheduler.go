package cluster

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"tempo/internal/arena"
	"tempo/internal/sim"
	"tempo/internal/workload"
)

// Event tie-break priorities: at the same instant, finishes free containers
// before submissions ask for them, and preemption checks observe the
// settled state last.
const (
	prioFinish = iota
	prioKill
	prioSubmit
	prioPreempt
)

// Options configure a cluster run.
type Options struct {
	// Noise, when non-nil, turns the run into a noisy emulation of a
	// production cluster. Nil runs the deterministic Schedule Predictor.
	Noise *NoiseModel
	// Horizon, when positive, stops the run at that virtual time, leaving
	// still-running work truncated. Zero runs until all jobs finish.
	Horizon time.Duration
}

// task is one task of one job; it may go through several attempts.
type task struct {
	job      *jobRun
	stage    int
	index    int
	kind     workload.TaskKind
	duration time.Duration
	attempt  int
}

// runningTask is a task attempt currently occupying a container.
type runningTask struct {
	t         *task
	tenant    *tenantState
	start     time.Duration
	finishEv  *sim.Event
	recIdx    int
	launchSeq uint64
	done      bool
	// plannedOutcome is how the attempt will end if it runs to its finish
	// event: TaskFinished, or TaskFailed when the noise model injected a
	// failure at launch. Preemption and kills override it via release.
	plannedOutcome TaskOutcome
}

// jobRun tracks a job's progress through its stages.
type jobRun struct {
	spec      *workload.JobSpec
	remaining []int // unfinished task count per stage
	unlocked  []bool
	recIdx    int
	finished  bool
	killed    bool
	killEv    *sim.Event
	running   []*runningTask
}

// taskDeque is the tenant's pending-task FIFO with O(1) front pushes for
// preempted tasks. A head index replaces the pending[1:] re-slicing the
// queue used to do, which defeated append's amortized growth (the slice's
// base kept advancing, so the backing array was re-allocated over and
// over on steady task flow).
type taskDeque struct {
	buf  []*task
	head int
}

func (d *taskDeque) len() int { return len(d.buf) - d.head }

func (d *taskDeque) pushBack(t *task) { d.buf = append(d.buf, t) }

// pushFront reuses the slot freed by the last popFront when one exists;
// preemptions (the only front-pushers) always follow pops, so the
// allocating fallback is rare.
func (d *taskDeque) pushFront(t *task) {
	if d.head > 0 {
		d.head--
		d.buf[d.head] = t
		return
	}
	d.buf = append(d.buf, nil)
	copy(d.buf[1:], d.buf)
	d.buf[0] = t
}

func (d *taskDeque) popFront() *task {
	t := d.buf[d.head]
	d.buf[d.head] = nil
	d.head++
	if d.head == len(d.buf) {
		d.buf = d.buf[:0]
		d.head = 0
	}
	return t
}

// filter keeps only tasks satisfying keep, preserving order.
func (d *taskDeque) filter(keep func(*task) bool) {
	kept := d.buf[:d.head]
	for _, t := range d.buf[d.head:] {
		if keep(t) {
			kept = append(kept, t)
		}
	}
	clear(d.buf[len(kept):])
	d.buf = kept
}

// tenantState is a tenant queue inside the RM.
type tenantState struct {
	name string
	cfg  TenantConfig

	pending taskDeque // FIFO; preempted tasks are pushed to the front
	running int
	ranked  []*runningTask // launch order, lazily compacted

	fairShare float64 // instantaneous weighted fair share

	starvedMinSince   time.Duration
	starvedShareSince time.Duration
	minCheckEv        *sim.Event
	shareCheckEv      *sim.Event
}

func (t *tenantState) demand() int { return t.running + t.pending.len() }

// effMax returns the tenant's container ceiling.
func (t *tenantState) effMax(capacity int) int {
	if t.cfg.MaxShare <= 0 || t.cfg.MaxShare > capacity {
		return capacity
	}
	return t.cfg.MaxShare
}

// minTarget is the containers the tenant is entitled to at the min-share
// level right now: its floor, capped by demand.
func (t *tenantState) minTarget(capacity int) int {
	m := t.cfg.MinShare
	if m > capacity {
		m = capacity
	}
	if d := t.demand(); m > d {
		m = d
	}
	return m
}

// ws is one active tenant's state inside computeFairShares' water-filling.
type ws struct {
	ts    *tenantState
	cap   float64
	floor float64
	share float64
	fixed bool
}

// scheduler is the RM simulation state. It is built to be reused: init
// returns every field to its start-of-run state while keeping the engine's
// event arena, the bookkeeping arenas, and the hot-loop buffers, so one
// scheduler value can run many simulations with near-zero steady-state
// allocation (see Sim).
type scheduler struct {
	engine   sim.Engine
	cfg      Config
	capacity int
	free     int
	opts     Options
	rng      *rand.Rand

	tenants    map[string]*tenantState
	tenantList []*tenantState // sorted by name for determinism

	schedule  *Schedule
	launchSeq uint64
	allRun    []*runningTask // live attempts for horizon truncation

	// Reused hot-loop buffers.
	fair    []ws           // computeFairShares scratch
	victims []*runningTask // killVictims scratch

	// Arenas for per-run bookkeeping objects.
	jobRuns arena.Arena[jobRun]
	tasks   arena.Arena[task]
	runs    arena.Arena[runningTask]
	tstates arena.Arena[tenantState]
	ints    arena.SliceArena[int]
	bools   arena.SliceArena[bool]

	// Backing arrays for the produced Schedule, reused across runs unless
	// the caller detaches the schedule (see Sim.Detach).
	tasksBuf []TaskRecord
	jobsBuf  []JobRecord

	// Shared event handlers (sim.Engine.AtArg): bound once per scheduler,
	// so scheduling an event does not allocate a closure.
	fnSubmit       func(now time.Duration, arg any)
	fnFinish       func(now time.Duration, arg any)
	fnKill         func(now time.Duration, arg any)
	fnPreemptMin   func(now time.Duration, arg any)
	fnPreemptShare func(now time.Duration, arg any)
}

// bind installs the shared event handlers. Called once per scheduler
// value, before its first run.
func (s *scheduler) bind() {
	s.fnSubmit = func(now time.Duration, arg any) {
		s.submit(now, arg.(*workload.JobSpec))
	}
	s.fnFinish = func(now time.Duration, arg any) {
		rt := arg.(*runningTask)
		s.finish(now, rt, rt.plannedOutcome)
	}
	s.fnKill = func(now time.Duration, arg any) {
		jr := arg.(*jobRun)
		s.killJob(now, s.tenants[jr.spec.Tenant], jr)
	}
	s.fnPreemptMin = func(now time.Duration, arg any) {
		ts := arg.(*tenantState)
		ts.minCheckEv = nil
		s.preemptCheck(now, ts, true)
	}
	s.fnPreemptShare = func(now time.Duration, arg any) {
		ts := arg.(*tenantState)
		ts.shareCheckEv = nil
		s.preemptCheck(now, ts, false)
	}
}

// init resets the scheduler for a fresh run of the trace under cfg. Every
// piece of per-run state is restored to its start state; arena blocks, the
// event queue's backing array, and (unless detached) the schedule's record
// arrays are recycled rather than re-allocated.
func (s *scheduler) init(trace *workload.Trace, cfg Config, opts Options) {
	s.engine.Reset()
	s.cfg = cfg
	s.capacity = cfg.TotalContainers
	s.free = cfg.TotalContainers
	s.opts = opts
	if s.tenants == nil {
		s.tenants = make(map[string]*tenantState)
	} else {
		clear(s.tenants)
	}
	s.tenantList = s.tenantList[:0]
	s.launchSeq = 0
	s.allRun = s.allRun[:0]
	s.fair = s.fair[:0]
	s.victims = s.victims[:0]
	s.jobRuns.Reset()
	s.tasks.Reset()
	s.runs.Reset()
	s.tstates.Reset()
	s.ints.Reset()
	s.bools.Reset()
	s.schedule = &Schedule{
		Capacity: cfg.TotalContainers,
		Tasks:    s.tasksBuf[:0],
		Jobs:     s.jobsBuf[:0],
	}
	if opts.Noise != nil {
		// Re-seeding restores the exact generator state rand.New would
		// build, so a reused scheduler's noise stream is bit-identical to a
		// fresh one's.
		if s.rng == nil {
			s.rng = rand.New(rand.NewSource(opts.Noise.Seed))
		} else {
			s.rng.Seed(opts.Noise.Seed)
		}
	}
	for i := range trace.Jobs {
		name := trace.Jobs[i].Tenant
		if _, ok := s.tenants[name]; !ok {
			ts := s.tstates.Get()
			ts.name = name
			ts.cfg = cfg.Tenant(name)
			ts.starvedMinSince = -1
			ts.starvedShareSince = -1
			s.tenants[name] = ts
			s.tenantList = append(s.tenantList, ts)
		}
	}
	sort.Slice(s.tenantList, func(i, j int) bool {
		return s.tenantList[i].name < s.tenantList[j].name
	})
	for i := range trace.Jobs {
		s.engine.AtArg(trace.Jobs[i].Submit, prioSubmit, s.fnSubmit, &trace.Jobs[i])
	}
}

// run drives the event loop to completion (or the horizon). Together
// with the handlers below it is the what-if inner loop's simulation
// kernel, alloc-gated by BENCH_5.json.
//
//tempo:hot
func (s *scheduler) run() *Schedule {
	if s.opts.Horizon > 0 {
		s.engine.RunUntil(s.opts.Horizon)
		s.truncate(s.opts.Horizon)
	} else {
		s.engine.Run()
	}
	s.schedule.Horizon = s.engine.Now()
	return s.schedule
}

// submit admits a job: record it, unlock dependency-free stages, enqueue
// their tasks, and try to place work.
//
//tempo:hot
func (s *scheduler) submit(now time.Duration, spec *workload.JobSpec) {
	jr := s.jobRuns.Get()
	jr.spec = spec
	jr.remaining = s.ints.Take(len(spec.Stages))
	jr.unlocked = s.bools.Take(len(spec.Stages))
	jr.recIdx = len(s.schedule.Jobs)
	s.schedule.Jobs = append(s.schedule.Jobs, JobRecord{
		ID:       spec.ID,
		Tenant:   spec.Tenant,
		Submit:   now,
		Deadline: spec.Deadline,
	})
	for i := range spec.Stages {
		jr.remaining[i] = len(spec.Stages[i].Tasks)
	}
	ts := s.tenants[spec.Tenant]
	for i := range spec.Stages {
		if len(spec.Stages[i].DependsOn) == 0 {
			s.unlockStage(ts, jr, i)
		}
	}
	if s.opts.Noise != nil {
		if killAt, ok := s.opts.Noise.jobKillTime(s.rng, spec, now); ok {
			jr.killEv = s.engine.AtArg(killAt, prioKill, s.fnKill, jr)
		}
	}
	s.assign(now)
}

// unlockStage enqueues a stage's tasks at the tail of the tenant queue.
func (s *scheduler) unlockStage(ts *tenantState, jr *jobRun, stage int) {
	jr.unlocked[stage] = true
	specs := jr.spec.Stages[stage].Tasks
	for i := range specs {
		t := s.tasks.Get()
		t.job = jr
		t.stage = stage
		t.index = i
		t.kind = specs[i].Kind
		t.duration = specs[i].Duration
		ts.pending.pushBack(t)
	}
}

// assign places pending tasks onto free containers following fair-scheduler
// order: tenants below their min share first (most deficient relative to
// the floor), then tenants most below their weighted fair share.
//
//tempo:hot
func (s *scheduler) assign(now time.Duration) {
	if s.free > 0 {
		s.computeFairShares()
		for s.free > 0 {
			ts := s.pickTenant()
			if ts == nil {
				break
			}
			s.launch(now, ts)
		}
	}
	s.updateStarvation(now)
}

// pickTenant returns the next tenant entitled to a container, or nil.
// Order: below-min-share tenants first (most deficient relative to the
// floor), then lowest running/weight ratio; ratio ties go to the heavier
// tenant (as in YARN's fair-share comparator) so synchronized task waves
// don't systematically skew the split, then to the lexicographically
// smaller name for determinism.
//
//tempo:hot
func (s *scheduler) pickTenant() *tenantState {
	var best *tenantState
	var bestBelowMin bool
	var bestKey float64
	const eps = 1e-9
	for _, ts := range s.tenantList {
		if ts.pending.len() == 0 || ts.running >= ts.effMax(s.capacity) {
			continue
		}
		belowMin := ts.running < ts.minTarget(s.capacity)
		var key float64
		if belowMin {
			key = float64(ts.running) / math.Max(float64(ts.cfg.MinShare), 1)
		} else {
			key = float64(ts.running) / ts.cfg.Weight
		}
		switch {
		case best == nil,
			belowMin && !bestBelowMin,
			belowMin == bestBelowMin && key < bestKey-eps,
			belowMin == bestBelowMin && math.Abs(key-bestKey) <= eps && ts.cfg.Weight > best.cfg.Weight:
			best, bestBelowMin, bestKey = ts, belowMin, key
		}
	}
	return best
}

// launch starts the tenant's next pending task in a free container.
//
//tempo:hot
func (s *scheduler) launch(now time.Duration, ts *tenantState) {
	t := s.popPending(ts)
	if t == nil {
		return
	}
	t.attempt++
	dur := t.duration
	fail := false
	if s.opts.Noise != nil {
		dur, fail = s.opts.Noise.attemptDuration(s.rng, dur)
	}
	rt := s.runs.Get()
	rt.t = t
	rt.tenant = ts
	rt.start = now
	rt.recIdx = len(s.schedule.Tasks)
	rt.launchSeq = s.launchSeq
	rt.plannedOutcome = TaskFinished
	if fail {
		rt.plannedOutcome = TaskFailed
	}
	s.launchSeq++
	s.schedule.Tasks = append(s.schedule.Tasks, TaskRecord{
		JobID:   t.job.spec.ID,
		Tenant:  ts.name,
		Kind:    t.kind,
		Attempt: t.attempt,
		Start:   now,
		Outcome: TaskTruncated, // finalized on completion
	})
	s.free--
	ts.running++
	ts.ranked = append(ts.ranked, rt)
	t.job.running = append(t.job.running, rt)
	s.allRun = append(s.allRun, rt)
	rt.finishEv = s.engine.AtArg(now+dur, prioFinish, s.fnFinish, rt)
}

// popPending removes and returns the tenant's next live pending task,
// discarding tasks whose job has been killed.
func (s *scheduler) popPending(ts *tenantState) *task {
	for ts.pending.len() > 0 {
		t := ts.pending.popFront()
		if !t.job.killed {
			return t
		}
	}
	return nil
}

// finish ends an attempt with the given outcome. Failed attempts requeue.
func (s *scheduler) finish(now time.Duration, rt *runningTask, outcome TaskOutcome) {
	s.release(now, rt, outcome)
	t := rt.t
	switch outcome {
	case TaskFinished:
		jr := t.job
		jr.remaining[t.stage]--
		if jr.remaining[t.stage] == 0 {
			s.stageComplete(now, jr, t.stage)
		}
	case TaskFailed:
		// Lost work; the task restarts from scratch at the queue tail.
		rt.tenant.pending.pushBack(t)
	}
	s.assign(now)
}

// release frees the container and finalizes the attempt record.
func (s *scheduler) release(now time.Duration, rt *runningTask, outcome TaskOutcome) {
	if rt.done {
		return
	}
	rt.done = true
	if rt.finishEv != nil {
		rt.finishEv.Cancel()
	}
	rec := &s.schedule.Tasks[rt.recIdx]
	rec.End = now
	rec.Outcome = outcome
	rt.tenant.running--
	s.free++
}

// stageComplete unlocks dependent stages and finishes the job when all
// stages are done.
func (s *scheduler) stageComplete(now time.Duration, jr *jobRun, stage int) {
	ts := s.tenants[jr.spec.Tenant]
	for i := range jr.spec.Stages {
		if jr.unlocked[i] {
			continue
		}
		ready := true
		for _, d := range jr.spec.Stages[i].DependsOn {
			if jr.remaining[d] > 0 {
				ready = false
				break
			}
		}
		if ready {
			s.unlockStage(ts, jr, i)
		}
	}
	for _, rem := range jr.remaining {
		if rem > 0 {
			return
		}
	}
	jr.finished = true
	if jr.killEv != nil {
		jr.killEv.Cancel()
	}
	rec := &s.schedule.Jobs[jr.recIdx]
	rec.Finish = now
	rec.Completed = true
}

// killJob emulates a user/DBA killing a job: pending tasks evaporate and
// running attempts are terminated, their work lost.
func (s *scheduler) killJob(now time.Duration, ts *tenantState, jr *jobRun) {
	if jr.finished || jr.killed {
		return
	}
	jr.killed = true
	// Remove the job's pending tasks from the tenant queue.
	ts.pending.filter(func(t *task) bool { return t.job != jr })
	for _, rt := range jr.running {
		if !rt.done {
			s.release(now, rt, TaskKilled)
		}
	}
	jr.running = nil
	rec := &s.schedule.Jobs[jr.recIdx]
	rec.Finish = now
	rec.Killed = true
	s.assign(now)
}

// computeFairShares runs weighted water-filling with floors (min shares),
// ceilings (max shares), and demand caps, storing each tenant's
// instantaneous fair share. It runs on every assignment, so its working
// set is a reused value-slice buffer rather than per-call allocations.
func (s *scheduler) computeFairShares() {
	active := s.fair[:0]
	var floorSum float64
	for _, ts := range s.tenantList {
		ts.fairShare = 0
		d := ts.demand()
		if d == 0 {
			continue
		}
		capacity := math.Min(float64(ts.effMax(s.capacity)), float64(d))
		floor := math.Min(float64(ts.minTarget(s.capacity)), capacity)
		active = append(active, ws{ts: ts, cap: capacity, floor: floor})
		floorSum += floor
	}
	s.fair = active // keep the grown backing for the next call
	if len(active) == 0 {
		return
	}
	total := float64(s.capacity)
	if floorSum > total {
		// Overcommitted min shares: scale floors down proportionally.
		for i := range active {
			w := &active[i]
			w.share = w.floor * total / floorSum
			w.ts.fairShare = w.share
		}
		return
	}
	remaining := total - floorSum
	for i := range active {
		active[i].share = active[i].floor
	}
	// Water-fill the remainder by weight, fixing tenants that hit caps.
	for iter := 0; iter < len(active)+1; iter++ {
		var wsum float64
		for i := range active {
			if !active[i].fixed {
				wsum += active[i].ts.cfg.Weight
			}
		}
		if wsum == 0 || remaining <= 1e-9 {
			break
		}
		overflow := false
		for i := range active {
			w := &active[i]
			if w.fixed {
				continue
			}
			prop := w.share + remaining*w.ts.cfg.Weight/wsum
			if prop >= w.cap {
				remaining -= w.cap - w.share
				w.share = w.cap
				w.fixed = true
				overflow = true
			}
		}
		if !overflow {
			for i := range active {
				if !active[i].fixed {
					active[i].share += remaining * active[i].ts.cfg.Weight / wsum
				}
			}
			break
		}
	}
	for i := range active {
		active[i].ts.fairShare = active[i].share
	}
}

// updateStarvation maintains the two starvation clocks per tenant and the
// preemption-check events they arm.
func (s *scheduler) updateStarvation(now time.Duration) {
	s.computeFairShares()
	for _, ts := range s.tenantList {
		starvedMin := ts.pending.len() > 0 && ts.running < ts.minTarget(s.capacity)
		starvedShare := ts.pending.len() > 0 && float64(ts.running) < ts.fairShare-1e-9
		s.armClock(now, ts, starvedMin, &ts.starvedMinSince, &ts.minCheckEv, ts.cfg.MinSharePreemptTimeout, true)
		s.armClock(now, ts, starvedShare, &ts.starvedShareSince, &ts.shareCheckEv, ts.cfg.SharePreemptTimeout, false)
	}
}

func (s *scheduler) armClock(now time.Duration, ts *tenantState, starved bool, since *time.Duration, ev **sim.Event, timeout time.Duration, minLevel bool) {
	if !starved {
		*since = -1
		if *ev != nil {
			// Keep the pointer: tenants oscillate between starved and
			// satisfied on every assignment, and the next re-arm revives
			// this event in place via Reschedule instead of allocating a
			// fresh one and leaving a dead entry in the queue.
			(*ev).Cancel()
		}
		return
	}
	if timeout <= 0 {
		return // preemption disabled at this level
	}
	if *since < 0 {
		*since = now
	} else if *ev != nil && !(*ev).Canceled() {
		return // already armed for the current starvation window
	}
	fireAt := *since + timeout
	if *ev != nil && s.engine.Reschedule(*ev, fireAt) {
		return
	}
	fn := s.fnPreemptShare
	if minLevel {
		fn = s.fnPreemptMin
	}
	*ev = s.engine.AtArg(fireAt, prioPreempt, fn, ts)
}

// preemptCheck fires when a tenant has been continuously starved for its
// configured timeout: kill the most recently launched tasks of over-share
// tenants until the starved tenant can reach its target.
func (s *scheduler) preemptCheck(now time.Duration, ts *tenantState, minLevel bool) {
	s.computeFairShares()
	var since time.Duration
	var target int
	if minLevel {
		since = ts.starvedMinSince
		target = ts.minTarget(s.capacity)
	} else {
		since = ts.starvedShareSince
		target = int(math.Floor(ts.fairShare + 1e-9))
	}
	timeout := ts.cfg.MinSharePreemptTimeout
	if !minLevel {
		timeout = ts.cfg.SharePreemptTimeout
	}
	if since < 0 || ts.pending.len() == 0 || now < since+timeout {
		s.updateStarvation(now)
		return
	}
	// Restart the starvation window so the next check (if the tenant stays
	// starved, e.g. because no victims were eligible) fires one full
	// timeout from now rather than immediately.
	if minLevel {
		ts.starvedMinSince = now
	} else {
		ts.starvedShareSince = now
	}
	need := target - ts.running - s.free
	if need > 0 {
		s.killVictims(now, ts, need)
	}
	s.assign(now)
}

// killVictims preempts up to need containers from tenants running above
// their fair share, most recently launched attempts first.
func (s *scheduler) killVictims(now time.Duration, starved *tenantState, need int) {
	victims := s.victims[:0]
	for _, ts := range s.tenantList {
		if ts == starved {
			continue
		}
		over := float64(ts.running) - ts.fairShare
		if over < 1 {
			continue
		}
		// Candidates: newest first, at most `over` from this tenant so we
		// never push a victim below its own fair share.
		allowed := int(over)
		taken := 0
		for i := len(ts.ranked) - 1; i >= 0 && taken < allowed; i-- {
			rt := ts.ranked[i]
			if rt.done {
				continue
			}
			victims = append(victims, rt)
			taken++
		}
		ts.compactRanked()
	}
	s.victims = victims // keep the grown backing for the next call
	sort.Slice(victims, func(i, j int) bool { return victims[i].launchSeq > victims[j].launchSeq })
	for _, rt := range victims {
		if need <= 0 {
			break
		}
		s.preempt(now, rt)
		need--
	}
}

// preempt kills one attempt; the task restarts from scratch at the front of
// its tenant's queue (it keeps its place in line, but its work is lost —
// the effect Figure 1 illustrates).
func (s *scheduler) preempt(now time.Duration, rt *runningTask) {
	s.release(now, rt, TaskPreempted)
	rt.tenant.pending.pushFront(rt.t)
}

// compactRanked drops completed attempts from the launch-order list.
func (t *tenantState) compactRanked() {
	kept := t.ranked[:0]
	for _, rt := range t.ranked {
		if !rt.done {
			kept = append(kept, rt)
		}
	}
	t.ranked = kept
}

// truncate finalizes attempts still running at the horizon.
func (s *scheduler) truncate(horizon time.Duration) {
	for _, rt := range s.allRun {
		if rt.done {
			continue
		}
		rec := &s.schedule.Tasks[rt.recIdx]
		rec.End = horizon
		rec.Outcome = TaskTruncated
		rt.done = true
	}
	for i := range s.schedule.Jobs {
		rec := &s.schedule.Jobs[i]
		if !rec.Completed && !rec.Killed {
			rec.Finish = horizon
		}
	}
}

// String renders a compact summary, handy in tests and logs.
func (s *Schedule) String() string {
	useful, wasted := s.ContainerSeconds()
	return fmt.Sprintf("schedule{jobs=%d tasks=%d preempted=%d useful=%s wasted=%s horizon=%s}",
		len(s.Jobs), len(s.Tasks), s.PreemptionCount("", nil), useful, wasted, s.Horizon)
}

package workload

import (
	"bytes"
	"testing"
	"time"
)

func mkJob(id string) JobSpec {
	return NewMapReduceJob(id, "T", 0,
		[]time.Duration{10 * time.Second, 20 * time.Second},
		[]time.Duration{30 * time.Second})
}

func TestNewMapReduceJobShape(t *testing.T) {
	j := mkJob("j1")
	if len(j.Stages) != 2 {
		t.Fatalf("stages = %d, want 2", len(j.Stages))
	}
	if len(j.Stages[0].Tasks) != 2 || j.Stages[0].Tasks[0].Kind != Map {
		t.Fatalf("map stage wrong: %+v", j.Stages[0])
	}
	if len(j.Stages[1].Tasks) != 1 || j.Stages[1].Tasks[0].Kind != Reduce {
		t.Fatalf("reduce stage wrong: %+v", j.Stages[1])
	}
	if got := j.Stages[1].DependsOn; len(got) != 1 || got[0] != 0 {
		t.Fatalf("reduce deps = %v, want [0]", got)
	}
}

func TestMapOnlyJob(t *testing.T) {
	j := NewMapReduceJob("m", "T", 0, []time.Duration{time.Second}, nil)
	if len(j.Stages) != 1 {
		t.Fatalf("map-only job has %d stages", len(j.Stages))
	}
	if err := j.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTaskCountAndTotalWork(t *testing.T) {
	j := mkJob("j1")
	if j.TaskCount() != 3 {
		t.Fatalf("TaskCount = %d, want 3", j.TaskCount())
	}
	if j.TotalWork() != 60*time.Second {
		t.Fatalf("TotalWork = %v, want 60s", j.TotalWork())
	}
}

func TestCriticalPath(t *testing.T) {
	j := mkJob("j1")
	// max map (20s) + max reduce (30s).
	if got := j.CriticalPath(); got != 50*time.Second {
		t.Fatalf("CriticalPath = %v, want 50s", got)
	}
	mo := NewMapReduceJob("m", "T", 0, []time.Duration{5 * time.Second, 7 * time.Second}, nil)
	if got := mo.CriticalPath(); got != 7*time.Second {
		t.Fatalf("map-only CriticalPath = %v, want 7s", got)
	}
}

func TestCriticalPathDiamondDAG(t *testing.T) {
	sec := func(n int) []TaskSpec {
		return []TaskSpec{{Kind: Map, Duration: time.Duration(n) * time.Second}}
	}
	j := JobSpec{
		ID: "d", Tenant: "T",
		Stages: []StageSpec{
			{Tasks: sec(10)},                        // 0
			{DependsOn: []int{0}, Tasks: sec(1)},    // 1: 11
			{DependsOn: []int{0}, Tasks: sec(20)},   // 2: 30
			{DependsOn: []int{1, 2}, Tasks: sec(5)}, // 3: 35
		},
	}
	if err := j.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := j.CriticalPath(); got != 35*time.Second {
		t.Fatalf("CriticalPath = %v, want 35s", got)
	}
}

func TestValidateRejectsBadJobs(t *testing.T) {
	cases := []struct {
		name string
		job  JobSpec
	}{
		{"empty id", JobSpec{Tenant: "T", Stages: []StageSpec{{Tasks: []TaskSpec{{Duration: 1}}}}}},
		{"empty tenant", JobSpec{ID: "x", Stages: []StageSpec{{Tasks: []TaskSpec{{Duration: 1}}}}}},
		{"no stages", JobSpec{ID: "x", Tenant: "T"}},
		{"empty stage", JobSpec{ID: "x", Tenant: "T", Stages: []StageSpec{{}}}},
		{"zero duration", JobSpec{ID: "x", Tenant: "T", Stages: []StageSpec{{Tasks: []TaskSpec{{Duration: 0}}}}}},
		{"forward dep", JobSpec{ID: "x", Tenant: "T", Stages: []StageSpec{
			{DependsOn: []int{1}, Tasks: []TaskSpec{{Duration: 1}}},
			{Tasks: []TaskSpec{{Duration: 1}}},
		}}},
		{"out of range dep", JobSpec{ID: "x", Tenant: "T", Stages: []StageSpec{
			{DependsOn: []int{5}, Tasks: []TaskSpec{{Duration: 1}}},
		}}},
	}
	for _, c := range cases {
		if err := c.job.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid job", c.name)
		}
	}
}

func TestTraceSortStableByName(t *testing.T) {
	tr := &Trace{Jobs: []JobSpec{
		{ID: "b", Tenant: "T", Submit: 5},
		{ID: "a", Tenant: "T", Submit: 5},
		{ID: "c", Tenant: "T", Submit: 1},
	}}
	tr.Sort()
	gotIDs := []string{tr.Jobs[0].ID, tr.Jobs[1].ID, tr.Jobs[2].ID}
	want := []string{"c", "a", "b"}
	for i := range want {
		if gotIDs[i] != want[i] {
			t.Fatalf("sorted order %v, want %v", gotIDs, want)
		}
	}
}

func TestTraceValidateDuplicateID(t *testing.T) {
	tr := &Trace{Horizon: time.Hour, Jobs: []JobSpec{mkJob("dup"), mkJob("dup")}}
	if err := tr.Validate(); err == nil {
		t.Fatal("duplicate job IDs accepted")
	}
}

func TestTraceValidateHorizon(t *testing.T) {
	j := mkJob("late")
	j.Submit = 2 * time.Hour
	tr := &Trace{Horizon: time.Hour, Jobs: []JobSpec{j}}
	if err := tr.Validate(); err == nil {
		t.Fatal("submit past horizon accepted")
	}
}

func TestTraceTenantsAndByTenant(t *testing.T) {
	a := mkJob("a")
	b := mkJob("b")
	b.Tenant = "U"
	tr := &Trace{Horizon: time.Hour, Jobs: []JobSpec{a, b}}
	tenants := tr.Tenants()
	if len(tenants) != 2 || tenants[0] != "T" || tenants[1] != "U" {
		t.Fatalf("Tenants = %v", tenants)
	}
	if jobs := tr.ByTenant("U"); len(jobs) != 1 || jobs[0].ID != "b" {
		t.Fatalf("ByTenant(U) = %v", jobs)
	}
}

func TestTraceWindowRebasesTimes(t *testing.T) {
	j1 := mkJob("j1")
	j1.Submit = 10 * time.Minute
	j1.Deadline = 30 * time.Minute
	j2 := mkJob("j2")
	j2.Submit = 70 * time.Minute
	tr := &Trace{Horizon: 2 * time.Hour, Jobs: []JobSpec{j1, j2}}
	win := tr.Window(5*time.Minute, 65*time.Minute)
	if len(win.Jobs) != 1 {
		t.Fatalf("window has %d jobs, want 1", len(win.Jobs))
	}
	if win.Jobs[0].Submit != 5*time.Minute {
		t.Fatalf("rebased submit = %v, want 5m", win.Jobs[0].Submit)
	}
	if win.Jobs[0].Deadline != 25*time.Minute {
		t.Fatalf("rebased deadline = %v, want 25m", win.Jobs[0].Deadline)
	}
	if win.Horizon != time.Hour {
		t.Fatalf("window horizon = %v, want 1h", win.Horizon)
	}
}

func TestMergeTraces(t *testing.T) {
	a := &Trace{Horizon: time.Hour, Jobs: []JobSpec{mkJob("a")}}
	bJob := mkJob("b")
	bJob.Submit = time.Minute
	b := &Trace{Horizon: 2 * time.Hour, Jobs: []JobSpec{bJob}}
	m := Merge("merged", a, b)
	if m.Horizon != 2*time.Hour {
		t.Fatalf("merged horizon = %v", m.Horizon)
	}
	if len(m.Jobs) != 2 || m.Jobs[0].ID != "a" {
		t.Fatalf("merged jobs = %v", m.Jobs)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	j := mkJob("j1")
	j.Deadline = time.Hour
	tr := &Trace{Name: "rt", Horizon: 2 * time.Hour, Jobs: []JobSpec{j}}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "rt" || got.Horizon != 2*time.Hour || len(got.Jobs) != 1 {
		t.Fatalf("round trip = %+v", got)
	}
	if got.Jobs[0].Deadline != time.Hour || got.Jobs[0].TaskCount() != 3 {
		t.Fatalf("job fields lost: %+v", got.Jobs[0])
	}
}

func TestReadJSONRejectsInvalid(t *testing.T) {
	if _, err := ReadJSON(bytes.NewBufferString(`{"jobs":[{"id":"","tenant":"t","stages":[]}]}`)); err == nil {
		t.Fatal("invalid trace accepted")
	}
	if _, err := ReadJSON(bytes.NewBufferString(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestSaveLoadFile(t *testing.T) {
	tr := &Trace{Name: "f", Horizon: time.Hour, Jobs: []JobSpec{mkJob("j")}}
	path := t.TempDir() + "/trace.json"
	if err := tr.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "f" || len(got.Jobs) != 1 {
		t.Fatalf("loaded = %+v", got)
	}
	if _, err := LoadFile(path + ".missing"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestTaskKindString(t *testing.T) {
	if Map.String() != "map" || Reduce.String() != "reduce" {
		t.Fatal("TaskKind strings wrong")
	}
	if TaskKind(7).String() == "" {
		t.Fatal("unknown kind should print")
	}
}

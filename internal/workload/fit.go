package workload

import (
	"fmt"
	"math"
	"time"
)

// Fit estimates a TenantProfile from a tenant's jobs in a trace — the
// "statistical model ... trained from historical traces" of §7.1. Task
// durations are fitted as lognormal (log-moment matching), task counts as
// lognormal, and arrivals as a homogeneous Poisson process over the trace
// horizon. Deadline factors are fitted from observed deadline/ideal ratios
// when deadlines are present.
func Fit(trace *Trace, tenant string) (TenantProfile, error) {
	jobs := trace.ByTenant(tenant)
	if len(jobs) == 0 {
		return TenantProfile{}, fmt.Errorf("workload: no jobs for tenant %q", tenant)
	}
	horizon := trace.Horizon
	if horizon <= 0 {
		for i := range jobs {
			if jobs[i].Submit > horizon {
				horizon = jobs[i].Submit
			}
		}
		if horizon <= 0 {
			horizon = time.Hour
		}
	}

	var nMaps, nReds, mapSecs, redSecs, dlFactors []float64
	for i := range jobs {
		j := &jobs[i]
		maps, reds := 0, 0
		for _, s := range j.Stages {
			for _, t := range s.Tasks {
				if t.Kind == Map {
					maps++
					mapSecs = append(mapSecs, t.Duration.Seconds())
				} else {
					reds++
					redSecs = append(redSecs, t.Duration.Seconds())
				}
			}
		}
		nMaps = append(nMaps, float64(maps))
		nReds = append(nReds, float64(reds))
		if j.Deadline > j.Submit {
			ideal := idealDuration(j, 10)
			if ideal > 0 {
				dlFactors = append(dlFactors, float64(j.Deadline-j.Submit)/float64(ideal))
			}
		}
	}

	p := TenantProfile{
		Name:        tenant,
		JobsPerHour: float64(len(jobs)) / horizon.Hours(),
		NumMaps:     fitLognormal(nMaps),
		MapSeconds:  fitLognormal(mapSecs),
	}
	if len(redSecs) > 0 {
		p.NumReduces = fitLognormal(nReds)
		p.ReduceSeconds = fitLognormal(redSecs)
	}
	if len(dlFactors) > 0 {
		lo, hi := minMax(dlFactors)
		p.DeadlineFactor = Uniform{Lo: lo, Hi: hi}
	}
	return p, nil
}

// FitAll fits a profile for every tenant in the trace.
func FitAll(trace *Trace) ([]TenantProfile, error) {
	var out []TenantProfile
	for _, tenant := range trace.Tenants() {
		p, err := Fit(trace, tenant)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// fitLognormal matches log-moments, guarding degenerate inputs. Zeros are
// floored to a small positive value so map-only jobs (zero reduces) do not
// blow up the log.
func fitLognormal(values []float64) Dist {
	if len(values) == 0 {
		return Constant(0)
	}
	var sum, sumSq float64
	n := 0
	for _, v := range values {
		if v < 1e-6 {
			v = 1e-6
		}
		l := math.Log(v)
		sum += l
		sumSq += l * l
		n++
	}
	mu := sum / float64(n)
	variance := sumSq/float64(n) - mu*mu
	if variance < 0 {
		variance = 0
	}
	sigma := math.Sqrt(variance)
	if sigma < 1e-9 {
		return Constant(math.Exp(mu))
	}
	lo, hi := minMax(values)
	return Clamped{D: Lognormal{Mu: mu, Sigma: sigma}, Lo: lo, Hi: hi * 2}
}

func minMax(values []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, v := range values {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	return lo, hi
}

// Command tempolint statically enforces the repo's determinism,
// pool-safety, allocation, and event-order invariants — the properties
// the golden suite, the pooled-determinism sweep, and the benchmark
// gates otherwise only verify at runtime. It is a multichecker over the
// four analyzers in internal/analysis/...; see each package's doc for
// the invariant it encodes.
//
// Usage:
//
//	tempolint [flags] [packages]
//
//	-analyzers list   comma-separated subset to run (default: all)
//	-noignore         report findings even where a tempolint:ignore
//	                  matches (nightly drift mode); suppressed findings
//	                  are annotated with their recorded reason
//	-list             print the analyzers and exit
//
// Packages default to ./... resolved against the enclosing module.
// Exit status is 1 when any unsuppressed finding (or, with -noignore,
// any finding at all) is reported, 2 on usage or load errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"tempo/internal/analysis"
	"tempo/internal/analysis/allocdiscipline"
	"tempo/internal/analysis/determinism"
	"tempo/internal/analysis/load"
	"tempo/internal/analysis/ordercontract"
	"tempo/internal/analysis/poolsafety"
)

// All is the full tempolint suite, in reporting order.
var All = []*analysis.Analyzer{
	determinism.Analyzer,
	poolsafety.Analyzer,
	allocdiscipline.Analyzer,
	ordercontract.Analyzer,
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tempolint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		noignore = fs.Bool("noignore", false, "report findings even where a tempolint:ignore matches")
		names    = fs.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
		list     = fs.Bool("list", false, "print the analyzers and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range All {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	suite := All
	if *names != "" {
		suite = nil
		for _, n := range strings.Split(*names, ",") {
			n = strings.TrimSpace(n)
			found := false
			for _, a := range All {
				if a.Name == n {
					suite = append(suite, a)
					found = true
				}
			}
			if !found {
				fmt.Fprintf(stderr, "tempolint: unknown analyzer %q\n", n)
				return 2
			}
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader, err := load.New("")
	if err != nil {
		fmt.Fprintf(stderr, "tempolint: %v\n", err)
		return 2
	}
	paths, err := loader.Expand(patterns)
	if err != nil {
		fmt.Fprintf(stderr, "tempolint: %v\n", err)
		return 2
	}
	diags, err := analysis.Run(loader, paths, suite, analysis.Options{
		// Unused-ignore hygiene only makes sense when every analyzer an
		// ignore could name actually ran.
		ReportUnusedIgnores: len(suite) == len(All),
	})
	if err != nil {
		fmt.Fprintf(stderr, "tempolint: %v\n", err)
		return 2
	}

	wd, _ := os.Getwd()
	failures := 0
	for _, d := range diags {
		if d.Suppressed && !*noignore {
			continue
		}
		failures++
		pos := d.Pos
		if rel, err := filepath.Rel(wd, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			pos.Filename = rel
		}
		if d.Suppressed {
			fmt.Fprintf(stdout, "%s:%d:%d: [%s] %s (suppressed: %s)\n", pos.Filename, pos.Line, pos.Column, d.Analyzer, d.Message, d.Reason)
		} else {
			fmt.Fprintf(stdout, "%s:%d:%d: [%s] %s\n", pos.Filename, pos.Line, pos.Column, d.Analyzer, d.Message)
		}
	}
	if failures > 0 {
		fmt.Fprintf(stderr, "tempolint: %d finding(s)\n", failures)
		return 1
	}
	return 0
}

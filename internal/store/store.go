package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"tempo/internal/cluster"
	"tempo/internal/scenario"
)

// On-disk layout:
//
//	<root>/clusters/<escaped-id>/spec.json      the scenario (create-time, immutable)
//	<root>/clusters/<escaped-id>/snapshot.json  newest control-loop snapshot (atomic replace)
//	<root>/clusters/<escaped-id>/wal.log        one CRC-framed record per committed tick
//
// Cluster ids come from the HTTP API, so directory names use an injective
// percent-escaping of the id; everything outside [A-Za-z0-9_-] (including
// '.', so "." and ".." cannot appear) is encoded as %XX.

// ErrExists is returned when creating a cluster whose id already has
// on-disk state.
var ErrExists = errors.New("store: cluster already exists")

// ErrNotFound is returned for operations naming a cluster with no on-disk
// state.
var ErrNotFound = errors.New("store: unknown cluster")

// Options tune every cluster WAL's group commit; see WALOptions.
type Options struct {
	SyncInterval time.Duration
	SyncBytes    int
	// Stall, when non-nil, runs before every WAL fsync (chaos fault
	// injection; see WALOptions.Stall).
	Stall func()
}

// Store is the root handle on a tempod data directory.
type Store struct {
	dir  string
	opts Options

	mu       sync.Mutex
	clusters map[string]*ClusterStore
	closed   bool
}

// Open opens (creating if absent) the data directory and recovers every
// cluster in it: each WAL is scanned, torn tails are truncated, and the
// surviving state is ready for Load/Resume.
func Open(dir string, opts Options) (*Store, error) {
	root := filepath.Join(dir, "clusters")
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, err
	}
	s := &Store{dir: dir, opts: opts, clusters: map[string]*ClusterStore{}}
	entries, err := os.ReadDir(root)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		id, err := unescapeID(e.Name())
		if err != nil {
			return nil, fmt.Errorf("store: alien directory %q in %s: %w", e.Name(), root, err)
		}
		cs, err := openCluster(id, filepath.Join(root, e.Name()), opts)
		if err != nil {
			return nil, fmt.Errorf("store: recovering cluster %s: %w", id, err)
		}
		s.clusters[id] = cs
	}
	return s, nil
}

// Dir returns the data directory root.
func (s *Store) Dir() string { return s.dir }

// IDs returns the ids with on-disk state, sorted.
func (s *Store) IDs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.clusters))
	for id := range s.clusters {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Get returns the cluster's store, or ErrNotFound.
func (s *Store) Get(id string) (*ClusterStore, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cs, ok := s.clusters[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return cs, nil
}

// Create makes the cluster's directory, persists its spec, and opens an
// empty WAL.
func (s *Store) Create(id string, spec *scenario.Spec) (*ClusterStore, error) {
	if id == "" {
		return nil, errors.New("store: empty cluster id")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, errors.New("store: closed")
	}
	if _, ok := s.clusters[id]; ok {
		return nil, fmt.Errorf("%w: %s", ErrExists, id)
	}
	dir := filepath.Join(s.dir, "clusters", escapeID(id))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	raw, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := writeFileAtomic(filepath.Join(dir, "spec.json"), append(raw, '\n')); err != nil {
		return nil, err
	}
	cs, err := openCluster(id, dir, s.opts)
	if err != nil {
		return nil, err
	}
	s.clusters[id] = cs
	return cs, nil
}

// Delete closes the cluster's WAL and removes its on-disk state.
func (s *Store) Delete(id string) error {
	s.mu.Lock()
	cs, ok := s.clusters[id]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return s.DeleteCluster(cs)
}

// DeleteCluster removes cs's on-disk state — but only while cs still
// backs its id. A teardown queued behind a delete+re-create of the same
// id must remove the old incarnation's state, never the new one's.
func (s *Store) DeleteCluster(cs *ClusterStore) error {
	s.mu.Lock()
	cur, ok := s.clusters[cs.id]
	if ok && cur == cs {
		delete(s.clusters, cs.id)
	} else {
		ok = false
	}
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, cs.id)
	}
	cs.closeWAL()
	if err := os.RemoveAll(cs.dir); err != nil {
		return err
	}
	return syncDir(filepath.Dir(cs.dir))
}

// Close flushes and closes every cluster WAL.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var err error
	for _, cs := range s.clusters {
		if cerr := cs.closeWAL(); err == nil {
			err = cerr
		}
	}
	return err
}

// ClusterStore is one cluster's durable state.
type ClusterStore struct {
	id   string
	dir  string
	spec *scenario.Spec
	opts Options

	mu  sync.Mutex
	wal *WAL
	// recovered holds the WAL payloads that survived the open-time scan;
	// Schedules decodes them on the recovery path.
	recovered [][]byte
	// ticks is the next tick index AppendTick accepts: recovered records
	// plus live appends.
	ticks int
	enc   []byte
}

func openCluster(id, dir string, opts Options) (*ClusterStore, error) {
	raw, err := os.ReadFile(filepath.Join(dir, "spec.json"))
	if err != nil {
		return nil, err
	}
	spec, err := scenario.Load(strings.NewReader(string(raw)))
	if err != nil {
		return nil, fmt.Errorf("spec.json: %w", err)
	}
	wal, records, err := OpenWAL(filepath.Join(dir, "wal.log"), WALOptions{
		SyncInterval: opts.SyncInterval,
		SyncBytes:    opts.SyncBytes,
		Stall:        opts.Stall,
	})
	if err != nil {
		return nil, err
	}
	return &ClusterStore{id: id, dir: dir, spec: spec, opts: opts, wal: wal, recovered: records, ticks: len(records)}, nil
}

// ID returns the cluster id.
func (c *ClusterStore) ID() string { return c.id }

// Spec returns the scenario persisted at create time.
func (c *ClusterStore) Spec() *scenario.Spec { return c.spec }

// Ticks returns the next tick index AppendTick accepts — equivalently,
// how many committed ticks the WAL holds.
func (c *ClusterStore) Ticks() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ticks
}

// AppendTick logs one committed tick's observed schedule. Ticks must
// arrive in order with no gaps — the WAL's record index is the tick
// index, which is what lets recovery pair records with control intervals.
func (c *ClusterStore) AppendTick(tick int, sched *cluster.Schedule) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if tick != c.ticks {
		return fmt.Errorf("store: cluster %s: appending tick %d, expected %d", c.id, tick, c.ticks)
	}
	c.enc = EncodeTick(c.enc[:0], tick, sched)
	if err := c.wal.Append(c.enc); err != nil {
		return err
	}
	c.ticks++
	return nil
}

// Schedules decodes the recovered WAL records into the observed
// schedules, oldest first — the WAL half of the durable state
// scenario.Resume consumes. It reflects the log as of Open; live appends
// come from the running session, which already has them.
func (c *ClusterStore) Schedules() ([]*cluster.Schedule, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*cluster.Schedule, 0, len(c.recovered))
	for i, payload := range c.recovered {
		tick, sched, err := DecodeTick(payload)
		if err != nil {
			return nil, fmt.Errorf("store: cluster %s: wal record %d: %w", c.id, i, err)
		}
		if tick != i {
			return nil, fmt.Errorf("store: cluster %s: wal record %d carries tick %d", c.id, i, tick)
		}
		out = append(out, sched)
	}
	return out, nil
}

// WriteSnapshot atomically replaces the cluster's snapshot.
func (c *ClusterStore) WriteSnapshot(snap *scenario.Snapshot) error {
	raw, err := json.Marshal(snap)
	if err != nil {
		return err
	}
	return writeFileAtomic(filepath.Join(c.dir, "snapshot.json"), raw)
}

// LoadSnapshot returns the newest snapshot, or (nil, nil) when none has
// been written. A snapshot that fails to parse is discarded (recovery
// falls back to a full WAL re-drive) rather than failing recovery.
func (c *ClusterStore) LoadSnapshot() (*scenario.Snapshot, error) {
	raw, err := os.ReadFile(filepath.Join(c.dir, "snapshot.json"))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var snap scenario.Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		return nil, nil
	}
	return &snap, nil
}

// Sync forces the WAL's dirty tail to stable storage.
func (c *ClusterStore) Sync() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.wal.Sync()
}

// WALSize returns the WAL's byte length (metrics, benches).
func (c *ClusterStore) WALSize() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.wal.Size()
}

// InjectFault arms a crash fault point on the cluster's WAL: writes stop,
// torn, once the file reaches limit bytes. Chaos and recovery tests only.
func (c *ClusterStore) InjectFault(limit int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.wal.mu.Lock()
	defer c.wal.mu.Unlock()
	c.wal.opts.Fault = &FaultPoint{Limit: limit, written: c.wal.size}
}

// closeWAL flushes and closes the current WAL handle under the cluster
// lock (Reopen can swap the handle concurrently with teardown).
func (c *ClusterStore) closeWAL() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.wal.Close()
}

// Reopen discards the cluster's WAL handle — broken by a write error or
// an injected fault — and re-opens the file from disk: the log is
// re-scanned, any torn tail truncated away, the recovered record set
// refreshed, and any armed fault point cleared. It is the store half of
// degraded-mode recovery: success means the durable prefix is readable
// and appendable again, so the service can resume the cluster from it.
func (c *ClusterStore) Reopen() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.wal.Close(); err != nil {
		return err
	}
	wal, records, err := OpenWAL(filepath.Join(c.dir, "wal.log"), WALOptions{
		SyncInterval: c.opts.SyncInterval,
		SyncBytes:    c.opts.SyncBytes,
		Stall:        c.opts.Stall,
	})
	if err != nil {
		return err
	}
	c.wal = wal
	c.recovered = records
	c.ticks = len(records)
	return nil
}

// writeFileAtomic replaces path with data via tmp-write + fsync + rename
// + directory fsync, so a crash leaves either the old file or the new one
// — never a torn mix.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return syncDir(dir)
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// escapeID maps a cluster id to a filesystem-safe directory name,
// injectively: bytes outside [A-Za-z0-9_-] become %XX ('%' included, so
// decoding is unambiguous; '.' included, so "." and ".." cannot occur).
func escapeID(id string) string {
	var b strings.Builder
	for i := 0; i < len(id); i++ {
		ch := id[i]
		if ch >= 'a' && ch <= 'z' || ch >= 'A' && ch <= 'Z' || ch >= '0' && ch <= '9' || ch == '_' || ch == '-' {
			b.WriteByte(ch)
		} else {
			fmt.Fprintf(&b, "%%%02x", ch)
		}
	}
	return b.String()
}

func unescapeID(name string) (string, error) {
	var b strings.Builder
	for i := 0; i < len(name); i++ {
		ch := name[i]
		if ch != '%' {
			b.WriteByte(ch)
			continue
		}
		if i+2 >= len(name) {
			return "", fmt.Errorf("truncated escape in %q", name)
		}
		var v int
		if _, err := fmt.Sscanf(name[i+1:i+3], "%02x", &v); err != nil {
			return "", fmt.Errorf("bad escape in %q", name)
		}
		b.WriteByte(byte(v))
		i += 2
	}
	return b.String(), nil
}

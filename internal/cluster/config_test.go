package cluster

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"tempo/internal/linalg"
)

func TestConfigValidate(t *testing.T) {
	good := Config{TotalContainers: 10, Tenants: map[string]TenantConfig{
		"A": {Weight: 1, MinShare: 2, MaxShare: 8, SharePreemptTimeout: time.Minute},
	}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []Config{
		{TotalContainers: 0},
		{TotalContainers: 10, Tenants: map[string]TenantConfig{"A": {Weight: 0}}},
		{TotalContainers: 10, Tenants: map[string]TenantConfig{"A": {Weight: 1, MinShare: -1}}},
		{TotalContainers: 10, Tenants: map[string]TenantConfig{"A": {Weight: 1, MinShare: 5, MaxShare: 3}}},
		{TotalContainers: 10, Tenants: map[string]TenantConfig{"A": {Weight: 1, SharePreemptTimeout: -time.Second}}},
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestConfigTenantFallback(t *testing.T) {
	c := Config{TotalContainers: 10, Tenants: map[string]TenantConfig{"A": {Weight: 5}}}
	if got := c.Tenant("A").Weight; got != 5 {
		t.Fatalf("Tenant(A).Weight = %v", got)
	}
	if got := c.Tenant("missing"); got != DefaultTenantConfig {
		t.Fatalf("fallback = %+v", got)
	}
}

func TestConfigCloneIndependent(t *testing.T) {
	c := Config{TotalContainers: 10, Tenants: map[string]TenantConfig{"A": {Weight: 1}}}
	d := c.Clone()
	d.Tenants["A"] = TenantConfig{Weight: 9}
	if c.Tenants["A"].Weight != 1 {
		t.Fatal("Clone shares tenant map")
	}
}

func TestSpaceDimAndOrder(t *testing.T) {
	s := DefaultSpace(100, []string{"B", "A"})
	if s.Dim() != 10 {
		t.Fatalf("Dim = %d, want 10", s.Dim())
	}
	if s.TenantNames[0] != "A" {
		t.Fatal("tenant names not sorted")
	}
}

func TestSpaceEncodeDecodeRoundTrip(t *testing.T) {
	s := DefaultSpace(100, []string{"A", "B"})
	cfg := Config{TotalContainers: 100, Tenants: map[string]TenantConfig{
		"A": {Weight: 2, MinShare: 10, MaxShare: 60, SharePreemptTimeout: 5 * time.Minute, MinSharePreemptTimeout: time.Minute},
		"B": {Weight: 0.5, MinShare: 0, MaxShare: 100, SharePreemptTimeout: time.Minute, MinSharePreemptTimeout: 30 * time.Second},
	}}
	x := s.Encode(cfg)
	back := s.Decode(x)
	for _, name := range []string{"A", "B"} {
		orig, got := cfg.Tenants[name], back.Tenants[name]
		if ratio := got.Weight / orig.Weight; ratio < 0.95 || ratio > 1.05 {
			t.Errorf("%s weight %v -> %v", name, orig.Weight, got.Weight)
		}
		if got.MinShare != orig.MinShare {
			t.Errorf("%s min share %d -> %d", name, orig.MinShare, got.MinShare)
		}
		if got.MaxShare != orig.MaxShare {
			t.Errorf("%s max share %d -> %d", name, orig.MaxShare, got.MaxShare)
		}
		dt := got.SharePreemptTimeout - orig.SharePreemptTimeout
		if dt < -time.Second || dt > time.Second {
			t.Errorf("%s share timeout %v -> %v", name, orig.SharePreemptTimeout, got.SharePreemptTimeout)
		}
	}
}

func TestSpaceDecodeAlwaysValid(t *testing.T) {
	s := DefaultSpace(50, []string{"A", "B", "C"})
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := linalg.NewVector(s.Dim())
		for i := range x {
			x[i] = rng.Float64()*2 - 0.5 // intentionally out of [0,1] sometimes
		}
		cfg := s.Decode(x)
		return cfg.Validate() == nil && cfg.TotalContainers == 50
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSpaceEncodeMissingTenantUsesDefault(t *testing.T) {
	s := DefaultSpace(10, []string{"A"})
	x := s.Encode(Config{TotalContainers: 10})
	cfg := s.Decode(x)
	if cfg.Tenants["A"].Weight <= 0 {
		t.Fatal("default encode produced invalid weight")
	}
}

func TestSpaceDecodePanicsOnWrongDim(t *testing.T) {
	s := DefaultSpace(10, []string{"A"})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Decode(linalg.NewVector(3))
}

func TestNormalizeClamps(t *testing.T) {
	if normalize(5, 0, 10) != 0.5 {
		t.Fatal("normalize midpoint")
	}
	if normalize(-5, 0, 10) != 0 || normalize(15, 0, 10) != 1 {
		t.Fatal("normalize clamp")
	}
	if normalize(1, 5, 5) != 0 {
		t.Fatal("degenerate range")
	}
	if denormalize(-1, 0, 10) != 0 || denormalize(2, 0, 10) != 10 {
		t.Fatal("denormalize clamp")
	}
}

func TestTaskOutcomeString(t *testing.T) {
	want := map[TaskOutcome]string{
		TaskFinished:  "finished",
		TaskPreempted: "preempted",
		TaskFailed:    "failed",
		TaskKilled:    "killed",
		TaskTruncated: "truncated",
	}
	for o, s := range want {
		if o.String() != s {
			t.Errorf("%d.String() = %q, want %q", o, o.String(), s)
		}
	}
	if TaskOutcome(42).String() != "unknown" {
		t.Fatal("unknown outcome")
	}
}

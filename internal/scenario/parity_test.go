package scenario_test

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"tempo/internal/cluster"
	"tempo/internal/pald"
	"tempo/internal/scenario"
)

// TestSearchParityExhaustiveVsPruned is the standing proof obligation
// behind the controller's incremental candidate search: every committed
// controller-enabled scenario must produce a byte-identical canonical
// report whether candidates are scored exhaustively or through the
// warm-started, bound-pruned search. Each scenario runs under two
// strategies: the default PALD optimizer (consumes prediction feedback,
// so pruning is disabled but cross-tick warm-starting is live) and
// RandomSearch (no feedback, so the QS lower bounds actually prune).
// The nightly workflow runs this sweep under -race.
func TestSearchParityExhaustiveVsPruned(t *testing.T) {
	for _, path := range specPaths(t) {
		path := path
		name := strings.TrimSuffix(filepath.Base(path), ".json")
		spec, err := scenario.LoadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if spec.Controller.Disabled {
			continue
		}
		for _, strat := range []string{"pald", "random-search"} {
			strat := strat
			t.Run(name+"/"+strat, func(t *testing.T) {
				t.Parallel()
				run := func(exhaustive bool) []byte {
					opts := scenario.Options{Parallelism: 2, ExhaustiveSearch: exhaustive}
					if strat == "random-search" {
						maxStep := spec.Controller.MaxStep
						if maxStep == 0 {
							maxStep = 0.2
						}
						dim := cluster.DefaultSpace(spec.Capacity, spec.TenantNames()).Dim()
						// A fresh identically seeded strategy per run: both
						// sides must consume the same proposal stream.
						rs, err := pald.NewRandomSearch(dim, maxStep, spec.Seed+7)
						if err != nil {
							t.Fatal(err)
						}
						opts.Strategy = rs
					}
					rep, err := scenario.Run(spec, opts)
					if err != nil {
						t.Fatal(err)
					}
					b, err := rep.MarshalCanonical()
					if err != nil {
						t.Fatal(err)
					}
					return b
				}
				pruned := run(false)
				exhaustive := run(true)
				if !bytes.Equal(pruned, exhaustive) {
					t.Errorf("incremental search changed the report:\n%s", firstDiff(pruned, exhaustive))
				}
			})
		}
	}
}

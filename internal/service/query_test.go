package service_test

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"testing"

	"tempo"
	"tempo/internal/service"
)

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	name string
	data string
}

// readSSE consumes a text/event-stream body until the server closes it,
// returning the named events in order (keepalive comments are dropped).
func readSSE(t *testing.T, resp *http.Response) []sseEvent {
	t.Helper()
	defer resp.Body.Close()
	var events []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur.name != "" || cur.data != "" {
				events = append(events, cur)
			}
			cur = sseEvent{}
		case strings.HasPrefix(line, ":"):
			// comment / keepalive
		case strings.HasPrefix(line, "event: "):
			cur.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading SSE stream: %v", err)
	}
	return events
}

// openStream subscribes to a cluster's query stream.
func openStream(t *testing.T, ctx context.Context, base, id, plan string) (*http.Response, error) {
	t.Helper()
	u := base + "/v1/clusters/" + id + "/query/stream?plan=" + url.QueryEscape(plan)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		t.Fatal(err)
	}
	return http.DefaultClient.Do(req)
}

// rowKey identifies a result row by its (window, group) cell so stream
// deltas can be replayed last-write-wins against the one-shot result.
func rowKey(r tempo.QueryRow) string {
	keys := make([]string, 0, len(r.Group))
	for k := range r.Group {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	fmt.Fprintf(&b, "%v|%v", r.WindowFromSeconds, r.WindowToSeconds)
	for _, k := range keys {
		fmt.Fprintf(&b, "|%s=%s", k, r.Group[k])
	}
	return b.String()
}

func sameRow(a, b tempo.QueryRow) bool {
	if a.Tick != b.Tick || a.TimeSeconds != b.TimeSeconds ||
		len(a.Strings) != len(b.Strings) || len(a.Values) != len(b.Values) {
		return false
	}
	for k, v := range a.Strings {
		if b.Strings[k] != v {
			return false
		}
	}
	for k, v := range a.Values {
		if math.Float64bits(b.Values[k]) != math.Float64bits(v) {
			return false
		}
	}
	return true
}

// TestQueryStreamMatchesOneShot is the streaming acceptance criterion: a
// standing SSE subscription replayed tick by tick must reconstruct
// exactly the one-shot query over the same window — for a raw plan the
// concatenated deltas ARE the one-shot rows, and for an aggregate plan
// replaying deltas last-write-wins per (window, group) cell converges to
// the one-shot cells bit for bit.
func TestQueryStreamMatchesOneShot(t *testing.T) {
	_, ts := newTestServer(t, service.Config{})
	spec := smallSpec(t, 0)
	createCluster(t, ts.URL, "c1", spec)

	plans := map[string]string{
		"raw": `{"version":1,"source":"tasks","ops":[
			{"op":"filter","field":"outcome","eq":"finished"},
			{"op":"map","fields":["tenant","duration_seconds"]}]}`,
		"agg": `{"version":1,"source":"jobs","ops":[
			{"op":"group_by","by":["tenant"]},
			{"op":"window","size":"tick"},
			{"op":"aggregate","aggs":[{"fn":"count","as":"jobs"},{"fn":"avg","field":"response_seconds"}]}]}`,
	}

	// Open the subscriptions BEFORE any tick runs, so the streams observe
	// every commit live via the tick notification path.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	streams := map[string]*http.Response{}
	for name, plan := range plans {
		resp, err := openStream(t, ctx, ts.URL, "c1", plan)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("stream %s: %d", name, resp.StatusCode)
		}
		streams[name] = resp
	}

	for i := 0; i < spec.Iterations; i++ {
		if code, body := do(t, "POST", ts.URL+"/v1/clusters/c1/tick", ""); code != http.StatusOK {
			t.Fatalf("tick %d: %d: %s", i, code, body)
		}
	}

	for name, resp := range streams {
		events := readSSE(t, resp)
		if len(events) == 0 || events[len(events)-1].name != "done" {
			t.Fatalf("stream %s: want terminal done event, got %d events (last: %+v)",
				name, len(events), events[len(events)-1])
		}
		var done service.StreamDone
		if err := json.Unmarshal([]byte(events[len(events)-1].data), &done); err != nil {
			t.Fatal(err)
		}
		if done.Ticks != spec.Iterations {
			t.Fatalf("stream %s: done after %d ticks, want %d", name, done.Ticks, spec.Iterations)
		}

		code, body := do(t, "POST", ts.URL+"/v1/clusters/c1/query", plans[name])
		if code != http.StatusOK {
			t.Fatalf("one-shot %s: %d: %s", name, code, body)
		}
		var oneShot tempo.QueryResult
		if err := json.Unmarshal(body, &oneShot); err != nil {
			t.Fatal(err)
		}

		var streamed []tempo.QueryRow
		lastTick := -1
		for _, ev := range events[:len(events)-1] {
			if ev.name != "result" {
				t.Fatalf("stream %s: unexpected event %q (%s)", name, ev.name, ev.data)
			}
			var delta service.StreamResult
			if err := json.Unmarshal([]byte(ev.data), &delta); err != nil {
				t.Fatal(err)
			}
			if delta.Tick <= lastTick {
				t.Fatalf("stream %s: ticks out of order: %d after %d", name, delta.Tick, lastTick)
			}
			lastTick = delta.Tick
			streamed = append(streamed, delta.Rows...)
		}

		switch name {
		case "raw":
			// Raw rows are append-only: the concatenated deltas are the
			// one-shot rows, in the same order.
			if len(streamed) != len(oneShot.Rows) {
				t.Fatalf("raw: streamed %d rows, one-shot %d", len(streamed), len(oneShot.Rows))
			}
			for i := range streamed {
				if !sameRow(streamed[i], oneShot.Rows[i]) {
					t.Fatalf("raw row %d: stream %+v != one-shot %+v", i, streamed[i], oneShot.Rows[i])
				}
			}
		case "agg":
			replay := map[string]tempo.QueryRow{}
			for _, r := range streamed {
				replay[rowKey(r)] = r
			}
			if len(replay) != len(oneShot.Rows) {
				t.Fatalf("agg: replay has %d cells, one-shot %d", len(replay), len(oneShot.Rows))
			}
			for _, want := range oneShot.Rows {
				got, ok := replay[rowKey(want)]
				if !ok {
					t.Fatalf("agg: one-shot cell %+v never streamed", want)
				}
				if !sameRow(got, want) {
					t.Fatalf("agg cell %s: stream %+v != one-shot %+v", rowKey(want), got, want)
				}
			}
		}
	}
}

// TestQueryStreamLimit pins the subscription cap: streams beyond
// Config.MaxStreams are refused with 429 subscription_limit, and slots
// free up when a stream ends.
func TestQueryStreamLimit(t *testing.T) {
	_, ts := newTestServer(t, service.Config{MaxStreams: 1})
	createCluster(t, ts.URL, "c1", smallSpec(t, 0))
	plan := `{"version":1,"source":"events"}`

	ctx, cancel := context.WithCancel(context.Background())
	first, err := openStream(t, ctx, ts.URL, "c1", plan)
	if err != nil {
		t.Fatal(err)
	}
	defer first.Body.Close()
	if first.StatusCode != http.StatusOK {
		t.Fatalf("first stream: %d", first.StatusCode)
	}

	second, err := openStream(t, context.Background(), ts.URL, "c1", plan)
	if err != nil {
		t.Fatal(err)
	}
	body := json.NewDecoder(second.Body)
	var env service.ErrorEnvelope
	if second.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second stream: got %d, want 429", second.StatusCode)
	}
	if err := body.Decode(&env); err != nil || env.Code != service.CodeStreamLimit {
		t.Fatalf("second stream envelope: %+v (err %v), want code %q", env, err, service.CodeStreamLimit)
	}
	second.Body.Close()

	// Dropping the first stream frees its slot.
	cancel()
	for i := 0; ; i++ {
		resp, err := openStream(t, context.Background(), ts.URL, "c1", plan)
		if err != nil {
			t.Fatal(err)
		}
		ok := resp.StatusCode == http.StatusOK
		resp.Body.Close()
		if ok {
			break
		}
		if i > 100 {
			t.Fatal("slot never freed after the first stream disconnected")
		}
	}
}

// TestQueryStreamClusterDeleted pins the mid-stream teardown path: a
// standing subscription on a cluster that gets deleted ends with an
// "error" event carrying the not_found code.
func TestQueryStreamClusterDeleted(t *testing.T) {
	_, ts := newTestServer(t, service.Config{})
	createCluster(t, ts.URL, "c1", smallSpec(t, 0))

	resp, err := openStream(t, context.Background(), ts.URL, "c1", `{"version":1,"source":"events"}`)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream: %d", resp.StatusCode)
	}
	if code, _ := do(t, "DELETE", ts.URL+"/v1/clusters/c1", ""); code != http.StatusNoContent {
		t.Fatalf("delete: %d", code)
	}
	events := readSSE(t, resp)
	if len(events) == 0 {
		t.Fatal("stream ended without a terminal event")
	}
	last := events[len(events)-1]
	if last.name != "error" {
		t.Fatalf("want terminal error event, got %q (%s)", last.name, last.data)
	}
	var env service.ErrorEnvelope
	if err := json.Unmarshal([]byte(last.data), &env); err != nil || env.Code != service.CodeNotFound {
		t.Fatalf("error event data %s, want code %q", last.data, service.CodeNotFound)
	}
}

// TestQueryEndpointInvalidPlans locks the one-shot endpoint's failure
// envelope: malformed and out-of-bounds plans are 400 invalid_plan with
// the offending operator named.
func TestQueryEndpointInvalidPlans(t *testing.T) {
	_, ts := newTestServer(t, service.Config{})
	createCluster(t, ts.URL, "c1", smallSpec(t, 0))

	for _, tc := range []struct {
		name, plan, wantSub string
	}{
		{"unknown source", `{"version":1,"source":"nope"}`, "unknown source"},
		{"unknown op", `{"version":1,"source":"events","ops":[{"op":"join"}]}`, "ops[0]"},
		{"wrong version", `{"version":9,"source":"events"}`, "unsupported version 9"},
		{"group_by without aggregate", `{"version":1,"source":"jobs","ops":[{"op":"group_by","by":["tenant"]}]}`, "group_by"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			code, body := do(t, "POST", ts.URL+"/v1/clusters/c1/query", tc.plan)
			if code != http.StatusBadRequest {
				t.Fatalf("got %d (%s), want 400", code, body)
			}
			var env service.ErrorEnvelope
			if err := json.Unmarshal(body, &env); err != nil || env.Code != service.CodeInvalidPlan {
				t.Fatalf("envelope %s, want code %q", body, service.CodeInvalidPlan)
			}
			if !strings.Contains(env.Error, tc.wantSub) {
				t.Fatalf("error %q does not name the problem (%q)", env.Error, tc.wantSub)
			}
		})
	}
}

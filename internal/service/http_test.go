package service_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"tempo/internal/scenario"
	"tempo/internal/service"
)

// newTestServer starts an in-process control plane behind a real HTTP
// server; the cleanup tears both down.
func newTestServer(t *testing.T, cfg service.Config) (*service.Service, *httptest.Server) {
	t.Helper()
	svc, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return svc, ts
}

// smallSpec returns the builtin preset, optionally resized.
func smallSpec(t *testing.T, iterations int) *scenario.Spec {
	t.Helper()
	spec, err := service.SmallSpec()
	if err != nil {
		t.Fatal(err)
	}
	if iterations > 0 {
		spec.Iterations = iterations
	}
	return spec
}

// createCluster registers the spec under id and fails the test on any
// error.
func createCluster(t *testing.T, url, id string, spec *scenario.Spec) {
	t.Helper()
	raw, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(service.CreateRequest{ID: id, Spec: raw})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/clusters", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("creating %s: %s: %s", id, resp.Status, b)
	}
}

// do issues a request (JSON content type on bodies) and returns status
// code and body.
func do(t *testing.T, method, url string, body string) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// TestHandlerErrors locks the API's failure modes: malformed input is
// 400, unknown clusters are 404, conflicts are 409 — never a 200 with
// garbage, never a 500.
func TestHandlerErrors(t *testing.T) {
	_, ts := newTestServer(t, service.Config{})
	spec := smallSpec(t, 0)
	createCluster(t, ts.URL, "c1", spec)

	badSpec := `{"id":"bad","spec":{"name":"x","seed":1,"capacity":4,"interval_minutes":5,"iterations":1,"tenants":[],"slos":[{"metric":"utilization"}],"initial":{},"controller":{"disabled":true}}}`
	typoSpec := `{"id":"typo","spec":{"name":"x","seeed":1}}`
	cases := []struct {
		name   string
		method string
		path   string
		body   string
		want   int
	}{
		{"create: body not JSON", "POST", "/clusters", "{", http.StatusBadRequest},
		{"create: unknown request field", "POST", "/clusters", `{"identifier":"x"}`, http.StatusBadRequest},
		{"create: missing spec", "POST", "/clusters", `{"id":"x"}`, http.StatusBadRequest},
		{"create: spec fails validation", "POST", "/clusters", badSpec, http.StatusBadRequest},
		{"create: unknown spec field", "POST", "/clusters", typoSpec, http.StatusBadRequest},
		{"create: duplicate id", "POST", "/clusters", mustCreateBody(t, "c1", spec), http.StatusConflict},
		{"tick: unknown cluster", "POST", "/clusters/nope/tick", "", http.StatusNotFound},
		{"status: unknown cluster", "GET", "/clusters/nope", "", http.StatusNotFound},
		{"report: unknown cluster", "GET", "/clusters/nope/report", "", http.StatusNotFound},
		{"delete: unknown cluster", "DELETE", "/clusters/nope", "", http.StatusNotFound},
		{"qs: unknown cluster", "GET", "/clusters/nope/qs", "", http.StatusNotFound},
		{"qs: malformed from", "GET", "/clusters/c1/qs?from=yesterday", "", http.StatusBadRequest},
		{"qs: malformed to", "GET", "/clusters/c1/qs?to=1x", "", http.StatusBadRequest},
		{"qs: inverted window", "GET", "/clusters/c1/qs?from=10m&to=5m", "", http.StatusBadRequest},
		{"whatif: unknown cluster", "POST", "/clusters/nope/whatif", `{"candidates":[{}]}`, http.StatusNotFound},
		{"whatif: no candidates", "POST", "/clusters/c1/whatif", `{"candidates":[]}`, http.StatusBadRequest},
		{"whatif: unknown tenant", "POST", "/clusters/c1/whatif", `{"candidates":[{"ghost":{"weight":2}}]}`, http.StatusBadRequest},
		{"whatif: invalid weight", "POST", "/clusters/c1/whatif", `{"candidates":[{"deadline":{"weight":-1}}]}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, body := do(t, tc.method, ts.URL+tc.path, tc.body)
			if code != tc.want {
				t.Fatalf("%s %s: got %d, want %d (body: %s)", tc.method, tc.path, code, tc.want, body)
			}
			var e service.ErrorEnvelope
			if err := json.Unmarshal(body, &e); err != nil || e.Error == "" || e.Code == "" {
				t.Fatalf("error responses must carry the {\"error\", \"code\"} envelope, got: %s", body)
			}
		})
	}
}

// TestAPIVersioning pins the /v1 surface: versioned and legacy paths
// serve the same handlers, legacy responses carry a Deprecation header,
// versioned ones do not, POST bodies with the wrong media type are a 415
// with the unsupported_media_type code, and error envelopes expose stable
// machine-readable codes.
func TestAPIVersioning(t *testing.T) {
	_, ts := newTestServer(t, service.Config{})
	spec := smallSpec(t, 0)
	createCluster(t, ts.URL, "c1", spec)

	for _, path := range []string{"/healthz", "/clusters/c1", "/metrics"} {
		for _, prefix := range []string{"", "/v1"} {
			resp, err := http.Get(ts.URL + prefix + path)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("GET %s%s: %d", prefix, path, resp.StatusCode)
			}
			dep := resp.Header.Get("Deprecation")
			if prefix == "" && dep == "" {
				t.Fatalf("GET %s: legacy path must carry a Deprecation header", path)
			}
			if prefix == "/v1" && dep != "" {
				t.Fatalf("GET /v1%s: versioned path must not be deprecated", path)
			}
		}
	}

	// A POST body that does not declare application/json is a 415.
	resp, err := http.Post(ts.URL+"/v1/clusters/c1/whatif", "text/plain", strings.NewReader(`{"candidates":[{}]}`))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnsupportedMediaType {
		t.Fatalf("wrong media type: got %d (%s), want 415", resp.StatusCode, b)
	}
	var env service.ErrorEnvelope
	if err := json.Unmarshal(b, &env); err != nil || env.Code != service.CodeUnsupportedMedia {
		t.Fatalf("415 envelope: got %s, want code %q", b, service.CodeUnsupportedMedia)
	}

	// Envelope codes are stable discriminators per failure class.
	for _, tc := range []struct {
		method, path, body, code string
	}{
		{"GET", "/v1/clusters/nope", "", service.CodeNotFound},
		{"POST", "/v1/clusters", mustCreateBody(t, "c1", spec), service.CodeExists},
		{"POST", "/v1/clusters", "{", service.CodeBadRequest},
		{"POST", "/v1/clusters/c1/query", `{"version":1,"source":"nope"}`, service.CodeInvalidPlan},
	} {
		code, body := do(t, tc.method, ts.URL+tc.path, tc.body)
		if code/100 == 2 {
			t.Fatalf("%s %s: unexpected success", tc.method, tc.path)
		}
		var e service.ErrorEnvelope
		if err := json.Unmarshal(body, &e); err != nil || e.Code != tc.code {
			t.Fatalf("%s %s: envelope %s, want code %q", tc.method, tc.path, body, tc.code)
		}
	}
}

func mustCreateBody(t *testing.T, id string, spec *scenario.Spec) string {
	t.Helper()
	raw, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(service.CreateRequest{ID: id, Spec: raw})
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestLifecycleAndDeterminism drives one cluster tick by tick over HTTP
// and asserts the serving layer is a transparent wrapper: tick indices
// advance in order, ticking past the budget is a clean 409, the QS
// endpoint's full windows reproduce each interval's Observed vector, and
// the final report is byte-identical to the sequential scenario run.
func TestLifecycleAndDeterminism(t *testing.T) {
	_, ts := newTestServer(t, service.Config{})
	spec := smallSpec(t, 0)
	createCluster(t, ts.URL, "c1", spec)

	for i := 0; i < spec.Iterations; i++ {
		code, body := do(t, "POST", ts.URL+"/clusters/c1/tick", "")
		if code != http.StatusOK {
			t.Fatalf("tick %d: %d: %s", i, code, body)
		}
		var tick service.TickResponse
		if err := json.Unmarshal(body, &tick); err != nil {
			t.Fatal(err)
		}
		if tick.Iteration != i {
			t.Fatalf("tick %d reported iteration %d", i, tick.Iteration)
		}
		if wantDone := i == spec.Iterations-1; tick.Done != wantDone {
			t.Fatalf("tick %d: done=%v, want %v", i, tick.Done, wantDone)
		}
	}
	if code, body := do(t, "POST", ts.URL+"/clusters/c1/tick", ""); code != http.StatusConflict {
		t.Fatalf("tick past completion: got %d (%s), want 409", code, body)
	}

	code, body := do(t, "GET", ts.URL+"/clusters/c1/report", "")
	if code != http.StatusOK {
		t.Fatalf("report: %d: %s", code, body)
	}
	seq, err := scenario.Run(spec, scenario.Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	want, err := seq.MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, want) {
		t.Fatal("service report differs from sequential scenario.Run")
	}

	// Full-interval QS windows must reproduce the per-iteration Observed
	// vectors exactly — the accumulator path and the control loop's
	// evaluation are the same numbers.
	code, body = do(t, "GET", ts.URL+"/clusters/c1/qs", "")
	if code != http.StatusOK {
		t.Fatalf("qs: %d: %s", code, body)
	}
	var qs service.QSResponse
	if err := json.Unmarshal(body, &qs); err != nil {
		t.Fatal(err)
	}
	if len(qs.Windows) != spec.Iterations {
		t.Fatalf("qs returned %d windows, want %d", len(qs.Windows), spec.Iterations)
	}
	for i, win := range qs.Windows {
		obs := seq.Iterations[i].Observed
		if len(win.Values) != len(obs) {
			t.Fatalf("window %d has %d values, want %d", i, len(win.Values), len(obs))
		}
		for k := range obs {
			if win.Values[k] != obs[k] {
				t.Fatalf("window %d objective %d: qs %v != observed %v", i, k, win.Values[k], obs[k])
			}
		}
	}

	// A sub-interval window clips to the touched iterations only.
	code, body = do(t, "GET", ts.URL+"/clusters/c1/qs?from=2m30s&to=7m30s", "")
	if code != http.StatusOK {
		t.Fatalf("windowed qs: %d: %s", code, body)
	}
	if err := json.Unmarshal(body, &qs); err != nil {
		t.Fatal(err)
	}
	if len(qs.Windows) != 2 {
		t.Fatalf("sub-window query returned %d windows, want 2 (iterations 0 and 1)", len(qs.Windows))
	}
	if qs.Windows[0].From != "2m30s" || qs.Windows[1].To != "7m30s" {
		t.Fatalf("sub-window bounds not clipped: %+v", qs.Windows)
	}

	if code, _ := do(t, "DELETE", ts.URL+"/clusters/c1", ""); code != http.StatusNoContent {
		t.Fatalf("delete: got %d, want 204", code)
	}
	if code, _ := do(t, "GET", ts.URL+"/clusters/c1", ""); code != http.StatusNotFound {
		t.Fatalf("status after delete: got %d, want 404", code)
	}
}

// TestWhatIfEndpoint scores candidates over HTTP and pins determinism:
// identical requests yield identical vectors, and candidate order is
// preserved.
func TestWhatIfEndpoint(t *testing.T) {
	_, ts := newTestServer(t, service.Config{})
	createCluster(t, ts.URL, "c1", smallSpec(t, 0))

	req := `{"candidates":[{},{"deadline":{"weight":4}},{"deadline":{"weight":1,"min_share":2}}]}`
	code, body := do(t, "POST", ts.URL+"/clusters/c1/whatif", req)
	if code != http.StatusOK {
		t.Fatalf("whatif: %d: %s", code, body)
	}
	var first service.WhatIfResponse
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}
	if len(first.Results) != 3 {
		t.Fatalf("got %d result rows, want 3", len(first.Results))
	}
	if len(first.Objectives) != 2 {
		t.Fatalf("got objectives %v, want the spec's two SLOs", first.Objectives)
	}
	for i, row := range first.Results {
		if len(row) != len(first.Objectives) {
			t.Fatalf("row %d has %d values, want %d", i, len(row), len(first.Objectives))
		}
	}
	_, body2 := do(t, "POST", ts.URL+"/clusters/c1/whatif", req)
	var second service.WhatIfResponse
	if err := json.Unmarshal(body2, &second); err != nil {
		t.Fatal(err)
	}
	for i := range first.Results {
		for k := range first.Results[i] {
			if first.Results[i][k] != second.Results[i][k] {
				t.Fatalf("what-if not deterministic: row %d differs across identical requests", i)
			}
		}
	}
}

// TestConcurrentTicksSerialized fires one tick request per iteration at a
// single cluster, all at once, and asserts the shard serializes them:
// every iteration index comes back exactly once and the report still
// matches the sequential run.
func TestConcurrentTicksSerialized(t *testing.T) {
	_, ts := newTestServer(t, service.Config{Shards: 2, WorkersPerShard: 4})
	spec := smallSpec(t, 8)
	createCluster(t, ts.URL, "c1", spec)

	results := make([]int, spec.Iterations)
	var wg sync.WaitGroup
	wg.Add(spec.Iterations)
	for i := 0; i < spec.Iterations; i++ {
		go func(slot int) {
			defer wg.Done()
			code, body := do(t, "POST", ts.URL+"/clusters/c1/tick", "")
			if code != http.StatusOK {
				t.Errorf("concurrent tick: %d: %s", code, body)
				results[slot] = -1
				return
			}
			var tick service.TickResponse
			if err := json.Unmarshal(body, &tick); err != nil {
				t.Error(err)
				results[slot] = -1
				return
			}
			results[slot] = tick.Iteration
		}(i)
	}
	wg.Wait()
	sort.Ints(results)
	for i, got := range results {
		if got != i {
			t.Fatalf("iteration indices %v: want exactly 0..%d once each", results, spec.Iterations-1)
		}
	}

	_, got := do(t, "GET", ts.URL+"/clusters/c1/report", "")
	seq, err := scenario.Run(spec, scenario.Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	want, err := seq.MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("report after concurrent ticks differs from sequential run")
	}
}

// TestHammer32Goroutines is the race gate: 32 goroutines hammer one
// service instance over HTTP with every kind of request — ticks, QS
// windows, what-if probes, status, metrics, healthz, list — against a
// small shared cluster population while more clusters are created and
// deleted concurrently. Run with -race (CI always does); correctness
// here is "no race, no 5xx".
func TestHammer32Goroutines(t *testing.T) {
	svc, ts := newTestServer(t, service.Config{Shards: 4, WorkersPerShard: 2})
	spec := smallSpec(t, 4)
	const fixed = 6
	for i := 0; i < fixed; i++ {
		createCluster(t, ts.URL, fmt.Sprintf("fixed-%d", i), spec)
	}

	const goroutines = 32
	const opsEach = 40
	var tickOK atomic.Int64
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			id := fmt.Sprintf("fixed-%d", g%fixed)
			for op := 0; op < opsEach; op++ {
				var code int
				var body []byte
				switch op % 9 {
				case 0:
					code, body = do(t, "POST", ts.URL+"/clusters/"+id+"/tick", "")
					if code == http.StatusOK {
						tickOK.Add(1)
					}
					// Ticking past the budget is an expected 409 under
					// contention.
					if code == http.StatusConflict {
						code = http.StatusOK
					}
				case 1:
					code, body = do(t, "GET", ts.URL+"/clusters/"+id+"/qs?from=0s&to=20m", "")
				case 2:
					code, body = do(t, "POST", ts.URL+"/clusters/"+id+"/whatif", `{"candidates":[{"deadline":{"weight":2}}]}`)
				case 3:
					code, body = do(t, "GET", ts.URL+"/clusters/"+id, "")
				case 4:
					code, body = do(t, "GET", ts.URL+"/metrics", "")
				case 5:
					code, body = do(t, "GET", ts.URL+"/healthz", "")
				case 6:
					code, body = do(t, "GET", ts.URL+"/clusters", "")
				case 7:
					// Churn: a private cluster created and dropped mid-storm.
					churn := fmt.Sprintf("churn-%d-%d", g, op)
					createCluster(t, ts.URL, churn, spec)
					code, body = do(t, "DELETE", ts.URL+"/clusters/"+churn, "")
					if code == http.StatusNoContent {
						code = http.StatusOK
					}
				case 8:
					plan := `{"version":1,"source":"jobs","ops":[{"op":"group_by","by":["tenant"]},{"op":"aggregate","aggs":[{"fn":"count"}]}]}`
					code, body = do(t, "POST", ts.URL+"/v1/clusters/"+id+"/query", plan)
				}
				if code >= 500 {
					t.Errorf("goroutine %d op %d: server error %d: %s", g, op, code, body)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	m := svc.Metrics()
	if m.Ticks == 0 {
		t.Fatal("hammer recorded no ticks")
	}
	for _, sm := range m.Shards {
		if sm.Ticks > 0 && sm.TickLatencyP99Ms < sm.TickLatencyP50Ms {
			t.Fatalf("shard %d: p99 %.3fms < p50 %.3fms", sm.Shard, sm.TickLatencyP99Ms, sm.TickLatencyP50Ms)
		}
	}
	// The service's tick accounting must agree with an independent count:
	// every 200 tick response the clients saw, and nothing else.
	if got := tickOK.Load(); m.Ticks != got {
		t.Fatalf("service counted %d ticks, clients saw %d successful tick responses", m.Ticks, got)
	}
	if m.WhatIfEvals == 0 || m.QSQueries == 0 || m.AdHocQueries == 0 {
		t.Fatalf("probe counters not recorded: %+v", m)
	}
}

// TestDriveVerifies exercises the loadgen driver end to end against an
// in-process server, with verification on — the same path CI's loadgen
// step takes at 100 clusters.
func TestDriveVerifies(t *testing.T) {
	_, ts := newTestServer(t, service.Config{})
	rep, err := service.Drive(ts.URL, service.DriveOptions{
		Clusters:    12,
		Workers:     8,
		QSEvery:     2,
		QueryEvery:  2,
		WhatIfEvery: 3,
		Verify:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verified != 12 {
		t.Fatalf("verified %d/12 clusters", rep.Verified)
	}
	if rep.Ticks != 12*rep.Iterations {
		t.Fatalf("drove %d ticks, want %d", rep.Ticks, 12*rep.Iterations)
	}
	if rep.QSQueries == 0 || rep.QueryCalls == 0 || rep.WhatIfCalls == 0 {
		t.Fatalf("probe traffic missing: %+v", rep)
	}
}

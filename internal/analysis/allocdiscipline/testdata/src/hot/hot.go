// Package hot is the allocdiscipline fixture: a miniature of the sim
// engine's At/AtArg API plus every allocation pattern the analyzer
// guards //tempo:hot functions against.
package hot

import "fmt"

type Engine struct{}

func (e *Engine) At(t int, fn func(now int)) {}

func (e *Engine) AtArg(t int, fn func(now int, arg any), arg any) {}

//tempo:hot
func popFront(q []int) int {
	n := 0
	for len(q) > 0 {
		n += q[0]
		q = q[1:] // want `pop-front reslice`
	}
	return n
}

//tempo:hot
func resliceFromZeroOK(q []int) []int {
	q = q[0:]
	return q
}

//tempo:hot
func headIndexOK(q []int) int {
	n := 0
	for head := 0; head < len(q); head++ {
		n += q[head]
	}
	return n
}

//tempo:hot
func format(n int) string {
	return fmt.Sprintf("%d", n) // want `fmt.Sprintf in hot path`
}

//tempo:hot
func wrap(err error) error {
	return fmt.Errorf("hot: %w", err) // want `fmt.Errorf in hot path`
}

//tempo:hot
func closureEvent(e *Engine, x int) {
	e.At(1, func(now int) { _ = x }) // want `closure passed to Engine.At`
}

//tempo:hot
func sharedHandlerOK(e *Engine, handler func(now int, arg any), x *int) {
	e.AtArg(1, handler, x)
}

//tempo:hot
func boxedInt(e *Engine, handler func(now int, arg any), x int) {
	e.AtArg(1, handler, x) // want `value of type int boxed into any`
}

type pair struct{ a, b int }

//tempo:hot
func boxedStruct(sink func(any), p pair) {
	sink(p) // want `value of type hot.pair boxed into any`
}

//tempo:hot
func mapNoBoxOK(sink func(any), m map[int]int) {
	sink(m)
}

//tempo:hot
func suppressed(n int) string {
	//tempolint:ignore allocdiscipline one-shot setup formatting, outside the per-event loop
	return fmt.Sprintf("%d", n)
}

// coldFormat has no annotation: nothing in it is flagged.
func coldFormat(q []int, n int) string {
	q = q[1:]
	_ = q
	return fmt.Sprintf("%d", n)
}

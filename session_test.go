package tempo_test

import (
	"strings"
	"testing"
	"time"

	"tempo"
	"tempo/internal/scenario"
)

const sessionSpecJSON = `{
  "name": "session-test",
  "seed": 7,
  "capacity": 8,
  "interval_minutes": 5,
  "iterations": 4,
  "replay": true,
  "tenants": [
    {"name": "deadline", "profile": "deadline-driven", "scale": 0.4,
     "deadline": {"factor_lo": 1.2, "factor_hi": 1.8}},
    {"name": "besteffort", "profile": "best-effort", "scale": 0.4}
  ],
  "slos": [
    {"queue": "deadline", "metric": "deadline_violations", "slack": 0.25, "target": 0},
    {"queue": "besteffort", "metric": "avg_response_time"}
  ],
  "initial": {},
  "controller": {"candidates": 3}
}`

func newSessionSpec(t *testing.T) *tempo.Scenario {
	t.Helper()
	spec, err := tempo.LoadScenario(strings.NewReader(sessionSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// TestSessionMatchesScenarioRun is the handle's core contract: driving a
// scenario tick by tick — with QS and what-if traffic interleaved between
// ticks — produces byte-for-byte the report of the one-shot sequential
// run.
func TestSessionMatchesScenarioRun(t *testing.T) {
	spec := newSessionSpec(t)
	sess, err := tempo.NewSession(spec, tempo.ScenarioOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	probe := sess.Current() // equal-weight default; a valid what-if candidate
	for i := 0; i < spec.Iterations; i++ {
		if sess.Done() {
			t.Fatalf("session done after %d ticks, want %d", i, spec.Iterations)
		}
		it, err := sess.Tick()
		if err != nil {
			t.Fatalf("tick %d: %v", i, err)
		}
		if it.Index != i {
			t.Fatalf("tick %d reported index %d", i, it.Index)
		}
		// Interleaved read traffic must not perturb the trajectory.
		if _, err := sess.QS(0, 0); err != nil {
			t.Fatalf("qs after tick %d: %v", i, err)
		}
		if _, err := sess.WhatIf([]tempo.ClusterConfig{probe}); err != nil {
			t.Fatalf("what-if after tick %d: %v", i, err)
		}
	}
	if !sess.Done() {
		t.Fatal("session not done after the full budget")
	}
	if _, err := sess.Tick(); err != tempo.ErrSessionDone {
		t.Fatalf("tick past budget: got %v, want ErrSessionDone", err)
	}

	got, err := sess.Report().MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	seq, err := scenario.Run(spec, scenario.Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	want, err := seq.MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatal("session-driven report differs from scenario.Run")
	}
}

// TestSessionQSWindows locks the window semantics: full windows reproduce
// the per-iteration Observed vectors, sub-windows clip, and invalid
// windows error.
func TestSessionQSWindows(t *testing.T) {
	spec := newSessionSpec(t)
	sess, err := tempo.NewSession(spec, tempo.ScenarioOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := sess.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	interval := sess.Interval()

	windows, err := sess.QS(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(windows) != 2 {
		t.Fatalf("got %d windows, want 2 (completed ticks)", len(windows))
	}
	rep := sess.Report()
	for i, win := range windows {
		if win.Iteration != i {
			t.Fatalf("window %d labeled iteration %d", i, win.Iteration)
		}
		obs := rep.Iterations[i].Observed
		for k := range obs {
			if win.Values[k] != obs[k] {
				t.Fatalf("window %d objective %d: %v != observed %v", i, k, win.Values[k], obs[k])
			}
		}
	}

	// A window inside iteration 1 only.
	windows, err = sess.QS(interval+time.Minute, 2*interval-time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(windows) != 1 || windows[0].Iteration != 1 {
		t.Fatalf("sub-window hit %+v, want iteration 1 only", windows)
	}
	if windows[0].From != interval+time.Minute || windows[0].To != 2*interval-time.Minute {
		t.Fatalf("sub-window not clipped: %+v", windows[0])
	}

	// A window beyond everything observed yet — with and without an
	// explicit upper bound ("from now on" must be a valid, empty ask).
	windows, err = sess.QS(10*interval, 11*interval)
	if err != nil {
		t.Fatal(err)
	}
	if len(windows) != 0 {
		t.Fatalf("future window returned %d entries, want 0", len(windows))
	}
	windows, err = sess.QS(10*interval, 0)
	if err != nil {
		t.Fatalf("open-ended future window rejected: %v", err)
	}
	if len(windows) != 0 {
		t.Fatalf("open-ended future window returned %d entries, want 0", len(windows))
	}

	if _, err := sess.QS(-time.Minute, interval); err == nil {
		t.Fatal("negative from accepted")
	}
	if _, err := sess.QS(2*interval, interval); err == nil {
		t.Fatal("inverted window accepted")
	}
}

// TestSessionWhatIfValidation rejects empty and invalid candidate sets.
func TestSessionWhatIfValidation(t *testing.T) {
	sess, err := tempo.NewSession(newSessionSpec(t), tempo.ScenarioOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.WhatIf(nil); err == nil {
		t.Fatal("empty candidate set accepted")
	}
	bad := sess.Current()
	dl := bad.Tenants["deadline"]
	dl.Weight = -1
	bad.Tenants["deadline"] = dl
	if _, err := sess.WhatIf([]tempo.ClusterConfig{bad}); err == nil {
		t.Fatal("invalid candidate accepted")
	}
	rows, err := sess.WhatIf([]tempo.ClusterConfig{sess.Current()})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || len(rows[0]) != 2 {
		t.Fatalf("what-if shape %v, want 1x2", rows)
	}
}

package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"tempo/internal/service"
)

// startService runs an in-process tempod with one ticked-to-completion
// cluster and returns its base URL.
func startService(t *testing.T) string {
	t.Helper()
	svc, err := service.New(service.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	spec, err := service.SmallSpec()
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(service.CreateRequest{ID: "c1", Spec: raw})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/clusters", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("creating cluster: %s", resp.Status)
	}
	for i := 0; i < spec.Iterations; i++ {
		resp, err := http.Post(ts.URL+"/v1/clusters/c1/tick", "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("tick %d: %s", i, resp.Status)
		}
	}
	return ts.URL
}

const testPlan = `{"version":1,"source":"jobs","ops":[
	{"op":"group_by","by":["tenant"]},
	{"op":"aggregate","aggs":[{"fn":"count","as":"jobs"}]}]}`

// TestQuerySubcommand runs a one-shot query through the CLI and checks
// the rendered rows name both tenants.
func TestQuerySubcommand(t *testing.T) {
	url := startService(t)
	stdout, stderr, code := runCLI(t, "query", "-addr", url, "-cluster", "c1", "-plan", testPlan)
	if code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, stderr)
	}
	for _, want := range []string{"ticks: 3", "tenant=besteffort", "jobs="} {
		if !strings.Contains(stdout, want) {
			t.Errorf("stdout missing %q:\n%s", want, stdout)
		}
	}
}

// TestQuerySubcommandJSON checks -json emits the raw result document.
func TestQuerySubcommandJSON(t *testing.T) {
	url := startService(t)
	stdout, stderr, code := runCLI(t, "query", "-addr", url, "-cluster", "c1", "-plan", testPlan, "-json")
	if code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, stderr)
	}
	var res struct {
		Ticks int               `json:"ticks"`
		Rows  []json.RawMessage `json:"rows"`
	}
	if err := json.Unmarshal([]byte(stdout), &res); err != nil {
		t.Fatalf("-json output is not the result document: %v\n%s", err, stdout)
	}
	if res.Ticks != 3 || len(res.Rows) == 0 {
		t.Fatalf("unexpected result: ticks=%d rows=%d", res.Ticks, len(res.Rows))
	}
}

// TestQuerySubcommandStream subscribes to a completed session: the stream
// drains every tick's deltas and terminates on the done event.
func TestQuerySubcommandStream(t *testing.T) {
	url := startService(t)
	stdout, stderr, code := runCLI(t, "query", "-addr", url, "-cluster", "c1", "-plan", testPlan, "-stream")
	if code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "done: ") {
		t.Fatalf("stream output missing terminal done event:\n%s", stdout)
	}
	if !strings.Contains(stdout, "tenant=besteffort") {
		t.Fatalf("stream output missing delta rows:\n%s", stdout)
	}
}

// TestQuerySubcommandRejectsBadPlan fails client-side, naming the
// offending operator, without needing a live server.
func TestQuerySubcommandRejectsBadPlan(t *testing.T) {
	_, stderr, code := runCLI(t, "query", "-cluster", "c1",
		"-plan", `{"version":1,"source":"events","ops":[{"op":"join"}]}`)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	if !strings.Contains(stderr, "ops[0]") {
		t.Fatalf("stderr %q does not name the offending operator", stderr)
	}
}

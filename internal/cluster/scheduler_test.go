package cluster

import (
	"testing"
	"time"

	"tempo/internal/workload"
)

// mkTrace builds a trace from jobs with a generous horizon.
func mkTrace(jobs ...workload.JobSpec) *workload.Trace {
	tr := &workload.Trace{Name: "test", Horizon: 1000 * time.Hour, Jobs: jobs}
	tr.Sort()
	return tr
}

func uniformTasks(n int, d time.Duration) []time.Duration {
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = d
	}
	return out
}

func cfg2(capacity int, a, b TenantConfig) Config {
	return Config{TotalContainers: capacity, Tenants: map[string]TenantConfig{"A": a, "B": b}}
}

func job(id, tenant string, submit time.Duration, nMaps int, mapDur time.Duration) workload.JobSpec {
	return workload.NewMapReduceJob(id, tenant, submit, uniformTasks(nMaps, mapDur), nil)
}

func findJob(t *testing.T, s *Schedule, id string) JobRecord {
	t.Helper()
	for _, j := range s.Jobs {
		if j.ID == id {
			return j
		}
	}
	t.Fatalf("job %s not in schedule", id)
	return JobRecord{}
}

func TestSingleJobRunsToCompletion(t *testing.T) {
	tr := mkTrace(job("j", "A", 0, 4, 10*time.Second))
	s, err := Predict(tr, Config{TotalContainers: 2, Tenants: map[string]TenantConfig{"A": {Weight: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	j := findJob(t, s, "j")
	if !j.Completed {
		t.Fatal("job did not complete")
	}
	// 4 tasks on 2 containers, 10s each → 2 waves → 20s.
	if j.Finish != 20*time.Second {
		t.Fatalf("finish = %v, want 20s", j.Finish)
	}
	if len(s.Tasks) != 4 {
		t.Fatalf("tasks = %d, want 4", len(s.Tasks))
	}
	for _, task := range s.Tasks {
		if task.Outcome != TaskFinished {
			t.Fatalf("task outcome = %v", task.Outcome)
		}
	}
}

func TestMapReduceStageOrdering(t *testing.T) {
	j := workload.NewMapReduceJob("mr", "A", 0,
		uniformTasks(2, 10*time.Second),
		uniformTasks(1, 5*time.Second))
	s, err := Predict(mkTrace(j), Config{TotalContainers: 4, Tenants: map[string]TenantConfig{"A": {Weight: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	var mapEnd, redStart time.Duration
	for _, task := range s.Tasks {
		if task.Kind == workload.Map && task.End > mapEnd {
			mapEnd = task.End
		}
		if task.Kind == workload.Reduce {
			redStart = task.Start
		}
	}
	if redStart < mapEnd {
		t.Fatalf("reduce started at %v before maps finished at %v", redStart, mapEnd)
	}
	if got := findJob(t, s, "mr").Finish; got != 15*time.Second {
		t.Fatalf("finish = %v, want 15s", got)
	}
}

func TestCapacityNeverExceeded(t *testing.T) {
	var jobs []workload.JobSpec
	for i := 0; i < 8; i++ {
		jobs = append(jobs, job(string(rune('a'+i)), "A", time.Duration(i)*time.Second, 5, 20*time.Second))
	}
	s, err := Predict(mkTrace(jobs...), Config{TotalContainers: 7, Tenants: map[string]TenantConfig{"A": {Weight: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	assertCapacityRespected(t, s)
}

func assertCapacityRespected(t *testing.T, s *Schedule) {
	t.Helper()
	for _, p := range s.UsageTimeline("") {
		if p.Count > s.Capacity {
			t.Fatalf("usage %d exceeds capacity %d at %v", p.Count, s.Capacity, p.Time)
		}
		if p.Count < 0 {
			t.Fatalf("negative usage at %v", p.Time)
		}
	}
}

func TestWeightedSharesSplitCluster(t *testing.T) {
	// Both tenants saturate a 12-container cluster with weights 1:2.
	a := job("a", "A", 0, 200, 30*time.Second)
	b := job("b", "B", 0, 200, 30*time.Second)
	cfg := cfg2(12, TenantConfig{Weight: 1}, TenantConfig{Weight: 2})
	s, err := Predict(mkTrace(a, b), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Mid-run, A should hold ~4 containers and B ~8.
	countAt := func(tenant string, at time.Duration) int {
		n := 0
		for _, task := range s.Tasks {
			if task.Tenant == tenant && task.Start <= at && task.End > at {
				n++
			}
		}
		return n
	}
	at := 5 * time.Minute
	gotA, gotB := countAt("A", at), countAt("B", at)
	if gotA != 4 || gotB != 8 {
		t.Fatalf("allocation at %v = A:%d B:%d, want A:4 B:8", at, gotA, gotB)
	}
}

func TestUnusedQuotaFlowsToBusyTenant(t *testing.T) {
	// B has weight 3 but no work; A should take the whole cluster.
	a := job("a", "A", 0, 24, 10*time.Second)
	cfg := cfg2(12, TenantConfig{Weight: 1}, TenantConfig{Weight: 3})
	s, err := Predict(mkTrace(a), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := findJob(t, s, "a").Finish; got != 20*time.Second {
		t.Fatalf("finish = %v, want 20s (A should use all 12 containers)", got)
	}
}

func TestMaxShareCaps(t *testing.T) {
	// Paper §3.2 example: shares 1:2:3, C capped at 3 of 12 containers →
	// A=3, B=6, C=3.
	jobs := []workload.JobSpec{
		job("a", "A", 0, 100, time.Minute),
		job("b", "B", 0, 100, time.Minute),
		job("c", "C", 0, 100, time.Minute),
	}
	cfg := Config{TotalContainers: 12, Tenants: map[string]TenantConfig{
		"A": {Weight: 1},
		"B": {Weight: 2},
		"C": {Weight: 3, MaxShare: 3},
	}}
	s, err := Predict(mkTrace(jobs...), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A grabs the whole cluster at t=0 (it submitted first and there is no
	// preemption); the configured split materializes once the first wave
	// of tasks completes at t=60s.
	at := 90 * time.Second
	counts := map[string]int{}
	for _, task := range s.Tasks {
		if task.Start <= at && task.End > at {
			counts[task.Tenant]++
		}
	}
	if counts["A"] != 3 || counts["B"] != 6 || counts["C"] != 3 {
		t.Fatalf("allocation = %v, want A:3 B:6 C:3", counts)
	}
}

func TestMinShareGrantedFirst(t *testing.T) {
	// A floods the cluster first; B arrives with a min share. Without
	// preemption B cannot claw back running containers, but as soon as
	// containers free, B must be served before A despite A's huge weight.
	a := job("a", "A", 0, 40, 10*time.Second)
	b := job("b", "B", 5*time.Second, 4, 10*time.Second)
	cfg := cfg2(4, TenantConfig{Weight: 100}, TenantConfig{Weight: 1, MinShare: 2})
	s, err := Predict(mkTrace(a, b), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// At t=10 the first wave of A finishes; B (below min share 2) must get
	// at least 2 containers.
	at := 11 * time.Second
	n := 0
	for _, task := range s.Tasks {
		if task.Tenant == "B" && task.Start <= at && task.End > at {
			n++
		}
	}
	if n < 2 {
		t.Fatalf("B holds %d containers at %v, want >= 2 (min share)", n, at)
	}
}

func TestPreemptionFreesContainersForMinShare(t *testing.T) {
	// A grabs everything with long tasks; B has a min-share preemption
	// timeout. B's tasks must start before A's tasks would naturally end.
	a := job("a", "A", 0, 4, time.Hour)
	b := job("b", "B", time.Second, 2, time.Minute)
	cfg := cfg2(4,
		TenantConfig{Weight: 1},
		TenantConfig{Weight: 1, MinShare: 2, MinSharePreemptTimeout: 30 * time.Second})
	s, err := Predict(mkTrace(a, b), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.PreemptionCount("A", nil); got != 2 {
		t.Fatalf("preempted A attempts = %d, want 2", got)
	}
	bRec := findJob(t, s, "b")
	if !bRec.Completed || bRec.Finish > 3*time.Minute {
		t.Fatalf("B finished at %v, want within ~91s", bRec.Finish)
	}
	// A's killed tasks restart and A still completes eventually.
	aRec := findJob(t, s, "a")
	if !aRec.Completed {
		t.Fatal("A never completed after preemption")
	}
	_, wasted := s.ContainerSeconds()
	if wasted <= 0 {
		t.Fatal("preemption should waste work")
	}
}

func TestNoPreemptionWithoutTimeout(t *testing.T) {
	a := job("a", "A", 0, 4, time.Hour)
	b := job("b", "B", time.Second, 2, time.Minute)
	cfg := cfg2(4, TenantConfig{Weight: 1}, TenantConfig{Weight: 1, MinShare: 2})
	s, err := Predict(mkTrace(a, b), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.PreemptionCount("", nil); got != 0 {
		t.Fatalf("preemptions = %d, want 0 (no timeout configured)", got)
	}
	if got := findJob(t, s, "b").Finish; got < time.Hour {
		t.Fatalf("B finished at %v; it should have waited behind A", got)
	}
}

func TestSharePreemptionLevel(t *testing.T) {
	// Equal weights; A floods, B waits. B's share-level timeout should
	// trigger preemption up to B's fair share (half the cluster).
	a := job("a", "A", 0, 8, time.Hour)
	b := job("b", "B", time.Second, 8, time.Minute)
	cfg := cfg2(8,
		TenantConfig{Weight: 1},
		TenantConfig{Weight: 1, SharePreemptTimeout: time.Minute})
	s, err := Predict(mkTrace(a, b), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.PreemptionCount("A", nil); got != 4 {
		t.Fatalf("preempted A attempts = %d, want 4 (B's fair share)", got)
	}
}

func TestPreemptedWorkIsLostAndRestarted(t *testing.T) {
	a := job("a", "A", 0, 1, time.Hour)
	b := job("b", "B", time.Second, 1, time.Minute)
	cfg := cfg2(1,
		TenantConfig{Weight: 1},
		TenantConfig{Weight: 1, MinShare: 1, MinSharePreemptTimeout: 10 * time.Second})
	s, err := Predict(mkTrace(a, b), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A's sole task is killed at ~11s, B runs 60s, then A restarts from
	// scratch and needs another full hour.
	aRec := findJob(t, s, "a")
	if !aRec.Completed {
		t.Fatal("A incomplete")
	}
	if aRec.Finish < time.Hour+time.Minute {
		t.Fatalf("A finished at %v; lost work should push it past 1h1m", aRec.Finish)
	}
	attempts := 0
	for _, task := range s.Tasks {
		if task.JobID == "a" {
			attempts++
		}
	}
	if attempts != 2 {
		t.Fatalf("A attempts = %d, want 2", attempts)
	}
}

func TestHorizonTruncation(t *testing.T) {
	a := job("a", "A", 0, 2, time.Hour)
	s, err := Run(mkTrace(a), Config{TotalContainers: 2, Tenants: map[string]TenantConfig{"A": {Weight: 1}}},
		Options{Horizon: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if s.Horizon != time.Minute {
		t.Fatalf("horizon = %v", s.Horizon)
	}
	if findJob(t, s, "a").Completed {
		t.Fatal("job should not have completed within horizon")
	}
	for _, task := range s.Tasks {
		if task.Outcome != TaskTruncated {
			t.Fatalf("outcome = %v, want truncated", task.Outcome)
		}
		if task.End != time.Minute {
			t.Fatalf("end = %v, want horizon", task.End)
		}
	}
}

func TestRunValidatesInputs(t *testing.T) {
	tr := mkTrace(job("a", "A", 0, 1, time.Second))
	if _, err := Predict(tr, Config{TotalContainers: 0}); err == nil {
		t.Fatal("zero capacity accepted")
	}
	bad := &workload.Trace{Jobs: []workload.JobSpec{{ID: "x"}}}
	if _, err := Predict(bad, Config{TotalContainers: 1}); err == nil {
		t.Fatal("invalid trace accepted")
	}
}

func TestDeterminism(t *testing.T) {
	tr, err := workload.Generate(workload.CompanyABC(0.5), workload.GenerateOptions{Horizon: 2 * time.Hour, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{TotalContainers: 40, Tenants: map[string]TenantConfig{}}
	for _, name := range tr.Tenants() {
		cfg.Tenants[name] = TenantConfig{Weight: 1, MinShare: 2, MinSharePreemptTimeout: time.Minute, SharePreemptTimeout: 5 * time.Minute}
	}
	run := func(seed int64) *Schedule {
		s, err := Run(tr, cfg, Options{Noise: DefaultNoise(seed), Horizon: 3 * time.Hour})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	s1, s2 := run(7), run(7)
	if len(s1.Tasks) != len(s2.Tasks) || len(s1.Jobs) != len(s2.Jobs) {
		t.Fatalf("nondeterministic sizes: %v vs %v", s1, s2)
	}
	for i := range s1.Tasks {
		if s1.Tasks[i] != s2.Tasks[i] {
			t.Fatalf("task %d differs: %+v vs %+v", i, s1.Tasks[i], s2.Tasks[i])
		}
	}
	s3 := run(8)
	same := len(s3.Tasks) == len(s1.Tasks)
	if same {
		diff := false
		for i := range s1.Tasks {
			if s1.Tasks[i] != s3.Tasks[i] {
				diff = true
				break
			}
		}
		same = !diff
	}
	if same {
		t.Fatal("different noise seeds produced identical schedules")
	}
}

func TestNoiseInjectsFailuresAndKills(t *testing.T) {
	tr, err := workload.Generate([]workload.TenantProfile{workload.BestEffort("A", 3)},
		workload.GenerateOptions{Horizon: 4 * time.Hour, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	noise := &NoiseModel{DurationSigma: 0.3, FailureProb: 0.05, JobKillProb: 0.05, Seed: 1}
	s, err := Run(tr, Config{TotalContainers: 30, Tenants: map[string]TenantConfig{"A": {Weight: 1}}},
		Options{Noise: noise, Horizon: 6 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	failed, killed, kills := 0, 0, 0
	for _, task := range s.Tasks {
		switch task.Outcome {
		case TaskFailed:
			failed++
		case TaskKilled:
			killed++
		}
	}
	for _, j := range s.Jobs {
		if j.Killed {
			kills++
		}
	}
	if failed == 0 {
		t.Error("no failed attempts despite FailureProb")
	}
	if kills == 0 {
		t.Error("no killed jobs despite JobKillProb")
	}
	_ = killed
	assertCapacityRespected(t, s)
}

func TestKilledJobNeverCompletes(t *testing.T) {
	tr, err := workload.Generate([]workload.TenantProfile{workload.BestEffort("A", 3)},
		workload.GenerateOptions{Horizon: 3 * time.Hour, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	noise := &NoiseModel{JobKillProb: 0.2, Seed: 2}
	s, err := Run(tr, Config{TotalContainers: 20, Tenants: map[string]TenantConfig{"A": {Weight: 1}}},
		Options{Noise: noise, Horizon: 5 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	kills := 0
	for _, j := range s.Jobs {
		if j.Killed {
			kills++
			if j.Completed {
				t.Fatalf("job %s both killed and completed", j.ID)
			}
		}
	}
	if kills == 0 {
		t.Fatal("no kills with 20% kill probability")
	}
}

func TestScheduleAccessors(t *testing.T) {
	a := job("a", "A", 0, 2, 10*time.Second)
	b := job("b", "B", 0, 1, 10*time.Second)
	s, err := Predict(mkTrace(a, b), cfg2(4, TenantConfig{Weight: 1}, TenantConfig{Weight: 1}))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Tenants(); len(got) != 2 || got[0] != "A" || got[1] != "B" {
		t.Fatalf("Tenants = %v", got)
	}
	if got := s.JobsByTenant("A"); len(got) != 1 || got[0].ID != "a" {
		t.Fatalf("JobsByTenant = %v", got)
	}
	if got := s.TasksByTenant("B"); len(got) != 1 {
		t.Fatalf("TasksByTenant = %v", got)
	}
	if rt := s.Jobs[0].ResponseTime(); rt != 10*time.Second {
		t.Fatalf("ResponseTime = %v", rt)
	}
	if s.String() == "" {
		t.Fatal("String empty")
	}
}

func TestWindowKeepsOnlyCompletedWithin(t *testing.T) {
	a := job("a", "A", 0, 1, 10*time.Second)            // completes at 10s
	b := job("b", "A", 5*time.Second, 1, time.Hour)     // completes way later
	c := job("c", "A", 2*time.Minute, 1, 1*time.Second) // submitted after window
	s, err := Predict(mkTrace(a, b, c), Config{TotalContainers: 4, Tenants: map[string]TenantConfig{"A": {Weight: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	w := s.Window(0, time.Minute)
	if len(w.Jobs) != 1 || w.Jobs[0].ID != "a" {
		t.Fatalf("window jobs = %v, want only a", w.Jobs)
	}
	if len(w.Tasks) != 1 || w.Tasks[0].JobID != "a" {
		t.Fatalf("window tasks = %v", w.Tasks)
	}
}

func TestUsageTimeline(t *testing.T) {
	a := job("a", "A", 0, 2, 10*time.Second)
	s, err := Predict(mkTrace(a), Config{TotalContainers: 2, Tenants: map[string]TenantConfig{"A": {Weight: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	tl := s.UsageTimeline("A")
	if len(tl) != 2 {
		t.Fatalf("timeline = %v", tl)
	}
	if tl[0].Count != 2 || tl[1].Count != 0 {
		t.Fatalf("timeline counts = %v", tl)
	}
}

func TestContainerSeconds(t *testing.T) {
	a := job("a", "A", 0, 3, 10*time.Second)
	s, err := Predict(mkTrace(a), Config{TotalContainers: 3, Tenants: map[string]TenantConfig{"A": {Weight: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	useful, wasted := s.ContainerSeconds()
	if useful != 30*time.Second || wasted != 0 {
		t.Fatalf("useful=%v wasted=%v", useful, wasted)
	}
}

func TestFigure1Scenario(t *testing.T) {
	// Reproduce Figure 1's story: A fills the cluster; B arrives just
	// after; with a preemption timeout of 1 unit B takes over at t=2 and
	// A's killed work is wasted.
	unit := time.Minute
	a := job("a", "A", 0, 10, 3*unit)
	b := job("b", "B", 1, 5, 2*unit) // arrives just after A
	cfg := cfg2(10,
		TenantConfig{Weight: 1},
		TenantConfig{Weight: 1, MinShare: 5, MinSharePreemptTimeout: unit})
	s, err := Predict(mkTrace(a, b), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.PreemptionCount("A", nil); got != 5 {
		t.Fatalf("preempted = %d, want 5", got)
	}
	useful, wasted := s.ContainerSeconds()
	eff := float64(useful) / float64(useful+wasted)
	if eff >= 1 {
		t.Fatal("effective utilization should drop below 1 due to region I")
	}
	if eff < 0.5 {
		t.Fatalf("effective utilization %v implausibly low", eff)
	}
}

package scenario

import (
	"errors"
	"time"

	"tempo/internal/cluster"
	"tempo/internal/core"
	"tempo/internal/qs"
)

// ErrDone is returned by Runtime.Step once the spec's iteration budget is
// exhausted. A scenario's report length is part of its identity — goldens
// and the sequential-vs-sharded determinism checks compare byte-for-byte —
// so a runtime refuses to tick past Spec.Iterations instead of silently
// growing the report.
var ErrDone = errors.New("scenario: run complete")

// Run builds the spec and drives it to completion. The report is a pure
// function of the spec: every random stream is derived from Spec.Seed, the
// What-if Model's reduction is parallelism-independent, and the report's
// serialization is canonical, so the same spec always yields the same
// bytes.
func Run(spec *Spec, opts Options) (*Report, error) {
	rt, err := Build(spec, opts)
	if err != nil {
		return nil, err
	}
	return rt.Run()
}

// Run drives the built scenario for the spec's iteration count and
// assembles the canonical report. It is exactly Step-until-done plus
// Report, so a scenario driven one tick at a time (the serving path)
// produces byte-identical output.
func (rt *Runtime) Run() (*Report, error) {
	for !rt.Done() {
		if _, err := rt.Step(); err != nil {
			return nil, err
		}
	}
	return rt.Report(), nil
}

// Done reports whether the spec's iteration budget is exhausted.
func (rt *Runtime) Done() bool {
	return len(rt.iterations) >= rt.Spec.Iterations
}

// StepsDone returns how many control intervals have run.
func (rt *Runtime) StepsDone() int { return len(rt.iterations) }

// Step runs one control interval — observe (and, with the controller
// enabled, guard/propose/score/apply) — and records its iteration report.
// It returns ErrDone once Spec.Iterations intervals have run.
func (rt *Runtime) Step() (IterationReport, error) {
	i := len(rt.iterations)
	if i >= rt.Spec.Iterations {
		return IterationReport{}, ErrDone
	}
	it := IterationReport{Index: i}
	if rt.Controller != nil {
		step, err := rt.Controller.Step()
		if err != nil {
			return IterationReport{}, err
		}
		it.Observed = step.Observed
		it.Switched = step.Switched
		it.Reverted = step.Reverted
	} else {
		sched, err := rt.env.Observe(rt.Initial, rt.Interval, i)
		if err != nil {
			return IterationReport{}, err
		}
		it.Observed = qs.EvalStream(rt.Templates, sched, 0, sched.Horizon+time.Nanosecond)
	}
	fillScheduleStats(&it, rt.env.schedules[i])
	rt.iterations = append(rt.iterations, it)
	return it, nil
}

// Search returns the controller's search statistics for iteration i, or
// nil when the controller is disabled or the interval has not run.
// Deliberately not part of IterationReport: the stats depend on cache
// temperature (a resumed run re-drives identical decisions with
// different warm-start tallies), so folding them into the
// golden-committed report would break byte-identical resume.
func (rt *Runtime) Search(i int) *core.SearchStats {
	if rt.Controller == nil {
		return nil
	}
	return rt.Controller.Search(i)
}

// ObservedSchedule returns the task schedule iteration i ran under, or nil
// when that interval has not run yet. The schedule is shared, not copied —
// treat it as read-only.
func (rt *Runtime) ObservedSchedule(i int) *cluster.Schedule {
	if i < 0 || i >= len(rt.env.schedules) {
		return nil
	}
	return rt.env.schedules[i]
}

// Report assembles the canonical report over the intervals run so far.
// After the final Step it is the same report Run returns; mid-run it is a
// consistent prefix snapshot (the summary aggregates only completed
// intervals).
func (rt *Runtime) Report() *Report {
	spec := rt.Spec
	rep := &Report{
		Scenario:          spec.Name,
		Seed:              spec.Seed,
		Capacity:          spec.Capacity,
		IntervalMinutes:   spec.IntervalMinutes,
		Replay:            spec.Replay,
		ControllerEnabled: rt.Controller != nil,
		Iterations:        append([]IterationReport(nil), rt.iterations...),
	}
	for _, t := range rt.Templates {
		rep.Objectives = append(rep.Objectives, t.Name())
	}
	rep.Summary = summarize(rep, rt)
	return rep
}

// fillScheduleStats derives the iteration's job and container statistics
// from the observed task schedule.
func fillScheduleStats(it *IterationReport, s *cluster.Schedule) {
	it.Capacity = s.Capacity
	it.SubmittedJobs = len(s.Jobs)
	for i := range s.Jobs {
		j := &s.Jobs[i]
		if j.Completed {
			it.CompletedJobs++
		}
		if j.Killed {
			it.KilledJobs++
		}
		if j.Deadline > 0 {
			it.DeadlineJobs++
			if j.Completed && j.Finish > j.Deadline {
				it.DeadlineMisses++
			}
		}
	}
	it.Preemptions = s.PreemptionCount("", nil)
	useful, wasted := s.ContainerSeconds()
	it.UsefulContainerSeconds = useful.Seconds()
	it.WastedContainerSeconds = wasted.Seconds()
}

// summarize aggregates the per-iteration reports and captures the final RM
// configuration.
func summarize(rep *Report, rt *Runtime) Summary {
	sum := Summary{}
	n := len(rep.Iterations)
	if n == 0 {
		return sum
	}
	for i := range rep.Iterations {
		it := &rep.Iterations[i]
		if it.Switched {
			sum.Switches++
		}
		if it.Reverted {
			sum.Reverts++
		}
		sum.TotalPreemptions += it.Preemptions
		sum.TotalCompletedJobs += it.CompletedJobs
	}
	k := len(rep.Objectives)
	sum.FirstObserved = append([]float64(nil), rep.Iterations[0].Observed...)
	sum.LastQuarterMean = make([]float64, k)
	sum.Improvement = make([]float64, k)
	tail := rep.Iterations[(3*n)/4:]
	for _, it := range tail {
		for i := 0; i < k && i < len(it.Observed); i++ {
			sum.LastQuarterMean[i] += it.Observed[i]
		}
	}
	for i := 0; i < k; i++ {
		sum.LastQuarterMean[i] /= float64(len(tail))
		first := sum.FirstObserved[i]
		if first > 1e-12 || first < -1e-12 {
			imp := (first - sum.LastQuarterMean[i]) / first
			if first < 0 {
				imp = -imp
			}
			sum.Improvement[i] = imp
		}
	}
	final := rt.Initial
	if rt.Controller != nil {
		final = rt.Controller.Current()
	}
	for _, name := range rt.Spec.TenantNames() {
		tc := final.Tenant(name)
		sum.FinalConfig = append(sum.FinalConfig, TenantConfigReport{
			Tenant:                 name,
			Weight:                 tc.Weight,
			MinShare:               tc.MinShare,
			MaxShare:               tc.MaxShare,
			SharePreemptSeconds:    tc.SharePreemptTimeout.Seconds(),
			MinSharePreemptSeconds: tc.MinSharePreemptTimeout.Seconds(),
		})
	}
	return sum
}

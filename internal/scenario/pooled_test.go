package scenario

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestPooledDeterminismGoldens locks the allocation-lean hot path to the
// committed goldens: every scenario is run twice in one process, so the
// second pass executes entirely on simulation arenas, QS scratch, and
// event buffers dirtied by *other* scenarios' runs (the pools are
// process-global), and both passes must still produce byte-identical
// canonical reports. Any incomplete per-run reset in the pooled scheduler
// — a stale tenant queue, an unreset event arena, a reused Schedule
// backing array leaking records — shows up here as golden drift.
func TestPooledDeterminismGoldens(t *testing.T) {
	dir := filepath.Join("testdata", "scenarios")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var specs []string
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, ".json") && !strings.HasSuffix(name, ".golden.json") {
			specs = append(specs, name)
		}
	}
	if len(specs) < 14 {
		t.Fatalf("expected at least 14 committed scenarios, found %d", len(specs))
	}
	for pass := 0; pass < 2; pass++ {
		for _, name := range specs {
			spec, err := LoadFile(filepath.Join(dir, name))
			if err != nil {
				t.Fatalf("pass %d: loading %s: %v", pass, name, err)
			}
			rep, err := Run(spec, Options{Parallelism: 2})
			if err != nil {
				t.Fatalf("pass %d: running %s: %v", pass, name, err)
			}
			got, err := rep.MarshalCanonical()
			if err != nil {
				t.Fatalf("pass %d: marshaling %s: %v", pass, name, err)
			}
			goldenPath := filepath.Join(dir, strings.TrimSuffix(name, ".json")+".golden.json")
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("pass %d: reading golden for %s: %v", pass, name, err)
			}
			if string(got) != string(want) {
				t.Errorf("pass %d: %s: pooled run diverged from committed golden (%d vs %d bytes)",
					pass, name, len(got), len(want))
			}
		}
	}
}

package scenario

import (
	"fmt"

	"tempo/internal/cluster"
	"tempo/internal/core"
)

// Crash recovery for running scenarios. A live scenario's durable state
// splits in two (internal/store persists both):
//
//   - a periodic Snapshot: the tick cursor, the per-iteration reports, and
//     the controller's full state (sample cloud, RNG position, guard
//     memory) — everything Step consults besides what Build derives from
//     the spec;
//   - the observed schedules, recovered from the schedule-event WAL via
//     cluster.ReplaySchedule.
//
// Resume rebuilds the runtime from the spec, restores the snapshot, and
// re-drives the control loop through the WAL ticks past the snapshot
// cursor with observations injected from the replayed schedules. Because
// every other input of Step is a pure function of the spec, the resumed
// runtime continues the original trajectory bit-for-bit: after the final
// tick its Report is byte-identical to an uninterrupted Run's.

// Snapshot is the serializable checkpoint of a Runtime after Cursor
// completed ticks.
type Snapshot struct {
	// Cursor is how many control intervals had run when the snapshot was
	// taken. len(Iterations) == Cursor always.
	Cursor     int               `json:"cursor"`
	Iterations []IterationReport `json:"iterations"`
	// Controller is nil when the spec disables the control loop.
	Controller *core.ControllerState `json:"controller,omitempty"`
}

// Snapshot captures the runtime's durable state at its current tick
// cursor. The observed schedules are deliberately not part of it — they
// are the WAL's half of the durable state.
func (rt *Runtime) Snapshot() (*Snapshot, error) {
	snap := &Snapshot{
		Cursor:     len(rt.iterations),
		Iterations: make([]IterationReport, 0, len(rt.iterations)),
	}
	for _, it := range rt.iterations {
		cp := it
		cp.Observed = append([]float64(nil), it.Observed...)
		snap.Iterations = append(snap.Iterations, cp)
	}
	if rt.Controller != nil {
		cs, err := rt.Controller.Snapshot()
		if err != nil {
			return nil, fmt.Errorf("scenario %s: %w", rt.Spec.Name, err)
		}
		snap.Controller = cs
	}
	return snap, nil
}

// Resume rebuilds a runtime mid-scenario from its durable state: the spec
// (rebuilt via Build), an optional snapshot, and the schedules observed
// before the crash (ticks 0..len(schedules), oldest first — in recovery,
// WAL-replayed). Ticks covered by the snapshot are restored directly;
// ticks past the snapshot cursor but covered by a schedule are re-driven
// through the control loop with the recorded observation injected in
// place of re-simulation. The returned runtime has StepsDone() ==
// len(schedules) and continues stepping live from there.
//
// A nil snap recovers from schedules alone (full re-drive). The snapshot
// is rejected — fall back to Resume(spec, opts, nil, schedules) — when it
// reaches past the recovered schedules or does not match the spec's
// controller toggle.
func Resume(spec *Spec, opts Options, snap *Snapshot, schedules []*cluster.Schedule) (*Runtime, error) {
	rt, err := Build(spec, opts)
	if err != nil {
		return nil, err
	}
	if len(schedules) > spec.Iterations {
		return nil, fmt.Errorf("scenario %s: %d recovered schedules exceed the %d-iteration budget", spec.Name, len(schedules), spec.Iterations)
	}
	cursor := 0
	if snap != nil {
		if snap.Cursor != len(snap.Iterations) {
			return nil, fmt.Errorf("scenario %s: snapshot cursor %d != %d recorded iterations", spec.Name, snap.Cursor, len(snap.Iterations))
		}
		if snap.Cursor > len(schedules) {
			return nil, fmt.Errorf("scenario %s: snapshot cursor %d reaches past the %d recovered schedules", spec.Name, snap.Cursor, len(schedules))
		}
		if (snap.Controller != nil) != (rt.Controller != nil) {
			return nil, fmt.Errorf("scenario %s: snapshot controller state does not match the spec's controller toggle", spec.Name)
		}
		if rt.Controller != nil {
			if err := rt.Controller.Restore(snap.Controller); err != nil {
				return nil, fmt.Errorf("scenario %s: %w", spec.Name, err)
			}
		}
		cursor = snap.Cursor
		rt.iterations = append(rt.iterations, snap.Iterations...)
		rt.env.schedules = append(rt.env.schedules, schedules[:cursor]...)
	}
	// Re-drive the WAL tail: each Step consumes one injected observation
	// and recomputes everything else (QS evaluation, candidate scoring,
	// controller bookkeeping) exactly as the live run did.
	rt.env.injected = append(rt.env.injected, schedules[cursor:]...)
	for len(rt.iterations) < len(schedules) {
		if _, err := rt.Step(); err != nil {
			return nil, fmt.Errorf("scenario %s: re-driving tick %d: %w", spec.Name, len(rt.iterations), err)
		}
	}
	if len(rt.env.injected) != 0 {
		return nil, fmt.Errorf("scenario %s: %d injected observations left unconsumed", spec.Name, len(rt.env.injected))
	}
	return rt, nil
}

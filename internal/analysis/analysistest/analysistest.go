// Package analysistest runs tempolint analyzers over fixture packages
// and checks their diagnostics against expectations in the fixture
// source, following the golang.org/x/tools/go/analysis/analysistest
// convention it re-implements without the dependency:
//
//   - fixtures live under <dir>/src/<importpath>/*.go and may import
//     the standard library or sibling fixture packages;
//   - a line expecting diagnostics carries a trailing comment
//     `// want "re1" "re2" ...` where each quoted string is a regular
//     expression matched against one diagnostic's message on that line;
//   - every diagnostic must be wanted and every want must be matched,
//     in both directions, or the test fails.
//
// Suppressed diagnostics (tempolint:ignore) are dropped before
// matching, so a fixture demonstrating an accepted suppression simply
// has a violating line, an ignore comment, and no want.
package analysistest

import (
	"regexp"
	"strings"
	"testing"

	"tempo/internal/analysis"
	"tempo/internal/analysis/load"
)

// Run loads each fixture package from dir/src and applies the
// analyzers, reporting expectation mismatches on t. It returns the
// unsuppressed diagnostics for optional further assertions.
func Run(t *testing.T, dir string, analyzers []*analysis.Analyzer, pkgs ...string) []analysis.Diagnostic {
	t.Helper()
	l := load.NewFixture([]string{dir + "/src"})
	diags, err := analysis.Run(l, pkgs, analyzers, analysis.Options{ReportUnusedIgnores: true})
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	var live []analysis.Diagnostic
	for _, d := range diags {
		if !d.Suppressed {
			live = append(live, d)
		}
	}
	wants := collectWants(t, l, pkgs)
	matchDiags(t, live, wants)
	return live
}

// want is one expectation: a regexp on a specific file line.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

// quoted matches one expectation pattern: a Go-style double-quoted
// string or a backquoted raw string.
var quoted = regexp.MustCompile("`([^`]*)`" + `|"((?:[^"\\]|\\.)*)"`)

func collectWants(t *testing.T, l *load.Loader, pkgs []string) []*want {
	t.Helper()
	var wants []*want
	for _, path := range pkgs {
		pkg, err := l.LoadPackage(path)
		if err != nil {
			t.Fatalf("reloading fixture %s: %v", path, err)
		}
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := l.Fset.Position(c.Pos())
					for _, q := range quoted.FindAllStringSubmatch(m[1], -1) {
						text := q[1]
						if text == "" {
							text = strings.ReplaceAll(q[2], `\"`, `"`)
						}
						re, err := regexp.Compile(text)
						if err != nil {
							t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, text, err)
						}
						wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, raw: text})
					}
				}
			}
		}
	}
	return wants
}

func matchDiags(t *testing.T, diags []analysis.Diagnostic, wants []*want) {
	t.Helper()
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic:\n  %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("no diagnostic at %s:%d matching %q", w.file, w.line, w.raw)
		}
	}
}

// Package whatif implements Tempo's What-if Model (§7): it answers "what
// would the QS vector be if the RM ran configuration x on workload w?" by
// composing the Workload Generator, the fast Schedule Predictor, and QS
// evaluation. The Optimizer calls it for every candidate configuration it
// explores.
package whatif

import (
	"errors"
	"fmt"
	"math"
	"time"

	"tempo/internal/cluster"
	"tempo/internal/qs"
	"tempo/internal/workload"
)

// Generator produces the workload for one what-if sample. Implementations
// may replay a fixed historical trace (sample index ignored) or synthesize
// fresh workloads with the same statistical characteristics per sample —
// the two modes of §7.1. A batch calls the generator exactly once per
// sample index and shares the returned trace, read-only, across every
// candidate configuration; the trace must not be mutated afterwards.
type Generator func(sample int) (*workload.Trace, error)

// Predictor turns (workload, configuration) into a task schedule. The
// default is the built-in fast Schedule Predictor; §7.2 notes Tempo can
// instead drive existing RM simulators (Borg, Apollo, Omega, the YARN
// Scheduler Load Simulator, ...) — an adapter for such a simulator
// implements this signature. The trace is shared by every candidate of a
// batch (and, with Parallelism > 1, by concurrent workers): predictors
// must treat it as read-only.
type Predictor func(trace *workload.Trace, cfg cluster.Config, horizon time.Duration) (*cluster.Schedule, error)

// DefaultPredictor is the built-in time-warp Schedule Predictor.
func DefaultPredictor(trace *workload.Trace, cfg cluster.Config, horizon time.Duration) (*cluster.Schedule, error) {
	return cluster.Run(trace, cfg, cluster.Options{Horizon: horizon})
}

// Model evaluates QS vectors for candidate RM configurations.
type Model struct {
	// Templates define the QS vector's components, in order.
	Templates []qs.Template
	// Gen supplies the workload for each sample.
	Gen Generator
	// Samples is how many workload draws to average per evaluation,
	// realizing the expectation E[f(x; w)] of problem (SP1). Minimum 1.
	Samples int
	// Horizon optionally caps each predicted run; zero runs every job to
	// completion.
	Horizon time.Duration
	// Predict produces the task schedule; nil uses DefaultPredictor.
	Predict Predictor
	// Parallelism caps the worker goroutines Evaluate, EvaluateBatch, and
	// Sensitivity fan out over (configuration, sample) pairs — the paper's
	// §7 observation that what-if evaluations are embarrassingly parallel.
	// Values below 2 evaluate sequentially on the calling goroutine. The
	// QS vectors are bit-identical for every setting; only wall-clock time
	// changes. When Parallelism > 1, Gen and Predict must be safe for
	// concurrent use (the built-in generators and predictor are).
	Parallelism int

	// search is EvaluateSearch's lazily initialized cross-tick state. A
	// pointer, so value copies of a Model share it — safe, because every
	// cached entry is verified with an exact equality check before reuse.
	// EvaluateBatch never touches it.
	search *searchState
}

// New returns a model over the given generator.
func New(templates []qs.Template, gen Generator) (*Model, error) {
	if len(templates) == 0 {
		return nil, errors.New("whatif: no QS templates")
	}
	for _, t := range templates {
		if err := t.Validate(); err != nil {
			return nil, err
		}
	}
	if gen == nil {
		return nil, errors.New("whatif: nil workload generator")
	}
	return &Model{Templates: templates, Gen: gen, Samples: 1}, nil
}

// FromTrace returns a model that replays one fixed trace — the "replaying
// historical traces" mode.
func FromTrace(templates []qs.Template, trace *workload.Trace) (*Model, error) {
	if trace == nil {
		return nil, errors.New("whatif: nil trace")
	}
	return New(templates, func(int) (*workload.Trace, error) { return trace, nil })
}

// FromProfiles returns a model that synthesizes a fresh workload per sample
// from statistical tenant profiles — the "statistical model" mode, which
// §7.1 notes can also test sensitivity and extended characteristics.
func FromProfiles(templates []qs.Template, profiles []workload.TenantProfile, horizon time.Duration, baseSeed int64) (*Model, error) {
	gen := func(sample int) (*workload.Trace, error) {
		return workload.Generate(profiles, workload.GenerateOptions{
			Horizon: horizon,
			Seed:    mixSeed(baseSeed, sample),
			Name:    fmt.Sprintf("whatif-%d", sample),
		})
	}
	return New(templates, gen)
}

// mixSeed derives the per-sample workload seed from the model's base seed
// with a splitmix64 finalizer. A plain linear stride (baseSeed + sample*k)
// lets distinct base seeds alias the same sample trace — base 0 at sample 1
// equals base k at sample 0 — so two models meant to be independent would
// silently share workload draws.
func mixSeed(base int64, sample int) int64 {
	z := uint64(base) + (uint64(sample)+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// Evaluate predicts the QS vector under cfg, averaged over the model's
// sample count. With Parallelism > 1 the samples are scored concurrently;
// the result is bit-identical either way.
func (m *Model) Evaluate(cfg cluster.Config) ([]float64, error) {
	rows, err := m.EvaluateBatch([]cluster.Config{cfg})
	if err != nil {
		return nil, err
	}
	return rows[0], nil
}

// Sensitivity evaluates cfg over n independent workload draws and returns
// the per-objective mean and standard deviation of the QS vector — §7.1's
// "generate multiple synthetic workloads with the same distribution in
// order to test the sensitivity of parameter settings". A configuration
// whose QS varies wildly across draws is fragile even if its mean looks
// good.
func (m *Model) Sensitivity(cfg cluster.Config, n int) (mean, stddev []float64, err error) {
	if n < 2 {
		return nil, nil, errors.New("whatif: sensitivity needs n >= 2 samples")
	}
	vecs, err := m.evalPairs([]cluster.Config{cfg}, n)
	if err != nil {
		return nil, nil, err
	}
	k := len(m.Templates)
	sum := make([]float64, k)
	sumSq := make([]float64, k)
	for s := 0; s < n; s++ {
		for i, x := range vecs[s] {
			sum[i] += x
			sumSq[i] += x * x
		}
	}
	mean = make([]float64, k)
	stddev = make([]float64, k)
	for i := 0; i < k; i++ {
		mean[i] = sum[i] / float64(n)
		variance := sumSq[i]/float64(n) - mean[i]*mean[i]
		if variance < 0 {
			variance = 0
		}
		stddev[i] = math.Sqrt(variance)
	}
	return mean, stddev, nil
}

// EvaluateSchedule scores an already-produced schedule against the model's
// templates over [0, horizon]. The control loop uses this to evaluate the
// *observed* task schedule each iteration. Evaluation goes through
// qs.EvalStream, which picks per-template scans or the one-pass
// event-stream accumulator by template count; results are identical
// either way.
func (m *Model) EvaluateSchedule(sched *cluster.Schedule) []float64 {
	return qs.EvalStream(m.Templates, sched, 0, sched.Horizon+time.Nanosecond)
}

// Deadline-mix reproduces the §8.2.1 scenario in miniature: a
// deadline-driven production tenant and a best-effort tenant share an
// overcommitted cluster. Tempo must cut the best-effort tenant's response
// time without breaking the production deadlines — the trade-off Figure 6
// plots.
//
//	go run ./examples/deadline-mix
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"tempo"
)

const (
	capacity   = 48
	interval   = time.Hour
	iterations = 14
)

func main() {
	// A Cloudera-like deadline tenant and a Facebook-like best-effort
	// tenant — the mixes the paper replayed on EC2 — with deadlines
	// attached to the production tenant.
	deadline := tempo.Cloudera("deadline", 2.2)
	deadline.DeadlineFactor = tempo.Uniform{Lo: 1.1, Hi: 1.8}
	deadline.DeadlineParallelism = 16
	bestEffort := tempo.Facebook("besteffort", 2.2)

	trace, err := tempo.Generate([]tempo.TenantProfile{deadline, bestEffort},
		tempo.GenerateOptions{Horizon: interval, Seed: 1019})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %d jobs / %d tasks per interval\n", len(trace.Jobs), trace.TaskCount())

	// SLOs: zero tolerated deadline violations (with 25% slack); the
	// best-effort tenant's response time ratchets downward.
	templates := []tempo.Template{
		tempo.Template{Queue: "deadline", Metric: tempo.DeadlineViolations, Slack: 0.25}.WithTarget(0),
		{Queue: "besteffort", Metric: tempo.AvgResponseTime},
	}
	model, err := tempo.NewWhatIfFromTrace(templates, trace)
	if err != nil {
		log.Fatal(err)
	}
	model.Horizon = interval
	model.Parallelism = tempo.DefaultParallelism()

	// The expert baseline: deadline tenant protected, best-effort boxed in.
	initial := tempo.ClusterConfig{
		TotalContainers: capacity,
		Tenants: map[string]tempo.TenantConfig{
			"deadline":   {Weight: 2, MinShare: capacity / 4, MinSharePreemptTimeout: time.Minute, SharePreemptTimeout: 5 * time.Minute},
			"besteffort": {Weight: 0.4, MaxShare: capacity / 5},
		},
	}
	ctl, err := tempo.NewController(tempo.ControllerConfig{
		Space:       tempo.DefaultSpace(capacity, []string{"deadline", "besteffort"}),
		Templates:   templates,
		Model:       model,
		Environment: &tempo.ReplayEnvironment{Trace: trace, Noise: tempo.DefaultNoise(3)},
		Interval:    interval,
		Candidates:  5,
	}, initial)
	if err != nil {
		log.Fatal(err)
	}

	history, err := ctl.Run(iterations)
	if err != nil {
		log.Fatal(err)
	}

	// Plot the trajectory as spark bars, normalized to iteration 0.
	base := history[0].Observed[1]
	fmt.Println("\niter  DL-miss  best-effort AJR (normalized)")
	for _, it := range history {
		norm := it.Observed[1] / base
		bar := strings.Repeat("#", int(norm*30+0.5))
		fmt.Printf("%4d  %7.3f  %5.2f %s\n", it.Index, it.Observed[0], norm, bar)
	}
	first := history[0]
	tail := history[len(history)-len(history)/4:]
	var ajr, dl float64
	for _, it := range tail {
		ajr += it.Observed[1]
		dl += it.Observed[0]
	}
	ajr /= float64(len(tail))
	dl /= float64(len(tail))
	fmt.Printf("\nbest-effort AJR: %.0fs -> %.0fs (%.0f%% lower)\n",
		first.Observed[1], ajr, (1-ajr/first.Observed[1])*100)
	fmt.Printf("deadline violations: %.1f%% -> %.1f%%\n", first.Observed[0]*100, dl*100)
}

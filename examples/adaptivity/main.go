// Adaptivity reproduces §8.2.3: under a drifting workload, each control
// interval sees a different slice of the trace, and the choice of interval
// length trades reaction speed against stability (Figure 11).
//
//	go run ./examples/adaptivity
package main

import (
	"fmt"
	"log"
	"time"

	"tempo"
)

const capacity = 48

func main() {
	// A drifting workload: arrival rates swing through a day/night cycle.
	deadline := tempo.Cloudera("deadline", 2.2)
	deadline.DeadlineFactor = tempo.Uniform{Lo: 1.1, Hi: 1.8}
	deadline.DeadlineParallelism = 16
	deadline.Rate = tempo.DiurnalWeekly(0.4, 1)
	bestEffort := tempo.Facebook("besteffort", 2.2)
	bestEffort.Rate = tempo.DiurnalWeekly(0.4, 1)

	horizon := 8 * time.Hour
	trace, err := tempo.Generate([]tempo.TenantProfile{deadline, bestEffort},
		tempo.GenerateOptions{Horizon: horizon, Seed: 77})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("drifting workload: %d jobs over %s\n", len(trace.Jobs), horizon)

	templates := []tempo.Template{
		tempo.Template{Queue: "deadline", Metric: tempo.DeadlineViolations, Slack: 0.25}.WithTarget(0),
		{Queue: "besteffort", Metric: tempo.AvgResponseTime},
	}
	expert := tempo.ClusterConfig{
		TotalContainers: capacity,
		Tenants: map[string]tempo.TenantConfig{
			"deadline":   {Weight: 2, MinShare: capacity / 4, MinSharePreemptTimeout: time.Minute, SharePreemptTimeout: 5 * time.Minute},
			"besteffort": {Weight: 0.4, MaxShare: capacity / 5},
		},
	}

	// Baseline: the untouched expert configuration over the whole trace.
	base, err := tempo.Run(trace, expert, tempo.RunOptions{Horizon: horizon, Noise: tempo.DefaultNoise(78)})
	if err != nil {
		log.Fatal(err)
	}
	baseVals := tempo.Evaluate(templates, base, 0, base.Horizon+time.Nanosecond)
	fmt.Printf("\nuntuned expert baseline: DL-miss %.1f%%, best-effort AJR %.0fs\n\n",
		baseVals[0]*100, baseVals[1])

	fmt.Printf("%10s  %12s  %14s\n", "interval", "DL-miss (%)", "AJR vs expert")
	for _, interval := range []time.Duration{15 * time.Minute, 30 * time.Minute, 45 * time.Minute} {
		// The What-if Model regenerates workloads with the drifting
		// statistics; the environment windows through the real trace.
		model, err := tempo.NewWhatIfFromProfiles(templates,
			[]tempo.TenantProfile{deadline, bestEffort}, interval, 79)
		if err != nil {
			log.Fatal(err)
		}
		model.Parallelism = tempo.DefaultParallelism()
		model.Horizon = interval
		ctl, err := tempo.NewController(tempo.ControllerConfig{
			Space:       tempo.DefaultSpace(capacity, []string{"deadline", "besteffort"}),
			Templates:   templates,
			Model:       model,
			Environment: &tempo.TraceEnvironment{Trace: trace, Noise: tempo.DefaultNoise(80)},
			Interval:    interval,
			Candidates:  5,
		}, expert)
		if err != nil {
			log.Fatal(err)
		}
		iters := int(horizon / interval)
		history, err := ctl.Run(iters)
		if err != nil {
			log.Fatal(err)
		}
		// Average over the second half, after the loop has had time to adapt.
		half := history[len(history)/2:]
		var ajr, dl float64
		n := 0
		for _, it := range half {
			if it.Observed[1] > 0 {
				ajr += it.Observed[1]
				dl += it.Observed[0]
				n++
			}
		}
		if n > 0 {
			ajr /= float64(n)
			dl /= float64(n)
		}
		fmt.Printf("%10s  %12.1f  %13.2fx\n", interval, dl*100, ajr/baseVals[1])
	}
	fmt.Println("\nsmaller intervals react faster to drift; the paper's 45-minute window")
	fmt.Println("matched the baseline's deadline compliance while cutting AJR by 22%.")
}

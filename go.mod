module tempo

go 1.21

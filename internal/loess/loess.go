// Package loess implements locally weighted linear regression (LOESS,
// Cleveland & Devlin 1988) for estimating the value and gradient of a noisy
// function from scattered samples.
//
// PALD (Tempo §6.3.1) estimates QS gradients with LOESS: each control-loop
// iteration contributes a few (RM configuration, measured QS) samples, and
// the optimizer needs ∇f at the current configuration despite measurement
// noise. A local *linear* fit is used because only the first-order term
// (the gradient) is consumed.
package loess

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"tempo/internal/linalg"
)

// Sample is one observation of the target function.
type Sample struct {
	X linalg.Vector
	Y float64
}

// Options configure a LOESS fit.
type Options struct {
	// Span is the fraction of samples included in the local neighbourhood
	// (classic LOESS α). Values outside (0, 1] are clamped; the default
	// 0.75 mirrors common practice.
	Span float64
	// Ridge is a Tikhonov regularizer added to the normal equations. It
	// keeps the fit well-posed when the sample cloud is thin along some
	// directions. Defaults to 1e-8.
	Ridge float64
}

func (o Options) withDefaults() Options {
	if o.Span <= 0 || o.Span > 1 {
		o.Span = 0.75
	}
	if o.Ridge <= 0 {
		o.Ridge = 1e-8
	}
	return o
}

// ErrTooFewSamples is returned when fewer samples than dimensions+1 are
// available in the neighbourhood.
var ErrTooFewSamples = errors.New("loess: too few samples for local fit")

// Fit is the result of a local regression around a query point.
type Fit struct {
	// Value is the fitted function value at the query point.
	Value float64
	// Gradient is the fitted local gradient at the query point.
	Gradient linalg.Vector
}

// Estimate fits a locally weighted linear model around x0 and returns the
// fitted value and gradient there.
func Estimate(samples []Sample, x0 linalg.Vector, opts Options) (Fit, error) {
	opts = opts.withDefaults()
	dim := len(x0)
	if dim == 0 {
		return Fit{}, errors.New("loess: empty query point")
	}
	n := len(samples)
	need := dim + 1
	if n < need {
		return Fit{}, fmt.Errorf("%w: have %d, need at least %d", ErrTooFewSamples, n, need)
	}

	// Neighbourhood: the ceil(span*n) nearest samples, but never fewer
	// than dim+1.
	type distSample struct {
		d float64
		s Sample
	}
	ds := make([]distSample, 0, n)
	for _, s := range samples {
		if len(s.X) != dim {
			return Fit{}, fmt.Errorf("loess: sample dimension %d != query dimension %d", len(s.X), dim)
		}
		ds = append(ds, distSample{d: s.X.Dist(x0), s: s})
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i].d < ds[j].d })
	k := int(math.Ceil(opts.Span * float64(n)))
	if k < need {
		k = need
	}
	if k > n {
		k = n
	}
	// If every selected neighbour coincides with x0 the fit would
	// degenerate to a mean; widen the neighbourhood until it contains at
	// least one informative point.
	for k < n && ds[k-1].d <= 0 {
		k++
	}
	h := ds[k-1].d

	rows := linalg.NewMatrix(k, dim+1)
	y := linalg.NewVector(k)
	w := linalg.NewVector(k)
	for i := 0; i < k; i++ {
		s := ds[i].s
		row := rows.Row(i)
		row[0] = 1
		diff := s.X.Sub(x0)
		copy(row[1:], diff)
		y[i] = s.Y
		w[i] = tricube(ds[i].d, h)
	}
	beta, err := linalg.WeightedLeastSquares(rows, y, w, opts.Ridge)
	if err != nil {
		return Fit{}, fmt.Errorf("loess: %w", err)
	}
	return Fit{Value: beta[0], Gradient: linalg.Vector(beta[1:]).Clone()}, nil
}

// Gradient is a convenience wrapper around Estimate returning only ∇f.
func Gradient(samples []Sample, x0 linalg.Vector, opts Options) (linalg.Vector, error) {
	fit, err := Estimate(samples, x0, opts)
	if err != nil {
		return nil, err
	}
	return fit.Gradient, nil
}

// tricube is the standard LOESS kernel (1 − u³)³ on [0, 1).
func tricube(d, h float64) float64 {
	if h <= 0 {
		return 1
	}
	u := d / h
	if u >= 1 {
		// The farthest included neighbour would get zero weight, which can
		// starve the fit in tiny neighbourhoods; give it a small floor.
		return 1e-6
	}
	c := 1 - u*u*u
	return c * c * c
}

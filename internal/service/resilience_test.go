package service_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tempo"
	"tempo/internal/chaos"
	"tempo/internal/scenario"
	"tempo/internal/service"
)

// mustChaos builds an injector and fails the test on a bad spec.
func mustChaos(t *testing.T, seed int64, spec chaos.Spec) *chaos.Injector {
	t.Helper()
	inj, err := chaos.New(seed, spec)
	if err != nil {
		t.Fatal(err)
	}
	return inj
}

// sequentialReport runs the spec uninterrupted in process and returns its
// canonical report bytes — the golden every resilience test compares
// service output against.
func sequentialReport(t *testing.T, spec *scenario.Spec) []byte {
	t.Helper()
	ref, err := scenario.Run(spec, scenario.Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	return want
}

// TestOverloadShedsWithRetryAfter saturates a one-worker, one-slot
// service with slow ticks and requires the API to shed the overflow as
// 503 {error, code: overloaded} with an integer Retry-After hint — then
// proves the sheds were free: retrying the shed ticks to completion
// yields a report byte-identical to the sequential run.
func TestOverloadShedsWithRetryAfter(t *testing.T) {
	spec := smallSpec(t, 6)
	want := sequentialReport(t, spec)

	svc, ts := newTestServer(t, service.Config{
		Shards:           1,
		WorkersPerShard:  1,
		QueueDepth:       1,
		AdmissionTimeout: 30 * time.Millisecond,
		Chaos: mustChaos(t, 1, chaos.Spec{
			TickLatency: 1.0, TickLatencyMs: 150,
			// Handler-level shedding off: this test isolates queue overload.
		}),
	})
	createCluster(t, ts.URL, "c1", spec)

	// First wave: more concurrent ticks than worker+queue can hold. The
	// overflow must come back 503 overloaded, not block and not execute.
	const wave = 8
	type outcome struct {
		code       int
		body       []byte
		retryAfter string
	}
	results := make([]outcome, wave)
	var wg sync.WaitGroup
	for i := 0; i < wave; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/clusters/c1/tick", "application/json", nil)
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			var buf bytes.Buffer
			buf.ReadFrom(resp.Body) //nolint:errcheck
			results[i] = outcome{resp.StatusCode, buf.Bytes(), resp.Header.Get("Retry-After")}
		}(i)
	}
	wg.Wait()

	succeeded, shed := 0, 0
	for _, r := range results {
		switch r.code {
		case http.StatusOK:
			succeeded++
		case http.StatusServiceUnavailable:
			shed++
			var env service.ErrorEnvelope
			if err := json.Unmarshal(r.body, &env); err != nil {
				t.Fatalf("shed response is not the error envelope: %s", r.body)
			}
			if env.Code != service.CodeOverloaded {
				t.Fatalf("shed response code = %q, want %q (%s)", env.Code, service.CodeOverloaded, r.body)
			}
			secs, err := strconv.Atoi(r.retryAfter)
			if err != nil || secs < 1 {
				t.Fatalf("shed response Retry-After = %q, want integer seconds >= 1", r.retryAfter)
			}
		default:
			t.Fatalf("tick returned %d: %s", r.code, r.body)
		}
	}
	if shed == 0 {
		t.Fatal("no request was shed: overload never triggered")
	}
	if succeeded == 0 {
		t.Fatal("every request was shed: admission never succeeded")
	}

	// Retry phase: a shed is a promise the tick never ran, so driving the
	// remaining budget must land exactly on the sequential trajectory.
	c, err := svc.Get("c1")
	if err != nil {
		t.Fatal(err)
	}
	for !c.Session().Done() {
		if _, _, err := svc.Tick(context.Background(), c); err != nil && !errors.Is(err, service.ErrOverloaded) {
			t.Fatal(err)
		}
	}
	got, err := c.Session().Report().MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("report after shed+retry differs from sequential run — a shed tick executed")
	}
	if m := svc.Metrics(); m.ShedRequests == 0 {
		t.Fatal("metrics shed_requests = 0 after observed sheds")
	}
}

// TestAdmissionHonorsRequestDeadline: a caller whose context expires
// while its tick is stuck in admission gets ErrOverloaded promptly — the
// wait is bounded by the earlier of the request deadline and
// AdmissionTimeout, not by queue drain.
func TestAdmissionHonorsRequestDeadline(t *testing.T) {
	svc, ts := newTestServer(t, service.Config{
		Shards:           1,
		WorkersPerShard:  1,
		QueueDepth:       1,
		AdmissionTimeout: 10 * time.Second, // deliberately long: the ctx must win
		Chaos:            mustChaos(t, 1, chaos.Spec{TickLatency: 1.0, TickLatencyMs: 300}),
	})
	spec := smallSpec(t, 50)
	createCluster(t, ts.URL, "c1", spec)
	c, err := svc.Get("c1")
	if err != nil {
		t.Fatal(err)
	}

	// Fill the worker and the queue slot with slow ticks.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			svc.Tick(context.Background(), c) //nolint:errcheck
		}()
	}
	time.Sleep(50 * time.Millisecond) // let both occupy worker + queue

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err = svc.Tick(ctx, c)
	elapsed := time.Since(start)
	if !errors.Is(err, service.ErrOverloaded) {
		t.Fatalf("deadline-expired admission returned %v, want ErrOverloaded", err)
	}
	if elapsed > time.Second {
		t.Fatalf("shed took %v, want prompt rejection at the ~20ms deadline", elapsed)
	}
	wg.Wait()
}

// TestShedsNeverCorruptSerialization is the -race hammer: many goroutines
// slam one cluster through a tiny admission window, so a large fraction
// of ticks shed. Exactly Iterations ticks may succeed, and the final
// report must match the sequential run — sheds never half-execute.
func TestShedsNeverCorruptSerialization(t *testing.T) {
	spec := smallSpec(t, 30)
	want := sequentialReport(t, spec)

	svc, ts := newTestServer(t, service.Config{
		Shards:           1,
		WorkersPerShard:  1,
		QueueDepth:       1,
		AdmissionTimeout: 2 * time.Millisecond,
		Chaos:            mustChaos(t, 3, chaos.Spec{TickLatency: 0.5, TickLatencyMs: 5}),
	})
	createCluster(t, ts.URL, "c1", spec)
	c, err := svc.Get("c1")
	if err != nil {
		t.Fatal(err)
	}

	var successes, sheds atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for successes.Load() < int64(spec.Iterations) {
				_, _, err := svc.Tick(context.Background(), c)
				switch {
				case err == nil:
					successes.Add(1)
				case errors.Is(err, service.ErrOverloaded):
					sheds.Add(1)
				case errors.Is(err, tempo.ErrSessionDone):
					return // raced past the budget; fine
				default:
					t.Errorf("tick: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if got := successes.Load(); got != int64(spec.Iterations) {
		t.Fatalf("%d ticks succeeded, want exactly %d", got, spec.Iterations)
	}
	if sheds.Load() == 0 {
		t.Fatal("no sheds under a 2ms admission window — hammer never contended")
	}
	got, err := c.Session().Report().MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("hammered report differs from sequential run")
	}
}

// TestDegradedMode walks the full degraded-cluster lifecycle: a WAL
// fault flips the cluster read-only (writes 503 degraded, reads keep
// serving the last committed state), the recovery probe re-arms it, and
// the finished run is byte-identical to a fault-free sequential run.
func TestDegradedMode(t *testing.T) {
	spec := smallSpec(t, 6)
	want := sequentialReport(t, spec)

	dir := t.TempDir()
	svc, ts := newTestServer(t, service.Config{
		Store:                 openStore(t, dir),
		SnapshotEvery:         2,
		RecoveryProbeInterval: time.Hour, // probe manually; no background races
	})
	createCluster(t, ts.URL, "c1", spec)
	c, err := svc.Get("c1")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, _, err := svc.Tick(context.Background(), c); err != nil {
			t.Fatal(err)
		}
	}

	// Break the WAL: the next append fails mid-write.
	if err := svc.InjectWALFault("c1"); err != nil {
		t.Fatal(err)
	}
	code, body := do(t, "POST", ts.URL+"/v1/clusters/c1/tick", "")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("tick on faulted WAL = %d, want 503: %s", code, body)
	}
	var env service.ErrorEnvelope
	if err := json.Unmarshal(body, &env); err != nil || env.Code != service.CodeDegraded {
		t.Fatalf("degraded tick envelope = %s, want code %q", body, service.CodeDegraded)
	}
	if !c.Degraded() {
		t.Fatal("cluster not marked degraded after WAL append failure")
	}
	// The in-memory session must have rolled back to the committed
	// prefix — a tick the store never logged must not be visible.
	if got := c.Session().Ticks(); got != 2 {
		t.Fatalf("degraded session at tick %d, want rollback to committed tick 2", got)
	}

	// Reads keep serving last committed state.
	if code, body := do(t, "GET", ts.URL+"/v1/clusters/c1/qs", ""); code != http.StatusOK {
		t.Fatalf("qs on degraded cluster = %d, want 200: %s", code, body)
	}
	if code, body := do(t, "GET", ts.URL+"/v1/clusters/c1/report", ""); code != http.StatusOK {
		t.Fatalf("report on degraded cluster = %d, want 200: %s", code, body)
	}

	// A second write is refused at the door — degraded clusters never
	// reach the worker, so the broken store is not hammered.
	if code, _ := do(t, "POST", ts.URL+"/v1/clusters/c1/tick", ""); code != http.StatusServiceUnavailable {
		t.Fatalf("second tick on degraded cluster = %d, want 503", code)
	}
	if m := svc.Metrics(); m.DegradedClusters != 1 {
		t.Fatalf("metrics degraded_clusters = %d, want 1", m.DegradedClusters)
	}

	// Recovery: the probe reopens the WAL (clearing the injected fault),
	// resumes from disk, and re-arms the cluster.
	if n := svc.ProbeRecovery(); n != 1 {
		t.Fatalf("ProbeRecovery recovered %d clusters, want 1", n)
	}
	if c.Degraded() {
		t.Fatal("cluster still degraded after successful probe")
	}
	if m := svc.Metrics(); m.DegradedClusters != 0 {
		t.Fatalf("metrics degraded_clusters = %d after recovery, want 0", m.DegradedClusters)
	}
	c, err = svc.Get("c1") // rearm swaps the session; re-fetch
	if err != nil {
		t.Fatal(err)
	}
	for !c.Session().Done() {
		if _, _, err := svc.Tick(context.Background(), c); err != nil {
			t.Fatal(err)
		}
	}
	got, err := c.Session().Report().MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("recovered cluster's report differs from fault-free sequential run")
	}
}

// chaosDrive runs one full load-generation pass against a durable,
// chaos-injected service and returns the drive report plus the
// injector's decision counts. The drive itself asserts byte-identical
// reports (Verify), so a nil error means every surviving cluster matched
// its fault-free sequential golden.
func chaosDrive(t *testing.T, seed int64, clusters int) (*service.DriveReport, chaos.Counts) {
	t.Helper()
	inj := mustChaos(t, seed, chaos.Spec{
		TickLatency: 0.2, TickLatencyMs: 5,
		WALFault:     0.25,
		HandlerError: 0.05,
		FsyncStall:   0.1, FsyncStallMs: 2,
	})
	_, ts := newTestServer(t, service.Config{
		Store:                 openStore(t, t.TempDir()),
		SnapshotEvery:         2,
		RecoveryProbeInterval: 25 * time.Millisecond,
		Chaos:                 inj,
	})
	rep, err := service.Drive(ts.URL, service.DriveOptions{
		Clusters:  clusters,
		Workers:   8,
		Verify:    true,
		Retries:   12,
		RetryBase: 5 * time.Millisecond,
		RetryMax:  100 * time.Millisecond,
		RetrySeed: seed,
	})
	if err != nil {
		t.Fatalf("drive under chaos (seed %d): %v", seed, err)
	}
	if rep.Verified != clusters {
		t.Fatalf("seed %d: %d/%d clusters verified byte-identical", seed, rep.Verified, clusters)
	}
	return rep, inj.Counts()
}

// TestChaosDeterministicOutcome is the acceptance gate for the chaos
// subsystem: under a fixed seed injecting WAL faults, tick latency, and
// handler errors, every cluster's report is byte-identical to its
// fault-free sequential golden (asserted inside the drive), every failed
// request carried the {error, code} envelope (the driver only retries
// envelope refusals — a bare failure would surface as a drive error),
// and no shard worker deadlocks (the drive completes). Run twice, the
// per-cluster fault schedule is identical: tick-stream decisions are
// pure functions of (seed, cluster, tick sequence), untouched by timing.
func TestChaosDeterministicOutcome(t *testing.T) {
	const seed = 42
	rep1, counts1 := chaosDrive(t, seed, 4)
	rep2, counts2 := chaosDrive(t, seed, 4)

	if counts1.TickDelays != counts2.TickDelays || counts1.WALFaults != counts2.WALFaults {
		t.Fatalf("per-cluster fault schedule not deterministic across runs: %+v vs %+v", counts1, counts2)
	}
	if counts1.WALFaults == 0 {
		t.Fatalf("seed %d injected no WAL faults — pick a seed that exercises degraded mode (counts %+v)", seed, counts1)
	}
	if counts1.TickDelays == 0 {
		t.Fatalf("seed %d injected no tick latency (counts %+v)", seed, counts1)
	}
	if rep1.Retries == 0 || rep2.Retries == 0 {
		t.Fatalf("drives absorbed no sheds (retries %d, %d) — chaos never bit", rep1.Retries, rep2.Retries)
	}
}

// TestChaosSweepRandomSeed is the nightly sweep body: one full chaos
// drive at a fresh random seed. Locally it runs once; nightly CI runs it
// -count=20 under -race, so twenty independent schedules must all either
// serve correct bytes or shed cleanly. The seed is logged for replay.
func TestChaosSweepRandomSeed(t *testing.T) {
	seed := rand.Int63()
	t.Logf("chaos sweep seed %d (replay: chaos.New(%d, spec))", seed, seed)
	rep, counts := chaosDrive(t, seed, 3)
	t.Logf("seed %d: %d ticks, %d retries, counts %+v", seed, rep.Ticks, rep.Retries, counts)
}

// TestDriveRetriesThroughInjected503s is the client-resilience
// acceptance: with ~10%% of requests shed at the door by chaos, a drive
// with retries enabled still converges and reproduces
// sequential-vs-sharded bit-equality on every cluster.
func TestDriveRetriesThroughInjected503s(t *testing.T) {
	_, ts := newTestServer(t, service.Config{
		Chaos: mustChaos(t, 7, chaos.Spec{HandlerError: 0.10}),
	})
	rep, err := service.Drive(ts.URL, service.DriveOptions{
		Clusters:  8,
		Workers:   8,
		Verify:    true,
		Retries:   8,
		RetryBase: 5 * time.Millisecond,
		RetryMax:  50 * time.Millisecond,
		RetrySeed: 7,
	})
	if err != nil {
		t.Fatalf("drive under 10%% injected 503s: %v", err)
	}
	if rep.Verified != rep.Clusters {
		t.Fatalf("%d/%d clusters verified under injected 503s", rep.Verified, rep.Clusters)
	}
	if rep.Retries == 0 {
		t.Fatal("drive recorded zero retries under 10% handler sheds")
	}
}

// TestReadyz covers the readiness endpoint's three windows: starting
// (gate not yet armed), serving, and draining — liveness stays 200
// throughout, readiness flips 503 at both edges.
func TestReadyz(t *testing.T) {
	t.Run("starting", func(t *testing.T) {
		gate := service.NewGate()
		srv := startGateServer(t, gate)
		code, body := do(t, "GET", srv+"/v1/readyz", "")
		if code != http.StatusServiceUnavailable {
			t.Fatalf("readyz before gate armed = %d, want 503: %s", code, body)
		}
		var env service.ErrorEnvelope
		if err := json.Unmarshal(body, &env); err != nil || env.Code != service.CodeUnavailable {
			t.Fatalf("starting readyz envelope = %s, want code %q", body, service.CodeUnavailable)
		}
		if code, body := do(t, "GET", srv+"/v1/healthz", ""); code != http.StatusOK {
			t.Fatalf("healthz while starting = %d, want 200 (liveness is not readiness): %s", code, body)
		}

		// Arm the gate: the real handler takes over every path.
		svc, err := service.New(service.Config{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(svc.Close)
		gate.Set(svc.Handler())
		code, body = do(t, "GET", srv+"/v1/readyz", "")
		if code != http.StatusOK {
			t.Fatalf("readyz after gate armed = %d, want 200: %s", code, body)
		}
		var ready struct {
			Ready bool `json:"ready"`
		}
		if err := json.Unmarshal(body, &ready); err != nil || !ready.Ready {
			t.Fatalf("armed readyz body = %s, want {\"ready\": true}", body)
		}
	})

	t.Run("draining", func(t *testing.T) {
		svc, ts := newTestServer(t, service.Config{
			Chaos: mustChaos(t, 1, chaos.Spec{TickLatency: 1.0, TickLatencyMs: 300}),
		})
		spec := smallSpec(t, 10)
		createCluster(t, ts.URL, "c1", spec)
		c, err := svc.Get("c1")
		if err != nil {
			t.Fatal(err)
		}
		// Put a slow tick in flight so Close has a drain window to observe.
		go svc.Tick(context.Background(), c) //nolint:errcheck
		time.Sleep(50 * time.Millisecond)

		closeDone := make(chan struct{})
		go func() {
			svc.Close()
			close(closeDone)
		}()
		sawDraining := false
		for !sawDraining {
			select {
			case <-closeDone:
				t.Fatal("Close finished before readyz ever reported draining")
			default:
			}
			if code, _ := do(t, "GET", ts.URL+"/v1/readyz", ""); code == http.StatusServiceUnavailable {
				sawDraining = true
			}
		}
		if code, _ := do(t, "GET", ts.URL+"/v1/healthz", ""); code != http.StatusOK {
			t.Fatal("healthz flipped during drain; liveness must hold")
		}
		<-closeDone
	})
}

// startGateServer serves a Gate on a real listener and returns its base
// URL.
func startGateServer(t *testing.T, gate *service.Gate) string {
	t.Helper()
	ts := httptest.NewServer(gate)
	t.Cleanup(ts.Close)
	return ts.URL
}

// TestStreamDrainTerminalEvent: a standing SSE subscription caught by
// service shutdown ends with an explicit terminal error event (code
// "unavailable"), not a silent hang — the companion to the existing
// cluster-delete terminal case.
func TestStreamDrainTerminalEvent(t *testing.T) {
	svc, ts := newTestServer(t, service.Config{StreamHeartbeat: 50 * time.Millisecond})
	spec := smallSpec(t, 10)
	createCluster(t, ts.URL, "c1", spec)

	plan := `{"version":1,"source":"jobs","ops":[{"op":"group_by","by":["tenant"]},{"op":"aggregate","aggs":[{"fn":"count","as":"jobs"}]}]}`
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	resp, err := openStream(t, ctx, ts.URL, "c1", plan)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream subscribe = %d", resp.StatusCode)
	}

	done := make(chan []sseEvent, 1)
	go func() { done <- readSSE(t, resp) }()
	time.Sleep(50 * time.Millisecond) // let the subscription park in its select
	svc.Close()

	select {
	case events := <-done:
		if len(events) == 0 {
			t.Fatal("stream closed with no terminal event")
		}
		last := events[len(events)-1]
		if last.name != "error" {
			t.Fatalf("terminal event = %q, want error", last.name)
		}
		var env service.ErrorEnvelope
		if err := json.Unmarshal([]byte(last.data), &env); err != nil {
			t.Fatalf("terminal error data %q is not the envelope", last.data)
		}
		if env.Code != service.CodeUnavailable {
			t.Fatalf("terminal error code = %q, want %q", env.Code, service.CodeUnavailable)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stream did not terminate after Close — drain never reached it")
	}
}

// TestStreamSurvivesServerReadTimeout: a standing SSE subscription must
// outlive the listener's whole-request ReadTimeout (tempod arms one via
// -request-timeout). net/http keeps that read deadline armed during the
// handler; if the handler clears only the write deadline, the expiring
// background read cancels r.Context() and silently severs every stream
// older than the timeout with no terminal event.
func TestStreamSurvivesServerReadTimeout(t *testing.T) {
	svc, err := service.New(service.Config{StreamHeartbeat: 25 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewUnstartedServer(svc.Handler())
	ts.Config.ReadHeaderTimeout = 150 * time.Millisecond
	ts.Config.ReadTimeout = 150 * time.Millisecond
	ts.Config.WriteTimeout = 150 * time.Millisecond
	ts.Start()
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})

	spec := smallSpec(t, 3)
	createCluster(t, ts.URL, "c1", spec)

	plan := `{"version":1,"source":"jobs","ops":[{"op":"group_by","by":["tenant"]},{"op":"aggregate","aggs":[{"fn":"count","as":"jobs"}]}]}`
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	resp, err := openStream(t, ctx, ts.URL, "c1", plan)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream subscribe = %d", resp.StatusCode)
	}
	done := make(chan []sseEvent, 1)
	go func() { done <- readSSE(t, resp) }()

	// Idle well past the request read deadline, then drive the session to
	// completion: the subscription must still be alive to deliver it.
	time.Sleep(500 * time.Millisecond)
	for i := 0; i < spec.Iterations; i++ {
		tickResp, err := http.Post(ts.URL+"/v1/clusters/c1/tick", "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		tickResp.Body.Close()
		if tickResp.StatusCode != http.StatusOK {
			t.Fatalf("tick %d = %d", i, tickResp.StatusCode)
		}
	}
	select {
	case events := <-done:
		if len(events) == 0 {
			t.Fatal("stream severed with no events — the request read deadline killed it")
		}
		if last := events[len(events)-1]; last.name != "done" {
			t.Fatalf("terminal event = %q (%s), want done — stream did not outlive ReadTimeout", last.name, last.data)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stream never terminated")
	}
}

// TestDeleteShedKeepsCluster: a Delete shed at admission must not lose
// the cluster — the id stays registered and a later delete succeeds.
func TestDeleteShedKeepsCluster(t *testing.T) {
	svc, ts := newTestServer(t, service.Config{
		Shards:           1,
		WorkersPerShard:  1,
		QueueDepth:       1,
		AdmissionTimeout: 5 * time.Millisecond,
		Chaos:            mustChaos(t, 1, chaos.Spec{TickLatency: 1.0, TickLatencyMs: 200}),
	})
	spec := smallSpec(t, 20)
	createCluster(t, ts.URL, "doomed", spec)
	c, err := svc.Get("doomed")
	if err != nil {
		t.Fatal(err)
	}

	// Saturate worker + queue, then try to delete through the full queue.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			svc.Tick(context.Background(), c) //nolint:errcheck
		}()
	}
	time.Sleep(50 * time.Millisecond)
	err = svc.Delete(context.Background(), "doomed")
	wg.Wait()
	if err == nil {
		// The teardown squeezed in; nothing left to assert.
		return
	}
	if !errors.Is(err, service.ErrOverloaded) {
		t.Fatalf("contended delete returned %v, want ErrOverloaded", err)
	}
	if _, err := svc.Get("doomed"); err != nil {
		t.Fatalf("cluster vanished after a shed delete: %v", err)
	}
	// Unloaded now: the delete must go through.
	if err := svc.Delete(context.Background(), "doomed"); err != nil {
		t.Fatalf("retried delete: %v", err)
	}
	if _, err := svc.Get("doomed"); !errors.Is(err, service.ErrNotFound) {
		t.Fatalf("cluster survived successful delete: %v", err)
	}
}

// TestShutdownInterruptsAdmittedTick: shutdown that severs a tick AFTER
// admission must answer 503 {code: "interrupted"} — NOT "unavailable" —
// because the admitted tick may still commit durably; "unavailable"
// would invite the driver's auto-retry to double-apply it. No
// Retry-After accompanies it: there is nothing safe to retry.
func TestShutdownInterruptsAdmittedTick(t *testing.T) {
	svc, ts := newTestServer(t, service.Config{
		Shards:          1,
		WorkersPerShard: 1,
		QueueDepth:      1,
		DrainTimeout:    20 * time.Millisecond,
		Chaos:           mustChaos(t, 1, chaos.Spec{TickLatency: 1.0, TickLatencyMs: 400}),
	})
	spec := smallSpec(t, 10)
	createCluster(t, ts.URL, "c1", spec)

	type result struct {
		code       int
		body       []byte
		retryAfter string
	}
	done := make(chan result, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/clusters/c1/tick", "application/json", nil)
		if err != nil {
			done <- result{code: -1}
			return
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body) //nolint:errcheck
		done <- result{resp.StatusCode, buf.Bytes(), resp.Header.Get("Retry-After")}
	}()
	time.Sleep(100 * time.Millisecond) // the tick is admitted and executing under chaos latency
	svc.Close()                        // drain deadline (20ms) expires well inside the 400ms tick

	select {
	case r := <-done:
		if r.code == -1 {
			t.Skip("connection failed before a response; cannot observe the envelope")
		}
		if r.code != http.StatusServiceUnavailable {
			t.Fatalf("interrupted tick returned %d (%s), want 503", r.code, r.body)
		}
		var env service.ErrorEnvelope
		if err := json.Unmarshal(r.body, &env); err != nil {
			t.Fatalf("interrupted response is not the error envelope: %s", r.body)
		}
		if env.Code != service.CodeInterrupted {
			t.Fatalf("interrupted tick code = %q, want %q (%s)", env.Code, service.CodeInterrupted, r.body)
		}
		if r.retryAfter != "" {
			t.Fatalf("interrupted tick carried Retry-After %q; outcome-unknown errors must not invite retries", r.retryAfter)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("tick request never returned after Close")
	}
}

package core

import (
	"errors"
	"fmt"

	"tempo/internal/cluster"
	"tempo/internal/linalg"
	"tempo/internal/pald"
)

// Durable control-loop state. The serving layer (internal/store via
// internal/service) snapshots hosted clusters periodically so a crashed
// tempod recovers them to byte-identical trajectories; the controller's
// share of that state is everything Step consults besides its immutable
// wiring: the current/previous configurations, the regression-guard
// memory, the ratcheted targets, the normalization scales frozen at first
// observation, the iteration history (whose length indexes the
// environment), and the optimizer's sample cloud + RNG position.

// ControllerState is the serializable snapshot of a Controller. All
// float64 fields round-trip exactly through encoding/json (shortest
// round-trip formatting), so a restored controller continues bit-for-bit.
type ControllerState struct {
	Current      cluster.Config `json:"current"`
	CurrentX     []float64      `json:"current_x"`
	PrevConfig   cluster.Config `json:"prev_config"`
	PrevObserved []float64      `json:"prev_observed,omitempty"`
	HasPrev      bool           `json:"has_prev"`
	Targets      []pald.Target  `json:"targets"`
	Scales       []float64      `json:"scales,omitempty"`
	History      []Iteration    `json:"history"`
	Optimizer    *pald.State    `json:"optimizer"`
}

// ErrUnsnapshotable marks a controller whose optimizer strategy does not
// support state capture (custom Strategy implementations from the
// experiment harness). The serving layer only ever builds the default
// PALD optimizer, which does.
var ErrUnsnapshotable = errors.New("core: controller strategy does not support snapshots")

// Snapshot captures the controller's durable state. It fails with
// ErrUnsnapshotable when the controller runs a custom Strategy instead of
// the default PALD optimizer. The result shares no memory with the
// controller.
func (c *Controller) Snapshot() (*ControllerState, error) {
	opt, ok := c.strategy.(*pald.Optimizer)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnsnapshotable, c.strategy.Name())
	}
	st := &ControllerState{
		Current:      c.current.Clone(),
		CurrentX:     append([]float64(nil), c.currentX...),
		PrevConfig:   c.prevConfig.Clone(),
		PrevObserved: append([]float64(nil), c.prevObserved...),
		HasPrev:      c.hasPrev,
		Targets:      append([]pald.Target(nil), c.targets...),
		Scales:       append([]float64(nil), c.scales...),
		History:      make([]Iteration, 0, len(c.history)),
		Optimizer:    opt.State(),
	}
	for _, it := range c.history {
		cp := it
		cp.Config = it.Config.Clone()
		cp.Observed = append([]float64(nil), it.Observed...)
		cp.Predicted = append([]float64(nil), it.Predicted...)
		cp.Search = it.Search.clone()
		st.History = append(st.History, cp)
	}
	return st, nil
}

// Restore rewinds a freshly constructed controller to a captured state.
// The controller must have been built with the same Config (space,
// templates, interval, PALD seed) as the one that produced the state —
// exactly what rebuilding from the same scenario spec guarantees. After
// Restore, Step continues the original trajectory bit-for-bit.
func (c *Controller) Restore(st *ControllerState) error {
	if st == nil {
		return errors.New("core: nil controller state")
	}
	opt, ok := c.strategy.(*pald.Optimizer)
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnsnapshotable, c.strategy.Name())
	}
	if len(st.Targets) != len(c.cfg.Templates) {
		return fmt.Errorf("core: state has %d targets, controller has %d templates", len(st.Targets), len(c.cfg.Templates))
	}
	if len(st.CurrentX) != c.cfg.Space.Dim() {
		return fmt.Errorf("core: state configuration dim %d != space dim %d", len(st.CurrentX), c.cfg.Space.Dim())
	}
	if err := st.Current.Validate(); err != nil {
		return fmt.Errorf("core: state current config: %w", err)
	}
	if st.Optimizer == nil {
		return errors.New("core: state missing optimizer")
	}
	if err := opt.Restore(st.Optimizer); err != nil {
		return err
	}
	c.current = st.Current.Clone()
	c.currentX = linalg.Vector(append([]float64(nil), st.CurrentX...))
	c.prevConfig = st.PrevConfig.Clone()
	c.prevObserved = append([]float64(nil), st.PrevObserved...)
	if len(st.PrevObserved) == 0 {
		c.prevObserved = nil
	}
	c.hasPrev = st.HasPrev
	c.targets = append([]pald.Target(nil), st.Targets...)
	c.scales = append([]float64(nil), st.Scales...)
	if len(st.Scales) == 0 {
		// nil means "freeze scales at the next observation" — preserve that
		// distinction for snapshots taken before the first Step.
		c.scales = nil
	}
	c.history = c.history[:0]
	for _, it := range st.History {
		cp := it
		cp.Config = it.Config.Clone()
		cp.Search = it.Search.clone()
		c.history = append(c.history, cp)
	}
	return nil
}

package tempo

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"tempo/internal/core"
	"tempo/internal/qs"
	"tempo/internal/query"
	"tempo/internal/scenario"
	"tempo/internal/whatif"
)

// The ad-hoc query layer (internal/query), re-exported so serving-layer
// callers depend on the root package only.
type (
	// QueryPlan is a validated, bounded JSON query over a session's
	// schedule events (see internal/query for the plan grammar).
	QueryPlan = query.Plan
	// QueryResult is a one-shot query's full, deterministically ordered
	// answer.
	QueryResult = query.Result
	// QueryRow is one result row.
	QueryRow = query.ResultRow
	// QueryRunner is a compiled standing query; the serving layer feeds it
	// ticks as they commit and streams the returned deltas.
	QueryRunner = query.Runner
)

// ParseQueryPlan decodes and validates a query plan from r. Unknown
// fields and out-of-bounds plans are rejected with errors naming the
// offending operator.
func ParseQueryPlan(r io.Reader) (*QueryPlan, error) { return query.ParsePlan(r) }

// Declarative scenarios (internal/scenario), re-exported so serving-layer
// callers depend on the root package only.
type (
	// Scenario declaratively describes one multi-tenant cluster: tenants
	// (statistical profile presets), arrival processes, SLO templates, the
	// initial RM configuration, mid-run capacity changes, and a controller
	// toggle. Load one from JSON with LoadScenario.
	Scenario = scenario.Spec
	// ScenarioOptions are runtime knobs that do not change a scenario's
	// trajectory (what-if parallelism, strategy overrides).
	ScenarioOptions = scenario.Options
	// ScenarioReport is the canonical, bit-reproducible record of a
	// scenario run.
	ScenarioReport = scenario.Report
	// ScenarioIteration is one control interval's slice of the report.
	ScenarioIteration = scenario.IterationReport
	// SessionSnapshot is the serializable checkpoint of a session's control
	// loop (tick cursor, iteration reports, controller state) — the
	// snapshot half of the durable state internal/store persists; the
	// other half is the per-tick observed schedules from the WAL.
	SessionSnapshot = scenario.Snapshot
	// SearchStats instruments one tick's candidate search (scored /
	// warm-started / pruned candidates, simulation counts, decision
	// latency). The serving layer aggregates them onto /metrics.
	SearchStats = core.SearchStats
)

// LoadScenario parses and validates a scenario spec from r. Unknown fields
// are rejected so typos fail loudly.
func LoadScenario(r io.Reader) (*Scenario, error) { return scenario.Load(r) }

// LoadScenarioFile reads and validates a scenario spec from path.
func LoadScenarioFile(path string) (*Scenario, error) { return scenario.LoadFile(path) }

// ErrSessionDone is returned by Session.Tick once the scenario's iteration
// budget is exhausted.
var ErrSessionDone = scenario.ErrDone

// Session is a live, tick-at-a-time handle on one tenant cluster's control
// loop — the unit the tempod serving layer hosts many of. Where
// scenario.Run drives a spec to completion in one call, a Session exposes
// the same machinery incrementally:
//
//   - Tick runs one control interval (observe → guard → propose → what-if
//     → apply, or observe-only when the spec disables the controller);
//   - QS answers windowed SLO queries over everything observed so far,
//     served from per-interval incremental accumulators;
//   - WhatIf scores candidate RM configurations in the scenario's What-if
//     Model without touching the control loop's state;
//   - Report assembles the canonical run report.
//
// Determinism survives the slicing: after the final Tick, Report returns
// byte-for-byte the report scenario.Run produces for the same spec, for
// any interleaving of QS and WhatIf calls in between. All methods are safe
// for concurrent use; concurrent Ticks serialize, each advancing exactly
// one interval.
type Session struct {
	mu          sync.Mutex
	rt          *scenario.Runtime
	parallelism int

	// accs caches one sealed QS accumulator per completed interval, built
	// lazily on the first window query that touches the interval.
	accs map[int]*Accumulator
	// model is the lazily built What-if Model serving WhatIf queries; it is
	// deliberately distinct from the controller's own model so probe
	// traffic cannot perturb (or contend with) the control loop.
	model *whatif.Model
}

// NewSession builds a live cluster from a validated scenario spec without
// running it: the workload is synthesized and the controller positioned at
// the initial configuration, ready for the first Tick.
func NewSession(spec *Scenario, opts ScenarioOptions) (*Session, error) {
	rt, err := scenario.Build(spec, opts)
	if err != nil {
		return nil, err
	}
	return &Session{rt: rt, parallelism: opts.Parallelism, accs: map[int]*Accumulator{}}, nil
}

// ResumeSession rebuilds a session mid-scenario from its durable state:
// the spec, an optional snapshot, and the schedules observed before the
// crash (ticks 0..len(schedules), oldest first — WAL-replayed in
// recovery). A nil snap recovers from the schedules alone. The resumed
// session continues the original trajectory bit-for-bit: after the final
// Tick its Report is byte-identical to an uninterrupted run's.
func ResumeSession(spec *Scenario, opts ScenarioOptions, snap *SessionSnapshot, schedules []*Schedule) (*Session, error) {
	rt, err := scenario.Resume(spec, opts, snap, schedules)
	if err != nil {
		return nil, err
	}
	return &Session{rt: rt, parallelism: opts.Parallelism, accs: map[int]*Accumulator{}}, nil
}

// Spec returns the scenario the session was built from.
func (s *Session) Spec() *Scenario { return s.rt.Spec }

// Interval returns the control interval L.
func (s *Session) Interval() time.Duration { return s.rt.Interval }

// Ticks returns how many control intervals have run.
func (s *Session) Ticks() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rt.StepsDone()
}

// Done reports whether the scenario's iteration budget is exhausted.
func (s *Session) Done() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rt.Done()
}

// Tick runs one control interval and returns its report slice. It returns
// ErrSessionDone after Spec.Iterations ticks.
func (s *Session) Tick() (ScenarioIteration, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rt.Step()
}

// Search returns tick i's candidate-search statistics, or nil when the
// controller is disabled or the tick has not run. Diagnostic only —
// search stats never appear in reports, so they cannot perturb the
// determinism contract above.
func (s *Session) Search(i int) *SearchStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rt.Search(i)
}

// Current returns the RM configuration the next interval will run under.
func (s *Session) Current() ClusterConfig {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.rt.Controller != nil {
		return s.rt.Controller.Current()
	}
	return s.rt.Initial.Clone()
}

// Report assembles the canonical report over the intervals run so far;
// after the final Tick it is byte-identical to scenario.Run's.
func (s *Session) Report() *ScenarioReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rt.Report()
}

// Snapshot captures the session's durable control-loop state at its
// current tick. Together with the observed schedules (the WAL's half) it
// is everything ResumeSession needs.
func (s *Session) Snapshot() (*SessionSnapshot, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rt.Snapshot()
}

// ObservedSchedule returns the schedule tick i ran under, or nil when
// that tick has not run. Shared, not copied — treat as read-only; the
// serving layer encodes it into the WAL record for the tick.
func (s *Session) ObservedSchedule(i int) *Schedule {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rt.ObservedSchedule(i)
}

// WindowQS is one interval's slice of a windowed QS query: the QS vector
// of the schedule observed in interval Iteration, evaluated over the
// session-time window [From, To) clipped to that interval.
type WindowQS struct {
	// Iteration indexes the control interval.
	Iteration int `json:"iteration"`
	// From and To are the clipped window bounds in session time (time 0 is
	// the start of interval 0).
	From time.Duration `json:"from"`
	To   time.Duration `json:"to"`
	// Values is the QS vector, one entry per scenario SLO in spec order.
	Values []float64 `json:"values"`
}

// QS evaluates the scenario's SLO templates over the session-time window
// [from, to), answering from per-interval incremental accumulators
// (internal/qs) that ingest each observed schedule's event stream once and
// then serve arbitrary sub-windows. The result holds one entry per
// completed interval the window intersects; a window covering an interval
// entirely reproduces that interval's Observed vector exactly. Windows
// are half-open [from, to); to == 0 means "everything observed so far";
// negative bounds and reversed windows are invalid.
func (s *Session) QS(from, to time.Duration) ([]WindowQS, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	interval := s.rt.Interval
	done := s.rt.StepsDone()
	if from < 0 || to < 0 {
		// A negative bound used to fall into the "everything so far" case
		// below and silently answer the wrong window; it is a client error.
		return nil, fmt.Errorf("tempo: invalid QS window: bounds must be non-negative; windows are half-open [from, to), got [%v, %v)", from, to)
	}
	if to == 0 {
		// "Everything observed so far". A from beyond the observed horizon
		// is a valid ask with an empty answer, not an invalid window.
		to = max(time.Duration(done)*interval, from)
	}
	if to < from {
		return nil, fmt.Errorf("tempo: invalid QS window: from must not exceed to; windows are half-open [from, to), got [%v, %v)", from, to)
	}
	first := int(from / interval)
	out := []WindowQS{}
	for i := first; i < done; i++ {
		lo := time.Duration(i) * interval
		hi := lo + interval
		if lo >= to {
			break
		}
		sched := s.rt.ObservedSchedule(i)
		if sched == nil {
			break
		}
		localFrom := max(from, lo) - lo
		localTo := min(to, hi) - lo
		// A query covering the interval's full window means "this whole
		// observation": extend the half-open bound past the schedule horizon
		// so records ending exactly at the horizon count, matching the
		// convention the control loop evaluates Observed with.
		if localTo >= interval {
			localTo = sched.Horizon + time.Nanosecond
		}
		acc := s.accs[i]
		if acc == nil {
			acc = qs.Accumulate(s.rt.Templates, sched)
			s.accs[i] = acc
		}
		out = append(out, WindowQS{
			Iteration: i,
			From:      lo + localFrom,
			To:        lo + min(localTo, interval),
			Values:    acc.Values(localFrom, localTo),
		})
	}
	return out, nil
}

// Query runs a one-shot query plan over every control interval observed
// so far: the plan compiles to an operator pipeline (internal/query)
// that is fed each interval's schedule in order, exactly as a standing
// subscription would be — the two modes agree by construction. The
// result is deterministic: the same session and plan always produce the
// same rows in the same order.
func (s *Session) Query(p *QueryPlan) (*QueryResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, err := query.Compile(p, s.rt.Interval)
	if err != nil {
		return nil, err
	}
	done := s.rt.StepsDone()
	for i := 0; i < done; i++ {
		sched := s.rt.ObservedSchedule(i)
		if sched == nil {
			break
		}
		if _, err := r.PushTick(i, sched); err != nil {
			return nil, err
		}
	}
	return r.Result(), nil
}

// QueryRunner compiles a plan into a standing runner for this session;
// the caller feeds it ticks (Session.ObservedSchedule) as they commit.
// Each session tick is an independent emulation of its control interval,
// which is exactly the granularity the runner ingests.
func (s *Session) NewQueryRunner(p *QueryPlan) (*QueryRunner, error) {
	return query.Compile(p, s.Interval())
}

// SLOPlan is the query plan that re-expresses the session's own SLO
// template set in the query layer — the ROADMAP's acceptance bar: its
// per-tick values are bit-identical to the control loop's observed QS
// vector (qs.EvalStream over each interval's full window).
func (s *Session) SLOPlan() *QueryPlan {
	s.mu.Lock()
	defer s.mu.Unlock()
	return &query.Plan{
		Version: query.Version,
		Source:  "events",
		Ops: []query.OpSpec{{
			Op:   "aggregate",
			SLOs: append([]qs.Template(nil), s.rt.Templates...),
		}},
	}
}

// WhatIf scores candidate RM configurations in the scenario's What-if
// Model — the same model shape the controller scores its own candidates
// with, but a private instance, so probes neither mutate nor contend with
// the control loop. Row i of the result is the QS vector predicted for
// cfgs[i], one entry per scenario SLO in spec order. Results are
// deterministic: the same session and candidate always yield the same
// vector, at any parallelism.
func (s *Session) WhatIf(cfgs []ClusterConfig) ([][]float64, error) {
	if len(cfgs) == 0 {
		return nil, errors.New("tempo: WhatIf needs at least one candidate configuration")
	}
	for i := range cfgs {
		if err := cfgs[i].Validate(); err != nil {
			return nil, fmt.Errorf("tempo: what-if candidate %d: %w", i, err)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.model == nil {
		m, err := s.rt.NewWhatIfModel(s.parallelism)
		if err != nil {
			return nil, err
		}
		s.model = m
	}
	return s.model.EvaluateBatch(cfgs)
}

// Objectives names the session's QS vector components, in order.
func (s *Session) Objectives() []string {
	names := make([]string, 0, len(s.rt.Templates))
	for _, t := range s.rt.Templates {
		names = append(names, t.Name())
	}
	return names
}

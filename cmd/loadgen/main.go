// Command loadgen stress-drives a tempod control plane: it creates N
// clusters from a scenario preset (each with its own seed), drives
// concurrent tick/qs/what-if traffic across all of them, and asserts that
// sharded, interleaved execution changed nothing — every cluster's report
// must be byte-identical to the same scenario run sequentially in
// process. It is both the serving layer's determinism gate (CI runs it at
// 100 clusters) and its throughput probe.
//
// Usage:
//
//	loadgen -clusters 100                  # in-process tempod, builtin preset, verify
//	loadgen -clusters 1000 -verify=false   # throughput only
//	loadgen -addr http://host:8080 ...     # drive a remote tempod
//	loadgen -spec path/to/scenario.json    # derive clusters from a custom spec
//	loadgen -rate 200                      # cap aggregate ticks/sec
//
// With -addr empty (the default), loadgen starts an in-process service on
// a loopback listener, so one command exercises the full HTTP stack.
// Exit status is non-zero if any cluster's report mismatches.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"

	"tempo/internal/scenario"
	"tempo/internal/service"
)

func main() {
	var (
		addr     = flag.String("addr", "", "tempod base URL (empty = start an in-process service)")
		clusters = flag.Int("clusters", 100, "clusters to create and drive")
		specPath = flag.String("spec", "", "scenario spec to derive clusters from (empty = builtin loadgen-small preset)")
		workers  = flag.Int("workers", 32, "concurrent client workers")
		rate     = flag.Float64("rate", 0, "aggregate tick-request rate cap per second (0 = unthrottled)")
		qsEvery  = flag.Int("qs-every", 2, "issue a QS query every k-th tick round per cluster (0 = off)")
		qEvery   = flag.Int("query-every", 2, "issue an ad-hoc query-plan probe every k-th tick round per cluster (0 = off)")
		wiEvery  = flag.Int("whatif-every", 3, "issue a what-if probe every k-th tick round per cluster (0 = off)")
		verify   = flag.Bool("verify", true, "compare every report against a sequential scenario run, byte for byte")
		stride   = flag.Int64("seed-stride", 1, "per-cluster seed spacing")
		shards   = flag.Int("shards", 4, "in-process service: cluster shards")
		shardW   = flag.Int("shard-workers", 2, "in-process service: tick workers per shard")
		asJSON   = flag.Bool("json", false, "emit the drive report as JSON")

		retries   = flag.Int("retries", 3, "retry budget per request for retryable 503/429 refusals (0 = fail fast)")
		retryBase = flag.Duration("retry-base", 0, "base retry backoff (0 = driver default 25ms)")
		retryMax  = flag.Duration("retry-max", 0, "retry backoff cap (0 = driver default 2s)")
		retrySeed = flag.Int64("retry-seed", 1, "seed for deterministic backoff jitter")
		timeout   = flag.Duration("timeout", 0, "per-request timeout (0 = driver default 30s)")
	)
	flag.Parse()
	opts := service.DriveOptions{
		Clusters:       *clusters,
		Workers:        *workers,
		SeedStride:     *stride,
		TickRate:       *rate,
		QSEvery:        *qsEvery,
		QueryEvery:     *qEvery,
		WhatIfEvery:    *wiEvery,
		Verify:         *verify,
		RequestTimeout: *timeout,
		Retries:        *retries,
		RetryBase:      *retryBase,
		RetryMax:       *retryMax,
		RetrySeed:      *retrySeed,
	}
	if err := run(*addr, *specPath, opts, *shards, *shardW, *asJSON); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

func run(addr, specPath string, opts service.DriveOptions, shards, shardWorkers int, asJSON bool) error {
	var baseSpec *scenario.Spec
	var err error
	if specPath != "" {
		baseSpec, err = scenario.LoadFile(specPath)
	} else {
		baseSpec, err = service.SmallSpec()
	}
	if err != nil {
		return err
	}
	opts.BaseSpec = baseSpec

	if addr == "" {
		svc, err := service.New(service.Config{Shards: shards, WorkersPerShard: shardWorkers})
		if err != nil {
			return err
		}
		defer svc.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		srv := &http.Server{Handler: svc.Handler()}
		go srv.Serve(ln) //nolint:errcheck // closed on exit
		defer srv.Close()
		addr = "http://" + ln.Addr().String()
		fmt.Printf("loadgen: in-process tempod on %s (%d shards x %d workers)\n", addr, shards, shardWorkers)
	}

	rep, err := service.Drive(addr, opts)
	if err != nil {
		return err
	}
	if asJSON {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(b))
		return nil
	}
	fmt.Printf("loadgen: %d clusters x %d iterations (%s): %d ticks, %d qs queries, %d ad-hoc queries, %d what-if calls in %.2fs\n",
		rep.Clusters, rep.Iterations, baseSpec.Name, rep.Ticks, rep.QSQueries, rep.QueryCalls, rep.WhatIfCalls, rep.WallSeconds)
	fmt.Printf("loadgen: %.1f ticks/sec, %.1f clusters/sec\n", rep.TicksPerSec, rep.ClustersDone)
	if rep.Retries > 0 {
		fmt.Printf("loadgen: %d requests shed and retried\n", rep.Retries)
	}
	if opts.Verify {
		fmt.Printf("loadgen: %d/%d reports bit-identical to sequential runs\n", rep.Verified, rep.Clusters)
	}
	return nil
}

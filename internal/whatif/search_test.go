package whatif

import (
	"reflect"
	"testing"
	"time"

	"tempo/internal/cluster"
	"tempo/internal/workload"
)

func searchConfigs() []cluster.Config {
	mk := func(total, maxA int, wA float64) cluster.Config {
		return cluster.Config{TotalContainers: total, Tenants: map[string]cluster.TenantConfig{
			"A": {Weight: wA, MaxShare: maxA},
		}}
	}
	return []cluster.Config{mk(20, 0, 1), mk(20, 10, 1.5), mk(16, 0, 0.8)}
}

// TestEvaluateSearchMatchesBatch: EvaluateSearch's predictions must be
// bit-identical to EvaluateBatch's — cold, and again when every value
// comes out of the cross-tick config tier.
func TestEvaluateSearchMatchesBatch(t *testing.T) {
	m, err := FromTrace(testTemplates(), testTrace(t))
	if err != nil {
		t.Fatal(err)
	}
	m.Horizon = time.Hour
	cfgs := searchConfigs()
	want, err := m.EvaluateBatch(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	for call := 0; call < 3; call++ {
		preds, fresh, reused, err := m.EvaluateSearch(cfgs, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(preds, want) {
			t.Fatalf("call %d: search preds %v != batch preds %v", call, preds, want)
		}
		for i := range cfgs {
			if call == 0 && (fresh[i] != 1 || reused[i] != 0) {
				t.Fatalf("cold call: config %d fresh=%d reused=%d", i, fresh[i], reused[i])
			}
			if call > 0 && (fresh[i] != 0 || reused[i] != 1) {
				t.Fatalf("warm call %d: config %d fresh=%d reused=%d, want pure reuse", call, i, fresh[i], reused[i])
			}
		}
	}
}

// TestEvaluateSearchProfileModeReuses: in profile mode the generator
// redraws a new (but bit-identical) trace every call, so cross-tick reuse
// must survive on the content-equality path rather than trace pointer
// identity.
func TestEvaluateSearchProfileModeReuses(t *testing.T) {
	m, err := FromProfiles(testTemplates(),
		[]workload.TenantProfile{workload.BestEffort("A", 1)},
		time.Hour, 42)
	if err != nil {
		t.Fatal(err)
	}
	m.Samples = 2
	cfgs := searchConfigs()
	want, err := m.EvaluateBatch(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := m.EvaluateSearch(cfgs, nil); err != nil {
		t.Fatal(err)
	}
	preds, fresh, reused, err := m.EvaluateSearch(cfgs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(preds, want) {
		t.Fatalf("warm search preds %v != batch preds %v", preds, want)
	}
	for i := range cfgs {
		if fresh[i] != 0 || reused[i] != m.Samples {
			t.Fatalf("config %d fresh=%d reused=%d, want full reuse across redrawn traces", i, fresh[i], reused[i])
		}
	}
}

// TestEvaluateSearchStaleTraceNeverReused is the staleness regression:
// when the generator starts returning a different workload between two
// EvaluateSearch calls, every cached entry for the regenerated sample
// must be invalidated — predictions come from fresh simulations of the
// new trace, never from the old one's cache.
func TestEvaluateSearchStaleTraceNeverReused(t *testing.T) {
	traceFor := func(seed int64) *workload.Trace {
		tr, err := workload.Generate(
			[]workload.TenantProfile{workload.BestEffort("A", 1)},
			workload.GenerateOptions{Horizon: time.Hour, Seed: seed},
		)
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	seed := int64(1)
	m, err := New(testTemplates(), func(int) (*workload.Trace, error) { return traceFor(seed), nil })
	if err != nil {
		t.Fatal(err)
	}
	m.Horizon = time.Hour
	cfgs := searchConfigs()
	oldPreds, _, _, err := m.EvaluateSearch(cfgs, nil)
	if err != nil {
		t.Fatal(err)
	}

	// The workload regenerates: same shape, different content.
	seed = 2
	fresh2, err := FromTrace(testTemplates(), traceFor(2))
	if err != nil {
		t.Fatal(err)
	}
	fresh2.Horizon = time.Hour
	want, err := fresh2.EvaluateBatch(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	preds, fresh, reused, err := m.EvaluateSearch(cfgs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(preds, want) {
		t.Fatalf("post-regeneration preds %v != fresh model preds %v", preds, want)
	}
	if reflect.DeepEqual(preds, oldPreds) {
		t.Fatal("fixture too weak: old and new traces score identically")
	}
	for i := range cfgs {
		if reused[i] != 0 {
			t.Fatalf("config %d reused %d stale entries after trace regeneration", i, reused[i])
		}
		if fresh[i] != 1 {
			t.Fatalf("config %d fresh=%d, want full re-simulation", i, fresh[i])
		}
	}
}

// TestEvaluateSearchPruning: a rejected candidate is never simulated
// (nil prediction, zero fresh count), the incumbent is always resolved,
// and the lower bounds handed to keep really are coordinatewise lower
// bounds on the candidates' actual predictions.
func TestEvaluateSearchPruning(t *testing.T) {
	m, err := FromTrace(testTemplates(), testTrace(t))
	if err != nil {
		t.Fatal(err)
	}
	m.Horizon = time.Hour
	cfgs := searchConfigs()
	actual, err := m.EvaluateBatch(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	lowers := make([][]float64, len(cfgs))
	preds, fresh, _, err := m.EvaluateSearch(cfgs, func(i int, lower, base []float64) bool {
		if !reflect.DeepEqual(base, actual[0]) {
			t.Fatalf("keep saw baseline %v, want incumbent prediction %v", base, actual[0])
		}
		lowers[i] = append([]float64(nil), lower...)
		return false // prune everything
	})
	if err != nil {
		t.Fatal(err)
	}
	if preds[0] == nil {
		t.Fatal("incumbent pruned")
	}
	for i := 1; i < len(cfgs); i++ {
		if preds[i] != nil || fresh[i] != 0 {
			t.Fatalf("candidate %d not pruned: preds=%v fresh=%d", i, preds[i], fresh[i])
		}
		if lowers[i] == nil {
			t.Fatalf("keep never consulted for candidate %d", i)
		}
		for k := range lowers[i] {
			if lowers[i][k] > actual[i][k] {
				t.Fatalf("candidate %d: lower bound %v exceeds actual prediction %v", i, lowers[i][k], actual[i][k])
			}
		}
	}

	// keep==nil or an unbounded horizon must disable pruning entirely.
	m2, err := FromTrace(testTemplates(), testTrace(t))
	if err != nil {
		t.Fatal(err)
	}
	preds2, _, _, err := m2.EvaluateSearch(cfgs, func(int, []float64, []float64) bool {
		t.Fatal("keep consulted without a finite horizon")
		return false
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range preds2 {
		if preds2[i] == nil {
			t.Fatalf("candidate %d pruned with pruning disabled", i)
		}
	}
}

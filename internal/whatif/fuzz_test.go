package whatif

import (
	"fmt"
	"testing"
	"time"

	"tempo/internal/cluster"
	"tempo/internal/qs"
	"tempo/internal/workload"
)

// fuzzProfiles is a tiny fixed tenant mix so each fuzz iteration stays
// cheap; only the seeds vary.
func fuzzProfiles() []workload.TenantProfile {
	return []workload.TenantProfile{
		{
			Name:          "a",
			JobsPerHour:   30,
			NumMaps:       workload.Constant(2),
			NumReduces:    workload.Constant(1),
			MapSeconds:    workload.Constant(20),
			ReduceSeconds: workload.Constant(30),
		},
		{
			Name:        "b",
			JobsPerHour: 20,
			NumMaps:     workload.Constant(3),
			MapSeconds:  workload.Constant(15),
		},
	}
}

// traceFingerprint summarizes a trace for equality checks.
func traceFingerprint(tr *workload.Trace) string {
	s := fmt.Sprintf("%d:", len(tr.Jobs))
	for i := range tr.Jobs {
		j := &tr.Jobs[i]
		s += fmt.Sprintf("%s@%d/%d;", j.ID, j.Submit, j.TaskCount())
	}
	return s
}

// FuzzFromProfiles locks the seed-mixing invariants of the statistical
// what-if mode: per-sample seeds are deterministic, distinct samples of the
// same model never alias each other's workload draws (the splitmix64 mix is
// a bijection of base + (sample+1)·golden, so equal outputs would need
// equal inputs), and QS vectors are bit-identical for any parallelism.
func FuzzFromProfiles(f *testing.F) {
	f.Add(int64(0), int64(1), byte(0))
	f.Add(int64(42), int64(977), byte(3))
	f.Add(int64(-1), int64(1)<<62, byte(255))
	// The linear-stride regression: before the splitmix64 mix, base 0
	// sample 1 aliased base k sample 0.
	f.Add(int64(0), int64(104729), byte(1))
	f.Fuzz(func(t *testing.T, baseA, baseB int64, sample byte) {
		s := int(sample)
		// Same base, different samples: never the same derived seed.
		if mixSeed(baseA, s) == mixSeed(baseA, s+1) {
			t.Fatalf("mixSeed(%d, %d) collides with sample %d", baseA, s, s+1)
		}
		if mixSeed(baseA, s) == mixSeed(baseA, s+7) {
			t.Fatalf("mixSeed(%d, %d) collides with sample %d", baseA, s, s+7)
		}
		templates := []qs.Template{
			{Queue: "a", Metric: qs.AvgResponseTime},
			{Queue: "b", Metric: qs.Throughput},
		}
		build := func(base int64) *Model {
			m, err := FromProfiles(templates, fuzzProfiles(), 5*time.Minute, base)
			if err != nil {
				t.Fatal(err)
			}
			return m
		}
		// Determinism: two models over the same base draw identical traces.
		m1, m2 := build(baseA), build(baseA)
		tr1, err := m1.Gen(s)
		if err != nil {
			t.Fatal(err)
		}
		tr2, err := m2.Gen(s)
		if err != nil {
			t.Fatal(err)
		}
		if err := tr1.Validate(); err != nil {
			t.Fatalf("generated trace invalid: %v", err)
		}
		if traceFingerprint(tr1) != traceFingerprint(tr2) {
			t.Fatalf("same (base, sample) produced different traces:\n%s\n%s",
				traceFingerprint(tr1), traceFingerprint(tr2))
		}
		// Distinct bases: the derived seeds must differ (the generated
		// traces may still coincide when both are empty).
		if baseA != baseB && mixSeed(baseA, s) == mixSeed(baseB, s) {
			t.Fatalf("mixSeed(%d, %d) == mixSeed(%d, %d)", baseA, s, baseB, s)
		}
		// Parallelism independence: sequential and parallel batches are
		// bit-identical.
		cfg := cluster.Config{TotalContainers: 4, Tenants: map[string]cluster.TenantConfig{
			"a": {Weight: 2}, "b": {Weight: 1},
		}}
		m1.Samples = 2
		m1.Parallelism = 1
		seqRows, err := m1.EvaluateBatch([]cluster.Config{cfg, cfg})
		if err != nil {
			t.Fatal(err)
		}
		m1.Parallelism = 3
		parRows, err := m1.EvaluateBatch([]cluster.Config{cfg, cfg})
		if err != nil {
			t.Fatal(err)
		}
		for i := range seqRows {
			for j := range seqRows[i] {
				if seqRows[i][j] != parRows[i][j] {
					t.Fatalf("row %d obj %d: sequential %v != parallel %v",
						i, j, seqRows[i][j], parRows[i][j])
				}
			}
		}
	})
}

// Command benchdiff is the CI perf-regression gate: it compares a freshly
// generated BENCH_<pr>.json against the committed baseline and fails on
// regressions beyond a tolerance band, so perf drift cannot land
// silently.
//
// Usage:
//
//	benchdiff -baseline BENCH_4.json -fresh BENCH_4.fresh.json
//	benchdiff ... -tolerance 0.25 -time-tolerance 0.5
//
// Metrics are classified by name:
//
//   - deterministic counts (tenants, jobs, ticks, verified, …) must match
//     exactly — any drift is a behavioural change, not noise;
//   - machine-independent ratios (speedup, alloc_reduction_*) gate at
//     -tolerance;
//   - allocation metrics (allocs_per_op / bytes_per_op and their
//     *_unpooled twins, lower-better) gate at -alloc-tolerance: alloc
//     counts of deterministic code are nearly machine-independent, so
//     regressions here mean the hot path started churning the heap again,
//     not that the runner got slower. ServiceThroughput's allocation
//     metrics are the exception: they are whole-process MemStats over a
//     concurrent HTTP drive (connection churn, goroutine stacks, GC
//     assists all vary with runner timing), so they gate at the wider
//     -time-tolerance instead;
//   - wall-clock metrics (*_ns lower-better, *_per_sec higher-better)
//     gate at the wider -time-tolerance, since absolute times move with
//     runner hardware; refresh the committed baseline from the CI
//     artifact when the fleet shifts.
//
// Improvements and unknown metrics are reported but never fail the gate.
// Exit status: 0 clean, 1 regression or shape mismatch, 2 usage error.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"

	"tempo/internal/benchrec"
)

// exactMetrics are deterministic outputs of seeded runs: equality, not
// tolerance, is the bar.
var exactMetrics = map[string]bool{
	"tenants":      true,
	"templates":    true,
	"jobs":         true,
	"tasks":        true,
	"iterations":   true,
	"ticks":        true,
	"clusters":     true,
	"qs_queries":   true,
	"whatif_calls": true,
	"verified":     true,
	// WAL codec output size per tick over the seeded fixture run: a pure
	// function of the codec and the deterministic schedules, so any drift
	// is a framing/encoding change, not noise.
	"bytes_per_tick": true,
	// Candidate-search accounting over the seeded controller fixtures:
	// how many candidates were proposed, fully scored, warm-started from
	// the cross-tick cache, or pruned by QS lower bounds. All are exact
	// integers (scored_reduction is an exact rational of two of them), so
	// any drift means the search behaved differently, not noise.
	"candidates":              true,
	"fully_scored":            true,
	"fully_scored_exhaustive": true,
	"warm_started":            true,
	"sims_run":                true,
	"sims_reused":             true,
	"scored_reduction":        true,
	"pruned_flood":            true,
}

func main() {
	var (
		baselinePath = flag.String("baseline", "", "committed BENCH_<pr>.json baseline")
		freshPath    = flag.String("fresh", "", "freshly generated BENCH_<pr>.json")
		tolerance    = flag.Float64("tolerance", 0.25, "allowed relative regression for ratio metrics (0.25 = 25%)")
		timeTol      = flag.Float64("time-tolerance", 0.5, "allowed relative regression for wall-clock metrics")
		allocTol     = flag.Float64("alloc-tolerance", 0.25, "allowed relative regression for allocation metrics")
	)
	flag.Parse()
	if *baselinePath == "" || *freshPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -baseline and -fresh are required")
		os.Exit(2)
	}
	failures, err := diff(os.Stdout, *baselinePath, *freshPath, *tolerance, *timeTol, *allocTol)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	if failures > 0 {
		fmt.Printf("\nbenchdiff: %d regression(s) beyond tolerance — if intended, refresh the baseline and commit it\n", failures)
		os.Exit(1)
	}
	fmt.Println("\nbenchdiff: no regressions beyond tolerance")
}

type class int

const (
	classExact      class = iota
	classRatio            // higher is better, machine-independent
	classAllocLower       // lower is better, allocation counts/bytes
	classTimeLower        // lower is better, wall-clock
	classTimeHigher       // higher is better, wall-clock
	classInfo
)

// classify maps a (benchmark, metric) pair to its gating class.
func classify(bench, name string) class {
	switch {
	case exactMetrics[name]:
		return classExact
	case name == "speedup", strings.HasPrefix(name, "alloc_reduction"):
		return classRatio
	case strings.HasPrefix(name, "allocs_per_op"), strings.HasPrefix(name, "bytes_per_op"):
		if strings.HasPrefix(bench, "ServiceThroughput") {
			// Whole-process MemStats over a concurrent HTTP drive: real
			// signal, but timing-dependent — gate at the wall-clock band.
			return classTimeLower
		}
		return classAllocLower
	case strings.HasSuffix(name, "_ns"):
		return classTimeLower
	case strings.HasSuffix(name, "_per_sec"):
		return classTimeHigher
	default:
		return classInfo
	}
}

func diff(w *os.File, baselinePath, freshPath string, tolerance, timeTol, allocTol float64) (failures int, err error) {
	baseline, err := benchrec.Load(baselinePath)
	if err != nil {
		return 0, fmt.Errorf("loading baseline: %w", err)
	}
	fresh, err := benchrec.Load(freshPath)
	if err != nil {
		return 0, fmt.Errorf("loading fresh run: %w", err)
	}
	freshByName := map[string]map[string]float64{}
	for _, e := range fresh.Benchmarks {
		freshByName[e.Name] = e.Metrics
	}
	fmt.Fprintf(w, "baseline %s (%s) vs fresh %s (%s)\n\n", baselinePath, baseline.Go, freshPath, fresh.Go)
	fmt.Fprintf(w, "%-44s %14s %14s %9s  %s\n", "benchmark/metric", "baseline", "fresh", "delta", "verdict")
	for _, e := range baseline.Benchmarks {
		got, ok := freshByName[e.Name]
		if !ok {
			fmt.Fprintf(w, "%-44s %14s %14s %9s  FAIL (benchmark missing from fresh run)\n", e.Name, "-", "-", "-")
			failures++
			continue
		}
		for _, name := range sortedKeys(e.Metrics) {
			base := e.Metrics[name]
			label := e.Name + "/" + name
			freshVal, ok := got[name]
			if !ok {
				fmt.Fprintf(w, "%-44s %14.4g %14s %9s  FAIL (metric missing)\n", label, base, "-", "-")
				failures++
				continue
			}
			delta := 0.0
			if base != 0 {
				delta = (freshVal - base) / math.Abs(base)
			}
			verdict := "ok"
			switch classify(e.Name, name) {
			case classExact:
				if freshVal != base {
					verdict = "FAIL (deterministic count drifted)"
					failures++
				}
			case classRatio:
				if freshVal < base*(1-tolerance) {
					verdict = fmt.Sprintf("FAIL (beyond -%.0f%%)", tolerance*100)
					failures++
				}
			case classAllocLower:
				if freshVal > base*(1+allocTol) {
					verdict = fmt.Sprintf("FAIL (beyond +%.0f%%)", allocTol*100)
					failures++
				}
			case classTimeLower:
				if freshVal > base*(1+timeTol) {
					verdict = fmt.Sprintf("FAIL (beyond +%.0f%%)", timeTol*100)
					failures++
				}
			case classTimeHigher:
				if freshVal < base*(1-timeTol) {
					verdict = fmt.Sprintf("FAIL (beyond -%.0f%%)", timeTol*100)
					failures++
				}
			case classInfo:
				verdict = "info"
			}
			fmt.Fprintf(w, "%-44s %14.4g %14.4g %8.1f%%  %s\n", label, base, freshVal, delta*100, verdict)
		}
	}
	for _, e := range fresh.Benchmarks {
		found := false
		for _, b := range baseline.Benchmarks {
			if b.Name == e.Name {
				found = true
				break
			}
		}
		if !found {
			fmt.Fprintf(w, "%-44s %14s %14s %9s  info (new benchmark — consider refreshing the baseline)\n", e.Name, "-", "-", "-")
		}
	}
	return failures, nil
}

func sortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

package core

import (
	"math"
	"testing"
	"time"

	"tempo/internal/cluster"
	"tempo/internal/pald"
	"tempo/internal/qs"
	"tempo/internal/whatif"
	"tempo/internal/workload"
)

// fixedEnv returns a canned schedule regardless of configuration, letting
// tests drive the controller with exact QS values.
type fixedEnv struct {
	sched *cluster.Schedule
}

func (f *fixedEnv) Observe(cluster.Config, time.Duration, int) (*cluster.Schedule, error) {
	return f.sched, nil
}

// cannedSchedule yields QS values [DL fraction, AJR seconds] =
// [violations/total, mean response].
func cannedSchedule(capacity int, responses []time.Duration, deadlines []time.Duration) *cluster.Schedule {
	s := &cluster.Schedule{Capacity: capacity, Horizon: time.Hour}
	for i, r := range responses {
		var dl time.Duration
		if i < len(deadlines) {
			dl = deadlines[i]
		}
		s.Jobs = append(s.Jobs, cluster.JobRecord{
			ID: "j" + string(rune('a'+i)), Tenant: "T",
			Submit: 0, Finish: r, Deadline: dl, Completed: true,
		})
	}
	return s
}

func normController(t *testing.T, env Environment) *Controller {
	t.Helper()
	templates := []qs.Template{
		qs.Template{Queue: "T", Metric: qs.DeadlineViolations}.WithTarget(0.1),
		{Queue: "T", Metric: qs.AvgResponseTime},
	}
	trace := &workload.Trace{Name: "tiny", Horizon: time.Minute, Jobs: []workload.JobSpec{
		workload.NewMapReduceJob("x", "T", 0, []time.Duration{time.Second}, nil),
	}}
	model, err := whatif.FromTrace(templates, trace)
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := NewController(Config{
		Space:       cluster.DefaultSpace(10, []string{"T"}),
		Templates:   templates,
		Model:       model,
		Environment: env,
		Interval:    time.Hour,
		Candidates:  2,
		PALD:        pald.Options{Seed: 1},
	}, cluster.Config{TotalContainers: 10, Tenants: map[string]cluster.TenantConfig{"T": {Weight: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	return ctl
}

func TestScalesFrozenAtFirstObservation(t *testing.T) {
	// Responses: 100s and 300s → AJR 200; one of two deadline jobs missed
	// → DL 0.5.
	sched := cannedSchedule(10,
		[]time.Duration{100 * time.Second, 300 * time.Second},
		[]time.Duration{time.Second, 20 * time.Minute})
	ctl := normController(t, &fixedEnv{sched: sched})
	if _, err := ctl.Step(); err != nil {
		t.Fatal(err)
	}
	if ctl.scales == nil {
		t.Fatal("scales not initialized")
	}
	// Scale for DL = max(|0.5|, |target 0.1|) = 0.5; for AJR = 200.
	if math.Abs(ctl.scales[0]-0.5) > 1e-9 {
		t.Fatalf("DL scale = %v, want 0.5", ctl.scales[0])
	}
	if math.Abs(ctl.scales[1]-200) > 1e-9 {
		t.Fatalf("AJR scale = %v, want 200", ctl.scales[1])
	}
	first := append([]float64(nil), ctl.scales...)
	if _, err := ctl.Step(); err != nil {
		t.Fatal(err)
	}
	for i := range first {
		if ctl.scales[i] != first[i] {
			t.Fatal("scales drifted after first observation")
		}
	}
}

func TestNormalizeDividesByScales(t *testing.T) {
	ctl := normController(t, &fixedEnv{sched: cannedSchedule(10, []time.Duration{100 * time.Second}, nil)})
	ctl.scales = []float64{0.5, 200}
	got := ctl.normalize([]float64{0.25, 100})
	if math.Abs(got[0]-0.5) > 1e-12 || math.Abs(got[1]-0.5) > 1e-12 {
		t.Fatalf("normalized = %v, want [0.5 0.5]", got)
	}
	// nil scales pass through.
	ctl.scales = nil
	raw := []float64{1, 2}
	if got := ctl.normalize(raw); got[0] != 1 || got[1] != 2 {
		t.Fatalf("passthrough = %v", got)
	}
}

func TestNormalizedTargetsScaleR(t *testing.T) {
	ctl := normController(t, &fixedEnv{sched: cannedSchedule(10, []time.Duration{100 * time.Second}, nil)})
	ctl.scales = []float64{0.5, 200}
	ctl.targets = []pald.Target{{R: 0.1, Constrained: true}, {R: 100, Constrained: true}}
	nt := ctl.normalizedTargets()
	if math.Abs(nt[0].R-0.2) > 1e-12 {
		t.Fatalf("normalized DL target = %v, want 0.2", nt[0].R)
	}
	if math.Abs(nt[1].R-0.5) > 1e-12 {
		t.Fatalf("normalized AJR target = %v, want 0.5", nt[1].R)
	}
	// Unconstrained targets pass through untouched.
	ctl.targets[1].Constrained = false
	if got := ctl.normalizedTargets()[1].R; got != 100 {
		t.Fatalf("unconstrained R modified: %v", got)
	}
}

// TestMixedUnitRegressionGuard reproduces the bug the normalization fixed:
// a small deadline regression (fractions) must not be drowned out by a
// larger-looking but proportionally tiny AJR improvement (seconds).
func TestMixedUnitRegressionGuard(t *testing.T) {
	ctl := normController(t, &fixedEnv{sched: cannedSchedule(10, []time.Duration{100 * time.Second}, nil)})
	ctl.scales = []float64{0.1, 600} // typical magnitudes
	ctl.targets = []pald.Target{{R: 0, Constrained: true}, {R: 600, Constrained: true}}
	prev := []float64{0.05, 600} // 5% deadline misses, AJR 600s
	next := []float64{0.30, 550} // deadlines 6× worse, AJR 50s better
	ctl.prevObserved = prev
	ctl.hasPrev = true
	if !ctl.shouldRevert(next) {
		t.Fatal("guard failed to catch the deadline regression hidden behind an AJR gain")
	}
	// Without normalization the raw regret comparison would prefer `next`
	// (regret 550-600<0 vs ... dominated by seconds); sanity-check that
	// the un-normalized ordering indeed gets it wrong, proving the test
	// bites.
	rawTargets := []pald.Target{{R: 0, Constrained: true}, {R: 600, Constrained: true}}
	if pald.Better(prev, next, rawTargets, nil, 0.5) {
		t.Skip("raw ordering happens to agree; scenario no longer discriminating")
	}
}

package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVectorArithmetic(t *testing.T) {
	v := Vector{1, 2, 3}
	w := Vector{4, 5, 6}
	if got := v.Add(w); !got.Equal(Vector{5, 7, 9}, 0) {
		t.Errorf("Add = %v", got)
	}
	if got := v.Sub(w); !got.Equal(Vector{-3, -3, -3}, 0) {
		t.Errorf("Sub = %v", got)
	}
	if got := v.Scale(2); !got.Equal(Vector{2, 4, 6}, 0) {
		t.Errorf("Scale = %v", got)
	}
	if got := v.Dot(w); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
	if got := (Vector{3, 4}).Norm(); got != 5 {
		t.Errorf("Norm = %v, want 5", got)
	}
	if got := (Vector{-7, 2}).NormInf(); got != 7 {
		t.Errorf("NormInf = %v, want 7", got)
	}
	if got := (Vector{0, 0}).Dist(Vector{3, 4}); got != 5 {
		t.Errorf("Dist = %v, want 5", got)
	}
}

func TestVectorAXPYMutates(t *testing.T) {
	v := Vector{1, 1}
	v.AXPY(2, Vector{3, 4})
	if !v.Equal(Vector{7, 9}, 0) {
		t.Errorf("AXPY result %v, want [7 9]", v)
	}
}

func TestVectorClamp(t *testing.T) {
	v := Vector{-1, 0.5, 2}
	v.Clamp(0, 1)
	if !v.Equal(Vector{0, 0.5, 1}, 0) {
		t.Errorf("Clamp = %v", v)
	}
}

func TestCloneIndependent(t *testing.T) {
	v := Vector{1, 2}
	c := v.Clone()
	c[0] = 99
	if v[0] != 1 {
		t.Fatal("Clone shares storage")
	}
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	mc := m.Clone()
	mc.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Matrix Clone shares storage")
	}
}

func TestMatrixMulVec(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	got := m.MulVec(Vector{1, 1})
	if !got.Equal(Vector{3, 7, 11}, 0) {
		t.Errorf("MulVec = %v", got)
	}
	gotT := m.TMulVec(Vector{1, 1, 1})
	if !gotT.Equal(Vector{9, 12}, 0) {
		t.Errorf("TMulVec = %v", gotT)
	}
}

func TestMatrixMulAndTranspose(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{0, 1}, {1, 0}})
	got := a.Mul(b)
	want := FromRows([][]float64{{2, 1}, {4, 3}})
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if got.At(i, j) != want.At(i, j) {
				t.Fatalf("Mul = %v", got.Data)
			}
		}
	}
	at := a.Transpose()
	if at.At(0, 1) != 3 || at.At(1, 0) != 2 {
		t.Fatalf("Transpose = %v", at.Data)
	}
}

func TestGramMatrix(t *testing.T) {
	j := FromRows([][]float64{{1, 0}, {1, 1}})
	g := j.Gram()
	want := [][]float64{{1, 1}, {1, 2}}
	for i := 0; i < 2; i++ {
		for k := 0; k < 2; k++ {
			if g.At(i, k) != want[i][k] {
				t.Fatalf("Gram = %v", g.Data)
			}
		}
	}
}

func TestSolveKnownSystem(t *testing.T) {
	a := FromRows([][]float64{
		{2, 1, -1},
		{-3, -1, 2},
		{-2, 1, 2},
	})
	b := Vector{8, -11, -3}
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !x.Equal(Vector{2, 3, -1}, 1e-9) {
		t.Fatalf("Solve = %v, want [2 3 -1]", x)
	}
}

func TestSolveSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := Solve(a, Vector{1, 2}); err == nil {
		t.Fatal("expected ErrSingular")
	}
}

func TestSolveRequiresSquare(t *testing.T) {
	a := NewMatrix(2, 3)
	if _, err := Solve(a, Vector{1, 2}); err == nil {
		t.Fatal("expected error for non-square matrix")
	}
}

func TestSolveNeedsPivoting(t *testing.T) {
	// Leading zero forces a row swap.
	a := FromRows([][]float64{{0, 1}, {1, 0}})
	x, err := Solve(a, Vector{3, 7})
	if err != nil {
		t.Fatal(err)
	}
	if !x.Equal(Vector{7, 3}, 1e-12) {
		t.Fatalf("Solve = %v, want [7 3]", x)
	}
}

func TestLeastSquaresExactFit(t *testing.T) {
	// Overdetermined but consistent: b = a·[1, 2].
	a := FromRows([][]float64{{1, 0}, {0, 1}, {1, 1}})
	b := Vector{1, 2, 3}
	x, err := LeastSquares(a, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !x.Equal(Vector{1, 2}, 1e-9) {
		t.Fatalf("LeastSquares = %v, want [1 2]", x)
	}
}

func TestLeastSquaresRidgeShrinks(t *testing.T) {
	a := FromRows([][]float64{{1}, {1}})
	b := Vector{2, 2}
	x0, err := LeastSquares(a, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	x1, err := LeastSquares(a, b, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x0[0]-2) > 1e-9 {
		t.Fatalf("unridged = %v, want 2", x0[0])
	}
	if x1[0] >= x0[0] {
		t.Fatalf("ridge did not shrink: %v >= %v", x1[0], x0[0])
	}
}

func TestWeightedLeastSquaresRespectsWeights(t *testing.T) {
	// Two incompatible observations of a constant; the heavier one wins.
	a := FromRows([][]float64{{1}, {1}})
	b := Vector{0, 10}
	x, err := WeightedLeastSquares(a, b, Vector{1, 9}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-9) > 1e-9 {
		t.Fatalf("weighted fit = %v, want 9", x[0])
	}
}

func TestWeightedLeastSquaresNegativeWeight(t *testing.T) {
	a := FromRows([][]float64{{1}})
	if _, err := WeightedLeastSquares(a, Vector{1}, Vector{-1}, 0); err == nil {
		t.Fatal("expected error for negative weight")
	}
}

func TestDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on mismatched Dot")
		}
	}()
	_ = Vector{1}.Dot(Vector{1, 2})
}

// Property: Solve recovers x from (a, a·x) for random well-conditioned a.
func TestPropertySolveRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
			// Diagonal dominance keeps the matrix comfortably nonsingular.
			a.Set(i, i, a.At(i, i)+float64(n)+1)
		}
		want := NewVector(n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b := a.MulVec(want)
		got, err := Solve(a, b)
		if err != nil {
			return false
		}
		return got.Equal(want, 1e-7)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: the Gram matrix is symmetric positive semidefinite
// (xᵀGx = ||Jᵀ... applied... || ≥ 0 for random x).
func TestPropertyGramPSD(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 1+rng.Intn(5), 1+rng.Intn(5)
		m := NewMatrix(rows, cols)
		for i := range m.Data {
			m.Data[i] = rng.NormFloat64()
		}
		g := m.Gram()
		for i := 0; i < rows; i++ {
			for j := 0; j < rows; j++ {
				if math.Abs(g.At(i, j)-g.At(j, i)) > 1e-12 {
					return false
				}
			}
		}
		x := NewVector(rows)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		return x.Dot(g.MulVec(x)) >= -1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: least squares residual is orthogonal to the column space
// (normal equations hold).
func TestPropertyLeastSquaresNormalEquations(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 3 + rng.Intn(5)
		cols := 1 + rng.Intn(3)
		a := NewMatrix(rows, cols)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		b := NewVector(rows)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := LeastSquares(a, b, 1e-9)
		if err != nil {
			return true // nearly rank-deficient draw; skip
		}
		resid := a.MulVec(x).Sub(b)
		return a.TMulVec(resid).NormInf() < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

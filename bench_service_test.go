package tempo_test

// The serving-layer benchmark lives in the external test package: the
// control plane (internal/service) wraps the root package's Session
// handle, so an in-package benchmark would be an import cycle. It shares
// the in-package harness's test binary, so recording through
// internal/benchrec lands in the same TEMPO_BENCH_OUT document.

import (
	"fmt"
	"net/http/httptest"
	"runtime"
	"testing"

	"tempo/internal/benchrec"
	"tempo/internal/service"
)

// BenchmarkServiceThroughput measures the sharded control plane end to
// end over real HTTP: N clusters created from the builtin loadgen preset
// and driven through their full control-loop budgets with interleaved
// tick, QS, and what-if traffic. At 100 clusters every per-cluster report
// is verified byte-identical to the scenario run sequentially — the
// acceptance criterion — so the recorded throughput is the throughput of
// provably deterministic execution; 1000 clusters measures scale.
func BenchmarkServiceThroughput(b *testing.B) {
	for _, clusters := range []int{100, 1000} {
		verify := clusters <= 100
		b.Run(fmt.Sprintf("clusters=%d", clusters), func(b *testing.B) {
			var last *service.DriveReport
			var allocsPerTick, bytesPerTick float64
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				svc, err := service.New(service.Config{})
				if err != nil {
					b.Fatal(err)
				}
				ts := httptest.NewServer(svc.Handler())
				// Capture the serving process's heap traffic across the
				// drive (server and client share the process; ticks
				// dominate), normalized per tick so populations compare.
				runtime.GC()
				var before, after runtime.MemStats
				runtime.ReadMemStats(&before)
				rep, err := service.Drive(ts.URL, service.DriveOptions{
					Clusters:    clusters,
					QSEvery:     2,
					WhatIfEvery: 3,
					Verify:      verify,
				})
				runtime.ReadMemStats(&after)
				ts.Close()
				svc.Close()
				if err != nil {
					b.Fatal(err)
				}
				if verify && rep.Verified != clusters {
					b.Fatalf("only %d/%d cluster reports verified", rep.Verified, clusters)
				}
				last = rep
				allocsPerTick = float64(after.Mallocs-before.Mallocs) / float64(rep.Ticks)
				bytesPerTick = float64(after.TotalAlloc-before.TotalAlloc) / float64(rep.Ticks)
			}
			b.ReportMetric(last.TicksPerSec, "ticks/sec")
			b.ReportMetric(last.ClustersDone, "clusters/sec")
			b.ReportMetric(allocsPerTick, "allocs/tick")
			benchrec.Record(fmt.Sprintf("ServiceThroughput/clusters=%d", clusters), map[string]float64{
				"clusters":         float64(last.Clusters),
				"ticks":            float64(last.Ticks),
				"qs_queries":       float64(last.QSQueries),
				"whatif_calls":     float64(last.WhatIfCalls),
				"verified":         float64(last.Verified),
				"wall_ns":          last.WallSeconds * 1e9,
				"ticks_per_sec":    last.TicksPerSec,
				"clusters_per_sec": last.ClustersDone,
				"allocs_per_op":    allocsPerTick,
				"bytes_per_op":     bytesPerTick,
			})
		})
	}
}

// Command experiments regenerates the tables and figures of the paper's
// evaluation (§8) plus the design ablations, printing each as a text table.
//
// Usage:
//
//	experiments                 # run everything
//	experiments -run figure6    # run one experiment
//	experiments -seed 7 -iters 20
//
// Experiment names: table1, table2, figure1, figure2, figure5, figure6,
// figure7, figure8, figure9, figure10, figure11, figure12, proxy,
// strategies, guard, gradient.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"tempo/internal/exp"
)

// renderer runs one experiment and returns its rendered output.
type renderer func(seed int64, iters int) (string, error)

var registry = []struct {
	name string
	run  renderer
}{
	{"table1", func(s int64, _ int) (string, error) { r, err := exp.Table1(s); return render(r, err) }},
	{"table2", func(s int64, _ int) (string, error) { r, err := exp.Table2(s); return render(r, err) }},
	{"figure1", func(int64, int) (string, error) { r, err := exp.Figure1(); return render(r, err) }},
	{"figure2", func(s int64, _ int) (string, error) { r, err := exp.Figure2(s); return render(r, err) }},
	{"figure5", func(s int64, _ int) (string, error) { r, err := exp.Figure5(s); return render(r, err) }},
	{"figure6", func(s int64, n int) (string, error) { r, err := exp.Figure6(s, n); return render(r, err) }},
	{"figure7", func(s int64, _ int) (string, error) { r, err := exp.Figure7(s); return render(r, err) }},
	{"figure8", func(s int64, _ int) (string, error) { r, err := exp.Figure8(s); return render(r, err) }},
	{"figure9", func(s int64, n int) (string, error) { r, err := exp.Figure9(s, n); return render(r, err) }},
	{"figure10", func(s int64, _ int) (string, error) { r, err := exp.Figure10(s); return render(r, err) }},
	{"figure11", func(s int64, _ int) (string, error) { r, err := exp.Figure11(s); return render(r, err) }},
	{"figure12", func(s int64, _ int) (string, error) { r, err := exp.Figure12(s); return render(r, err) }},
	{"proxy", func(int64, int) (string, error) { return exp.ProxyCounterexample().Render(), nil }},
	{"strategies", func(s int64, n int) (string, error) { r, err := exp.CompareStrategies(s, n); return render(r, err) }},
	{"guard", func(s int64, n int) (string, error) { r, err := exp.GuardAblation(s, n); return render(r, err) }},
	{"gradient", func(s int64, _ int) (string, error) { r, err := exp.GradientAblation(s); return render(r, err) }},
}

// renderable is implemented by every experiment result.
type renderable interface{ Render() string }

func render(r renderable, err error) (string, error) {
	if err != nil {
		return "", err
	}
	return r.Render(), nil
}

func main() {
	var (
		only        = flag.String("run", "", "comma-separated experiment names (default: all)")
		seed        = flag.Int64("seed", 42, "random seed")
		iters       = flag.Int("iters", 0, "control-loop iterations (0 = per-experiment default)")
		parallelism = flag.Int("parallelism", 0, "what-if worker count (0 = one per CPU); results are identical for any value")
	)
	flag.Parse()
	if *parallelism > 0 {
		exp.Parallelism = *parallelism
	}
	selected := map[string]bool{}
	if *only != "" {
		for _, n := range strings.Split(*only, ",") {
			selected[strings.TrimSpace(n)] = true
		}
	}
	ranAny := false
	for _, e := range registry {
		if len(selected) > 0 && !selected[e.name] {
			continue
		}
		ranAny = true
		start := time.Now()
		out, err := e.run(*seed, *iters)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e.name, err)
			os.Exit(1)
		}
		fmt.Printf("===== %s (%.1fs) =====\n%s\n", e.name, time.Since(start).Seconds(), out)
	}
	if !ranAny {
		fmt.Fprintf(os.Stderr, "experiments: no experiment matched %q\n", *only)
		os.Exit(1)
	}
}

package qs

import (
	"testing"
	"time"

	"tempo/internal/cluster"
	"tempo/internal/workload"
)

// boundTrace synthesizes a two-tenant workload dense enough that neither
// the utilization nor the throughput bound is trivially slack.
func boundTrace(t *testing.T, seed int64) *workload.Trace {
	t.Helper()
	tr, err := workload.Generate(
		[]workload.TenantProfile{
			workload.BestEffort("A", 1.4),
			workload.DeadlineDriven("B", 1.1),
		},
		workload.GenerateOptions{Horizon: time.Hour, Seed: seed},
	)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func boundTemplates() []Template {
	return []Template{
		{Queue: "A", Metric: Utilization},
		{Metric: Utilization},                         // cluster-wide
		{Queue: "A", Metric: Throughput, Priority: 2}, // priority scales the bound too
		{Metric: Throughput},
		{Queue: "A", Metric: AvgResponseTime}, // nonnegative family: bound 0
		{Queue: "B", Metric: DeadlineViolations},
	}
}

// TestBoundSetLowerIsSound is the property the pruning proof stands on:
// for every configuration, Lower is a coordinatewise lower bound on the
// QS vector of the schedule the built-in predictor produces. It sweeps
// capacities and MaxShare caps — the two levers the bound actually reads.
func TestBoundSetLowerIsSound(t *testing.T) {
	horizon := time.Hour
	templates := boundTemplates()
	for _, seed := range []int64{3, 7, 11} {
		tr := boundTrace(t, seed)
		b := NewBoundSet(templates, tr, horizon)
		if b == nil {
			t.Fatal("nil BoundSet for positive horizon")
		}
		for _, capacity := range []int{2, 6, 20, 64} {
			for _, maxA := range []int{0, 1, 3, capacity} {
				cfg := cluster.Config{TotalContainers: capacity, Tenants: map[string]cluster.TenantConfig{
					"A": {Weight: 1, MaxShare: maxA},
					"B": {Weight: 2},
				}}
				sched, err := cluster.Run(tr, cfg, cluster.Options{Horizon: horizon})
				if err != nil {
					t.Fatal(err)
				}
				actual := EvalStream(templates, sched, 0, sched.Horizon+time.Nanosecond)
				lower := b.Lower(&cfg)
				if len(lower) != len(actual) {
					t.Fatalf("bound length %d != %d", len(lower), len(actual))
				}
				for k := range lower {
					if lower[k] > actual[k] {
						t.Fatalf("seed %d capacity %d maxA %d: bound %v exceeds actual %v for %s",
							seed, capacity, maxA, lower[k], actual[k], templates[k].Name())
					}
				}
			}
		}
	}
}

// TestBoundSetNilOnUnboundedHorizon: bounds need a finite prediction
// window; without one the constructor refuses rather than guessing.
func TestBoundSetNilOnUnboundedHorizon(t *testing.T) {
	if b := NewBoundSet(boundTemplates(), boundTrace(t, 1), 0); b != nil {
		t.Fatal("BoundSet built with zero horizon")
	}
	if b := NewBoundSet(boundTemplates(), boundTrace(t, 1), -time.Hour); b != nil {
		t.Fatal("BoundSet built with negative horizon")
	}
}

// TestBoundSetThroughputTightensWithShareCap: capping a tenant's MaxShare
// must never loosen its throughput bound (fewer jobs can complete), and
// a one-container cap on a heavy queue should bind strictly below the
// uncapped bound.
func TestBoundSetThroughputTightensWithShareCap(t *testing.T) {
	tr := boundTrace(t, 5)
	templates := []Template{{Queue: "A", Metric: Throughput}}
	b := NewBoundSet(templates, tr, time.Hour)
	open := cluster.Config{TotalContainers: 40, Tenants: map[string]cluster.TenantConfig{
		"A": {Weight: 1}, "B": {Weight: 1},
	}}
	capped := cluster.Config{TotalContainers: 40, Tenants: map[string]cluster.TenantConfig{
		"A": {Weight: 1, MaxShare: 1}, "B": {Weight: 1},
	}}
	lo := b.Lower(&open)[0]
	lc := b.Lower(&capped)[0]
	if lc < lo {
		t.Fatalf("capped bound %v looser than open bound %v", lc, lo)
	}
	if lc == lo {
		t.Fatalf("one-container cap did not tighten the bound (both %v); fixture too slack", lc)
	}
}

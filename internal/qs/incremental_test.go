package qs

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"tempo/internal/cluster"
	"tempo/internal/linalg"
	"tempo/internal/workload"
)

// allTemplates builds a representative template set over the schedule's
// tenants: every metric kind, cluster-wide and per-tenant, with randomized
// slacks, shares, and priorities.
func allTemplates(rng *rand.Rand, tenants []string) []Template {
	mapKind, redKind := workload.Map, workload.Reduce
	templates := []Template{
		{Metric: Utilization},
		{Metric: Utilization, TaskKind: &mapKind, EffectiveOnly: true},
		{Metric: Utilization, TaskKind: &redKind},
		{Metric: Throughput},
	}
	for _, tenant := range tenants {
		templates = append(templates,
			Template{Queue: tenant, Metric: AvgResponseTime, Priority: 0.5 + 2*rng.Float64()},
			Template{Queue: tenant, Metric: DeadlineViolations, Slack: rng.Float64()},
			Template{Queue: tenant, Metric: Utilization, EffectiveOnly: rng.Intn(2) == 0},
			Template{Queue: tenant, Metric: Throughput},
			Template{Queue: tenant, Metric: Fairness, DesiredShare: rng.Float64()},
		)
	}
	return templates
}

// checkWindow compares the incremental path against the oracle for one
// window. exact demands bit-identical values (the full-window guarantee
// golden reports rely on); otherwise values must agree within 1e-9
// relative — float summation order is the only permitted difference.
func checkWindow(t *testing.T, acc *Accumulator, templates []Template, s *cluster.Schedule, from, to time.Duration, exact bool) {
	t.Helper()
	want := EvalAll(templates, s, from, to)
	for i := range templates {
		got := acc.Value(i, from, to)
		w := want[i]
		if math.IsNaN(w) != math.IsNaN(got) {
			t.Fatalf("template %s window [%v, %v): got %v, want %v", templates[i].Name(), from, to, got, w)
		}
		if math.IsNaN(w) {
			continue
		}
		if exact {
			if got != w {
				t.Fatalf("template %s full window [%v, %v): got %v, want %v (must be bit-identical)",
					templates[i].Name(), from, to, got, w)
			}
			continue
		}
		if diff := math.Abs(got - w); diff > 1e-9*(1+math.Abs(w)) {
			t.Fatalf("template %s window [%v, %v): got %v, want %v (diff %g)",
				templates[i].Name(), from, to, got, w, diff)
		}
	}
}

// coveringWindow returns a window end strictly past every record time, so
// [0, coveringWindow(s)) is a whole-schedule window — the shape for which
// the incremental path guarantees bit-identical results. For emulator
// output this equals Horizon+1ns, since no record outlives the horizon;
// the synthetic fuzz schedules can place finishes beyond it.
func coveringWindow(s *cluster.Schedule) time.Duration {
	max := s.Horizon
	for i := range s.Jobs {
		if f := s.Jobs[i].Finish; f > max {
			max = f
		}
		if sub := s.Jobs[i].Submit; sub > max {
			max = sub
		}
	}
	for i := range s.Tasks {
		if e := s.Tasks[i].End; e > max {
			max = e
		}
	}
	return max + time.Nanosecond
}

// randomWindows yields query windows biased toward the edges the half-open
// convention cares about: exact submit/finish instants, 1ns offsets around
// them, empty and inverted windows, and the full horizon.
func randomWindows(rng *rand.Rand, s *cluster.Schedule) [][2]time.Duration {
	windows := [][2]time.Duration{
		{0, s.Horizon + time.Nanosecond}, // the control loop's query
		{0, s.Horizon},
		{0, 0},                         // empty
		{s.Horizon, 0},                 // inverted
		{s.Horizon / 3, s.Horizon / 3}, // empty mid-run
		{-time.Hour, 10 * s.Horizon},   // superset of everything
	}
	var edges []time.Duration
	for i := range s.Jobs {
		edges = append(edges, s.Jobs[i].Submit, s.Jobs[i].Finish)
	}
	for i := range s.Tasks {
		edges = append(edges, s.Tasks[i].Start, s.Tasks[i].End)
	}
	pick := func() time.Duration {
		if len(edges) > 0 && rng.Intn(2) == 0 {
			e := edges[rng.Intn(len(edges))]
			return e + time.Duration(rng.Intn(3)-1) // e-1ns, e, e+1ns
		}
		return time.Duration(rng.Int63n(int64(s.Horizon + time.Minute)))
	}
	for k := 0; k < 24; k++ {
		windows = append(windows, [2]time.Duration{pick(), pick()})
	}
	return windows
}

// TestPropertyIncrementalOracle is the equivalence centerpiece: for
// randomized schedules — both arbitrary synthetic record sets and real
// emulated runs under random RM configurations — every incremental QS
// value equals the full-recompute oracle within 1e-9 across random
// [From, To) windows, and bit-identically on windows covering the whole
// schedule.
func TestPropertyIncrementalOracle(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		seed := seed
		rng := rand.New(rand.NewSource(seed))
		s := fuzzSchedule(rng.Int63(), 1+rng.Intn(64), rng.Intn(40))
		templates := allTemplates(rng, []string{"a", "b", "c"})
		acc := Accumulate(templates, s)
		checkWindow(t, acc, templates, s, 0, coveringWindow(s), true)
		checkWindow(t, acc, templates, s, 0, s.Horizon+time.Nanosecond, false)
		for _, w := range randomWindows(rng, s) {
			checkWindow(t, acc, templates, s, w[0], w[1], false)
		}
	}
}

// TestPropertyIncrementalOracleEmulated runs the same equivalence check on
// schedules produced by the real emulator: generated multi-tenant traces
// under randomly decoded RM configurations, with and without noise.
func TestPropertyIncrementalOracleEmulated(t *testing.T) {
	tenants := []string{"deadline", "besteffort", "analytics"}
	for seed := int64(0); seed < 6; seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed*7919 + 3))
			profiles := []workload.TenantProfile{
				workload.DeadlineDriven("deadline", 0.5+rng.Float64()),
				workload.BestEffort("besteffort", 0.5+rng.Float64()),
				workload.Facebook("analytics", 0.3+0.5*rng.Float64()),
			}
			trace, err := workload.Generate(profiles, workload.GenerateOptions{
				Horizon: time.Hour, Seed: rng.Int63(), Name: "prop",
			})
			if err != nil {
				t.Fatal(err)
			}
			capacity := 16 + rng.Intn(32)
			space := cluster.DefaultSpace(capacity, tenants)
			x := linalg.NewVector(space.Dim())
			for i := range x {
				x[i] = rng.Float64()
			}
			cfg := space.Decode(x)
			opts := cluster.Options{Horizon: time.Hour}
			if rng.Intn(2) == 0 {
				opts.Noise = cluster.DefaultNoise(rng.Int63())
			}
			sched, err := cluster.Run(trace, cfg, opts)
			if err != nil {
				t.Fatal(err)
			}
			templates := allTemplates(rng, tenants)
			acc := Accumulate(templates, sched)
			checkWindow(t, acc, templates, sched, 0, sched.Horizon+time.Nanosecond, true)
			for _, w := range randomWindows(rng, sched) {
				checkWindow(t, acc, templates, sched, w[0], w[1], false)
			}
		})
	}
}

// TestAccumulatorConcurrentQueries drives one shared accumulator from many
// goroutines — including the implicit first-query Seal — so `go test
// -race` verifies Value/Values are safe for concurrent use.
func TestAccumulatorConcurrentQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	s := fuzzSchedule(99, 32, 30)
	templates := allTemplates(rng, []string{"a", "b", "c"})
	acc := NewAccumulator(templates, s.Capacity)
	for _, ev := range s.Events() {
		acc.Observe(ev)
	}
	windows := randomWindows(rng, s)
	wide := coveringWindow(s)
	want := EvalAll(templates, s, 0, wide)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got := acc.Values(0, wide) // first call seals
			for i := range want {
				if got[i] != want[i] && !(math.IsNaN(got[i]) && math.IsNaN(want[i])) {
					t.Errorf("concurrent full-window value %d: got %v, want %v", i, got[i], want[i])
					return
				}
			}
			for _, w := range windows {
				acc.Values(w[0], w[1])
			}
		}()
	}
	wg.Wait()
}

// TestObserveAfterSealIgnored locks the documented contract: once the
// accumulator seals (explicitly or via the first query), further Observe
// calls change nothing.
func TestObserveAfterSealIgnored(t *testing.T) {
	s := fuzzSchedule(5, 16, 12)
	templates := []Template{{Queue: "a", Metric: Throughput}, {Metric: Utilization}}
	acc := Accumulate(templates, s) // sealed
	wide := coveringWindow(s)
	want := acc.Values(0, wide)
	late := cluster.Event{
		Time: time.Minute, Kind: cluster.EventJobSubmit, Seq: len(s.Jobs) + 5,
		Tenant: "a", JobID: "late",
	}
	acc.Observe(late)
	got := acc.Values(0, wide)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("post-seal Observe changed value %d: %v -> %v", i, want[i], got[i])
		}
	}
}

// TestIntervalEdgeConvention locks the half-open [From, To) convention
// documented in qs.go: a job finishing exactly at To is excluded by BOTH
// evaluation paths, a job finishing 1ns earlier is included, and the
// allocation integral clips tasks at To.
func TestIntervalEdgeConvention(t *testing.T) {
	to := 100 * time.Second
	s := &cluster.Schedule{Capacity: 10, Horizon: 2 * to}
	s.Jobs = []cluster.JobRecord{
		// Finishes exactly at To: excluded from Ji.
		{ID: "edge", Tenant: "a", Submit: 10 * time.Second, Finish: to, Completed: true, Deadline: 20 * time.Second},
		// Finishes 1ns before To: included.
		{ID: "in", Tenant: "a", Submit: 20 * time.Second, Finish: to - time.Nanosecond, Completed: true, Deadline: 30 * time.Second},
		// Submitted exactly at To: excluded.
		{ID: "late", Tenant: "a", Submit: to, Finish: to + time.Second, Completed: true},
	}
	s.Tasks = []cluster.TaskRecord{
		// Ends exactly at To: counts fully (half-open occupation [50s, To)).
		{JobID: "edge", Tenant: "a", Start: 50 * time.Second, End: to, Outcome: cluster.TaskFinished},
		// Starts exactly at To: contributes nothing to [0, To).
		{JobID: "late", Tenant: "a", Start: to, End: to + 10*time.Second, Outcome: cluster.TaskFinished},
	}
	templates := []Template{
		{Queue: "a", Metric: Throughput},
		{Queue: "a", Metric: AvgResponseTime},
		{Queue: "a", Metric: DeadlineViolations},
		{Queue: "a", Metric: Utilization},
	}
	acc := Accumulate(templates, s)
	for name, vals := range map[string][]float64{
		"oracle":      EvalAll(templates, s, 0, to),
		"incremental": acc.Values(0, to),
	} {
		// Only "in" is in the job set: one completed job, one violated
		// deadline (finish 99.99…s > deadline 30s), response ~80s.
		if got := -vals[0]; got != 1 {
			t.Errorf("%s: throughput counted %v jobs in [0, To), want 1 (job finishing at To must be excluded)", name, got)
		}
		wantAJR := (to - time.Nanosecond - 20*time.Second).Seconds()
		if math.Abs(vals[1]-wantAJR) > 1e-9 {
			t.Errorf("%s: AJR = %v, want %v", name, vals[1], wantAJR)
		}
		if vals[2] != 1 {
			t.Errorf("%s: deadline violations = %v, want 1 (only the included job counts)", name, vals[2])
		}
		// 50s of one container out of 100s × 10 containers; the task
		// starting at To adds nothing.
		if math.Abs(vals[3]+0.05) > 1e-12 {
			t.Errorf("%s: utilization = %v, want -0.05", name, vals[3])
		}
	}
	// Moving the window one nanosecond past To admits the edge job in both
	// paths.
	oracleWide := EvalAll(templates, s, 0, to+time.Nanosecond)
	incrWide := acc.Values(0, to+time.Nanosecond)
	if -oracleWide[0] != 2 || -incrWide[0] != 2 {
		t.Errorf("[0, To+1ns): oracle %v / incremental %v completed jobs, want 2", -oracleWide[0], -incrWide[0])
	}
}

// Package scenario is the declarative stress-scenario layer on top of the
// cluster emulator (internal/cluster), the control loop (internal/core),
// and the What-if Model (internal/whatif). A Spec — loadable from JSON —
// composes tenants (statistical profile presets), arrival processes
// (steady, diurnal, periodic burst, flash crowd, tenant arrival and
// departure), SLO templates, mid-run capacity changes, and a controller
// on/off toggle. Run drives the whole thing deterministically (seeded,
// bit-reproducible for any what-if parallelism) and emits a canonical
// Report with stable serialization, which the golden-file regression suite
// in this package locks down.
//
// The paper's robustness claim (§8.2: SLOs hold under bursty, diurnal,
// adversarial multi-tenant load) only means something over a broad,
// repeatable scenario matrix; this package is that matrix's substrate.
package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"tempo/internal/cluster"
	"tempo/internal/qs"
	"tempo/internal/workload"
)

// Spec declaratively describes one multi-tenant stress scenario.
type Spec struct {
	// Name identifies the scenario; reports carry it.
	Name string `json:"name"`
	// Description is free-form documentation.
	Description string `json:"description,omitempty"`
	// Seed drives every random stream in the scenario. All derived seeds
	// (trace, noise, optimizer) are fixed functions of it, so one number
	// reproduces the whole run.
	Seed int64 `json:"seed"`
	// Capacity is the cluster's container count at the start of the run.
	Capacity int `json:"capacity"`
	// IntervalMinutes is the control interval L.
	IntervalMinutes float64 `json:"interval_minutes"`
	// Iterations is how many control intervals the run covers.
	Iterations int `json:"iterations"`
	// Replay selects the workload protocol. True replays one generated
	// interval-length trace every iteration with fresh noise — the
	// §8.2.1/§8.2.2 protocol, where QS changes are attributable to
	// configuration changes. False generates one long trace over the whole
	// run and plays consecutive windows — the §8.2.3 drift protocol, which
	// time-based effects (diurnal cycles, flash crowds, tenant arrival and
	// departure, bursts) require.
	Replay bool `json:"replay,omitempty"`
	// Noise, when non-nil, runs the emulation with production disturbances.
	// An empty object selects the §8.1 default noise model; fields override
	// it individually. Nil runs deterministically.
	Noise *NoiseSpec `json:"noise,omitempty"`
	// Tenants are the workload sources; at least one is required.
	Tenants []TenantSpec `json:"tenants"`
	// SLOs fix the QS vector, in order; at least one is required.
	SLOs []SLOSpec `json:"slos"`
	// Initial selects the RM configuration the run starts from.
	Initial InitialSpec `json:"initial"`
	// CapacityChanges shrink or grow the emulated cluster mid-run (node
	// failures, fleet expansion). Each change takes effect at its iteration
	// and persists. The controller's what-if model keeps assuming the
	// original capacity — exactly the model/reality mismatch such events
	// cause in production.
	CapacityChanges []CapacityChange `json:"capacity_changes,omitempty"`
	// Controller configures the control loop.
	Controller ControllerSpec `json:"controller"`
}

// maxTenantCount bounds one group's replication factor: it keeps a typo'd
// spec from materializing millions of tenants, and keeps every replica
// suffix within the fixed three-digit padding so expanded names sort in
// replica order.
const maxTenantCount = 1000

// TenantSpec declares one tenant as a named statistical profile preset plus
// arrival-process and lifecycle modifiers. With Count > 1 it declares a
// whole *group* of tenants sharing the profile — the stress tier's way of
// describing hundreds of tenants in a few lines.
type TenantSpec struct {
	// Name is the tenant (queue) name — or, with Count > 1, the group
	// prefix.
	Name string `json:"name"`
	// Count replicates this spec into Count tenants named "<name>-000",
	// "<name>-001", … (zero-padded to three digits). Each replica draws an
	// independent workload stream: the generator seeds per-tenant
	// randomness by tenant name, so replicas share the statistical profile
	// but not the arrivals. 0 and 1 both mean a single tenant named Name
	// verbatim. Per-tenant SLOs and initial-config entries refer to
	// replicas by their expanded names.
	Count int `json:"count,omitempty"`
	// Profile selects the statistical workload preset: "deadline-driven",
	// "best-effort", "facebook", "cloudera", or one of the Company ABC
	// tenants "abc-bi", "abc-dev", "abc-app", "abc-str", "abc-mv",
	// "abc-etl" (which carry their Table 1 rate patterns).
	Profile string `json:"profile"`
	// Scale multiplies the preset's arrival rate; 0 means 1.
	Scale float64 `json:"scale,omitempty"`
	// Deadline attaches (or overrides) deadline generation.
	Deadline *DeadlineSpec `json:"deadline,omitempty"`
	// Arrival replaces the preset's arrival-rate modulation with the
	// product of the listed processes. Empty keeps the preset's own.
	Arrival []ArrivalSpec `json:"arrival,omitempty"`
	// ArriveAfterHours silences the tenant before this run time — a tenant
	// onboarding mid-run. Zero means present from the start.
	ArriveAfterHours float64 `json:"arrive_after_hours,omitempty"`
	// DepartAfterHours silences the tenant from this run time on — a tenant
	// leaving mid-run. Zero means the tenant never departs.
	DepartAfterHours float64 `json:"depart_after_hours,omitempty"`
	// Grow scales the tenant's data size by this factor (§7.1's synthetic
	// "growth in data size"); 0 means unchanged.
	Grow float64 `json:"grow,omitempty"`
}

// DeadlineSpec attaches deadlines to a tenant's jobs: a job with ideal
// duration d gets deadline submit + factor·d, factor uniform in [Lo, Hi].
type DeadlineSpec struct {
	FactorLo float64 `json:"factor_lo"`
	FactorHi float64 `json:"factor_hi"`
	// Parallelism is the container count assumed when estimating the ideal
	// duration; 0 means the generator default (10).
	Parallelism int `json:"parallelism,omitempty"`
}

// ArrivalSpec is one arrival-rate modulation process. Kinds:
//
//	steady      — constant rate (the identity; useful to strip a preset's
//	              built-in pattern)
//	diurnal     — smooth day/night cycle with a weekend dip (night and
//	              weekend are multipliers in [0,1])
//	burst       — periodic bursts: boost inside a width-minutes window
//	              every period, floor outside
//	flash-crowd — a one-off rate spike: multiplier during
//	              [at, at+duration), 1 elsewhere
type ArrivalSpec struct {
	Kind string `json:"kind"`
	// Diurnal parameters.
	Night   float64 `json:"night,omitempty"`
	Weekend float64 `json:"weekend,omitempty"`
	// Burst parameters.
	PeriodMinutes float64 `json:"period_minutes,omitempty"`
	WidthMinutes  float64 `json:"width_minutes,omitempty"`
	Floor         float64 `json:"floor,omitempty"`
	Boost         float64 `json:"boost,omitempty"`
	// Flash-crowd parameters.
	AtHours       float64 `json:"at_hours,omitempty"`
	DurationHours float64 `json:"duration_hours,omitempty"`
	Multiplier    float64 `json:"multiplier,omitempty"`
}

// SLOSpec is the JSON form of one QS template (§5.2).
type SLOSpec struct {
	// Queue is the tenant the SLO covers; empty means cluster-wide (valid
	// for utilization and throughput only).
	Queue string `json:"queue,omitempty"`
	// Metric is one of "avg_response_time", "deadline_violations",
	// "utilization", "throughput", "fairness".
	Metric string `json:"metric"`
	// Slack is QS_DL's tolerance γ.
	Slack float64 `json:"slack,omitempty"`
	// DesiredShare is QS_FAIR's target usage fraction.
	DesiredShare float64 `json:"desired_share,omitempty"`
	// EffectiveOnly restricts QS_UTIL to finished attempts.
	EffectiveOnly bool `json:"effective_only,omitempty"`
	// TaskKind restricts QS_UTIL to "map" or "reduce" containers.
	TaskKind string `json:"task_kind,omitempty"`
	// Priority multiplies the QS value; 0 means 1.
	Priority float64 `json:"priority,omitempty"`
	// Target, when present, is the constraint bound r_i; absent means
	// best-effort (the loop ratchets the observed value).
	Target *float64 `json:"target,omitempty"`
}

// InitialSpec selects the RM configuration the run starts from: a named
// preset, explicit per-tenant parameters, or (both empty) equal weights
// with no limits and preemption disabled.
type InitialSpec struct {
	// Preset is "expert-two-tenant", "expert-abc", "hair-trigger", or "".
	Preset string `json:"preset,omitempty"`
	// Tenants gives explicit per-tenant parameters; entries override the
	// preset's (or the equal-weight default) per tenant.
	Tenants map[string]TenantConfigSpec `json:"tenants,omitempty"`
}

// TenantConfigSpec is the JSON form of one tenant's RM parameters, with
// timeouts in seconds for readability.
type TenantConfigSpec struct {
	Weight                 float64 `json:"weight"`
	MinShare               int     `json:"min_share,omitempty"`
	MaxShare               int     `json:"max_share,omitempty"`
	SharePreemptSeconds    float64 `json:"share_preempt_seconds,omitempty"`
	MinSharePreemptSeconds float64 `json:"min_share_preempt_seconds,omitempty"`
}

// CapacityChange resizes the emulated cluster from one iteration onward.
type CapacityChange struct {
	AtIteration int `json:"at_iteration"`
	Capacity    int `json:"capacity"`
}

// ControllerSpec configures the control loop.
type ControllerSpec struct {
	// Disabled runs the whole scenario under the initial configuration —
	// the static-expert baseline every tuned run is compared against.
	Disabled bool `json:"disabled,omitempty"`
	// Candidates per loop iteration; 0 means 5 (§8.2).
	Candidates int `json:"candidates,omitempty"`
	// Revert selects the regression guard: "on-worse" (default),
	// "non-dominance", or "off".
	Revert string `json:"revert,omitempty"`
	// MaxStep is PALD's trust-region radius; 0 means 0.2.
	MaxStep float64 `json:"max_step,omitempty"`
	// WhatIfSamples averages this many workload draws per what-if
	// evaluation in windowed (non-replay) mode; 0 means 1.
	WhatIfSamples int `json:"whatif_samples,omitempty"`
}

// NoiseSpec overrides the default §8.1 noise model field by field; nil
// pointers keep the default (sigma 0.25, 2% task failures, 1% job kills).
type NoiseSpec struct {
	DurationSigma *float64 `json:"duration_sigma,omitempty"`
	FailureProb   *float64 `json:"failure_prob,omitempty"`
	JobKillProb   *float64 `json:"job_kill_prob,omitempty"`
}

// Interval returns the control interval as a duration.
func (s *Spec) Interval() time.Duration {
	return time.Duration(s.IntervalMinutes * float64(time.Minute))
}

// Horizon returns the total virtual time the scenario covers.
func (s *Spec) Horizon() time.Duration {
	return time.Duration(s.Iterations) * s.Interval()
}

// ExpandedTenants returns the effective tenant list with every Count > 1
// group materialized into its named replicas, in declaration order.
func (s *Spec) ExpandedTenants() []TenantSpec {
	out := make([]TenantSpec, 0, len(s.Tenants))
	for i := range s.Tenants {
		t := s.Tenants[i]
		if t.Count <= 1 {
			t.Count = 0
			out = append(out, t)
			continue
		}
		for r := 0; r < t.Count; r++ {
			replica := t
			replica.Name = fmt.Sprintf("%s-%03d", t.Name, r)
			replica.Count = 0
			out = append(out, replica)
		}
	}
	return out
}

// TenantNames returns the scenario's effective tenant names (groups
// expanded), sorted.
func (s *Spec) TenantNames() []string {
	expanded := s.ExpandedTenants()
	out := make([]string, 0, len(expanded))
	for i := range expanded {
		out = append(out, expanded[i].Name)
	}
	sort.Strings(out)
	return out
}

// profilePresets maps preset names to constructors. The ABC presets pick
// one tenant out of the Table 1 mix and rename it.
func profilePreset(preset, name string, scale float64) (workload.TenantProfile, error) {
	switch preset {
	case "deadline-driven":
		return workload.DeadlineDriven(name, scale), nil
	case "best-effort":
		return workload.BestEffort(name, scale), nil
	case "facebook":
		return workload.Facebook(name, scale), nil
	case "cloudera":
		return workload.Cloudera(name, scale), nil
	case "abc-bi", "abc-dev", "abc-app", "abc-str", "abc-mv", "abc-etl":
		want := map[string]string{
			"abc-bi": "BI", "abc-dev": "DEV", "abc-app": "APP",
			"abc-str": "STR", "abc-mv": "MV", "abc-etl": "ETL",
		}[preset]
		for _, p := range workload.CompanyABC(scale) {
			if p.Name == want {
				p.Name = name
				return p, nil
			}
		}
		return workload.TenantProfile{}, fmt.Errorf("scenario: ABC preset %q not found", preset)
	}
	return workload.TenantProfile{}, fmt.Errorf("scenario: unknown tenant profile %q", preset)
}

// Materialize builds the tenant's statistical profile, including arrival
// modulation and the arrive/depart lifecycle window.
func (t *TenantSpec) Materialize() (workload.TenantProfile, error) {
	scale := t.Scale
	if scale <= 0 {
		scale = 1
	}
	p, err := profilePreset(t.Profile, t.Name, scale)
	if err != nil {
		return workload.TenantProfile{}, err
	}
	if t.Deadline != nil {
		p.DeadlineFactor = workload.Uniform{Lo: t.Deadline.FactorLo, Hi: t.Deadline.FactorHi}
		p.DeadlineParallelism = t.Deadline.Parallelism
	}
	var mods []workload.Modulator
	if len(t.Arrival) > 0 {
		for i := range t.Arrival {
			m, err := t.Arrival[i].modulator()
			if err != nil {
				return workload.TenantProfile{}, fmt.Errorf("scenario: tenant %s: %w", t.Name, err)
			}
			mods = append(mods, m)
		}
	} else if p.Rate != nil {
		mods = append(mods, p.Rate)
	}
	if t.ArriveAfterHours > 0 || t.DepartAfterHours > 0 {
		arrive := time.Duration(t.ArriveAfterHours * float64(time.Hour))
		depart := time.Duration(t.DepartAfterHours * float64(time.Hour))
		mods = append(mods, lifecycleWindow(arrive, depart))
	}
	switch len(mods) {
	case 0:
		p.Rate = nil
	case 1:
		p.Rate = mods[0]
	default:
		p.Rate = productModulator(mods)
	}
	if t.Grow > 0 && t.Grow != 1 {
		p = p.Grow(t.Grow)
	}
	return p, nil
}

func (a *ArrivalSpec) modulator() (workload.Modulator, error) {
	switch a.Kind {
	case "steady":
		return workload.Flat, nil
	case "diurnal":
		if a.Night < 0 || a.Night > 1 || a.Weekend < 0 || a.Weekend > 1 {
			return nil, fmt.Errorf("diurnal night/weekend multipliers %g/%g outside [0,1]", a.Night, a.Weekend)
		}
		return workload.DiurnalWeekly(a.Night, a.Weekend), nil
	case "burst":
		// Omitted parameters would silently turn the declared burst pattern
		// into a zero rate; a spec mistake must fail loudly instead.
		if a.PeriodMinutes <= 0 || a.WidthMinutes <= 0 {
			return nil, fmt.Errorf("burst needs positive period_minutes and width_minutes, got %g/%g", a.PeriodMinutes, a.WidthMinutes)
		}
		if a.Boost <= 0 || a.Floor < 0 {
			return nil, fmt.Errorf("burst needs positive boost and non-negative floor, got %g/%g", a.Boost, a.Floor)
		}
		return workload.Periodic(
			time.Duration(a.PeriodMinutes*float64(time.Minute)),
			time.Duration(a.WidthMinutes*float64(time.Minute)),
			a.Floor, a.Boost), nil
	case "flash-crowd":
		if a.DurationHours <= 0 || a.Multiplier <= 0 {
			return nil, fmt.Errorf("flash-crowd needs positive duration_hours and multiplier, got %g/%g", a.DurationHours, a.Multiplier)
		}
		at := time.Duration(a.AtHours * float64(time.Hour))
		dur := time.Duration(a.DurationHours * float64(time.Hour))
		mult := a.Multiplier
		return func(t time.Duration) float64 {
			if t >= at && t < at+dur {
				return mult
			}
			return 1
		}, nil
	}
	return nil, fmt.Errorf("unknown arrival kind %q", a.Kind)
}

// lifecycleWindow silences a tenant outside [arrive, depart); depart 0
// means never.
func lifecycleWindow(arrive, depart time.Duration) workload.Modulator {
	return func(t time.Duration) float64 {
		if t < arrive {
			return 0
		}
		if depart > 0 && t >= depart {
			return 0
		}
		return 1
	}
}

func productModulator(mods []workload.Modulator) workload.Modulator {
	return func(t time.Duration) float64 {
		m := 1.0
		for _, f := range mods {
			m *= f(t)
		}
		return m
	}
}

// Template converts the SLO spec to a qs.Template.
func (s *SLOSpec) Template() (qs.Template, error) {
	t := qs.Template{
		Queue:         s.Queue,
		Metric:        qs.Kind(s.Metric),
		Slack:         s.Slack,
		DesiredShare:  s.DesiredShare,
		EffectiveOnly: s.EffectiveOnly,
		Priority:      s.Priority,
	}
	switch s.TaskKind {
	case "":
	case "map":
		k := workload.Map
		t.TaskKind = &k
	case "reduce":
		k := workload.Reduce
		t.TaskKind = &k
	default:
		return qs.Template{}, fmt.Errorf("scenario: unknown task kind %q", s.TaskKind)
	}
	if s.Target != nil {
		t = t.WithTarget(*s.Target)
	}
	if err := t.Validate(); err != nil {
		return qs.Template{}, err
	}
	return t, nil
}

// Config materializes the initial RM configuration for the given capacity
// and tenant set.
func (in *InitialSpec) Config(capacity int, tenants []string) (cluster.Config, error) {
	var cfg cluster.Config
	switch in.Preset {
	case "":
		cfg = cluster.Config{TotalContainers: capacity, Tenants: map[string]cluster.TenantConfig{}}
		for _, name := range tenants {
			cfg.Tenants[name] = cluster.TenantConfig{Weight: 1}
		}
	case "expert-two-tenant":
		cfg = ExpertTwoTenantConfig(capacity)
	case "expert-abc":
		cfg = ExpertABCConfig(capacity)
	case "hair-trigger":
		cfg = HairTriggerConfig(capacity)
	default:
		return cluster.Config{}, fmt.Errorf("scenario: unknown initial-config preset %q", in.Preset)
	}
	for name, tc := range in.Tenants {
		cfg.Tenants[name] = cluster.TenantConfig{
			Weight:                 tc.Weight,
			MinShare:               tc.MinShare,
			MaxShare:               tc.MaxShare,
			SharePreemptTimeout:    time.Duration(tc.SharePreemptSeconds * float64(time.Second)),
			MinSharePreemptTimeout: time.Duration(tc.MinSharePreemptSeconds * float64(time.Second)),
		}
	}
	// Every configured tenant must exist in the scenario: a preset whose
	// queue names do not match the declared tenants would otherwise be
	// silently ignored at runtime (cfg.Tenant falls back to the default),
	// and the run would measure the equal-weight default while claiming an
	// expert baseline.
	known := make(map[string]bool, len(tenants))
	for _, name := range tenants {
		known[name] = true
	}
	// Report the lexically smallest unknown tenant: map iteration order
	// is random, and a spec error message must not vary across runs.
	unknown := ""
	for name := range cfg.Tenants {
		if !known[name] && (unknown == "" || name < unknown) {
			unknown = name
		}
	}
	if unknown != "" {
		return cluster.Config{}, fmt.Errorf("scenario: initial config names unknown tenant %q (scenario tenants: %s)",
			unknown, strings.Join(tenants, ", "))
	}
	return cfg, cfg.Validate()
}

// Validate checks the spec's structural invariants.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: spec with empty name")
	}
	if s.Capacity <= 0 {
		return fmt.Errorf("scenario %s: non-positive capacity %d", s.Name, s.Capacity)
	}
	if s.IntervalMinutes <= 0 {
		return fmt.Errorf("scenario %s: non-positive interval %g min", s.Name, s.IntervalMinutes)
	}
	if s.Iterations <= 0 {
		return fmt.Errorf("scenario %s: non-positive iterations %d", s.Name, s.Iterations)
	}
	if len(s.Tenants) == 0 {
		return fmt.Errorf("scenario %s: no tenants", s.Name)
	}
	for i := range s.Tenants {
		t := &s.Tenants[i]
		if t.Name == "" {
			return fmt.Errorf("scenario %s: tenant %d has empty name", s.Name, i)
		}
		if t.Count < 0 {
			return fmt.Errorf("scenario %s: tenant %s has negative count %d", s.Name, t.Name, t.Count)
		}
		if t.Count > maxTenantCount {
			return fmt.Errorf("scenario %s: tenant %s count %d exceeds the %d-replica cap",
				s.Name, t.Name, t.Count, maxTenantCount)
		}
	}
	// Structural checks run over the expanded list, so replica-name
	// collisions (group "a" with count 2 versus an explicit tenant
	// "a-001") fail loudly.
	expanded := s.ExpandedTenants()
	seen := map[string]bool{}
	for i := range expanded {
		t := &expanded[i]
		if seen[t.Name] {
			return fmt.Errorf("scenario %s: duplicate tenant %s", s.Name, t.Name)
		}
		seen[t.Name] = true
		if _, err := t.Materialize(); err != nil {
			return err
		}
		if t.DepartAfterHours > 0 && t.DepartAfterHours <= t.ArriveAfterHours {
			return fmt.Errorf("scenario %s: tenant %s departs at %gh before arriving at %gh",
				s.Name, t.Name, t.DepartAfterHours, t.ArriveAfterHours)
		}
		// Replay mode regenerates a single interval-length trace and plays
		// it every iteration, so run-time-anchored effects (tenant churn,
		// one-off flash crowds) can never occur — reject them instead of
		// silently dropping the declared behaviour.
		if s.Replay {
			if t.ArriveAfterHours > 0 || t.DepartAfterHours > 0 {
				return fmt.Errorf("scenario %s: tenant %s uses arrive/depart hours, which need windowed mode (remove \"replay\": true)",
					s.Name, t.Name)
			}
			for _, a := range t.Arrival {
				if a.Kind == "flash-crowd" {
					return fmt.Errorf("scenario %s: tenant %s uses a flash-crowd arrival, which needs windowed mode (remove \"replay\": true)",
						s.Name, t.Name)
				}
			}
		}
	}
	if len(s.SLOs) == 0 {
		return fmt.Errorf("scenario %s: no SLOs", s.Name)
	}
	for i := range s.SLOs {
		tpl, err := s.SLOs[i].Template()
		if err != nil {
			return err
		}
		if tpl.Queue != "" && !seen[tpl.Queue] {
			return fmt.Errorf("scenario %s: SLO %d names unknown tenant %q", s.Name, i, tpl.Queue)
		}
	}
	if _, err := s.Initial.Config(s.Capacity, s.TenantNames()); err != nil {
		return err
	}
	prev := -1
	for _, cc := range s.CapacityChanges {
		if cc.AtIteration < 0 || cc.AtIteration >= s.Iterations {
			return fmt.Errorf("scenario %s: capacity change at iteration %d outside [0, %d)",
				s.Name, cc.AtIteration, s.Iterations)
		}
		if cc.AtIteration <= prev {
			return fmt.Errorf("scenario %s: capacity changes not strictly ascending", s.Name)
		}
		prev = cc.AtIteration
		if cc.Capacity <= 0 {
			return fmt.Errorf("scenario %s: capacity change to %d containers", s.Name, cc.Capacity)
		}
	}
	switch s.Controller.Revert {
	case "", "on-worse", "non-dominance", "off":
	default:
		return fmt.Errorf("scenario %s: unknown revert policy %q", s.Name, s.Controller.Revert)
	}
	return nil
}

// Load parses and validates a spec from r. Unknown fields are rejected so
// typos in scenario files fail loudly instead of silently changing the run.
func Load(r io.Reader) (*Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: decoding spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// LoadFile reads and validates a spec from path.
func LoadFile(path string) (*Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	defer f.Close()
	return Load(f)
}

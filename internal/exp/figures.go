package exp

import (
	"fmt"
	"time"

	"tempo/internal/cluster"
	"tempo/internal/metrics"
	"tempo/internal/workload"
)

// Figure1Result quantifies the wasted utilization caused by preemption in
// the two-tenant scenario of Figure 1.
type Figure1Result struct {
	// RawUtilization is the busy fraction counting all attempts.
	RawUtilization float64
	// EffectiveUtilization excludes the killed attempts (region I).
	EffectiveUtilization float64
	// PreemptedTasks is the number of killed attempts of tenant A.
	PreemptedTasks int
	// WastedContainerTime is region I.
	WastedContainerTime time.Duration
}

// Figure1 reproduces the preemption-waste illustration: tenant A grabs the
// full cluster, tenant B arrives just after with a 1-unit preemption
// timeout, A's freshly-started tasks are killed and restarted.
func Figure1() (*Figure1Result, error) {
	unit := time.Minute
	capacity := 10
	a := workload.NewMapReduceJob("a", "A", 0, uniformDurations(capacity, 3*unit), nil)
	b := workload.NewMapReduceJob("b", "B", 1, uniformDurations(capacity/2, 2*unit), nil)
	tr := &workload.Trace{Name: "fig1", Horizon: time.Hour, Jobs: []workload.JobSpec{a, b}}
	tr.Sort()
	cfg := cluster.Config{TotalContainers: capacity, Tenants: map[string]cluster.TenantConfig{
		"A": {Weight: 1},
		"B": {Weight: 1, MinShare: capacity / 2, MinSharePreemptTimeout: unit},
	}}
	s, err := cluster.Predict(tr, cfg)
	if err != nil {
		return nil, err
	}
	useful, wasted := s.ContainerSeconds()
	res := &Figure1Result{
		PreemptedTasks:      s.PreemptionCount("A", nil),
		WastedContainerTime: wasted,
	}
	busy := useful + wasted
	// Utilization over the busy span of the schedule.
	span := time.Duration(capacity) * s.Horizon
	if span > 0 {
		res.RawUtilization = float64(busy) / float64(span)
		res.EffectiveUtilization = float64(useful) / float64(span)
	}
	return res, nil
}

// Render prints the figure's numbers.
func (r *Figure1Result) Render() string {
	return fmt.Sprintf(`Figure 1: wasted utilization due to preemption
raw utilization        %.3f
effective utilization  %.3f
preempted tasks (A)    %d
wasted container time  %s
`, r.RawUtilization, r.EffectiveUtilization, r.PreemptedTasks, r.WastedContainerTime)
}

func uniformDurations(n int, d time.Duration) []time.Duration {
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = d
	}
	return out
}

// Figure2Result captures the limit-underuse phenomenon of Figure 2: static
// per-tenant limits leave one tenant capped while the other idles.
type Figure2Result struct {
	// UsageA and UsageB are downsampled container-usage series.
	UsageA, UsageB []metrics.TimePoint
	// LimitA and LimitB are the configured max shares.
	LimitA, LimitB int
	// CappedWhileIdleFrac is the fraction of the day during which one
	// tenant sat at its limit while the other used less than half of its
	// own — resources the limits prevented from flowing.
	CappedWhileIdleFrac float64
}

// Figure2 emulates a day of two anti-correlated tenants under static
// resource limits.
func Figure2(seed int64) (*Figure2Result, error) {
	horizon := 24 * time.Hour
	capacity := 60
	dayShift := func(t time.Duration) float64 { // busy during the day
		h := t.Hours()
		frac := h / 24
		if frac > 0.25 && frac < 0.6 {
			return 3
		}
		return 0.3
	}
	nightShift := func(t time.Duration) float64 { // busy at night (ETL-like)
		h := t.Hours()
		frac := h / 24
		if frac < 0.2 || frac > 0.7 {
			return 3
		}
		return 0.3
	}
	pa := workload.BestEffort("A", 2.5)
	pa.Rate = dayShift
	pb := workload.DeadlineDriven("B", 2.5)
	pb.Rate = nightShift
	tr, err := workload.Generate([]workload.TenantProfile{pa, pb}, workload.GenerateOptions{
		Horizon: horizon, Seed: seed, Name: "fig2",
	})
	if err != nil {
		return nil, err
	}
	limitA, limitB := capacity/2, capacity/2
	cfg := cluster.Config{TotalContainers: capacity, Tenants: map[string]cluster.TenantConfig{
		"A": {Weight: 1, MaxShare: limitA},
		"B": {Weight: 1, MaxShare: limitB},
	}}
	s, err := cluster.Run(tr, cfg, cluster.Options{Horizon: horizon})
	if err != nil {
		return nil, err
	}
	usageA := s.UsageTimeline("A")
	usageB := s.UsageTimeline("B")
	res := &Figure2Result{
		LimitA: limitA,
		LimitB: limitB,
		UsageA: downsampleUsage(usageA, 48),
		UsageB: downsampleUsage(usageB, 48),
	}
	res.CappedWhileIdleFrac = cappedWhileIdle(usageA, usageB, limitA, limitB, horizon)
	return res, nil
}

func downsampleUsage(points []cluster.UsagePoint, n int) []metrics.TimePoint {
	series := make([]metrics.TimePoint, len(points))
	for i, p := range points {
		series[i] = metrics.TimePoint{At: p.Time, Value: float64(p.Count)}
	}
	return metrics.Downsample(series, n)
}

// cappedWhileIdle integrates the time one tenant is at its limit while the
// other uses < half of its own limit.
func cappedWhileIdle(ua, ub []cluster.UsagePoint, la, lb int, horizon time.Duration) float64 {
	stepAt := func(points []cluster.UsagePoint, t time.Duration) int {
		v := 0
		for _, p := range points {
			if p.Time > t {
				break
			}
			v = p.Count
		}
		return v
	}
	var capped time.Duration
	step := horizon / 2000
	if step <= 0 {
		step = time.Minute
	}
	for t := time.Duration(0); t < horizon; t += step {
		a, b := stepAt(ua, t), stepAt(ub, t)
		if (a >= la && b < lb/2) || (b >= lb && a < la/2) {
			capped += step
		}
	}
	return float64(capped) / float64(horizon)
}

// Render prints the figure's numbers.
func (r *Figure2Result) Render() string {
	return fmt.Sprintf(`Figure 2: tenant usage vs static limits over a day
limit A                      %d containers
limit B                      %d containers
time capped while peer idle  %.1f%%
usage samples                A:%d B:%d
`, r.LimitA, r.LimitB, r.CappedWhileIdleFrac*100, len(r.UsageA), len(r.UsageB))
}

// Figure5Result holds the per-tenant workload statistics of Figure 5:
// CDFs of maps per job, reduces per job, response time, and wait time.
type Figure5Result struct {
	Tenants []string
	// Quantiles are per-tenant [p10 p50 p90] triples per statistic.
	Maps, Reduces, ResponseSec, WaitSec map[string][3]float64
}

// Figure5 simulates the ABC week under the expert configuration and
// extracts the key workload statistics.
func Figure5(seed int64) (*Figure5Result, error) {
	horizon := 48 * time.Hour
	tr, err := ABCTrace(horizon, seed)
	if err != nil {
		return nil, err
	}
	s, err := cluster.Run(tr, ExpertABCConfig(ABCCapacity), cluster.Options{Horizon: horizon + 12*time.Hour})
	if err != nil {
		return nil, err
	}
	res := &Figure5Result{
		Tenants:     tr.Tenants(),
		Maps:        map[string][3]float64{},
		Reduces:     map[string][3]float64{},
		ResponseSec: map[string][3]float64{},
		WaitSec:     map[string][3]float64{},
	}
	firstStart := map[string]time.Duration{}
	for i := range s.Tasks {
		t := &s.Tasks[i]
		if cur, ok := firstStart[t.JobID]; !ok || t.Start < cur {
			firstStart[t.JobID] = t.Start
		}
	}
	for _, tenant := range res.Tenants {
		var maps, reds, resp, wait []float64
		counts := map[string][2]int{}
		for i := range tr.Jobs {
			j := &tr.Jobs[i]
			if j.Tenant != tenant {
				continue
			}
			m, r := 0, 0
			for _, st := range j.Stages {
				for _, task := range st.Tasks {
					if task.Kind == workload.Map {
						m++
					} else {
						r++
					}
				}
			}
			counts[j.ID] = [2]int{m, r}
		}
		for i := range s.Jobs {
			j := &s.Jobs[i]
			if j.Tenant != tenant || !j.Completed {
				continue
			}
			c := counts[j.ID]
			maps = append(maps, float64(c[0]))
			reds = append(reds, float64(c[1]))
			resp = append(resp, (j.Finish - j.Submit).Seconds())
			if st, ok := firstStart[j.ID]; ok {
				wait = append(wait, (st - j.Submit).Seconds())
			}
		}
		res.Maps[tenant] = quantileTriple(maps)
		res.Reduces[tenant] = quantileTriple(reds)
		res.ResponseSec[tenant] = quantileTriple(resp)
		res.WaitSec[tenant] = quantileTriple(wait)
	}
	return res, nil
}

func quantileTriple(xs []float64) [3]float64 {
	c := metrics.NewCDF(xs)
	return [3]float64{c.Quantile(0.1), c.Quantile(0.5), c.Quantile(0.9)}
}

// Render prints the quantile table.
func (r *Figure5Result) Render() string {
	var rows [][]string
	for _, tenant := range r.Tenants {
		m, rd, rs, w := r.Maps[tenant], r.Reduces[tenant], r.ResponseSec[tenant], r.WaitSec[tenant]
		rows = append(rows, []string{
			tenant,
			fmt.Sprintf("%.0f/%.0f/%.0f", m[0], m[1], m[2]),
			fmt.Sprintf("%.0f/%.0f/%.0f", rd[0], rd[1], rd[2]),
			fmt.Sprintf("%.0f/%.0f/%.0f", rs[0], rs[1], rs[2]),
			fmt.Sprintf("%.0f/%.0f/%.0f", w[0], w[1], w[2]),
		})
	}
	return "Figure 5: workload statistics (p10/p50/p90)\n" +
		table([]string{"tenant", "maps", "reduces", "response s", "wait s"}, rows)
}

// Figure7Result reports the fraction of preempted map and reduce tasks per
// day of week, split by tenant class.
type Figure7Result struct {
	Days []string
	// MapFrac and ReduceFrac map tenant class ("deadline"/"besteffort") to
	// per-day preempted fractions.
	MapFrac, ReduceFrac map[string][]float64
	// Overall fractions across the whole week.
	OverallMapFrac, OverallReduceFrac float64
	// BestEffortReduceShare is the share of reduce preemptions suffered by
	// the best-effort tenant (the paper: "mostly from the best-effort
	// tenant").
	BestEffortReduceShare float64
}

// Figure7 runs a week of the preemption-prone MapReduce mix (a deadline
// tenant with hair-trigger preemption rights next to a best-effort tenant
// with long reduces — the §8.2.2 situation) under the expert configuration
// and tallies preemptions by day, kind, and tenant class.
func Figure7(seed int64) (*Figure7Result, error) {
	horizon := 7 * 24 * time.Hour
	capacity := 48
	profiles := []workload.TenantProfile{
		func() workload.TenantProfile {
			dd := workload.Cloudera("deadline", 1.6)
			dd.DeadlineFactor = workload.Uniform{Lo: 1.1, Hi: 1.8}
			dd.DeadlineParallelism = 16
			return dd
		}(),
		workload.BestEffort("besteffort", 1.4),
	}
	tr, err := workload.Generate(profiles, workload.GenerateOptions{
		Horizon: horizon, Seed: seed, Name: "fig7",
	})
	if err != nil {
		return nil, err
	}
	expert := cluster.Config{
		TotalContainers: capacity,
		Tenants: map[string]cluster.TenantConfig{
			"deadline": {
				Weight:                 2,
				MinShare:               capacity / 2,
				MinSharePreemptTimeout: 30 * time.Second,
				SharePreemptTimeout:    2 * time.Minute,
			},
			"besteffort": {Weight: 1},
		},
	}
	s, err := cluster.Run(tr, expert, cluster.Options{Horizon: horizon})
	if err != nil {
		return nil, err
	}
	days := []string{"Tue", "Wed", "Thu", "Fri", "Sat", "Sun", "Mon"}
	res := &Figure7Result{
		Days:       days,
		MapFrac:    map[string][]float64{"deadline": make([]float64, 7), "besteffort": make([]float64, 7)},
		ReduceFrac: map[string][]float64{"deadline": make([]float64, 7), "besteffort": make([]float64, 7)},
	}
	type key struct {
		tenant string
		day    int
		kind   workload.TaskKind
	}
	total := map[key]int{}
	preempted := map[key]int{}
	var allMaps, allMapsPre, allReds, allRedsPre int
	var bePre, redPre int
	for i := range s.Tasks {
		t := &s.Tasks[i]
		day := int(t.Start.Hours()/24) % 7
		k := key{t.Tenant, day, t.Kind}
		total[k]++
		if t.Kind == workload.Map {
			allMaps++
		} else {
			allReds++
		}
		if t.Outcome == cluster.TaskPreempted {
			preempted[k]++
			if t.Kind == workload.Map {
				allMapsPre++
			} else {
				allRedsPre++
				redPre++
				if t.Tenant == "besteffort" {
					bePre++
				}
			}
		}
	}
	for tenant := range res.MapFrac {
		for d := 0; d < 7; d++ {
			if n := total[key{tenant, d, workload.Map}]; n > 0 {
				res.MapFrac[tenant][d] = float64(preempted[key{tenant, d, workload.Map}]) / float64(n)
			}
			if n := total[key{tenant, d, workload.Reduce}]; n > 0 {
				res.ReduceFrac[tenant][d] = float64(preempted[key{tenant, d, workload.Reduce}]) / float64(n)
			}
		}
	}
	if allMaps > 0 {
		res.OverallMapFrac = float64(allMapsPre) / float64(allMaps)
	}
	if allReds > 0 {
		res.OverallReduceFrac = float64(allRedsPre) / float64(allReds)
	}
	if redPre > 0 {
		res.BestEffortReduceShare = float64(bePre) / float64(redPre)
	}
	return res, nil
}

// Render prints the per-day preemption fractions.
func (r *Figure7Result) Render() string {
	var rows [][]string
	for _, class := range []string{"besteffort", "deadline"} {
		mapRow := []string{class + " map"}
		redRow := []string{class + " reduce"}
		for d := range r.Days {
			mapRow = append(mapRow, fmt.Sprintf("%.3f", r.MapFrac[class][d]))
			redRow = append(redRow, fmt.Sprintf("%.3f", r.ReduceFrac[class][d]))
		}
		rows = append(rows, mapRow, redRow)
	}
	head := append([]string{"series"}, r.Days...)
	return fmt.Sprintf("Figure 7: task preemptions by day (overall map %.1f%%, reduce %.1f%%, best-effort share of reduce preemptions %.0f%%)\n",
		r.OverallMapFrac*100, r.OverallReduceFrac*100, r.BestEffortReduceShare*100) +
		table(head, rows)
}

// Figure8Result holds the task-duration CDFs by kind and tenant class.
type Figure8Result struct {
	// Quantiles: [p10 p50 p90] seconds.
	MapDeadline, MapBestEffort, ReduceDeadline, ReduceBestEffort [3]float64
}

// Figure8 extracts task-duration distributions from the same mix Figure 7
// measures: the long best-effort reduces it reveals are the preemption
// victims.
func Figure8(seed int64) (*Figure8Result, error) {
	profiles := []workload.TenantProfile{
		func() workload.TenantProfile {
			dd := workload.Cloudera("deadline", 1)
			dd.DeadlineFactor = workload.Uniform{Lo: 1.1, Hi: 1.8}
			return dd
		}(),
		workload.BestEffort("besteffort", 1),
	}
	tr, err := workload.Generate(profiles, workload.GenerateOptions{
		Horizon: 24 * time.Hour, Seed: seed, Name: "fig8",
	})
	if err != nil {
		return nil, err
	}
	collect := map[string][]float64{}
	for i := range tr.Jobs {
		j := &tr.Jobs[i]
		for _, st := range j.Stages {
			for _, task := range st.Tasks {
				k := j.Tenant + "/" + task.Kind.String()
				collect[k] = append(collect[k], task.Duration.Seconds())
			}
		}
	}
	return &Figure8Result{
		MapDeadline:      quantileTriple(collect["deadline/map"]),
		MapBestEffort:    quantileTriple(collect["besteffort/map"]),
		ReduceDeadline:   quantileTriple(collect["deadline/reduce"]),
		ReduceBestEffort: quantileTriple(collect["besteffort/reduce"]),
	}, nil
}

// Render prints the quantiles.
func (r *Figure8Result) Render() string {
	rows := [][]string{
		{"map/deadline", fmt.Sprintf("%.0f/%.0f/%.0f", r.MapDeadline[0], r.MapDeadline[1], r.MapDeadline[2])},
		{"map/besteffort", fmt.Sprintf("%.0f/%.0f/%.0f", r.MapBestEffort[0], r.MapBestEffort[1], r.MapBestEffort[2])},
		{"reduce/deadline", fmt.Sprintf("%.0f/%.0f/%.0f", r.ReduceDeadline[0], r.ReduceDeadline[1], r.ReduceDeadline[2])},
		{"reduce/besteffort", fmt.Sprintf("%.0f/%.0f/%.0f", r.ReduceBestEffort[0], r.ReduceBestEffort[1], r.ReduceBestEffort[2])},
	}
	return "Figure 8: task duration distributions (p10/p50/p90 seconds)\n" +
		table([]string{"series", "duration"}, rows)
}

// Figure10Result holds the instant (moving-average) job response series.
type Figure10Result struct {
	// Week is the ABC-style week, per class.
	WeekDeadline, WeekBestEffort []metrics.TimePoint
	// TwoHour is the EC2-style two-hour Facebook/Cloudera replay.
	TwoHourDeadline, TwoHourBestEffort []metrics.TimePoint
	// Variability: ratio of p90 to p10 of the best-effort series (the
	// paper: best-effort "changes dramatically", deadline-driven is
	// periodic).
	WeekBestEffortSpread, WeekDeadlineSpread float64
}

// Figure10 produces the instant job response time distributions.
func Figure10(seed int64) (*Figure10Result, error) {
	res := &Figure10Result{}
	// Part 1: a (compressed) week of the two-tenant mix.
	week := 7 * 24 * time.Hour
	trWeek, err := workload.Generate(TwoTenantProfiles(0.4), workload.GenerateOptions{
		Horizon: week, Seed: seed, Name: "fig10-week",
	})
	if err != nil {
		return nil, err
	}
	sWeek, err := cluster.Run(trWeek, ExpertTwoTenantConfig(ABCCapacity), cluster.Options{Horizon: week})
	if err != nil {
		return nil, err
	}
	res.WeekDeadline = instantLatency(sWeek, "deadline", 30*time.Minute, 60)
	res.WeekBestEffort = instantLatency(sWeek, "besteffort", 30*time.Minute, 60)
	res.WeekBestEffortSpread = spread(res.WeekBestEffort)
	res.WeekDeadlineSpread = spread(res.WeekDeadline)

	// Part 2: the two-hour EC2 experiment with FB + Cloudera mixes.
	two := 2 * time.Hour
	trTwo, err := workload.Generate([]workload.TenantProfile{
		workload.Facebook("besteffort", 1),
		func() workload.TenantProfile {
			p := workload.Cloudera("deadline", 1)
			p.DeadlineFactor = workload.Uniform{Lo: 1.5, Hi: 2.5}
			return p
		}(),
	}, workload.GenerateOptions{Horizon: two, Seed: seed + 1, Name: "fig10-2h"})
	if err != nil {
		return nil, err
	}
	sTwo, err := cluster.Run(trTwo, ExpertTwoTenantConfig(EC2Capacity), cluster.Options{Horizon: two})
	if err != nil {
		return nil, err
	}
	res.TwoHourDeadline = instantLatency(sTwo, "deadline", 30*time.Minute, 40)
	res.TwoHourBestEffort = instantLatency(sTwo, "besteffort", 30*time.Minute, 40)
	return res, nil
}

func instantLatency(s *cluster.Schedule, tenant string, window time.Duration, points int) []metrics.TimePoint {
	var series []metrics.TimePoint
	for i := range s.Jobs {
		j := &s.Jobs[i]
		if j.Tenant != tenant || !j.Completed {
			continue
		}
		series = append(series, metrics.TimePoint{At: j.Finish, Value: (j.Finish - j.Submit).Seconds()})
	}
	ma := metrics.MovingAverage(series, window)
	return metrics.Downsample(ma, points)
}

func spread(series []metrics.TimePoint) float64 {
	if len(series) == 0 {
		return 0
	}
	vals := make([]float64, len(series))
	for i, p := range series {
		vals[i] = p.Value
	}
	c := metrics.NewCDF(vals)
	p10 := c.Quantile(0.1)
	if p10 <= 0 {
		return 0
	}
	return c.Quantile(0.9) / p10
}

// Render prints series summaries.
func (r *Figure10Result) Render() string {
	return fmt.Sprintf(`Figure 10: instant job response time (30-min moving average)
week series points        deadline:%d best-effort:%d
week p90/p10 spread       deadline:%.1fx best-effort:%.1fx
two-hour series points    deadline:%d best-effort:%d
`, len(r.WeekDeadline), len(r.WeekBestEffort),
		r.WeekDeadlineSpread, r.WeekBestEffortSpread,
		len(r.TwoHourDeadline), len(r.TwoHourBestEffort))
}

package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestSuiteCleanOnRealModule is the acceptance smoke test: the full
// tempolint suite loads the real module and reports nothing
// unsuppressed. A regression here means either a new invariant
// violation or an analyzer false positive — both block the lint gate.
func TestSuiteCleanOnRealModule(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("tempolint ./... = exit %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("clean run printed findings:\n%s", stdout.String())
	}
}

// TestNoignoreSurfacesSuppressions checks drift mode: with -noignore
// the suppressed findings come back, each annotated with its recorded
// reason, and the exit status flips to 1 so the nightly job can diff
// the suppression inventory.
func TestNoignoreSurfacesSuppressions(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks several real packages; skipped in -short")
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{"-noignore", "./internal/whatif"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("tempolint -noignore ./internal/whatif = exit %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "(suppressed: ") {
		t.Errorf("-noignore output does not annotate findings with their ignore reasons:\n%s", out)
	}
	if !strings.Contains(out, "[allocdiscipline]") {
		t.Errorf("-noignore output missing the known whatif allocdiscipline suppressions:\n%s", out)
	}
}

func TestListPrintsAllAnalyzers(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("tempolint -list = exit %d, want 0", code)
	}
	for _, a := range All {
		if !strings.Contains(stdout.String(), a.Name) {
			t.Errorf("-list output missing analyzer %q:\n%s", a.Name, stdout.String())
		}
	}
}

func TestUnknownAnalyzerIsUsageError(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-analyzers", "nope", "./internal/qs"}, &stdout, &stderr); code != 2 {
		t.Fatalf("tempolint -analyzers nope = exit %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unknown analyzer") {
		t.Errorf("stderr does not explain the unknown analyzer:\n%s", stderr.String())
	}
}
